// Package faults is a deterministic, scheduler-driven fault-injection
// engine for netsim networks. A declarative Schedule lists timed fault
// Specs — link flap storms, Gilbert–Elliott loss, byte corruption,
// reordering, duplication, host pause/resume, control-plane slowdowns,
// and event-queue pressure storms — that an Engine compiles onto the
// simulation scheduler. Every stochastic choice flows through a seeded
// sim.RNG derived from the Schedule's seed and the spec's index, so a
// schedule replays bit-identically: same seed, same fault trace, at any
// experiment-harness worker count.
//
// The package also provides Audit, an end-of-run invariant checker that
// proves packet and event conservation — injected = delivered + lost +
// dropped — across netsim links, switch counters, and event queues. The
// paper's operational claim (§3, §5) is that an event-driven data plane
// reacts to faults at data-plane timescales; the resilience experiments
// in internal/bench use this package to quantify that claim under
// realistic fault workloads instead of hand-placed Fail/Repair calls.
package faults

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/sim"
)

// Kind enumerates the fault injectors a Spec can select.
type Kind uint8

const (
	// FlapStorm repeatedly fails and repairs one link. With Period set,
	// flaps start on a fixed cadence (the flap rate of the resilience
	// sweeps); otherwise each repair is followed by an up-time gap. With
	// Jitter, down/up durations are exponential draws around Down/Up.
	FlapStorm Kind = iota + 1
	// GELoss drops frames on a link following a two-state
	// Gilbert–Elliott chain: per-frame transitions between a good and a
	// bad state with per-state loss probabilities, modeling bursty loss.
	GELoss
	// Corrupt flips random bytes of frames crossing a link with a
	// per-frame probability. The link layer hands injectors a private
	// copy, so corruption never aliases sender-retained buffers.
	Corrupt
	// Reorder delays individual frames by a uniform extra latency with a
	// per-frame probability, letting later frames overtake them.
	Reorder
	// Duplicate delivers an extra copy of a frame with a per-frame
	// probability (the copy trails by Delay, or arrives in order when
	// Delay is zero).
	Duplicate
	// HostPause freezes a host's transmit path from Start to End; held
	// frames flush, in order, at End.
	HostPause
	// EventStorm injects bursts of raw events (LinkStatusChange,
	// BufferOverflow, UserEvent, ...) straight into a switch's merger
	// FIFOs — queue pressure without the packets that would normally
	// cause it. This is the adversarial workload for overflow policies.
	EventStorm
	// CPDelay multiplies a control-plane agent's channel latency between
	// Start and End, modeling delayed control-plane convergence.
	CPDelay

	kindEnd
)

// String names the fault kind (also the DSL keyword, lowercased).
func (k Kind) String() string {
	switch k {
	case FlapStorm:
		return "Flap"
	case GELoss:
		return "Loss"
	case Corrupt:
		return "Corrupt"
	case Reorder:
		return "Reorder"
	case Duplicate:
		return "Dup"
	case HostPause:
		return "Pause"
	case EventStorm:
		return "Storm"
	case CPDelay:
		return "CPDelay"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec is one declarative fault. Fields beyond Kind and the target index
// are interpreted per kind; Validate rejects combinations that would
// misbehave (negative probabilities, unbounded storms, ...).
type Spec struct {
	Kind Kind

	// ID optionally names the spec ("id=..." in the DSL) so reports and
	// error messages can refer to it. ParseSchedule rejects duplicates.
	ID string

	// Link, Switch, Host and Agent select the fault's target by index
	// into the network's Links()/Switches()/Hosts() slices or the
	// engine's Options.Agents. Only the index relevant to Kind is read.
	Link   int
	Switch int
	Host   int
	Agent  int

	// Start and End bound the fault's active window. End zero means
	// "no explicit end" where the kind allows it (frame impairments run
	// forever; FlapStorm and EventStorm are bounded by Count instead;
	// HostPause and CPDelay require an End).
	Start, End sim.Time

	// Period is the repetition cadence for FlapStorm and EventStorm.
	Period sim.Time
	// Count bounds repetitions (flaps or bursts).
	Count int

	// Down and Up are the FlapStorm outage and recovery durations.
	Down, Up sim.Time
	// Jitter draws Down/Up from exponential distributions instead of
	// using them verbatim.
	Jitter bool

	// Gilbert–Elliott parameters: per-frame transition probabilities
	// good->bad and bad->good, and per-state loss probabilities.
	PGoodBad, PBadGood float64
	LossGood, LossBad  float64

	// Prob is the per-frame probability for Corrupt/Reorder/Duplicate.
	Prob float64
	// Delay is the maximum extra latency for Reorder (uniform draw) and
	// the fixed lag of a Duplicate copy.
	Delay sim.Time

	// EventStorm payload: the kind injected, the burst size per firing,
	// and the Port attribute stamped on injected events.
	Event events.Kind
	Burst int
	Port  int

	// Factor is the CPDelay latency multiplier.
	Factor float64
}

// Schedule is a reproducible fault workload: a seed plus an ordered list
// of fault specs.
type Schedule struct {
	Seed  uint64
	Specs []Spec
}

// prob reports whether p is a valid probability.
func prob(p float64) bool { return p >= 0 && p <= 1 && p == p } // p==p rejects NaN

// Validate checks a single spec's internal consistency. Target indices
// are checked for non-negativity only; Apply checks them against the
// actual network.
func (s *Spec) Validate() error {
	if s.Kind == 0 || s.Kind >= kindEnd {
		return fmt.Errorf("faults: unknown kind %d", s.Kind)
	}
	if s.Link < 0 || s.Switch < 0 || s.Host < 0 || s.Agent < 0 {
		return fmt.Errorf("faults: %v: negative target index", s.Kind)
	}
	if s.Start < 0 || s.End < 0 || s.Period < 0 || s.Down < 0 || s.Up < 0 || s.Delay < 0 {
		return fmt.Errorf("faults: %v: negative duration", s.Kind)
	}
	if s.End != 0 && s.End < s.Start {
		return fmt.Errorf("faults: %v: end %v before start %v", s.Kind, s.End, s.Start)
	}
	if s.Count < 0 {
		return fmt.Errorf("faults: %v: negative count", s.Kind)
	}
	switch s.Kind {
	case FlapStorm:
		if s.Down <= 0 {
			return fmt.Errorf("faults: flap needs a positive down duration")
		}
		if s.Period == 0 && s.Up <= 0 {
			return fmt.Errorf("faults: flap needs a positive up duration (or a period)")
		}
		if s.Period > 0 && s.Down >= s.Period {
			return fmt.Errorf("faults: flap down %v must be shorter than period %v", s.Down, s.Period)
		}
		if s.Count == 0 && s.End == 0 {
			return fmt.Errorf("faults: unbounded flap storm (set count or end)")
		}
	case GELoss:
		if !prob(s.PGoodBad) || !prob(s.PBadGood) || !prob(s.LossGood) || !prob(s.LossBad) {
			return fmt.Errorf("faults: loss probabilities must be in [0,1]")
		}
	case Corrupt, Reorder, Duplicate:
		if !prob(s.Prob) {
			return fmt.Errorf("faults: %v probability must be in [0,1]", s.Kind)
		}
		if s.Kind == Reorder && s.Delay <= 0 {
			return fmt.Errorf("faults: reorder needs a positive delay")
		}
	case HostPause:
		if s.End == 0 {
			return fmt.Errorf("faults: pause needs an end time")
		}
	case EventStorm:
		if int(s.Event) < 0 || int(s.Event) >= events.NumKinds {
			return fmt.Errorf("faults: storm event kind %d out of range", s.Event)
		}
		if s.Burst <= 0 {
			return fmt.Errorf("faults: storm needs a positive burst size")
		}
		if s.Count > 1 && s.Period <= 0 {
			return fmt.Errorf("faults: repeated storm needs a positive period")
		}
		if s.Count == 0 {
			return fmt.Errorf("faults: storm needs a positive count")
		}
	case CPDelay:
		if s.Factor < 1 || s.Factor != s.Factor {
			return fmt.Errorf("faults: cpdelay factor must be >= 1")
		}
		if s.End == 0 {
			return fmt.Errorf("faults: cpdelay needs an end time")
		}
	}
	return nil
}

// Validate checks every spec in the schedule.
func (s *Schedule) Validate() error {
	for i := range s.Specs {
		if err := s.Specs[i].Validate(); err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
	}
	return nil
}

// specSeed derives the per-spec RNG seed from the schedule seed and the
// spec index (a splitmix64 step), so each injector draws an independent
// deterministic stream no matter how specs interleave at run time.
func specSeed(base uint64, idx int) uint64 {
	x := base + uint64(idx+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
