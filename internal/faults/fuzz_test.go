package faults

import "testing"

// FuzzParseSchedule drives the DSL parser with arbitrary input. The
// contract under fuzzing: never panic, and any schedule the parser
// accepts must itself pass Validate (the parser cannot launder an
// invalid spec into the engine).
func FuzzParseSchedule(f *testing.F) {
	f.Add("seed 42\nflap link=0 start=1ms down=50us up=150us count=100")
	f.Add("loss link=1 pgb=0.01 pbg=0.2 lossbad=0.8\ncorrupt link=1 prob=0.05")
	f.Add("storm switch=0 event=LinkStatusChange port=3 burst=32 count=5 period=100us")
	f.Add("cpdelay agent=0 factor=10 start=1ms end=4ms # slow control plane")
	f.Add("pause host=0 start=2ms end=3ms\nreorder link=0 prob=0.1 delay=20us")
	f.Add("dup link=0 prob=1e-3 delay=0.5us\nseed 0xdeadbeef")
	f.Add("flap link=0 down=9999999999s period=1ps count=1")
	f.Add("seed 18446744073709551615")
	f.Add("loss link=0 id=a pgb=0.1\ncorrupt link=1 id=a prob=0.5")
	f.Add("loss link=0 pgb=1.5")
	f.Add("corrupt link=0 prob=-0.1")
	f.Add("reorder link=0 prob=NaN delay=1us")
	f.Add("dup link=0 id=only prob=1")
	f.Fuzz(func(t *testing.T, text string) {
		sch, err := ParseSchedule(text)
		if err != nil {
			return
		}
		if verr := sch.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid schedule: %v\ninput: %q", verr, text)
		}
	})
}
