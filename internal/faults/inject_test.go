package faults

import (
	"fmt"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// testNet wires h1 -- sw -- h2 (event-driven switch forwarding 0->1,
// with a UserEvent handler so event storms are accepted). The h1-side
// link is link 0, the h2 side link 1.
func testNet(t *testing.T) (*sim.Scheduler, *netsim.Network, *netsim.Host, *netsim.Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	sw := core.New(core.Config{Name: "s"}, core.EventDriven(), sched)
	p := pisa.NewProgram("fwd")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 1 })
	p.HandleFunc(events.UserEvent, func(ctx *pisa.Context) {})
	sw.MustLoad(p)
	net.AddSwitch(sw)
	h1 := net.NewHost("h1", packet.IP4(1, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(1, 0, 0, 2))
	net.Attach(h1, sw, 0, sim.Microsecond)
	net.Attach(h2, sw, 1, 0)
	return sched, net, h1, h2
}

func frame(n int) []byte {
	return packet.BuildFrame(packet.FrameSpec{
		Flow: packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
			SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
		},
		TotalLen: n,
	})
}

// flapTrace runs a jittered flap storm and records the (time, state)
// sequence the network observed.
func flapTrace(t *testing.T, seed uint64) string {
	t.Helper()
	sched, net, h1, _ := testNet(t)
	trace := ""
	net.OnLinkChange = func(l *netsim.Link, up bool) {
		trace += fmt.Sprintf("%v:%v;", sched.Now(), up)
	}
	sch := &Schedule{Seed: seed, Specs: []Spec{{
		Kind: FlapStorm, Link: 0, Start: sim.Millisecond,
		Down: 50 * sim.Microsecond, Up: 150 * sim.Microsecond,
		Count: 20, Jitter: true,
	}}}
	eng := MustApply(net, sch, Options{})
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 40 * sim.Microsecond
		sched.At(at, func() { h1.Send(frame(100)) })
	}
	sched.Run(20 * sim.Millisecond)
	if got := eng.Stats(0).Flaps; got != 20 {
		t.Fatalf("flaps = %d, want 20", got)
	}
	if r := Audit(net); !r.OK() {
		t.Fatal(r)
	}
	return trace
}

// TestFlapStormReplaysBitIdentically is the determinism contract: the
// same seed yields the exact same fault trace, and a different seed a
// different one (the storm is jittered, so traces are seed-sensitive).
func TestFlapStormReplaysBitIdentically(t *testing.T) {
	a := flapTrace(t, 42)
	b := flapTrace(t, 42)
	if a != b {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := flapTrace(t, 43); c == a {
		t.Error("different seed produced an identical jittered trace")
	}
}

// TestGELossDropsAndConserves pins the Gilbert–Elliott injector: a harsh
// bad state loses a visible fraction of frames, every loss is counted as
// an impairment drop, and the books still balance.
func TestGELossDropsAndConserves(t *testing.T) {
	sched, net, h1, h2 := testNet(t)
	sch := &Schedule{Seed: 7, Specs: []Spec{{
		Kind: GELoss, Link: 0,
		PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0, LossBad: 1,
	}}}
	eng := MustApply(net, sch, Options{})
	const N = 500
	for i := 0; i < N; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		sched.At(at, func() { h1.Send(frame(100)) })
	}
	sched.Run(20 * sim.Millisecond)

	st := eng.Stats(0)
	l := net.Links()[0]
	if st.Frames != N {
		t.Errorf("stage saw %d frames, want %d", st.Frames, N)
	}
	if st.Lost == 0 || st.Lost == N {
		t.Errorf("lost = %d, want bursty partial loss", st.Lost)
	}
	if l.Dropped() != st.Lost {
		t.Errorf("link dropped %d != injector lost %d", l.Dropped(), st.Lost)
	}
	if h2.RxPackets != N-st.Lost {
		t.Errorf("h2 rx = %d, want %d", h2.RxPackets, N-st.Lost)
	}
	if r := Audit(net); !r.OK() {
		t.Fatal(r)
	}
}

// TestImpairmentChainComposes pins spec-order chaining on one link:
// duplicate then corrupt, with duplicates carrying their own bytes.
func TestImpairmentChainComposes(t *testing.T) {
	sched, net, h1, h2 := testNet(t)
	sch := &Schedule{Seed: 3, Specs: []Spec{
		{Kind: Duplicate, Link: 0, Prob: 1, Delay: sim.Microsecond},
		{Kind: Corrupt, Link: 0, Prob: 1},
	}}
	eng := MustApply(net, sch, Options{})

	var payloads [][]byte
	h2.OnRecv = func(d []byte) { payloads = append(payloads, append([]byte(nil), d...)) }
	h1.Send(frame(100))
	sched.Run(sim.Millisecond)

	if len(payloads) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(payloads))
	}
	dup, cor := eng.Stats(0), eng.Stats(1)
	if dup.Duplicated != 1 {
		t.Errorf("duplicated = %d, want 1", dup.Duplicated)
	}
	// The corrupt stage runs after duplication, so it sees both copies
	// and mutates each independently.
	if cor.Frames != 2 || cor.Corrupted != 2 {
		t.Errorf("corrupt stage frames=%d corrupted=%d, want 2/2", cor.Frames, cor.Corrupted)
	}
	if string(payloads[0]) == string(payloads[1]) {
		t.Error("independent corruption produced identical copies (aliasing?)")
	}
	l := net.Links()[0]
	if l.Duplicated() != 1 || l.Sent() != 1 || l.Delivered() != 2 {
		t.Errorf("link sent=%d dup=%d delivered=%d, want 1/1/2", l.Sent(), l.Duplicated(), l.Delivered())
	}
	if r := Audit(net); !r.OK() {
		t.Fatal(r)
	}
}

// TestEventStormAccounting pins queue-pressure storms: a burst far past
// the FIFO depth is split exactly into merged + dropped (+ still queued),
// and the audit's queue identities hold under pressure.
func TestEventStormAccounting(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	sw := core.New(core.Config{Name: "s", EventQueueDepth: 8}, core.EventDriven(), sched)
	p := pisa.NewProgram("storms")
	p.HandleFunc(events.UserEvent, func(ctx *pisa.Context) {})
	sw.MustLoad(p)
	net.AddSwitch(sw)
	sch := &Schedule{Seed: 1, Specs: []Spec{{
		Kind: EventStorm, Switch: 0, Event: events.UserEvent,
		Burst: 64, Count: 3, Period: 100 * sim.Microsecond, Start: sim.Microsecond,
	}}}
	eng := MustApply(net, sch, Options{})
	sched.Run(10 * sim.Millisecond)

	st := eng.Stats(0)
	if st.EventsInjected+st.EventsRefused != 3*64 {
		t.Fatalf("injected %d + refused %d != 192", st.EventsInjected, st.EventsRefused)
	}
	if st.EventsRefused == 0 {
		t.Error("a 64-event burst should overflow the 8-deep FIFO")
	}
	sst := sw.Stats()
	if sst.EventsMerged[events.UserEvent]+sst.EventsDropped[events.UserEvent] != 192 {
		t.Errorf("merged %d + dropped %d != 192",
			sst.EventsMerged[events.UserEvent], sst.EventsDropped[events.UserEvent])
	}
	if hw := sw.EventQueueHighWater(events.UserEvent); hw != sw.EventQueue(events.UserEvent).Cap() {
		t.Errorf("high water %d, want full FIFO %d", hw, sw.EventQueue(events.UserEvent).Cap())
	}
	if r := Audit(net); !r.OK() {
		t.Fatal(r)
	}
}

// TestHostPauseWindow pins the pause injector: sends inside [start, end)
// are held and flushed at end.
func TestHostPauseWindow(t *testing.T) {
	sched, net, h1, h2 := testNet(t)
	sch := &Schedule{Specs: []Spec{{
		Kind: HostPause, Host: 0,
		Start: sim.Millisecond, End: 2 * sim.Millisecond,
	}}}
	MustApply(net, sch, Options{})

	var arrivals []sim.Time
	h2.OnRecv = func([]byte) { arrivals = append(arrivals, sched.Now()) }
	for _, at := range []sim.Time{0, 1500 * sim.Microsecond, 2500 * sim.Microsecond} {
		sched.At(at, func() { h1.Send(frame(100)) })
	}
	sched.Run(10 * sim.Millisecond)

	if len(arrivals) != 3 {
		t.Fatalf("delivered %d, want 3", len(arrivals))
	}
	if h1.HeldFrames != 1 {
		t.Errorf("held = %d, want 1", h1.HeldFrames)
	}
	// The mid-window frame arrives only after the pause lifts at 2ms.
	if arrivals[1] < 2*sim.Millisecond {
		t.Errorf("paused frame arrived at %v, before the window closed", arrivals[1])
	}
	if r := Audit(net); !r.OK() {
		t.Fatal(r)
	}
}

// TestCPDelayWindow pins the control-plane slowdown: latency and jitter
// scale by the factor inside the window and are restored after.
func TestCPDelayWindow(t *testing.T) {
	sched, net, _, _ := testNet(t)
	agent := controlplane.New(sched, sim.NewRNG(9))
	agent.Latency = 100 * sim.Microsecond
	agent.Jitter = 0
	sch := &Schedule{Specs: []Spec{{
		Kind: CPDelay, Agent: 0, Factor: 10,
		Start: sim.Millisecond, End: 2 * sim.Millisecond,
	}}}
	MustApply(net, sch, Options{Agents: []*controlplane.Agent{agent}})

	var inWindow, after sim.Time
	sched.At(1500*sim.Microsecond, func() {
		inWindow = agent.Do(1, nil) - sched.Now()
	})
	sched.At(3*sim.Millisecond, func() {
		after = agent.Do(1, nil) - sched.Now()
	})
	sched.Run(10 * sim.Millisecond)

	if inWindow != sim.Millisecond {
		t.Errorf("in-window op delay = %v, want 1ms (10x)", inWindow)
	}
	if after != 100*sim.Microsecond {
		t.Errorf("post-window op delay = %v, want restored 100us", after)
	}
}

// TestApplyRejectsBadTargets pins target-bounds checking against the
// actual network.
func TestApplyRejectsBadTargets(t *testing.T) {
	_, net, _, _ := testNet(t)
	cases := []Spec{
		{Kind: FlapStorm, Link: 9, Down: sim.Microsecond, Up: sim.Microsecond, Count: 1},
		{Kind: HostPause, Host: 9, End: sim.Millisecond},
		{Kind: EventStorm, Switch: 9, Event: events.UserEvent, Burst: 1, Count: 1},
		{Kind: CPDelay, Agent: 0, Factor: 2, End: sim.Millisecond},
	}
	for i, spec := range cases {
		if _, err := Apply(net, &Schedule{Specs: []Spec{spec}}, Options{}); err == nil {
			t.Errorf("case %d: Apply accepted out-of-range target", i)
		}
	}
}

// TestAuditCatchesImbalance is the auditor's negative test: cooking a
// link counter must produce a violation.
func TestAuditCatchesImbalance(t *testing.T) {
	sched, net, h1, _ := testNet(t)
	h1.Send(frame(100))
	sched.Run(sim.Millisecond)
	if r := Audit(net); !r.OK() {
		t.Fatalf("clean run failed audit: %v", r)
	}
	net.Links()[0].Counters(0).Sent += 3
	r := Audit(net)
	if r.OK() {
		t.Fatal("audit missed a cooked Sent counter")
	}
	if len(r.Violations) != 1 {
		t.Errorf("violations = %v, want exactly the cooked link", r.Violations)
	}
}
