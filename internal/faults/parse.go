package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/events"
	"repro/internal/sim"
)

// ParseSchedule reads the line-based fault-schedule DSL. One directive
// per line; '#' starts a comment; blank lines are skipped.
//
//	seed 42
//	flap    link=0 start=1ms period=500us down=50us count=100
//	loss    link=1 id=wan-loss pgb=0.01 pbg=0.2 lossbad=0.8
//	corrupt link=1 prob=0.05
//	reorder link=0 prob=0.1 delay=20us
//	dup     link=0 prob=0.02 delay=5us
//	pause   host=0 start=2ms end=3ms
//	storm   switch=0 event=LinkStatusChange port=3 burst=32 count=5 period=100us start=1ms
//	cpdelay agent=0 factor=10 start=1ms end=4ms
//
// Keys map onto Spec fields; durations take ps/ns/us/ms/s suffixes with
// an optional decimal ("50us", "2.5ms"). "id=" optionally names a spec;
// duplicate ids and probabilities outside [0,1] are rejected with the
// offending line's position. The parser never panics — fuzzed via
// FuzzParseSchedule — and the result always passes Validate.
func ParseSchedule(text string) (*Schedule, error) {
	sch := &Schedule{}
	ids := map[string]int{} // spec id -> first defining line
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		before := len(sch.Specs)
		if err := parseLine(sch, fields); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if len(sch.Specs) > before {
			if id := sch.Specs[len(sch.Specs)-1].ID; id != "" {
				if first, dup := ids[id]; dup {
					return nil, fmt.Errorf("line %d: duplicate spec id %q (first defined at line %d)", ln+1, id, first)
				}
				ids[id] = ln + 1
			}
		}
	}
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	return sch, nil
}

var kindWords = map[string]Kind{
	"flap":    FlapStorm,
	"loss":    GELoss,
	"corrupt": Corrupt,
	"reorder": Reorder,
	"dup":     Duplicate,
	"pause":   HostPause,
	"storm":   EventStorm,
	"cpdelay": CPDelay,
}

func parseLine(sch *Schedule, fields []string) error {
	word := strings.ToLower(fields[0])
	if word == "seed" {
		if len(fields) != 2 {
			return fmt.Errorf("seed takes exactly one value")
		}
		v, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", fields[1])
		}
		sch.Seed = v
		return nil
	}
	kind, ok := kindWords[word]
	if !ok {
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	spec := Spec{Kind: kind, Port: -1}
	for _, f := range fields[1:] {
		key, val, found := strings.Cut(f, "=")
		if !found || val == "" {
			return fmt.Errorf("want key=value, got %q", f)
		}
		if err := setField(&spec, strings.ToLower(key), val); err != nil {
			return err
		}
	}
	sch.Specs = append(sch.Specs, spec)
	return nil
}

func setField(s *Spec, key, val string) error {
	switch key {
	case "link", "switch", "host", "agent", "count", "burst", "port":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad integer %s=%q", key, val)
		}
		switch key {
		case "link":
			s.Link = n
		case "switch":
			s.Switch = n
		case "host":
			s.Host = n
		case "agent":
			s.Agent = n
		case "count":
			s.Count = n
		case "burst":
			s.Burst = n
		case "port":
			s.Port = n
		}
	case "start", "end", "period", "down", "up", "delay":
		d, err := parseDuration(val)
		if err != nil {
			return err
		}
		switch key {
		case "start":
			s.Start = d
		case "end":
			s.End = d
		case "period":
			s.Period = d
		case "down":
			s.Down = d
		case "up":
			s.Up = d
		case "delay":
			s.Delay = d
		}
	case "pgb", "pbg", "lossgood", "lossbad", "prob", "factor":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad number %s=%q", key, val)
		}
		if key != "factor" && !(p >= 0 && p <= 1) { // rejects NaN too
			return fmt.Errorf("probability %s=%q out of range [0,1]", key, val)
		}
		switch key {
		case "pgb":
			s.PGoodBad = p
		case "pbg":
			s.PBadGood = p
		case "lossgood":
			s.LossGood = p
		case "lossbad":
			s.LossBad = p
		case "prob":
			s.Prob = p
		case "factor":
			s.Factor = p
		}
	case "jitter":
		switch strings.ToLower(val) {
		case "true", "1", "yes":
			s.Jitter = true
		case "false", "0", "no":
			s.Jitter = false
		default:
			return fmt.Errorf("bad bool jitter=%q", val)
		}
	case "event":
		k, err := parseEventKind(val)
		if err != nil {
			return err
		}
		s.Event = k
	case "id":
		s.ID = val
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// parseEventKind resolves an events.Kind by its Table 1 name
// (case-insensitive) or numeric value.
func parseEventKind(val string) (events.Kind, error) {
	for k := 0; k < events.NumKinds; k++ {
		if strings.EqualFold(events.Kind(k).String(), val) {
			return events.Kind(k), nil
		}
	}
	if n, err := strconv.Atoi(val); err == nil && n >= 0 && n < events.NumKinds {
		return events.Kind(n), nil
	}
	return 0, fmt.Errorf("unknown event kind %q", val)
}

// durUnits, longest suffix first so "ns" is tried before "s".
var durUnits = []struct {
	suffix string
	unit   sim.Time
}{
	{"ps", sim.Picosecond},
	{"ns", sim.Nanosecond},
	{"us", sim.Microsecond},
	{"ms", sim.Millisecond},
	{"s", sim.Second},
}

// parseDuration reads a duration literal like "50us", "2.5ms", or "3s".
// sim.Time is integer picoseconds; fractions resolve exactly at that
// granularity. A bare number with no suffix is rejected — durations in
// schedules must be explicit about their unit.
func parseDuration(val string) (sim.Time, error) {
	for _, u := range durUnits {
		num, ok := strings.CutSuffix(val, u.suffix)
		if !ok || num == "" {
			continue
		}
		f, err := strconv.ParseFloat(num, 64)
		if err != nil || f != f || f < 0 {
			return 0, fmt.Errorf("bad duration %q", val)
		}
		d := f * float64(u.unit)
		if d > float64(1<<62) {
			return 0, fmt.Errorf("duration %q overflows", val)
		}
		return sim.Time(d), nil
	}
	return 0, fmt.Errorf("bad duration %q (want e.g. 50us, 2.5ms)", val)
}
