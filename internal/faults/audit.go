package faults

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
)

// Report is the outcome of a conservation audit: the number of
// identities checked and the ones that failed.
type Report struct {
	Checks     int
	Violations []string
}

// OK reports whether every checked identity held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String renders the report for test failures and experiment logs.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("audit ok (%d identities)", r.Checks)
	}
	return fmt.Sprintf("audit FAILED (%d/%d identities):\n  %s",
		len(r.Violations), r.Checks, strings.Join(r.Violations, "\n  "))
}

func (r *Report) check(ok bool, format string, args ...any) {
	r.Checks++
	if !ok {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// Audit checks packet and event conservation across an entire network:
// every frame offered to a link and every packet accepted by a switch is
// accounted for — delivered, counted lost with a reason, or still
// residing somewhere the audit can see. Injected faults only move
// packets between these bins; they never make the books stop balancing.
// Run it at the end of an experiment (mid-run audits are also valid: the
// in-flight terms absorb whatever is still moving).
func Audit(net *netsim.Network) *Report {
	r := &Report{}
	for i, l := range net.Links() {
		auditLink(r, i, l)
	}
	for _, sw := range net.Switches() {
		auditSwitch(r, sw)
	}
	return r
}

// AuditSwitches checks the switch-level identities only, for experiments
// that drive switches directly without a netsim network.
func AuditSwitches(sws ...*core.Switch) *Report {
	r := &Report{}
	for _, sw := range sws {
		auditSwitch(r, sw)
	}
	return r
}

// MustAudit panics with the report when an audit fails; experiments call
// it so a conservation bug can never produce a quietly-wrong table.
func MustAudit(net *netsim.Network) {
	if r := Audit(net); !r.OK() {
		panic("faults: " + r.String())
	}
}

// auditLink checks the link identity: every frame offered is delivered,
// lost to a down link (at send or mid-flight), dropped by an impairment,
// or still propagating; impairment duplicates add to the offered side.
func auditLink(r *Report, i int, l *netsim.Link) {
	in := l.Sent() + l.Duplicated()
	out := l.Delivered() + l.LostAtSend() + l.LostInFlight() + l.Dropped() + l.InFlight()
	r.check(in == out,
		"link %d (%v): sent %d + dup %d != delivered %d + lostSend %d + lostFlight %d + dropped %d + inflight %d",
		i, l, l.Sent(), l.Duplicated(), l.Delivered(), l.LostAtSend(), l.LostInFlight(), l.Dropped(), l.InFlight())
}

// auditSwitch checks the packet-inventory identity and, per event kind,
// the merger-FIFO accounting identities.
func auditSwitch(r *Report, sw *core.Switch) {
	st := sw.Stats()
	_, _, tmDrops, _ := sw.TM().Stats()
	inv := sw.Inventory()
	accepted := st.RxPackets + st.Generated
	accounted := st.TxPackets + st.PipelineDrops + st.TxDroppedLinkDown +
		tmDrops + uint64(inv.Total())
	r.check(accepted == accounted,
		"switch %s: rx %d + gen %d != tx %d + pipeDrop %d + linkDown %d + tmDrop %d + inventory %d %+v",
		sw.Name(), st.RxPackets, st.Generated, st.TxPackets, st.PipelineDrops,
		st.TxDroppedLinkDown, tmDrops, inv.Total(), inv)

	for k := 0; k < events.NumKinds; k++ {
		kind := events.Kind(k)
		q := sw.EventQueue(kind)
		// The switch's per-kind counters and the queue's must agree —
		// they are maintained on opposite sides of the same Offer call.
		r.check(st.EventsDropped[k] == q.Drops(),
			"switch %s %v: stats dropped %d != queue drops %d",
			sw.Name(), kind, st.EventsDropped[k], q.Drops())
		r.check(st.EventsCoalesced[k] == q.Coalesced(),
			"switch %s %v: stats coalesced %d != queue coalesced %d",
			sw.Name(), kind, st.EventsCoalesced[k], q.Coalesced())
		r.check(st.EventsShed[k] == q.Shed(),
			"switch %s %v: stats shed %d != queue shed %d",
			sw.Name(), kind, st.EventsShed[k], q.Shed())
		// Packet events reach the merger on the packet path, not through
		// a FIFO, so the popped==merged identity only applies to kinds
		// that actually traverse their queue.
		if kind.IsPacketEvent() || kind == events.GeneratedPacket {
			continue
		}
		r.check(q.Pushed() == st.EventsMerged[k]+q.Shed()+uint64(q.Len()),
			"switch %s %v: pushed %d != merged %d + shed %d + queued %d",
			sw.Name(), kind, q.Pushed(), st.EventsMerged[k], q.Shed(), q.Len())
	}
}
