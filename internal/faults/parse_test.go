package faults

import (
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/sim"
)

func TestParseScheduleFull(t *testing.T) {
	text := `
# resilience workload
seed 42
flap    link=0 start=1ms period=500us down=50us count=100 jitter=yes
loss    link=1 pgb=0.01 pbg=0.2 lossgood=0.001 lossbad=0.8
corrupt link=1 prob=0.05 start=1ms end=2ms
reorder link=0 prob=0.1 delay=20us
dup     link=0 prob=0.02 delay=5us
pause   host=2 start=2ms end=3ms
storm   switch=1 event=LinkStatusChange port=3 burst=32 count=5 period=100us start=1ms
cpdelay agent=0 factor=10 start=1ms end=4ms
`
	sch, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Seed != 42 || len(sch.Specs) != 8 {
		t.Fatalf("seed=%d specs=%d, want 42/8", sch.Seed, len(sch.Specs))
	}
	f := sch.Specs[0]
	if f.Kind != FlapStorm || f.Link != 0 || f.Start != sim.Millisecond ||
		f.Period != 500*sim.Microsecond || f.Down != 50*sim.Microsecond ||
		f.Count != 100 || !f.Jitter {
		t.Errorf("flap spec = %+v", f)
	}
	ge := sch.Specs[1]
	if ge.Kind != GELoss || ge.PGoodBad != 0.01 || ge.PBadGood != 0.2 ||
		ge.LossGood != 0.001 || ge.LossBad != 0.8 {
		t.Errorf("loss spec = %+v", ge)
	}
	storm := sch.Specs[6]
	if storm.Kind != EventStorm || storm.Switch != 1 || storm.Event != events.LinkStatusChange ||
		storm.Port != 3 || storm.Burst != 32 || storm.Count != 5 {
		t.Errorf("storm spec = %+v", storm)
	}
	cp := sch.Specs[7]
	if cp.Kind != CPDelay || cp.Factor != 10 || cp.End != 4*sim.Millisecond {
		t.Errorf("cpdelay spec = %+v", cp)
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{"1ps", sim.Picosecond},
		{"250ns", 250 * sim.Nanosecond},
		{"50us", 50 * sim.Microsecond},
		{"2.5ms", 2500 * sim.Microsecond},
		{"1s", sim.Second},
		{"0.5us", 500 * sim.Nanosecond},
	}
	for _, c := range cases {
		got, err := parseDuration(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseDuration(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "5", "us", "-1us", "1.2.3ms", "1e400s", "NaNms"} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("parseDuration(%q) accepted", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		text string
		want string // substring of the error
	}{
		{"bogus link=0", "unknown directive"},
		{"seed", "exactly one value"},
		{"seed banana", "bad seed"},
		{"flap link=0", "down duration"},
		{"flap link=0 down=50us up=100us", "count or end"},
		{"flap link=0 down=1ms period=1ms count=5", "shorter than period"},
		{"flap link=-1 down=50us up=100us count=5", "negative target"},
		{"loss link=0 pgb=1.5", "[0,1]"},
		{"reorder link=0 prob=0.5", "positive delay"},
		{"pause host=0 start=1ms", "end time"},
		{"storm switch=0 event=UserEvent", "burst"},
		{"storm switch=0 event=Nope burst=4 count=1", "event kind"},
		{"cpdelay agent=0 factor=0.5 end=1ms", "factor"},
		{"flap link=0 frobnicate=1", "unknown key"},
		{"flap link", "key=value"},
		{"dup link=0 prob=0.1 end=1ms start=2ms", "before start"},
	}
	for _, c := range cases {
		_, err := ParseSchedule(c.text)
		if err == nil {
			t.Errorf("ParseSchedule(%q) accepted", c.text)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSchedule(%q) error %q, want substring %q", c.text, err, c.want)
		}
	}
}

// TestParseDuplicateSpecID pins the satellite requirement: duplicate
// spec ids are rejected with both line positions; distinct and absent
// ids are fine.
func TestParseDuplicateSpecID(t *testing.T) {
	dup := `
loss link=0 id=wan pgb=0.1 pbg=0.2
corrupt link=1 prob=0.05
dup link=0 id=wan prob=0.01 delay=5us
`
	_, err := ParseSchedule(dup)
	if err == nil {
		t.Fatal("duplicate spec id accepted")
	}
	for _, want := range []string{"line 4", `duplicate spec id "wan"`, "line 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	ok := `
loss link=0 id=a pgb=0.1 pbg=0.2
dup link=0 id=b prob=0.01 delay=5us
corrupt link=1 prob=0.05
reorder link=0 prob=0.1 delay=20us
`
	if _, err := ParseSchedule(ok); err != nil {
		t.Errorf("distinct/absent ids rejected: %v", err)
	}
}

// TestParseProbabilityRange pins the other half of the satellite: every
// probability key is range-checked with the line position, including the
// NaN trap (NaN compares false against both bounds).
func TestParseProbabilityRange(t *testing.T) {
	for _, bad := range []string{
		"loss link=0 pgb=1.5",
		"loss link=0 pbg=-0.1",
		"loss link=0 lossgood=2",
		"loss link=0 lossbad=1.0001",
		"corrupt link=0 prob=NaN",
	} {
		_, err := ParseSchedule("# header\n" + bad)
		if err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), "[0,1]") || !strings.Contains(err.Error(), "line 2") {
			t.Errorf("ParseSchedule(%q) error %q, want range message with line 2", bad, err)
		}
	}
	// Boundary values are legal probabilities.
	if _, err := ParseSchedule("loss link=0 pgb=0 pbg=1 lossbad=1"); err != nil {
		t.Errorf("boundary probabilities rejected: %v", err)
	}
}

func TestSpecSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := specSeed(7, i)
		if seen[s] {
			t.Fatalf("specSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if specSeed(7, 0) == specSeed(8, 0) {
		t.Error("specSeed ignores the schedule seed")
	}
}
