package faults

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// stormChainFingerprint runs a 3-switch chain with a jittered flap storm
// on the first trunk and returns a digest of everything observable. With
// domains > 0 each switch gets its own partition domain and both trunks
// cross domain boundaries (30µs and 50µs), so the storm's unrolled
// transitions land on cross-domain links while adaptive batching is
// active. classic forces fixed-width windows (ignored when domains < 2).
// barriers receives the partition's barrier count when non-nil.
func stormChainFingerprint(t *testing.T, domains int, classic bool, barriers *uint64) string {
	t.Helper()
	var scheds [3]*sim.Scheduler
	var net *netsim.Network
	var part *sim.Partition
	if domains == 0 {
		s := sim.NewScheduler()
		scheds[0], scheds[1], scheds[2] = s, s, s
		net = netsim.New(s)
	} else {
		part = sim.NewPartition(domains)
		part.SetClassicWindows(classic)
		for i := range scheds {
			scheds[i] = part.Sched(i % domains)
		}
		net = netsim.NewPartitioned(part)
	}
	fwd := func() *pisa.Program {
		p := pisa.NewProgram("chain")
		p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
			ctx.EgressPort = ctx.Ev.Port ^ 1
		})
		return p
	}
	var sws [3]*core.Switch
	for i := range sws {
		sws[i] = core.New(core.Config{Name: fmt.Sprintf("s%d", i+1)}, core.EventDriven(), scheds[i])
		sws[i].MustLoad(fwd())
		net.AddSwitch(sws[i])
	}
	h1 := net.NewHost("h1", packet.IP4(10, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(10, 0, 0, 2))
	net.Attach(h1, sws[0], 0, 0)
	trunk := net.Connect(sws[0], 1, sws[1], 0, 30*sim.Microsecond)
	net.Connect(sws[1], 1, sws[2], 0, 50*sim.Microsecond)
	net.Attach(h2, sws[2], 1, 0)

	rng := sim.NewRNG(31)
	g1 := workload.NewGen(h1.Scheduler(), rng.Split(), h1.Send)
	g2 := workload.NewGen(h2.Scheduler(), rng.Split(), h2.Send)
	g1.StartCBR(workload.CBRConfig{
		Flow: packet.Flow{Src: h1.IP, Dst: h2.IP, SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoUDP},
		Size: workload.FixedSize(500), Rate: 300 * sim.Mbps,
	})
	g2.StartCBR(workload.CBRConfig{
		Flow: packet.Flow{Src: h2.IP, Dst: h1.IP, SrcPort: 2000, DstPort: 1000, Proto: packet.ProtoUDP},
		Size: workload.FixedSize(800), Rate: 500 * sim.Mbps,
	})

	eng := MustApply(net, &Schedule{Seed: 97, Specs: []Spec{{
		Kind: FlapStorm, Link: 1, Start: 200 * sim.Microsecond,
		Down: 40 * sim.Microsecond, Up: 120 * sim.Microsecond,
		Count: 30, Jitter: true,
	}}}, Options{})

	net.Run(10 * sim.Millisecond)

	if got := eng.Stats(0).Flaps; got != 30 {
		t.Fatalf("domains=%d classic=%v: flaps = %d, want 30", domains, classic, got)
	}
	if r := Audit(net); !r.OK() {
		t.Fatalf("domains=%d classic=%v: %v", domains, classic, r)
	}
	if barriers != nil && part != nil {
		*barriers = part.Barriers()
	}
	out := fmt.Sprintf("h1 rx=%d/%dB h2 rx=%d/%dB\n", h1.RxPackets, h1.RxBytes, h2.RxPackets, h2.RxBytes)
	for _, sw := range net.Switches() {
		st := sw.Stats()
		out += fmt.Sprintf("%s rx=%d tx=%d cycles=%d link=%d\n", sw.Name(), st.RxPackets, st.TxPackets,
			st.Cycles, st.EventsMerged[events.LinkStatusChange])
	}
	for i, l := range net.Links() {
		for dir := 0; dir < 2; dir++ {
			c := l.Counters(dir)
			out += fmt.Sprintf("link%d dir%d sent=%d delivered=%d inflight=%d\n",
				i, dir, c.Sent, c.Delivered, c.InFlight())
		}
	}
	out += fmt.Sprintf("trunk lostSend=%d lostFlight=%d up=%v\n",
		trunk.LostAtSend(), trunk.LostInFlight(), trunk.Up())
	return out
}

// TestFlapStormBatchedByteIdentical pins adaptive window batching under
// an active flap storm: the unrolled cross-domain link transitions and
// the frames they strand must be byte-identical across a plain
// scheduler, 1 and 3 domains, and classic vs adaptive windows — while
// the adaptive run still batches (strictly fewer barriers than classic).
func TestFlapStormBatchedByteIdentical(t *testing.T) {
	legacy := stormChainFingerprint(t, 0, false, nil)
	for _, domains := range []int{1, 3} {
		if got := stormChainFingerprint(t, domains, false, nil); got != legacy {
			t.Errorf("domains=%d diverges from single-scheduler run:\n--- legacy ---\n%s--- domains=%d ---\n%s",
				domains, legacy, domains, got)
		}
	}
	var adaptive, classic uint64
	if got := stormChainFingerprint(t, 3, true, &classic); got != legacy {
		t.Errorf("classic windows diverge:\n--- legacy ---\n%s--- classic ---\n%s", legacy, got)
	}
	if got := stormChainFingerprint(t, 3, false, &adaptive); got != legacy {
		t.Errorf("adaptive rerun diverges from legacy")
	}
	if adaptive >= classic {
		t.Errorf("storm run did not batch: adaptive %d barriers, classic %d", adaptive, classic)
	}
}
