package faults

import (
	"bytes"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// faultRig is h1 -- sw -- h2 with a Gilbert–Elliott loss stage plus a
// corruption stage on the h1-side link, driven by construction-scheduled
// sends so the resumed run replays the same traffic schedule.
type faultRig struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	sw     *core.Switch
	h1, h2 *netsim.Host
	eng    *Engine
}

func buildFaultRig(t testing.TB) *faultRig {
	t.Helper()
	r := &faultRig{sched: sim.NewScheduler()}
	r.net = netsim.New(r.sched)
	r.sw = core.New(core.Config{Name: "s"}, core.EventDriven(), r.sched)
	p := pisa.NewProgram("fwd")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 1 })
	r.sw.MustLoad(p)
	r.net.AddSwitch(r.sw)
	r.h1 = r.net.NewHost("h1", packet.IP4(1, 0, 0, 1))
	r.h2 = r.net.NewHost("h2", packet.IP4(1, 0, 0, 2))
	r.net.Attach(r.h1, r.sw, 0, sim.Microsecond)
	r.net.Attach(r.h2, r.sw, 1, 0)
	sch := &Schedule{Seed: 7, Specs: []Spec{
		{Kind: GELoss, Link: 0, PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0, LossBad: 1},
		{Kind: Corrupt, Link: 0, Prob: 0.05},
	}}
	r.eng = MustApply(r.net, sch, Options{})
	// Construction-replayed traffic: identical (at, seq) coordinates in
	// the original and the resumed build; DropFired removes the sends the
	// checkpointed run already executed.
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		r.sched.At(at, func() { r.h1.Send(frame(100)) })
	}
	return r
}

func (r *faultRig) snapshot() []byte {
	e := checkpoint.NewEncoder()
	clk := r.sched.Clock()
	e.I64(int64(clk.Now))
	e.U64(clk.Seq)
	e.U64(clk.Fired)
	r.sw.Snapshot(e)
	r.net.Snapshot(e)
	r.eng.Snapshot(e)
	return e.Bytes()
}

func (r *faultRig) restore(t testing.TB, buf []byte) {
	t.Helper()
	d := checkpoint.NewDecoder(buf)
	var clk sim.ClockState
	clk.Now = sim.Time(d.I64())
	clk.Seq = d.U64()
	clk.Fired = d.U64()
	r.sw.Restore(d)
	r.net.Restore(d)
	r.eng.Restore(d)
	if err := d.Err(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("restore left %d bytes unread", d.Remaining())
	}
	r.sched.DropFired(clk.Now, clk.Seq)
	r.sched.RestoreClock(clk)
}

// TestFaultsCheckpointResumeIdentical pins the injector's RNG stream
// position across checkpoint/restore: a resumed run must impair exactly
// the same frames as the uninterrupted run — same losses, same
// corruptions, same Gilbert–Elliott chain trajectory.
func TestFaultsCheckpointResumeIdentical(t *testing.T) {
	const half, full = 2500*sim.Microsecond + 3*sim.Microsecond, 20 * sim.Millisecond

	a := buildFaultRig(t)
	a.sched.Run(half)
	snap := a.snapshot()
	a.sched.Run(full)

	b := buildFaultRig(t)
	b.restore(t, snap)
	b.sched.Run(full)

	for i := 0; i < a.eng.NumSpecs(); i++ {
		if a.eng.Stats(i) != b.eng.Stats(i) {
			t.Errorf("spec %d stats diverge:\noriginal: %+v\nresumed:  %+v", i, a.eng.Stats(i), b.eng.Stats(i))
		}
	}
	if a.h2.RxPackets != b.h2.RxPackets || a.h2.RxBytes != b.h2.RxBytes {
		t.Errorf("h2 rx = %d/%dB, resumed %d/%dB", a.h2.RxPackets, a.h2.RxBytes, b.h2.RxPackets, b.h2.RxBytes)
	}
	if a.sw.Stats() != b.sw.Stats() {
		t.Errorf("switch stats diverge:\noriginal: %+v\nresumed:  %+v", a.sw.Stats(), b.sw.Stats())
	}
	st := a.eng.Stats(0)
	if st.Lost == 0 || a.eng.Stats(1).Corrupted == 0 {
		t.Fatalf("no impairments happened (lost=%d corrupted=%d); differential is vacuous", st.Lost, a.eng.Stats(1).Corrupted)
	}
	if r := Audit(a.net); !r.OK() {
		t.Fatal(r)
	}
	if r := Audit(b.net); !r.OK() {
		t.Fatal(r)
	}
}

// TestEngineSnapshotFidelity verifies an engine snapshot restored into a
// freshly applied engine re-encodes to the identical bytes, and that a
// spec-count mismatch is refused.
func TestEngineSnapshotFidelity(t *testing.T) {
	a := buildFaultRig(t)
	a.sched.Run(5 * sim.Millisecond)
	e := checkpoint.NewEncoder()
	a.eng.Snapshot(e)
	first := append([]byte(nil), e.Bytes()...)

	b := buildFaultRig(t)
	d := checkpoint.NewDecoder(first)
	b.eng.Restore(d)
	if err := d.Err(); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	e2 := checkpoint.NewEncoder()
	b.eng.Snapshot(e2)
	if !bytes.Equal(first, e2.Bytes()) {
		t.Error("snapshot -> restore -> snapshot is not byte-identical")
	}

	// Engine with a different spec count must refuse the snapshot.
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	sw := core.New(core.Config{Name: "x"}, core.EventDriven(), sched)
	p := pisa.NewProgram("fwd")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 1 })
	sw.MustLoad(p)
	net.AddSwitch(sw)
	h1 := net.NewHost("h1", packet.IP4(2, 0, 0, 1))
	net.Attach(h1, sw, 0, 0)
	one := MustApply(net, &Schedule{Seed: 1, Specs: []Spec{
		{Kind: Corrupt, Link: 0, Prob: 0.1},
	}}, Options{})
	d2 := checkpoint.NewDecoder(first)
	one.Restore(d2)
	if d2.Err() == nil {
		t.Fatal("spec-count mismatch accepted")
	}
}
