package faults

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Snapshot serializes the engine's per-spec impairment state: injector
// statistics, each spec's RNG stream position, and the Gilbert–Elliott
// chain bits. Pending storm callbacks are NOT captured — a checkpointed
// run restores fault state for frame impairments (loss, corruption,
// reordering, duplication) and for statically unrolled storms, but an
// unbounded self-rearming flap or event storm caught mid-loop cannot be
// resumed; use bounded storms (count/end set) in checkpointed campaigns
// (documented limitation, DESIGN.md §13).
func (e *Engine) Snapshot(enc *checkpoint.Encoder) {
	enc.Int(len(e.stats))
	for i := range e.stats {
		st := &e.stats[i]
		enc.Int(st.Flaps)
		enc.U64(st.Frames)
		enc.U64(st.Lost)
		enc.U64(st.Corrupted)
		enc.U64(st.Reordered)
		enc.U64(st.Duplicated)
		enc.U64(st.EventsInjected)
		enc.U64(st.EventsRefused)
		rs := e.rngs[i].State()
		for _, w := range rs {
			enc.U64(w)
		}
		enc.Bool(e.geBad[i])
	}
}

// Restore loads an engine snapshot into an engine produced by re-running
// Apply with the same schedule on the rebuilt network.
func (e *Engine) Restore(d *checkpoint.Decoder) {
	n := d.Int()
	if d.Err() != nil {
		return
	}
	if n != len(e.stats) {
		d.Fail(fmt.Errorf("faults: snapshot has %d specs, engine has %d", n, len(e.stats)))
		return
	}
	for i := range e.stats {
		st := &e.stats[i]
		st.Flaps = d.Int()
		st.Frames = d.U64()
		st.Lost = d.U64()
		st.Corrupted = d.U64()
		st.Reordered = d.U64()
		st.Duplicated = d.U64()
		st.EventsInjected = d.U64()
		st.EventsRefused = d.U64()
		var rs [4]uint64
		for j := range rs {
			rs[j] = d.U64()
		}
		bad := d.Bool()
		if d.Err() != nil {
			return
		}
		e.rngs[i].SetState(rs)
		e.geBad[i] = bad
	}
}
