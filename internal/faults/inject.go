package faults

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Options supplies targets a Schedule can reference beyond the network's
// own links, switches and hosts.
type Options struct {
	// Agents are the control-plane agents CPDelay specs index into.
	Agents []*controlplane.Agent
}

// SpecStats counts what one spec's injector actually did. Frame counters
// apply to the impairment kinds; the rest to their named kinds.
type SpecStats struct {
	Flaps          int    // FlapStorm: fail/repair cycles started
	Frames         uint64 // impairments: frames this stage examined
	Lost           uint64 // GELoss: frames discarded
	Corrupted      uint64 // Corrupt: frames with a flipped byte
	Reordered      uint64 // Reorder: frames given extra latency
	Duplicated     uint64 // Duplicate: extra copies created
	EventsInjected uint64 // EventStorm: events the switch accepted
	EventsRefused  uint64 // EventStorm: events the switch refused
}

// Engine is a schedule compiled onto a network's scheduler. It exists to
// expose per-spec statistics; the injectors themselves run as scheduler
// callbacks and link impairments. The per-spec RNGs and the
// Gilbert–Elliott chain bits live on the engine (not in the injector
// closures) so a checkpoint can capture and restore mid-stream fault
// state (checkpoint.go).
type Engine struct {
	sch   *Schedule
	stats []SpecStats
	rngs  []*sim.RNG
	geBad []bool
}

// NumSpecs returns the number of specs in the applied schedule.
func (e *Engine) NumSpecs() int { return len(e.stats) }

// Stats returns a snapshot of spec i's injector counters.
func (e *Engine) Stats(i int) SpecStats { return e.stats[i] }

// stage is one impairment step: it maps an incoming copy of a frame to
// the copies that survive it.
type stage func(d netsim.Deliverable) []netsim.Deliverable

// Apply validates the schedule and arms every spec on the network's
// scheduler: flap storms and event storms become timed callbacks, frame
// impairments chain (in spec order) into a single netsim.Impairment per
// link, pauses and control-plane slowdowns become window callbacks.
//
// Each spec draws from its own RNG seeded by specSeed(sch.Seed, i), so
// the fault trace is a pure function of the schedule: same seed, same
// faults, regardless of what else the simulation does.
//
// Apply is typically called once before Scheduler.Run; specs whose Start
// has already passed begin immediately.
func Apply(net *netsim.Network, sch *Schedule, opts Options) (*Engine, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	eng := &Engine{
		sch:   sch,
		stats: make([]SpecStats, len(sch.Specs)),
		rngs:  make([]*sim.RNG, len(sch.Specs)),
		geBad: make([]bool, len(sch.Specs)),
	}
	sched := net.Scheduler()
	chains := make(map[*netsim.Link][]stage)

	for i := range sch.Specs {
		s := &sch.Specs[i]
		rng := sim.NewRNG(specSeed(sch.Seed, i))
		eng.rngs[i] = rng
		st := &eng.stats[i]
		switch s.Kind {
		case FlapStorm:
			l, err := linkAt(net, s.Link)
			if err != nil {
				return nil, fmt.Errorf("spec %d: %w", i, err)
			}
			if s.Count > 0 || s.End > 0 {
				// Bounded storm: the trace is a pure function of the
				// schedule, so unroll it into timed transitions now.
				// ScheduleLinkChange arms both endpoints for the same
				// instants, which also covers cross-domain links.
				unrollFlapStorm(net, l, s, rng, st)
			} else {
				if l.Cross() {
					return nil, fmt.Errorf("spec %d: unbounded flap storm on cross-domain link %v (set count or end)", i, l)
				}
				armFlapStorm(net, l.Scheduler(), l, s, rng, st)
			}
		case GELoss, Corrupt, Reorder, Duplicate:
			l, err := linkAt(net, s.Link)
			if err != nil {
				return nil, fmt.Errorf("spec %d: %w", i, err)
			}
			if l.Cross() {
				return nil, fmt.Errorf("spec %d: impairment on cross-domain link %v (impairments keep shared state; keep the link inside one domain)", i, l)
			}
			chains[l] = append(chains[l], frameStage(l.Scheduler(), s, rng, st, &eng.geBad[i]))
		case HostPause:
			hosts := net.Hosts()
			if s.Host >= len(hosts) {
				return nil, fmt.Errorf("spec %d: host %d of %d", i, s.Host, len(hosts))
			}
			h := hosts[s.Host]
			hs := h.Scheduler()
			hs.At(laterOf(s.Start, hs.Now()), h.Pause)
			hs.At(laterOf(s.End, hs.Now()), h.Resume)
		case EventStorm:
			sws := net.Switches()
			if s.Switch >= len(sws) {
				return nil, fmt.Errorf("spec %d: switch %d of %d", i, s.Switch, len(sws))
			}
			armEventStorm(sws[s.Switch].Scheduler(), sws[s.Switch], s, rng, st)
		case CPDelay:
			if s.Agent >= len(opts.Agents) {
				return nil, fmt.Errorf("spec %d: agent %d of %d", i, s.Agent, len(opts.Agents))
			}
			armCPDelay(sched, opts.Agents[s.Agent], s)
		}
	}
	for l, stages := range chains {
		l.SetImpair(compose(stages))
	}
	return eng, nil
}

// MustApply is Apply for experiment code, where a bad schedule is a
// programming error.
func MustApply(net *netsim.Network, sch *Schedule, opts Options) *Engine {
	eng, err := Apply(net, sch, opts)
	if err != nil {
		panic(err)
	}
	return eng
}

func linkAt(net *netsim.Network, i int) (*netsim.Link, error) {
	links := net.Links()
	if i >= len(links) {
		return nil, fmt.Errorf("link %d of %d", i, len(links))
	}
	return links[i], nil
}

func laterOf(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// unrollFlapStorm expands a bounded storm (Count or End set) into
// statically scheduled link transitions, replaying exactly the cadence,
// jitter draws, and stop conditions of the live loop in armFlapStorm.
// Static unrolling is what makes storms partition-safe: every transition
// is armed on both endpoints' domains before the run starts, so no
// domain ever has to reach across a boundary mid-window.
func unrollFlapStorm(net *netsim.Network, l *netsim.Link, s *Spec, rng *sim.RNG, st *SpecStats) {
	t := laterOf(s.Start, l.Scheduler().Now())
	for {
		if s.End > 0 && t > s.End {
			return
		}
		st.Flaps++
		down, up := s.Down, s.Up
		if s.Jitter {
			down = rng.ExpTime(s.Down)
			if s.Up > 0 {
				up = rng.ExpTime(s.Up)
			}
		}
		if s.Period > 0 && down >= s.Period {
			down = s.Period - 1
		}
		net.ScheduleLinkChange(l, t, false)
		net.ScheduleLinkChange(l, t+down, true)
		if s.Count > 0 && st.Flaps >= s.Count {
			return
		}
		if s.Period > 0 {
			t += s.Period
		} else {
			t += down + up
		}
	}
}

// armFlapStorm schedules the fail/repair loop for an unbounded storm
// (no Count or End: it cannot be unrolled). With Period the loop runs
// on a fixed cadence (jittered down-times are clamped below the period so
// the link is back up before the next flap); without it, each cycle is
// down + up long.
func armFlapStorm(net *netsim.Network, sched *sim.Scheduler, l *netsim.Link,
	s *Spec, rng *sim.RNG, st *SpecStats) {
	var flap func()
	flap = func() {
		if s.End > 0 && sched.Now() > s.End {
			return
		}
		st.Flaps++
		down, up := s.Down, s.Up
		if s.Jitter {
			down = rng.ExpTime(s.Down)
			if s.Up > 0 {
				up = rng.ExpTime(s.Up)
			}
		}
		if s.Period > 0 && down >= s.Period {
			down = s.Period - 1
		}
		net.Fail(l)
		sched.After(down, func() { net.Repair(l) })
		if s.Count > 0 && st.Flaps >= s.Count {
			return
		}
		if s.Period > 0 {
			sched.After(s.Period, flap)
		} else {
			sched.After(down+up, flap)
		}
	}
	sched.At(laterOf(s.Start, sched.Now()), flap)
}

// armEventStorm schedules Count bursts of Burst raw events into the
// switch's merger FIFOs, Period apart.
func armEventStorm(sched *sim.Scheduler, sw *core.Switch, s *Spec,
	rng *sim.RNG, st *SpecStats) {
	fired := 0
	var burst func()
	burst = func() {
		if s.End > 0 && sched.Now() > s.End {
			return
		}
		fired++
		for j := 0; j < s.Burst; j++ {
			ev := events.Event{
				Kind: s.Event,
				When: sched.Now(),
				Port: s.Port,
				Up:   rng.Bool(0.5),
				Data: rng.Uint64(),
			}
			if sw.InjectEvent(ev) {
				st.EventsInjected++
			} else {
				st.EventsRefused++
			}
		}
		if fired < s.Count {
			sched.After(s.Period, burst)
		}
	}
	sched.At(laterOf(s.Start, sched.Now()), burst)
}

// armCPDelay scales the agent's control-channel latency (and jitter, in
// proportion) over [Start, End], then restores the originals.
func armCPDelay(sched *sim.Scheduler, a *controlplane.Agent, s *Spec) {
	var savedLat, savedJit sim.Time
	sched.At(laterOf(s.Start, sched.Now()), func() {
		savedLat, savedJit = a.Latency, a.Jitter
		a.Latency = sim.Time(float64(a.Latency) * s.Factor)
		a.Jitter = sim.Time(float64(a.Jitter) * s.Factor)
	})
	sched.At(laterOf(s.End, sched.Now()), func() {
		a.Latency, a.Jitter = savedLat, savedJit
	})
}

// active reports whether a windowed frame impairment applies right now.
func active(sched *sim.Scheduler, s *Spec) bool {
	now := sched.Now()
	return now >= s.Start && (s.End == 0 || now <= s.End)
}

// frameStage builds the per-frame impairment step for one spec. bad is
// the engine-held Gilbert–Elliott chain bit for this spec (only GELoss
// reads it); keeping it out of the closure makes it checkpointable.
func frameStage(sched *sim.Scheduler, s *Spec, rng *sim.RNG, st *SpecStats, bad *bool) stage {
	switch s.Kind {
	case GELoss:
		// Two-state Gilbert–Elliott chain: per frame, lose with the
		// current state's probability, then step the chain.
		return func(d netsim.Deliverable) []netsim.Deliverable {
			if !active(sched, s) {
				return []netsim.Deliverable{d}
			}
			st.Frames++
			loss := s.LossGood
			if *bad {
				loss = s.LossBad
			}
			lost := rng.Bool(loss)
			if *bad {
				if rng.Bool(s.PBadGood) {
					*bad = false
				}
			} else if rng.Bool(s.PGoodBad) {
				*bad = true
			}
			if lost {
				st.Lost++
				return nil
			}
			return []netsim.Deliverable{d}
		}
	case Corrupt:
		return func(d netsim.Deliverable) []netsim.Deliverable {
			if !active(sched, s) {
				return []netsim.Deliverable{d}
			}
			st.Frames++
			if len(d.Data) > 0 && rng.Bool(s.Prob) {
				// Flip at least one bit of a random byte. The frame is
				// already a private copy (netsim guarantees it), so this
				// cannot corrupt a buffer the sender retains.
				d.Data[rng.Intn(len(d.Data))] ^= byte(1 + rng.Intn(255))
				st.Corrupted++
			}
			return []netsim.Deliverable{d}
		}
	case Reorder:
		return func(d netsim.Deliverable) []netsim.Deliverable {
			if !active(sched, s) {
				return []netsim.Deliverable{d}
			}
			st.Frames++
			if rng.Bool(s.Prob) {
				d.ExtraDelay += 1 + sim.Time(rng.Int63n(int64(s.Delay)))
				st.Reordered++
			}
			return []netsim.Deliverable{d}
		}
	case Duplicate:
		return func(d netsim.Deliverable) []netsim.Deliverable {
			if !active(sched, s) {
				return []netsim.Deliverable{d}
			}
			st.Frames++
			if !rng.Bool(s.Prob) {
				return []netsim.Deliverable{d}
			}
			st.Duplicated++
			// The copy gets its own bytes so a later corruption stage
			// mutating one copy cannot alias the other.
			dup := netsim.Deliverable{
				Data:       append([]byte(nil), d.Data...),
				ExtraDelay: d.ExtraDelay + s.Delay,
			}
			return []netsim.Deliverable{d, dup}
		}
	}
	panic("faults: not a frame impairment: " + s.Kind.String())
}

// compose chains stages in spec order into one link Impairment: each
// stage maps every copy the previous stages let through.
func compose(stages []stage) netsim.Impairment {
	if len(stages) == 1 {
		only := stages[0]
		return func(data []byte) []netsim.Deliverable {
			return only(netsim.Deliverable{Data: data})
		}
	}
	return func(data []byte) []netsim.Deliverable {
		outs := []netsim.Deliverable{{Data: data}}
		for _, st := range stages {
			next := outs[:0:0]
			for _, d := range outs {
				next = append(next, st(d)...)
			}
			outs = next
			if len(outs) == 0 {
				return nil
			}
		}
		return outs
	}
}
