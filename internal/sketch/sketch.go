// Package sketch implements the approximate data-plane data structures
// the paper's applications rely on: the count-min sketch (which baseline
// architectures must ask the control plane to reset, and an event-driven
// architecture resets from a timer event — paper §1), a Bloom filter, a
// shift-register sliding-window rate estimator (paper §5, "Time-Windowed
// Network Measurement"), and an EWMA smoother.
package sketch

import "repro/internal/pisa"

// CMS is a count-min sketch: Rows independent hash rows of Width
// counters. Estimates overcount but never undercount.
type CMS struct {
	rows  int
	width int
	cnt   [][]uint64
	seeds []uint64
	// Updates counts Update calls since the last reset.
	Updates uint64
}

// NewCMS builds a sketch with the given geometry.
func NewCMS(rows, width int) *CMS {
	if rows <= 0 || width <= 0 {
		panic("sketch: CMS needs positive geometry")
	}
	c := &CMS{rows: rows, width: width}
	c.cnt = make([][]uint64, rows)
	c.seeds = make([]uint64, rows)
	for i := range c.cnt {
		c.cnt[i] = make([]uint64, width)
		c.seeds[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	return c
}

// Rows returns the number of hash rows.
func (c *CMS) Rows() int { return c.rows }

// Width returns the counters per row.
func (c *CMS) Width() int { return c.width }

// Update adds delta to the key's counters.
func (c *CMS) Update(key uint64, delta uint64) {
	c.Updates++
	for i := 0; i < c.rows; i++ {
		h := pisa.Hash(c.seeds[i], key) % uint64(c.width)
		c.cnt[i][h] += delta
	}
}

// Estimate returns the key's count estimate (minimum across rows).
func (c *CMS) Estimate(key uint64) uint64 {
	var est uint64 = ^uint64(0)
	for i := 0; i < c.rows; i++ {
		h := pisa.Hash(c.seeds[i], key) % uint64(c.width)
		if c.cnt[i][h] < est {
			est = c.cnt[i][h]
		}
	}
	return est
}

// Reset zeroes every counter. ResetCost reports how many register-array
// writes a reset costs (what the control plane must issue row by row on a
// baseline architecture).
func (c *CMS) Reset() {
	for i := range c.cnt {
		row := c.cnt[i]
		for j := range row {
			row[j] = 0
		}
	}
	c.Updates = 0
}

// ResetCost is the number of per-row register resets a full reset takes:
// one control-plane write per row on baseline targets.
func (c *CMS) ResetCost() int { return c.rows }

// MemoryBytes reports the sketch's counter memory footprint assuming the
// 32-bit counters a data-plane register array would use.
func (c *CMS) MemoryBytes() int { return c.rows * c.width * 4 }

// Bloom is a Bloom filter over uint64 keys.
type Bloom struct {
	bits  []uint64
	nbits uint64
	k     int
	seeds []uint64
}

// NewBloom builds a filter with the given number of bits (rounded up to a
// multiple of 64) and hash functions.
func NewBloom(nbits, k int) *Bloom {
	if nbits <= 0 || k <= 0 {
		panic("sketch: Bloom needs positive geometry")
	}
	words := (nbits + 63) / 64
	b := &Bloom{bits: make([]uint64, words), nbits: uint64(words * 64), k: k}
	for i := 0; i < k; i++ {
		b.seeds = append(b.seeds, uint64(i)*0xbf58476d1ce4e5b9+7)
	}
	return b
}

// Add inserts a key.
func (b *Bloom) Add(key uint64) {
	for _, s := range b.seeds {
		h := pisa.Hash(s, key) % b.nbits
		b.bits[h/64] |= 1 << (h % 64)
	}
}

// Has reports whether the key may have been added (false positives
// possible, false negatives impossible).
func (b *Bloom) Has(key uint64) bool {
	for _, s := range b.seeds {
		h := pisa.Hash(s, key) % b.nbits
		if b.bits[h/64]&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (b *Bloom) Reset() {
	for i := range b.bits {
		b.bits[i] = 0
	}
}

// WindowRate measures a byte rate over a sliding window using a shift
// register of per-interval buckets — the structure one student group
// built on timer events (paper §5): each timer expiration shifts the
// register; arrivals accumulate into the head bucket.
type WindowRate struct {
	buckets []uint64
	head    int
	filled  int
}

// NewWindowRate builds a window of n buckets.
func NewWindowRate(n int) *WindowRate {
	if n <= 0 {
		panic("sketch: window needs at least one bucket")
	}
	return &WindowRate{buckets: make([]uint64, n)}
}

// Add accumulates bytes into the current interval.
func (w *WindowRate) Add(n uint64) { w.buckets[w.head] += n }

// Shift closes the current interval and opens a fresh one (called from a
// timer-event handler).
func (w *WindowRate) Shift() {
	w.head = (w.head + 1) % len(w.buckets)
	w.buckets[w.head] = 0
	if w.filled < len(w.buckets)-1 {
		w.filled++
	}
}

// Sum returns the total bytes across the whole window.
func (w *WindowRate) Sum() uint64 {
	var s uint64
	for _, b := range w.buckets {
		s += b
	}
	return s
}

// Filled returns how many complete intervals the window holds (grows to
// len-1 and stays there).
func (w *WindowRate) Filled() int { return w.filled }

// EWMA is an exponentially weighted moving average with integer
// arithmetic: weight is expressed as a right-shift (newWeight = 1/2^shift),
// matching what a data-plane register update can compute.
type EWMA struct {
	shift uint
	value uint64
	set   bool
}

// NewEWMA builds a smoother; shift=3 weights new samples by 1/8.
func NewEWMA(shift uint) *EWMA { return &EWMA{shift: shift} }

// Observe folds in a sample and returns the new average.
func (e *EWMA) Observe(v uint64) uint64 {
	if !e.set {
		e.value = v
		e.set = true
		return v
	}
	// value += (v - value) >> shift, in signed arithmetic.
	d := int64(v) - int64(e.value)
	e.value = uint64(int64(e.value) + (d >> e.shift))
	return e.value
}

// Value returns the current average.
func (e *EWMA) Value() uint64 { return e.value }
