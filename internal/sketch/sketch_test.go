package sketch

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCMSNeverUndercounts(t *testing.T) {
	f := func(keys []uint16) bool {
		c := NewCMS(3, 64)
		truth := map[uint64]uint64{}
		for _, k := range keys {
			c.Update(uint64(k), 1)
			truth[uint64(k)]++
		}
		for k, want := range truth {
			if c.Estimate(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCMSAccurateWhenSparse(t *testing.T) {
	c := NewCMS(4, 1024)
	for k := uint64(0); k < 50; k++ {
		for i := uint64(0); i <= k; i++ {
			c.Update(k, 1)
		}
	}
	for k := uint64(0); k < 50; k++ {
		if got := c.Estimate(k); got != k+1 {
			t.Errorf("key %d estimate = %d, want %d (sparse: should be exact)", k, got, k+1)
		}
	}
}

func TestCMSResetAndCost(t *testing.T) {
	c := NewCMS(3, 32)
	c.Update(7, 5)
	if c.Updates != 1 {
		t.Errorf("updates = %d", c.Updates)
	}
	c.Reset()
	if c.Estimate(7) != 0 || c.Updates != 0 {
		t.Error("reset incomplete")
	}
	if c.ResetCost() != 3 {
		t.Errorf("reset cost = %d, want rows", c.ResetCost())
	}
	if c.MemoryBytes() != 3*32*4 {
		t.Errorf("memory = %d", c.MemoryBytes())
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1024, 3)
	for k := uint64(0); k < 100; k++ {
		b.Add(k * 7919)
	}
	for k := uint64(0); k < 100; k++ {
		if !b.Has(k * 7919) {
			t.Fatalf("false negative for %d", k*7919)
		}
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	b := NewBloom(4096, 3)
	for k := uint64(0); k < 100; k++ {
		b.Add(k)
	}
	fp := 0
	for k := uint64(1000000); k < 1010000; k++ {
		if b.Has(k) {
			fp++
		}
	}
	if fp > 200 { // 100 keys in 4096 bits, 3 hashes: fp rate well under 2%
		t.Errorf("false positives = %d of 10000", fp)
	}
	b.Reset()
	if b.Has(1) {
		t.Error("reset left bits set")
	}
}

func TestWindowRateSliding(t *testing.T) {
	w := NewWindowRate(4)
	// Intervals: 100, 200, 300, 400 — window keeps all 4 buckets.
	for _, v := range []uint64{100, 200, 300} {
		w.Add(v)
		w.Shift()
	}
	w.Add(400)
	if got := w.Sum(); got != 1000 {
		t.Errorf("sum = %d, want 1000", got)
	}
	// One more shift evicts the 100 bucket on the next wrap.
	w.Shift()
	w.Add(500)
	if got := w.Sum(); got != 1400 { // 200+300+400+500
		t.Errorf("sum after slide = %d, want 1400", got)
	}
	if w.Filled() != 3 {
		t.Errorf("filled = %d", w.Filled())
	}
}

func TestWindowRateMeasuresKnownRate(t *testing.T) {
	// Feed a precise 1 MB/s for 10 intervals of 1 ms: window of 8
	// should read 8000 bytes.
	sched := sim.NewScheduler()
	w := NewWindowRate(8)
	sched.Every(sim.Millisecond, func() { w.Shift() })
	feed := sched.Every(100*sim.Microsecond, func() { w.Add(100) }) // 1 MB/s
	sched.Run(20 * sim.Millisecond)
	feed.Stop()
	sum := w.Sum()
	if sum < 7000 || sum > 9000 {
		t.Errorf("window sum = %d, want ~8000 (1MB/s over 8ms)", sum)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(3)
	if e.Observe(1000) != 1000 {
		t.Error("first sample should initialize")
	}
	var v uint64
	for i := 0; i < 100; i++ {
		v = e.Observe(2000)
	}
	if v < 1950 || v > 2000 {
		t.Errorf("ewma = %d, want converged near 2000", v)
	}
	// Downward too (signed arithmetic).
	for i := 0; i < 100; i++ {
		v = e.Observe(100)
	}
	if v > 150 {
		t.Errorf("ewma = %d, want converged near 100", v)
	}
	if e.Value() != v {
		t.Error("Value mismatch")
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewCMS(0, 10) },
		func() { NewBloom(0, 1) },
		func() { NewWindowRate(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
