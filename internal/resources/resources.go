// Package resources reproduces the paper's Table 3: the hardware cost of
// adding event support to the SUME Event Switch, expressed as a
// percentage of the total resources of the Xilinx Virtex-7 FPGA on the
// NetFPGA SUME board.
//
// The paper measured synthesized LUT/FF/BRAM counts; we substitute a
// structural cost model (see DESIGN.md §2): each block the event
// architecture adds over the baseline switch — event FIFOs, the Event
// Merger, the timer block, the packet generator, the link monitor, and
// the traffic-manager event taps — is assigned LUT/flip-flop/block-RAM
// costs from standard FPGA sizing rules (a 36Kb BRAM per 36K FIFO bits, a
// counter+comparator per timer, a mux tree per merged metadata word).
// The claim under test is the *shape*: event support costs at most a few
// percent of the device, with block RAM (the FIFOs and generator
// templates) dominating.
package resources

import "fmt"

// Device describes an FPGA's total resources.
type Device struct {
	Name   string
	LUTs   int
	FFs    int
	BRAM36 int // 36Kb block RAM tiles
}

// Virtex7_690T is the XC7V690T on the NetFPGA SUME board, the paper's
// target device.
var Virtex7_690T = Device{
	Name:   "xc7v690t",
	LUTs:   433_200,
	FFs:    866_400,
	BRAM36: 1_470,
}

// Item is one hardware block with its resource cost.
type Item struct {
	Name   string
	LUTs   float64
	FFs    float64
	BRAM36 float64
}

// Usage is a total resource consumption.
type Usage struct {
	LUTs   float64
	FFs    float64
	BRAM36 float64
}

// Inventory is a bill of hardware blocks.
type Inventory struct {
	Items []Item
}

// Add appends an item.
func (inv *Inventory) Add(it Item) { inv.Items = append(inv.Items, it) }

// Total sums the inventory.
func (inv Inventory) Total() Usage {
	var u Usage
	for _, it := range inv.Items {
		u.LUTs += it.LUTs
		u.FFs += it.FFs
		u.BRAM36 += it.BRAM36
	}
	return u
}

// Percent expresses the usage as percentages of a device's totals.
func (u Usage) Percent(d Device) (lut, ff, bram float64) {
	return 100 * u.LUTs / float64(d.LUTs),
		100 * u.FFs / float64(d.FFs),
		100 * u.BRAM36 / float64(d.BRAM36)
}

// EventConfig describes the event-support hardware whose cost is modeled.
type EventConfig struct {
	// Ports is the number of switch ports (link monitors, merger arbitration).
	Ports int
	// EventChannels is the number of distinct non-packet event kinds
	// wired into the merger (the SUME prototype carries enqueue,
	// dequeue, drop, timer, link-status, and generated-packet events).
	EventChannels int
	// FIFODepth is the per-channel event FIFO depth in entries.
	FIFODepth int
	// MetaWidthBits is the width of one event metadata record.
	MetaWidthBits int
	// Timers is the number of hardware timers.
	Timers int
	// Generator enables the packet generator block.
	Generator bool
}

// SUMEEventConfig is the configuration of the paper's prototype: 4 ports,
// six event channels, 1024-entry FIFOs of 96-bit records, 8 timers, and
// the packet generator.
func SUMEEventConfig() EventConfig {
	return EventConfig{
		Ports:         4,
		EventChannels: 6,
		FIFODepth:     1024,
		MetaWidthBits: 96,
		Timers:        8,
		Generator:     true,
	}
}

// Per-block cost constants. The FIFO rule is exact (bits / 36Kb, rounded
// up per physical FIFO); the logic constants are standard sizing
// estimates for the respective structures at 200 MHz on 7-series parts.
const (
	fifoCtrlLUTs = 70  // read/write pointers, full/empty logic
	fifoCtrlFFs  = 110 // pointer and status registers

	mergerLUTsPerChannel = 110 // per-channel mux leg + arbitration
	mergerFFsPerChannel  = 140 // staging register per channel
	mergerLUTsPerBit     = 1.0 // metadata bus insertion mux
	mergerFFsPerBit      = 2.0 // two-deep pipeline register on the bus

	timerLUTs = 85  // 64-bit counter + comparator + config regs
	timerFFs  = 130 // counter + period register

	generatorLUTs   = 420 // DMA-style template reader + pacing
	generatorFFs    = 560
	generatorBRAM36 = 8 // template packet memory

	linkMonLUTsPerPort = 25
	linkMonFFsPerPort  = 40

	tapLUTsPerChannel = 45 // TM enqueue/dequeue/drop event taps
	tapFFsPerChannel  = 60

	emptyPktBufBRAM36 = 3 // empty-packet injection staging buffer
)

// bram36For returns the 36Kb tiles for a FIFO of depth x width bits.
func bram36For(depth, widthBits int) float64 {
	bits := depth * widthBits
	tiles := (bits + 36*1024 - 1) / (36 * 1024)
	if tiles < 1 {
		tiles = 1
	}
	return float64(tiles)
}

// EventLogicInventory itemizes the hardware the event-driven architecture
// adds on top of a baseline PISA switch.
func EventLogicInventory(cfg EventConfig) Inventory {
	var inv Inventory
	inv.Add(Item{
		Name:   fmt.Sprintf("event FIFOs (%dx depth %d x %db)", cfg.EventChannels, cfg.FIFODepth, cfg.MetaWidthBits),
		LUTs:   float64(cfg.EventChannels * fifoCtrlLUTs),
		FFs:    float64(cfg.EventChannels * fifoCtrlFFs),
		BRAM36: float64(cfg.EventChannels) * bram36For(cfg.FIFODepth, cfg.MetaWidthBits),
	})
	inv.Add(Item{
		Name: "event merger",
		LUTs: float64(cfg.EventChannels)*mergerLUTsPerChannel +
			float64(cfg.MetaWidthBits)*mergerLUTsPerBit*float64(cfg.EventChannels)/2,
		FFs: float64(cfg.EventChannels)*mergerFFsPerChannel +
			float64(cfg.MetaWidthBits)*mergerFFsPerBit,
		BRAM36: emptyPktBufBRAM36,
	})
	if cfg.Timers > 0 {
		inv.Add(Item{
			Name: fmt.Sprintf("timer block (%d timers)", cfg.Timers),
			LUTs: float64(cfg.Timers * timerLUTs),
			FFs:  float64(cfg.Timers * timerFFs),
		})
	}
	if cfg.Generator {
		inv.Add(Item{
			Name:   "packet generator",
			LUTs:   generatorLUTs,
			FFs:    generatorFFs,
			BRAM36: generatorBRAM36,
		})
	}
	inv.Add(Item{
		Name: fmt.Sprintf("link monitors (%d ports)", cfg.Ports),
		LUTs: float64(cfg.Ports * linkMonLUTsPerPort),
		FFs:  float64(cfg.Ports * linkMonFFsPerPort),
	})
	inv.Add(Item{
		Name: "TM event taps",
		LUTs: float64(cfg.EventChannels * tapLUTsPerChannel),
		FFs:  float64(cfg.EventChannels * tapFFsPerChannel),
	})
	return inv
}

// Table3Row is one row of the reproduced Table 3.
type Table3Row struct {
	Resource string
	Paper    float64 // the paper's reported % increase
	Measured float64 // the model's % increase
}

// Table3 computes the reproduction of the paper's Table 3 on the given
// device for the given event configuration.
func Table3(cfg EventConfig, dev Device) []Table3Row {
	lut, ff, bram := EventLogicInventory(cfg).Total().Percent(dev)
	return []Table3Row{
		{Resource: "Lookup Tables", Paper: 0.5, Measured: lut},
		{Resource: "Flip Flops", Paper: 0.4, Measured: ff},
		{Resource: "Block RAM", Paper: 2.0, Measured: bram},
	}
}
