package resources

import (
	"math"
	"testing"
)

func TestBram36For(t *testing.T) {
	cases := []struct {
		depth, width int
		want         float64
	}{
		{1024, 96, 3}, // 98304 bits -> 3 tiles
		{512, 96, 2},  // 49152 bits -> 2 tiles
		{16, 8, 1},    // tiny FIFO still costs one tile
		{1024, 36, 1}, // exactly 36Kb
		{1025, 36, 2}, // one bit over
	}
	for _, c := range cases {
		if got := bram36For(c.depth, c.width); got != c.want {
			t.Errorf("bram36For(%d,%d) = %v, want %v", c.depth, c.width, got, c.want)
		}
	}
}

func TestInventoryTotals(t *testing.T) {
	var inv Inventory
	inv.Add(Item{Name: "a", LUTs: 10, FFs: 20, BRAM36: 1})
	inv.Add(Item{Name: "b", LUTs: 5, FFs: 5, BRAM36: 2})
	u := inv.Total()
	if u.LUTs != 15 || u.FFs != 25 || u.BRAM36 != 3 {
		t.Errorf("total = %+v", u)
	}
	lut, ff, bram := u.Percent(Device{LUTs: 1500, FFs: 2500, BRAM36: 30})
	if lut != 1 || ff != 1 || bram != 10 {
		t.Errorf("percent = %v %v %v", lut, ff, bram)
	}
}

func TestTable3MatchesPaperShape(t *testing.T) {
	rows := Table3(SUMEEventConfig(), Virtex7_690T)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Resource] = r
		if r.Measured <= 0 {
			t.Errorf("%s measured %.3f, want positive", r.Resource, r.Measured)
		}
		// The headline claim: event support costs at most ~2% of the
		// device in any resource class.
		if r.Measured > 2.5 {
			t.Errorf("%s measured %.3f%%, exceeds the paper's <=2%% envelope", r.Resource, r.Measured)
		}
		// And it should be within 2x of the paper's reported figure.
		ratio := r.Measured / r.Paper
		if ratio < 0.4 || ratio > 2.0 {
			t.Errorf("%s measured %.3f%% vs paper %.1f%% (ratio %.2f)", r.Resource, r.Measured, r.Paper, ratio)
		}
	}
	// BRAM must dominate relative cost (Table 3's key feature: 2.0 >> 0.5).
	if byName["Block RAM"].Measured <= byName["Lookup Tables"].Measured {
		t.Error("BRAM increase should dominate LUT increase")
	}
	if byName["Block RAM"].Measured <= byName["Flip Flops"].Measured {
		t.Error("BRAM increase should dominate FF increase")
	}
}

func TestTable3ScalesWithFIFODepth(t *testing.T) {
	small := SUMEEventConfig()
	small.FIFODepth = 128
	big := SUMEEventConfig()
	big.FIFODepth = 8192
	smallBram := Table3(small, Virtex7_690T)[2].Measured
	bigBram := Table3(big, Virtex7_690T)[2].Measured
	if bigBram <= smallBram {
		t.Errorf("BRAM cost did not grow with FIFO depth: %v vs %v", smallBram, bigBram)
	}
	// LUT cost should be insensitive to FIFO depth.
	smallLUT := Table3(small, Virtex7_690T)[0].Measured
	bigLUT := Table3(big, Virtex7_690T)[0].Measured
	if math.Abs(smallLUT-bigLUT) > 1e-9 {
		t.Errorf("LUT cost changed with FIFO depth: %v vs %v", smallLUT, bigLUT)
	}
}

func TestNoTimersNoGeneratorCheaper(t *testing.T) {
	full := EventLogicInventory(SUMEEventConfig()).Total()
	lean := SUMEEventConfig()
	lean.Timers = 0
	lean.Generator = false
	leanU := EventLogicInventory(lean).Total()
	if leanU.LUTs >= full.LUTs || leanU.FFs >= full.FFs || leanU.BRAM36 >= full.BRAM36 {
		t.Errorf("lean config not cheaper: %+v vs %+v", leanU, full)
	}
}
