package checkpoint

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(0xab)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 62)
	e.I64(-42)
	e.Int(-7)
	e.F64(math.Pi)
	e.BytesField([]byte{1, 2, 3})
	e.BytesField(nil)
	e.String("hello")

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 0xab {
		t.Errorf("U8 = %#x", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 1<<62 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != -7 {
		t.Errorf("Int = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := d.BytesField(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("BytesField = %v", v)
	}
	if v := d.BytesField(); len(v) != 0 {
		t.Errorf("empty BytesField = %v", v)
	}
	if v := d.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if d.Err() != nil {
		t.Fatalf("Err = %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		e := NewEncoder()
		e.U64(12345)
		e.String("section")
		e.F64(0.25)
		return e.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("same fields encoded to different bytes")
	}
}

// TestDecoderStickyError verifies a truncated read poisons every later
// read and zero values come back instead of garbage.
func TestDecoderStickyError(t *testing.T) {
	e := NewEncoder()
	e.U32(7)
	d := NewDecoder(e.Bytes())
	d.U64() // needs 8 bytes, only 4 present
	if d.Err() == nil {
		t.Fatal("truncated U64 read did not set the error")
	}
	if v := d.U32(); v != 0 {
		t.Errorf("read after error = %d, want 0", v)
	}
	want := d.Err()
	d.Fail(os.ErrInvalid)
	if d.Err() != want {
		t.Error("Fail overwrote the first error")
	}
}

func TestDecoderBytesFieldHugeLength(t *testing.T) {
	e := NewEncoder()
	e.U32(1 << 30) // length prefix far past the buffer
	d := NewDecoder(e.Bytes())
	if b := d.BytesField(); b != nil {
		t.Errorf("BytesField = %d bytes, want nil", len(b))
	}
	if d.Err() == nil {
		t.Error("oversized length prefix did not set the error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := New(0x1234)
	f.Add("alpha", []byte("first"))
	f.Add("beta", nil)
	f.Add("gamma", bytes.Repeat([]byte{0xcc}, 1000))

	g, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g.ConfigDigest != 0x1234 {
		t.Errorf("ConfigDigest = %#x", g.ConfigDigest)
	}
	if names := g.Names(); len(names) != 3 || names[0] != "alpha" || names[1] != "beta" || names[2] != "gamma" {
		t.Errorf("Names = %v", names)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		want, _ := f.Section(name)
		got, ok := g.Section(name)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("section %s: got %d bytes, want %d", name, len(got), len(want))
		}
	}
}

func TestFileRejectsCorruption(t *testing.T) {
	f := New(1)
	f.Add("state", []byte("payload bytes here"))
	enc := f.Encode()

	if _, err := Decode(enc[:len(enc)-3]); err == nil {
		t.Error("truncated file decoded")
	}

	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-7] ^= 0x01 // inside the section payload
	if _, err := Decode(flipped); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("bit flip not caught by CRC: %v", err)
	}

	notMagic := append([]byte(nil), enc...)
	notMagic[0] ^= 0xff
	if _, err := Decode(notMagic); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic not refused: %v", err)
	}

	badVer := append([]byte(nil), enc...)
	badVer[4] ^= 0xff // format version field
	if _, err := Decode(badVer); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not refused: %v", err)
	}
}

func TestDuplicateSectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate section name did not panic")
		}
	}()
	f := New(0)
	f.Add("x", nil)
	f.Add("x", nil)
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	f := New(9)
	f.Add("s", []byte("v1"))
	if err := f.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	g := New(9)
	g.Add("s", []byte("v2"))
	if err := g.WriteFile(path); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	h, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if b, _ := h.Section("s"); !bytes.Equal(b, []byte("v2")) {
		t.Errorf("section = %q, want v2", b)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("dir has %d entries after writes, want 1", len(entries))
	}
}

func TestDigestSeparated(t *testing.T) {
	if Digest("ab", "c") == Digest("a", "bc") {
		t.Error("Digest does not separate parts")
	}
	if Digest("x") != Digest("x") {
		t.Error("Digest not deterministic")
	}
	if Digest("x") == Digest("y") {
		t.Error("distinct inputs collide trivially")
	}
}
