// Package checkpoint provides versioned, deterministic serialization of
// simulator state. A checkpoint is a set of named sections, each written
// by the component that owns the state (the scheduler cannot serialize
// closures, so every component snapshots its own data state plus the
// (at, seq) coordinates of its pending events, and re-creates those
// events itself on restore — see DESIGN.md §13).
//
// The codec is fixed-width little-endian with length-prefixed byte
// strings: no varints, no maps, no reflection, so the same state always
// encodes to the same bytes. The Decoder carries a sticky error; callers
// check Err once at the end of a section instead of after every field.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder appends fixed-width little-endian fields to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) BytesField(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads fields written by Encoder. The first malformed read sets
// a sticky error; subsequent reads return zero values.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Fail records err (if none is recorded yet) and poisons further reads.
func (d *Decoder) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("checkpoint: truncated section: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// BytesField reads a length-prefixed byte string. The returned slice
// aliases the decoder's buffer; copy it if it must outlive the decode.
func (d *Decoder) BytesField() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	return d.take(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.BytesField()) }
