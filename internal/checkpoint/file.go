package checkpoint

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/telemetry/self"
)

// Magic identifies a checkpoint file ("EVCK").
const Magic = uint32(0x4556434b)

// FormatVersion is the checkpoint file format version. Bump on any
// incompatible layout change; Open refuses mismatched versions so a
// resume never silently misreads old state.
const FormatVersion = uint32(1)

// File is a checkpoint: a format version, a digest of the run
// configuration that produced it, and an ordered list of named sections.
// Restore refuses a file whose config digest does not match the rebuilt
// simulation: state can only be poured back into an identically
// constructed object graph.
type File struct {
	// ConfigDigest fingerprints the run configuration (flags, program
	// source, topology) the checkpoint belongs to.
	ConfigDigest uint64

	names    []string
	sections map[string][]byte
}

// New returns an empty checkpoint file for the given config digest.
func New(configDigest uint64) *File {
	return &File{ConfigDigest: configDigest, sections: make(map[string][]byte)}
}

// Add appends a named section. Adding a duplicate name panics: sections
// are written once per component, so a duplicate is a wiring bug.
func (f *File) Add(name string, payload []byte) {
	if _, ok := f.sections[name]; ok {
		panic("checkpoint: duplicate section " + name)
	}
	f.names = append(f.names, name)
	f.sections[name] = payload
}

// Section returns the payload of a named section.
func (f *File) Section(name string) ([]byte, bool) {
	b, ok := f.sections[name]
	return b, ok
}

// Names returns the section names in write order.
func (f *File) Names() []string { return f.names }

// Encode serializes the file: header (magic, format version, config
// digest, section count), then each section as name, payload, and a
// CRC32 of both. A torn or bit-flipped file fails decode rather than
// restoring corrupt state.
func (f *File) Encode() []byte {
	e := NewEncoder()
	e.U32(Magic)
	e.U32(FormatVersion)
	e.U64(f.ConfigDigest)
	e.U32(uint32(len(f.names)))
	for _, name := range f.names {
		se := NewEncoder()
		se.String(name)
		se.BytesField(f.sections[name])
		e.BytesField(se.Bytes())
		e.U32(crc32.ChecksumIEEE(se.Bytes()))
	}
	return e.Bytes()
}

// Decode parses an encoded checkpoint, verifying magic, format version,
// and every section CRC.
func Decode(buf []byte) (*File, error) {
	d := NewDecoder(buf)
	if m := d.U32(); d.Err() == nil && m != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x (not a checkpoint file)", m)
	}
	if v := d.U32(); d.Err() == nil && v != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d, this build reads %d", v, FormatVersion)
	}
	f := New(d.U64())
	n := int(d.U32())
	for i := 0; i < n && d.Err() == nil; i++ {
		body := d.BytesField()
		sum := d.U32()
		if d.Err() != nil {
			break
		}
		if got := crc32.ChecksumIEEE(body); got != sum {
			return nil, fmt.Errorf("checkpoint: section %d CRC mismatch (file corrupt)", i)
		}
		sd := NewDecoder(body)
		name := sd.String()
		payload := sd.BytesField()
		if sd.Err() != nil {
			return nil, fmt.Errorf("checkpoint: section %d: %w", i, sd.Err())
		}
		f.Add(name, payload)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// WriteFile writes the checkpoint atomically: encode to a temp file in
// the destination directory, fsync, then rename over the target. A crash
// (or SIGKILL) mid-write leaves either the previous checkpoint or none —
// never a torn file.
func (f *File) WriteFile(path string) error {
	start := time.Now()
	buf := f.Encode()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if self.On() {
		self.CheckpointWriteNS.Observe(uint64(time.Since(start).Nanoseconds()))
		self.CheckpointBytes.Add(uint64(len(buf)))
		self.CheckpointLastUnixNS.Set(time.Now().UnixNano())
	}
	return nil
}

// Open reads and decodes a checkpoint file.
func Open(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	f, err := Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return f, nil
}

// Digest fingerprints a run configuration with FNV-1a over its string
// rendering. It is not cryptographic; it exists to catch resuming a
// checkpoint under different flags or a different program source.
func Digest(parts ...string) uint64 {
	const (
		offset = uint64(14695981039346656037)
		prime  = uint64(1099511628211)
	)
	h := offset
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= prime
	}
	return h
}
