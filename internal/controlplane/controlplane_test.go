package controlplane

import (
	"testing"

	"repro/internal/events"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/sketch"
)

func TestDoLatencyAndCounting(t *testing.T) {
	sched := sim.NewScheduler()
	a := New(sched, sim.NewRNG(1))
	a.Latency = sim.Millisecond
	a.Jitter = 0
	done := sim.Time(0)
	at := a.Do(3, func() { done = sched.Now() })
	if at != sim.Millisecond {
		t.Errorf("scheduled at %v", at)
	}
	sched.Run(10 * sim.Millisecond)
	if done != sim.Millisecond {
		t.Errorf("applied at %v, want 1ms", done)
	}
	if a.Messages != 3 || a.Completed != 1 {
		t.Errorf("messages=%d completed=%d", a.Messages, a.Completed)
	}
}

func TestJitterVaries(t *testing.T) {
	sched := sim.NewScheduler()
	a := New(sched, sim.NewRNG(2))
	a.Latency = sim.Millisecond
	a.Jitter = sim.Millisecond
	seen := map[sim.Time]bool{}
	for i := 0; i < 50; i++ {
		at := a.Do(1, nil)
		d := at - sched.Now()
		if d < sim.Millisecond || d >= 2*sim.Millisecond {
			t.Fatalf("delay %v out of [1ms,2ms)", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter not varying: %d distinct delays", len(seen))
	}
}

func TestInstallEntryTakesEffectLater(t *testing.T) {
	sched := sim.NewScheduler()
	a := New(sched, sim.NewRNG(3))
	a.Latency, a.Jitter = sim.Millisecond, 0
	tbl := pisa.NewTable("t", []pisa.MatchKind{pisa.Exact}, func(ctx *pisa.Context, dst []uint64) bool {
		dst[0] = 1
		return true
	})
	a.InstallEntry(tbl, &pisa.Entry{Values: []uint64{1}, Action: func(*pisa.Context, []uint64) {}})
	if tbl.Len() != 0 {
		t.Error("entry visible before channel latency")
	}
	sched.Run(2 * sim.Millisecond)
	if tbl.Len() != 1 {
		t.Error("entry not installed")
	}
}

func TestResetCMSCostsRowMessages(t *testing.T) {
	sched := sim.NewScheduler()
	a := New(sched, sim.NewRNG(4))
	c := sketch.NewCMS(5, 64)
	c.Update(1, 10)
	a.ResetCMS(c)
	sched.Run(sim.Second)
	if a.Messages != 5 {
		t.Errorf("messages = %d, want 5 (one per row)", a.Messages)
	}
	if c.Estimate(1) != 0 {
		t.Error("sketch not reset")
	}
}

func TestPeriodicCMSReset(t *testing.T) {
	sched := sim.NewScheduler()
	a := New(sched, sim.NewRNG(5))
	a.Latency, a.Jitter = 10*sim.Microsecond, 0
	c := sketch.NewCMS(3, 16)
	tk := a.PeriodicCMSReset(c, 10*sim.Millisecond)
	sched.Run(55 * sim.Millisecond)
	tk.Stop()
	if a.Completed != 5 {
		t.Errorf("completed = %d resets, want 5", a.Completed)
	}
	if a.Messages != 15 {
		t.Errorf("messages = %d, want 15", a.Messages)
	}
}

func TestResetRegister(t *testing.T) {
	sched := sim.NewScheduler()
	a := New(sched, sim.NewRNG(6))
	a.Latency, a.Jitter = sim.Microsecond, 0
	r := pisa.NewMultiPortRegister("r", 4, 2)
	r.Tick(1)
	var ctx pisa.Context
	ctx.Reset(nil, eventsIngress(), 0, 1)
	r.Write(&ctx, 0, 99)
	a.ResetRegister(r)
	sched.Run(sim.Millisecond)
	if r.Stale(0) != 0 {
		t.Error("register not reset")
	}
}

func eventsIngress() events.Event { return events.Event{Kind: events.IngressPacket} }
