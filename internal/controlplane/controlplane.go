// Package controlplane models the switch-local control plane and its
// channel to the data plane. The paper's motivating overhead argument
// (§1) is that baseline PISA architectures force periodic maintenance —
// like resetting a count-min sketch — through this channel: every
// operation costs messages and suffers millisecond-scale latency and
// jitter, while an event-driven data plane does the same work from a
// timer event with zero control traffic and cycle-scale jitter.
package controlplane

import (
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/sketch"
)

// Agent is a control-plane process attached to one switch's control
// channel. Operations are asynchronous: they complete after the channel
// latency plus uniform jitter (PCIe + driver + software stack).
type Agent struct {
	sched *sim.Scheduler
	rng   *sim.RNG

	// Latency is the one-way control-channel latency per operation.
	Latency sim.Time
	// Jitter adds a uniform [0, Jitter) delay per operation, modeling OS
	// scheduling noise in the control-plane software.
	Jitter sim.Time

	// Messages counts control-channel messages issued.
	Messages uint64
	// Completed counts operations that have taken effect.
	Completed uint64
}

// New builds an agent with typical PCIe-attached control latency
// (default 100 microseconds ± 400 microseconds jitter, matching software
// control planes under load).
func New(sched *sim.Scheduler, rng *sim.RNG) *Agent {
	return &Agent{
		sched:   sched,
		rng:     rng,
		Latency: 100 * sim.Microsecond,
		Jitter:  400 * sim.Microsecond,
	}
}

// delay draws one operation's completion delay.
func (a *Agent) delay() sim.Time {
	d := a.Latency
	if a.Jitter > 0 {
		d += sim.Time(a.rng.Int63n(int64(a.Jitter)))
	}
	return d
}

// Do issues an operation that costs msgs control messages and applies fn
// when it reaches the data plane. It returns the scheduled apply time.
func (a *Agent) Do(msgs int, fn func()) sim.Time {
	a.Messages += uint64(msgs)
	at := a.sched.Now() + a.delay()
	a.sched.At(at, func() {
		a.Completed++
		if fn != nil {
			fn()
		}
	})
	return at
}

// InstallEntry writes a table entry through the control channel
// (one message).
func (a *Agent) InstallEntry(t *pisa.Table, e *pisa.Entry) {
	a.Do(1, func() {
		// Installation errors are programming mistakes in experiments;
		// surface them loudly.
		if err := t.AddEntry(e); err != nil {
			panic(err)
		}
	})
}

// ResetRegister zeroes a shared register (one message per register).
func (a *Agent) ResetRegister(r *pisa.SharedRegister) {
	a.Do(1, r.Reset)
}

// ResetCMS resets a count-min sketch row by row, as a baseline
// architecture's control plane must (one message per row; paper §1:
// "This can lead to significant overhead for the control plane,
// especially if the data structure must be frequently reset.").
func (a *Agent) ResetCMS(c *sketch.CMS) sim.Time {
	return a.Do(c.ResetCost(), c.Reset)
}

// PeriodicCMSReset arranges a control-plane-driven reset every period,
// returning the ticker so callers can stop it.
func (a *Agent) PeriodicCMSReset(c *sketch.CMS, period sim.Time) *sim.Ticker {
	return a.sched.Every(period, func() { a.ResetCMS(c) })
}
