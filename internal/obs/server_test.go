package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/self"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	self.Reset()
	self.SetDomains(2)
	self.SchedDispatch.Add(123)
	self.BurstOcc.Observe(4)
	self.BurstOcc.Observe(9)
	self.DomainWindows(0).Add(7)
	self.DomainStallNS(1).Add(5500)
	self.SimNowPS.Set(1_000_000)

	c := telemetry.New(telemetry.Options{})
	c.Registry().Counter("sw0.events").Add(42)
	c.Registry().Histogram("r0.lag").Observe(3)

	srv, err := Serve(Options{
		Addr: "127.0.0.1:0",
		Runs: func() []telemetry.RunExport {
			return []telemetry.RunExport{{Label: "trial \"0\"", C: c}}
		},
		Status: func() map[string]any { return map[string]any{"config_digest": "abc123"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !self.On() {
		t.Fatal("Serve did not enable self-metrics")
	}
	base := "http://" + srv.Addr()

	body, ctype := get(t, base+"/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type %q", ctype)
	}
	for _, want := range []string{
		"ev_self_sched_dispatch 123",
		"# TYPE ev_self_burst_slots_per_dispatch histogram",
		"ev_self_burst_slots_per_dispatch_count 2",
		"ev_self_burst_slots_per_dispatch_sum 13",
		"ev_self_domain0_windows 7",
		"ev_self_domain1_barrier_stall_ns 5500",
		"ev_self_sim_now_ps 1000000",
		`ev_run_sw0_events{run="trial \"0\""} 42`,
		`ev_run_r0_lag_bucket{run="trial \"0\"",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The scrape itself was counted (this is the second scrape's view
	// only if we scrape again; check >= 1 via the self counter).
	if self.Scrapes.Value() == 0 {
		t.Error("scrape not counted")
	}

	body, ctype = get(t, base+"/status")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type %q", ctype)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if doc["sim_now_ps"].(float64) != 1_000_000 {
		t.Errorf("sim_now_ps = %v", doc["sim_now_ps"])
	}
	if doc["config_digest"] != "abc123" {
		t.Errorf("host status field missing: %v", doc["config_digest"])
	}
	doms := doc["domain_status"].([]any)
	if len(doms) != 2 {
		t.Fatalf("domain_status has %d rows, want 2", len(doms))
	}
	d1 := doms[1].(map[string]any)
	if d1["barrier_stall_ns"].(float64) != 5500 {
		t.Errorf("domain 1 stall = %v", d1["barrier_stall_ns"])
	}

	body, _ = get(t, base+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}
