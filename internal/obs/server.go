// Package obs is the simulator's HTTP introspection endpoint: a
// read-only management plane (modeled on ndn-dpdk's ndndpdk-svc) that
// serves the engine's wall-clock self-metrics and the latest
// deterministic telemetry snapshot while a run executes.
//
// Three routes:
//
//	/metrics      — Prometheus text format: every internal/telemetry/self
//	                instrument (ev_self_*) plus the most recent
//	                deterministic registry snapshots (ev_run_*, labelled
//	                by run).
//	/status       — one JSON object: sim-time progress, windows and
//	                barrier stalls per domain, trial progress, last
//	                checkpoint, and host-supplied fields (config digest).
//	/debug/pprof  — net/http/pprof.
//
// The server only ever reads: self-metrics are atomics, and
// deterministic snapshots come from the host's Runs callback, which
// must return collectors that are either quiescent or in live mode
// (telemetry.Options.Live). Nothing served here feeds back into the
// simulation, so byte-identity of all deterministic outputs with the
// server on vs off is a structural property, pinned by the obs tests.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/self"
)

// Options configures Serve.
type Options struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// Runs returns the deterministic collectors to expose under
	// /metrics and to summarize in /status. May be nil; called per
	// scrape, so it should return the latest completed (or live)
	// snapshots cheaply.
	Runs func() []telemetry.RunExport
	// Status returns host-specific fields merged into the /status
	// object (config digest, output paths, trial labels). May be nil.
	Status func() map[string]any
}

// Server is a running introspection endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	opts Options
}

// Serve starts the endpoint on opts.Addr and enables self-metric
// recording. It returns once the listener is bound, so Addr is final.
func Serve(opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	self.Enable()
	s := &Server{ln: ln, opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server. Self-metric recording stays enabled so final
// log lines can still report totals.
func (s *Server) Close() error { return s.srv.Close() }

// promName sanitizes a dotted metric name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the Prometheus text format.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	self.Scrapes.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	for _, sm := range self.Snapshot() {
		// self.domain3.windows -> ev_self_domain3_windows etc.
		name := "ev_" + promName(sm.Name)
		switch sm.Kind {
		case "counter":
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, sm.Value)
		case "gauge":
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, sm.Value)
		case "hist":
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			var cum uint64
			for _, bk := range sm.Buckets {
				cum += bk.Count
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, bk.High, cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, sm.Count)
			fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, sm.Sum, name, sm.Count)
		}
	}

	if s.opts.Runs != nil {
		runs := s.opts.Runs()
		sort.Slice(runs, func(i, j int) bool { return runs[i].Label < runs[j].Label })
		for _, run := range runs {
			label := fmt.Sprintf("{run=\"%s\"}", promLabel(run.Label))
			for _, m := range run.C.Registry().Snapshot() {
				name := "ev_run_" + promName(m.Name)
				switch m.Type {
				case "counter", "gauge":
					fmt.Fprintf(&b, "# TYPE %s %s\n%s%s %d\n", name, m.Type, name, label, m.Value)
				case "histogram":
					fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
					var cum uint64
					for _, bk := range m.Buckets {
						cum += bk.Count
						fmt.Fprintf(&b, "%s_bucket{run=\"%s\",le=\"%d\"} %d\n",
							name, promLabel(run.Label), bk.High, cum)
					}
					fmt.Fprintf(&b, "%s_bucket{run=\"%s\",le=\"+Inf\"} %d\n",
						name, promLabel(run.Label), m.Count)
					fmt.Fprintf(&b, "%s_sum%s %d\n%s_count%s %d\n",
						name, label, m.Sum, name, label, m.Count)
				}
			}
		}
	}
	w.Write([]byte(b.String()))
}

// domainStatus is one domain's row in /status.
type domainStatus struct {
	Domain         int    `json:"domain"`
	Windows        uint64 `json:"windows"`
	BarrierStallNS uint64 `json:"barrier_stall_ns"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"sim_now_ps":              self.SimNowPS.Value(),
		"domains":                 self.Domains(),
		"sched_dispatch":          self.SchedDispatch.Value(),
		"trials_done":             self.TrialsDone.Value(),
		"trials_total":            self.TrialsTotal.Value(),
		"pool_in_use":             self.PoolInUse.Cur(),
		"pool_high_water":         self.PoolInUse.High(),
		"burst_dispatches":        self.BurstOcc.Count(),
		"stream_flushes":          self.StreamFlushes.Value(),
		"stream_records":          self.StreamRecords.Value(),
		"checkpoint_writes":       self.CheckpointWriteNS.Count(),
		"checkpoint_last_unix_ns": self.CheckpointLastUnixNS.Value(),
	}
	var doms []domainStatus
	for d := 0; d < self.Domains() && d < self.MaxDomains; d++ {
		doms = append(doms, domainStatus{
			Domain:         d,
			Windows:        self.DomainWindows(d).Value(),
			BarrierStallNS: self.DomainStallNS(d).Value(),
		})
	}
	doc["domain_status"] = doms
	if s.opts.Status != nil {
		for k, v := range s.opts.Status() {
			doc[k] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
