package netsim

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
)

// twoHosts wires h1 -- sw -- h2 and returns the h1-side link.
func twoHosts(t *testing.T) (*sim.Scheduler, *Network, *Host, *Host, *Link) {
	t.Helper()
	sched := sim.NewScheduler()
	net := New(sched)
	sw := core.New(core.Config{Name: "s"}, core.Baseline(), sched)
	sw.MustLoad(fwdTo(1))
	net.AddSwitch(sw)
	h1 := net.NewHost("h1", packet.IP4(1, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(1, 0, 0, 2))
	l := net.Attach(h1, sw, 0, sim.Microsecond)
	net.Attach(h2, sw, 1, 0)
	return sched, net, h1, h2, l
}

// TestLostAtSendVsLostInFlight pins the split of the old conflated Lost
// counter: a frame sent into a downed link is LostAtSend; a frame caught
// mid-propagation by a Fail is LostInFlight.
func TestLostAtSendVsLostInFlight(t *testing.T) {
	sched, net, h1, h2, l := twoHosts(t)

	// Frame 1: link fails while the frame is propagating (latency 1us).
	h1.Send(testFrame(100))
	sched.At(500*sim.Nanosecond, func() { net.Fail(l) })
	// Frame 2: sent while the link is down.
	sched.At(2*sim.Microsecond, func() { h1.Send(testFrame(100)) })
	sched.At(3*sim.Microsecond, func() { net.Repair(l) })
	// Frame 3: clean delivery after repair.
	sched.At(4*sim.Microsecond, func() { h1.Send(testFrame(100)) })
	sched.Run(10 * sim.Millisecond)

	if l.LostInFlight() != 1 {
		t.Errorf("LostInFlight = %d, want 1", l.LostInFlight())
	}
	if l.LostAtSend() != 1 {
		t.Errorf("LostAtSend = %d, want 1", l.LostAtSend())
	}
	if l.Lost() != 2 {
		t.Errorf("Lost() = %d, want 2", l.Lost())
	}
	if l.Sent() != 3 || l.Delivered() != 1 {
		t.Errorf("Sent=%d Delivered=%d, want 3/1", l.Sent(), l.Delivered())
	}
	if h2.RxPackets != 1 {
		t.Errorf("h2 rx = %d, want 1", h2.RxPackets)
	}
	if l.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain", l.InFlight())
	}
}

// TestImpairGetsPrivateCopy pins the aliasing fix: a corruption
// impairment that mutates its frame must not scribble on the buffer the
// sender retains, and the receiver sees the mutated copy.
func TestImpairGetsPrivateCopy(t *testing.T) {
	sched, _, h1, h2, l := twoHosts(t)

	orig := testFrame(120)
	sent := append([]byte(nil), orig...)

	l.SetImpair(func(data []byte) []Deliverable {
		for i := range data {
			data[i] ^= 0xFF // corrupt every byte
		}
		return []Deliverable{{Data: data}}
	})

	var got []byte
	h2.OnRecv = func(d []byte) { got = append([]byte(nil), d...) }
	h1.Send(sent)
	sched.Run(sim.Millisecond)

	if !bytes.Equal(sent, orig) {
		t.Error("impairment mutated the sender-retained buffer")
	}
	if got == nil {
		t.Fatal("frame not delivered")
	}
	if bytes.Equal(got, orig) {
		t.Error("receiver saw uncorrupted bytes; impairment had no effect")
	}
	if l.Delivered() != 1 || l.Sent() != 1 {
		t.Errorf("Sent=%d Delivered=%d, want 1/1", l.Sent(), l.Delivered())
	}
}

// TestImpairDropAndDuplicate pins the Dropped/Duplicated accounting and
// the link conservation identity.
func TestImpairDropAndDuplicate(t *testing.T) {
	sched, _, h1, h2, l := twoHosts(t)

	n := 0
	l.SetImpair(func(data []byte) []Deliverable {
		n++
		switch {
		case n%3 == 0: // drop every third frame
			return nil
		case n%3 == 1: // duplicate every first-of-three
			return []Deliverable{{Data: data}, {Data: append([]byte(nil), data...), ExtraDelay: sim.Microsecond}}
		default:
			return []Deliverable{{Data: data}}
		}
	})
	for i := 0; i < 9; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		sched.At(at, func() { h1.Send(testFrame(100)) })
	}
	sched.Run(10 * sim.Millisecond)

	if l.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", l.Dropped())
	}
	if l.Duplicated() != 3 {
		t.Errorf("Duplicated = %d, want 3", l.Duplicated())
	}
	if got, want := h2.RxPackets, uint64(9); got != want {
		t.Errorf("h2 rx = %d, want %d (3 dup + 3 plain + 3 extra copies)", got, want)
	}
	lhs := l.Sent() + l.Duplicated()
	rhs := l.Delivered() + l.LostAtSend() + l.LostInFlight() + l.Dropped() + l.InFlight()
	if lhs != rhs {
		t.Errorf("conservation broken: sent+dup=%d, accounted=%d", lhs, rhs)
	}
}

// TestHostPauseResume pins pause semantics: frames sent while paused are
// held in order and flushed on resume.
func TestHostPauseResume(t *testing.T) {
	sched, _, h1, h2, _ := twoHosts(t)

	var sizes []int
	h2.OnRecv = func(d []byte) { sizes = append(sizes, len(d)) }

	h1.Pause()
	h1.Send(testFrame(100))
	h1.Send(testFrame(200))
	sched.Run(sim.Millisecond)
	if len(sizes) != 0 {
		t.Fatalf("paused host delivered %d frames", len(sizes))
	}
	if h1.HeldFrames != 2 || !h1.Paused() {
		t.Errorf("held=%d paused=%v", h1.HeldFrames, h1.Paused())
	}
	h1.Resume()
	sched.Run(2 * sim.Millisecond)
	if len(sizes) != 2 || sizes[0] != 100 || sizes[1] != 200 {
		t.Errorf("delivered sizes = %v, want [100 200] in order", sizes)
	}
	h1.Resume() // idempotent
}

// TestOnLinkChangeHook pins the network-level link observer used by
// control-plane baselines.
func TestOnLinkChangeHook(t *testing.T) {
	sched, net, _, _, l := twoHosts(t)
	var seen []bool
	net.OnLinkChange = func(got *Link, up bool) {
		if got != l {
			t.Errorf("hook saw wrong link %v", got)
		}
		seen = append(seen, up)
	}
	sched.At(sim.Microsecond, func() { net.Fail(l) })
	sched.At(2*sim.Microsecond, func() { net.Fail(l) }) // idempotent: no second callback
	sched.At(3*sim.Microsecond, func() { net.Repair(l) })
	sched.Run(sim.Millisecond)
	if len(seen) != 2 || seen[0] || !seen[1] {
		t.Errorf("link-change sequence = %v, want [false true]", seen)
	}
}
