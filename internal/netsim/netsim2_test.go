package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
)

func TestTapTransmitObservesWithoutInterfering(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	sw := core.New(core.Config{Name: "s"}, core.Baseline(), sched)
	sw.MustLoad(fwdTo(1))
	net.AddSwitch(sw)
	h1 := net.NewHost("h1", packet.IP4(1, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(1, 0, 0, 2))
	net.Attach(h1, sw, 0, 0)
	net.Attach(h2, sw, 1, 0)

	var tapped [][2]int // (port, len)
	net.TapTransmit(sw, func(port int, data []byte) {
		tapped = append(tapped, [2]int{port, len(data)})
	})
	h1.Send(testFrame(200))
	sched.Run(sim.Millisecond)

	if h2.RxPackets != 1 {
		t.Fatalf("delivery broken by tap: rx=%d", h2.RxPackets)
	}
	if len(tapped) != 1 || tapped[0][0] != 1 || tapped[0][1] != 200 {
		t.Errorf("tapped = %v", tapped)
	}
}

func TestHostSendWhileDetachedPanics(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	h := net.NewHost("h", packet.IP4(1, 0, 0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic sending from unattached host")
		}
	}()
	h.Send(testFrame(100))
}

func TestFailRepairIdempotent(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	s1 := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched)
	s2 := core.New(core.Config{Name: "s2"}, core.EventDriven(), sched)
	net.AddSwitch(s1)
	net.AddSwitch(s2)
	l := net.Connect(s1, 1, s2, 1, 0)
	net.Fail(l)
	net.Fail(l) // no double event
	net.Repair(l)
	net.Repair(l)
	if !l.Up() {
		t.Error("link down after repair")
	}
	if !s1.LinkIsUp(1) || !s2.LinkIsUp(1) {
		t.Error("switch port state inconsistent")
	}
}

func TestConnectLeafSpine(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	var tors, spines []*core.Switch
	for i := 0; i < 3; i++ {
		sw := core.New(core.Config{Name: "tor", Ports: 4}, core.Baseline(), sched)
		net.AddSwitch(sw)
		tors = append(tors, sw)
	}
	for j := 0; j < 3; j++ {
		sw := core.New(core.Config{Name: "spine", Ports: 4}, core.Baseline(), sched)
		net.AddSwitch(sw)
		spines = append(spines, sw)
	}
	net.ConnectLeafSpine(tors, spines, sim.Microsecond)
	if got := len(net.Links()); got != 9 {
		t.Fatalf("links = %d, want 9", got)
	}
	// Every tor uplink and spine downlink is wired.
	for i, tor := range tors {
		for j, spine := range spines {
			if net.LinkAt(tor, 1+j) == nil || net.LinkAt(spine, i) == nil {
				t.Fatalf("missing link tor%d:%d <-> spine%d:%d", i, 1+j, j, i)
			}
			if net.LinkAt(tor, 1+j) != net.LinkAt(spine, i) {
				t.Fatalf("mismatched wiring at tor%d/spine%d", i, j)
			}
		}
	}
}

func TestConnectLeafSpineValidatesPorts(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	tor := core.New(core.Config{Name: "tor", Ports: 2}, core.Baseline(), sched)
	spine := core.New(core.Config{Name: "spine", Ports: 4}, core.Baseline(), sched)
	net.AddSwitch(tor)
	net.AddSwitch(spine)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too few ToR ports")
		}
	}()
	net.ConnectLeafSpine([]*core.Switch{tor}, []*core.Switch{spine, spine, spine}, 0)
}
