package netsim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// pingPong returns a program that forwards host traffic to the uplink
// and uplink traffic to the host, generating reverse-direction load so
// frames cross the domain boundary both ways at once.
func pingPong() *pisa.Program {
	p := pisa.NewProgram("pingpong")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if ctx.Ev.Port == 0 {
			ctx.EgressPort = 1
		} else {
			ctx.EgressPort = 0
		}
	})
	return p
}

// chainFingerprint runs a 2-switch, 2-host chain with the switches split
// across `domains` partition domains (or a plain scheduler when domains
// is 0) and returns a digest of everything observable: per-host rx
// counters, per-switch stats, per-link per-direction counters.
func chainFingerprint(t *testing.T, domains int) string {
	t.Helper()
	var sched0, sched1 *sim.Scheduler
	var net *Network
	if domains == 0 {
		s := sim.NewScheduler()
		sched0, sched1 = s, s
		net = New(s)
	} else {
		p := sim.NewPartition(domains)
		sched0 = p.Sched(0)
		sched1 = p.Sched((domains - 1) % domains)
		net = NewPartitioned(p)
	}
	s1 := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched0)
	s2 := core.New(core.Config{Name: "s2"}, core.EventDriven(), sched1)
	s1.MustLoad(pingPong())
	s2.MustLoad(pingPong())
	net.AddSwitch(s1)
	net.AddSwitch(s2)

	h1 := net.NewHost("h1", packet.IP4(10, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(10, 0, 0, 2))
	net.Attach(h1, s1, 0, 0)
	net.Attach(h2, s2, 0, 0)
	net.Connect(s1, 1, s2, 1, sim.Microsecond)

	// Bidirectional CBR load with identical seeds in every partitioning.
	rng := sim.NewRNG(11)
	g1 := workload.NewGen(h1.Scheduler(), rng.Split(), h1.Send)
	g2 := workload.NewGen(h2.Scheduler(), rng.Split(), h2.Send)
	g1.StartCBR(workload.CBRConfig{
		Flow: packet.Flow{Src: h1.IP, Dst: h2.IP, SrcPort: 1000, DstPort: 2000, Proto: packet.ProtoUDP},
		Size: workload.FixedSize(400), Rate: 400 * sim.Mbps,
	})
	g2.StartCBR(workload.CBRConfig{
		Flow: packet.Flow{Src: h2.IP, Dst: h1.IP, SrcPort: 2000, DstPort: 1000, Proto: packet.ProtoUDP},
		Size: workload.FixedSize(900), Rate: 700 * sim.Mbps,
	})

	net.Run(2 * sim.Millisecond)

	out := fmt.Sprintf("h1 rx=%d/%dB h2 rx=%d/%dB\n", h1.RxPackets, h1.RxBytes, h2.RxPackets, h2.RxBytes)
	for _, sw := range net.Switches() {
		st := sw.Stats()
		out += fmt.Sprintf("%s rx=%d tx=%d cycles=%d\n", sw.Name(), st.RxPackets, st.TxPackets, st.Cycles)
	}
	for i, l := range net.Links() {
		for dir := 0; dir < 2; dir++ {
			c := l.Counters(dir)
			out += fmt.Sprintf("link%d dir%d sent=%d delivered=%d inflight=%d\n",
				i, dir, c.Sent, c.Delivered, c.InFlight())
		}
	}
	return out
}

// TestPartitionedChainByteIdentical is netsim's core determinism pin: a
// topology split across 1 or 2 domains (and run on a plain scheduler)
// yields identical counters everywhere, down to in-flight frames.
func TestPartitionedChainByteIdentical(t *testing.T) {
	legacy := chainFingerprint(t, 0)
	for _, domains := range []int{1, 2} {
		got := chainFingerprint(t, domains)
		if got != legacy {
			t.Errorf("domains=%d diverges from single-scheduler run:\n--- legacy ---\n%s--- domains=%d ---\n%s",
				domains, legacy, domains, got)
		}
	}
}

// TestScheduleLinkChangePartitioned verifies a scheduled fail/repair on
// a cross-domain link transitions both sides at the same virtual time
// and loses exactly the frames a single-scheduler run would lose.
func TestScheduleLinkChangeFingerprint(t *testing.T) {
	run := func(domains int) string {
		var sched0, sched1 *sim.Scheduler
		var net *Network
		if domains == 0 {
			s := sim.NewScheduler()
			sched0, sched1 = s, s
			net = New(s)
		} else {
			p := sim.NewPartition(domains)
			sched0, sched1 = p.Sched(0), p.Sched(domains-1)
			net = NewPartitioned(p)
		}
		s1 := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched0)
		s2 := core.New(core.Config{Name: "s2"}, core.EventDriven(), sched1)
		s1.MustLoad(pingPong())
		s2.MustLoad(pingPong())
		net.AddSwitch(s1)
		net.AddSwitch(s2)
		h1 := net.NewHost("h1", packet.IP4(10, 0, 0, 1))
		h2 := net.NewHost("h2", packet.IP4(10, 0, 0, 2))
		net.Attach(h1, s1, 0, 0)
		net.Attach(h2, s2, 0, 0)
		trunk := net.Connect(s1, 1, s2, 1, sim.Microsecond)

		rng := sim.NewRNG(23)
		g := workload.NewGen(h1.Scheduler(), rng.Split(), h1.Send)
		g.StartCBR(workload.CBRConfig{
			Flow: packet.Flow{Src: h1.IP, Dst: h2.IP, SrcPort: 7, DstPort: 8, Proto: packet.ProtoUDP},
			Size: workload.FixedSize(600), Rate: 900 * sim.Mbps,
		})

		net.ScheduleLinkChange(trunk, 500*sim.Microsecond, false)
		net.ScheduleLinkChange(trunk, 800*sim.Microsecond, true)
		net.Run(2 * sim.Millisecond)

		st1, st2 := s1.Stats(), s2.Stats()
		return fmt.Sprintf("h2=%d trunk sent=%d delivered=%d lostSend=%d lostFlight=%d linkEvents=%d/%d up=%v",
			h2.RxPackets, trunk.Sent(), trunk.Delivered(), trunk.LostAtSend(), trunk.LostInFlight(),
			st1.EventsMerged[events.LinkStatusChange], st2.EventsMerged[events.LinkStatusChange], trunk.Up())
	}
	legacy := run(0)
	for _, domains := range []int{1, 2} {
		if got := run(domains); got != legacy {
			t.Errorf("domains=%d: %q, want %q", domains, got, legacy)
		}
	}
}

// TestCrossDomainDirectFailPanics pins the guard: Fail on a cross-domain
// link is a programming error (one domain may not touch the other's
// state mid-run).
func TestCrossDomainDirectFailPanics(t *testing.T) {
	p := sim.NewPartition(2)
	net := NewPartitioned(p)
	s1 := core.New(core.Config{Name: "s1"}, core.Baseline(), p.Sched(0))
	s2 := core.New(core.Config{Name: "s2"}, core.Baseline(), p.Sched(1))
	net.AddSwitch(s1)
	net.AddSwitch(s2)
	l := net.Connect(s1, 1, s2, 1, sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("Fail on cross-domain link did not panic")
		}
	}()
	net.Fail(l)
}

// TestCrossDomainZeroLatencyPanics pins the lookahead precondition at
// link-construction time.
func TestCrossDomainZeroLatencyPanics(t *testing.T) {
	p := sim.NewPartition(2)
	net := NewPartitioned(p)
	s1 := core.New(core.Config{Name: "s1"}, core.Baseline(), p.Sched(0))
	s2 := core.New(core.Config{Name: "s2"}, core.Baseline(), p.Sched(1))
	net.AddSwitch(s1)
	net.AddSwitch(s2)
	defer func() {
		if recover() == nil {
			t.Error("zero-latency cross-domain link did not panic")
		}
	}()
	net.Connect(s1, 1, s2, 1, 0)
}

// TestForeignSchedulerRejected verifies AddSwitch refuses a switch built
// on a scheduler outside the partition.
func TestForeignSchedulerRejected(t *testing.T) {
	p := sim.NewPartition(2)
	net := NewPartitioned(p)
	sw := core.New(core.Config{Name: "alien"}, core.Baseline(), sim.NewScheduler())
	defer func() {
		if recover() == nil {
			t.Error("foreign-scheduler switch did not panic")
		}
	}()
	net.AddSwitch(sw)
}
