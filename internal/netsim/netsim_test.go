package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// fwdTo returns a program forwarding every packet to a fixed port.
func fwdTo(port int) *pisa.Program {
	p := pisa.NewProgram("fwd")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = port })
	return p
}

func testFrame(n int) []byte {
	return packet.BuildFrame(packet.FrameSpec{
		Flow: packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
			SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
		},
		TotalLen: n,
	})
}

func TestHostToHostThroughTwoSwitches(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	s1 := core.New(core.Config{Name: "s1"}, core.Baseline(), sched)
	s2 := core.New(core.Config{Name: "s2"}, core.Baseline(), sched)
	s1.MustLoad(fwdTo(1)) // host on port 0, uplink on port 1
	s2.MustLoad(fwdTo(0)) // uplink on port 1, host on port 0
	net.AddSwitch(s1)
	net.AddSwitch(s2)

	h1 := net.NewHost("h1", packet.IP4(10, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(10, 0, 0, 2))
	net.Attach(h1, s1, 0, 100*sim.Nanosecond)
	net.Attach(h2, s2, 0, 100*sim.Nanosecond)
	net.Connect(s1, 1, s2, 1, sim.Microsecond)

	var got [][]byte
	h2.OnRecv = func(d []byte) { got = append(got, d) }
	h1.Send(testFrame(200))
	h1.Send(testFrame(300))
	sched.Run(10 * sim.Millisecond)

	if len(got) != 2 {
		t.Fatalf("h2 received %d frames, want 2", len(got))
	}
	if h2.RxBytes != 500 {
		t.Errorf("rx bytes = %d", h2.RxBytes)
	}
	if len(got[0]) != 200 || len(got[1]) != 300 {
		t.Errorf("frame sizes = %d,%d", len(got[0]), len(got[1]))
	}
}

func TestHostNICSerialization(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	sw := core.New(core.Config{Name: "s", LineRate: sim.Gbps}, core.Baseline(), sched)
	sw.MustLoad(fwdTo(1))
	net.AddSwitch(sw)
	h := net.NewHost("h", packet.IP4(1, 0, 0, 1))
	net.Attach(h, sw, 0, 0)

	// Two back-to-back sends must be spaced by NIC serialization.
	h.Send(testFrame(1000)) // (1000+24)*8 bits at 1G = 8192 ns
	h.Send(testFrame(1000))
	var arrivals []sim.Time
	sink := net.NewHost("sink", packet.IP4(1, 0, 0, 2))
	net.Attach(sink, sw, 1, 0)
	sink.OnRecv = func([]byte) { arrivals = append(arrivals, sched.Now()) }
	sched.Run(sim.Millisecond)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	if gap < 8*sim.Microsecond {
		t.Errorf("arrival gap %v, want >= 8.192us (NIC serialized)", gap)
	}
}

func TestLinkFailureRaisesEventsAndDropsTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	s1 := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched)
	s2 := core.New(core.Config{Name: "s2"}, core.EventDriven(), sched)
	p1 := fwdTo(1)
	var s1Changes []events.Event
	p1.HandleFunc(events.LinkStatusChange, func(ctx *pisa.Context) {
		s1Changes = append(s1Changes, ctx.Ev)
	})
	s1.MustLoad(p1)
	s2.MustLoad(fwdTo(0))
	net.AddSwitch(s1)
	net.AddSwitch(s2)
	h1 := net.NewHost("h1", packet.IP4(1, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(1, 0, 0, 2))
	net.Attach(h1, s1, 0, 0)
	net.Attach(h2, s2, 0, 0)
	l := net.Connect(s1, 1, s2, 1, 100*sim.Nanosecond)

	sched.At(sim.Microsecond, func() { h1.Send(testFrame(100)) })
	sched.At(sim.Millisecond, func() { net.Fail(l) })
	sched.At(2*sim.Millisecond, func() { h1.Send(testFrame(100)) }) // lost
	sched.At(3*sim.Millisecond, func() { net.Repair(l) })
	sched.At(4*sim.Millisecond, func() { h1.Send(testFrame(100)) })
	sched.Run(10 * sim.Millisecond)

	if h2.RxPackets != 2 {
		t.Errorf("h2 received %d, want 2 (one lost during failure)", h2.RxPackets)
	}
	if len(s1Changes) != 2 {
		t.Fatalf("s1 saw %d link events, want 2", len(s1Changes))
	}
	if s1Changes[0].Up || s1Changes[0].Port != 1 {
		t.Errorf("first change = %+v", s1Changes[0])
	}
	if !s1Changes[1].Up {
		t.Errorf("second change = %+v", s1Changes[1])
	}
	if s1.Stats().TxDroppedLinkDown == 0 {
		t.Error("s1 counted no link-down TX drops")
	}
}

func TestPropagationLatency(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	sw := core.New(core.Config{Name: "s"}, core.Baseline(), sched)
	sw.MustLoad(fwdTo(1))
	net.AddSwitch(sw)
	h1 := net.NewHost("h1", packet.IP4(1, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(1, 0, 0, 2))
	net.Attach(h1, sw, 0, 5*sim.Microsecond)
	net.Attach(h2, sw, 1, 5*sim.Microsecond)
	var at sim.Time
	h2.OnRecv = func([]byte) { at = sched.Now() }
	h1.Send(testFrame(60))
	sched.Run(sim.Millisecond)
	if at < 10*sim.Microsecond {
		t.Errorf("delivery at %v, want >= 10us of propagation", at)
	}
}

func TestLinkAt(t *testing.T) {
	sched := sim.NewScheduler()
	net := New(sched)
	s1 := core.New(core.Config{Name: "s1"}, core.Baseline(), sched)
	s2 := core.New(core.Config{Name: "s2"}, core.Baseline(), sched)
	net.AddSwitch(s1)
	net.AddSwitch(s2)
	l := net.Connect(s1, 2, s2, 3, 0)
	if net.LinkAt(s1, 2) != l || net.LinkAt(s2, 3) != l {
		t.Error("LinkAt lookup failed")
	}
	if net.LinkAt(s1, 0) != nil {
		t.Error("phantom link")
	}
	if len(net.Links()) != 1 || len(net.Switches()) != 2 {
		t.Error("registry wrong")
	}
	if l.String() == "" {
		t.Error("empty link name")
	}
}
