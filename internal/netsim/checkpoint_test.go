package netsim

import (
	"fmt"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// netRig is the checkpoint differential topology: h1 -- s1 == s2 -- h2
// with bidirectional saturate load, so frames are mid-flight on the
// trunk and mid-serialization on the NICs when the snapshot is cut.
type netRig struct {
	sched *sim.Scheduler
	net   *Network
	sws   [2]*core.Switch
	hosts [2]*Host
	gens  [2]*workload.Gen
}

func buildNetRig(t testing.TB, start bool) *netRig {
	t.Helper()
	r := &netRig{sched: sim.NewScheduler()}
	r.net = New(r.sched)
	for i := range r.sws {
		sw := core.New(core.Config{Name: fmt.Sprintf("s%d", i+1)}, core.EventDriven(), r.sched)
		sw.MustLoad(pingPong())
		r.net.AddSwitch(sw)
		r.sws[i] = sw
	}
	r.hosts[0] = r.net.NewHost("h1", packet.IP4(10, 0, 0, 1))
	r.hosts[1] = r.net.NewHost("h2", packet.IP4(10, 0, 0, 2))
	r.net.Attach(r.hosts[0], r.sws[0], 0, 100*sim.Nanosecond)
	r.net.Attach(r.hosts[1], r.sws[1], 0, 100*sim.Nanosecond)
	// Trunk latency exceeds the emission cadence, so frames are on the
	// wire at any snapshot cut.
	r.net.Connect(r.sws[0], 1, r.sws[1], 1, 5*sim.Microsecond)

	rng := sim.NewRNG(17)
	for i, h := range r.hosts {
		peer := r.hosts[1-i]
		g := workload.NewGen(h.Scheduler(), rng.Split(), h.Send)
		sc := workload.SaturateConfig{
			Flow: packet.Flow{
				Src: h.IP, Dst: peer.IP,
				SrcPort: uint16(1000 + i), DstPort: 80, Proto: packet.ProtoUDP,
			},
			Rate: 5 * sim.Gbps, Load: 0.8, Size: 800, Until: 2 * sim.Millisecond,
		}
		if start {
			g.StartSaturate(sc)
		} else {
			g.PrepareSaturate(sc)
		}
		r.gens[i] = g
	}
	return r
}

func (r *netRig) snapshot() []byte {
	e := checkpoint.NewEncoder()
	clk := r.sched.Clock()
	e.I64(int64(clk.Now))
	e.U64(clk.Seq)
	e.U64(clk.Fired)
	for _, sw := range r.sws {
		sw.Snapshot(e)
	}
	r.net.Snapshot(e)
	for _, g := range r.gens {
		g.Snapshot(e)
	}
	return e.Bytes()
}

func (r *netRig) restore(t testing.TB, buf []byte) {
	t.Helper()
	d := checkpoint.NewDecoder(buf)
	var clk sim.ClockState
	clk.Now = sim.Time(d.I64())
	clk.Seq = d.U64()
	clk.Fired = d.U64()
	for _, sw := range r.sws {
		sw.Restore(d)
	}
	r.net.Restore(d)
	for _, g := range r.gens {
		g.Restore(d)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("restore left %d bytes unread", d.Remaining())
	}
	r.sched.DropFired(clk.Now, clk.Seq)
	r.sched.RestoreClock(clk)
}

// fingerprint digests everything externally observable about the run.
func (r *netRig) fingerprint() string {
	out := ""
	for _, h := range r.hosts {
		out += fmt.Sprintf("%s rx=%d/%dB held=%d\n", h.Name, h.RxPackets, h.RxBytes, h.HeldFrames)
	}
	for _, sw := range r.sws {
		st := sw.Stats()
		out += fmt.Sprintf("%s %+v\n", sw.Name(), st)
	}
	for i, l := range r.net.Links() {
		for dir := 0; dir < 2; dir++ {
			c := l.Counters(dir)
			out += fmt.Sprintf("link%d dir%d sent=%d delivered=%d inflight=%d\n",
				i, dir, c.Sent, c.Delivered, c.InFlight())
		}
	}
	for i, g := range r.gens {
		out += fmt.Sprintf("gen%d sent=%d/%dB\n", i, g.SentPackets, g.SentBytes)
	}
	return out
}

// TestNetworkCheckpointResumeIdentical is the network-level differential
// pin: cut a snapshot mid-run with frames on the wire, pour it into an
// identically constructed topology, and require every observable counter
// — host rx, switch stats, per-direction link counters, generator
// emissions — to match the uninterrupted run exactly.
func TestNetworkCheckpointResumeIdentical(t *testing.T) {
	const half, full = sim.Millisecond, 2500 * sim.Microsecond

	a := buildNetRig(t, true)
	a.sched.Run(half)

	// The cut must exercise the wire band: at 5 Gbps over a 5 µs trunk
	// there are frames mid-flight at any instant.
	flights := 0
	for _, lf := range a.net.inFlight() {
		flights += len(lf[0]) + len(lf[1])
	}
	if flights == 0 {
		t.Fatal("no frames in flight at the snapshot cut; wire restore is vacuous")
	}
	snap := a.snapshot()
	a.sched.Run(full)

	b := buildNetRig(t, false)
	b.restore(t, snap)
	if b.sched.Now() != half {
		t.Fatalf("restored clock at %v, want %v", b.sched.Now(), half)
	}
	b.sched.Run(full)

	if got, want := b.fingerprint(), a.fingerprint(); got != want {
		t.Errorf("resumed run diverges:\n--- uninterrupted ---\n%s--- resumed ---\n%s", want, got)
	}
	if a.hosts[1].RxPackets == 0 {
		t.Fatal("nothing delivered; differential is vacuous")
	}
}

// TestNetworkRestoreRefusesTopologyMismatch pins the guard: a snapshot
// only loads into a network with the same link and host layout.
func TestNetworkRestoreRefusesTopologyMismatch(t *testing.T) {
	a := buildNetRig(t, true)
	a.sched.Run(100 * sim.Microsecond)
	e := checkpoint.NewEncoder()
	a.net.Snapshot(e)

	sched := sim.NewScheduler()
	small := New(sched)
	sw := core.New(core.Config{Name: "lone"}, core.EventDriven(), sched)
	sw.MustLoad(pingPong())
	small.AddSwitch(sw)
	h := small.NewHost("h", packet.IP4(10, 9, 0, 1))
	small.Attach(h, sw, 0, 0)

	d := checkpoint.NewDecoder(e.Bytes())
	small.Restore(d)
	if d.Err() == nil {
		t.Fatal("restore into a different topology did not fail")
	}
}
