package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
)

// deliverRig wires host -> switch -> host with real link latency, warms the
// pools, and returns a step function that pushes one frame end to end.
func deliverRig(tb testing.TB) (step func(), rx *uint64) {
	sched := sim.NewScheduler()
	net := New(sched)
	sw := core.New(core.Config{Name: "s"}, core.EventDriven(), sched)
	sw.MustLoad(fwdTo(1))
	net.AddSwitch(sw)
	src := net.NewHost("src", packet.IP4(10, 0, 0, 1))
	dst := net.NewHost("dst", packet.IP4(10, 0, 0, 2))
	net.Attach(src, sw, 0, 100*sim.Nanosecond)
	net.Attach(dst, sw, 1, 100*sim.Nanosecond)

	data := testFrame(200)
	gap := (100 * sim.Gbps).ByteTime(len(data) + 24)
	step = func() {
		src.Send(data)
		sched.Run(sched.Now() + 10*gap)
	}
	// Warm the host tx pool, link flight pool, switch packet pool, and
	// every ring buffer past its steady-state size.
	for i := 0; i < 300; i++ {
		step()
	}
	return step, &dst.RxPackets
}

// BenchmarkNetsimDeliver measures the full frame delivery path — host NIC
// serialization, link flight, switch rx/pipeline/tx, second link, host
// receive — in steady state (0 allocs/op once the pools are warm).
func BenchmarkNetsimDeliver(b *testing.B) {
	step, rx := deliverRig(b)
	before := *rx
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	if *rx == before {
		b.Fatal("nothing delivered")
	}
}

// TestNetsimDeliverZeroAlloc asserts the steady-state delivery path does
// not allocate: frame buffers ride pooled flights and pooled packets end
// to end.
func TestNetsimDeliverZeroAlloc(t *testing.T) {
	step, rx := deliverRig(t)
	before := *rx
	if avg := testing.AllocsPerRun(300, step); avg != 0 {
		t.Errorf("delivery hot path allocates %v per frame, want 0", avg)
	}
	if *rx == before {
		t.Fatal("nothing delivered during the measurement")
	}
}
