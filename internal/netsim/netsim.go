// Package netsim wires switches (internal/core) and hosts into a network:
// links with propagation latency, host endpoints, and fault injection
// (link failures raise LinkStatusChange events in the attached switches).
// The multi-switch experiments — HULA probing, fast re-route, liveness
// monitoring — run on netsim topologies.
package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
)

// endpoint is one side of a link.
type endpoint struct {
	sw   *core.Switch
	port int
	host *Host
}

func (e endpoint) String() string {
	if e.host != nil {
		return e.host.Name
	}
	return fmt.Sprintf("%s:%d", e.sw.Name(), e.port)
}

// Deliverable is one copy of a frame an impairment lets through: the
// (possibly mutated) bytes plus extra latency beyond the link's
// propagation delay. Returning the same frame twice models duplication;
// different ExtraDelay values model reordering.
type Deliverable struct {
	Data       []byte
	ExtraDelay sim.Time
}

// Impairment decides the fate of each frame entering a link: it returns
// the copies to deliver (nil or empty means the frame is dropped). The
// data slice passed in is a private copy of the sender's frame, so an
// impairment may mutate it freely without aliasing a buffer the sender
// retains.
type Impairment func(data []byte) []Deliverable

// Link is a point-to-point connection between two endpoints. Packet
// serialization is modeled by the transmitting device (switch TX or host
// NIC); the link adds propagation latency, can be failed, and can carry
// an Impairment (loss, corruption, reordering, duplication).
type Link struct {
	net      *Network
	a, b     endpoint
	latency  sim.Time
	up       bool
	impair   Impairment
	inFlight uint64

	// Sent counts frames offered to the link in either direction.
	// Delivered counts frames that reached the far endpoint. Losses are
	// split by where they happened: LostAtSend counts frames sent while
	// the link was already down, LostInFlight counts frames caught
	// mid-propagation by a Fail, and Dropped counts frames an Impairment
	// discarded. Duplicated counts the extra copies an Impairment
	// created (they add to Delivered). Conservation, which faults.Audit
	// checks, is
	//
	//	Sent + Duplicated == Delivered + LostAtSend + LostInFlight +
	//	                     Dropped + InFlight()
	Sent         uint64
	Delivered    uint64
	LostAtSend   uint64
	LostInFlight uint64
	Dropped      uint64
	Duplicated   uint64
}

// Up reports the link state.
func (l *Link) Up() bool { return l.up }

// Latency returns the link's one-way propagation delay.
func (l *Link) Latency() sim.Time { return l.latency }

// InFlight returns the number of frames currently propagating.
func (l *Link) InFlight() uint64 { return l.inFlight }

// Lost returns the total frames lost to link failures (both at send and
// mid-flight; impairment drops are counted separately in Dropped).
func (l *Link) Lost() uint64 { return l.LostAtSend + l.LostInFlight }

// SetImpair installs (or, with nil, removes) the link's impairment. Only
// one impairment is attached at a time; compose stages before installing
// (internal/faults chains its injectors into a single Impairment).
func (l *Link) SetImpair(f Impairment) { l.impair = f }

// String describes the link.
func (l *Link) String() string { return fmt.Sprintf("%v<->%v", l.a, l.b) }

// Host is a simple endpoint: it receives frames (with an optional
// callback) and can send frames into its attached switch port after NIC
// serialization.
type Host struct {
	Name string
	MAC  packet.MAC
	IP   packet.IP

	// OnRecv, when set, observes every delivered frame.
	OnRecv func(data []byte)

	// RxPackets and RxBytes count deliveries.
	RxPackets, RxBytes uint64
	// HeldFrames counts sends deferred while the host was paused.
	HeldFrames uint64

	net    *Network
	link   *Link
	rate   sim.Rate
	busy   sim.Time // NIC busy-until for serialization
	paused bool
	held   [][]byte
}

// Send transmits a frame from the host into the network, honoring NIC
// serialization at the attached link's rate. Frames sent while the link
// is down are lost.
func (h *Host) Send(data []byte) {
	if h.link == nil {
		panic("netsim: host " + h.Name + " is not attached")
	}
	if h.paused {
		h.held = append(h.held, data)
		h.HeldFrames++
		return
	}
	now := h.net.sched.Now()
	start := now
	if h.busy > start {
		start = h.busy
	}
	ser := h.rate.ByteTime(len(data) + core.WireOverhead)
	h.busy = start + ser
	h.net.sched.At(h.busy, func() {
		h.net.deliver(h.link, endpoint{host: h}, data)
	})
}

// Pause stalls the host: subsequent Sends are held (in order) until
// Resume. It models an endpoint that freezes — a VM pause, a GC stall —
// without losing its transmit queue.
func (h *Host) Pause() { h.paused = true }

// Paused reports whether the host is paused.
func (h *Host) Paused() bool { return h.paused }

// Resume releases a paused host: frames held during the pause are sent
// immediately, in order, through the normal NIC serialization path.
func (h *Host) Resume() {
	if !h.paused {
		return
	}
	h.paused = false
	held := h.held
	h.held = nil
	for _, data := range held {
		h.Send(data)
	}
}

func (h *Host) receive(data []byte) {
	h.RxPackets++
	h.RxBytes += uint64(len(data))
	if h.OnRecv != nil {
		h.OnRecv(data)
	}
}

// Network is a collection of switches, hosts and links on one scheduler.
type Network struct {
	sched    *sim.Scheduler
	switches []*core.Switch
	hosts    []*Host
	links    []*Link
	// byPort finds the link attached to a switch port.
	byPort map[*core.Switch]map[int]*Link
	taps   map[*core.Switch]func(port int, data []byte)

	// OnLinkChange, when set, observes every Fail and Repair (after the
	// attached switches saw their LinkStatusChange events). Control-plane
	// baselines subscribe here to model out-of-band failure detection.
	OnLinkChange func(l *Link, up bool)
}

// New builds an empty network.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		sched:  sched,
		byPort: make(map[*core.Switch]map[int]*Link),
		taps:   make(map[*core.Switch]func(int, []byte)),
	}
}

// Scheduler returns the network's scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// AddSwitch registers a switch and takes over its OnTransmit hook so
// transmitted packets traverse the attached links.
func (n *Network) AddSwitch(sw *core.Switch) {
	n.switches = append(n.switches, sw)
	n.byPort[sw] = make(map[int]*Link)
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if tap := n.taps[sw]; tap != nil {
			tap(port, pkt.Data)
		}
		if l := n.byPort[sw][port]; l != nil {
			n.deliver(l, endpoint{sw: sw, port: port}, pkt.Data)
		}
	}
}

// TapTransmit registers an observer for a switch's transmissions without
// disturbing link delivery (a switch's OnTransmit hook is owned by the
// network once added).
func (n *Network) TapTransmit(sw *core.Switch, f func(port int, data []byte)) {
	n.taps[sw] = f
}

// Switches lists the registered switches.
func (n *Network) Switches() []*core.Switch { return n.switches }

// Hosts lists the registered hosts.
func (n *Network) Hosts() []*Host { return n.hosts }

// NewHost creates a host with a derived MAC.
func (n *Network) NewHost(name string, ip packet.IP) *Host {
	h := &Host{
		Name: name,
		MAC:  packet.MACFromUint64(0x0200_0000_0000 | uint64(len(n.hosts)+1)),
		IP:   ip,
		net:  n,
	}
	n.hosts = append(n.hosts, h)
	return h
}

func (n *Network) addLink(a, b endpoint, latency sim.Time) *Link {
	l := &Link{net: n, a: a, b: b, latency: latency, up: true}
	n.links = append(n.links, l)
	if a.sw != nil {
		n.byPort[a.sw][a.port] = l
	}
	if b.sw != nil {
		n.byPort[b.sw][b.port] = l
	}
	return l
}

// Connect joins two switch ports with a link of the given propagation
// latency.
func (n *Network) Connect(s1 *core.Switch, p1 int, s2 *core.Switch, p2 int, latency sim.Time) *Link {
	return n.addLink(endpoint{sw: s1, port: p1}, endpoint{sw: s2, port: p2}, latency)
}

// Attach joins a host to a switch port. rate is the host NIC rate
// (defaults to the switch's line rate when zero).
func (n *Network) Attach(h *Host, sw *core.Switch, port int, latency sim.Time) *Link {
	h.rate = sw.Config().LineRate
	l := n.addLink(endpoint{host: h}, endpoint{sw: sw, port: port}, latency)
	h.link = l
	return l
}

// deliver carries a frame across a link from the given source endpoint.
func (n *Network) deliver(l *Link, from endpoint, data []byte) {
	l.Sent++
	if !l.up {
		l.LostAtSend++
		return
	}
	to := l.b
	if from == l.b {
		to = l.a
	}
	if l.impair == nil {
		n.propagate(l, to, data, l.latency)
		return
	}
	// The impairment gets a private copy: a corruptor that flips bytes
	// must not alias a buffer the sender (or a tap) still holds.
	outs := l.impair(append([]byte(nil), data...))
	if len(outs) == 0 {
		l.Dropped++
		return
	}
	if len(outs) > 1 {
		l.Duplicated += uint64(len(outs) - 1)
	}
	for _, o := range outs {
		n.propagate(l, to, o.Data, l.latency+o.ExtraDelay)
	}
}

// propagate schedules one frame's arrival at the far endpoint. A Fail
// while the frame is in flight loses it (LostInFlight).
func (n *Network) propagate(l *Link, to endpoint, data []byte, delay sim.Time) {
	l.inFlight++
	n.sched.After(delay, func() {
		l.inFlight--
		if !l.up {
			l.LostInFlight++
			return
		}
		l.Delivered++
		switch {
		case to.host != nil:
			to.host.receive(data)
		default:
			to.sw.Inject(to.port, data)
		}
	})
}

// Fail takes a link down. Both attached switches see a LinkStatusChange
// event; in-flight and future packets are lost until Repair.
func (n *Network) Fail(l *Link) {
	if !l.up {
		return
	}
	l.up = false
	if l.a.sw != nil {
		l.a.sw.SetLink(l.a.port, false)
	}
	if l.b.sw != nil {
		l.b.sw.SetLink(l.b.port, false)
	}
	if n.OnLinkChange != nil {
		n.OnLinkChange(l, false)
	}
}

// Repair brings a link back up.
func (n *Network) Repair(l *Link) {
	if l.up {
		return
	}
	l.up = true
	if l.a.sw != nil {
		l.a.sw.SetLink(l.a.port, true)
	}
	if l.b.sw != nil {
		l.b.sw.SetLink(l.b.port, true)
	}
	if n.OnLinkChange != nil {
		n.OnLinkChange(l, true)
	}
}

// ConnectLeafSpine wires a two-level fabric: tor[i]'s port 1+j connects
// to spine[j]'s port i, for every ToR i and spine j (ToR port 0 is left
// free for hosts). It panics when a switch has too few ports.
func (n *Network) ConnectLeafSpine(tors, spines []*core.Switch, latency sim.Time) {
	for i, tor := range tors {
		if tor.Config().Ports < 1+len(spines) {
			panic(fmt.Sprintf("netsim: ToR %s has %d ports, needs %d",
				tor.Name(), tor.Config().Ports, 1+len(spines)))
		}
		for j, spine := range spines {
			if spine.Config().Ports < len(tors) {
				panic(fmt.Sprintf("netsim: spine %s has %d ports, needs %d",
					spine.Name(), spine.Config().Ports, len(tors)))
			}
			n.Connect(tor, 1+j, spine, i, latency)
		}
	}
}

// Links lists all links.
func (n *Network) Links() []*Link { return n.links }

// LinkAt returns the link on a switch port, or nil.
func (n *Network) LinkAt(sw *core.Switch, port int) *Link { return n.byPort[sw][port] }
