// Package netsim wires switches (internal/core) and hosts into a network:
// links with propagation latency, host endpoints, and fault injection
// (link failures raise LinkStatusChange events in the attached switches).
// The multi-switch experiments — HULA probing, fast re-route, liveness
// monitoring — run on netsim topologies.
package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
)

// endpoint is one side of a link.
type endpoint struct {
	sw   *core.Switch
	port int
	host *Host
}

func (e endpoint) String() string {
	if e.host != nil {
		return e.host.Name
	}
	return fmt.Sprintf("%s:%d", e.sw.Name(), e.port)
}

// Link is a point-to-point connection between two endpoints. Packet
// serialization is modeled by the transmitting device (switch TX or host
// NIC); the link adds propagation latency and can be failed.
type Link struct {
	net     *Network
	a, b    endpoint
	latency sim.Time
	up      bool

	// Delivered counts packets that traversed the link in either
	// direction; Lost counts packets dropped mid-flight or sent while
	// the link was down.
	Delivered uint64
	Lost      uint64
}

// Up reports the link state.
func (l *Link) Up() bool { return l.up }

// String describes the link.
func (l *Link) String() string { return fmt.Sprintf("%v<->%v", l.a, l.b) }

// Host is a simple endpoint: it receives frames (with an optional
// callback) and can send frames into its attached switch port after NIC
// serialization.
type Host struct {
	Name string
	MAC  packet.MAC
	IP   packet.IP

	// OnRecv, when set, observes every delivered frame.
	OnRecv func(data []byte)

	// RxPackets and RxBytes count deliveries.
	RxPackets, RxBytes uint64

	net  *Network
	link *Link
	rate sim.Rate
	busy sim.Time // NIC busy-until for serialization
}

// Send transmits a frame from the host into the network, honoring NIC
// serialization at the attached link's rate. Frames sent while the link
// is down are lost.
func (h *Host) Send(data []byte) {
	if h.link == nil {
		panic("netsim: host " + h.Name + " is not attached")
	}
	now := h.net.sched.Now()
	start := now
	if h.busy > start {
		start = h.busy
	}
	ser := h.rate.ByteTime(len(data) + core.WireOverhead)
	h.busy = start + ser
	h.net.sched.At(h.busy, func() {
		h.net.deliver(h.link, endpoint{host: h}, data)
	})
}

func (h *Host) receive(data []byte) {
	h.RxPackets++
	h.RxBytes += uint64(len(data))
	if h.OnRecv != nil {
		h.OnRecv(data)
	}
}

// Network is a collection of switches, hosts and links on one scheduler.
type Network struct {
	sched    *sim.Scheduler
	switches []*core.Switch
	hosts    []*Host
	links    []*Link
	// byPort finds the link attached to a switch port.
	byPort map[*core.Switch]map[int]*Link
	taps   map[*core.Switch]func(port int, data []byte)
}

// New builds an empty network.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		sched:  sched,
		byPort: make(map[*core.Switch]map[int]*Link),
		taps:   make(map[*core.Switch]func(int, []byte)),
	}
}

// Scheduler returns the network's scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// AddSwitch registers a switch and takes over its OnTransmit hook so
// transmitted packets traverse the attached links.
func (n *Network) AddSwitch(sw *core.Switch) {
	n.switches = append(n.switches, sw)
	n.byPort[sw] = make(map[int]*Link)
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if tap := n.taps[sw]; tap != nil {
			tap(port, pkt.Data)
		}
		if l := n.byPort[sw][port]; l != nil {
			n.deliver(l, endpoint{sw: sw, port: port}, pkt.Data)
		}
	}
}

// TapTransmit registers an observer for a switch's transmissions without
// disturbing link delivery (a switch's OnTransmit hook is owned by the
// network once added).
func (n *Network) TapTransmit(sw *core.Switch, f func(port int, data []byte)) {
	n.taps[sw] = f
}

// Switches lists the registered switches.
func (n *Network) Switches() []*core.Switch { return n.switches }

// NewHost creates a host with a derived MAC.
func (n *Network) NewHost(name string, ip packet.IP) *Host {
	h := &Host{
		Name: name,
		MAC:  packet.MACFromUint64(0x0200_0000_0000 | uint64(len(n.hosts)+1)),
		IP:   ip,
		net:  n,
	}
	n.hosts = append(n.hosts, h)
	return h
}

func (n *Network) addLink(a, b endpoint, latency sim.Time) *Link {
	l := &Link{net: n, a: a, b: b, latency: latency, up: true}
	n.links = append(n.links, l)
	if a.sw != nil {
		n.byPort[a.sw][a.port] = l
	}
	if b.sw != nil {
		n.byPort[b.sw][b.port] = l
	}
	return l
}

// Connect joins two switch ports with a link of the given propagation
// latency.
func (n *Network) Connect(s1 *core.Switch, p1 int, s2 *core.Switch, p2 int, latency sim.Time) *Link {
	return n.addLink(endpoint{sw: s1, port: p1}, endpoint{sw: s2, port: p2}, latency)
}

// Attach joins a host to a switch port. rate is the host NIC rate
// (defaults to the switch's line rate when zero).
func (n *Network) Attach(h *Host, sw *core.Switch, port int, latency sim.Time) *Link {
	h.rate = sw.Config().LineRate
	l := n.addLink(endpoint{host: h}, endpoint{sw: sw, port: port}, latency)
	h.link = l
	return l
}

// deliver carries a frame across a link from the given source endpoint.
func (n *Network) deliver(l *Link, from endpoint, data []byte) {
	if !l.up {
		l.Lost++
		return
	}
	to := l.b
	if from == l.b {
		to = l.a
	}
	n.sched.After(l.latency, func() {
		if !l.up {
			l.Lost++
			return
		}
		l.Delivered++
		switch {
		case to.host != nil:
			to.host.receive(data)
		default:
			to.sw.Inject(to.port, data)
		}
	})
}

// Fail takes a link down. Both attached switches see a LinkStatusChange
// event; in-flight and future packets are lost until Repair.
func (n *Network) Fail(l *Link) {
	if !l.up {
		return
	}
	l.up = false
	if l.a.sw != nil {
		l.a.sw.SetLink(l.a.port, false)
	}
	if l.b.sw != nil {
		l.b.sw.SetLink(l.b.port, false)
	}
}

// Repair brings a link back up.
func (n *Network) Repair(l *Link) {
	if l.up {
		return
	}
	l.up = true
	if l.a.sw != nil {
		l.a.sw.SetLink(l.a.port, true)
	}
	if l.b.sw != nil {
		l.b.sw.SetLink(l.b.port, true)
	}
}

// ConnectLeafSpine wires a two-level fabric: tor[i]'s port 1+j connects
// to spine[j]'s port i, for every ToR i and spine j (ToR port 0 is left
// free for hosts). It panics when a switch has too few ports.
func (n *Network) ConnectLeafSpine(tors, spines []*core.Switch, latency sim.Time) {
	for i, tor := range tors {
		if tor.Config().Ports < 1+len(spines) {
			panic(fmt.Sprintf("netsim: ToR %s has %d ports, needs %d",
				tor.Name(), tor.Config().Ports, 1+len(spines)))
		}
		for j, spine := range spines {
			if spine.Config().Ports < len(tors) {
				panic(fmt.Sprintf("netsim: spine %s has %d ports, needs %d",
					spine.Name(), spine.Config().Ports, len(tors)))
			}
			n.Connect(tor, 1+j, spine, i, latency)
		}
	}
}

// Links lists all links.
func (n *Network) Links() []*Link { return n.links }

// LinkAt returns the link on a switch port, or nil.
func (n *Network) LinkAt(sw *core.Switch, port int) *Link { return n.byPort[sw][port] }
