// Package netsim wires switches (internal/core) and hosts into a network:
// links with propagation latency, host endpoints, and fault injection
// (link failures raise LinkStatusChange events in the attached switches).
// The multi-switch experiments — HULA probing, fast re-route, liveness
// monitoring — run on netsim topologies.
//
// A network runs either on a single scheduler (New) or on a
// sim.Partition (NewPartitioned): switches built on different partition
// domains execute concurrently, and frames crossing a domain boundary
// travel through per-link mailboxes exchanged at the partition's
// synchronization barriers. Delivery order is pinned by the scheduler's
// wire band keyed on (directed link id, per-direction frame counter), so
// a partitioned run is byte-identical to the single-scheduler run.
package netsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry/self"
)

// endpoint is one side of a link.
type endpoint struct {
	sw   *core.Switch
	port int
	host *Host
}

func (e endpoint) String() string {
	if e.host != nil {
		return e.host.Name
	}
	return fmt.Sprintf("%s:%d", e.sw.Name(), e.port)
}

// Deliverable is one copy of a frame an impairment lets through: the
// (possibly mutated) bytes plus extra latency beyond the link's
// propagation delay. Returning the same frame twice models duplication;
// different ExtraDelay values model reordering.
type Deliverable struct {
	Data       []byte
	ExtraDelay sim.Time
}

// Impairment decides the fate of each frame entering a link: it returns
// the copies to deliver (nil or empty means the frame is dropped). The
// data slice passed in is private to the call — no sender or tap aliases
// it, so an impairment may mutate it freely — but it is only valid until
// the impairment returns plus the propagation of the copies it returned
// (the link recycles the buffer for the next frame; propagation makes its
// own copies). An impairment must not retain the slice across calls.
type Impairment func(data []byte) []Deliverable

// DirCounters are one direction's frame counters on a link (direction 0
// is a→b, direction 1 is b→a). The single-writer split that makes the
// partitioned run race-free: Sent, LostAtSend, Dropped, Duplicated and
// Propagated are written only by the sending side's domain; Delivered
// and LostInFlight only by the receiving side's. Conservation per
// direction (faults.Audit checks the summed form) is
//
//	Sent + Duplicated == Delivered + LostAtSend + LostInFlight +
//	                     Dropped + InFlight
//
// where InFlight = Propagated - Delivered - LostInFlight.
type DirCounters struct {
	// Sent counts frames offered in this direction.
	Sent uint64
	// LostAtSend counts frames sent while the link was already down.
	LostAtSend uint64
	// Dropped counts frames an Impairment discarded.
	Dropped uint64
	// Duplicated counts extra copies an Impairment created.
	Duplicated uint64
	// Propagated counts copies put on the wire (post-impairment).
	Propagated uint64
	// Delivered counts frames that reached the far endpoint.
	Delivered uint64
	// LostInFlight counts frames caught mid-propagation by a Fail.
	LostInFlight uint64
}

// InFlight returns the number of frames currently propagating in this
// direction.
func (c *DirCounters) InFlight() uint64 {
	return c.Propagated - c.Delivered - c.LostInFlight
}

// flight is one frame copy propagating along a non-cross link: a pooled
// sim.Runner carrying a private copy of the bytes, scheduled on the
// destination's wire band. Pooling flights (and their buffers) removes
// the per-frame closure and frame-copy allocations from the delivery hot
// path. Non-cross means one scheduler drives both sides, so the free
// list is single-threaded.
type flight struct {
	n   *Network
	l   *Link
	dir int
	buf []byte
}

// Run implements sim.Runner: complete the arrival, then recycle. arrive's
// consumers (Switch.Inject, Host OnRecv) copy or consume the bytes before
// returning, so the buffer is free for reuse immediately after.
func (f *flight) Run() {
	f.n.arrive(f.l, f.dir, f.buf)
	f.l.legacyPending[f.dir]--
	f.l.flightFree = append(f.l.flightFree, f)
}

// wireEntry is one frame queued in a direction's arrival FIFO (wireFIFO):
// its wire-band ordering pair plus the frame bytes. For frames that came
// through a cross-domain mailbox, m retains the mailFlight whose buffer
// the entry borrows, parked back to mailSpent after delivery.
type wireEntry struct {
	at  sim.Time
	seq uint64
	buf []byte
	m   *mailFlight
}

// wireFIFO batches one direction's in-flight frames: instead of one
// wire-band event per frame, the link keeps an arrival FIFO per
// direction and registers a single wire-band Runner keyed by the head
// entry's (arrival time, directed link id, send seq). When it fires, it
// delivers every queued frame with the head's arrival instant in one
// activation — the vectorized frame delivery of the burst datapath —
// then re-arms for the new head.
//
// This collapses O(frames) event-heap traffic into O(bursts) without
// changing delivery order: entries are appended in send order, so (at,
// seq) is non-decreasing down the queue (unimpaired links add constant
// latency to a non-decreasing send clock), the band fires the runner at
// exactly the head's key, and a same-instant group occupies consecutive
// (k1, k2) positions that no other wire event can interleave — another
// link's events sort entirely before or after on k1, and same-link
// legacy flights never coexist with FIFO entries in flight (propagate
// falls back to per-frame flights while any are pending). Delivering the
// group in one activation is therefore exactly the per-frame firing
// order.
type wireFIFO struct {
	n    *Network
	l    *Link
	dir  int
	q    []wireEntry
	head int
	free [][]byte // recycled non-cross frame buffers
}

// push appends a frame (copying data into pooled storage) and arms the
// band when the FIFO was idle.
func (w *wireFIFO) push(at sim.Time, seq uint64, data []byte) {
	var buf []byte
	if k := len(w.free); k > 0 {
		buf = w.free[k-1]
		w.free[k-1] = nil
		w.free = w.free[:k-1]
	}
	idle := w.head == len(w.q)
	w.q = append(w.q, wireEntry{at: at, seq: seq, buf: append(buf[:0], data...)})
	if idle {
		w.l.sched[1-w.dir].AtWireRunner(at, w.l.wireKey(w.dir), seq, w)
	}
}

// Run implements sim.Runner on the receiving side: deliver the head
// burst — every entry sharing the head's arrival instant — then re-arm
// for the remainder.
func (w *wireFIFO) Run() {
	l, dir := w.l, w.dir
	at := w.q[w.head].at
	for w.head < len(w.q) && w.q[w.head].at == at {
		e := &w.q[w.head]
		buf, m := e.buf, e.m
		*e = wireEntry{}
		w.head++
		w.n.arrive(l, dir, buf)
		if m != nil {
			w.n.parkSpent(l, dir, m)
		} else {
			w.free = append(w.free, buf)
		}
	}
	if w.head < len(w.q) {
		h := &w.q[w.head]
		l.sched[1-dir].AtWireRunner(h.at, l.wireKey(dir), h.seq, w)
		if w.head > 512 && w.head*2 > len(w.q) {
			w.q = append(w.q[:0], w.q[w.head:]...)
			w.head = 0
		}
		return
	}
	w.q = w.q[:0]
	w.head = 0
}

// mailFlight is a frame queued for cross-domain delivery at the next
// partition barrier: the mailbox entry and the wire-band Runner in one
// pooled object. Ownership hands off in phases, which is what makes the
// recycling race-free without locks: the sending domain takes a flight
// from mailFree and fills mail during a window; the barrier (single-
// threaded) moves mail onto the receiver's wire band; the receiving
// domain runs it and parks it on mailSpent during a later window; a
// subsequent barrier recycles mailSpent back to mailFree. No two domains
// ever touch the same list during the same window.
type mailFlight struct {
	n   *Network
	l   *Link
	dir int
	at  sim.Time
	seq uint64
	buf []byte
}

// Run implements sim.Runner in the receiving side's domain.
func (m *mailFlight) Run() {
	m.n.arrive(m.l, m.dir, m.buf)
	m.n.parkSpent(m.l, m.dir, m)
}

// parkSpent returns a delivered mailFlight to the link's spent list and
// puts the (link, direction) on the receiving domain's barrier recycle
// list. Runs in the receiving side's domain.
func (n *Network) parkSpent(l *Link, dir int, m *mailFlight) {
	l.mailSpent[dir] = append(l.mailSpent[dir], m)
	if !l.spentQueued[dir] {
		l.spentQueued[dir] = true
		d := l.domain[1-dir] // receiving side's domain owns this list
		n.dirtySpent[d] = append(n.dirtySpent[d], mailRef{l: l, dir: dir})
	}
}

// Link is a point-to-point connection between two endpoints. Packet
// serialization is modeled by the transmitting device (switch TX or host
// NIC); the link adds propagation latency, can be failed, and can carry
// an Impairment (loss, corruption, reordering, duplication).
//
// Every piece of run-time link state is split per direction or per side
// with a single writing domain, so a link crossing a partition boundary
// is touched concurrently without locks or races.
type Link struct {
	net     *Network
	id      int // index into net.links; half of the wire-band key
	a, b    endpoint
	latency sim.Time
	// sideUp is each endpoint's view of the link state. The views
	// transition at the same virtual instant (Fail/Repair flip both;
	// ScheduleLinkChange schedules both sides for the same time), but
	// each is written only by its own side's domain.
	sideUp [2]bool
	impair Impairment
	dir    [2]DirCounters
	// wireSeq numbers propagated copies per direction, in send order —
	// the engine-independent tiebreak for same-instant arrivals.
	wireSeq [2]uint64
	// sched is the scheduler driving each side (equal unless the link
	// crosses domains); domain holds the matching partition domain
	// indices (0 when unpartitioned). mail holds frames awaiting barrier
	// exchange; mailQueued/spentQueued track whether the (link,
	// direction) is already on the network's barrier dirty list, so a
	// barrier touches only mailboxes that actually received frames.
	// mailQueued is written only by the sending side's domain,
	// spentQueued only by the receiving side's.
	sched       [2]*sim.Scheduler
	domain      [2]int
	cross       bool
	mail        [2][]*mailFlight
	mailQueued  [2]bool
	spentQueued [2]bool
	// mailFree is consumed by the sending domain, mailSpent filled by the
	// receiving domain; the barrier recycles spent→free (see mailFlight).
	mailFree  [2][]*mailFlight
	mailSpent [2][]*mailFlight
	// flightFree pools non-cross in-flight frames (see flight).
	flightFree []*flight
	// impairBuf is the reusable private copy handed to the impairment.
	impairBuf []byte
	// fifo batches each direction's unimpaired in-flight frames
	// (wireFIFO); burstOK latches core.ForceNoBurst at link creation.
	// legacyPending counts per-frame flights currently in the air per
	// direction: while any are pending the direction keeps using the
	// per-frame path, so a flight created under an impairment can never
	// be overtaken by a same-instant FIFO group (see wireFIFO).
	fifo          [2]*wireFIFO
	burstOK       bool
	legacyPending [2]int
}

// Up reports the link state (both endpoint views; between a partitioned
// run's windows the views may transiently differ by one transition).
func (l *Link) Up() bool { return l.sideUp[0] && l.sideUp[1] }

// Latency returns the link's one-way propagation delay.
func (l *Link) Latency() sim.Time { return l.latency }

// Counters returns one direction's counters (0: a→b, 1: b→a). Mutable
// access is exported for tests that cook the books to verify auditing.
func (l *Link) Counters(dir int) *DirCounters { return &l.dir[dir] }

// Sent counts frames offered to the link in either direction.
func (l *Link) Sent() uint64 { return l.dir[0].Sent + l.dir[1].Sent }

// Delivered counts frames that reached the far endpoint.
func (l *Link) Delivered() uint64 { return l.dir[0].Delivered + l.dir[1].Delivered }

// LostAtSend counts frames sent while the link was already down.
func (l *Link) LostAtSend() uint64 { return l.dir[0].LostAtSend + l.dir[1].LostAtSend }

// LostInFlight counts frames caught mid-propagation by a Fail.
func (l *Link) LostInFlight() uint64 { return l.dir[0].LostInFlight + l.dir[1].LostInFlight }

// Dropped counts frames an Impairment discarded.
func (l *Link) Dropped() uint64 { return l.dir[0].Dropped + l.dir[1].Dropped }

// Duplicated counts the extra copies an Impairment created (they add to
// Delivered).
func (l *Link) Duplicated() uint64 { return l.dir[0].Duplicated + l.dir[1].Duplicated }

// InFlight returns the number of frames currently propagating (including
// frames parked in a cross-domain mailbox awaiting the next barrier).
func (l *Link) InFlight() uint64 { return l.dir[0].InFlight() + l.dir[1].InFlight() }

// Lost returns the total frames lost to link failures (both at send and
// mid-flight; impairment drops are counted separately in Dropped).
func (l *Link) Lost() uint64 { return l.LostAtSend() + l.LostInFlight() }

// SetImpair installs (or, with nil, removes) the link's impairment. Only
// one impairment is attached at a time; compose stages before installing
// (internal/faults chains its injectors into a single Impairment).
// Impairments keep per-link state behind a shared closure, so a
// partitioned network rejects impairments on links that cross domains.
func (l *Link) SetImpair(f Impairment) { l.impair = f }

// Cross reports whether the link's endpoints live in different partition
// domains.
func (l *Link) Cross() bool { return l.cross }

// Scheduler returns the link's home scheduler: side a's domain. Code
// that observes or manipulates a non-cross link (fault injectors,
// impairment windows) must run on this scheduler.
func (l *Link) Scheduler() *sim.Scheduler { return l.sched[0] }

// String describes the link.
func (l *Link) String() string { return fmt.Sprintf("%v<->%v", l.a, l.b) }

// side returns which side of the link e is (0 for a, 1 for b).
func (l *Link) side(e endpoint) int {
	if e == l.b {
		return 1
	}
	return 0
}

// Host is a simple endpoint: it receives frames (with an optional
// callback) and can send frames into its attached switch port after NIC
// serialization.
type Host struct {
	Name string
	MAC  packet.MAC
	IP   packet.IP

	// OnRecv, when set, observes every delivered frame.
	OnRecv func(data []byte)

	// RxPackets and RxBytes count deliveries.
	RxPackets, RxBytes uint64
	// HeldFrames counts sends deferred while the host was paused.
	HeldFrames uint64

	net      *Network
	link     *Link
	sched    *sim.Scheduler // the attached switch's domain scheduler
	rate     sim.Rate
	busy     sim.Time // NIC busy-until for serialization
	paused   bool
	held     [][]byte
	txFree   []*hostTx
	txActive []*hostTx // serializing transmissions (for checkpoints)
}

// hostTx is a pooled NIC transmission: the serialization-delay Runner and
// a private copy of the frame. Pooling it makes Host.Send allocation-free
// in steady state and decouples the caller's buffer from the in-flight
// frame (the caller may reuse its slice as soon as Send returns).
type hostTx struct {
	h   *Host
	buf []byte
	hd  sim.Handle // pending serialization-done event (for checkpoints)
	idx int        // position in h.txActive
}

// Run implements sim.Runner: the NIC finished serializing; put the frame
// on the link and recycle (deliver copies into link-owned buffers before
// returning).
func (t *hostTx) Run() {
	h := t.h
	last := len(h.txActive) - 1
	h.txActive[t.idx] = h.txActive[last]
	h.txActive[t.idx].idx = t.idx
	h.txActive = h.txActive[:last]
	h.net.deliver(h.link, endpoint{host: h}, t.buf)
	h.txFree = append(h.txFree, t)
}

// Scheduler returns the scheduler driving this host: its attached
// switch's domain scheduler, or the network's when unattached.
func (h *Host) Scheduler() *sim.Scheduler {
	if h.sched != nil {
		return h.sched
	}
	return h.net.sched
}

// Send transmits a frame from the host into the network, honoring NIC
// serialization at the attached link's rate. Frames sent while the link
// is down are lost. The frame bytes are copied before Send returns, so
// the caller may reuse its buffer.
func (h *Host) Send(data []byte) {
	if h.link == nil {
		panic("netsim: host " + h.Name + " is not attached")
	}
	if h.paused {
		h.held = append(h.held, append([]byte(nil), data...))
		h.HeldFrames++
		return
	}
	now := h.sched.Now()
	start := now
	if h.busy > start {
		start = h.busy
	}
	ser := h.rate.ByteTime(len(data) + core.WireOverhead)
	h.busy = start + ser
	var t *hostTx
	if n := len(h.txFree); n > 0 {
		t = h.txFree[n-1]
		h.txFree[n-1] = nil
		h.txFree = h.txFree[:n-1]
	} else {
		t = &hostTx{h: h}
	}
	t.buf = append(t.buf[:0], data...)
	t.idx = len(h.txActive)
	h.txActive = append(h.txActive, t)
	t.hd = h.sched.AtRunner(h.busy, t)
}

// Pause stalls the host: subsequent Sends are held (in order) until
// Resume. It models an endpoint that freezes — a VM pause, a GC stall —
// without losing its transmit queue.
func (h *Host) Pause() { h.paused = true }

// Paused reports whether the host is paused.
func (h *Host) Paused() bool { return h.paused }

// Resume releases a paused host: frames held during the pause are sent
// immediately, in order, through the normal NIC serialization path.
func (h *Host) Resume() {
	if !h.paused {
		return
	}
	h.paused = false
	held := h.held
	h.held = nil
	for _, data := range held {
		h.Send(data)
	}
}

func (h *Host) receive(data []byte) {
	h.RxPackets++
	h.RxBytes += uint64(len(data))
	if h.OnRecv != nil {
		h.OnRecv(data)
	}
}

// Network is a collection of switches, hosts and links on one scheduler
// or one sim.Partition.
type Network struct {
	sched    *sim.Scheduler
	part     *sim.Partition
	switches []*core.Switch
	hosts    []*Host
	links    []*Link
	// byPort finds the link attached to a switch port.
	byPort map[*core.Switch]map[int]*Link
	taps   map[*core.Switch]func(port int, data []byte)

	hooked bool // barrier hook registered with the partition

	// dirtyMail / dirtySpent are the barrier work lists: (link, direction)
	// pairs whose mailbox received frames (respectively whose spent list
	// received used flights) since the last barrier. One list per domain —
	// each is appended to only by that domain's goroutine during a window
	// and drained single-threaded at the barrier — so a barrier walks the
	// mailboxes that changed instead of every cross link in the network.
	dirtyMail  [][]mailRef
	dirtySpent [][]mailRef

	// OnLinkChange, when set, observes every Fail and Repair (after the
	// attached switches saw their LinkStatusChange events). Control-plane
	// baselines subscribe here to model out-of-band failure detection.
	// In a partitioned network the hook fires in side a's domain.
	OnLinkChange func(l *Link, up bool)
}

// New builds an empty network on a single scheduler.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		sched:  sched,
		byPort: make(map[*core.Switch]map[int]*Link),
		taps:   make(map[*core.Switch]func(int, []byte)),
	}
}

// NewPartitioned builds an empty network over a partition: switches must
// be constructed on the partition's domain schedulers (core.New with
// p.Sched(i)), and AddSwitch infers each switch's domain from its
// scheduler. Domain 0's scheduler doubles as the network's setup
// scheduler (Scheduler()).
func NewPartitioned(p *sim.Partition) *Network {
	n := New(p.Sched(0))
	n.part = p
	n.dirtyMail = make([][]mailRef, p.Domains())
	n.dirtySpent = make([][]mailRef, p.Domains())
	return n
}

// mailRef names one direction of one cross link on a barrier dirty list.
type mailRef struct {
	l   *Link
	dir int
}

// Scheduler returns the network's scheduler (domain 0's when
// partitioned).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Partition returns the partition driving the network, or nil.
func (n *Network) Partition() *sim.Partition { return n.part }

// AddSwitch registers a switch and takes over its OnTransmit hook so
// transmitted packets traverse the attached links. On a partitioned
// network the switch must have been built on one of the partition's
// domain schedulers.
func (n *Network) AddSwitch(sw *core.Switch) {
	if n.part != nil && n.part.Index(sw.Scheduler()) < 0 {
		panic("netsim: switch " + sw.Name() + " not built on a partition domain scheduler")
	}
	n.switches = append(n.switches, sw)
	n.byPort[sw] = make(map[int]*Link)
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if tap := n.taps[sw]; tap != nil {
			tap(port, pkt.Data)
		}
		if l := n.byPort[sw][port]; l != nil {
			n.deliver(l, endpoint{sw: sw, port: port}, pkt.Data)
		}
	}
}

// TapTransmit registers an observer for a switch's transmissions without
// disturbing link delivery (a switch's OnTransmit hook is owned by the
// network once added). The observer runs in the switch's domain.
func (n *Network) TapTransmit(sw *core.Switch, f func(port int, data []byte)) {
	n.taps[sw] = f
}

// Switches lists the registered switches.
func (n *Network) Switches() []*core.Switch { return n.switches }

// Hosts lists the registered hosts.
func (n *Network) Hosts() []*Host { return n.hosts }

// NewHost creates a host with a derived MAC.
func (n *Network) NewHost(name string, ip packet.IP) *Host {
	h := &Host{
		Name: name,
		MAC:  packet.MACFromUint64(0x0200_0000_0000 | uint64(len(n.hosts)+1)),
		IP:   ip,
		net:  n,
	}
	n.hosts = append(n.hosts, h)
	return h
}

// schedOf returns the scheduler driving an endpoint, falling back to
// other's for hosts (a host lives in its attached switch's domain).
func (n *Network) schedOf(e, other endpoint) *sim.Scheduler {
	if e.sw != nil {
		return e.sw.Scheduler()
	}
	if other.sw != nil {
		return other.sw.Scheduler()
	}
	return n.sched
}

func (n *Network) addLink(a, b endpoint, latency sim.Time) *Link {
	l := &Link{
		net:     n,
		id:      len(n.links),
		a:       a,
		b:       b,
		latency: latency,
		sideUp:  [2]bool{true, true},
	}
	l.sched[0] = n.schedOf(a, b)
	l.sched[1] = n.schedOf(b, a)
	if n.part != nil {
		l.domain[0] = n.part.Index(l.sched[0])
		l.domain[1] = n.part.Index(l.sched[1])
	}
	l.cross = l.sched[0] != l.sched[1]
	if l.cross && latency <= 0 {
		panic("netsim: cross-domain link " + l.String() + " needs positive latency (it bounds the partition lookahead)")
	}
	l.burstOK = !core.ForceNoBurst
	l.fifo[0] = &wireFIFO{n: n, l: l, dir: 0}
	l.fifo[1] = &wireFIFO{n: n, l: l, dir: 1}
	n.links = append(n.links, l)
	if a.sw != nil {
		n.byPort[a.sw][a.port] = l
	}
	if b.sw != nil {
		n.byPort[b.sw][b.port] = l
	}
	return l
}

// Connect joins two switch ports with a link of the given propagation
// latency.
func (n *Network) Connect(s1 *core.Switch, p1 int, s2 *core.Switch, p2 int, latency sim.Time) *Link {
	return n.addLink(endpoint{sw: s1, port: p1}, endpoint{sw: s2, port: p2}, latency)
}

// Attach joins a host to a switch port. rate is the host NIC rate
// (defaults to the switch's line rate when zero). The host joins the
// switch's domain.
func (n *Network) Attach(h *Host, sw *core.Switch, port int, latency sim.Time) *Link {
	h.rate = sw.Config().LineRate
	h.sched = sw.Scheduler()
	l := n.addLink(endpoint{host: h}, endpoint{sw: sw, port: port}, latency)
	h.link = l
	return l
}

// deliver carries a frame across a link from the given source endpoint.
// It runs in the sending side's domain.
func (n *Network) deliver(l *Link, from endpoint, data []byte) {
	dir := l.side(from)
	c := &l.dir[dir]
	c.Sent++
	if !l.sideUp[dir] {
		c.LostAtSend++
		return
	}
	if l.impair == nil {
		n.propagate(l, dir, data, l.latency)
		return
	}
	// The impairment gets a private copy: a corruptor that flips bytes
	// must not alias a buffer the sender (or a tap) still holds. The copy
	// is lazy — it reuses the link's scratch buffer, valid for the call
	// (propagate copies again into flight-owned storage).
	l.impairBuf = append(l.impairBuf[:0], data...)
	outs := l.impair(l.impairBuf)
	if len(outs) == 0 {
		c.Dropped++
		return
	}
	if len(outs) > 1 {
		c.Duplicated += uint64(len(outs) - 1)
	}
	for _, o := range outs {
		n.propagate(l, dir, o.Data, l.latency+o.ExtraDelay)
	}
}

// propagate puts one frame copy on the wire. Intra-domain it is
// scheduled directly on the destination's wire band; cross-domain it is
// parked in the link mailbox for the next barrier. Either way it fires
// in (arrival time, directed link id, send order) order — the same order
// in every partitioning. The frame bytes are copied into pooled
// flight-owned storage, so the caller's slice is free after the call.
func (n *Network) propagate(l *Link, dir int, data []byte, delay sim.Time) {
	c := &l.dir[dir]
	c.Propagated++
	at := l.sched[dir].Now() + delay
	seq := l.wireSeq[dir]
	l.wireSeq[dir]++
	if l.cross {
		var m *mailFlight
		if k := len(l.mailFree[dir]); k > 0 {
			m = l.mailFree[dir][k-1]
			l.mailFree[dir][k-1] = nil
			l.mailFree[dir] = l.mailFree[dir][:k-1]
		} else {
			m = &mailFlight{n: n, l: l, dir: dir}
		}
		m.at, m.seq = at, seq
		m.buf = append(m.buf[:0], data...)
		l.mail[dir] = append(l.mail[dir], m)
		if !l.mailQueued[dir] {
			l.mailQueued[dir] = true
			d := l.domain[dir] // sending side's domain owns this list
			n.dirtyMail[d] = append(n.dirtyMail[d], mailRef{l: l, dir: dir})
		}
		return
	}
	if l.burstOK && l.impair == nil && l.legacyPending[dir] == 0 {
		l.fifo[dir].push(at, seq, data)
		return
	}
	var f *flight
	if k := len(l.flightFree); k > 0 {
		f = l.flightFree[k-1]
		l.flightFree[k-1] = nil
		l.flightFree = l.flightFree[:k-1]
	} else {
		f = &flight{n: n, l: l}
	}
	f.dir = dir
	f.buf = append(f.buf[:0], data...)
	l.legacyPending[dir]++
	l.sched[1-dir].AtWireRunner(at, l.wireKey(dir), seq, f)
}

// wireKey is the first wire-band ordering key: the directed link id.
func (l *Link) wireKey(dir int) uint64 { return uint64(l.id)<<1 | uint64(dir) }

// arrive completes one frame's propagation. It runs in the receiving
// side's domain. A Fail while the frame was in flight loses it.
func (n *Network) arrive(l *Link, dir int, data []byte) {
	c := &l.dir[dir]
	to := l.b
	if dir == 1 {
		to = l.a
	}
	if !l.sideUp[1-dir] {
		c.LostInFlight++
		return
	}
	c.Delivered++
	switch {
	case to.host != nil:
		to.host.receive(data)
	default:
		to.sw.Inject(to.port, data)
	}
}

// drainMail moves parked cross-domain frames onto their destination
// domains' wire bands. It runs single-threaded at partition barriers —
// the only phase in which both sides' mail lists may be touched, so this
// is also where spent flights are recycled back to the senders' free
// lists. The barrier is incremental: it walks the per-domain dirty lists
// (filled by propagate and parkSpent during the window) instead of every
// cross link, so barrier cost scales with the frames actually exchanged,
// not with fabric size. The delivery order across links does not matter —
// the wire band is a heap ordered by engine-independent keys — so
// draining dirty lists domain by domain reproduces the full-scan
// behavior exactly.
func (n *Network) drainMail() {
	obs := self.On()
	for d := range n.dirtySpent {
		refs := n.dirtySpent[d]
		for i, r := range refs {
			l, dir := r.l, r.dir
			spent := l.mailSpent[dir]
			l.mailFree[dir] = append(l.mailFree[dir], spent...)
			for j := range spent {
				spent[j] = nil
			}
			l.mailSpent[dir] = spent[:0]
			l.spentQueued[dir] = false
			refs[i] = mailRef{}
		}
		n.dirtySpent[d] = refs[:0]
	}
	for d := range n.dirtyMail {
		refs := n.dirtyMail[d]
		for i, r := range refs {
			l, dir := r.l, r.dir
			l.mailQueued[dir] = false
			refs[i] = mailRef{}
			box := l.mail[dir]
			if len(box) == 0 {
				continue
			}
			if obs {
				self.MailFrames.Add(uint64(len(box)))
			}
			dst := l.sched[1-dir]
			key := l.wireKey(dir)
			if l.burstOK {
				// Burst handoff: append the whole barrier's worth of
				// frames to the receiver's arrival FIFO (they are
				// already in (at, seq) order — mailboxes preserve send
				// order and cross links are never impaired) and arm the
				// band once for the head instead of once per frame. The
				// entries borrow the mailFlights' buffers; delivery
				// parks each mailFlight on mailSpent as usual.
				w := l.fifo[dir]
				idle := w.head == len(w.q)
				for j, m := range box {
					w.q = append(w.q, wireEntry{at: m.at, seq: m.seq, buf: m.buf, m: m})
					box[j] = nil
				}
				if idle {
					h := &w.q[w.head]
					dst.AtWireRunner(h.at, key, h.seq, w)
				}
				l.mail[dir] = box[:0]
				continue
			}
			for j, m := range box {
				dst.AtWireRunner(m.at, key, m.seq, m)
				box[j] = nil
			}
			l.mail[dir] = box[:0]
		}
		n.dirtyMail[d] = refs[:0]
	}
}

// Run advances the simulation to until: the partition's window loop when
// partitioned, a plain scheduler run otherwise. On each partitioned Run
// it computes the lookahead (minimum cross-domain link latency),
// installs the per-domain-pair latency matrix that drives the
// partition's adaptive window edges, and registers the mailbox exchange
// at the partition's barriers (first Run only).
func (n *Network) Run(until sim.Time) {
	if n.part == nil {
		n.sched.Run(until)
		return
	}
	lookahead := sim.Time(sim.Forever)
	for _, l := range n.links {
		if !l.cross {
			continue
		}
		if l.impair != nil {
			panic("netsim: impairment on cross-domain link " + l.String() +
				" (impairments keep shared state; keep impaired links inside one domain)")
		}
		if l.latency < lookahead {
			lookahead = l.latency
		}
		n.part.SetCrossLatency(l.domain[0], l.domain[1], l.latency)
		n.part.SetCrossLatency(l.domain[1], l.domain[0], l.latency)
	}
	n.part.SetLookahead(lookahead)
	if !n.hooked {
		n.part.OnBarrier(n.drainMail)
		n.hooked = true
	}
	n.part.Run(until)
}

// Fail takes a link down. Both attached switches see a LinkStatusChange
// event; in-flight and future packets are lost until Repair. On a
// partitioned network a cross-domain link cannot be failed directly —
// the caller runs in one domain and may not touch the other side's
// state; use ScheduleLinkChange, which arms both sides for the same
// virtual instant.
func (n *Network) Fail(l *Link) { n.setLink(l, false) }

// Repair brings a link back up.
func (n *Network) Repair(l *Link) { n.setLink(l, true) }

func (n *Network) setLink(l *Link, up bool) {
	if n.part != nil && l.cross {
		panic("netsim: Fail/Repair on cross-domain link " + l.String() + "; use ScheduleLinkChange")
	}
	if l.sideUp[0] == up && l.sideUp[1] == up {
		return
	}
	l.sideUp[0] = up
	l.sideUp[1] = up
	if l.a.sw != nil {
		l.a.sw.SetLink(l.a.port, up)
	}
	if l.b.sw != nil {
		l.b.sw.SetLink(l.b.port, up)
	}
	if n.OnLinkChange != nil {
		n.OnLinkChange(l, up)
	}
}

// sideLinkChange applies one side's view of a scheduled link transition.
// It runs in that side's domain. The OnLinkChange hook fires once, on
// side a's event.
func (n *Network) sideLinkChange(l *Link, side int, up bool) {
	if l.sideUp[side] == up {
		return
	}
	l.sideUp[side] = up
	e := l.a
	if side == 1 {
		e = l.b
	}
	if e.sw != nil {
		e.sw.SetLink(e.port, up)
	}
	if side == 0 && n.OnLinkChange != nil {
		n.OnLinkChange(l, up)
	}
}

// ScheduleLinkChange arms a link transition (up=false: Fail, up=true:
// Repair) at the absolute time at. On a cross-domain link each side's
// view transitions independently in its own domain at the same virtual
// instant — the deterministic way to fail a link whose endpoints run
// concurrently. fault schedules (internal/faults) arm all their link
// transitions this way.
func (n *Network) ScheduleLinkChange(l *Link, at sim.Time, up bool) {
	if !l.cross {
		l.sched[0].At(at, func() { n.setLink(l, up) })
		return
	}
	l.sched[0].At(at, func() { n.sideLinkChange(l, 0, up) })
	l.sched[1].At(at, func() { n.sideLinkChange(l, 1, up) })
}

// ConnectLeafSpine wires a two-level fabric: tor[i]'s port 1+j connects
// to spine[j]'s port i, for every ToR i and spine j (ToR port 0 is left
// free for hosts). It panics when a switch has too few ports.
func (n *Network) ConnectLeafSpine(tors, spines []*core.Switch, latency sim.Time) {
	for i, tor := range tors {
		if tor.Config().Ports < 1+len(spines) {
			panic(fmt.Sprintf("netsim: ToR %s has %d ports, needs %d",
				tor.Name(), tor.Config().Ports, 1+len(spines)))
		}
		for j, spine := range spines {
			if spine.Config().Ports < len(tors) {
				panic(fmt.Sprintf("netsim: spine %s has %d ports, needs %d",
					spine.Name(), spine.Config().Ports, len(tors)))
			}
			n.Connect(tor, 1+j, spine, i, latency)
		}
	}
}

// Links lists all links.
func (n *Network) Links() []*Link { return n.links }

// LinkAt returns the link on a switch port, or nil.
func (n *Network) LinkAt(sw *core.Switch, port int) *Link { return n.byPort[sw][port] }
