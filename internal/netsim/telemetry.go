package netsim

import (
	"fmt"

	"repro/internal/telemetry"
)

// EnableTelemetry attaches every registered switch to the collector (see
// core.Switch.EnableTelemetry). Call during single-threaded setup, after
// AddSwitch; switches added later must be enabled individually.
func (n *Network) EnableTelemetry(c *telemetry.Collector) {
	for _, sw := range n.switches {
		sw.EnableTelemetry(c)
	}
}

// RecordLinkTelemetry snapshots every link's directional wire counters
// into the collector's registry under "link.<id>.dir<d>.*". Call it only
// after Run returns: during a partitioned run each direction's counters
// are written by the receiving domain, so they may only be read here,
// single-threaded. Link ids follow creation order, so the recorded names
// and values are identical at any domain count.
func (n *Network) RecordLinkTelemetry(c *telemetry.Collector) {
	reg := c.Registry()
	for _, l := range n.links {
		for dir := 0; dir < 2; dir++ {
			d := l.Counters(dir)
			pre := fmt.Sprintf("link.%03d.dir%d.", l.id, dir)
			reg.Counter(pre + "sent").Add(d.Sent)
			reg.Counter(pre + "delivered").Add(d.Delivered)
			reg.Counter(pre + "lost").Add(d.LostAtSend + d.LostInFlight)
			reg.Counter(pre + "dropped").Add(d.Dropped)
			reg.Counter(pre + "duplicated").Add(d.Duplicated)
			reg.Gauge(pre + "inflight").Set(int64(d.InFlight()))
		}
	}
}
