package netsim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
)

// burstDeliverRig is deliverRig's vectorized twin: each step pushes a
// whole burst of frames through host NIC serialization, the arrival
// FIFO on the first link, the switch's burst slot loop, and the second
// link's FIFO. NIC serialization (~18ns/frame at 100G) is much shorter
// than the 100ns propagation, so several frames are queued in the
// wireFIFO whenever it fires.
func burstDeliverRig(tb testing.TB) (step func(), rx *uint64) {
	const frames = 16
	sched := sim.NewScheduler()
	net := New(sched)
	sw := core.New(core.Config{Name: "s"}, core.EventDriven(), sched)
	sw.MustLoad(fwdTo(1))
	net.AddSwitch(sw)
	src := net.NewHost("src", packet.IP4(10, 0, 0, 1))
	dst := net.NewHost("dst", packet.IP4(10, 0, 0, 2))
	net.Attach(src, sw, 0, 100*sim.Nanosecond)
	net.Attach(dst, sw, 1, 100*sim.Nanosecond)

	data := testFrame(200)
	gap := (100 * sim.Gbps).ByteTime(len(data) + 24)
	step = func() {
		for i := 0; i < frames; i++ {
			src.Send(data)
		}
		sched.Run(sched.Now() + 10*frames*gap)
	}
	for i := 0; i < 300; i++ {
		step()
	}
	return step, &dst.RxPackets
}

// TestNetsimBurstDeliverZeroAlloc asserts the vectorized delivery path —
// burst sends through pooled NIC transmissions, wireFIFO batched
// arrivals, the switch burst loop, and back out — performs zero heap
// allocations in steady state.
func TestNetsimBurstDeliverZeroAlloc(t *testing.T) {
	step, rx := burstDeliverRig(t)
	before := *rx
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("burst delivery hot path allocates %v per burst, want 0", avg)
	}
	if *rx == before {
		t.Fatal("nothing delivered during the measurement")
	}
}

// lenFrame builds a frame whose total length doubles as its identity:
// the receiver recovers the send order from the delivered sizes.
func lenFrame(n int) []byte {
	return packet.BuildFrame(packet.FrameSpec{
		Flow: packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
			SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
		},
		TotalLen: n,
	})
}

// impairedOrderRun drives the wire-order property workload once and
// returns the delivered frame sizes (in arrival order) plus a counter
// fingerprint. The workload sends bursts of 8 length-tagged frames every
// 20µs; for a middle window the h1-side link carries a deterministic
// impairment (drop every 5th frame, duplicate every 7th with enough
// extra delay to reorder it past later bursts, jitter every 3rd), so the
// run crosses FIFO→legacy→FIFO transitions: frames sent right after the
// impairment is removed still ride the per-frame path while delayed
// duplicates are in the air (the legacyPending guard), then the
// direction returns to batched delivery.
func impairedOrderRun(t *testing.T) (order []int, fp string, maxQueued int) {
	t.Helper()
	sched := sim.NewScheduler()
	net := New(sched)
	sw := core.New(core.Config{Name: "s"}, core.EventDriven(), sched)
	sw.MustLoad(fwdTo(1))
	net.AddSwitch(sw)
	h1 := net.NewHost("h1", packet.IP4(10, 0, 0, 1))
	h2 := net.NewHost("h2", packet.IP4(10, 0, 0, 2))
	l := net.Attach(h1, sw, 0, 2*sim.Microsecond)
	net.Attach(h2, sw, 1, 100*sim.Nanosecond)

	h2.OnRecv = func(d []byte) { order = append(order, len(d)) }

	nimp := 0
	impair := func(data []byte) []Deliverable {
		nimp++
		switch {
		case nimp%5 == 0:
			return nil
		case nimp%7 == 0:
			return []Deliverable{
				{Data: data},
				{Data: append([]byte(nil), data...), ExtraDelay: 30 * sim.Microsecond},
			}
		case nimp%3 == 0:
			return []Deliverable{{Data: data, ExtraDelay: 200 * sim.Nanosecond}}
		default:
			return []Deliverable{{Data: data}}
		}
	}

	const bursts = 30
	for i := 0; i < bursts; i++ {
		i := i
		at := sim.Time(1+i*20) * sim.Microsecond
		sched.At(at, func() {
			for j := 0; j < 8; j++ {
				h1.Send(lenFrame(100 + i*8 + j))
			}
		})
		// Probe the arrival FIFO mid-propagation: all eight NIC
		// serializations (~26ns each) finish well inside the 2µs latency,
		// so outside the impairment window the FIFO holds the whole burst.
		sched.At(at+sim.Microsecond, func() {
			if q := len(l.fifo[0].q) - l.fifo[0].head; q > maxQueued {
				maxQueued = q
			}
		})
	}
	// Impairment window covering bursts 10-19.
	sched.At(200*sim.Microsecond, func() { l.SetImpair(impair) })
	sched.At(400*sim.Microsecond, func() { l.SetImpair(nil) })
	sched.Run(sim.Millisecond)

	fp = fmt.Sprintf("rx=%d/%dB sent=%d delivered=%d dropped=%d dup=%d inflight=%d sw=%+v",
		h2.RxPackets, h2.RxBytes, l.Sent(), l.Delivered(), l.Dropped(), l.Duplicated(),
		l.InFlight(), sw.Stats())
	return order, fp, maxQueued
}

// TestBurstWireOrderUnderImpairments is the wire-order property pin: the
// batched arrival FIFO must deliver frames in exactly the wire-band
// (arrival time, directed link id, send seq) total order of the
// per-frame path, across impairment windows that force the link back and
// forth between the FIFO and legacy-flight paths. The delivered frame
// sequence and every counter must match a rebuild of the identical
// workload with bursting disabled.
func TestBurstWireOrderUnderImpairments(t *testing.T) {
	order, fp, maxQueued := impairedOrderRun(t)

	saved := core.ForceNoBurst
	core.ForceNoBurst = true
	orderRef, fpRef, _ := impairedOrderRun(t)
	core.ForceNoBurst = saved

	if len(order) == 0 {
		t.Fatal("nothing delivered; property is vacuous")
	}
	if maxQueued < 4 {
		t.Fatalf("arrival FIFO peaked at %d queued frames; burst path not exercised", maxQueued)
	}
	if fp != fpRef {
		t.Errorf("counters diverge:\nburst:   %s\nnoburst: %s", fp, fpRef)
	}
	if len(order) != len(orderRef) {
		t.Fatalf("delivered %d frames with burst, %d without", len(order), len(orderRef))
	}
	for i := range order {
		if order[i] != orderRef[i] {
			t.Fatalf("delivery order diverges at %d: burst=%d noburst=%d", i, order[i], orderRef[i])
		}
	}
}

// fifoDepth sums the queued arrival-FIFO entries across a network's
// links, both directions.
func fifoDepth(n *Network) int {
	d := 0
	for _, l := range n.links {
		for dir := 0; dir < 2; dir++ {
			d += len(l.fifo[dir].q) - l.fifo[dir].head
		}
	}
	return d
}

// TestBurstCheckpointMidFIFO pins checkpoint coverage for in-flight
// bursts: the snapshot is cut while arrival FIFOs are non-empty, and the
// resumed run — including a resume into a run with bursting disabled,
// which reloads the same frames as per-frame flights with their original
// (arrival, link, seq) wire keys — must match the uninterrupted run on
// every observable.
func TestBurstCheckpointMidFIFO(t *testing.T) {
	const half, full = sim.Millisecond, 2500 * sim.Microsecond

	a := buildNetRig(t, true)
	a.sched.Run(half)
	if d := fifoDepth(a.net); d == 0 {
		t.Fatal("no frames queued in arrival FIFOs at the cut; mid-burst restore is vacuous")
	}
	snap := a.snapshot()
	a.sched.Run(full)
	want := a.fingerprint()

	b := buildNetRig(t, false)
	b.restore(t, snap)
	if d := fifoDepth(b.net); d == 0 {
		t.Fatal("restore rebuilt no arrival FIFO entries")
	}
	b.sched.Run(full)
	if got := b.fingerprint(); got != want {
		t.Errorf("mid-burst resume diverges:\n--- uninterrupted ---\n%s--- resumed ---\n%s", want, got)
	}

	// Cross-mode resume: the same snapshot poured into a no-burst run.
	saved := core.ForceNoBurst
	core.ForceNoBurst = true
	c := buildNetRig(t, false)
	c.restore(t, snap)
	if d := fifoDepth(c.net); d != 0 {
		t.Errorf("no-burst restore left %d frames in arrival FIFOs; want per-frame flights", d)
	}
	c.sched.Run(full)
	core.ForceNoBurst = saved
	if got := c.fingerprint(); got != want {
		t.Errorf("cross-mode resume diverges:\n--- uninterrupted ---\n%s--- resumed ---\n%s", want, got)
	}
}
