package netsim

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// This file is the network half of the checkpoint protocol (DESIGN.md
// §13): per-link direction counters, wire sequence numbers, endpoint
// link views, frames in flight on the wire band, cross-domain mailbox
// contents, and host NIC state. Switches are snapshotted separately
// (core.Switch.Snapshot); link-transition events scheduled during
// construction are handled by Scheduler.DropFired on the restore side.

// wireFrame is one in-flight frame copy gathered from a wire band.
type wireFrame struct {
	at  sim.Time
	seq uint64
	buf []byte
}

// inFlight gathers every wire-band frame per (link, direction), sorted
// by wire sequence so the snapshot section is deterministic regardless
// of heap layout.
func (n *Network) inFlight() map[*Link][2][]wireFrame {
	out := make(map[*Link][2][]wireFrame)
	seen := make(map[*sim.Scheduler]bool)
	scan := func(s *sim.Scheduler) {
		if s == nil || seen[s] {
			return
		}
		seen[s] = true
		s.EachWire(func(at sim.Time, k1, k2 uint64, fn sim.Action, r sim.Runner) {
			switch v := r.(type) {
			case *flight:
				frames := out[v.l]
				frames[v.dir] = append(frames[v.dir], wireFrame{at: at, seq: k2, buf: v.buf})
				out[v.l] = frames
			case *mailFlight:
				frames := out[v.l]
				frames[v.dir] = append(frames[v.dir], wireFrame{at: at, seq: k2, buf: v.buf})
				out[v.l] = frames
			case *wireFIFO:
				// One band registration stands for the whole arrival
				// FIFO: every queued entry is an in-flight frame.
				frames := out[v.l]
				for _, en := range v.q[v.head:] {
					frames[v.dir] = append(frames[v.dir], wireFrame{at: en.at, seq: en.seq, buf: en.buf})
				}
				out[v.l] = frames
			}
		})
	}
	scan(n.sched)
	for _, l := range n.links {
		scan(l.sched[0])
		scan(l.sched[1])
	}
	for _, frames := range out {
		for dir := 0; dir < 2; dir++ {
			sort.Slice(frames[dir], func(i, j int) bool {
				return frames[dir][i].seq < frames[dir][j].seq
			})
		}
	}
	return out
}

// Snapshot serializes the network's link and host state.
func (n *Network) Snapshot(e *checkpoint.Encoder) {
	flights := n.inFlight()
	e.Int(len(n.links))
	for _, l := range n.links {
		e.Bool(l.sideUp[0])
		e.Bool(l.sideUp[1])
		for dir := 0; dir < 2; dir++ {
			c := &l.dir[dir]
			e.U64(c.Sent)
			e.U64(c.LostAtSend)
			e.U64(c.Dropped)
			e.U64(c.Duplicated)
			e.U64(c.Propagated)
			e.U64(c.Delivered)
			e.U64(c.LostInFlight)
			e.U64(l.wireSeq[dir])
		}
		lf := flights[l]
		for dir := 0; dir < 2; dir++ {
			e.Int(len(lf[dir]))
			for _, f := range lf[dir] {
				e.I64(int64(f.at))
				e.U64(f.seq)
				e.BytesField(f.buf)
			}
			// Cross-domain frames parked in the mailbox, awaiting the next
			// barrier (always empty for non-cross links and at barriers).
			e.Int(len(l.mail[dir]))
			for _, m := range l.mail[dir] {
				e.I64(int64(m.at))
				e.U64(m.seq)
				e.BytesField(m.buf)
			}
		}
	}
	e.Int(len(n.hosts))
	for _, h := range n.hosts {
		e.U64(h.RxPackets)
		e.U64(h.RxBytes)
		e.U64(h.HeldFrames)
		e.I64(int64(h.busy))
		e.Bool(h.paused)
		e.Int(len(h.held))
		for _, f := range h.held {
			e.BytesField(f)
		}
		// Pending NIC serializations, ordered by event seq.
		txs := make([]*hostTx, len(h.txActive))
		copy(txs, h.txActive)
		sort.Slice(txs, func(i, j int) bool {
			_, si, _ := txs[i].hd.When()
			_, sj, _ := txs[j].hd.When()
			return si < sj
		})
		e.Int(len(txs))
		for _, t := range txs {
			at, seq, ok := t.hd.When()
			if !ok {
				panic("netsim: active host tx with no pending event")
			}
			e.I64(int64(at))
			e.U64(seq)
			e.BytesField(t.buf)
		}
	}
}

// Restore loads a network snapshot into an identically constructed
// network (same topology, same link order, same hosts). In-flight
// frames are re-created on the wire bands with their original (arrival,
// link, seq) keys; host serializations with their original (at, seq).
func (n *Network) Restore(d *checkpoint.Decoder) {
	nl := d.Int()
	if d.Err() != nil {
		return
	}
	if nl != len(n.links) {
		d.Fail(fmt.Errorf("netsim: snapshot has %d links, network has %d", nl, len(n.links)))
		return
	}
	for _, l := range n.links {
		l.sideUp[0] = d.Bool()
		l.sideUp[1] = d.Bool()
		for dir := 0; dir < 2; dir++ {
			c := &l.dir[dir]
			c.Sent = d.U64()
			c.LostAtSend = d.U64()
			c.Dropped = d.U64()
			c.Duplicated = d.U64()
			c.Propagated = d.U64()
			c.Delivered = d.U64()
			c.LostInFlight = d.U64()
			l.wireSeq[dir] = d.U64()
		}
		// The attached switches' own port views (linkUp) come back via
		// core.Switch.Restore; here only the link's endpoint views and
		// its in-flight frames are rebuilt.
		for dir := 0; dir < 2; dir++ {
			nf := d.Int()
			if d.Err() != nil {
				return
			}
			// Frames were snapshotted sorted by send seq. When the
			// restoring network batches deliveries (burstOK) and the
			// arrival times are non-decreasing in that order — always
			// true for frames that were queued in a FIFO, and for any
			// unimpaired stretch — they reload as one arrival FIFO with
			// a single band registration. Otherwise (impairment-scattered
			// arrival times, or bursting disabled) each frame reloads as
			// its own per-frame flight, exactly as snapshotted runs
			// without bursting would.
			w := l.fifo[dir]
			w.q = w.q[:0]
			w.head = 0
			l.legacyPending[dir] = 0
			frames := make([]wireFrame, 0, nf)
			fifoOK := l.burstOK
			for i := 0; i < nf; i++ {
				at := sim.Time(d.I64())
				seq := d.U64()
				buf := d.BytesField()
				if d.Err() != nil {
					return
				}
				if i > 0 && at < frames[i-1].at {
					fifoOK = false
				}
				frames = append(frames, wireFrame{at: at, seq: seq, buf: buf})
			}
			if fifoOK && nf > 0 {
				for _, f := range frames {
					w.q = append(w.q, wireEntry{at: f.at, seq: f.seq, buf: append([]byte(nil), f.buf...)})
				}
				h := &w.q[0]
				l.sched[1-dir].RestoreWireRunner(h.at, l.wireKey(dir), h.seq, w)
			} else {
				for _, fr := range frames {
					if l.cross {
						m := &mailFlight{n: n, l: l, dir: dir, at: fr.at, seq: fr.seq}
						m.buf = append(m.buf, fr.buf...)
						l.sched[1-dir].RestoreWireRunner(fr.at, l.wireKey(dir), fr.seq, m)
					} else {
						f := &flight{n: n, l: l, dir: dir}
						f.buf = append(f.buf, fr.buf...)
						l.legacyPending[dir]++
						l.sched[1-dir].RestoreWireRunner(fr.at, l.wireKey(dir), fr.seq, f)
					}
				}
			}
			nm := d.Int()
			if d.Err() != nil {
				return
			}
			l.mail[dir] = l.mail[dir][:0]
			for i := 0; i < nm; i++ {
				m := &mailFlight{n: n, l: l, dir: dir}
				m.at = sim.Time(d.I64())
				m.seq = d.U64()
				m.buf = append(m.buf, d.BytesField()...)
				if d.Err() != nil {
					return
				}
				l.mail[dir] = append(l.mail[dir], m)
			}
		}
	}
	nh := d.Int()
	if d.Err() != nil {
		return
	}
	if nh != len(n.hosts) {
		d.Fail(fmt.Errorf("netsim: snapshot has %d hosts, network has %d", nh, len(n.hosts)))
		return
	}
	for _, h := range n.hosts {
		h.RxPackets = d.U64()
		h.RxBytes = d.U64()
		h.HeldFrames = d.U64()
		h.busy = sim.Time(d.I64())
		h.paused = d.Bool()
		nheld := d.Int()
		if d.Err() != nil {
			return
		}
		h.held = h.held[:0]
		for i := 0; i < nheld; i++ {
			h.held = append(h.held, append([]byte(nil), d.BytesField()...))
		}
		ntx := d.Int()
		if d.Err() != nil {
			return
		}
		h.txActive = h.txActive[:0]
		for i := 0; i < ntx; i++ {
			at := sim.Time(d.I64())
			seq := d.U64()
			buf := d.BytesField()
			if d.Err() != nil {
				return
			}
			t := &hostTx{h: h}
			t.buf = append(t.buf, buf...)
			t.idx = len(h.txActive)
			h.txActive = append(h.txActive, t)
			t.hd = h.Scheduler().RestoreAtRunner(at, seq, t)
		}
	}
}
