package workload

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestFixedAndUniformSizes(t *testing.T) {
	rng := sim.NewRNG(1)
	if FixedSize(200).Next(rng) != 200 {
		t.Error("FixedSize wrong")
	}
	u := UniformSize{Min: 100, Max: 200}
	for i := 0; i < 1000; i++ {
		n := u.Next(rng)
		if n < 100 || n > 200 {
			t.Fatalf("uniform out of range: %d", n)
		}
	}
	if (UniformSize{Min: 50, Max: 50}).Next(rng) != 50 {
		t.Error("degenerate uniform wrong")
	}
}

func TestIMixDistribution(t *testing.T) {
	rng := sim.NewRNG(2)
	counts := map[int]int{}
	for i := 0; i < 12000; i++ {
		counts[IMix{}.Next(rng)]++
	}
	if counts[60] < 6000 || counts[60] > 8000 {
		t.Errorf("60B count = %d, want ~7000", counts[60])
	}
	if counts[576] < 3000 || counts[576] > 5000 {
		t.Errorf("576B count = %d, want ~4000", counts[576])
	}
	if counts[1514] < 500 || counts[1514] > 1500 {
		t.Errorf("1514B count = %d, want ~1000", counts[1514])
	}
}

func TestFlowSetZipf(t *testing.T) {
	rng := sim.NewRNG(3)
	fs := NewFlowSet(100, 1.2, packet.IP4(10, 0, 0, 0))
	if fs.Len() != 100 {
		t.Fatalf("len = %d", fs.Len())
	}
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[fs.Pick(rng)]++
	}
	// Zipf: flow 0 should dominate flow 50 heavily.
	if counts[0] < 5*counts[50] {
		t.Errorf("zipf skew too weak: top=%d mid=%d", counts[0], counts[50])
	}
	// Uniform flow set: roughly equal.
	fu := NewFlowSet(10, 0, packet.IP4(10, 1, 0, 0))
	ucounts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		ucounts[fu.Pick(rng)]++
	}
	for i, c := range ucounts {
		if c < 3500 || c > 6500 {
			t.Errorf("uniform flow %d picked %d of 50000", i, c)
		}
	}
}

func TestCBRSpacingAndRate(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(4)
	var times []sim.Time
	g := NewGen(sched, rng, func(data []byte) {
		times = append(times, sched.Now())
		if len(data) != 60 {
			t.Fatalf("frame len = %d", len(data))
		}
	})
	// 60B+24B = 84B at 1 Gb/s = 672 ns per frame.
	g.StartCBR(CBRConfig{
		Flow: packet.Flow{Src: 1, Dst: 2, Proto: packet.ProtoUDP},
		Rate: sim.Gbps, Until: 10 * sim.Microsecond,
	})
	sched.Run(20 * sim.Microsecond)
	if len(times) < 14 || len(times) > 16 {
		t.Fatalf("sent %d frames in 10us at 1G, want ~15", len(times))
	}
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap != 672*sim.Nanosecond {
			t.Fatalf("gap %d = %v, want 672ns", i, gap)
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(5)
	n := 0
	g := NewGen(sched, rng, func([]byte) { n++ })
	fs := NewFlowSet(10, 0, packet.IP4(10, 0, 0, 0))
	g.StartPoisson(PoissonConfig{Flows: fs, MeanGap: sim.Microsecond, Until: 10 * sim.Millisecond})
	sched.Run(11 * sim.Millisecond)
	// Expect ~10000 arrivals; allow 5% slack.
	if n < 9500 || n > 10500 {
		t.Errorf("poisson sent %d, want ~10000", n)
	}
}

func TestBurst(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(6)
	var times []sim.Time
	g := NewGen(sched, rng, func([]byte) { times = append(times, sched.Now()) })
	g.ScheduleBurst(BurstConfig{
		Flow:    packet.Flow{Src: 1, Dst: 2, Proto: packet.ProtoUDP},
		Count:   5,
		Spacing: 10 * sim.Nanosecond,
		At:      sim.Microsecond,
	})
	sched.Run(sim.Millisecond)
	if len(times) != 5 {
		t.Fatalf("burst sent %d", len(times))
	}
	if times[0] != sim.Microsecond || times[4] != sim.Microsecond+40*sim.Nanosecond {
		t.Errorf("burst timing wrong: %v", times)
	}
}

func TestSaturateLoad(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(7)
	bytes := uint64(0)
	g := NewGen(sched, rng, func(d []byte) { bytes += uint64(len(d)) + 24 })
	g.StartSaturate(SaturateConfig{
		Flow: packet.Flow{Src: 1, Dst: 2, Proto: packet.ProtoUDP},
		Rate: 10 * sim.Gbps, Load: 1.0, Until: 100 * sim.Microsecond,
	})
	sched.Run(sim.Millisecond)
	// 10 Gb/s for 100us = 125000 bytes of wire time.
	if bytes < 124000 || bytes > 126000 {
		t.Errorf("saturate sent %d wire bytes, want ~125000", bytes)
	}
}

func TestGenStop(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(8)
	n := 0
	g := NewGen(sched, rng, func([]byte) { n++ })
	g.StartCBR(CBRConfig{Flow: packet.Flow{Src: 1, Dst: 2, Proto: packet.ProtoUDP}, Rate: sim.Gbps})
	sched.Run(5 * sim.Microsecond)
	g.Stop()
	before := n
	sched.Run(50 * sim.Microsecond)
	if n != before {
		t.Errorf("generator kept sending after Stop: %d -> %d", before, n)
	}
	if g.SentPackets != uint64(n) {
		t.Errorf("SentPackets = %d, n = %d", g.SentPackets, n)
	}
}
