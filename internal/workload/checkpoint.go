package workload

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// Snapshot serializes a saturate generator: emission counters, the
// sub-flow cursor, the RNG stream position, and the (at, seq) of the
// pending next-emission event.
func (g *Gen) Snapshot(e *checkpoint.Encoder) {
	e.U64(g.SentPackets)
	e.U64(g.SentBytes)
	e.Bool(g.stopped)
	e.U32(g.satSeq)
	st := g.rng.State()
	for _, w := range st {
		e.U64(w)
	}
	at, seq, ok := g.pending.When()
	e.Bool(ok)
	e.I64(int64(at))
	e.U64(seq)
}

// Restore loads a snapshot into a generator prepared with PrepareSaturate
// (closure built, no emission yet). The pending emission is re-created at
// its checkpointed (at, seq) so the resumed schedule is identical.
func (g *Gen) Restore(d *checkpoint.Decoder) {
	if g.satStep == nil {
		d.Fail(fmt.Errorf("workload: Restore needs PrepareSaturate first"))
		return
	}
	g.SentPackets = d.U64()
	g.SentBytes = d.U64()
	g.stopped = d.Bool()
	g.satSeq = d.U32()
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	hadPending := d.Bool()
	at := sim.Time(d.I64())
	seq := d.U64()
	if d.Err() != nil {
		return
	}
	g.rng.SetState(st)
	if hadPending {
		g.pending = g.sched.RestoreAt(at, seq, g.satStep)
	}
}
