// Package workload generates synthetic traffic for the experiments:
// constant-bit-rate and Poisson arrivals, heavy-tailed flow mixes, and
// microburst injections. Generators drive a sink (usually a switch port)
// through the simulation scheduler, with all randomness drawn from the
// deterministic sim.RNG.
//
// This is the substitution for the paper's real line-rate traffic (see
// DESIGN.md §2): what matters for every claim is arrival spacing relative
// to the pipeline's cycle budget and the flow structure, both of which
// these generators control exactly.
package workload

import (
	"math"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Sink consumes generated frames, timed by the scheduler. core.Switch's
// Inject method (curried with a port) is the usual sink. The frame slice
// is only valid for the duration of the call — generators reuse a scratch
// buffer — so a sink that defers consumption must copy (Switch.Inject and
// Host.Send both copy before returning).
type Sink func(data []byte)

// SizeDist picks frame sizes.
type SizeDist interface {
	// Next returns the next frame length in bytes.
	Next(rng *sim.RNG) int
}

// FixedSize always returns the same frame length.
type FixedSize int

// Next implements SizeDist.
func (s FixedSize) Next(*sim.RNG) int { return int(s) }

// IMix approximates the classic Internet mix: 7 parts 60B (64B wire),
// 4 parts 576B, 1 part 1514B.
type IMix struct{}

// Next implements SizeDist.
func (IMix) Next(rng *sim.RNG) int {
	switch r := rng.Intn(12); {
	case r < 7:
		return 60
	case r < 11:
		return 576
	default:
		return 1514
	}
}

// UniformSize picks uniformly in [Min, Max].
type UniformSize struct{ Min, Max int }

// Next implements SizeDist.
func (u UniformSize) Next(rng *sim.RNG) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Intn(u.Max-u.Min+1)
}

// FlowSet is a pool of flows to draw packets from; draws follow a Zipf-ish
// popularity so a few flows dominate, as in real traffic.
type FlowSet struct {
	flows []packet.Flow
	cdf   []float64
}

// NewFlowSet builds n flows between the given /24-style host ranges with
// Zipf popularity of exponent alpha (alpha=0 gives uniform).
func NewFlowSet(n int, alpha float64, base packet.IP) *FlowSet {
	fs := &FlowSet{flows: make([]packet.Flow, n), cdf: make([]float64, n)}
	var sum float64
	for i := 0; i < n; i++ {
		fs.flows[i] = packet.Flow{
			Src:     base + packet.IP(i%251),
			Dst:     base + packet.IP(1000+i),
			SrcPort: uint16(1024 + i%50000),
			DstPort: uint16(80 + i%7),
			Proto:   packet.ProtoUDP,
		}
		w := 1.0
		if alpha > 0 {
			w = 1.0 / pow(float64(i+1), alpha)
		}
		sum += w
		fs.cdf[i] = sum
	}
	for i := range fs.cdf {
		fs.cdf[i] /= sum
	}
	return fs
}

func pow(x, a float64) float64 { return math.Pow(x, a) }

// Len returns the number of flows.
func (fs *FlowSet) Len() int { return len(fs.flows) }

// Flow returns flow i.
func (fs *FlowSet) Flow(i int) packet.Flow { return fs.flows[i] }

// Pick draws a flow index by popularity.
func (fs *FlowSet) Pick(rng *sim.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(fs.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if fs.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Gen is a traffic generator bound to a scheduler and sink.
type Gen struct {
	sched *sim.Scheduler
	rng   *sim.RNG
	sink  Sink

	// Sent counts frames and bytes delivered to the sink.
	SentPackets uint64
	SentBytes   uint64
	stopped     bool

	// pending is the stream's next scheduled emission and satSeq/satStep
	// the saturate stream's cursor and step closure; together they are
	// what a checkpoint needs to re-arm the stream (checkpoint.go).
	pending sim.Handle
	satSeq  uint32
	satStep sim.Action

	// buf is the scratch frame reused across emissions (see Sink).
	buf []byte
}

// frame serializes spec into the generator's scratch buffer.
func (g *Gen) frame(spec packet.FrameSpec) []byte {
	g.buf = packet.AppendFrame(g.buf[:0], spec)
	return g.buf
}

// NewGen builds a generator.
func NewGen(sched *sim.Scheduler, rng *sim.RNG, sink Sink) *Gen {
	return &Gen{sched: sched, rng: rng, sink: sink}
}

// Stop halts all future emissions from this generator.
func (g *Gen) Stop() { g.stopped = true }

func (g *Gen) emit(data []byte) {
	if g.stopped {
		return
	}
	g.SentPackets++
	g.SentBytes += uint64(len(data))
	g.sink(data)
}

// CBRConfig describes a constant-bit-rate stream.
type CBRConfig struct {
	Flow  packet.Flow
	Size  SizeDist
	Rate  sim.Rate // offered rate including wire overhead of 24B/frame
	Until sim.Time // stop time (0 = run forever)
}

// StartCBR emits frames back-to-back spaced to match the offered rate.
func (g *Gen) StartCBR(cfg CBRConfig) {
	if cfg.Size == nil {
		cfg.Size = FixedSize(packet.MinFrameLen)
	}
	var step func()
	step = func() {
		if g.stopped || (cfg.Until > 0 && g.sched.Now() >= cfg.Until) {
			return
		}
		n := cfg.Size.Next(g.rng)
		data := g.frame(packet.FrameSpec{Flow: cfg.Flow, TotalLen: n})
		g.emit(data)
		gap := cfg.Rate.ByteTime(len(data) + 24) // wire footprint spacing
		g.sched.After(gap, step)
	}
	step()
}

// PoissonConfig describes Poisson packet arrivals over a flow set.
type PoissonConfig struct {
	Flows *FlowSet
	Size  SizeDist
	// MeanGap is the mean inter-arrival time.
	MeanGap sim.Time
	Until   sim.Time
}

// StartPoisson emits frames with exponential inter-arrival times, drawing
// each frame's flow from the flow set's popularity distribution.
func (g *Gen) StartPoisson(cfg PoissonConfig) {
	if cfg.Size == nil {
		cfg.Size = IMix{}
	}
	var step func()
	step = func() {
		if g.stopped || (cfg.Until > 0 && g.sched.Now() >= cfg.Until) {
			return
		}
		fl := cfg.Flows.Flow(cfg.Flows.Pick(g.rng))
		n := cfg.Size.Next(g.rng)
		g.emit(g.frame(packet.FrameSpec{Flow: fl, TotalLen: n}))
		g.sched.After(g.rng.ExpTime(cfg.MeanGap), step)
	}
	g.sched.After(g.rng.ExpTime(cfg.MeanGap), step)
}

// BurstConfig describes a microburst: a train of frames from one flow
// arriving nearly back-to-back.
type BurstConfig struct {
	Flow    packet.Flow
	Size    SizeDist
	Count   int
	Spacing sim.Time // inter-frame spacing within the burst
	At      sim.Time // burst start
}

// ScheduleBurst injects a burst at the configured time.
func (g *Gen) ScheduleBurst(cfg BurstConfig) {
	if cfg.Size == nil {
		cfg.Size = FixedSize(packet.MinFrameLen)
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = sim.Nanosecond
	}
	g.sched.At(cfg.At, func() {
		for i := 0; i < cfg.Count; i++ {
			i := i
			g.sched.After(sim.Time(i)*cfg.Spacing, func() {
				n := cfg.Size.Next(g.rng)
				g.emit(g.frame(packet.FrameSpec{Flow: cfg.Flow, TotalLen: n}))
			})
		}
	})
}

// SaturateConfig describes full-line-rate arrival of minimum-size frames —
// the worst case for the pipeline's slot budget (experiment E6).
type SaturateConfig struct {
	Flow  packet.Flow
	Rate  sim.Rate
	Size  int // frame length (default minimum)
	Until sim.Time
	// Load scales the offered rate (1.0 = exactly line rate).
	Load float64
}

// StartSaturate emits fixed-size frames at Load x line rate with exact
// deterministic spacing.
func (g *Gen) StartSaturate(cfg SaturateConfig) {
	g.PrepareSaturate(cfg)
	g.satStep()
}

// PrepareSaturate builds (but does not fire) the saturate step closure.
// The stream's cursor lives on the generator rather than in the closure
// so a checkpoint can capture it and a restored run can re-arm the same
// closure without the initial emission (checkpoint.go).
func (g *Gen) PrepareSaturate(cfg SaturateConfig) {
	if cfg.Size <= 0 {
		cfg.Size = packet.MinFrameLen
	}
	if cfg.Load <= 0 {
		cfg.Load = 1.0
	}
	gap := sim.Time(float64(cfg.Rate.ByteTime(cfg.Size+24)) / cfg.Load)
	var step func()
	step = func() {
		if g.stopped || (cfg.Until > 0 && g.sched.Now() >= cfg.Until) {
			return
		}
		fl := cfg.Flow
		fl.SrcPort = uint16(1024 + g.satSeq%16) // a few sub-flows for hashing
		g.satSeq++
		g.emit(g.frame(packet.FrameSpec{Flow: fl, TotalLen: cfg.Size}))
		g.pending = g.sched.After(gap, step)
	}
	g.satStep = step
}
