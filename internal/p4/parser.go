package p4

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, errf(p.cur().pos, "expected %s, found %q", what, p.cur().String())
	}
	return p.advance(), nil
}

// parse parses a whole file.
func parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.cur().kind != tokEOF {
		switch p.cur().kind {
		case tokConst:
			d, err := p.parseConst()
			if err != nil {
				return nil, err
			}
			f.Consts = append(f.Consts, d)
		case tokSharedRegister, tokRegister:
			d, err := p.parseRegister()
			if err != nil {
				return nil, err
			}
			f.Registers = append(f.Registers, d)
		case tokCounter:
			d, err := p.parseCounter()
			if err != nil {
				return nil, err
			}
			f.Counters = append(f.Counters, d)
		case tokAction:
			d, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			f.Actions = append(f.Actions, d)
		case tokTable:
			d, err := p.parseTable()
			if err != nil {
				return nil, err
			}
			f.Tables = append(f.Tables, d)
		case tokControl:
			d, err := p.parseControl()
			if err != nil {
				return nil, err
			}
			f.Controls = append(f.Controls, d)
		default:
			return nil, errf(p.cur().pos, "expected declaration, found %q", p.cur().String())
		}
	}
	return f, nil
}

func (p *parser) parseConst() (*ConstDecl, error) {
	kw := p.advance() // const
	name, err := p.expect(tokIdent, "constant name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &ConstDecl{Pos: kw.pos, Name: name.text, Value: val}, nil
}

// parseBitType parses `bit<N>`; the caller handles any merged '>>'.
func (p *parser) parseBitWidth() (int, error) {
	if _, err := p.expect(tokBit, "'bit'"); err != nil {
		return 0, err
	}
	if _, err := p.expect(tokLAngle, "'<'"); err != nil {
		return 0, err
	}
	n, err := p.expect(tokNumber, "bit width")
	if err != nil {
		return 0, err
	}
	if n.num == 0 || n.num > 64 {
		return 0, errf(n.pos, "bit width must be 1..64, got %d", n.num)
	}
	// The closing '>' may be merged with a following '>' into '>>' by
	// the lexer (as in shared_register<bit<32>>). Split it.
	switch p.cur().kind {
	case tokRAngle:
		p.advance()
	case tokShr:
		p.toks[p.i] = token{kind: tokRAngle, text: ">", pos: p.cur().pos}
	default:
		return 0, errf(p.cur().pos, "expected '>' after bit width")
	}
	return int(n.num), nil
}

func (p *parser) parseRegister() (*RegisterDecl, error) {
	kw := p.advance() // shared_register | register
	if _, err := p.expect(tokLAngle, "'<'"); err != nil {
		return nil, err
	}
	width, err := p.parseBitWidth()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRAngle, "'>'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	size, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "register name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &RegisterDecl{Pos: kw.pos, Name: name.text, Width: width, Size: size}, nil
}

func (p *parser) parseCounter() (*CounterDecl, error) {
	kw := p.advance() // counter
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	size, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "counter name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &CounterDecl{Pos: kw.pos, Name: name.text, Size: size}, nil
}

func (p *parser) parseAction() (*ActionDecl, error) {
	kw := p.advance() // action
	name, err := p.expect(tokIdent, "action name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var params []string
	for p.cur().kind != tokRParen {
		id, err := p.expect(tokIdent, "parameter name")
		if err != nil {
			return nil, err
		}
		params = append(params, id.text)
		if !p.accept(tokComma) {
			break
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ActionDecl{Pos: kw.pos, Name: name.text, Params: params, Body: body}, nil
}

func (p *parser) parseTable() (*TableDecl, error) {
	kw := p.advance() // table
	name, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	d := &TableDecl{Pos: kw.pos, Name: name.text}
	for p.cur().kind != tokRBrace {
		switch p.cur().kind {
		case tokKey:
			p.advance()
			if _, err := p.expect(tokAssign, "'='"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLBrace, "'{'"); err != nil {
				return nil, err
			}
			for p.cur().kind != tokRBrace {
				kpos := p.cur().pos
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokColon, "':'"); err != nil {
					return nil, err
				}
				var match string
				switch p.cur().kind {
				case tokExact, tokLpm, tokTernary:
					match = p.advance().text
				default:
					return nil, errf(p.cur().pos, "expected match kind (exact/lpm/ternary)")
				}
				if _, err := p.expect(tokSemi, "';'"); err != nil {
					return nil, err
				}
				d.Keys = append(d.Keys, TableKey{Pos: kpos, Expr: e, Match: match})
			}
			p.advance() // }
		case tokActions:
			p.advance()
			if _, err := p.expect(tokAssign, "'='"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLBrace, "'{'"); err != nil {
				return nil, err
			}
			for p.cur().kind != tokRBrace {
				id, err := p.expect(tokIdent, "action name")
				if err != nil {
					return nil, err
				}
				d.Actions = append(d.Actions, id.text)
				if _, err := p.expect(tokSemi, "';'"); err != nil {
					return nil, err
				}
			}
			p.advance() // }
		case tokDefaultAction:
			p.advance()
			if _, err := p.expect(tokAssign, "'='"); err != nil {
				return nil, err
			}
			id, err := p.expect(tokIdent, "action name")
			if err != nil {
				return nil, err
			}
			d.DefaultAction = id.text
			if p.accept(tokLParen) {
				for p.cur().kind != tokRParen {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					d.DefaultArgs = append(d.DefaultArgs, e)
					if !p.accept(tokComma) {
						break
					}
				}
				if _, err := p.expect(tokRParen, "')'"); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokSemi, "';'"); err != nil {
				return nil, err
			}
		default:
			return nil, errf(p.cur().pos, "unexpected %q in table body", p.cur().String())
		}
	}
	p.advance() // }
	return d, nil
}

func (p *parser) parseControl() (*ControlDecl, error) {
	kw := p.advance() // control
	name, err := p.expect(tokIdent, "control name")
	if err != nil {
		return nil, err
	}
	// Accept and ignore an optional empty parameter list for P4 flavor.
	if p.accept(tokLParen) {
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	d := &ControlDecl{Pos: kw.pos, Name: name.text}
	// Local declarations, then `apply { ... }`.
	for p.cur().kind == tokBit {
		lpos := p.cur().pos
		w, err := p.parseBitWidth()
		if err != nil {
			return nil, err
		}
		id, err := p.expect(tokIdent, "variable name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		d.Locals = append(d.Locals, &LocalDecl{Pos: lpos, Name: id.text, Width: w})
	}
	if _, err := p.expect(tokApply, "'apply'"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	d.Body = body
	if _, err := p.expect(tokRBrace, "'}' closing control"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.cur().kind != tokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance() // }
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.cur().kind {
	case tokIf:
		pos := p.advance().pos
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: pos, Cond: cond, Then: then}
		if p.accept(tokElse) {
			if p.cur().kind == tokIf {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				st.Else = []Stmt{inner}
			} else {
				els, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil
	case tokIdent:
		// assignment `x = e;`, call `f(args);`, or method `r.m(args);`
		id := p.advance()
		switch p.cur().kind {
		case tokAssign:
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi, "';'"); err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: id.pos, Name: id.text, Expr: e}, nil
		case tokLParen:
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi, "';'"); err != nil {
				return nil, err
			}
			return &CallStmt{Pos: id.pos, Method: id.text, Args: args}, nil
		case tokDot:
			p.advance()
			var m token
			// "apply" lexes as a keyword; allow tbl.apply().
			if p.cur().kind == tokApply {
				m = p.advance()
			} else {
				var err error
				m, err = p.expect(tokIdent, "method name")
				if err != nil {
					return nil, err
				}
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi, "';'"); err != nil {
				return nil, err
			}
			return &CallStmt{Pos: id.pos, Recv: id.text, Method: m.text, Args: args}, nil
		default:
			return nil, errf(p.cur().pos, "expected '=', '(' or '.' after %q", id.text)
		}
	case tokReturn:
		pos := p.advance().pos
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos}, nil
	case tokApply:
		return nil, errf(p.cur().pos, "nested apply blocks are not allowed")
	}
	return nil, errf(p.cur().pos, "expected statement, found %q", p.cur().String())
}

func (p *parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().kind != tokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.accept(tokComma) {
			break
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return args, nil
}

// Operator precedence, lowest first. Bitwise operators bind tighter
// than comparisons (the P4-16/Go rule, not C's), so
// `flags & 2 == 2` parses as `(flags & 2) == 2`.
var binPrec = map[tokKind]int{
	tokOrOr:   1,
	tokAndAnd: 2,
	tokEq:     3, tokNeq: 3,
	tokLAngle: 4, tokRAngle: 4, tokLe: 4, tokGe: 4,
	tokPipe:  5,
	tokCaret: 6,
	tokAmp:   7,
	tokShl:   8, tokShr: 8,
	tokPlus: 9, tokMinus: 9,
	tokStar: 10, tokSlash: 10, tokPercent: 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.advance().pos
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Pos: pos, Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().kind {
	case tokMinus, tokBang, tokTilde:
		t := p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.pos, Op: t.kind, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur().kind {
	case tokNumber:
		t := p.advance()
		return &NumExpr{Pos: t.pos, Val: t.num}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		t := p.advance()
		// Dotted field path?
		if p.cur().kind == tokDot {
			path := t.text
			for p.accept(tokDot) {
				part, err := p.expect(tokIdent, "field name")
				if err != nil {
					return nil, err
				}
				path = path + "." + part.text
			}
			return &FieldExpr{Pos: t.pos, Path: path}, nil
		}
		// Builtin function call in expression position?
		if p.cur().kind == tokLParen && isBuiltinFn(t.text) {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Pos: t.pos, Name: t.text, Args: args}, nil
		}
		return &IdentExpr{Pos: t.pos, Name: t.text}, nil
	}
	return nil, errf(p.cur().pos, "expected expression, found %q", p.cur().String())
}

func isBuiltinFn(name string) bool {
	switch name {
	case "min", "max", "ssub":
		return true
	}
	return false
}
