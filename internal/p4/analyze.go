package p4

import (
	"fmt"
	"sort"
)

// Static consistency analysis for multi-threaded µP4 programs.
//
// The paper's §7 leaves this open: "In an event-driven programming model
// there can be many event processing threads that share the same state.
// Defining a consistency model for multi-threaded data-plane programs
// remains an area of future work." This analyzer implements a first such
// model for the Figure 3 aggregated-register semantics: it classifies
// each control as a direct thread (packet events, timers, link/control/
// user events) or a deferred thread (traffic-manager events whose
// register updates aggregate), collects every register access, and
// reports the cross-thread hazards the semantics imply.

// HazardKind classifies an analysis finding.
type HazardKind uint8

const (
	// HazardStaleRead: a direct thread reads a register that deferred
	// threads update, so the read value lags the true value by the
	// drain backlog (bounded when the pipeline has slack). Usually
	// acceptable — the paper's heavy-hitter example — but the program
	// author should know.
	HazardStaleRead HazardKind = iota
	// HazardLostUpdate: a direct thread writes a register absolutely
	// while deferred threads add deltas to it. Deltas deferred before
	// the write but drained after it are re-applied on top of the new
	// value: the write does not fully take effect.
	HazardLostUpdate
	// HazardDeferredWrite: a deferred thread writes a register
	// absolutely. This is undefined under aggregation semantics and
	// panics at run time; the analyzer reports it statically.
	HazardDeferredWrite
	// HazardDeferredRead: a deferred thread reads a register. It sees
	// the stale main value, which in particular does not include its
	// own class's pending deltas (no read-your-writes).
	HazardDeferredRead
)

// String names the hazard kind.
func (k HazardKind) String() string {
	switch k {
	case HazardStaleRead:
		return "stale-read"
	case HazardLostUpdate:
		return "lost-update"
	case HazardDeferredWrite:
		return "deferred-write"
	case HazardDeferredRead:
		return "deferred-read"
	default:
		return fmt.Sprintf("hazard(%d)", uint8(k))
	}
}

// Hazard is one finding.
type Hazard struct {
	Kind     HazardKind
	Register string
	// Controls lists the involved control names, sorted.
	Controls []string
	// Fatal marks hazards that fail at run time (HazardDeferredWrite).
	Fatal bool
	// Msg is a human-readable explanation.
	Msg string
}

// String renders the hazard.
func (h Hazard) String() string {
	return fmt.Sprintf("%s on %q involving %v: %s", h.Kind, h.Register, h.Controls, h.Msg)
}

// regAccess describes how one control touches one register.
type regAccess struct {
	reads, adds, writes bool
}

// deferredControl reports whether a control's register updates go
// through aggregation banks under the default instantiation.
func deferredControl(name string) bool {
	kind := controlKind[name]
	for _, k := range DeferredKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// Analyze inspects the compiled program's register sharing across event
// threads and returns the hazards, sorted by register then kind. The
// analysis models the default (aggregated) instantiation; MultiPort
// instantiations are exact and only HazardDeferredWrite-free programs
// remain portable between the two.
func (c *Compiled) Analyze() []Hazard {
	// access[register][control] = ops
	access := make(map[string]map[string]*regAccess)
	for _, reg := range c.file.Registers {
		access[reg.Name] = make(map[string]*regAccess)
	}
	regName := func(i int) string { return c.file.Registers[i].Name }

	var collect func(stmts []Stmt, control string)
	collect = func(stmts []Stmt, control string) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *IfStmt:
				collect(st.Then, control)
				collect(st.Else, control)
			case *CallStmt:
				var a *regAccess
				switch st.kind {
				case callRegRead, callRegWrite, callRegAdd:
					name := regName(st.reg)
					a = access[name][control]
					if a == nil {
						a = &regAccess{}
						access[name][control] = a
					}
				default:
					continue
				}
				switch st.kind {
				case callRegRead:
					a.reads = true
				case callRegWrite:
					a.writes = true
				case callRegAdd:
					a.adds = true
				}
			}
		}
	}
	for _, ctl := range c.file.Controls {
		collect(ctl.Body, ctl.Name)
	}

	var out []Hazard
	for reg, byControl := range access {
		var directReaders, directWriters, defAdders, defWriters, defReaders []string
		for control, a := range byControl {
			if deferredControl(control) {
				if a.adds {
					defAdders = append(defAdders, control)
				}
				if a.writes {
					defWriters = append(defWriters, control)
				}
				if a.reads {
					defReaders = append(defReaders, control)
				}
				continue
			}
			if a.reads {
				directReaders = append(directReaders, control)
			}
			if a.writes {
				directWriters = append(directWriters, control)
			}
		}
		sortAll(&directReaders, &directWriters, &defAdders, &defWriters, &defReaders)

		if len(defWriters) > 0 {
			out = append(out, Hazard{
				Kind: HazardDeferredWrite, Register: reg, Controls: defWriters, Fatal: true,
				Msg: "absolute writes from aggregated event threads are undefined and panic at run time; use .add",
			})
		}
		if len(defAdders) > 0 && len(directReaders) > 0 {
			out = append(out, Hazard{
				Kind: HazardStaleRead, Register: reg,
				Controls: merge(directReaders, defAdders),
				Msg:      "reads lag deferred updates by the drain backlog (bounded when the pipeline has slack)",
			})
		}
		if len(defAdders) > 0 && len(directWriters) > 0 {
			out = append(out, Hazard{
				Kind: HazardLostUpdate, Register: reg,
				Controls: merge(directWriters, defAdders),
				Msg:      "deltas deferred before an absolute write drain after it and partially undo the write",
			})
		}
		if len(defReaders) > 0 {
			out = append(out, Hazard{
				Kind: HazardDeferredRead, Register: reg, Controls: defReaders,
				Msg: "deferred threads read the stale main value and do not see their own pending deltas",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Register != out[j].Register {
			return out[i].Register < out[j].Register
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func sortAll(lists ...*[]string) {
	for _, l := range lists {
		sort.Strings(*l)
	}
}

func merge(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
