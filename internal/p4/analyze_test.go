package p4

import (
	"strings"
	"testing"
)

func hazardKinds(hs []Hazard) []HazardKind {
	var ks []HazardKind
	for _, h := range hs {
		ks = append(ks, h.Kind)
	}
	return ks
}

func TestAnalyzeMicroburstStaleReadOnly(t *testing.T) {
	// The paper's own program: ingress reads what enqueue/dequeue
	// update. Exactly one hazard class: bounded stale reads.
	hs := MustCompile(Programs["microburst"]).Analyze()
	if len(hs) != 1 {
		t.Fatalf("hazards = %v", hs)
	}
	h := hs[0]
	if h.Kind != HazardStaleRead || h.Fatal {
		t.Errorf("hazard = %v", h)
	}
	if h.Register != "bufSize_reg" {
		t.Errorf("register = %s", h.Register)
	}
	for _, want := range []string{"Ingress", "Enqueue", "Dequeue"} {
		found := false
		for _, c := range h.Controls {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("controls %v missing %s", h.Controls, want)
		}
	}
}

func TestAnalyzeDeferredWriteFatal(t *testing.T) {
	hs := MustCompile(`
shared_register<bit<8>>(4) r;
control Ingress { apply { forward(1); } }
control Enqueue { apply { r.write(0, 1); } }
`).Analyze()
	if len(hs) != 1 || hs[0].Kind != HazardDeferredWrite || !hs[0].Fatal {
		t.Fatalf("hazards = %v", hs)
	}
}

func TestAnalyzeLostUpdate(t *testing.T) {
	// A timer (direct) resets a register that enqueue events (deferred)
	// add to: the reset can be partially undone by in-flight deltas.
	hs := MustCompile(`
shared_register<bit<32>>(8) cnt;
control Ingress { apply { forward(1); } }
control Enqueue { apply { cnt.add(ev.port % 8, ev.pkt_len); } }
control Timer   { apply { cnt.write(0, 0); } }
`).Analyze()
	var lost, stale bool
	for _, h := range hs {
		switch h.Kind {
		case HazardLostUpdate:
			lost = true
			if !strings.Contains(h.Msg, "undo") {
				t.Errorf("msg = %q", h.Msg)
			}
		case HazardStaleRead:
			stale = true
		}
	}
	if !lost {
		t.Errorf("no lost-update hazard in %v", hs)
	}
	if stale {
		t.Errorf("phantom stale-read (timer only writes): %v", hs)
	}
}

func TestAnalyzeDeferredRead(t *testing.T) {
	hs := MustCompile(`
shared_register<bit<32>>(8) r;
control Ingress { apply { forward(1); } }
control Dequeue { bit<32> v; apply { r.read(0, v); r.add(0, 1); } }
`).Analyze()
	found := false
	for _, h := range hs {
		if h.Kind == HazardDeferredRead {
			found = true
			if h.Controls[0] != "Dequeue" {
				t.Errorf("controls = %v", h.Controls)
			}
		}
	}
	if !found {
		t.Errorf("no deferred-read hazard in %v", hs)
	}
}

func TestAnalyzeCleanProgram(t *testing.T) {
	// A register used only by direct threads has no hazards.
	hs := MustCompile(`
shared_register<bit<32>>(8) r;
control Ingress { bit<32> v; apply { r.read(0, v); r.add(0, 1); forward(1); } }
control Timer   { apply { r.write(0, 0); } }
`).Analyze()
	if len(hs) != 0 {
		t.Errorf("hazards on direct-only register: %v", hs)
	}
}

func TestAnalyzeAllLibraryPrograms(t *testing.T) {
	// No library program may contain a fatal hazard; stale reads are
	// expected and fine.
	for name, src := range Programs {
		for _, h := range MustCompile(src).Analyze() {
			if h.Fatal {
				t.Errorf("program %q has fatal hazard: %v", name, h)
			}
		}
	}
}
