package p4

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// Micro-benchmarks for the µP4 interpreter's per-slot cost.

func benchInstance(b *testing.B, src string) (*Instance, *pisa.Context) {
	b.Helper()
	inst := MustCompile(src).Instantiate("bench", Options{})
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
		SrcPort: 5, DstPort: 6, Proto: packet.ProtoUDP,
	}, TotalLen: 200})
	ctx := &pisa.Context{}
	ctx.Reset(&packet.Packet{Data: data}, events.Event{Kind: events.IngressPacket, FlowHash: 77}, 0, 1)
	_ = ctx.Parsed.Decode(data, &ctx.Decoded)
	return inst, ctx
}

func BenchmarkInterpForward(b *testing.B) {
	inst, ctx := benchInstance(b, `control Ingress { apply { forward(1); } }`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Cycle = uint64(i + 1)
		inst.Program().Apply(ctx)
	}
}

func BenchmarkInterpMicroburstIngress(b *testing.B) {
	inst, ctx := benchInstance(b, Programs["microburst"])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Cycle = uint64(i + 1)
		inst.Program().Tick(ctx.Cycle)
		inst.Program().Apply(ctx)
		inst.Program().EndCycle()
	}
}

// controlBenchSrc is a representative stateful control for backend
// comparison: a 4-field hash, two register accesses, an exact table hit
// with a parameterized action, a counter bump, and a threshold branch.
const controlBenchSrc = `
shared_register<bit<32>>(64) occ;
counter(8) seen;
action set_port(p) { forward(p); seen.count(p); }
table fwd {
    key = { hdr.ip.dst : exact; }
    actions = { set_port; }
}
control Ingress {
    bit<32> h; bit<32> v;
    apply {
        hash(h, hdr.ip.src, hdr.ip.dst, hdr.udp.sport, hdr.udp.dport);
        occ.read(h % 64, v);
        occ.write(h % 64, v + std.pkt_len);
        fwd.apply();
        if (v > 1000000000) { set_tos(3); }
    }
}`

func benchControl(b *testing.B, interp bool) {
	inst := MustCompile(controlBenchSrc).Instantiate("bench", Options{Interpret: interp})
	if err := inst.InstallEntry("fwd", []uint64{uint64(packet.IP4(10, 0, 0, 2))}, nil, 0, "set_port", 1); err != nil {
		b.Fatal(err)
	}
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
		SrcPort: 5, DstPort: 6, Proto: packet.ProtoUDP,
	}, TotalLen: 200})
	ctx := &pisa.Context{}
	ctx.Reset(&packet.Packet{Data: data}, events.Event{Kind: events.IngressPacket, FlowHash: 77}, 0, 1)
	_ = ctx.Parsed.Decode(data, &ctx.Decoded)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Cycle = uint64(i + 1)
		inst.Program().Tick(ctx.Cycle)
		inst.Program().Apply(ctx)
		inst.Program().EndCycle()
	}
}

// BenchmarkInterpControl and BenchmarkCompiledControl run the same
// control under both backends; TestCompiledApplyZeroAlloc pins the
// compiled path at 0 allocs/op.
func BenchmarkInterpControl(b *testing.B)   { benchControl(b, true) }
func BenchmarkCompiledControl(b *testing.B) { benchControl(b, false) }

func BenchmarkCompileMicroburst(b *testing.B) {
	src := Programs["microburst"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}
