package p4

import (
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// Micro-benchmarks for the µP4 interpreter's per-slot cost.

func benchInstance(b *testing.B, src string) (*Instance, *pisa.Context) {
	b.Helper()
	inst := MustCompile(src).Instantiate("bench", Options{})
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
		SrcPort: 5, DstPort: 6, Proto: packet.ProtoUDP,
	}, TotalLen: 200})
	ctx := &pisa.Context{}
	ctx.Reset(&packet.Packet{Data: data}, events.Event{Kind: events.IngressPacket, FlowHash: 77}, 0, 1)
	_ = ctx.Parsed.Decode(data, &ctx.Decoded)
	return inst, ctx
}

func BenchmarkInterpForward(b *testing.B) {
	inst, ctx := benchInstance(b, `control Ingress { apply { forward(1); } }`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Cycle = uint64(i + 1)
		inst.Program().Apply(ctx)
	}
}

func BenchmarkInterpMicroburstIngress(b *testing.B) {
	inst, ctx := benchInstance(b, Programs["microburst"])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Cycle = uint64(i + 1)
		inst.Program().Tick(ctx.Cycle)
		inst.Program().Apply(ctx)
		inst.Program().EndCycle()
	}
}

func BenchmarkCompileMicroburst(b *testing.B) {
	src := Programs["microburst"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}
