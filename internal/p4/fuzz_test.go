package p4

import (
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// FuzzCompile checks that arbitrary input never panics the compiler: it
// must either produce a compiled program or a positioned error. Run with
// `go test -fuzz=FuzzCompile ./internal/p4` for continuous fuzzing; the
// seed corpus below runs in ordinary test mode.
func FuzzCompile(f *testing.F) {
	for _, src := range Programs {
		f.Add(src)
	}
	f.Add("")
	f.Add("control Ingress { apply { forward(1); } }")
	f.Add("const X = ;;;")
	f.Add("shared_register<bit<32>>(10 r;")
	f.Add("control Ingress { apply { if (hdr.ip.src > } }")
	f.Add("table t { key = { } }")
	f.Add(strings.Repeat("{", 2000))
	f.Add("control Ingress { bit<64> x; apply { x = 0xfff_f + min(1,2); } }")
	f.Add("// comment only")
	f.Add("/* unterminated")
	f.Add("action a(p,q,r) { forward(p+q%r); } control Ingress { apply {} } table t { key = { hdr.ip.dst : ternary; } actions = { a; } }")
	f.Fuzz(func(t *testing.T, src string) {
		compiled, err := Compile(src)
		if err == nil && compiled == nil {
			t.Fatal("nil program without error")
		}
		if err != nil {
			// Errors must be positioned µP4 errors with a message.
			if err.Error() == "" {
				t.Fatalf("empty error message for %q", src)
			}
		}
	})
}

// FuzzInterpreter compiles a fixed register/arith program and executes it
// against fuzzed packet bytes: no input may panic the interpreter or the
// header field accessors.
func FuzzInterpreter(f *testing.F) {
	inst := MustCompile(`
shared_register<bit<16>>(32) r;
control Ingress {
    bit<16> v;
    bit<32> h;
    apply {
        hash(h, hdr.ip.src, hdr.ip.dst, hdr.udp.sport, hdr.tcp.flags);
        r.read(h % 32, v);
        r.add(h % 32, hdr.ip.len + std.pkt_len - v);
        if (hdr.ip.valid == 1 && hdr.ip.ttl > 0 && v % 7 != 3) {
            forward(hdr.eth.type % 4);
        } else {
            drop();
        }
    }
}`).Instantiate("fuzz", Options{})

	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Add(make([]byte, 64))
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 2, 0x08, 0x00, 0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := &pisa.Context{}
		ctx.Reset(pktOf(data), events.Event{Kind: events.IngressPacket}, 0, 1)
		_ = ctx.Parsed.Decode(data, &ctx.Decoded)
		inst.Program().Apply(ctx)
	})
}

func pktOf(data []byte) *packet.Packet {
	return &packet.Packet{Data: data, InPort: 0}
}
