package p4

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// FuzzCompile checks that arbitrary input never panics the compiler: it
// must either produce a compiled program or a positioned error. Run with
// `go test -fuzz=FuzzCompile ./internal/p4` for continuous fuzzing; the
// seed corpus below runs in ordinary test mode.
func FuzzCompile(f *testing.F) {
	for _, src := range Programs {
		f.Add(src)
	}
	f.Add("")
	f.Add("control Ingress { apply { forward(1); } }")
	f.Add("const X = ;;;")
	f.Add("shared_register<bit<32>>(10 r;")
	f.Add("control Ingress { apply { if (hdr.ip.src > } }")
	f.Add("table t { key = { } }")
	f.Add(strings.Repeat("{", 2000))
	f.Add("control Ingress { bit<64> x; apply { x = 0xfff_f + min(1,2); } }")
	f.Add("// comment only")
	f.Add("/* unterminated")
	f.Add("action a(p,q,r) { forward(p+q%r); } control Ingress { apply {} } table t { key = { hdr.ip.dst : ternary; } actions = { a; } }")
	f.Fuzz(func(t *testing.T, src string) {
		compiled, err := Compile(src)
		if err == nil && compiled == nil {
			t.Fatal("nil program without error")
		}
		if err != nil {
			// Errors must be positioned µP4 errors with a message.
			if err.Error() == "" {
				t.Fatalf("empty error message for %q", src)
			}
		}
	})
}

// FuzzInterpreter compiles a fixed register/arith program and executes it
// against fuzzed packet bytes: no input may panic the interpreter or the
// header field accessors.
func FuzzInterpreter(f *testing.F) {
	inst := MustCompile(`
shared_register<bit<16>>(32) r;
control Ingress {
    bit<16> v;
    bit<32> h;
    apply {
        hash(h, hdr.ip.src, hdr.ip.dst, hdr.udp.sport, hdr.tcp.flags);
        r.read(h % 32, v);
        r.add(h % 32, hdr.ip.len + std.pkt_len - v);
        if (hdr.ip.valid == 1 && hdr.ip.ttl > 0 && v % 7 != 3) {
            forward(hdr.eth.type % 4);
        } else {
            drop();
        }
    }
}`).Instantiate("fuzz", Options{})

	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Add(make([]byte, 64))
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 2, 0x08, 0x00, 0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := &pisa.Context{}
		ctx.Reset(pktOf(data), events.Event{Kind: events.IngressPacket}, 0, 1)
		_ = ctx.Parsed.Decode(data, &ctx.Decoded)
		inst.Program().Apply(ctx)
	})
}

func pktOf(data []byte) *packet.Packet {
	return &packet.Packet{Data: data, InPort: 0}
}

// FuzzCompiledVsInterp is the differential fuzz target: any µP4 source
// that compiles is executed under both backends against the fuzzed
// packet bytes and event metadata, and every observable — context
// outcome, generated frames, raised events, mutated packet bytes,
// register and counter state — must be identical. Programs whose static
// analysis flags a fatal hazard (deferred-thread absolute writes) are
// skipped: they legitimately panic at run time on both backends.
func FuzzCompiledVsInterp(f *testing.F) {
	for _, src := range Programs {
		f.Add(src, []byte{}, uint64(5))
	}
	f.Add("control Ingress { bit<8> v; apply { v = hdr.ip.ttl * 7; forward(v % 4); } }",
		make([]byte, 64), uint64(0))
	f.Add("shared_register<bit<16>>(8) r; control Timer { bit<16> v; apply { r.read(ev.timer_id, v); r.write(ev.timer_id, v / (v - v)); } }",
		[]byte{1, 2, 3}, uint64(9))
	f.Fuzz(func(t *testing.T, src string, data []byte, evBits uint64) {
		compiled, err := Compile(src)
		if err != nil {
			t.Skip()
		}
		for _, h := range compiled.Analyze() {
			if h.Fatal {
				t.Skip()
			}
		}
		snap := func(interp bool) string {
			inst := compiled.Instantiate("fuzz", Options{Interpret: interp})
			inst.SetSwitchID(7)
			var sb strings.Builder
			ctx := &pisa.Context{}
			cycle := uint64(0)
			for round := 0; round < 2; round++ {
				for _, k := range inst.Program().HandledKinds() {
					cycle++
					d := append([]byte(nil), data...)
					pkt := &packet.Packet{Data: d, InPort: int(evBits % 5)}
					ev := events.Event{
						Kind: k, When: sim.Time(int64(cycle) * 10), Seq: cycle,
						Port: int(evBits%7) - 1, Queue: int(evBits % 3), PktLen: len(d),
						FlowHash: evBits * 2654435761, TimerID: int(evBits % 2),
						Up: evBits%2 == 0, Data: evBits + uint64(round),
					}
					inst.Program().Tick(cycle)
					ctx.Reset(pkt, ev, ev.When, cycle)
					_ = ctx.Parsed.Decode(d, &ctx.Decoded)
					inst.Program().Apply(ctx)
					fmt.Fprintf(&sb, "%d %d %d %v %x|", ctx.EgressPort, ctx.Queue, ctx.Rank, ctx.Recirculate, pkt.Data)
					for _, g := range ctx.Generated {
						fmt.Fprintf(&sb, "g%d:%x|", g.Port, g.Data)
					}
					for _, r := range ctx.Raised {
						fmt.Fprintf(&sb, "r%d:%d|", r.Kind, r.Data)
					}
					inst.Program().EndCycle()
				}
			}
			// Register/counter state, sampled up to 1024 cells per extern
			// to keep huge declarations fuzz-friendly.
			for _, r := range inst.regs {
				n := r.Size()
				if n > 1024 {
					n = 1024
				}
				for i := 0; i < n; i++ {
					if v := r.True(uint32(i)); v != 0 {
						fmt.Fprintf(&sb, "R%d=%d,", i, v)
					}
				}
			}
			for _, c := range inst.cnts {
				n := c.Size()
				if n > 1024 {
					n = 1024
				}
				for i := 0; i < n; i++ {
					if p, by := c.Value(uint32(i)); p != 0 || by != 0 {
						fmt.Fprintf(&sb, "C%d=%d/%d,", i, p, by)
					}
				}
			}
			return sb.String()
		}
		if got, want := snap(false), snap(true); got != want {
			t.Fatalf("backend divergence:\ncompiled: %s\ninterp:   %s", got, want)
		}
	})
}
