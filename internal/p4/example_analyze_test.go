package p4_test

import (
	"fmt"

	"repro/internal/p4"
)

// The consistency analyzer implements the multi-threaded state model the
// paper's §7 leaves as future work: it reports how event threads
// sharing a register can observe or lose each other's updates.
func ExampleCompiled_Analyze() {
	compiled := p4.MustCompile(`
shared_register<bit<32>>(64) occ;

control Ingress {
    bit<32> v;
    apply { occ.read(0, v); forward(1); }
}

control Enqueue {
    apply { occ.add(0, ev.pkt_len); }
}

control Timer {
    apply { occ.write(0, 0); }   // periodic reset
}
`)
	for _, h := range compiled.Analyze() {
		fmt.Println(h)
	}
	// Output:
	// stale-read on "occ" involving [Enqueue Ingress]: reads lag deferred updates by the drain backlog (bounded when the pipeline has slack)
	// lost-update on "occ" involving [Enqueue Timer]: deltas deferred before an absolute write drain after it and partially undo the write
}
