package p4

// Programs is a library of complete µP4 example programs, each
// exercising a different slice of the event-driven programming model.
// They double as documentation of the language and as compiler test
// fixtures; see programs_test.go for each program running on a switch.
var Programs = map[string]string{
	// Microburst is the paper's §2 running example: per-flow buffer
	// occupancy from enqueue/dequeue events, read in ingress.
	"microburst": `
const NUM_REGS = 1024;
const FLOW_THRESH = 15000;

shared_register<bit<32>>(NUM_REGS) bufSize_reg;

control Ingress {
    bit<32> bufSize;
    apply {
        bufSize_reg.read(ev.flow_id % NUM_REGS, bufSize);
        if (bufSize > FLOW_THRESH) {
            raise(ev.flow_id);   // microburst culprit!
        }
        forward(1);
    }
}

control Enqueue {
    apply { bufSize_reg.add(ev.flow_id % NUM_REGS, ev.pkt_len); }
}

control Dequeue {
    apply { bufSize_reg.add(ev.flow_id % NUM_REGS, 0 - ev.pkt_len); }
}

control UserEvent {
    apply { no_op(); }
}
`,

	// RateLimiter is the paper's §3 Traffic Management point: a
	// token-bucket policer built from plain registers and timer events
	// instead of a fixed-function meter extern. Timer 0 refills every
	// bucket; packets spend tokens or drop.
	"ratelimiter": `
const BUCKETS = 256;
const BURST = 3000;
const REFILL = 100;        // bytes added per timer tick per bucket

shared_register<bit<32>>(BUCKETS) tokens;
shared_register<bit<32>>(1) cursor;

control Ingress {
    bit<32> have;
    bit<32> slot;
    apply {
        slot = ev.flow_id % BUCKETS;
        tokens.read(slot, have);
        if (have < ev.pkt_len) {
            drop();
        } else {
            tokens.add(slot, 0 - ev.pkt_len);
            forward(1);
        }
    }
}

control Timer {
    bit<32> i;
    bit<32> have;
    apply {
        // The timer thread refills one bucket per expiration, walking
        // the array with a cursor register — the hardware-realistic
        // sweep (arm the timer at period/BUCKETS for a full refill
        // rate of REFILL per bucket per period).
        cursor.read(0, i);
        tokens.read(i % BUCKETS, have);
        tokens.add(i % BUCKETS, min(REFILL, ssub(BURST, have)));
        cursor.write(0, i + 1);
    }
}
`,

	// Router is a classic LPM forwarder plus a per-port byte counter:
	// tables, actions, and counters together.
	"router": `
counter(16) port_bytes;

action set_egress(port) {
    forward(port);
}

action drop_pkt() {
    drop();
}

table ipv4_lpm {
    key = { hdr.ip.dst : lpm; }
    actions = { set_egress; drop_pkt; }
    default_action = drop_pkt();
}

control Ingress {
    apply {
        if (hdr.ip.valid == 1) {
            ipv4_lpm.apply();
            port_bytes.count(std.ingress_port, std.pkt_len);
        } else {
            drop();
        }
    }
}
`,

	// HeavyHitter flags flows whose byte count crosses a threshold
	// within a timer-reset window — the §1 CMS-reset pattern with a
	// direct-indexed register standing in for the sketch row.
	"heavyhitter": `
const SLOTS = 512;
const THRESH = 100000;

shared_register<bit<32>>(SLOTS) bytes_reg;
shared_register<bit<32>>(1) sweep;

control Ingress {
    bit<32> total;
    bit<32> slot;
    apply {
        slot = ev.flow_id % SLOTS;
        bytes_reg.read(slot, total);
        if (total + ev.pkt_len > THRESH) {
            raise(ev.flow_id);          // heavy hitter this window
        }
        bytes_reg.add(slot, ev.pkt_len);
        forward(1);
    }
}

control Timer {
    bit<32> i;
    apply {
        // Window reset from the data plane: zero one slot per tick
        // (arm the timer at window/SLOTS for a full sweep per window).
        sweep.read(0, i);
        bytes_reg.write(i % SLOTS, 0);
        sweep.write(0, i + 1);
    }
}

control UserEvent {
    apply { no_op(); }
}
`,

	// LinkWatch reports link flaps to a collector on port 0 and keeps a
	// per-port up/down register other controls could consult.
	"linkwatch": `
shared_register<bit<8>>(16) link_up;

control Ingress {
    apply { forward(std.ingress_port ^ 1); }
}

control LinkChange {
    apply {
        link_up.write(ev.port % 16, ev.link_up);
        emit_report(0, 6, ev.port, ev.link_up);   // ReportLinkStatus
    }
}
`,

	// ECNMark stamps departing packets with the max of their current
	// TOS and this switch's quantized egress occupancy — the §3
	// multi-bit ECN variant, using the set_tos primitive.
	"ecnmark": `
const QUANTUM = 4096;

shared_register<bit<32>>(8) occ;

control Ingress {
    bit<32> level;
    apply {
        occ.read(1, level);
        level = min(level / QUANTUM, 255);
        if (level > hdr.ip.tos) {
            set_tos(level);
        }
        forward(1);
    }
}

control Enqueue {
    apply { occ.add(ev.port % 8, ev.pkt_len); }
}

control Dequeue {
    apply { occ.add(ev.port % 8, 0 - ev.pkt_len); }
}
`,

	// QueueReport aggregates enqueue/dequeue activity and reports the
	// occupancy to a monitor every timer tick — the §5 "Computing
	// Congestion Signals" reporting path, entirely in the data plane.
	"queuereport": `
shared_register<bit<32>>(4) occ;

control Ingress {
    apply { forward(1); }
}

control Enqueue {
    apply { occ.add(ev.port % 4, ev.pkt_len); }
}

control Dequeue {
    apply { occ.add(ev.port % 4, 0 - ev.pkt_len); }
}

control Timer {
    bit<32> q1;
    apply {
        occ.read(1, q1);
        emit_report(3, 2, q1);    // ReportBufferSample for port 1
    }
}
`,
}
