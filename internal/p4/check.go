package p4

import "fmt"

// fieldID enumerates the header/metadata fields a µP4 program may read.
type fieldID uint8

const (
	fInvalid fieldID = iota

	// Ethernet header.
	fEthSrc
	fEthDst
	fEthType
	fEthValid

	// IPv4 header.
	fIPSrc
	fIPDst
	fIPProto
	fIPTTL
	fIPLen
	fIPTOS
	fIPValid

	// UDP/TCP headers.
	fUDPSport
	fUDPDport
	fUDPValid
	fTCPSport
	fTCPDport
	fTCPFlags
	fTCPValid

	// Event metadata (the paper's enq_meta/deq_meta generalized).
	fEvKind
	fEvFlowID
	fEvPktLen
	fEvPort
	fEvQueue
	fEvTimerID
	fEvLinkUp
	fEvData
	fEvSeq

	// Standard (intrinsic) metadata.
	fStdIngressPort
	fStdPktLen
	fStdNowNS
	fStdCycle
	fStdRecirc
)

// fieldByPath maps dotted paths to field IDs.
var fieldByPath = map[string]fieldID{
	"hdr.eth.src":   fEthSrc,
	"hdr.eth.dst":   fEthDst,
	"hdr.eth.type":  fEthType,
	"hdr.eth.valid": fEthValid,

	"hdr.ip.src":   fIPSrc,
	"hdr.ip.dst":   fIPDst,
	"hdr.ip.proto": fIPProto,
	"hdr.ip.ttl":   fIPTTL,
	"hdr.ip.len":   fIPLen,
	"hdr.ip.tos":   fIPTOS,
	"hdr.ip.valid": fIPValid,

	"hdr.udp.sport": fUDPSport,
	"hdr.udp.dport": fUDPDport,
	"hdr.udp.valid": fUDPValid,
	"hdr.tcp.sport": fTCPSport,
	"hdr.tcp.dport": fTCPDport,
	"hdr.tcp.flags": fTCPFlags,
	"hdr.tcp.valid": fTCPValid,

	"ev.kind":     fEvKind,
	"ev.flow_id":  fEvFlowID,
	"ev.pkt_len":  fEvPktLen,
	"ev.port":     fEvPort,
	"ev.queue":    fEvQueue,
	"ev.timer_id": fEvTimerID,
	"ev.link_up":  fEvLinkUp,
	"ev.data":     fEvData,
	"ev.seq":      fEvSeq,

	"std.ingress_port": fStdIngressPort,
	"std.pkt_len":      fStdPktLen,
	"std.now_ns":       fStdNowNS,
	"std.cycle":        fStdCycle,
	"std.recirc":       fStdRecirc,
}

// primitives maps primitive statement names to their argument counts
// (min, max).
var primitives = map[string][2]int{
	"forward":     {1, 1}, // forward(port)
	"drop":        {0, 0},
	"set_queue":   {1, 1},
	"set_rank":    {1, 1},
	"recirculate": {0, 0},
	"raise":       {1, 1}, // raise(data) -> user event
	"hash":        {2, 8}, // hash(dst, fields...)
	"emit_report": {2, 4}, // emit_report(port, kind [, v0 [, v1]])
	"set_tos":     {1, 1}, // multi-bit ECN-style marking
	"trim":        {0, 0}, // NDP-style cut-payload
	"no_op":       {0, 0},
}

// checker resolves names and annotates the AST in place.
type checker struct {
	file   *File
	consts map[string]uint64
	regIdx map[string]int
	cntIdx map[string]int
	tblIdx map[string]int
	acts   map[string]*ActionDecl
}

// controlEventName lists the accepted control names and their meanings.
// (Mapping to events.Kind happens in interp.go to keep this file free of
// runtime imports.)
var controlNames = map[string]bool{
	"Ingress": true, "Egress": true, "Recirc": true, "Generated": true,
	"Transmitted": true, "Enqueue": true, "Dequeue": true,
	"Overflow": true, "Underflow": true, "Timer": true,
	"ControlEvent": true, "LinkChange": true, "UserEvent": true,
}

func check(f *File) error {
	c := &checker{
		file:   f,
		consts: make(map[string]uint64),
		regIdx: make(map[string]int),
		cntIdx: make(map[string]int),
		tblIdx: make(map[string]int),
		acts:   make(map[string]*ActionDecl),
	}

	// Constants first (in order; later constants may use earlier ones).
	for _, d := range f.Consts {
		if _, dup := c.consts[d.Name]; dup {
			return errf(d.Pos, "duplicate constant %q", d.Name)
		}
		v, err := c.constEval(d.Value)
		if err != nil {
			return err
		}
		d.val = v
		c.consts[d.Name] = v
	}

	for i, d := range f.Registers {
		if _, dup := c.regIdx[d.Name]; dup {
			return errf(d.Pos, "duplicate register %q", d.Name)
		}
		v, err := c.constEval(d.Size)
		if err != nil {
			return err
		}
		if v == 0 || v > 1<<24 {
			return errf(d.Pos, "register %q size %d out of range", d.Name, v)
		}
		d.size = int(v)
		d.mask = maskOf(d.Width)
		c.regIdx[d.Name] = i
	}
	for i, d := range f.Counters {
		if _, dup := c.cntIdx[d.Name]; dup {
			return errf(d.Pos, "duplicate counter %q", d.Name)
		}
		v, err := c.constEval(d.Size)
		if err != nil {
			return err
		}
		if v == 0 || v > 1<<24 {
			return errf(d.Pos, "counter %q size %d out of range", d.Name, v)
		}
		d.size = int(v)
		c.cntIdx[d.Name] = i
	}
	for _, d := range f.Actions {
		if _, dup := c.acts[d.Name]; dup {
			return errf(d.Pos, "duplicate action %q", d.Name)
		}
		c.acts[d.Name] = d
	}
	for i, d := range f.Tables {
		if _, dup := c.tblIdx[d.Name]; dup {
			return errf(d.Pos, "duplicate table %q", d.Name)
		}
		c.tblIdx[d.Name] = i
		for _, a := range d.Actions {
			if _, ok := c.acts[a]; !ok {
				return errf(d.Pos, "table %q references unknown action %q", d.Name, a)
			}
		}
		if d.DefaultAction != "" {
			if _, ok := c.acts[d.DefaultAction]; !ok {
				return errf(d.Pos, "table %q default action %q is unknown", d.Name, d.DefaultAction)
			}
		}
		if len(d.Keys) == 0 {
			return errf(d.Pos, "table %q has no key", d.Name)
		}
	}

	// Resolve action bodies (scope: params only, plus globals).
	for _, a := range f.Actions {
		scope := newScope()
		for _, p := range a.Params {
			if _, err := scope.declare(p, 64, a.Pos); err != nil {
				return err
			}
		}
		if err := c.resolveStmts(a.Body, scope, true); err != nil {
			return err
		}
	}

	// Resolve table key expressions (global scope only).
	for _, d := range f.Tables {
		scope := newScope()
		for i := range d.Keys {
			if err := c.resolveExpr(d.Keys[i].Expr, scope); err != nil {
				return err
			}
		}
		for _, e := range d.DefaultArgs {
			if err := c.resolveExpr(e, scope); err != nil {
				return err
			}
		}
	}

	// Resolve controls.
	seen := map[string]bool{}
	for _, d := range f.Controls {
		if !controlNames[d.Name] {
			return errf(d.Pos, "unknown control %q (want one of Ingress, Egress, Recirc, Generated, Transmitted, Enqueue, Dequeue, Overflow, Underflow, Timer, ControlEvent, LinkChange, UserEvent)", d.Name)
		}
		if seen[d.Name] {
			return errf(d.Pos, "duplicate control %q", d.Name)
		}
		seen[d.Name] = true
		scope := newScope()
		for _, l := range d.Locals {
			slot, err := scope.declare(l.Name, l.Width, l.Pos)
			if err != nil {
				return err
			}
			l.slot = slot
		}
		if err := c.resolveStmts(d.Body, scope, false); err != nil {
			return err
		}
		d.frameSize = scope.size()
	}
	if len(f.Controls) == 0 {
		return errf(Pos{1, 1}, "program declares no controls")
	}
	return nil
}

// maskOf returns the value mask for a bit<width> quantity. The checker
// computes it once per declaration (registers, assignment targets) so
// neither backend re-derives masks on the per-event path.
func maskOf(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}

// scope tracks local variable slots within a control or action.
type scope struct {
	vars  map[string]int
	width map[string]int
	n     int
}

func newScope() *scope {
	return &scope{vars: make(map[string]int), width: make(map[string]int)}
}

func (s *scope) declare(name string, width int, pos Pos) (int, error) {
	if _, dup := s.vars[name]; dup {
		return 0, errf(pos, "duplicate variable %q", name)
	}
	slot := s.n
	s.vars[name] = slot
	s.width[name] = width
	s.n++
	return slot, nil
}

func (s *scope) lookup(name string) (slot, width int, ok bool) {
	slot, ok = s.vars[name]
	return slot, s.width[name], ok
}

func (s *scope) size() int { return s.n }

// constEval evaluates a compile-time constant expression.
func (c *checker) constEval(e Expr) (uint64, error) {
	switch x := e.(type) {
	case *NumExpr:
		return x.Val, nil
	case *IdentExpr:
		if v, ok := c.consts[x.Name]; ok {
			return v, nil
		}
		return 0, errf(x.Pos, "%q is not a constant", x.Name)
	case *UnaryExpr:
		v, err := c.constEval(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case tokMinus:
			return -v, nil
		case tokTilde:
			return ^v, nil
		case tokBang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, errf(x.Pos, "bad constant unary op")
	case *BinExpr:
		l, err := c.constEval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := c.constEval(x.R)
		if err != nil {
			return 0, err
		}
		v, err2 := applyBin(x.Op, l, r)
		if err2 != nil {
			return 0, errf(x.Pos, "%s", err2.Error())
		}
		return v, nil
	}
	return 0, errf(e.exprPos(), "expression is not constant")
}

// applyBin evaluates a binary operator on uint64 operands with P4-ish
// semantics (wrapping arithmetic, 0/1 booleans).
func applyBin(op tokKind, l, r uint64) (uint64, error) {
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case tokPercent:
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return l % r, nil
	case tokAmp:
		return l & r, nil
	case tokPipe:
		return l | r, nil
	case tokCaret:
		return l ^ r, nil
	case tokShl:
		return l << (r & 63), nil
	case tokShr:
		return l >> (r & 63), nil
	case tokEq:
		return b2u(l == r), nil
	case tokNeq:
		return b2u(l != r), nil
	case tokLAngle:
		return b2u(l < r), nil
	case tokRAngle:
		return b2u(l > r), nil
	case tokLe:
		return b2u(l <= r), nil
	case tokGe:
		return b2u(l >= r), nil
	case tokAndAnd:
		return b2u(l != 0 && r != 0), nil
	case tokOrOr:
		return b2u(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("bad binary operator")
}

func (c *checker) resolveStmts(stmts []Stmt, sc *scope, inAction bool) error {
	for _, s := range stmts {
		if err := c.resolveStmt(s, sc, inAction); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) resolveStmt(s Stmt, sc *scope, inAction bool) error {
	switch st := s.(type) {
	case *AssignStmt:
		slot, width, ok := sc.lookup(st.Name)
		if !ok {
			return errf(st.Pos, "assignment to undeclared variable %q", st.Name)
		}
		st.slot, st.width = slot, width
		st.mask = maskOf(width)
		return c.resolveExpr(st.Expr, sc)
	case *IfStmt:
		if err := c.resolveExpr(st.Cond, sc); err != nil {
			return err
		}
		if err := c.resolveStmts(st.Then, sc, inAction); err != nil {
			return err
		}
		return c.resolveStmts(st.Else, sc, inAction)
	case *CallStmt:
		return c.resolveCall(st, sc, inAction)
	case *ReturnStmt:
		return nil
	}
	return errf(s.stmtPos(), "unhandled statement")
}

func (c *checker) resolveCall(st *CallStmt, sc *scope, inAction bool) error {
	for _, a := range st.Args {
		// The first argument of reg.read and hash is an output local,
		// resolved specially below; resolving it as an expression too is
		// harmless (it must exist either way).
		if err := c.resolveExpr(a, sc); err != nil {
			return err
		}
	}
	if st.Recv == "" {
		arity, ok := primitives[st.Method]
		if !ok {
			return errf(st.Pos, "unknown primitive %q", st.Method)
		}
		if len(st.Args) < arity[0] || len(st.Args) > arity[1] {
			return errf(st.Pos, "%s takes %d..%d arguments, got %d", st.Method, arity[0], arity[1], len(st.Args))
		}
		st.kind = callPrimitive
		if st.Method == "hash" {
			// hash(dst, fields...) writes dst.
			id, ok := st.Args[0].(*IdentExpr)
			if !ok || id.kind != identLocal {
				return errf(st.Pos, "hash destination must be a local variable")
			}
			st.arg0Out = id.slot
		}
		return nil
	}
	// Method call on a register, counter, or table.
	if ri, ok := c.regIdx[st.Recv]; ok {
		st.reg = ri
		switch st.Method {
		case "read":
			if len(st.Args) != 2 {
				return errf(st.Pos, "%s.read(index, dst) takes 2 arguments", st.Recv)
			}
			id, ok := st.Args[1].(*IdentExpr)
			if !ok || id.kind != identLocal {
				return errf(st.Pos, "%s.read destination must be a local variable", st.Recv)
			}
			st.arg0Out = id.slot
			st.kind = callRegRead
		case "write":
			if len(st.Args) != 2 {
				return errf(st.Pos, "%s.write(index, value) takes 2 arguments", st.Recv)
			}
			st.kind = callRegWrite
		case "add":
			if len(st.Args) != 2 {
				return errf(st.Pos, "%s.add(index, delta) takes 2 arguments", st.Recv)
			}
			st.kind = callRegAdd
		default:
			return errf(st.Pos, "register %q has no method %q (read/write/add)", st.Recv, st.Method)
		}
		return nil
	}
	if ci, ok := c.cntIdx[st.Recv]; ok {
		st.cnt = ci
		if st.Method != "count" {
			return errf(st.Pos, "counter %q has no method %q (count)", st.Recv, st.Method)
		}
		if len(st.Args) < 1 || len(st.Args) > 2 {
			return errf(st.Pos, "%s.count(index [, bytes]) takes 1..2 arguments", st.Recv)
		}
		st.kind = callCounterCount
		return nil
	}
	if ti, ok := c.tblIdx[st.Recv]; ok {
		st.tbl = ti
		if st.Method != "apply" {
			return errf(st.Pos, "table %q has no method %q (apply)", st.Recv, st.Method)
		}
		if len(st.Args) != 0 {
			return errf(st.Pos, "%s.apply() takes no arguments", st.Recv)
		}
		if inAction {
			return errf(st.Pos, "tables cannot be applied from actions")
		}
		st.kind = callTableApply
		return nil
	}
	return errf(st.Pos, "unknown object %q", st.Recv)
}

func (c *checker) resolveExpr(e Expr, sc *scope) error {
	switch x := e.(type) {
	case *NumExpr:
		return nil
	case *IdentExpr:
		if slot, _, ok := sc.lookup(x.Name); ok {
			x.kind = identLocal
			x.slot = slot
			return nil
		}
		if v, ok := c.consts[x.Name]; ok {
			x.kind = identConst
			x.val = v
			return nil
		}
		return errf(x.Pos, "unknown identifier %q", x.Name)
	case *FieldExpr:
		id, ok := fieldByPath[x.Path]
		if !ok {
			return errf(x.Pos, "unknown field %q", x.Path)
		}
		x.field = id
		return nil
	case *UnaryExpr:
		return c.resolveExpr(x.X, sc)
	case *BinExpr:
		if err := c.resolveExpr(x.L, sc); err != nil {
			return err
		}
		return c.resolveExpr(x.R, sc)
	case *CallExpr:
		want := 2
		if len(x.Args) != want {
			return errf(x.Pos, "%s takes %d arguments", x.Name, want)
		}
		for _, a := range x.Args {
			if err := c.resolveExpr(a, sc); err != nil {
				return err
			}
		}
		return nil
	}
	return errf(e.exprPos(), "unhandled expression")
}
