package p4

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

// Differential tests for the compiled-closure backend: the AST
// interpreter is the oracle, and any observable divergence — context
// outcome, emitted frames, raised events, packet mutation, register or
// counter state — is a compiler bug.

// diffFrames builds the deterministic packet mix the differential driver
// cycles through: UDP, TCP, a bare Ethernet frame, and raw garbage.
func diffFrames() [][]byte {
	udp := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 2),
		SrcPort: 5000, DstPort: 53, Proto: packet.ProtoUDP,
	}, TotalLen: 220})
	udp2 := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(172, 16, 3, 4), Dst: packet.IP4(10, 9, 7, 8),
		SrcPort: 1234, DstPort: 4791, Proto: packet.ProtoUDP,
	}, TotalLen: 1500})
	tcp := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(192, 168, 1, 9), Dst: packet.IP4(10, 9, 1, 1),
		SrcPort: 443, DstPort: 39000, Proto: packet.ProtoTCP,
	}, TotalLen: 80})
	eth := make([]byte, 18)
	eth[12], eth[13] = 0x88, 0xb5
	raw := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}
	return [][]byte{udp, udp2, tcp, eth, raw}
}

// runBackend drives one instance of src through a deterministic event
// script covering every control the program binds, and returns a textual
// snapshot of everything observable: per-event context outcome, packet
// bytes after mutation, and final register/counter state.
func runBackend(tb testing.TB, src string, interp bool, install func(*Instance) error) string {
	tb.Helper()
	compiled, err := Compile(src)
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	inst := compiled.Instantiate("diff", Options{Interpret: interp})
	inst.SetSwitchID(42)
	if install != nil {
		if err := install(inst); err != nil {
			tb.Fatalf("install: %v", err)
		}
	}
	if inst.Interpreted() != interp {
		tb.Fatalf("Interpreted() = %v, want %v", inst.Interpreted(), interp)
	}

	frames := diffFrames()
	kinds := inst.Program().HandledKinds()
	var sb strings.Builder
	ctx := &pisa.Context{}
	cycle := uint64(0)
	for round := 0; round < 5; round++ {
		for _, k := range kinds {
			for fi := range frames {
				cycle++
				// Fresh copy per event: set_tos/trim mutate in place and
				// the two backends must not share bytes.
				data := append([]byte(nil), frames[fi]...)
				pkt := &packet.Packet{Data: data, InPort: fi % 4}
				ev := events.Event{
					Kind:     k,
					When:     sim.Time(int64(cycle) * 100),
					Seq:      cycle,
					Port:     fi%4 - 1,
					Queue:    fi % 2,
					PktLen:   len(data),
					FlowHash: uint64(fi)*2654435761 + uint64(round),
					TimerID:  round % 2,
					Up:       fi%2 == 0,
					Data:     uint64(round*31 + fi),
				}
				inst.Program().Tick(cycle)
				ctx.Reset(pkt, ev, ev.When, cycle)
				_ = ctx.Parsed.Decode(data, &ctx.Decoded)
				inst.Program().Apply(ctx)
				fmt.Fprintf(&sb, "ev %v/%d: egress=%d q=%d rank=%d recirc=%v tos=%d pkt=%x\n",
					k, cycle, ctx.EgressPort, ctx.Queue, ctx.Rank, ctx.Recirculate, ctx.TOS(), pkt.Data)
				for _, g := range ctx.Generated {
					fmt.Fprintf(&sb, "  gen port=%d data=%x\n", g.Port, g.Data)
				}
				for _, r := range ctx.Raised {
					fmt.Fprintf(&sb, "  raised kind=%v data=%d port=%d\n", r.Kind, r.Data, r.Port)
				}
				inst.Program().EndCycle()
			}
		}
	}
	for ri, r := range inst.regs {
		for i := 0; i < r.Size(); i++ {
			if v := r.True(uint32(i)); v != 0 {
				fmt.Fprintf(&sb, "reg[%d][%d]=%d\n", ri, i, v)
			}
		}
	}
	for ci, c := range inst.cnts {
		for i := 0; i < c.Size(); i++ {
			if p, by := c.Value(uint32(i)); p != 0 || by != 0 {
				fmt.Fprintf(&sb, "cnt[%d][%d]=%d/%d\n", ci, i, p, by)
			}
		}
	}
	for _, t := range inst.tbls {
		lookups, misses := t.Stats()
		fmt.Fprintf(&sb, "tbl %s: %d/%d\n", t.Name(), lookups, misses)
	}
	return sb.String()
}

// assertBackendsIdentical runs src under both backends and diffs the
// snapshots.
func assertBackendsIdentical(t *testing.T, name, src string, install func(*Instance) error) {
	t.Helper()
	got := runBackend(t, src, false, install)
	want := runBackend(t, src, true, install)
	if got != want {
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("%s: backend divergence at line %d:\ncompiled: %s\ninterp:   %s", name, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("%s: backend snapshots differ in length (%d vs %d lines)", name, len(gl), len(wl))
	}
}

// TestProgramsBackendsIdentical pins every example program to identical
// behaviour under both backends.
func TestProgramsBackendsIdentical(t *testing.T) {
	for name, src := range Programs {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			var install func(*Instance) error
			if name == "router" {
				install = func(inst *Instance) error {
					if err := inst.InstallEntry("ipv4_lpm", []uint64{uint64(packet.IP4(10, 9, 0, 0))},
						[]uint64{pisa.PrefixMask(16, 32)}, 0, "set_egress", 1); err != nil {
						return err
					}
					return inst.InstallEntry("ipv4_lpm", []uint64{uint64(packet.IP4(10, 0, 0, 0))},
						[]uint64{pisa.PrefixMask(8, 32)}, 0, "set_egress", 2)
				}
			}
			assertBackendsIdentical(t, name, src, install)
		})
	}
}

// TestCompiledSemanticsEdgeCases pins the P4-ish runtime conventions the
// compiler must reproduce bit-for-bit: division by zero yielding zero,
// shift-count masking, wrapping arithmetic, short-circuit booleans,
// width masking of narrow locals and registers, and signed forward
// ports.
func TestCompiledSemanticsEdgeCases(t *testing.T) {
	cases := map[string]string{
		"div_zero": `
shared_register<bit<64>>(4) out;
control Ingress {
    bit<64> z; bit<64> v;
    apply {
        z = ev.data - ev.data;
        v = 100 / z + 7 % z;
        out.write(0, v + 1);
        forward(1);
    }
}`,
		"shift_mask": `
shared_register<bit<64>>(4) out;
control Ingress {
    bit<64> v;
    apply {
        v = (1 << 65) + (ev.data << 64) + (0xff00 >> (ev.data + 66));
        out.write(0, v);
    }
}`,
		"wrap_and_width": `
shared_register<bit<8>>(4) narrow;
control Ingress {
    bit<8> v; bit<4> w;
    apply {
        v = 250 + ev.data;
        w = v * 3;
        narrow.write(ev.data % 4, v + w);
        forward(0 - 1);
    }
}`,
		"short_circuit": `
shared_register<bit<64>>(8) out;
control Ingress {
    bit<64> a;
    apply {
        a = (ev.data > 2 && 10 / (ev.data - 3) > 0) + (ev.data < 100 || hdr.ip.src / 0 == 1);
        out.add(0, a + (!ev.data) + (~ev.data & 0xf));
    }
}`,
		"const_fold_branches": `
const ON = 1;
const OFF = 0;
shared_register<bit<32>>(4) out;
control Ingress {
    bit<32> v;
    apply {
        if (ON == 1) { v = min(3 + 4 * 2, max(9, 7)); } else { v = 999; }
        if (OFF) { out.write(0, 111); } else { out.add(1, ssub(5, v) + ssub(v, 5)); }
        forward(ON + OFF);
    }
}`,
		"signed_port": `
control Ingress {
    apply {
        if (std.ingress_port == 3) { forward(0 - 1); } else { forward(std.ingress_port); }
    }
}`,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			assertBackendsIdentical(t, name, src, nil)
		})
	}
}

// TestCompiledTableBackends pins table apply paths — exact and LPM keys,
// installed entries, default actions, action params — across backends.
func TestCompiledTableBackends(t *testing.T) {
	src := `
counter(16) hits;
action set_port(p, q) { forward(p); set_queue(q); hits.count(p); }
action toss() { drop(); }
table fwd {
    key = { hdr.ip.dst : exact; hdr.udp.dport : exact; }
    actions = { set_port; toss; }
    default_action = toss;
}
table coarse {
    key = { hdr.ip.src : lpm; }
    actions = { set_port; }
}
control Ingress {
    apply { fwd.apply(); coarse.apply(); }
}`
	install := func(inst *Instance) error {
		if err := inst.InstallEntry("fwd",
			[]uint64{uint64(packet.IP4(10, 9, 0, 2)), 53}, nil, 0, "set_port", 3, 1); err != nil {
			return err
		}
		if err := inst.InstallEntry("fwd",
			[]uint64{uint64(packet.IP4(10, 9, 7, 8)), 4791}, nil, 0, "set_port", 2, 0); err != nil {
			return err
		}
		return inst.InstallEntry("coarse",
			[]uint64{uint64(packet.IP4(192, 168, 0, 0))}, []uint64{pisa.PrefixMask(16, 32)}, 0, "set_port", 7, 1)
	}
	assertBackendsIdentical(t, "tables", src, install)
}

// TestCompiledApplyZeroAlloc pins the compiled backend's steady-state
// packet path at zero allocations, including register access, hashing,
// and an exact table hit.
func TestCompiledApplyZeroAlloc(t *testing.T) {
	src := `
shared_register<bit<32>>(64) occ;
counter(8) seen;
action set_port(p) { forward(p); seen.count(p); }
table fwd {
    key = { hdr.ip.dst : exact; }
    actions = { set_port; }
}
control Ingress {
    bit<32> h; bit<32> v;
    apply {
        hash(h, hdr.ip.src, hdr.ip.dst, hdr.udp.sport, hdr.udp.dport);
        occ.read(h % 64, v);
        occ.write(h % 64, v + std.pkt_len);
        fwd.apply();
        if (v > 100000) { set_tos(3); }
    }
}
control Enqueue { apply { occ.add(ev.queue, ev.pkt_len); } }`
	inst := MustCompile(src).Instantiate("zeroalloc", Options{})
	if err := inst.InstallEntry("fwd", []uint64{uint64(packet.IP4(10, 9, 0, 2))}, nil, 0, "set_port", 1); err != nil {
		t.Fatal(err)
	}
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 2),
		SrcPort: 5000, DstPort: 53, Proto: packet.ProtoUDP,
	}, TotalLen: 220})
	ctx := &pisa.Context{}
	pkt := &packet.Packet{Data: data}
	cycle := uint64(0)
	run := func(kind events.Kind) {
		cycle++
		inst.Program().Tick(cycle)
		ctx.Reset(pkt, events.Event{Kind: kind, PktLen: len(data), Queue: 1}, sim.Time(int64(cycle)), cycle)
		_ = ctx.Parsed.Decode(data, &ctx.Decoded)
		inst.Program().Apply(ctx)
		inst.Program().EndCycle()
	}
	// Warm up lazily-allocated state, then measure.
	for i := 0; i < 100; i++ {
		run(events.IngressPacket)
		run(events.BufferEnqueue)
	}
	if allocs := testing.AllocsPerRun(500, func() { run(events.IngressPacket) }); allocs != 0 {
		t.Errorf("compiled ingress path allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() { run(events.BufferEnqueue) }); allocs != 0 {
		t.Errorf("compiled enqueue path allocates %v/op, want 0", allocs)
	}
}

// TestForceInterpret pins the process-wide backend override used by the
// -interp flags.
func TestForceInterpret(t *testing.T) {
	compiled := MustCompile(`control Ingress { apply { forward(1); } }`)
	if compiled.Instantiate("a", Options{}).Interpreted() {
		t.Fatal("default backend should be compiled")
	}
	ForceInterpret = true
	defer func() { ForceInterpret = false }()
	if !compiled.Instantiate("b", Options{}).Interpreted() {
		t.Fatal("ForceInterpret should select the interpreter")
	}
}
