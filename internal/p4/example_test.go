package p4_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Compiling and running a µP4 program end to end: the event-driven
// target exposes Enqueue/Dequeue controls that the baseline rejects.
func ExampleCompile() {
	compiled, err := p4.Compile(`
shared_register<bit<32>>(64) occ;

control Ingress {
    apply { forward(1); }
}

control Enqueue {
    apply { occ.add(ev.port % 64, ev.pkt_len); }
}

control Dequeue {
    apply { occ.add(ev.port % 64, 0 - ev.pkt_len); }
}
`)
	if err != nil {
		panic(err)
	}
	fmt.Println("controls:", compiled.Controls())

	inst := compiled.Instantiate("occupancy", p4.Options{})

	// The baseline architecture refuses the enqueue/dequeue bindings.
	sched := sim.NewScheduler()
	baseline := core.New(core.Config{}, core.Baseline(), sched)
	fmt.Println("baseline load:", baseline.Load(inst.Program()) != nil)

	// The event-driven architecture runs it.
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		panic(err)
	}
	sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
	}, TotalLen: 300}))
	sched.Run(sim.Millisecond)

	fmt.Println("forwarded:", sw.Stats().TxPackets)
	fmt.Println("occupancy drained to:", inst.Register("occ").True(1))
	// Output:
	// controls: [Ingress Enqueue Dequeue]
	// baseline load: true
	// forwarded: 1
	// occupancy drained to: 0
}

// Compile errors carry source positions.
func ExampleCompile_error() {
	_, err := p4.Compile(`control Ingress { apply { forward(unknown_var); } }`)
	fmt.Println(err)
	// Output:
	// 1:35: unknown identifier "unknown_var"
}
