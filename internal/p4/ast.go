package p4

// AST node definitions. The tree is produced by the parser, resolved and
// checked by the checker, and walked by the interpreter.

// File is a parsed µP4 source file.
type File struct {
	Consts    []*ConstDecl
	Registers []*RegisterDecl
	Counters  []*CounterDecl
	Actions   []*ActionDecl
	Tables    []*TableDecl
	Controls  []*ControlDecl
}

// ConstDecl is `const NAME = expr;`.
type ConstDecl struct {
	Pos   Pos
	Name  string
	Value Expr

	val uint64 // filled by the checker
}

// RegisterDecl is `shared_register<bit<W>>(SIZE) name;` (or `register`,
// a synonym).
type RegisterDecl struct {
	Pos   Pos
	Name  string
	Width int
	Size  Expr

	size int    // resolved
	mask uint64 // value mask derived from Width, filled by the checker
}

// CounterDecl is `counter(SIZE) name;`.
type CounterDecl struct {
	Pos  Pos
	Name string
	Size Expr

	size int
}

// ActionDecl is `action name(p1, p2) { stmts }`.
type ActionDecl struct {
	Pos    Pos
	Name   string
	Params []string
	Body   []Stmt
}

// TableKey is one key field of a table: an expression and a match kind.
type TableKey struct {
	Pos   Pos
	Expr  Expr
	Match string // "exact" | "lpm" | "ternary"
}

// TableDecl is a match-action table declaration.
type TableDecl struct {
	Pos           Pos
	Name          string
	Keys          []TableKey
	Actions       []string
	DefaultAction string
	DefaultArgs   []Expr
}

// ControlDecl is `control Name { locals... apply { stmts } }`.
type ControlDecl struct {
	Pos    Pos
	Name   string
	Locals []*LocalDecl
	Body   []Stmt

	frameSize int // locals + action params, assigned by the checker
}

// LocalDecl is `bit<W> name;` inside a control.
type LocalDecl struct {
	Pos   Pos
	Name  string
	Width int

	slot int
}

// Stmt is a statement.
type Stmt interface{ stmtPos() Pos }

// AssignStmt is `lhs = expr;` where lhs is a local variable.
type AssignStmt struct {
	Pos  Pos
	Name string
	Expr Expr

	slot  int
	width int
	mask  uint64 // width mask, filled by the checker
}

func (s *AssignStmt) stmtPos() Pos { return s.Pos }

// IfStmt is `if (cond) { ... } else { ... }`.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil if absent
}

func (s *IfStmt) stmtPos() Pos { return s.Pos }

// ReturnStmt is `return;`: it ends the enclosing control's apply block
// (or the enclosing action) immediately.
type ReturnStmt struct {
	Pos Pos
}

func (s *ReturnStmt) stmtPos() Pos { return s.Pos }

// CallStmt is a primitive call (`forward(1);`), an extern method call
// (`reg.read(i, dst);`), or a table apply (`tbl.apply();`).
type CallStmt struct {
	Pos    Pos
	Recv   string // "" for primitives
	Method string
	Args   []Expr

	kind    callKind
	reg     int // register index for register methods
	cnt     int // counter index
	tbl     int // table index
	arg0Out int // output slot for reg.read's destination local
}

func (s *CallStmt) stmtPos() Pos { return s.Pos }

// callKind discriminates resolved call statements.
type callKind uint8

const (
	callPrimitive callKind = iota
	callRegRead
	callRegWrite
	callRegAdd
	callCounterCount
	callTableApply
)

// Expr is an expression.
type Expr interface{ exprPos() Pos }

// NumExpr is an integer literal.
type NumExpr struct {
	Pos Pos
	Val uint64
}

func (e *NumExpr) exprPos() Pos { return e.Pos }

// IdentExpr is a bare identifier: a local, action parameter, or constant.
type IdentExpr struct {
	Pos  Pos
	Name string

	kind identKind
	slot int    // local/param slot
	val  uint64 // constant value
}

func (e *IdentExpr) exprPos() Pos { return e.Pos }

type identKind uint8

const (
	identLocal identKind = iota
	identConst
)

// FieldExpr is a dotted path: hdr.ip.src, ev.pkt_len, std.ingress_port.
type FieldExpr struct {
	Pos  Pos
	Path string // full dotted path

	field fieldID
}

func (e *FieldExpr) exprPos() Pos { return e.Pos }

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Pos Pos
	Op  tokKind
	X   Expr
}

func (e *UnaryExpr) exprPos() Pos { return e.Pos }

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   tokKind
	L, R Expr
}

func (e *BinExpr) exprPos() Pos { return e.Pos }

// CallExpr is a builtin expression function: min(a,b), max(a,b),
// saturating subtraction ssub(a,b).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (e *CallExpr) exprPos() Pos { return e.Pos }
