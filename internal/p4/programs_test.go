package p4

import (
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

func TestAllProgramsCompile(t *testing.T) {
	for name, src := range Programs {
		if _, err := Compile(src); err != nil {
			t.Errorf("program %q does not compile: %v", name, err)
		}
	}
	if len(Programs) < 7 {
		t.Errorf("program library shrank: %d entries", len(Programs))
	}
}

func loadOn(t *testing.T, name string) (*core.Switch, *Instance, *sim.Scheduler) {
	t.Helper()
	inst := MustCompile(Programs[name]).Instantiate(name, Options{})
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	return sw, inst, sched
}

func TestProgramRateLimiter(t *testing.T) {
	sw, inst, sched := loadOn(t, "ratelimiter")
	// Timer sweeps one bucket per tick: with 256 buckets, a 2us tick
	// refills each bucket every 512us with 100B => ~195 KB/s per bucket.
	if err := sw.ConfigureTimer(0, 2*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 5, DstPort: 6, Proto: packet.ProtoUDP}
	// Offer 10x the refill rate: 1000B packets every 500us = 2 MB/s.
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 500 * sim.Microsecond
		sched.At(at, func() {
			sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1000}))
		})
	}
	var tx int
	sw.OnTransmit = func(int, *packet.Packet) { tx++ }
	sched.Run(110 * sim.Millisecond)
	// Burst (3000B) + 100ms * 195kB/s ≈ 3+19.5 packets of 1000B.
	if tx < 12 || tx > 40 {
		t.Errorf("limiter passed %d of 200 packets, want ~22 (rate-limited)", tx)
	}
	if st := sw.Stats(); st.PipelineDrops != uint64(200-tx) {
		t.Errorf("drops = %d, tx = %d", st.PipelineDrops, tx)
	}
	_ = inst
}

func TestProgramRouter(t *testing.T) {
	sw, inst, sched := loadOn(t, "router")
	if err := inst.InstallEntry("ipv4_lpm",
		[]uint64{uint64(packet.IP4(10, 0, 0, 0))},
		[]uint64{pisa.PrefixMask(8, 32)}, 0, "set_egress", 2); err != nil {
		t.Fatal(err)
	}
	var tx []int
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = append(tx, p) }
	mk := func(dst packet.IP) []byte {
		return packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
			Src: packet.IP4(1, 1, 1, 1), Dst: dst, SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP,
		}, TotalLen: 120})
	}
	sw.Inject(0, mk(packet.IP4(10, 5, 5, 5))) // hits /8 -> port 2
	sw.Inject(0, mk(packet.IP4(11, 0, 0, 1))) // miss -> drop
	// Non-IP frame -> drop branch.
	sw.Inject(0, packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(1),
		&packet.Echo{Op: packet.EchoRequest}))
	sched.Run(sim.Millisecond)
	if len(tx) != 1 || tx[0] != 2 {
		t.Errorf("tx = %v, want [2]", tx)
	}
	pk, by := inst.Program().Counter("port_bytes").Value(0)
	// Both IP packets count (the table miss still falls through to the
	// counter); the non-IP frame is dropped before it.
	if pk != 2 || by != 240 {
		t.Errorf("counter = %d pkts %d bytes, want 2/240", pk, by)
	}
}

func TestProgramHeavyHitter(t *testing.T) {
	sw, inst, sched := loadOn(t, "heavyhitter")
	// Sweep fast enough to not matter within the test window.
	if err := sw.ConfigureTimer(0, 100*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	var hits int
	inst.Program().HandleFunc(events.UserEvent, func(*pisa.Context) { hits++ })
	heavy := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 5, DstPort: 6, Proto: packet.ProtoUDP}
	light := packet.Flow{Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 7, DstPort: 8, Proto: packet.ProtoUDP}
	// Heavy: 100 x 1500B = 150KB > 100KB threshold. Light: 10 x 100B.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		sched.At(at, func() {
			sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: heavy, TotalLen: 1500}))
		})
	}
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * 100 * sim.Microsecond
		sched.At(at, func() {
			sw.Inject(1, packet.BuildFrame(packet.FrameSpec{Flow: light, TotalLen: 100}))
		})
	}
	sched.Run(5 * sim.Millisecond)
	if hits == 0 {
		t.Error("heavy hitter never flagged")
	}
	// The sweep must eventually zero the window.
	sched.Run(5*sim.Millisecond + 512*100*sim.Microsecond)
	reg := inst.Register("bytes_reg")
	if got := reg.True(uint32(heavy.Hash() % 512)); got != 0 {
		t.Errorf("window slot = %d after full sweep, want 0", got)
	}
}

func TestProgramLinkWatch(t *testing.T) {
	sw, _, sched := loadOn(t, "linkwatch")
	var reports []packet.Report
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if port != 0 {
			return
		}
		var p packet.Parser
		var dec []packet.LayerType
		if p.Decode(pkt.Data, &dec) == nil && len(dec) == 2 && dec[1] == packet.LayerReport {
			reports = append(reports, p.Report)
		}
	}
	sched.At(sim.Millisecond, func() { sw.SetLink(2, false) })
	sched.At(2*sim.Millisecond, func() { sw.SetLink(2, true) })
	sched.Run(5 * sim.Millisecond)
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if reports[0].Kind != packet.ReportLinkStatus || reports[0].V0 != 2 || reports[0].V1 != 0 {
		t.Errorf("down report = %+v", reports[0])
	}
	if reports[1].V1 != 1 {
		t.Errorf("up report = %+v", reports[1])
	}
}

func TestProgramQueueReport(t *testing.T) {
	sw, _, sched := loadOn(t, "queuereport")
	if err := sw.ConfigureTimer(0, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var samples []uint64
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if port != 3 {
			return
		}
		var p packet.Parser
		var dec []packet.LayerType
		if p.Decode(pkt.Data, &dec) == nil && len(dec) == 2 && dec[1] == packet.LayerReport {
			samples = append(samples, p.Report.V0)
		}
	}
	// Build a standing queue on port 1: 2x10G into one 10G egress.
	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	for i := 0; i < 4000; i++ {
		at := sim.Time(i) * 1230 * sim.Nanosecond
		data := packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1500})
		sched.At(at, func() { sw.Inject(0, data); sw.Inject(2, data) })
	}
	sched.Run(6 * sim.Millisecond)
	if len(samples) < 4 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Mid-run samples must show a deep queue (tens of KB).
	var peak uint64
	for _, s := range samples {
		if s > peak {
			peak = s
		}
	}
	if peak < 10000 {
		t.Errorf("peak reported occupancy = %d, want a deep queue", peak)
	}
}

func TestProgramECNMark(t *testing.T) {
	sw, _, sched := loadOn(t, "ecnmark")
	marks := []uint8{}
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		marks = append(marks, packet.TOSOf(pkt.Data))
	}
	// 2x overload into port 1 builds a deep queue; later packets must
	// carry a rising occupancy level in their TOS byte.
	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 615 * sim.Nanosecond // ~2x line rate for 1500B
		data := packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1500})
		sched.At(at, func() { sw.Inject(0, data); sw.Inject(2, data) })
	}
	sched.Run(5 * sim.Millisecond)
	if len(marks) == 0 {
		t.Fatal("nothing delivered")
	}
	var peak uint8
	for _, m := range marks {
		if m > peak {
			peak = m
		}
	}
	if peak < 10 {
		t.Errorf("peak mark = %d, want a deep-queue level (>=10 quanta)", peak)
	}
	if marks[0] != 0 {
		t.Errorf("first packet marked %d before any congestion", marks[0])
	}
}
