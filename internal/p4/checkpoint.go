package p4

import "repro/internal/checkpoint"

// Snapshot serializes the µP4 instance's persistent mutable state. The
// header scratch frames are zeroed at every Apply, so only the telemetry
// report sequence survives a slot boundary; everything else (switch ID,
// handlers) is configuration rebuilt by the restore path's construction.
// The program's externs are snapshotted by the owning switch.
func (inst *Instance) Snapshot(e *checkpoint.Encoder) {
	e.U32(inst.reportSeq)
}

// Restore loads an instance snapshot.
func (inst *Instance) Restore(d *checkpoint.Decoder) {
	inst.reportSeq = d.U32()
}
