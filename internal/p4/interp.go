package p4

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// controlKind maps µP4 control names to the data-plane events they
// handle.
var controlKind = map[string]events.Kind{
	"Ingress":      events.IngressPacket,
	"Egress":       events.EgressPacket,
	"Recirc":       events.RecirculatedPacket,
	"Generated":    events.GeneratedPacket,
	"Transmitted":  events.PacketTransmitted,
	"Enqueue":      events.BufferEnqueue,
	"Dequeue":      events.BufferDequeue,
	"Overflow":     events.BufferOverflow,
	"Underflow":    events.BufferUnderflow,
	"Timer":        events.TimerExpiration,
	"ControlEvent": events.ControlPlaneTriggered,
	"LinkChange":   events.LinkStatusChange,
	"UserEvent":    events.UserEvent,
}

// DeferredKinds are the event kinds whose shared_register updates go
// through aggregation banks (Figure 3) rather than the main register
// port: the high-frequency traffic-manager events. Low-frequency events
// (timers, link changes, control-plane and user events) access the main
// register directly, contending with packet threads for the port.
var DeferredKinds = []events.Kind{
	events.BufferEnqueue,
	events.BufferDequeue,
	events.BufferOverflow,
	events.BufferUnderflow,
	events.PacketTransmitted,
}

// Compiled is a type-checked µP4 program ready to instantiate.
type Compiled struct {
	file *File
	src  string
}

// Compile parses and checks µP4 source.
func Compile(src string) (*Compiled, error) {
	f, err := parse(src)
	if err != nil {
		return nil, err
	}
	if err := check(f); err != nil {
		return nil, err
	}
	return &Compiled{file: f, src: src}, nil
}

// MustCompile is Compile that panics on error, for tests and examples
// with literal source.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

// Controls lists the control (event) names the program defines.
func (c *Compiled) Controls() []string {
	var names []string
	for _, d := range c.file.Controls {
		names = append(names, d.Name)
	}
	return names
}

// ForceInterpret, when true, makes every subsequent Instantiate use the
// AST interpreter even when Options.Interpret is false. It is the
// process-wide backend override behind the -interp flag of cmd/evbench
// and cmd/evsim (the same shape as core.ForceSlowDrain): flip it once at
// startup to run a whole experiment suite on the oracle backend.
var ForceInterpret bool

// Options configures instantiation.
type Options struct {
	// MultiPort switches every shared_register to the multi-ported
	// implementation (exact but expensive memory; the low-line-rate
	// design of paper §4). The default is the aggregated Figure 3
	// design.
	MultiPort bool
	// MultiPortPorts is the port count per register in MultiPort mode
	// (default: one per event thread, i.e. NumKinds).
	MultiPortPorts int
	// Interpret selects the AST-walking interpreter instead of the
	// default compiled-closure backend. The interpreter is the
	// differential oracle: both backends must produce byte-identical
	// behaviour, and keeping it reachable lets tests and the -interp
	// flags pin that equivalence.
	Interpret bool
}

// Instance is a runnable instantiation of a compiled program: a
// pisa.Program with handlers executing the µP4 controls (compiled
// closures by default, the AST interpreter on request), plus the
// program's externs.
type Instance struct {
	compiled *Compiled
	prog     *pisa.Program
	interp   bool

	regs      []*pisa.SharedRegister
	regWidth  []uint64 // value mask per register (from RegisterDecl.mask)
	cnts      []*pisa.Counter
	tbls      []*pisa.Table
	frames    map[*ControlDecl][]uint64
	actFns    map[*ActionDecl]pisa.ActionFunc // compiled actions, one per decl
	reportSeq uint32
	switchID  uint32
}

// Instantiate builds an Instance named name.
func (c *Compiled) Instantiate(name string, opts Options) *Instance {
	inst := &Instance{
		compiled: c,
		prog:     pisa.NewProgram(name),
		interp:   opts.Interpret || ForceInterpret,
		frames:   make(map[*ControlDecl][]uint64),
		actFns:   make(map[*ActionDecl]pisa.ActionFunc),
	}
	for _, d := range c.file.Registers {
		var r *pisa.SharedRegister
		if opts.MultiPort {
			ports := opts.MultiPortPorts
			if ports <= 0 {
				ports = events.NumKinds
			}
			r = pisa.NewMultiPortRegister(d.Name, d.size, ports)
		} else {
			r = pisa.NewAggregatedRegister(d.Name, d.size, DeferredKinds...)
		}
		inst.regs = append(inst.regs, r)
		inst.regWidth = append(inst.regWidth, d.mask)
		inst.prog.AddRegister(r)
	}
	for _, d := range c.file.Counters {
		cnt := pisa.NewCounter(d.Name, d.size)
		inst.cnts = append(inst.cnts, cnt)
		inst.prog.AddCounter(cnt)
	}
	for _, d := range c.file.Tables {
		inst.tbls = append(inst.tbls, inst.buildTable(d))
	}
	for _, d := range c.file.Controls {
		d := d
		kind := controlKind[d.Name]
		if inst.interp {
			inst.frames[d] = make([]uint64, d.frameSize)
			inst.prog.HandleFunc(kind, func(ctx *pisa.Context) {
				frame := inst.frames[d]
				for i := range frame {
					frame[i] = 0
				}
				inst.execStmts(d.Body, ctx, frame)
			})
			continue
		}
		// Compiled backend: lower the body to a fused closure chain once,
		// with a preallocated frame. Reuse is safe because a handler only
		// re-enters Apply after the outer Apply returned (generated and
		// recirculated packets run on later slots).
		body := inst.compileStmts(d.Body)
		frame := make([]uint64, d.frameSize)
		inst.prog.HandleFunc(kind, func(ctx *pisa.Context) {
			for i := range frame {
				frame[i] = 0
			}
			body(ctx, frame)
		})
	}
	return inst
}

// Interpreted reports whether this instance runs on the AST interpreter
// (true) or the compiled-closure backend (false).
func (inst *Instance) Interpreted() bool { return inst.interp }

// Program returns the underlying pisa.Program to load into a switch.
func (inst *Instance) Program() *pisa.Program { return inst.prog }

// SetSwitchID sets the switch identifier stamped into emitted reports.
func (inst *Instance) SetSwitchID(id uint32) { inst.switchID = id }

// Register looks up a shared register by name (nil if absent).
func (inst *Instance) Register(name string) *pisa.SharedRegister {
	return inst.prog.Register(name)
}

// Table looks up a table by name (nil if absent).
func (inst *Instance) Table(name string) *pisa.Table { return inst.prog.Table(name) }

// buildTable constructs the pisa.Table for a declaration: the key
// function evaluates the declared key expressions against the slot
// context.
func (inst *Instance) buildTable(d *TableDecl) *pisa.Table {
	kinds := make([]pisa.MatchKind, len(d.Keys))
	for i, k := range d.Keys {
		switch k.Match {
		case "exact":
			kinds[i] = pisa.Exact
		case "lpm":
			kinds[i] = pisa.LPM
		default:
			kinds[i] = pisa.Ternary
		}
	}
	var keyFn pisa.KeyFunc
	if inst.interp {
		keys := d.Keys
		keyFn = func(ctx *pisa.Context, dst []uint64) bool {
			for i := range keys {
				dst[i] = inst.eval(keys[i].Expr, ctx, nil)
			}
			return true
		}
	} else {
		// Key extraction compiles to a flat closure array, one specialized
		// extractor per key field.
		keyFns := make([]exprFn, len(d.Keys))
		for i := range d.Keys {
			keyFns[i] = inst.compileExpr(d.Keys[i].Expr)
		}
		keyFn = func(ctx *pisa.Context, dst []uint64) bool {
			for i, f := range keyFns {
				dst[i] = f(ctx, nil)
			}
			return true
		}
	}
	t := pisa.NewTable(d.Name, kinds, keyFn)
	if d.DefaultAction != "" {
		act := inst.actionByName(d.DefaultAction)
		args := make([]uint64, len(d.DefaultArgs))
		for i, e := range d.DefaultArgs {
			args[i] = inst.eval(e, nil, nil) // default args are constants
		}
		t.SetDefault(inst.actionFunc(act), args...)
	}
	inst.prog.AddTable(t)
	return t
}

func (inst *Instance) actionByName(name string) *ActionDecl {
	for _, a := range inst.compiled.file.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// actionFunc wraps a µP4 action as a pisa.ActionFunc: the entry's params
// become the action's frame. On the compiled backend the body is lowered
// once per declaration (cached in actFns) with a preallocated frame, so
// entry hits run without allocating.
func (inst *Instance) actionFunc(a *ActionDecl) pisa.ActionFunc {
	if a == nil {
		return func(*pisa.Context, []uint64) {}
	}
	if inst.interp {
		return func(ctx *pisa.Context, params []uint64) {
			frame := make([]uint64, len(a.Params))
			copy(frame, params)
			inst.execStmts(a.Body, ctx, frame)
		}
	}
	if fn, ok := inst.actFns[a]; ok {
		return fn
	}
	body := inst.compileStmts(a.Body)
	frame := make([]uint64, len(a.Params))
	fn := pisa.ActionFunc(func(ctx *pisa.Context, params []uint64) {
		n := copy(frame, params)
		for i := n; i < len(frame); i++ {
			frame[i] = 0
		}
		body(ctx, frame)
	})
	inst.actFns[a] = fn
	return fn
}

// InstallEntry installs a table entry binding the named action with the
// given parameters. masks is nil for all-exact keys; priority 0
// auto-derives from masks.
func (inst *Instance) InstallEntry(table string, values, masks []uint64, priority int, action string, params ...uint64) error {
	t := inst.prog.Table(table)
	if t == nil {
		return fmt.Errorf("p4: no table %q", table)
	}
	a := inst.actionByName(action)
	if a == nil {
		return fmt.Errorf("p4: no action %q", action)
	}
	ok := false
	for _, td := range inst.compiled.file.Tables {
		if td.Name == table {
			for _, an := range td.Actions {
				if an == action {
					ok = true
				}
			}
		}
	}
	if !ok {
		return fmt.Errorf("p4: table %q does not list action %q", table, action)
	}
	if len(params) != len(a.Params) {
		return fmt.Errorf("p4: action %q takes %d params, got %d", action, len(a.Params), len(params))
	}
	return t.AddEntry(&pisa.Entry{
		Values:   values,
		Masks:    masks,
		Priority: priority,
		Action:   inst.actionFunc(a),
		Params:   params,
	})
}

// --- interpreter ----------------------------------------------------------

// execStmts runs stmts and reports whether a return statement ended the
// enclosing apply block.
func (inst *Instance) execStmts(stmts []Stmt, ctx *pisa.Context, frame []uint64) bool {
	for _, s := range stmts {
		if inst.execStmt(s, ctx, frame) {
			return true
		}
	}
	return false
}

func (inst *Instance) execStmt(s Stmt, ctx *pisa.Context, frame []uint64) bool {
	switch st := s.(type) {
	case *AssignStmt:
		frame[st.slot] = inst.eval(st.Expr, ctx, frame) & st.mask
	case *IfStmt:
		if inst.eval(st.Cond, ctx, frame) != 0 {
			return inst.execStmts(st.Then, ctx, frame)
		}
		return inst.execStmts(st.Else, ctx, frame)
	case *CallStmt:
		inst.execCall(st, ctx, frame)
	case *ReturnStmt:
		return true
	}
	return false
}

func (inst *Instance) execCall(st *CallStmt, ctx *pisa.Context, frame []uint64) {
	switch st.kind {
	case callPrimitive:
		inst.execPrimitive(st, ctx, frame)
	case callRegRead:
		r := inst.regs[st.reg]
		idx := uint32(inst.eval(st.Args[0], ctx, frame))
		frame[st.arg0Out] = r.Read(ctx, idx) & inst.regWidth[st.reg]
	case callRegWrite:
		r := inst.regs[st.reg]
		idx := uint32(inst.eval(st.Args[0], ctx, frame))
		r.Write(ctx, idx, inst.eval(st.Args[1], ctx, frame)&inst.regWidth[st.reg])
	case callRegAdd:
		r := inst.regs[st.reg]
		idx := uint32(inst.eval(st.Args[0], ctx, frame))
		r.Add(ctx, idx, int64(inst.eval(st.Args[1], ctx, frame)))
	case callCounterCount:
		cnt := inst.cnts[st.cnt]
		idx := uint32(inst.eval(st.Args[0], ctx, frame))
		n := 0
		if len(st.Args) == 2 {
			n = int(inst.eval(st.Args[1], ctx, frame))
		} else if ctx.Pkt != nil {
			n = ctx.Pkt.Len()
		}
		cnt.Count(idx, n)
	case callTableApply:
		inst.tbls[st.tbl].Apply(ctx)
	}
}

func (inst *Instance) execPrimitive(st *CallStmt, ctx *pisa.Context, frame []uint64) {
	argv := func(i int) uint64 { return inst.eval(st.Args[i], ctx, frame) }
	switch st.Method {
	case "forward":
		ctx.EgressPort = int(int64(argv(0)))
	case "drop":
		ctx.Drop()
	case "set_queue":
		ctx.Queue = int(argv(0))
	case "set_rank":
		ctx.Rank = argv(0)
	case "recirculate":
		ctx.Recirculate = true
	case "raise":
		ctx.RaiseUser(argv(0))
	case "set_tos":
		ctx.SetTOS(uint8(argv(0)))
	case "trim":
		ctx.Trim()
	case "no_op":
	case "hash":
		fields := make([]uint64, 0, 8)
		for i := 1; i < len(st.Args); i++ {
			fields = append(fields, argv(i))
		}
		frame[st.arg0Out] = pisa.Hash(0, fields...)
	case "emit_report":
		port := int(argv(0))
		rep := &packet.Report{
			Kind:   uint8(argv(1)),
			Switch: inst.switchID,
			Seq:    inst.reportSeq,
		}
		inst.reportSeq++
		if len(st.Args) > 2 {
			rep.V0 = argv(2)
		}
		if len(st.Args) > 3 {
			rep.V1 = uint32(argv(3))
		}
		data := packet.BuildControlFrame(packet.Broadcast,
			packet.MACFromUint64(uint64(inst.switchID)), rep)
		ctx.Emit(data, port)
	}
}

// eval evaluates an expression against the slot context and local frame.
func (inst *Instance) eval(e Expr, ctx *pisa.Context, frame []uint64) uint64 {
	switch x := e.(type) {
	case *NumExpr:
		return x.Val
	case *IdentExpr:
		if x.kind == identConst {
			return x.val
		}
		return frame[x.slot]
	case *FieldExpr:
		return evalField(x.field, ctx)
	case *UnaryExpr:
		v := inst.eval(x.X, ctx, frame)
		switch x.Op {
		case tokMinus:
			return -v
		case tokTilde:
			return ^v
		default: // tokBang
			if v == 0 {
				return 1
			}
			return 0
		}
	case *BinExpr:
		l := inst.eval(x.L, ctx, frame)
		// Short-circuit booleans.
		if x.Op == tokAndAnd && l == 0 {
			return 0
		}
		if x.Op == tokOrOr && l != 0 {
			return 1
		}
		r := inst.eval(x.R, ctx, frame)
		v, err := applyBin(x.Op, l, r)
		if err != nil {
			// Division by zero at run time yields zero, the P4 target
			// convention for undefined arithmetic.
			return 0
		}
		return v
	case *CallExpr:
		a := inst.eval(x.Args[0], ctx, frame)
		b := inst.eval(x.Args[1], ctx, frame)
		switch x.Name {
		case "min":
			if a < b {
				return a
			}
			return b
		case "max":
			if a > b {
				return a
			}
			return b
		default: // ssub: saturating subtract
			if a < b {
				return 0
			}
			return a - b
		}
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// evalField reads a header/metadata field from the context. Fields of
// headers the parser did not decode read as zero, with the matching
// .valid field reading 0.
func evalField(f fieldID, ctx *pisa.Context) uint64 {
	if ctx == nil {
		return 0
	}
	switch f {
	case fEthValid:
		return b2u(ctx.Has(packet.LayerEthernet))
	case fIPValid:
		return b2u(ctx.Has(packet.LayerIPv4))
	case fUDPValid:
		return b2u(ctx.Has(packet.LayerUDP))
	case fTCPValid:
		return b2u(ctx.Has(packet.LayerTCP))
	}
	switch f {
	case fEthSrc, fEthDst, fEthType:
		if !ctx.Has(packet.LayerEthernet) {
			return 0
		}
		switch f {
		case fEthSrc:
			return ctx.Parsed.Eth.Src.Uint64()
		case fEthDst:
			return ctx.Parsed.Eth.Dst.Uint64()
		default:
			return uint64(ctx.Parsed.Eth.Type)
		}
	case fIPSrc, fIPDst, fIPProto, fIPTTL, fIPLen, fIPTOS:
		if !ctx.Has(packet.LayerIPv4) {
			return 0
		}
		ip := &ctx.Parsed.IP
		switch f {
		case fIPSrc:
			return uint64(ip.Src)
		case fIPDst:
			return uint64(ip.Dst)
		case fIPProto:
			return uint64(ip.Protocol)
		case fIPTTL:
			return uint64(ip.TTL)
		case fIPLen:
			return uint64(ip.TotalLen)
		default:
			return uint64(ip.TOS)
		}
	case fUDPSport, fUDPDport:
		if !ctx.Has(packet.LayerUDP) {
			return 0
		}
		if f == fUDPSport {
			return uint64(ctx.Parsed.UDP.SrcPort)
		}
		return uint64(ctx.Parsed.UDP.DstPort)
	case fTCPSport, fTCPDport, fTCPFlags:
		if !ctx.Has(packet.LayerTCP) {
			return 0
		}
		switch f {
		case fTCPSport:
			return uint64(ctx.Parsed.TCP.SrcPort)
		case fTCPDport:
			return uint64(ctx.Parsed.TCP.DstPort)
		default:
			return uint64(ctx.Parsed.TCP.Flags)
		}
	case fEvKind:
		return uint64(ctx.Ev.Kind)
	case fEvFlowID:
		return ctx.Ev.FlowHash
	case fEvPktLen:
		return uint64(ctx.Ev.PktLen)
	case fEvPort:
		return uint64(uint16(int16(ctx.Ev.Port)))
	case fEvQueue:
		return uint64(ctx.Ev.Queue)
	case fEvTimerID:
		return uint64(ctx.Ev.TimerID)
	case fEvLinkUp:
		return b2u(ctx.Ev.Up)
	case fEvData:
		return ctx.Ev.Data
	case fEvSeq:
		return ctx.Ev.Seq
	case fStdIngressPort:
		if ctx.Pkt == nil {
			return 0xffff
		}
		return uint64(uint16(int16(ctx.Pkt.InPort)))
	case fStdPktLen:
		if ctx.Pkt == nil {
			return 0
		}
		return uint64(ctx.Pkt.Len())
	case fStdNowNS:
		return uint64(ctx.Now.Nanoseconds())
	case fStdCycle:
		return ctx.Cycle
	case fStdRecirc:
		if ctx.Pkt == nil {
			return 0
		}
		return uint64(ctx.Pkt.Recirc)
	}
	return 0
}
