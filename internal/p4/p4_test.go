package p4

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`const X = 0x1f; // comment
/* block
comment */ control Ingress { apply { forward(1 + 2_000); } }`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokKind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{tokConst, tokIdent, tokAssign, tokNumber, tokSemi,
		tokControl, tokIdent, tokLBrace, tokApply, tokLBrace,
		tokIdent, tokLParen, tokNumber, tokPlus, tokNumber, tokRParen, tokSemi,
		tokRBrace, tokRBrace, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %d, want %d", i, kinds[i], want[i])
		}
	}
	if toks[3].num != 0x1f {
		t.Errorf("hex literal = %d", toks[3].num)
	}
	if toks[14].num != 2000 {
		t.Errorf("underscored literal = %d", toks[14].num)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lexAll("control @"); err == nil {
		t.Error("bad char accepted")
	}
	if _, err := lexAll("/* unterminated"); err == nil {
		t.Error("unterminated comment accepted")
	}
	if _, err := lexAll("const X = 0x;"); err == nil {
		t.Error("malformed hex accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown control", `control Bogus { apply { drop(); } }`, "unknown control"},
		{"dup control", `control Ingress { apply {} } control Ingress { apply {} }`, "duplicate control"},
		{"no controls", `const X = 1;`, "no controls"},
		{"unknown ident", `control Ingress { apply { forward(nope); } }`, "unknown identifier"},
		{"unknown field", `control Ingress { apply { forward(hdr.bogus.x); } }`, "unknown field"},
		{"unknown primitive", `control Ingress { apply { frobnicate(); } }`, "unknown primitive"},
		{"bad width", `shared_register<bit<99>>(4) r; control Ingress { apply {} }`, "bit width"},
		{"dup var", `control Ingress { bit<8> x; bit<8> x; apply {} }`, "duplicate variable"},
		{"assign undeclared", `control Ingress { apply { x = 1; } }`, "undeclared"},
		{"table no key", `action a() {} table t { actions = { a; } } control Ingress { apply {} }`, "no key"},
		{"table bad action", `table t { key = { hdr.ip.dst : exact; } actions = { nope; } } control Ingress { apply {} }`, "unknown action"},
		{"reg bad method", `register<bit<8>>(4) r; control Ingress { apply { r.pop(1); } }`, "no method"},
		{"apply from action", `action a() { t.apply(); } table t { key = { hdr.ip.dst : exact; } actions = { a; } } control Ingress { apply {} }`, "from actions"},
		{"hash dst", `control Ingress { apply { hash(1, 2); } }`, "destination must be a local"},
		{"arity", `control Ingress { apply { forward(); } }`, "arguments"},
		{"non const size", `register<bit<8>>(hdr.ip.src) r; control Ingress { apply {} }`, "not constant"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("%s: compile succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestConstFolding(t *testing.T) {
	c := MustCompile(`
const A = 10;
const B = A * 4 + 2;
register<bit<32>>(B) r;
control Ingress { apply {} }
`)
	inst := c.Instantiate("t", Options{})
	if got := inst.Register("r").Size(); got != 42 {
		t.Errorf("register size = %d, want 42", got)
	}
}

// runOne compiles src, loads it on an event switch, injects frames, runs,
// and returns the switch and instance.
func runOne(t *testing.T, src string, frames ...[]byte) (*core.Switch, *Instance, *sim.Scheduler) {
	t.Helper()
	inst := MustCompile(src).Instantiate("test", Options{})
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		sw.Inject(0, f)
	}
	return sw, inst, sched
}

func udpFrame(srcIP, dstIP packet.IP, size int) []byte {
	return packet.BuildFrame(packet.FrameSpec{
		Flow:     packet.Flow{Src: srcIP, Dst: dstIP, SrcPort: 7, DstPort: 8, Proto: packet.ProtoUDP},
		TotalLen: size,
	})
}

func TestSimpleForwardProgram(t *testing.T) {
	sw, _, sched := runOne(t, `
control Ingress {
    apply { forward(2); }
}`, udpFrame(1, 2, 100), udpFrame(1, 2, 100))
	var ports []int
	sw.OnTransmit = func(p int, _ *packet.Packet) { ports = append(ports, p) }
	sched.Run(sim.Millisecond)
	if len(ports) != 2 || ports[0] != 2 || ports[1] != 2 {
		t.Errorf("ports = %v", ports)
	}
}

func TestHeaderFieldAccess(t *testing.T) {
	sw, _, sched := runOne(t, `
control Ingress {
    apply {
        if (hdr.ip.valid == 1 && hdr.udp.dport == 8) {
            forward(3);
        } else {
            drop();
        }
    }
}`, udpFrame(1, 2, 100))
	var tx int
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = p }
	sched.Run(sim.Millisecond)
	if tx != 3 {
		t.Errorf("forwarded to %d, want 3", tx)
	}
}

// TestMicroburstProgram compiles the paper's §2 running example and
// checks that per-flow buffer occupancy is tracked by enqueue/dequeue
// events and that a culprit is flagged via a user event.
func TestMicroburstProgram(t *testing.T) {
	src := `
const NUM_REGS = 256;
const FLOW_THRESH = 1000;

shared_register<bit<32>>(NUM_REGS) bufSize_reg;

control Ingress {
    bit<32> bufSize;
    bit<32> flowID;
    apply {
        // The architecture computes ev.flow_id from the 5-tuple (the
        // paper initializes enq_meta.flowID in ingress); hash() remains
        // available for program-defined indices.
        hash(flowID, hdr.ip.src, hdr.ip.dst);
        bufSize_reg.read(ev.flow_id % NUM_REGS, bufSize);
        if (bufSize > FLOW_THRESH) {
            raise(flowID);  // microburst culprit!
        }
        forward(1);
    }
}

control Enqueue {
    apply { bufSize_reg.add(ev.flow_id % NUM_REGS, ev.pkt_len); }
}

control Dequeue {
    apply { bufSize_reg.add(ev.flow_id % NUM_REGS, 0 - ev.pkt_len); }
}

control UserEvent {
    apply { no_op(); }
}`
	inst := MustCompile(src).Instantiate("microburst", Options{})
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	var culprits int
	inst.Program().HandleFunc(events.UserEvent, func(ctx *pisa.Context) { culprits++ })

	// A burst of big packets from one flow: occupancy passes the
	// threshold while the burst is queued behind the 10G egress
	// (draining one 1500B frame per ~1.2us). Trailing packets of the
	// same flow arrive while the queue is still deep and read the high
	// occupancy in the ingress pipeline.
	for i := 0; i < 20; i++ {
		sw.Inject(0, udpFrame(packet.IP4(10, 0, 0, 1), packet.IP4(10, 0, 0, 2), 1500))
	}
	for i := 0; i < 10; i++ {
		at := 3*sim.Microsecond + sim.Time(i)*2*sim.Microsecond
		sched.At(at, func() {
			sw.Inject(0, udpFrame(packet.IP4(10, 0, 0, 1), packet.IP4(10, 0, 0, 2), 1500))
		})
	}
	sched.Run(10 * sim.Millisecond)

	if culprits == 0 {
		t.Error("no microburst culprit flagged")
	}
	// After draining, the occupancy register must return to zero.
	reg := inst.Register("bufSize_reg")
	for i := uint32(0); i < 256; i++ {
		if v := reg.True(i); v != 0 {
			t.Fatalf("slot %d: residual occupancy %d", i, v)
		}
	}
	st := sw.Stats()
	if st.TxPackets != 30 {
		t.Errorf("tx = %d", st.TxPackets)
	}
}

func TestTableLPMProgram(t *testing.T) {
	src := `
action set_egress(port) { forward(port); }
action drop_pkt() { drop(); }

table ipv4_lpm {
    key = { hdr.ip.dst : lpm; }
    actions = { set_egress; drop_pkt; }
    default_action = drop_pkt();
}

control Ingress {
    apply { ipv4_lpm.apply(); }
}`
	inst := MustCompile(src).Instantiate("router", Options{})
	// 10.0.0.0/8 -> port 1 ; 10.1.0.0/16 -> port 2.
	if err := inst.InstallEntry("ipv4_lpm",
		[]uint64{uint64(packet.IP4(10, 0, 0, 0))},
		[]uint64{pisa.PrefixMask(8, 32)}, 0, "set_egress", 1); err != nil {
		t.Fatal(err)
	}
	if err := inst.InstallEntry("ipv4_lpm",
		[]uint64{uint64(packet.IP4(10, 1, 0, 0))},
		[]uint64{pisa.PrefixMask(16, 32)}, 0, "set_egress", 2); err != nil {
		t.Fatal(err)
	}

	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	type rx struct{ port, len int }
	var out []rx
	sw.OnTransmit = func(p int, pkt *packet.Packet) { out = append(out, rx{p, pkt.Len()}) }

	sw.Inject(0, udpFrame(packet.IP4(1, 1, 1, 1), packet.IP4(10, 2, 0, 1), 101)) // /8 -> port 1
	sw.Inject(0, udpFrame(packet.IP4(1, 1, 1, 1), packet.IP4(10, 1, 0, 1), 102)) // /16 -> port 2
	sw.Inject(0, udpFrame(packet.IP4(1, 1, 1, 1), packet.IP4(11, 0, 0, 1), 103)) // miss -> drop
	sched.Run(sim.Millisecond)

	if len(out) != 2 {
		t.Fatalf("transmitted %d, want 2 (one dropped)", len(out))
	}
	if out[0].port != 1 || out[0].len != 101 {
		t.Errorf("first = %+v", out[0])
	}
	if out[1].port != 2 || out[1].len != 102 {
		t.Errorf("second = %+v", out[1])
	}
	if sw.Stats().PipelineDrops != 1 {
		t.Errorf("drops = %d", sw.Stats().PipelineDrops)
	}
}

func TestInstallEntryValidation(t *testing.T) {
	src := `
action a(x) { forward(x); }
action b() { drop(); }
table t { key = { hdr.ip.dst : exact; } actions = { a; } }
control Ingress { apply { t.apply(); } }`
	inst := MustCompile(src).Instantiate("x", Options{})
	if err := inst.InstallEntry("nope", []uint64{1}, nil, 0, "a", 1); err == nil {
		t.Error("unknown table accepted")
	}
	if err := inst.InstallEntry("t", []uint64{1}, nil, 0, "nope"); err == nil {
		t.Error("unknown action accepted")
	}
	if err := inst.InstallEntry("t", []uint64{1}, nil, 0, "b"); err == nil {
		t.Error("unlisted action accepted")
	}
	if err := inst.InstallEntry("t", []uint64{1}, nil, 0, "a"); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := inst.InstallEntry("t", []uint64{1}, nil, 0, "a", 5); err != nil {
		t.Errorf("valid install failed: %v", err)
	}
}

func TestTimerControlAndRegisterWrite(t *testing.T) {
	// A timer handler that resets a register slot — the CMS-reset
	// pattern from paper §1, in miniature.
	src := `
register<bit<32>>(4) cnt;

control Ingress {
    apply {
        cnt.add(0, 1);
        forward(1);
    }
}

control Timer {
    apply { cnt.write(0, 0); }
}`
	inst := MustCompile(src).Instantiate("reset", Options{})
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	if err := sw.ConfigureTimer(0, 100*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sw.Inject(0, udpFrame(1, 2, 100))
	}
	// All 10 arrive and count well before the first timer fires at 100us.
	sched.Run(50 * sim.Microsecond)
	reg := inst.Register("cnt")
	if got := reg.True(0); got != 10 {
		t.Fatalf("count before reset = %d, want 10", got)
	}
	sched.Run(200 * sim.Microsecond)
	if got := reg.True(0); got != 0 {
		t.Errorf("count after timer reset = %d, want 0", got)
	}
}

func TestWidthMasking(t *testing.T) {
	src := `
control Ingress {
    bit<8> x;
    apply {
        x = 300;        // masked to 8 bits = 44
        if (x == 44) { forward(1); } else { drop(); }
    }
}`
	sw, _, sched := runOne(t, src, udpFrame(1, 2, 100))
	tx := -1
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = p }
	sched.Run(sim.Millisecond)
	if tx != 1 {
		t.Error("width masking wrong")
	}
}

func TestBuiltinExprFunctions(t *testing.T) {
	src := `
control Ingress {
    bit<32> a;
    apply {
        a = min(5, 3) + max(5, 3) * 10 + ssub(3, 5);
        if (a == 53) { forward(1); } else { drop(); }
    }
}`
	sw, _, sched := runOne(t, src, udpFrame(1, 2, 100))
	tx := -1
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = p }
	sched.Run(sim.Millisecond)
	if tx != 1 {
		t.Error("builtin functions wrong")
	}
}

func TestCounterExtern(t *testing.T) {
	src := `
counter(8) c;
control Ingress {
    apply {
        c.count(std.ingress_port);
        forward(1);
    }
}`
	_, inst, sched := runOne(t, src, udpFrame(1, 2, 100), udpFrame(1, 2, 200))
	sched.Run(sim.Millisecond)
	pk, by := inst.Program().Counter("c").Value(0)
	if pk != 2 || by != 300 {
		t.Errorf("counter = %d pkts %d bytes", pk, by)
	}
}

func TestEmitReport(t *testing.T) {
	src := `
control Timer {
    apply { emit_report(2, 4, 12345, 9); }
}
control Ingress { apply { drop(); } }`
	inst := MustCompile(src).Instantiate("rep", Options{})
	inst.SetSwitchID(77)
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	sw.ConfigureTimer(0, 100*sim.Microsecond)
	var reports []packet.Report
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if port != 2 {
			t.Errorf("report on port %d", port)
		}
		var p packet.Parser
		var dec []packet.LayerType
		if err := p.Decode(pkt.Data, &dec); err != nil {
			t.Fatal(err)
		}
		reports = append(reports, p.Report)
	}
	sched.Run(350 * sim.Microsecond)
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	r := reports[0]
	if r.Kind != 4 || r.V0 != 12345 || r.V1 != 9 || r.Switch != 77 || r.Seq != 0 {
		t.Errorf("report = %+v", r)
	}
	if reports[2].Seq != 2 {
		t.Errorf("seq = %d", reports[2].Seq)
	}
}

func TestRecirculationProgram(t *testing.T) {
	src := `
control Ingress {
    apply {
        if (std.recirc == 0) { recirculate(); } else { forward(1); }
    }
}
control Recirc {
    apply { forward(1); }
}`
	sw, _, sched := runOne(t, src, udpFrame(1, 2, 100))
	tx := 0
	sw.OnTransmit = func(int, *packet.Packet) { tx++ }
	sched.Run(sim.Millisecond)
	if tx != 1 || sw.Stats().Recirculated != 1 {
		t.Errorf("tx=%d recirc=%d", tx, sw.Stats().Recirculated)
	}
}

func TestMultiPortOption(t *testing.T) {
	src := `
shared_register<bit<32>>(8) r;
control Ingress { apply { r.add(0, 1); forward(1); } }
control Enqueue { apply { r.add(0, 1); } }`
	inst := MustCompile(src).Instantiate("mp", Options{MultiPort: true})
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	sw.Inject(0, udpFrame(1, 2, 100))
	sched.Run(sim.Millisecond)
	reg := inst.Register("r")
	if reg.Aggregated() {
		t.Error("expected multiport register")
	}
	if got := reg.True(0); got != 2 {
		t.Errorf("r[0] = %d, want 2 (ingress + enqueue)", got)
	}
}

func TestControlsListing(t *testing.T) {
	c := MustCompile(`control Ingress { apply {} } control Enqueue { apply {} }`)
	names := c.Controls()
	if len(names) != 2 || names[0] != "Ingress" || names[1] != "Enqueue" {
		t.Errorf("controls = %v", names)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
control Ingress {
    apply {
        if (hdr.udp.dport == 1) { forward(1); }
        else if (hdr.udp.dport == 8) { forward(2); }
        else { drop(); }
    }
}`
	sw, _, sched := runOne(t, src, udpFrame(1, 2, 100)) // dport 8
	tx := -1
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = p }
	sched.Run(sim.Millisecond)
	if tx != 2 {
		t.Errorf("else-if chain chose %d", tx)
	}
}

func TestCompileErrorPositions(t *testing.T) {
	// Errors must carry accurate line numbers for multi-line programs.
	src := `const A = 1;
control Ingress {
    apply {
        forward(B);
    }
}`
	_, err := Compile(src)
	if err == nil {
		t.Fatal("expected error")
	}
	var perr *Error
	if !errorsAs(err, &perr) {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 4 {
		t.Errorf("error at line %d, want 4: %v", perr.Pos.Line, err)
	}
}

func errorsAs(err error, target **Error) bool {
	if e, ok := err.(*Error); ok {
		*target = e
		return true
	}
	return false
}

func TestDeferredWriteCompilesButPanics(t *testing.T) {
	// reg.write from an Enqueue control is the documented misuse: it
	// compiles (the checker cannot know the instantiation mode) and
	// panics when executed on an aggregated register.
	inst := MustCompile(`
shared_register<bit<8>>(4) r;
control Ingress { apply { forward(1); } }
control Enqueue { apply { r.write(0, 1); } }
`).Instantiate("misuse", Options{})
	ctx := &pisa.Context{}
	ctx.Reset(nil, events.Event{Kind: events.BufferEnqueue}, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on deferred write")
		}
	}()
	inst.Program().Apply(ctx)
}

func TestReturnStatement(t *testing.T) {
	src := `
control Ingress {
    apply {
        if (hdr.udp.dport == 8) {
            forward(2);
            return;
        }
        drop();
    }
}`
	sw, _, sched := runOne(t, src, udpFrame(1, 2, 100)) // dport 8
	tx := -1
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = p }
	sched.Run(sim.Millisecond)
	if tx != 2 {
		t.Errorf("return did not preserve the forward decision: tx=%d", tx)
	}
	// Without the matching port, control falls through to drop().
	sw2, _, sched2 := runOne(t, src, packet.BuildFrame(packet.FrameSpec{
		Flow: packet.Flow{Src: 1, Dst: 2, SrcPort: 7, DstPort: 9, Proto: packet.ProtoUDP},
	}))
	tx2 := -1
	sw2.OnTransmit = func(p int, _ *packet.Packet) { tx2 = p }
	sched2.Run(sim.Millisecond)
	if tx2 != -1 {
		t.Errorf("non-matching packet forwarded to %d, want drop", tx2)
	}
}

func TestAllFieldsReadable(t *testing.T) {
	// Exercise every hdr/ev/std field path the checker accepts; the
	// program sums them so nothing is optimized away, and forwards on a
	// field-derived port so we can observe execution.
	var fields []string
	for path := range fieldByPath {
		fields = append(fields, path)
	}
	src := "control Ingress {\n    bit<64> acc;\n    apply {\n"
	for _, f := range fields {
		src += "        acc = acc + " + f + ";\n"
	}
	src += "        forward(1);\n    }\n}"
	sw, _, sched := runOne(t, src, udpFrame(1, 2, 100))
	tx := 0
	sw.OnTransmit = func(int, *packet.Packet) { tx++ }
	sched.Run(sim.Millisecond)
	if tx != 1 {
		t.Errorf("field-sum program did not forward (tx=%d)", tx)
	}
}

func TestTCPFieldsProgram(t *testing.T) {
	src := `
control Ingress {
    apply {
        if (hdr.tcp.valid == 1 && hdr.tcp.flags & 2 == 2) {
            forward(hdr.tcp.dport % 4);   // SYN packets by port
            return;
        }
        drop();
    }
}`
	data := packet.BuildFrame(packet.FrameSpec{
		Flow:     packet.Flow{Src: 1, Dst: 2, SrcPort: 9, DstPort: 7, Proto: packet.ProtoTCP},
		TCPFlags: packet.TCPSyn,
	})
	sw, _, sched := runOne(t, src, data)
	tx := -1
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = p }
	sched.Run(sim.Millisecond)
	if tx != 3 { // 7 % 4
		t.Errorf("tx = %d, want 3", tx)
	}
}

func TestTernaryTableProgram(t *testing.T) {
	src := `
action allow(port) { forward(port); }
action deny() { drop(); }
table acl {
    key = { hdr.ip.src : ternary; hdr.udp.dport : ternary; }
    actions = { allow; deny; }
    default_action = deny();
}
control Ingress { apply { acl.apply(); } }`
	inst := MustCompile(src).Instantiate("acl", Options{})
	// Any source, dport 8 -> allow on port 2 (low priority).
	mustNil(t, inst.InstallEntry("acl",
		[]uint64{0, 8}, []uint64{0, 0xffff}, 1, "allow", 2))
	// Specific source 10.0.0.1, any port -> deny (high priority).
	mustNil(t, inst.InstallEntry("acl",
		[]uint64{uint64(packet.IP4(10, 0, 0, 1)), 0},
		[]uint64{0xffffffff, 0}, 10, "deny"))
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	if err := sw.Load(inst.Program()); err != nil {
		t.Fatal(err)
	}
	var tx []int
	sw.OnTransmit = func(p int, _ *packet.Packet) { tx = append(tx, p) }
	sw.Inject(0, udpFrame(packet.IP4(10, 0, 0, 2), 2, 100)) // dport 8, other src -> allow
	sw.Inject(0, udpFrame(packet.IP4(10, 0, 0, 1), 2, 100)) // denied src
	sched.Run(sim.Millisecond)
	if len(tx) != 1 || tx[0] != 2 {
		t.Errorf("tx = %v, want [2]", tx)
	}
}

func mustNil(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestParserSyntaxErrors(t *testing.T) {
	cases := []string{
		`table t { key = { hdr.ip.dst exact; } }`,         // missing colon
		`table t { key = { hdr.ip.dst : bogus; } }`,       // bad match kind
		`control Ingress { apply { x } }`,                 // incomplete stmt
		`control Ingress { apply { if hdr.ip.ttl { } } }`, // missing parens
		`register<bit<32>>(8) r; control I { apply { } }`, // unknown control name
		`control Ingress { apply { r.read(0); } }`,        // unknown object
		`action a() { } table t { key = { hdr.ip.dst : exact; } actions = { a; } default_action = b; } control Ingress { apply {} }`,
		`shared_register<bit<0>>(4) r; control Ingress { apply {} }`,
	}
	for i, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("case %d compiled: %s", i, src)
		}
	}
}
