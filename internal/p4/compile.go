package p4

// The closure-lowering backend. Instantiate (interp.go) calls into this
// file to turn a checked µP4 control body into a tree of specialized Go
// closures, so steady-state packet events run pre-resolved code instead
// of walking the AST:
//
//   - constant subexpressions fold at compile time (same applyBin as the
//     checker, with the interpreter's division-by-zero-yields-zero rule),
//     and if-branches whose condition folds compile only the taken side;
//   - header/metadata reads become one specialized closure per field,
//     with the layer-valid check inlined (no fieldID switch per event);
//   - width masks come precomputed by the checker (RegisterDecl.mask,
//     AssignStmt.mask) and are baked into the closures, elided entirely
//     when they cover the full 64-bit word;
//   - externs (registers, counters, tables) and table key extractors are
//     bound to their pisa objects once at instantiate time;
//   - statement lists fuse into fixed-arity chains so the common short
//     bodies avoid slice iteration;
//   - control and action frames are preallocated per instance. Reuse is
//     safe because µP4 has no loops or recursion and a program only
//     re-enters Apply after the previous Apply returned (generated and
//     recirculated packets run on later pipeline slots).
//
// The AST interpreter (interp.go) stays as the differential oracle: both
// backends must produce byte-identical register/counter/context state
// for every program (FuzzCompiledVsInterp, the backend-identity tests,
// and `make check-backends` pin this).

import (
	"repro/internal/packet"
	"repro/internal/pisa"
)

// exprFn is a compiled expression: it evaluates against the slot context
// and the control/action frame. Compiled expressions require a non-nil
// context (Program.Apply and Table.Apply always supply one); only
// instantiate-time constant evaluation passes nil, and that path uses
// the interpreter.
type exprFn func(ctx *pisa.Context, frame []uint64) uint64

// stmtFn is a compiled statement; it reports whether a return statement
// ended the enclosing apply block.
type stmtFn func(ctx *pisa.Context, frame []uint64) bool

// foldExpr evaluates e at compile time when its value is fully
// determined by constants, applying the interpreter's runtime
// conventions (division by zero yields zero, shift counts mask to six
// bits, booleans are 0/1). µP4 expressions are pure, so folding a
// decisive short-circuit operand is exact.
func foldExpr(e Expr) (uint64, bool) {
	switch x := e.(type) {
	case *NumExpr:
		return x.Val, true
	case *IdentExpr:
		if x.kind == identConst {
			return x.val, true
		}
	case *UnaryExpr:
		v, ok := foldExpr(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case tokMinus:
			return -v, true
		case tokTilde:
			return ^v, true
		default: // tokBang
			return b2u(v == 0), true
		}
	case *BinExpr:
		l, lok := foldExpr(x.L)
		if lok && x.Op == tokAndAnd && l == 0 {
			return 0, true
		}
		if lok && x.Op == tokOrOr && l != 0 {
			return 1, true
		}
		r, rok := foldExpr(x.R)
		if !lok || !rok {
			return 0, false
		}
		v, err := applyBin(x.Op, l, r)
		if err != nil {
			return 0, true // division by zero yields zero at run time
		}
		return v, true
	case *CallExpr:
		a, aok := foldExpr(x.Args[0])
		b, bok := foldExpr(x.Args[1])
		if !aok || !bok {
			return 0, false
		}
		switch x.Name {
		case "min":
			if a < b {
				return a, true
			}
			return b, true
		case "max":
			if a > b {
				return a, true
			}
			return b, true
		default: // ssub
			if a < b {
				return 0, true
			}
			return a - b, true
		}
	}
	return 0, false
}

// compileExpr lowers an expression to a specialized closure.
func (inst *Instance) compileExpr(e Expr) exprFn {
	if v, ok := foldExpr(e); ok {
		return func(*pisa.Context, []uint64) uint64 { return v }
	}
	switch x := e.(type) {
	case *IdentExpr:
		slot := x.slot
		return func(_ *pisa.Context, frame []uint64) uint64 { return frame[slot] }
	case *FieldExpr:
		return compileField(x.field)
	case *UnaryExpr:
		sub := inst.compileExpr(x.X)
		switch x.Op {
		case tokMinus:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return -sub(ctx, frame) }
		case tokTilde:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return ^sub(ctx, frame) }
		default: // tokBang
			return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(sub(ctx, frame) == 0) }
		}
	case *BinExpr:
		return inst.compileBin(x)
	case *CallExpr:
		a := inst.compileExpr(x.Args[0])
		b := inst.compileExpr(x.Args[1])
		switch x.Name {
		case "min":
			return func(ctx *pisa.Context, frame []uint64) uint64 {
				av, bv := a(ctx, frame), b(ctx, frame)
				if av < bv {
					return av
				}
				return bv
			}
		case "max":
			return func(ctx *pisa.Context, frame []uint64) uint64 {
				av, bv := a(ctx, frame), b(ctx, frame)
				if av > bv {
					return av
				}
				return bv
			}
		default: // ssub
			return func(ctx *pisa.Context, frame []uint64) uint64 {
				av, bv := a(ctx, frame), b(ctx, frame)
				if av < bv {
					return 0
				}
				return av - bv
			}
		}
	}
	// NumExpr and constant identifiers fold above; anything else would be
	// a checker bug surfacing here.
	return func(*pisa.Context, []uint64) uint64 { return 0 }
}

// slotOf reports whether e is a plain local/param load and its slot.
func slotOf(e Expr) (int, bool) {
	if id, ok := e.(*IdentExpr); ok && id.kind == identLocal {
		return id.slot, true
	}
	return 0, false
}

// binSlotConst lowers `local op constant` to a single closure with no
// inner calls — the hottest shape in stateful programs (index masks,
// shifts, threshold compares). Returns nil for operators handled
// elsewhere.
func binSlotConst(op tokKind, slot int, rv uint64) exprFn {
	switch op {
	case tokPlus:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] + rv }
	case tokMinus:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] - rv }
	case tokStar:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] * rv }
	case tokSlash:
		if rv == 0 {
			return func(*pisa.Context, []uint64) uint64 { return 0 }
		}
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] / rv }
	case tokPercent:
		if rv == 0 {
			return func(*pisa.Context, []uint64) uint64 { return 0 }
		}
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] % rv }
	case tokAmp:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] & rv }
	case tokPipe:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] | rv }
	case tokCaret:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] ^ rv }
	case tokShl:
		sh := rv & 63
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] << sh }
	case tokShr:
		sh := rv & 63
		return func(_ *pisa.Context, f []uint64) uint64 { return f[slot] >> sh }
	case tokEq:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[slot] == rv) }
	case tokNeq:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[slot] != rv) }
	case tokLAngle:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[slot] < rv) }
	case tokRAngle:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[slot] > rv) }
	case tokLe:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[slot] <= rv) }
	case tokGe:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[slot] >= rv) }
	}
	return nil
}

// binSlotSlot lowers `local op local` to a single closure.
func binSlotSlot(op tokKind, a, b int) exprFn {
	switch op {
	case tokPlus:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] + f[b] }
	case tokMinus:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] - f[b] }
	case tokStar:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] * f[b] }
	case tokSlash:
		return func(_ *pisa.Context, f []uint64) uint64 {
			if f[b] == 0 {
				return 0
			}
			return f[a] / f[b]
		}
	case tokPercent:
		return func(_ *pisa.Context, f []uint64) uint64 {
			if f[b] == 0 {
				return 0
			}
			return f[a] % f[b]
		}
	case tokAmp:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] & f[b] }
	case tokPipe:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] | f[b] }
	case tokCaret:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] ^ f[b] }
	case tokShl:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] << (f[b] & 63) }
	case tokShr:
		return func(_ *pisa.Context, f []uint64) uint64 { return f[a] >> (f[b] & 63) }
	case tokEq:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[a] == f[b]) }
	case tokNeq:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[a] != f[b]) }
	case tokLAngle:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[a] < f[b]) }
	case tokRAngle:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[a] > f[b]) }
	case tokLe:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[a] <= f[b]) }
	case tokGe:
		return func(_ *pisa.Context, f []uint64) uint64 { return b2u(f[a] >= f[b]) }
	}
	return nil
}

// binSlotExpr lowers `local op <expr>`, reading the left operand
// directly from the frame (one inner call instead of two).
func binSlotExpr(op tokKind, slot int, r exprFn) exprFn {
	switch op {
	case tokPlus:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] + r(ctx, f) }
	case tokMinus:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] - r(ctx, f) }
	case tokStar:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] * r(ctx, f) }
	case tokSlash:
		return func(ctx *pisa.Context, f []uint64) uint64 {
			rv := r(ctx, f)
			if rv == 0 {
				return 0
			}
			return f[slot] / rv
		}
	case tokPercent:
		return func(ctx *pisa.Context, f []uint64) uint64 {
			rv := r(ctx, f)
			if rv == 0 {
				return 0
			}
			return f[slot] % rv
		}
	case tokAmp:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] & r(ctx, f) }
	case tokPipe:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] | r(ctx, f) }
	case tokCaret:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] ^ r(ctx, f) }
	case tokShl:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] << (r(ctx, f) & 63) }
	case tokShr:
		return func(ctx *pisa.Context, f []uint64) uint64 { return f[slot] >> (r(ctx, f) & 63) }
	case tokEq:
		return func(ctx *pisa.Context, f []uint64) uint64 { return b2u(f[slot] == r(ctx, f)) }
	case tokNeq:
		return func(ctx *pisa.Context, f []uint64) uint64 { return b2u(f[slot] != r(ctx, f)) }
	case tokLAngle:
		return func(ctx *pisa.Context, f []uint64) uint64 { return b2u(f[slot] < r(ctx, f)) }
	case tokRAngle:
		return func(ctx *pisa.Context, f []uint64) uint64 { return b2u(f[slot] > r(ctx, f)) }
	case tokLe:
		return func(ctx *pisa.Context, f []uint64) uint64 { return b2u(f[slot] <= r(ctx, f)) }
	case tokGe:
		return func(ctx *pisa.Context, f []uint64) uint64 { return b2u(f[slot] >= r(ctx, f)) }
	}
	return nil
}

// compileBin lowers a binary operation. Short-circuit booleans become
// direct Go control flow; leaf operands (locals, constants) bake into a
// single closure with no inner calls — the dominant shapes in stateful
// per-packet code.
func (inst *Instance) compileBin(x *BinExpr) exprFn {
	if x.Op == tokAndAnd {
		l, r := inst.compileExpr(x.L), inst.compileExpr(x.R)
		return func(ctx *pisa.Context, frame []uint64) uint64 {
			if l(ctx, frame) == 0 {
				return 0
			}
			return b2u(r(ctx, frame) != 0)
		}
	}
	if x.Op == tokOrOr {
		l, r := inst.compileExpr(x.L), inst.compileExpr(x.R)
		return func(ctx *pisa.Context, frame []uint64) uint64 {
			if l(ctx, frame) != 0 {
				return 1
			}
			return b2u(r(ctx, frame) != 0)
		}
	}
	if lSlot, ok := slotOf(x.L); ok {
		if rv, ok := foldExpr(x.R); ok {
			if fn := binSlotConst(x.Op, lSlot, rv); fn != nil {
				return fn
			}
		}
		if rSlot, ok := slotOf(x.R); ok {
			if fn := binSlotSlot(x.Op, lSlot, rSlot); fn != nil {
				return fn
			}
		}
		if fn := binSlotExpr(x.Op, lSlot, inst.compileExpr(x.R)); fn != nil {
			return fn
		}
	}
	l := inst.compileExpr(x.L)
	if rv, ok := foldExpr(x.R); ok {
		switch x.Op {
		case tokPlus:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) + rv }
		case tokMinus:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) - rv }
		case tokStar:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) * rv }
		case tokSlash:
			if rv == 0 {
				return func(*pisa.Context, []uint64) uint64 { return 0 }
			}
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) / rv }
		case tokPercent:
			if rv == 0 {
				return func(*pisa.Context, []uint64) uint64 { return 0 }
			}
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) % rv }
		case tokAmp:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) & rv }
		case tokPipe:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) | rv }
		case tokCaret:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) ^ rv }
		case tokShl:
			sh := rv & 63
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) << sh }
		case tokShr:
			sh := rv & 63
			return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) >> sh }
		case tokEq:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) == rv) }
		case tokNeq:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) != rv) }
		case tokLAngle:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) < rv) }
		case tokRAngle:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) > rv) }
		case tokLe:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) <= rv) }
		case tokGe:
			return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) >= rv) }
		}
	}
	r := inst.compileExpr(x.R)
	switch x.Op {
	case tokPlus:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) + r(ctx, frame) }
	case tokMinus:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) - r(ctx, frame) }
	case tokStar:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) * r(ctx, frame) }
	case tokSlash:
		return func(ctx *pisa.Context, frame []uint64) uint64 {
			lv, rv := l(ctx, frame), r(ctx, frame)
			if rv == 0 {
				return 0
			}
			return lv / rv
		}
	case tokPercent:
		return func(ctx *pisa.Context, frame []uint64) uint64 {
			lv, rv := l(ctx, frame), r(ctx, frame)
			if rv == 0 {
				return 0
			}
			return lv % rv
		}
	case tokAmp:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) & r(ctx, frame) }
	case tokPipe:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) | r(ctx, frame) }
	case tokCaret:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) ^ r(ctx, frame) }
	case tokShl:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) << (r(ctx, frame) & 63) }
	case tokShr:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return l(ctx, frame) >> (r(ctx, frame) & 63) }
	case tokEq:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) == r(ctx, frame)) }
	case tokNeq:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) != r(ctx, frame)) }
	case tokLAngle:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) < r(ctx, frame)) }
	case tokRAngle:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) > r(ctx, frame)) }
	case tokLe:
		return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) <= r(ctx, frame)) }
	default: // tokGe — the parser admits no other binary operators
		return func(ctx *pisa.Context, frame []uint64) uint64 { return b2u(l(ctx, frame) >= r(ctx, frame)) }
	}
}

// compileField returns the specialized reader for one header/metadata
// field, mirroring evalField exactly (undecoded headers read as zero).
func compileField(f fieldID) exprFn {
	switch f {
	case fEthValid:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return b2u(ctx.Has(packet.LayerEthernet)) }
	case fIPValid:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return b2u(ctx.Has(packet.LayerIPv4)) }
	case fUDPValid:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return b2u(ctx.Has(packet.LayerUDP)) }
	case fTCPValid:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return b2u(ctx.Has(packet.LayerTCP)) }
	case fEthSrc:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerEthernet) {
				return 0
			}
			return ctx.Parsed.Eth.Src.Uint64()
		}
	case fEthDst:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerEthernet) {
				return 0
			}
			return ctx.Parsed.Eth.Dst.Uint64()
		}
	case fEthType:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerEthernet) {
				return 0
			}
			return uint64(ctx.Parsed.Eth.Type)
		}
	case fIPSrc:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerIPv4) {
				return 0
			}
			return uint64(ctx.Parsed.IP.Src)
		}
	case fIPDst:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerIPv4) {
				return 0
			}
			return uint64(ctx.Parsed.IP.Dst)
		}
	case fIPProto:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerIPv4) {
				return 0
			}
			return uint64(ctx.Parsed.IP.Protocol)
		}
	case fIPTTL:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerIPv4) {
				return 0
			}
			return uint64(ctx.Parsed.IP.TTL)
		}
	case fIPLen:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerIPv4) {
				return 0
			}
			return uint64(ctx.Parsed.IP.TotalLen)
		}
	case fIPTOS:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerIPv4) {
				return 0
			}
			return uint64(ctx.Parsed.IP.TOS)
		}
	case fUDPSport:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerUDP) {
				return 0
			}
			return uint64(ctx.Parsed.UDP.SrcPort)
		}
	case fUDPDport:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerUDP) {
				return 0
			}
			return uint64(ctx.Parsed.UDP.DstPort)
		}
	case fTCPSport:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerTCP) {
				return 0
			}
			return uint64(ctx.Parsed.TCP.SrcPort)
		}
	case fTCPDport:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerTCP) {
				return 0
			}
			return uint64(ctx.Parsed.TCP.DstPort)
		}
	case fTCPFlags:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if !ctx.Has(packet.LayerTCP) {
				return 0
			}
			return uint64(ctx.Parsed.TCP.Flags)
		}
	case fEvKind:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return uint64(ctx.Ev.Kind) }
	case fEvFlowID:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return ctx.Ev.FlowHash }
	case fEvPktLen:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return uint64(ctx.Ev.PktLen) }
	case fEvPort:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return uint64(uint16(int16(ctx.Ev.Port))) }
	case fEvQueue:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return uint64(ctx.Ev.Queue) }
	case fEvTimerID:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return uint64(ctx.Ev.TimerID) }
	case fEvLinkUp:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return b2u(ctx.Ev.Up) }
	case fEvData:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return ctx.Ev.Data }
	case fEvSeq:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return ctx.Ev.Seq }
	case fStdIngressPort:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if ctx.Pkt == nil {
				return 0xffff
			}
			return uint64(uint16(int16(ctx.Pkt.InPort)))
		}
	case fStdPktLen:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if ctx.Pkt == nil {
				return 0
			}
			return uint64(ctx.Pkt.Len())
		}
	case fStdNowNS:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return uint64(ctx.Now.Nanoseconds()) }
	case fStdCycle:
		return func(ctx *pisa.Context, _ []uint64) uint64 { return ctx.Cycle }
	case fStdRecirc:
		return func(ctx *pisa.Context, _ []uint64) uint64 {
			if ctx.Pkt == nil {
				return 0
			}
			return uint64(ctx.Pkt.Recirc)
		}
	}
	return func(*pisa.Context, []uint64) uint64 { return 0 }
}

// compileStmts fuses a statement list into one closure. Short lists (the
// common case) get fixed-arity chains with no per-event slice iteration.
func (inst *Instance) compileStmts(stmts []Stmt) stmtFn {
	fns := make([]stmtFn, len(stmts))
	for i, s := range stmts {
		fns[i] = inst.compileStmt(s)
	}
	switch len(fns) {
	case 0:
		return func(*pisa.Context, []uint64) bool { return false }
	case 1:
		return fns[0]
	case 2:
		f0, f1 := fns[0], fns[1]
		return func(ctx *pisa.Context, frame []uint64) bool {
			if f0(ctx, frame) {
				return true
			}
			return f1(ctx, frame)
		}
	case 3:
		f0, f1, f2 := fns[0], fns[1], fns[2]
		return func(ctx *pisa.Context, frame []uint64) bool {
			if f0(ctx, frame) {
				return true
			}
			if f1(ctx, frame) {
				return true
			}
			return f2(ctx, frame)
		}
	case 4:
		f0, f1, f2, f3 := fns[0], fns[1], fns[2], fns[3]
		return func(ctx *pisa.Context, frame []uint64) bool {
			if f0(ctx, frame) {
				return true
			}
			if f1(ctx, frame) {
				return true
			}
			if f2(ctx, frame) {
				return true
			}
			return f3(ctx, frame)
		}
	default:
		return func(ctx *pisa.Context, frame []uint64) bool {
			for _, f := range fns {
				if f(ctx, frame) {
					return true
				}
			}
			return false
		}
	}
}

// assignSlotConst fuses `dst = a op constant` — assignment, operator and
// operand loads — into one closure with no inner calls. mask is the
// destination width mask (all-ones for bit<64>). Returns nil for
// operators handled elsewhere.
func assignSlotConst(dst int, mask uint64, op tokKind, a int, rv uint64) stmtFn {
	switch op {
	case tokPlus:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] + rv) & mask; return false }
	case tokMinus:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] - rv) & mask; return false }
	case tokStar:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] * rv) & mask; return false }
	case tokSlash:
		if rv == 0 {
			return func(_ *pisa.Context, f []uint64) bool { f[dst] = 0; return false }
		}
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] / rv) & mask; return false }
	case tokPercent:
		if rv == 0 {
			return func(_ *pisa.Context, f []uint64) bool { f[dst] = 0; return false }
		}
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] % rv) & mask; return false }
	case tokAmp:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = f[a] & rv & mask; return false }
	case tokPipe:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] | rv) & mask; return false }
	case tokCaret:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] ^ rv) & mask; return false }
	case tokShl:
		sh := rv & 63
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] << sh) & mask; return false }
	case tokShr:
		sh := rv & 63
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] >> sh) & mask; return false }
	case tokEq:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] == rv) & mask; return false }
	case tokNeq:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] != rv) & mask; return false }
	case tokLAngle:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] < rv) & mask; return false }
	case tokRAngle:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] > rv) & mask; return false }
	case tokLe:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] <= rv) & mask; return false }
	case tokGe:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] >= rv) & mask; return false }
	}
	return nil
}

// assignSlotSlot fuses `dst = a op b` over locals into one closure.
func assignSlotSlot(dst int, mask uint64, op tokKind, a, b int) stmtFn {
	switch op {
	case tokPlus:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] + f[b]) & mask; return false }
	case tokMinus:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] - f[b]) & mask; return false }
	case tokStar:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] * f[b]) & mask; return false }
	case tokSlash:
		return func(_ *pisa.Context, f []uint64) bool {
			if f[b] == 0 {
				f[dst] = 0
			} else {
				f[dst] = (f[a] / f[b]) & mask
			}
			return false
		}
	case tokPercent:
		return func(_ *pisa.Context, f []uint64) bool {
			if f[b] == 0 {
				f[dst] = 0
			} else {
				f[dst] = (f[a] % f[b]) & mask
			}
			return false
		}
	case tokAmp:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = f[a] & f[b] & mask; return false }
	case tokPipe:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] | f[b]) & mask; return false }
	case tokCaret:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] ^ f[b]) & mask; return false }
	case tokShl:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] << (f[b] & 63)) & mask; return false }
	case tokShr:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = (f[a] >> (f[b] & 63)) & mask; return false }
	case tokEq:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] == f[b]) & mask; return false }
	case tokNeq:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] != f[b]) & mask; return false }
	case tokLAngle:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] < f[b]) & mask; return false }
	case tokRAngle:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] > f[b]) & mask; return false }
	case tokLe:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] <= f[b]) & mask; return false }
	case tokGe:
		return func(_ *pisa.Context, f []uint64) bool { f[dst] = b2u(f[a] >= f[b]) & mask; return false }
	}
	return nil
}

func (inst *Instance) compileStmt(s Stmt) stmtFn {
	switch st := s.(type) {
	case *AssignStmt:
		slot, mask := st.slot, st.mask
		if v, ok := foldExpr(st.Expr); ok {
			v &= mask
			return func(_ *pisa.Context, frame []uint64) bool {
				frame[slot] = v
				return false
			}
		}
		if src, ok := slotOf(st.Expr); ok {
			return func(_ *pisa.Context, frame []uint64) bool {
				frame[slot] = frame[src] & mask
				return false
			}
		}
		if bin, ok := st.Expr.(*BinExpr); ok {
			if a, ok := slotOf(bin.L); ok {
				if rv, ok := foldExpr(bin.R); ok {
					if fn := assignSlotConst(slot, mask, bin.Op, a, rv); fn != nil {
						return fn
					}
				}
				if b, ok := slotOf(bin.R); ok {
					if fn := assignSlotSlot(slot, mask, bin.Op, a, b); fn != nil {
						return fn
					}
				}
			}
		}
		ex := inst.compileExpr(st.Expr)
		if mask != ^uint64(0) {
			return func(ctx *pisa.Context, frame []uint64) bool {
				frame[slot] = ex(ctx, frame) & mask
				return false
			}
		}
		return func(ctx *pisa.Context, frame []uint64) bool {
			frame[slot] = ex(ctx, frame)
			return false
		}
	case *IfStmt:
		if v, ok := foldExpr(st.Cond); ok {
			// Dead branch eliminated: compile only the taken side.
			if v != 0 {
				return inst.compileStmts(st.Then)
			}
			return inst.compileStmts(st.Else)
		}
		cond := inst.compileExpr(st.Cond)
		then := inst.compileStmts(st.Then)
		if len(st.Else) == 0 {
			return func(ctx *pisa.Context, frame []uint64) bool {
				if cond(ctx, frame) != 0 {
					return then(ctx, frame)
				}
				return false
			}
		}
		els := inst.compileStmts(st.Else)
		return func(ctx *pisa.Context, frame []uint64) bool {
			if cond(ctx, frame) != 0 {
				return then(ctx, frame)
			}
			return els(ctx, frame)
		}
	case *CallStmt:
		return inst.compileCall(st)
	default: // *ReturnStmt
		return func(*pisa.Context, []uint64) bool { return true }
	}
}

// compileCall lowers extern method calls with the extern bound at
// compile (instantiate) time, and primitives to direct context mutation.
func (inst *Instance) compileCall(st *CallStmt) stmtFn {
	switch st.kind {
	case callRegRead:
		r := inst.regs[st.reg]
		idx := inst.compileExpr(st.Args[0])
		slot := st.arg0Out
		if mask := inst.regWidth[st.reg]; mask != ^uint64(0) {
			return func(ctx *pisa.Context, frame []uint64) bool {
				frame[slot] = r.Read(ctx, uint32(idx(ctx, frame))) & mask
				return false
			}
		}
		return func(ctx *pisa.Context, frame []uint64) bool {
			frame[slot] = r.Read(ctx, uint32(idx(ctx, frame)))
			return false
		}
	case callRegWrite:
		r := inst.regs[st.reg]
		idx := inst.compileExpr(st.Args[0])
		val := inst.compileExpr(st.Args[1])
		mask := inst.regWidth[st.reg]
		return func(ctx *pisa.Context, frame []uint64) bool {
			r.Write(ctx, uint32(idx(ctx, frame)), val(ctx, frame)&mask)
			return false
		}
	case callRegAdd:
		r := inst.regs[st.reg]
		idx := inst.compileExpr(st.Args[0])
		delta := inst.compileExpr(st.Args[1])
		return func(ctx *pisa.Context, frame []uint64) bool {
			r.Add(ctx, uint32(idx(ctx, frame)), int64(delta(ctx, frame)))
			return false
		}
	case callCounterCount:
		cnt := inst.cnts[st.cnt]
		idx := inst.compileExpr(st.Args[0])
		if len(st.Args) == 2 {
			n := inst.compileExpr(st.Args[1])
			return func(ctx *pisa.Context, frame []uint64) bool {
				cnt.Count(uint32(idx(ctx, frame)), int(n(ctx, frame)))
				return false
			}
		}
		return func(ctx *pisa.Context, frame []uint64) bool {
			n := 0
			if ctx.Pkt != nil {
				n = ctx.Pkt.Len()
			}
			cnt.Count(uint32(idx(ctx, frame)), n)
			return false
		}
	case callTableApply:
		t := inst.tbls[st.tbl]
		return func(ctx *pisa.Context, _ []uint64) bool {
			t.Apply(ctx)
			return false
		}
	}
	return inst.compilePrimitive(st)
}

func (inst *Instance) compilePrimitive(st *CallStmt) stmtFn {
	switch st.Method {
	case "forward":
		if v, ok := foldExpr(st.Args[0]); ok {
			port := int(int64(v))
			return func(ctx *pisa.Context, _ []uint64) bool {
				ctx.EgressPort = port
				return false
			}
		}
		a0 := inst.compileExpr(st.Args[0])
		return func(ctx *pisa.Context, frame []uint64) bool {
			ctx.EgressPort = int(int64(a0(ctx, frame)))
			return false
		}
	case "drop":
		return func(ctx *pisa.Context, _ []uint64) bool {
			ctx.Drop()
			return false
		}
	case "set_queue":
		a0 := inst.compileExpr(st.Args[0])
		return func(ctx *pisa.Context, frame []uint64) bool {
			ctx.Queue = int(a0(ctx, frame))
			return false
		}
	case "set_rank":
		a0 := inst.compileExpr(st.Args[0])
		return func(ctx *pisa.Context, frame []uint64) bool {
			ctx.Rank = a0(ctx, frame)
			return false
		}
	case "recirculate":
		return func(ctx *pisa.Context, _ []uint64) bool {
			ctx.Recirculate = true
			return false
		}
	case "raise":
		a0 := inst.compileExpr(st.Args[0])
		return func(ctx *pisa.Context, frame []uint64) bool {
			ctx.RaiseUser(a0(ctx, frame))
			return false
		}
	case "set_tos":
		a0 := inst.compileExpr(st.Args[0])
		return func(ctx *pisa.Context, frame []uint64) bool {
			ctx.SetTOS(uint8(a0(ctx, frame)))
			return false
		}
	case "trim":
		return func(ctx *pisa.Context, _ []uint64) bool {
			ctx.Trim()
			return false
		}
	case "hash":
		fields := make([]exprFn, len(st.Args)-1)
		for i := range fields {
			fields[i] = inst.compileExpr(st.Args[i+1])
		}
		// The scratch slice is per-CallStmt and safe to reuse: Hash
		// consumes it before the closure returns, and the handler cannot
		// re-enter itself mid-statement.
		buf := make([]uint64, len(fields))
		slot := st.arg0Out
		return func(ctx *pisa.Context, frame []uint64) bool {
			for i, f := range fields {
				buf[i] = f(ctx, frame)
			}
			frame[slot] = pisa.Hash(0, buf...)
			return false
		}
	case "emit_report":
		args := make([]exprFn, len(st.Args))
		for i := range args {
			args[i] = inst.compileExpr(st.Args[i])
		}
		nArgs := len(args)
		return func(ctx *pisa.Context, frame []uint64) bool {
			port := int(args[0](ctx, frame))
			rep := &packet.Report{
				Kind:   uint8(args[1](ctx, frame)),
				Switch: inst.switchID,
				Seq:    inst.reportSeq,
			}
			inst.reportSeq++
			if nArgs > 2 {
				rep.V0 = args[2](ctx, frame)
			}
			if nArgs > 3 {
				rep.V1 = uint32(args[3](ctx, frame))
			}
			// The frame buffer must be freshly allocated: a nested Apply
			// (generated-packet fan-out) may run before the data plane
			// copies ctx.Generated, so a shared scratch buffer here would
			// corrupt in-flight reports. Emit paths are off the
			// zero-alloc steady-state pins.
			data := packet.BuildControlFrame(packet.Broadcast,
				packet.MACFromUint64(uint64(inst.switchID)), rep)
			ctx.Emit(data, port)
			return false
		}
	default: // no_op
		return func(*pisa.Context, []uint64) bool { return false }
	}
}
