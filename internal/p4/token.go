// Package p4 implements µP4, a compact P4-16-inspired language for
// writing event-driven data-plane programs, together with its compiler
// and interpreter. µP4 is the "thin P4 tooling" substitution for the
// paper's P4 + Xilinx SDNet toolchain (DESIGN.md §2): it expresses
// exactly the programming model the paper proposes — controls bound to
// data-plane events, shared_register externs whose event-thread updates
// aggregate per Figure 3, match-action tables, and the hash extern — and
// compiles to handlers executed by the pisa/core pipeline model.
//
// The paper's running example compiles directly:
//
//	const NUM_REGS = 1024;
//	const FLOW_THRESH = 15000;
//
//	shared_register<bit<32>>(NUM_REGS) bufSize_reg;
//
//	control Ingress {
//	    bit<32> bufSize;
//	    bit<32> flowID;
//	    apply {
//	        hash(flowID, hdr.ip.src, hdr.ip.dst);
//	        bufSize_reg.read(flowID, bufSize);
//	        if (bufSize > FLOW_THRESH) {
//	            raise(flowID);      // microburst culprit!
//	        }
//	        forward(1);
//	    }
//	}
//
//	control Enqueue {
//	    apply { bufSize_reg.add(ev.flow_id, ev.pkt_len); }
//	}
//
//	control Dequeue {
//	    apply { bufSize_reg.add(ev.flow_id, 0 - ev.pkt_len); }
//	}
package p4

import "fmt"

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString

	// Punctuation.
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLAngle // <
	tokRAngle // >
	tokSemi
	tokComma
	tokColon
	tokDot
	tokAssign // =

	// Operators.
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokAmp
	tokPipe
	tokCaret
	tokTilde
	tokBang
	tokShl    // <<
	tokShr    // >>
	tokEq     // ==
	tokNeq    // !=
	tokLe     // <=
	tokGe     // >=
	tokAndAnd // &&
	tokOrOr   // ||

	// Keywords.
	tokConst
	tokControl
	tokApply
	tokIf
	tokElse
	tokBit
	tokTable
	tokKey
	tokActions
	tokDefaultAction
	tokAction
	tokExact
	tokLpm
	tokTernary
	tokSharedRegister
	tokRegister
	tokCounter
	tokReturn
)

var keywords = map[string]tokKind{
	"const":           tokConst,
	"control":         tokControl,
	"apply":           tokApply,
	"if":              tokIf,
	"else":            tokElse,
	"bit":             tokBit,
	"table":           tokTable,
	"key":             tokKey,
	"actions":         tokActions,
	"default_action":  tokDefaultAction,
	"action":          tokAction,
	"exact":           tokExact,
	"lpm":             tokLpm,
	"ternary":         tokTernary,
	"shared_register": tokSharedRegister,
	"register":        tokRegister,
	"counter":         tokCounter,
	"return":          tokReturn,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// token is one lexeme.
type token struct {
	kind tokKind
	text string
	num  uint64
	pos  Pos
}

func (t token) String() string {
	if t.text != "" {
		return t.text
	}
	return fmt.Sprintf("token(%d)", t.kind)
}

// Error is a compile error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekc() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) nextc() byte {
	c := l.peekc()
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpace consumes whitespace and // and /* */ comments.
func (l *lexer) skipSpace() error {
	for {
		c := l.peekc()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.nextc()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.peekc() != 0 && l.peekc() != '\n' {
				l.nextc()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			start := l.pos()
			l.nextc()
			l.nextc()
			for {
				if l.peekc() == 0 {
					return errf(start, "unterminated block comment")
				}
				if l.peekc() == '*' && l.off+1 < len(l.src) && l.src[l.off+1] == '/' {
					l.nextc()
					l.nextc()
					break
				}
				l.nextc()
			}
		default:
			return nil
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	pos := l.pos()
	c := l.peekc()
	if c == 0 {
		return token{kind: tokEOF, pos: pos}, nil
	}
	switch {
	case isIdentStart(c):
		start := l.off
		for isIdent(l.peekc()) {
			l.nextc()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return token{kind: k, text: text, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil
	case isDigit(c):
		start := l.off
		var v uint64
		if c == '0' && l.off+1 < len(l.src) && (l.src[l.off+1] == 'x' || l.src[l.off+1] == 'X') {
			l.nextc()
			l.nextc()
			if !isHex(l.peekc()) {
				return token{}, errf(pos, "malformed hex literal")
			}
			for isHex(l.peekc()) || l.peekc() == '_' {
				d := l.nextc()
				if d == '_' {
					continue
				}
				var dv uint64
				switch {
				case d >= '0' && d <= '9':
					dv = uint64(d - '0')
				case d >= 'a' && d <= 'f':
					dv = uint64(d-'a') + 10
				default:
					dv = uint64(d-'A') + 10
				}
				v = v<<4 | dv
			}
		} else {
			for isDigit(l.peekc()) || l.peekc() == '_' {
				d := l.nextc()
				if d == '_' {
					continue
				}
				v = v*10 + uint64(d-'0')
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.off], num: v, pos: pos}, nil
	}
	l.nextc()
	two := func(second byte, k2, k1 tokKind) (token, error) {
		if l.peekc() == second {
			l.nextc()
			return token{kind: k2, text: string([]byte{c, second}), pos: pos}, nil
		}
		return token{kind: k1, text: string(c), pos: pos}, nil
	}
	switch c {
	case '(':
		return token{kind: tokLParen, text: "(", pos: pos}, nil
	case ')':
		return token{kind: tokRParen, text: ")", pos: pos}, nil
	case '{':
		return token{kind: tokLBrace, text: "{", pos: pos}, nil
	case '}':
		return token{kind: tokRBrace, text: "}", pos: pos}, nil
	case ';':
		return token{kind: tokSemi, text: ";", pos: pos}, nil
	case ',':
		return token{kind: tokComma, text: ",", pos: pos}, nil
	case ':':
		return token{kind: tokColon, text: ":", pos: pos}, nil
	case '.':
		return token{kind: tokDot, text: ".", pos: pos}, nil
	case '+':
		return token{kind: tokPlus, text: "+", pos: pos}, nil
	case '-':
		return token{kind: tokMinus, text: "-", pos: pos}, nil
	case '*':
		return token{kind: tokStar, text: "*", pos: pos}, nil
	case '/':
		return token{kind: tokSlash, text: "/", pos: pos}, nil
	case '%':
		return token{kind: tokPercent, text: "%", pos: pos}, nil
	case '~':
		return token{kind: tokTilde, text: "~", pos: pos}, nil
	case '^':
		return token{kind: tokCaret, text: "^", pos: pos}, nil
	case '&':
		return two('&', tokAndAnd, tokAmp)
	case '|':
		return two('|', tokOrOr, tokPipe)
	case '=':
		return two('=', tokEq, tokAssign)
	case '!':
		return two('=', tokNeq, tokBang)
	case '<':
		if l.peekc() == '<' {
			l.nextc()
			return token{kind: tokShl, text: "<<", pos: pos}, nil
		}
		return two('=', tokLe, tokLAngle)
	case '>':
		if l.peekc() == '>' {
			l.nextc()
			return token{kind: tokShr, text: ">>", pos: pos}, nil
		}
		return two('=', tokGe, tokRAngle)
	}
	return token{}, errf(pos, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
