package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "aqm", Paper: "§3 Traffic Management: the AQM family (RED, AFD, FRED, PIE) on event-driven signals", Run: AQMFamily})
}

// AQMFamily runs the four AQM algorithms the paper names — RED, AFD,
// FRED and PIE — plus a tail-drop baseline on one shared scenario: a
// 12 Gb/s hog and a 100 Mb/s mouse into one 10 Gb/s egress. Every AQM
// consumes congestion signals that only buffer events provide (paper §3:
// "AQM is a natural use case of this approach, and was one of the
// motivating applications for our work").
func AQMFamily() *Result {
	res := &Result{
		ID:    "aqm",
		Title: "AQM algorithms on event-derived congestion signals (paper §3)",
		Cols: []string{"policy", "mean queue (KB)", "mouse delivery", "hog delivery",
			"link utilization"},
	}
	policies := []string{"tail-drop", "RED", "PIE", "AFD", "FRED"}
	rows := RunParallel(len(policies), func(trial int) []string {
		return append([]string{policies[trial]}, runAQM(policies[trial])...)
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("scenario: 12 Gb/s hog (1500B) + 100 Mb/s mouse (300B) into one 10G egress for 50ms; 1MB buffer")
	res.Notef("tail-drop fills the whole buffer (max delay) and drops whatever arrives at the brim, mouse included")
	res.Notef("the AQMs keep the queue near their setpoints and protect (AFD/FRED) or statistically spare (RED/PIE) the mouse")
	return res
}

func runAQM(policy string) []string {
	const horizon = 50 * sim.Millisecond
	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.EventDriven(), sched)

	var prog *pisa.Program
	switch policy {
	case "tail-drop":
		prog = pisa.NewProgram("taildrop")
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = 1 })
	case "RED":
		_, p := apps.NewRED(apps.REDConfig{
			MinThresh: 20000, MaxThresh: 60000, MaxP256: 128, EgressPort: 1,
		}, sim.NewRNG(11))
		prog = p
	case "PIE":
		pie, p := apps.NewPIE(apps.PIEConfig{
			EgressPort: 1, TargetDelay: 50 * sim.Microsecond, Update: sim.Millisecond,
		}, sim.NewRNG(12))
		prog = p
		defer func() { _ = pie }()
	case "AFD":
		_, p := apps.NewAFD(apps.AFDConfig{
			EgressPort: 1, Slots: 512, Interval: sim.Millisecond, TargetBytes: 40000,
		}, sim.NewRNG(13))
		prog = p
	case "FRED":
		_, p := apps.NewFRED(apps.FREDConfig{
			Slots: 512, MinQBytes: 3000, TotalLimit: 40000, EgressPort: 1, ReportPort: -1,
		})
		prog = p
	}
	sw.MustLoad(prog)
	if prog.Handles(events.TimerExpiration) {
		mustOK(sw.ConfigureTimer(0, sim.Millisecond))
	}

	hog := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 80, Proto: packet.ProtoUDP}
	mouse := packet.Flow{Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 2, DstPort: 80, Proto: packet.ProtoUDP}
	mouseHash := mouse.Hash()

	var mouseTx, hogTx, txBytes uint64
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		txBytes += uint64(pkt.Len()) + core.WireOverhead
		if f, ok := packet.FlowOf(pkt.Data); ok {
			if f.Hash() == mouseHash {
				mouseTx++
			} else {
				hogTx++
			}
		}
	}
	rng := sim.NewRNG(14)
	gh := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	gh.StartCBR(workload.CBRConfig{Flow: hog, Size: workload.FixedSize(1500),
		Rate: 12 * sim.Gbps, Until: horizon})
	gm := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
	gm.StartCBR(workload.CBRConfig{Flow: mouse, Size: workload.FixedSize(300),
		Rate: 100 * sim.Mbps, Until: horizon})

	queue := sim.NewStats()
	sched.Every(100*sim.Microsecond, func() {
		queue.Add(float64(sw.TM().PortBytes(1)))
	})
	sched.Run(horizon)
	mustConserve(sw)

	util := float64(txBytes) * 8 / horizon.Seconds() / float64(10*sim.Gbps)
	return []string{
		fmt.Sprintf("%.0f", queue.Mean()/1024),
		pct(float64(mouseTx), float64(gm.SentPackets)),
		pct(float64(hogTx), float64(gh.SentPackets)),
		fmt.Sprintf("%.1f%%", 100*util),
	}
}
