package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "projects", Paper: "§5 student projects (liveness, flow rate, congestion signals, FRR)", Run: Projects})
}

// Projects reproduces the four §5 student applications end-to-end and
// reports each one's headline measurement.
func Projects() *Result {
	res := &Result{
		ID:    "projects",
		Title: "The four §5 student projects on the SUME Event Switch model",
		Cols:  []string{"project", "measurement", "value"},
	}

	// 1. Liveness monitoring: detection latency after a neighbor dies.
	{
		sched := sim.NewScheduler()
		net := netsim.New(sched)
		mon := core.New(core.Config{Name: "monitor"}, core.EventDriven(), sched)
		nbr := core.New(core.Config{Name: "neighbor"}, core.EventDriven(), sched)
		period := sim.Millisecond
		lv, prog := apps.NewLiveness(apps.LivenessConfig{
			SwitchID: 1, ProbePorts: []int{1}, Period: period, DeadAfter: 3, MonitorPort: 0,
		})
		mon.MustLoad(prog)
		nbr.MustLoad(apps.EchoResponder(2, 0))
		net.AddSwitch(mon)
		net.AddSwitch(nbr)
		link := net.Connect(mon, 1, nbr, 1, 10*sim.Microsecond)
		mustOK(lv.Arm(mon))
		failAt := 20 * sim.Millisecond
		sched.At(failAt, func() { net.Fail(link) })
		sched.Run(60 * sim.Millisecond)
		faults.MustAudit(net)
		if len(lv.Notifications) == 1 {
			latency := lv.Notifications[0].At - failAt
			res.AddRow("Liveness monitoring", "failure detection latency", latency.String())
			res.AddRow("Liveness monitoring", "control-plane involvement", "none (data-plane echoes + report)")
		} else {
			res.AddRow("Liveness monitoring", "FAILED", fmt.Sprintf("%d notifications", len(lv.Notifications)))
		}
	}

	// 2. Time-windowed flow-rate measurement accuracy.
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{}, core.EventDriven(), sched)
		fr, prog := apps.NewFlowRate(apps.FlowRateConfig{Slots: 64, Buckets: 10, EgressPort: 1})
		sw.MustLoad(prog)
		mustOK(fr.Arm(sw, sim.Millisecond))
		rng := sim.NewRNG(2)
		targets := []float64{1e6, 4e6, 16e6} // bytes/s
		var flows []packet.Flow
		for i, target := range targets {
			fl := packet.Flow{
				Src: packet.IP4(10, 0, 0, byte(10+i)), Dst: packet.IP4(10, 1, 0, 1),
				SrcPort: uint16(2000 + i), DstPort: 80, Proto: packet.ProtoUDP,
			}
			flows = append(flows, fl)
			g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(i%4, d) })
			// Offered rate includes 24B wire overhead per 1000B frame.
			g.StartCBR(workload.CBRConfig{
				Flow: fl, Size: workload.FixedSize(1000),
				Rate: sim.Rate(target*8) * (1000 + 24) / 1000, Until: 50 * sim.Millisecond,
			})
		}
		sched.Run(50 * sim.Millisecond)
		mustConserve(sw)
		worst := 0.0
		for i, fl := range flows {
			got := fr.Rate(fr.SlotOf(fl.Hash()))
			relErr := (got - targets[i]) / targets[i]
			if relErr < 0 {
				relErr = -relErr
			}
			if relErr > worst {
				worst = relErr
			}
		}
		res.AddRow("Time-windowed flow rate", "worst relative error (1/4/16 MB/s flows)", pct(worst, 1))
	}

	// 3. Congestion signals (FRED-like AQM): fairness between a hog and
	// a mouse sharing one egress.
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
		fr, prog := apps.NewFRED(apps.FREDConfig{
			Slots: 256, MinQBytes: 3000, TotalLimit: 30000, EgressPort: 1, ReportPort: -1,
		})
		sw.MustLoad(prog)
		mustOK(fr.Arm(sw, sim.Millisecond))
		rng := sim.NewRNG(3)
		hog := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1), SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
		mouse := packet.Flow{Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, 1, 0, 1), SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP}
		gh := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
		gh.StartCBR(workload.CBRConfig{Flow: hog, Size: workload.FixedSize(1500), Rate: 12 * sim.Gbps, Until: 20 * sim.Millisecond})
		gm := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
		gm.StartCBR(workload.CBRConfig{Flow: mouse, Size: workload.FixedSize(300), Rate: 200 * sim.Mbps, Until: 20 * sim.Millisecond})
		mouseSlot := uint32(mouse.Hash() % 256)
		var mouseTx, hogTx uint64
		sw.OnTransmit = func(port int, pkt *packet.Packet) {
			if f, ok := packet.FlowOf(pkt.Data); ok {
				if uint32(f.Hash()%256) == mouseSlot {
					mouseTx++
				} else {
					hogTx++
				}
			}
		}
		sched.Run(25 * sim.Millisecond)
		mustConserve(sw)
		res.AddRow("Congestion signals (AQM)", "hog packets dropped by policy", d(fr.Dropped))
		res.AddRow("Congestion signals (AQM)", "mouse delivery", pct(float64(mouseTx), float64(gm.SentPackets)))
		res.AddRow("Congestion signals (AQM)", "active-flow estimate at end", d(fr.ActiveFlows()))
	}

	// 4. Fast re-route: packets lost between failure and re-route.
	{
		sched := sim.NewScheduler()
		net := netsim.New(sched)
		s1 := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched)
		s2 := core.New(core.Config{Name: "s2"}, core.EventDriven(), sched)
		s3 := core.New(core.Config{Name: "s3"}, core.EventDriven(), sched)
		fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1), SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
		dst := int(uint32(fl.Dst) >> 16)
		r, prog := apps.NewFRR(apps.FRRConfig{
			Primary: map[int]int{dst: 1},
			Backup:  map[int]int{dst: 2},
		})
		s1.MustLoad(prog)
		s2.MustLoad(forwardAllTo(3))
		s3.MustLoad(forwardAllTo(3))
		net.AddSwitch(s1)
		net.AddSwitch(s2)
		net.AddSwitch(s3)
		sink := net.NewHost("sink", fl.Dst)
		src := net.NewHost("src", fl.Src)
		net.Attach(src, s1, 0, 0)
		primary := net.Connect(s1, 1, s2, 0, 10*sim.Microsecond)
		net.Connect(s1, 2, s3, 0, 10*sim.Microsecond)
		net.Attach(sink, s2, 3, 0)
		// s3's port 3 also reaches the sink in a real topology; attach a
		// second sink interface via s3.
		sink2 := net.NewHost("sink2", fl.Dst)
		net.Attach(sink2, s3, 3, 0)

		rng := sim.NewRNG(4)
		g := workload.NewGen(sched, rng, func(d []byte) { src.Send(d) })
		g.StartCBR(workload.CBRConfig{Flow: fl, Size: workload.FixedSize(500), Rate: sim.Gbps, Until: 20 * sim.Millisecond})
		failAt := 10 * sim.Millisecond
		sched.At(failAt, func() { net.Fail(primary) })
		sched.Run(25 * sim.Millisecond)
		faults.MustAudit(net)
		delivered := sink.RxPackets + sink2.RxPackets
		lost := g.SentPackets - delivered
		res.AddRow("Fast re-route", "packets lost at failover", d(lost))
		res.AddRow("Fast re-route", "failovers / backup-routed packets",
			fmt.Sprintf("%d / %d", r.Failovers, r.RoutedBackup))
	}

	res.Notef("liveness detection latency = (DeadAfter+1) probe periods after failure, with zero control traffic")
	res.Notef("fast re-route loses only packets already in flight on the failed link at the instant of failure")
	return res
}

// forwardAllTo returns a trivial program forwarding everything to port.
func forwardAllTo(port int) *pisa.Program {
	p := pisa.NewProgram("fwd-all")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = port })
	return p
}
