package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/telemetry"
)

// Report is the machine-readable record of one experiment run, written
// as BENCH_<experiment>.json. The deterministic table text lives in
// Result; the report adds the host-dependent half — wall time, allocation
// churn, and any wall-clock Perf samples the experiment recorded.
type Report struct {
	Experiment  string    `json:"experiment"`
	Title       string    `json:"title"`
	WallSeconds float64   `json:"wall_seconds"`
	AllocBytes  uint64    `json:"alloc_bytes"`
	Mallocs     uint64    `json:"mallocs"`
	Parallelism int       `json:"parallelism"`
	Domains     int       `json:"domains"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	// CyclesPerSec aggregates the Perf samples (total simulated switch
	// cycles over total sample wall time); 0 when the experiment records
	// no samples.
	CyclesPerSec float64      `json:"cycles_per_sec,omitempty"`
	Perf         []PerfSample `json:"perf,omitempty"`
	// Telemetry summarizes the runs collected while the experiment ran
	// (present only when evbench telemetry is enabled). The digest is the
	// deterministic half — it must match across -parallel and -domains;
	// the record counts are deterministic too, the summary merely compact.
	Telemetry *telemetry.Summary `json:"telemetry,omitempty"`
	Table     string             `json:"table"`
}

// RunReport executes the experiment under wall-clock and allocation
// measurement and returns its Result alongside the filled-in Report.
func RunReport(e Experiment) (*Result, *Report) {
	if TelemetryEnabled() {
		// Scope the telemetry section to this experiment's trials.
		ResetTelemetryRuns()
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res := e.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	rep := &Report{
		Experiment:  e.ID,
		Title:       res.Title,
		WallSeconds: wall.Seconds(),
		AllocBytes:  m1.TotalAlloc - m0.TotalAlloc,
		Mallocs:     m1.Mallocs - m0.Mallocs,
		Parallelism: Parallelism(),
		Domains:     Domains(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Perf:        res.Perf,
		Table:       res.String(),
	}
	if TelemetryEnabled() {
		if sum, err := TelemetrySummary(); err == nil && sum.Runs > 0 {
			rep.Telemetry = &sum
		}
	}
	var cycles uint64
	var perfWall float64
	for _, p := range res.Perf {
		cycles += p.Cycles
		perfWall += p.WallSeconds
	}
	if perfWall > 0 {
		rep.CyclesPerSec = float64(cycles) / perfWall
	}
	return res, rep
}

// WriteReport writes the report as BENCH_<experiment>.json under dir and
// returns the file path.
func WriteReport(dir string, rep *Report) (string, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rep.Experiment+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
