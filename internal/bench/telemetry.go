package bench

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/telemetry"
)

// Experiment telemetry: evbench turns collection on with EnableTelemetry,
// instrumented experiments draw one collector per trial via
// trialCollector, and the harness exports every labelled collector after
// the experiment returns. Trials may finish in any order under
// RunParallel — the export layer sorts by label, so trace and metrics
// files are byte-identical at every -parallel and -domains setting.
var telState struct {
	mu   sync.Mutex
	on   bool
	opts telemetry.Options
	runs []telemetry.RunExport
	sink *telemetry.StreamSink
}

// EnableTelemetry arms per-trial collection for instrumented experiments
// and discards any previously collected runs.
func EnableTelemetry(opts telemetry.Options) {
	telState.mu.Lock()
	defer telState.mu.Unlock()
	telState.on = true
	telState.opts = opts
	telState.runs = nil
}

// DisableTelemetry turns collection off and discards collected runs.
func DisableTelemetry() {
	telState.mu.Lock()
	defer telState.mu.Unlock()
	telState.on = false
	telState.runs = nil
}

// TelemetryEnabled reports whether experiments should instrument.
func TelemetryEnabled() bool {
	telState.mu.Lock()
	defer telState.mu.Unlock()
	return telState.on
}

// ResetTelemetryRuns discards collected runs but keeps collection armed.
// RunReport calls it before each experiment so the report's telemetry
// section covers exactly that experiment's trials.
func ResetTelemetryRuns() {
	telState.mu.Lock()
	defer telState.mu.Unlock()
	telState.runs = nil
}

// AttachStreamSink registers a streaming sink: every collector created by
// trialCollector from now on is attached to it, so traces and metric
// snapshots land on disk while trials run. The caller must have enabled
// telemetry with Options.Live (the sink's collectors are read from a
// wall-clock goroutine). Pass nil to detach.
func AttachStreamSink(sk *telemetry.StreamSink) {
	telState.mu.Lock()
	defer telState.mu.Unlock()
	if sk != nil && !telState.opts.Live {
		panic("bench: AttachStreamSink needs EnableTelemetry with Options.Live")
	}
	telState.sink = sk
}

// trialCollector returns a fresh collector registered under label, or nil
// when telemetry is off. Labels must be derived from the trial index
// ("<exp>/t00"), never from completion order; RunParallel workers may
// call this concurrently.
func trialCollector(label string) *telemetry.Collector {
	telState.mu.Lock()
	defer telState.mu.Unlock()
	if !telState.on {
		return nil
	}
	c := telemetry.New(telState.opts)
	telState.runs = append(telState.runs, telemetry.RunExport{Label: label, C: c})
	if telState.sink != nil {
		telState.sink.Attach(label, c)
	}
	return c
}

// TelemetryRuns returns the collected runs sorted by label.
func TelemetryRuns() []telemetry.RunExport {
	telState.mu.Lock()
	runs := append([]telemetry.RunExport(nil), telState.runs...)
	telState.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].Label < runs[j].Label })
	return runs
}

// WriteTelemetryTrace writes the collected trace to path: JSONL when the
// path ends in ".jsonl", Chrome/Perfetto trace-event JSON otherwise.
func WriteTelemetryTrace(path string) error {
	runs := TelemetryRuns()
	if strings.HasSuffix(path, ".jsonl") {
		return telemetry.WriteJSONL(path, runs)
	}
	return telemetry.WriteChromeTrace(path, runs)
}

// WriteTelemetryMetrics writes the collected metrics document to path.
func WriteTelemetryMetrics(path string) error {
	return telemetry.WriteMetrics(path, TelemetryRuns())
}

// TelemetrySummary reduces the collected runs for BENCH_<id>.json.
func TelemetrySummary() (telemetry.Summary, error) {
	return telemetry.Summarize(TelemetryRuns())
}
