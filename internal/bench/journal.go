package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal persists completed trial results so an interrupted campaign
// can resume without re-running finished work: each RunParallel trial
// that completes is appended as one JSON line, and a later run with the
// same journal loads those results instead of recomputing them. Because
// trials are deterministic, the resumed campaign's tables are
// byte-identical to an uninterrupted run's.
//
// Entries are keyed by (call, trial): call is the ordinal of the
// RunParallel invocation within the experiment (experiments execute
// deterministically, so invocation k of a resumed run lines up with
// invocation k of the interrupted one) and trial the index within it.
// Results must round-trip through encoding/json; an entry that does not
// re-encode to its stored bytes is ignored and the trial re-runs, so a
// lossy type costs time, never correctness.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	exp    string
	loaded map[journalKey]json.RawMessage
	calls  int
	hits   int
}

type journalKey struct {
	Call  int
	Trial int
}

type journalLine struct {
	// Header line: experiment id plus the effective -domains setting
	// (first line of the file). Tables are byte-identical at every domain
	// count, but Perf samples are not — a campaign resumed under a
	// different partitioning would silently mix measurement regimes, so
	// (mirroring the checkpoint config-digest check) the journal refuses.
	Experiment string `json:"experiment,omitempty"`
	Domains    string `json:"domains,omitempty"`
	// Entry lines: one completed trial.
	Call   int             `json:"call"`
	Trial  int             `json:"trial"`
	Result json.RawMessage `json:"result,omitempty"`
}

// OpenJournal opens (or creates) a campaign journal for the given
// experiment. An existing journal written for a different experiment is
// refused; a torn trailing line (the process died mid-append) is
// dropped.
func OpenJournal(path, experiment string) (*Journal, error) {
	j := &Journal{exp: experiment, loaded: make(map[journalKey]json.RawMessage)}
	if buf, err := os.ReadFile(path); err == nil && len(buf) > 0 {
		sc := bufio.NewScanner(bytes.NewReader(buf))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		first := true
		for sc.Scan() {
			var ln journalLine
			if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
				break // torn tail: keep what parsed so far
			}
			if first {
				first = false
				if ln.Experiment != experiment {
					return nil, fmt.Errorf("bench: journal %s belongs to experiment %q, not %q", path, ln.Experiment, experiment)
				}
				if ln.Domains != "" && ln.Domains != DomainsLabel() {
					return nil, fmt.Errorf("bench: journal %s was recorded with -domains %s; rerun with the same setting or start a new journal (now %s)",
						path, ln.Domains, DomainsLabel())
				}
				continue
			}
			if ln.Result != nil {
				j.loaded[journalKey{ln.Call, ln.Trial}] = ln.Result
			}
		}
	} else if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("bench: reading journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: opening journal: %w", err)
	}
	j.f = f
	if len(j.loaded) == 0 {
		st, err := f.Stat()
		if err == nil && st.Size() == 0 {
			hdr, _ := json.Marshal(journalLine{Experiment: experiment, Domains: DomainsLabel()})
			if _, err := f.Write(append(hdr, '\n')); err != nil {
				f.Close()
				return nil, fmt.Errorf("bench: writing journal header: %w", err)
			}
		}
	}
	return j, nil
}

// Hits returns how many trial results were served from the journal
// instead of recomputed.
func (j *Journal) Hits() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Recorded returns how many trial results the journal holds.
func (j *Journal) Recorded() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.loaded)
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// nextCall allocates the ordinal for one RunParallel invocation.
func (j *Journal) nextCall() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	c := j.calls
	j.calls++
	return c
}

func (j *Journal) get(call, trial int) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.loaded[journalKey{call, trial}]
	if ok {
		j.hits++
	}
	return raw, ok
}

func (j *Journal) put(call, trial int, raw json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.loaded[journalKey{call, trial}] = raw
	if j.f != nil {
		b, _ := json.Marshal(journalLine{Call: call, Trial: trial, Result: raw})
		j.f.Write(append(b, '\n'))
	}
}

// journalLookup decodes a recorded trial result. The decoded value must
// re-encode to the stored bytes (JSON fidelity); otherwise the entry is
// rejected and the caller re-runs the trial.
func journalLookup[T any](j *Journal, call, trial int) (T, bool) {
	var v T
	raw, ok := j.get(call, trial)
	if !ok {
		return v, false
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, false
	}
	re, err := json.Marshal(v)
	if err != nil || !bytes.Equal(re, raw) {
		var zero T
		return zero, false
	}
	return v, true
}

// journalRecord stores a completed trial. Types that cannot marshal are
// silently skipped: the campaign still runs, it just cannot resume.
func journalRecord[T any](j *Journal, call, trial int, v T) {
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	j.put(call, trial, raw)
}

// activeJournal is the campaign journal RunParallel consults, set by the
// evbench -resume flag for the duration of one experiment.
var (
	journalMu     sync.Mutex
	activeJournal *Journal
)

// SetJournal installs (or, with nil, removes) the campaign journal used
// by subsequent RunParallel calls.
func SetJournal(j *Journal) {
	journalMu.Lock()
	activeJournal = j
	journalMu.Unlock()
}

func currentJournal() *Journal {
	journalMu.Lock()
	defer journalMu.Unlock()
	return activeJournal
}
