package bench

import (
	"fmt"

	"repro/internal/resources"
)

func init() {
	register(Experiment{ID: "table3", Paper: "Table 3 (FPGA resource cost of event support)", Run: Table3})
}

// Table3 reproduces the paper's Table 3: the resource increase of the
// SUME Event Switch's event logic as a percentage of the Virtex-7 device,
// from the structural cost model (see internal/resources).
func Table3() *Result {
	cfg := resources.SUMEEventConfig()
	dev := resources.Virtex7_690T
	res := &Result{
		ID:    "table3",
		Title: fmt.Sprintf("Event-support hardware cost on %s (paper Table 3)", dev.Name),
		Cols:  []string{"FPGA resource", "paper % increase", "measured % increase"},
	}
	for _, row := range resources.Table3(cfg, dev) {
		res.AddRow(row.Resource, fmt.Sprintf("%.1f", row.Paper), fmt.Sprintf("%.2f", row.Measured))
	}
	inv := resources.EventLogicInventory(cfg)
	for _, it := range inv.Items {
		res.Notef("component %-38s LUT=%-6.0f FF=%-6.0f BRAM36=%.0f", it.Name, it.LUTs, it.FFs, it.BRAM36)
	}
	u := inv.Total()
	res.Notef("total event logic: LUT=%.0f FF=%.0f BRAM36=%.0f on a device with %d/%d/%d",
		u.LUTs, u.FFs, u.BRAM36, dev.LUTs, dev.FFs, dev.BRAM36)
	return res
}
