package bench

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "table2", Paper: "Table 2 (application classes)", Run: Table2})
}

// Table2 runs one representative application per class of the paper's
// Table 2 end-to-end and reports the events each one actually used plus a
// headline outcome, substantiating the class -> events mapping.
func Table2() *Result {
	res := &Result{
		ID:    "table2",
		Title: "Application classes and the events they use (paper Table 2)",
		Cols:  []string{"class", "example", "events used", "outcome"},
	}

	// One self-contained scenario per application class; each runs on its
	// own scheduler, so the classes sweep out across workers.
	scenarios := []func() []string{
		table2HULA, table2FRR, table2Microburst, table2FRED, table2Cache,
	}
	for _, row := range RunParallel(len(scenarios), func(trial int) []string {
		return scenarios[trial]()
	}) {
		res.AddRow(row...)
	}

	res.Notef("each row ran as its own end-to-end scenario; 'events used' are the kinds the program binds")
	res.Notef("a second example per class also exists in internal/apps: CONGA-style flowlets, swing-state migration,")
	res.Notef("INT transit + report filtering, RED/PIE/AFD and a token-bucket policer, and NetChain-style coordination")
	return res
}

// table2HULA: Congestion Aware Forwarding — HULA probe selection.
func table2HULA() []string {
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{}, core.EventDriven(), sched)
		h, prog := apps.NewHULA(apps.HULAConfig{TorID: 0, UplinkPorts: []int{1, 2}, HostPort: 0, Tors: 2})
		sw.MustLoad(prog)
		mustOK(h.Attach(sw, 200*sim.Microsecond))
		sw.Inject(1, packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(9),
			&packet.Probe{TorID: 1, MaxUtil: 400_000}))
		sw.Inject(2, packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(9),
			&packet.Probe{TorID: 1, MaxUtil: 100_000}))
		sched.Run(2 * sim.Millisecond)
		mustConserve(sw)
		hop, util := h.BestHop(1)
		return []string{"Congestion Aware Fwd", "HULA probes",
			kindsOf(prog),
			fmt.Sprintf("best hop=%d util=%d probes: sent=%d seen=%d", hop, util, h.ProbesSent, h.ProbesSeen)}
	}
}

// table2FRR: Network Management — fast re-route on link failure.
func table2FRR() []string {
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{}, core.EventDriven(), sched)
		fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
			SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
		dst := int(uint32(fl.Dst) >> 16)
		r, prog := apps.NewFRR(apps.FRRConfig{Primary: map[int]int{dst: 1}, Backup: map[int]int{dst: 2}})
		sw.MustLoad(prog)
		sched.At(sim.Millisecond, func() { sw.SetLink(1, false) })
		for i := 0; i < 20; i++ {
			at := sim.Time(i) * 100 * sim.Microsecond
			sched.At(at, func() { sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 200})) })
		}
		sched.Run(5 * sim.Millisecond)
		mustConserve(sw)
		return []string{"Network Management", "Fast re-route",
			kindsOf(prog),
			fmt.Sprintf("failovers=%d primary=%d backup=%d (0 lost)", r.Failovers, r.RoutedPrimary, r.RoutedBackup)}
	}
}

// table2Microburst: Network Monitoring — microburst detection.
func table2Microburst() []string {
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{}, core.EventDriven(), sched)
		mb, prog := apps.NewMicroburst(apps.MicroburstConfig{Slots: 256, ThresholdBytes: 10000, EgressPort: 1})
		sw.MustLoad(prog)
		fl := packet.Flow{Src: packet.IP4(10, 0, 0, 3), Dst: packet.IP4(10, 1, 0, 1),
			SrcPort: 9, DstPort: 2, Proto: packet.ProtoUDP}
		for i := 0; i < 30; i++ {
			at := sim.Time(i) * 300 * sim.Nanosecond
			sched.At(at, func() { sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1500})) })
		}
		for i := 0; i < 8; i++ {
			at := 10*sim.Microsecond + sim.Time(i)*3*sim.Microsecond
			sched.At(at, func() { sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1500})) })
		}
		sched.Run(5 * sim.Millisecond)
		mustConserve(sw)
		return []string{"Network Monitoring", "Microburst detection",
			kindsOf(prog),
			fmt.Sprintf("detections=%d of culprit flow", len(mb.Detections))}
	}
}

// table2FRED: Traffic Management — FRED-like fair AQM.
func table2FRED() []string {
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
		fr, prog := apps.NewFRED(apps.FREDConfig{Slots: 256, MinQBytes: 3000, TotalLimit: 30000, EgressPort: 1, ReportPort: -1})
		sw.MustLoad(prog)
		mustOK(fr.Arm(sw, sim.Millisecond))
		rng := sim.NewRNG(1)
		gen := workload.NewGen(sched, rng, func(d []byte) { sw.Inject(0, d) })
		gen.StartCBR(workload.CBRConfig{
			Flow: packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1), SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP},
			Size: workload.FixedSize(1500), Rate: 12 * sim.Gbps, Until: 10 * sim.Millisecond})
		gen2 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
		gen2.StartCBR(workload.CBRConfig{
			Flow: packet.Flow{Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, 1, 0, 1), SrcPort: 3, DstPort: 4, Proto: packet.ProtoUDP},
			Size: workload.FixedSize(300), Rate: 200 * sim.Mbps, Until: 10 * sim.Millisecond})
		sched.Run(12 * sim.Millisecond)
		mustConserve(sw)
		return []string{"Traffic Management", "FRED-like AQM",
			kindsOf(prog),
			fmt.Sprintf("dropped=%d passed=%d occupancy samples=%d", fr.Dropped, fr.Passed, len(fr.Samples))}
	}
}

// table2Cache: In-Network Computing — NetCache-style cache.
func table2Cache() []string {
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{}, core.EventDriven(), sched)
		c, prog := apps.NewCache(apps.CacheConfig{Ways: 8, ServerPort: 1, ClientPort: 0, AdmitThreshold: 1})
		sw.MustLoad(prog)
		mustOK(c.Arm(sw, sim.Millisecond, 10*sim.Millisecond))
		client := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 1), SrcPort: 7, Proto: packet.ProtoUDP}
		sched.At(sim.Millisecond, func() { sw.Inject(0, apps.BuildCacheRequest(client, apps.CacheGet, 5, 0)) })
		sched.At(sim.Millisecond+100*sim.Microsecond, func() {
			sw.Inject(1, apps.BuildCacheReply(client.Reverse(), 5, 50))
		})
		for i := 0; i < 5; i++ {
			at := 2*sim.Millisecond + sim.Time(i)*sim.Millisecond
			sched.At(at, func() { sw.Inject(0, apps.BuildCacheRequest(client, apps.CacheGet, 5, 0)) })
		}
		sched.Run(10 * sim.Millisecond)
		mustConserve(sw)
		return []string{"In-Network Computing", "NetCache-style cache",
			kindsOf(prog),
			fmt.Sprintf("hits=%d misses=%d (timer-aged LRU)", c.Hits, c.Misses)}
	}
}

// kindsOf summarizes a program's bound event kinds, abbreviated.
func kindsOf(p *pisa.Program) string {
	var names []string
	for _, k := range p.HandledKinds() {
		names = append(names, shortKind(k))
	}
	return strings.Join(names, ",")
}

func shortKind(k events.Kind) string {
	switch k {
	case events.IngressPacket:
		return "Ing"
	case events.EgressPacket:
		return "Egr"
	case events.RecirculatedPacket:
		return "Rec"
	case events.GeneratedPacket:
		return "Gen"
	case events.PacketTransmitted:
		return "Tx"
	case events.BufferEnqueue:
		return "Enq"
	case events.BufferDequeue:
		return "Deq"
	case events.BufferOverflow:
		return "Ovf"
	case events.BufferUnderflow:
		return "Unf"
	case events.TimerExpiration:
		return "Tmr"
	case events.ControlPlaneTriggered:
		return "CP"
	case events.LinkStatusChange:
		return "Lnk"
	case events.UserEvent:
		return "Usr"
	}
	return "?"
}
