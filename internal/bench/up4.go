package bench

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/p4"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "up4",
		Paper: "µP4 execution backends: compiled closures vs interpreter oracle",
		Run:   UP4Bench,
	})
}

// up4Programs are the example programs the experiment sweeps: every
// packet-driven program from the µP4 library plus the LPM router (table
// + counter externs). Timer-driven programs (queuereport, ratelimiter)
// are exercised by the p4 package's differential tests instead — the
// chain harness arms no timers.
var up4Programs = []string{"ecnmark", "heavyhitter", "linkwatch", "microburst", "router"}

// UP4Bench runs each µP4 example program on a 3-switch chain twice —
// once per execution backend — and checks the central compiler claim:
// the compiled-closure backend and the tree-walking interpreter are
// observably identical (the digest column folds every switch, link,
// host, register, and table counter), while the compiled backend is
// faster (wall-clock lives in the Perf samples / BENCH_up4.json; the
// table stays host-independent). Rows run serially, never through
// RunParallel, so each wall-clock sample owns the machine.
func UP4Bench() *Result {
	res := &Result{
		ID:    "up4",
		Title: "µP4 backends on a 3-switch chain: compiled closures vs interpreter",
		Cols:  []string{"program", "backend", "cycles", "tx packets", "digest", "identical"},
	}
	for _, name := range up4Programs {
		var base uint64
		var baseWall time.Duration
		for bi, interp := range []bool{false, true} {
			backend := "compiled"
			if interp {
				backend = "interp"
			}
			start := time.Now()
			m := runUP4Chain(name, interp, Domains(), "")
			wall := time.Since(start)
			ident := "baseline"
			if bi == 0 {
				base, baseWall = m.digest, wall
			} else if m.digest == base {
				ident = "yes"
			} else {
				ident = "NO"
			}
			res.AddRow(name, backend, d(m.cycles), d(m.txPackets),
				fmt.Sprintf("%016x", m.digest), ident)
			res.Perf = append(res.Perf, PerfSample{
				Label: "up4/" + name + "-" + backend, Domains: Domains(),
				WallSeconds:  wall.Seconds(),
				Cycles:       m.cycles,
				CyclesPerSec: float64(m.cycles) / wall.Seconds(),
				Speedup:      baseWall.Seconds() / wall.Seconds(),
			})
		}
		// Burst-off differential row: the compiled backend re-runs through
		// the per-packet oracle. Digest divergence is an engine bug and
		// panics; the throughput lands in the Perf samples only.
		saved := core.ForceNoBurst
		core.ForceNoBurst = true
		start := time.Now()
		m := runUP4Chain(name, false, Domains(), "-noburst")
		wall := time.Since(start)
		core.ForceNoBurst = saved
		if m.digest != base {
			panic(fmt.Sprintf("bench: up4 %s per-packet oracle diverged from burst baseline (digest %016x vs %016x)",
				name, m.digest, base))
		}
		res.Perf = append(res.Perf, PerfSample{
			Label: "up4/" + name + "-compiled-noburst", Domains: Domains(),
			WallSeconds:  wall.Seconds(),
			Cycles:       m.cycles,
			CyclesPerSec: float64(m.cycles) / wall.Seconds(),
			Speedup:      baseWall.Seconds() / wall.Seconds(),
		})
	}
	res.Notef("digest folds switch/link/host counters plus every µP4 register cell and table stat")
	res.Notef("'identical' checks each interp row against its compiled baseline — the differential oracle")
	res.Notef("speedup in the Perf samples is relative to the program's compiled row (interp rows < 1)")
	return res
}

// up4Metrics is what one chain run measures.
type up4Metrics struct {
	cycles    uint64
	txPackets uint64
	digest    uint64
}

// runUP4Chain wires h0 - sw0 - sw1 - sw2 - h1 (each switch port 0
// upstream, port 1 downstream), loads the named µP4 program onto every
// switch under the selected backend, offers bidirectional CBR flows,
// and flaps the sw0-sw1 link mid-run (event diversity for the link
// handlers). The run is byte-identical at every domains value: switches
// interact only through links and all RNG streams split at setup.
func runUP4Chain(progName string, interp bool, domains int, telSuffix string) up4Metrics {
	src, ok := p4.Programs[progName]
	if !ok {
		panic("bench: unknown µP4 program " + progName)
	}
	const nsw = 3
	const horizon = 8 * sim.Millisecond
	if domains < 1 {
		domains = 1
	}
	if domains > nsw {
		domains = nsw
	}

	var net *netsim.Network
	schedFor := func(i int) *sim.Scheduler { return net.Scheduler() }
	if domains > 1 {
		part := sim.NewPartition(domains)
		net = netsim.NewPartitioned(part)
		schedFor = func(i int) *sim.Scheduler { return part.Sched(i % domains) }
	} else {
		net = netsim.New(sim.NewScheduler())
	}

	compiled := p4.MustCompile(src)
	sws := make([]*core.Switch, nsw)
	insts := make([]*p4.Instance, nsw)
	for i := range sws {
		sw := core.New(core.Config{
			Name: fmt.Sprintf("sw%d", i), Ports: 2, QueueCapBytes: 1 << 20,
		}, core.EventDriven(), schedFor(i))
		inst := compiled.Instantiate(fmt.Sprintf("%s%d", progName, i),
			p4.Options{Interpret: interp})
		inst.SetSwitchID(uint32(i + 1))
		if progName == "router" {
			// Forward 10.9/16 downstream and 10.0/16 upstream; everything
			// else takes the default drop.
			mustOK(inst.InstallEntry("ipv4_lpm",
				[]uint64{uint64(packet.IP4(10, 9, 0, 0))},
				[]uint64{pisa.PrefixMask(16, 32)}, 16, "set_egress", 1))
			mustOK(inst.InstallEntry("ipv4_lpm",
				[]uint64{uint64(packet.IP4(10, 0, 0, 0))},
				[]uint64{pisa.PrefixMask(16, 32)}, 16, "set_egress", 0))
		}
		sw.MustLoad(inst.Program())
		sws[i], insts[i] = sw, inst
	}
	for _, sw := range sws {
		net.AddSwitch(sw)
	}
	net.Connect(sws[0], 1, sws[1], 0, sim.Microsecond)
	net.Connect(sws[1], 1, sws[2], 0, sim.Microsecond)
	if tel := trialCollector(fmt.Sprintf("up4/%s-%s%s", progName, backendName(interp), telSuffix)); tel != nil {
		net.EnableTelemetry(tel)
	}

	h1 := net.NewHost("h1", packet.IP4(10, 9, 0, 5))
	net.Attach(h1, sws[2], 1, 0)
	h0 := net.NewHost("h0", packet.IP4(10, 0, 0, 5))
	net.Attach(h0, sws[0], 0, 0)

	// Bidirectional CBR: 6 forward flows h0->10.9/16 and 2 reverse flows
	// h1->10.0/16 (the reverse direction lands on each switch's port 1 —
	// programs that forward to a fixed egress reflect it, the router
	// routes it, linkwatch mirrors it back upstream).
	rng := sim.NewRNG(11)
	for i := 0; i < 6; i++ {
		fl := packet.Flow{
			Src: packet.IP4(10, 0, 0, 5), Dst: packet.IP4(10, 9, byte(i), 7),
			SrcPort: uint16(4000 + i), DstPort: uint16(80 + i%3), Proto: packet.ProtoUDP,
		}
		g := workload.NewGen(h0.Scheduler(), rng.Split(), func(d []byte) { h0.Send(d) })
		g.StartCBR(workload.CBRConfig{
			Flow: fl, Size: workload.FixedSize(400 + 200*i),
			Rate: 300 * sim.Mbps, Until: horizon,
		})
	}
	for i := 0; i < 2; i++ {
		fl := packet.Flow{
			Src: packet.IP4(10, 9, 0, 5), Dst: packet.IP4(10, 0, byte(i), 9),
			SrcPort: uint16(5000 + i), DstPort: 443, Proto: packet.ProtoUDP,
		}
		g := workload.NewGen(h1.Scheduler(), rng.Split(), func(d []byte) { h1.Send(d) })
		g.StartCBR(workload.CBRConfig{
			Flow: fl, Size: workload.FixedSize(900),
			Rate: 200 * sim.Mbps, Until: horizon,
		})
	}

	// Flap the sw0-sw1 link mid-run: LinkDown/LinkUp events for programs
	// that watch them, loss and retransmission-free gaps for the rest.
	mid := net.LinkAt(sws[0], 1)
	net.ScheduleLinkChange(mid, 3*sim.Millisecond, false)
	net.ScheduleLinkChange(mid, 4*sim.Millisecond, true)

	net.Run(horizon + 2*sim.Millisecond)
	faults.MustAudit(net)

	var m up4Metrics
	dig := fnv.New64a()
	put := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			for k := 0; k < 8; k++ {
				buf[k] = byte(v >> (8 * k))
			}
			dig.Write(buf[:])
		}
	}
	for i, sw := range sws {
		st := sw.Stats()
		m.cycles += st.Cycles
		m.txPackets += st.TxPackets
		put(st.RxPackets, st.RxBytes, st.TxPackets, st.TxBytes, st.Cycles,
			st.PipelineDrops, st.Recirculated, st.Generated)
		prog := insts[i].Program()
		for _, r := range prog.Registers() {
			n := r.Size()
			if n > 4096 {
				n = 4096
			}
			for j := 0; j < n; j++ {
				if v := r.True(uint32(j)); v != 0 {
					put(uint64(j), uint64(v))
				}
			}
		}
		for _, tn := range prog.TableNames() {
			lookups, misses := prog.Table(tn).Stats()
			put(lookups, misses)
		}
	}
	for _, l := range net.Links() {
		for dir := 0; dir < 2; dir++ {
			c := l.Counters(dir)
			put(c.Sent, c.Delivered, c.LostAtSend, c.LostInFlight, c.InFlight())
		}
	}
	for _, h := range net.Hosts() {
		put(h.RxPackets, h.RxBytes)
	}
	m.digest = dig.Sum64()
	return m
}

func backendName(interp bool) string {
	if interp {
		return "interp"
	}
	return "compiled"
}
