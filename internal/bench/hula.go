package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "hula", Paper: "§3 Congestion Aware Forwarding: HULA probes from the data plane", Run: HULABench})
}

// HULABench builds a 2-ToR / 2-spine leaf-spine fabric running HULA and
// sweeps the probe period. Data-plane generators can probe at tens of
// microseconds; a control-plane implementation is limited to
// millisecond-scale periods (its channel latency and software jitter).
// The measurement is uplink load balance at tor0 under skewed flows: how
// evenly the two spine paths carry the offered load (Jain fairness of the
// two uplink byte counts) and how quickly the best hop reflects
// congestion.
func HULABench() *Result {
	res := &Result{
		ID:    "hula",
		Title: "HULA path balancing vs probe period (paper §3)",
		Cols:  []string{"probe source", "probe period", "uplink balance (Jain)", "probes/s/switch", "flows moved"},
	}
	configs := []struct {
		name   string
		period sim.Time
	}{
		{"data plane", 50 * sim.Microsecond},
		{"data plane", 200 * sim.Microsecond},
		{"data plane", 1 * sim.Millisecond},
		{"control plane", 10 * sim.Millisecond}, // feasible CP period
		{"control plane", 50 * sim.Millisecond},
	}
	rows := RunParallel(len(configs), func(trial int) []string {
		cfg := configs[trial]
		jain, pps, moved := runHULAFabric(cfg.period)
		return []string{cfg.name, cfg.period.String(),
			fmt.Sprintf("%.3f", jain), fmt.Sprintf("%.0f", pps), d(moved)}
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("Jain fairness of tor0's two uplink byte counts over the run; 1.0 = perfectly balanced")
	res.Notef("control-plane rows model the same probes generated at the slowest period a software agent sustains")
	res.Notef("'flows moved' counts best-hop changes at tor0 — congestion response happening at all")
	return res
}

// runHULAFabric runs the fabric for a fixed horizon with the given probe
// period and returns the Jain fairness of tor0's uplink usage, the probe
// rate, and the number of best-hop changes.
func runHULAFabric(probePeriod sim.Time) (jain float64, probesPerSec float64, moved int) {
	const horizon = 50 * sim.Millisecond
	sched := sim.NewScheduler()
	net := netsim.New(sched)

	refresh := probePeriod
	if refresh < 100*sim.Microsecond {
		refresh = 100 * sim.Microsecond
	}

	mkTor := func(name string, id uint16) (*core.Switch, *apps.HULA) {
		sw := core.New(core.Config{Name: name}, core.EventDriven(), sched)
		h, prog := apps.NewHULA(apps.HULAConfig{
			TorID: id, ProbePeriod: probePeriod,
			UplinkPorts: []int{1, 2}, HostPort: 0, Tors: 2,
		})
		sw.MustLoad(prog)
		return sw, h
	}
	tor0, h0 := mkTor("tor0", 0)
	tor1, h1 := mkTor("tor1", 1)
	mkSpine := func(name string) (*core.Switch, *apps.HULA) {
		sw := core.New(core.Config{Name: name}, core.EventDriven(), sched)
		h, prog := apps.SpineProbeRelay(2, 2, func(tor int) int { return tor })
		sw.MustLoad(prog)
		return sw, h
	}
	sp0, sh0 := mkSpine("spine0")
	sp1, sh1 := mkSpine("spine1")
	for _, sw := range []*core.Switch{tor0, tor1, sp0, sp1} {
		net.AddSwitch(sw)
	}
	net.ConnectLeafSpine([]*core.Switch{tor0, tor1}, []*core.Switch{sp0, sp1}, sim.Microsecond)
	h1host := net.NewHost("h1", packet.IP4(10, 1, 0, 2))
	net.Attach(h1host, tor1, 0, 0)
	h0host := net.NewHost("h0", packet.IP4(10, 0, 0, 2))
	net.Attach(h0host, tor0, 0, 0)

	mustOK(h0.Attach(tor0, refresh))
	mustOK(h1.Attach(tor1, refresh))
	mustOK(sh0.AttachSpine(sp0, refresh))
	mustOK(sh1.AttachSpine(sp1, refresh))

	// Offered: 12 flows from h0 toward tor1 hosts, together ~8 Gb/s, so
	// a single uplink (10G) would run hot while two balanced uplinks
	// stay comfortable.
	rng := sim.NewRNG(7)
	for i := 0; i < 12; i++ {
		fl := packet.Flow{
			Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, 1, byte(i), 5),
			SrcPort: uint16(3000 + i), DstPort: 80, Proto: packet.ProtoUDP,
		}
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { h0host.Send(d) })
		g.StartCBR(workload.CBRConfig{
			Flow: fl, Size: workload.FixedSize(1500),
			Rate: 660 * sim.Mbps, Until: horizon,
		})
	}

	// Track tor0 uplink bytes and best-hop changes.
	uplinkBytes := [2]uint64{}
	net.TapTransmit(tor0, func(port int, data []byte) {
		// Count only data traffic, not probes.
		if packet.EtherTypeOf(data) != packet.EtherTypeIPv4 {
			return
		}
		switch port {
		case 1:
			uplinkBytes[0] += uint64(len(data))
		case 2:
			uplinkBytes[1] += uint64(len(data))
		}
	})

	lastHop := -1
	sched.Every(100*sim.Microsecond, func() {
		hop, _ := h0.BestHop(1)
		if hop != lastHop && hop >= 0 {
			if lastHop >= 0 {
				moved++
			}
			lastHop = hop
		}
	})

	sched.Run(horizon)
	faults.MustAudit(net)

	a, b := float64(uplinkBytes[0]), float64(uplinkBytes[1])
	if a+b == 0 {
		return 0, 0, moved
	}
	jain = (a + b) * (a + b) / (2 * (a*a + b*b))
	probesPerSec = float64(h0.ProbesSent) / horizon.Seconds()
	return jain, probesPerSec, moved
}
