package bench

import (
	"fmt"
	"hash/fnv"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "hula", Paper: "§3 Congestion Aware Forwarding: HULA probes from the data plane", Run: HULABench})
}

// HULABench builds a 2-ToR / 2-spine leaf-spine fabric running HULA and
// sweeps the probe period. Data-plane generators can probe at tens of
// microseconds; a control-plane implementation is limited to
// millisecond-scale periods (its channel latency and software jitter).
// The measurement is uplink load balance at tor0 under skewed flows: how
// evenly the two spine paths carry the offered load (Jain fairness of the
// two uplink byte counts) and how quickly the best hop reflects
// congestion.
func HULABench() *Result {
	res := &Result{
		ID:    "hula",
		Title: "HULA path balancing vs probe period (paper §3)",
		Cols:  []string{"probe source", "probe period", "uplink balance (Jain)", "probes/s/switch", "flows moved"},
	}
	configs := []struct {
		name   string
		period sim.Time
	}{
		{"data plane", 50 * sim.Microsecond},
		{"data plane", 200 * sim.Microsecond},
		{"data plane", 1 * sim.Millisecond},
		{"control plane", 10 * sim.Millisecond}, // feasible CP period
		{"control plane", 50 * sim.Millisecond},
	}
	rows := RunParallel(len(configs), func(trial int) []string {
		cfg := configs[trial]
		m := runHULAFabric(fabricSpec{
			tors: 2, spines: 2,
			probePeriod: cfg.period,
			horizon:     50 * sim.Millisecond,
			flows:       12,
			flowRate:    660 * sim.Mbps,
			domains:     Domains(),
			loadAware:   DomainsAuto(),
			tel:         trialCollector(fmt.Sprintf("hula/t%02d", trial)),
		})
		return []string{cfg.name, cfg.period.String(),
			fmt.Sprintf("%.3f", m.jain), fmt.Sprintf("%.0f", m.probesPerSec), d(m.moved)}
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("Jain fairness of tor0's two uplink byte counts over the run; 1.0 = perfectly balanced")
	res.Notef("control-plane rows model the same probes generated at the slowest period a software agent sustains")
	res.Notef("'flows moved' counts best-hop changes at tor0 — congestion response happening at all")
	return res
}

// fabricSpec sizes one HULA leaf-spine run. tors and spines should be
// powers of two (the HULA dest-ToR mapping folds the IP's second octet
// modulo the ToR count).
type fabricSpec struct {
	tors, spines int
	probePeriod  sim.Time
	horizon      sim.Time
	// flows is the number of CBR flows offered at tor0's host, spread
	// round-robin over the other ToRs; flowRate is each flow's rate.
	flows    int
	flowRate sim.Rate
	// domains splits the fabric's switches across that many partition
	// domains (switch index modulo domains); 1 runs single-scheduler.
	domains int
	// classic forces fixed-width conservative windows — the baseline the
	// adaptive batching protocol is measured against. Output must be
	// byte-identical either way.
	classic bool
	// loadAware assigns switches to domains by measured per-switch cycle
	// load (a short calibration run + sim.PlanDomains) instead of index
	// round-robin. Assignment never changes simulation output.
	loadAware bool
	// tel, when non-nil, instruments every switch and snapshots link
	// counters after the run. Byte-identical at every domains value.
	tel *telemetry.Collector
	// perSwitch, when non-nil, receives each switch's cycle count after
	// the run (calibration passes use this as the load signal).
	perSwitch *[]uint64
}

// fabricMetrics is what one fabric run measures. digest folds every
// deterministic observable (per-switch and per-link counters, uplink
// bytes, hop moves) into one value, so a scale sweep can assert that
// different domain counts executed the identical simulation.
type fabricMetrics struct {
	jain         float64
	probesPerSec float64
	moved        int
	cycles       uint64
	txPackets    uint64
	digest       uint64
	// windows and barriers describe the parallel run's coordination shape
	// (0 when single-scheduler). They are run metadata — they legitimately
	// vary with domain count and batching mode — so identity checks strip
	// them (ident).
	windows  uint64
	barriers uint64
}

// ident returns the simulation-identity view of the metrics: everything
// that must be byte-identical across domain counts, batching modes, and
// burst modes, with the coordination-shape metadata zeroed.
func (m fabricMetrics) ident() fabricMetrics {
	m.windows, m.barriers = 0, 0
	return m
}

// runHULAFabric runs a leaf-spine fabric for the spec'd horizon and
// returns its metrics. The simulation is byte-identical for every
// domains value: switches interact only through links, cross-domain
// delivery is ordered by the scheduler wire band, and all RNG streams
// are split deterministically at setup.
func runHULAFabric(spec fabricSpec) fabricMetrics {
	if spec.domains < 1 {
		spec.domains = 1
	}
	nsw := spec.tors + spec.spines
	if spec.domains > nsw {
		spec.domains = nsw
	}

	// Domain d drives switch indices i with i % domains == d (or the
	// load-aware plan's assignment); with domains 1 everything lands on
	// one scheduler and netsim runs the classic single-threaded engine.
	var net *netsim.Network
	var part *sim.Partition
	schedFor := func(i int) *sim.Scheduler { return net.Scheduler() }
	if spec.domains > 1 {
		part = sim.NewPartition(spec.domains)
		net = netsim.NewPartitioned(part)
		part.SetClassicWindows(spec.classic)
		if spec.loadAware {
			assign := planFabricDomains(spec)
			schedFor = func(i int) *sim.Scheduler { return part.Sched(assign[i]) }
		} else {
			schedFor = func(i int) *sim.Scheduler { return part.Sched(i % spec.domains) }
		}
	} else {
		net = netsim.New(sim.NewScheduler())
	}

	refresh := spec.probePeriod
	if refresh < 100*sim.Microsecond {
		refresh = 100 * sim.Microsecond
	}

	uplinks := make([]int, spec.spines)
	for j := range uplinks {
		uplinks[j] = 1 + j
	}
	tors := make([]*core.Switch, spec.tors)
	hulas := make([]*apps.HULA, spec.tors)
	for i := range tors {
		sw := core.New(core.Config{
			Name: fmt.Sprintf("tor%d", i), Ports: 1 + spec.spines,
		}, core.EventDriven(), schedFor(i))
		h, prog := apps.NewHULA(apps.HULAConfig{
			TorID: uint16(i), ProbePeriod: spec.probePeriod,
			UplinkPorts: uplinks, HostPort: 0, Tors: spec.tors,
		})
		sw.MustLoad(prog)
		tors[i], hulas[i] = sw, h
	}
	spines := make([]*core.Switch, spec.spines)
	spineHulas := make([]*apps.HULA, spec.spines)
	for j := range spines {
		sw := core.New(core.Config{
			Name: fmt.Sprintf("spine%d", j), Ports: spec.tors,
		}, core.EventDriven(), schedFor(spec.tors+j))
		h, prog := apps.SpineProbeRelay(spec.tors, spec.tors, func(tor int) int { return tor })
		sw.MustLoad(prog)
		spines[j], spineHulas[j] = sw, h
	}
	for _, sw := range tors {
		net.AddSwitch(sw)
	}
	for _, sw := range spines {
		net.AddSwitch(sw)
	}
	net.ConnectLeafSpine(tors, spines, sim.Microsecond)
	if spec.tel != nil {
		// After every AddSwitch (stream creation order = switch order) and
		// before the run; all instruments exist before domains go parallel.
		net.EnableTelemetry(spec.tel)
	}

	// One host per ToR (attach order matches the seed's 2x2 wiring:
	// highest-numbered ToR hosts first, tor0's sender last).
	hosts := make([]*netsim.Host, spec.tors)
	for i := spec.tors - 1; i >= 1; i-- {
		hosts[i] = net.NewHost(fmt.Sprintf("h%d", i), packet.IP4(10, byte(i), 0, 2))
		net.Attach(hosts[i], tors[i], 0, 0)
	}
	hosts[0] = net.NewHost("h0", packet.IP4(10, 0, 0, 2))
	net.Attach(hosts[0], tors[0], 0, 0)

	for i, h := range hulas {
		mustOK(h.Attach(tors[i], refresh))
	}
	for j, h := range spineHulas {
		mustOK(h.AttachSpine(spines[j], refresh))
	}

	// Offered load: spec.flows CBR flows from h0, destinations spread
	// over the other ToRs (with 2 ToRs: all toward tor1, together hot
	// enough that one uplink would saturate while balanced uplinks stay
	// comfortable).
	rng := sim.NewRNG(7)
	h0host := hosts[0]
	for i := 0; i < spec.flows; i++ {
		dstTor := 1 + i%(spec.tors-1)
		fl := packet.Flow{
			Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, byte(dstTor), byte(i), 5),
			SrcPort: uint16(3000 + i), DstPort: 80, Proto: packet.ProtoUDP,
		}
		g := workload.NewGen(h0host.Scheduler(), rng.Split(), func(d []byte) { h0host.Send(d) })
		g.StartCBR(workload.CBRConfig{
			Flow: fl, Size: workload.FixedSize(1500),
			Rate: spec.flowRate, Until: spec.horizon,
		})
	}

	// Track tor0 uplink bytes and best-hop changes (both live in tor0's
	// domain: the tap runs on tor0's scheduler, as does the observer).
	uplinkBytes := make([]uint64, spec.spines)
	net.TapTransmit(tors[0], func(port int, data []byte) {
		// Count only data traffic, not probes.
		if packet.EtherTypeOf(data) != packet.EtherTypeIPv4 {
			return
		}
		if port >= 1 && port <= spec.spines {
			uplinkBytes[port-1] += uint64(len(data))
		}
	})

	var m fabricMetrics
	h0 := hulas[0]
	lastHop := -1
	tors[0].Scheduler().Every(100*sim.Microsecond, func() {
		hop, _ := h0.BestHop(1)
		if hop != lastHop && hop >= 0 {
			if lastHop >= 0 {
				m.moved++
			}
			lastHop = hop
		}
	})

	net.Run(spec.horizon)
	faults.MustAudit(net)
	if spec.tel != nil {
		net.RecordLinkTelemetry(spec.tel)
	}

	var sum, sumsq float64
	for _, b := range uplinkBytes {
		sum += float64(b)
		sumsq += float64(b) * float64(b)
	}
	if sum > 0 {
		m.jain = sum * sum / (float64(spec.spines) * sumsq)
	}
	m.probesPerSec = float64(h0.ProbesSent) / spec.horizon.Seconds()

	dig := fnv.New64a()
	put := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			for k := 0; k < 8; k++ {
				buf[k] = byte(v >> (8 * k))
			}
			dig.Write(buf[:])
		}
	}
	for _, sw := range net.Switches() {
		st := sw.Stats()
		m.cycles += st.Cycles
		m.txPackets += st.TxPackets
		put(st.RxPackets, st.TxPackets, st.Cycles, st.Generated, st.PipelineDrops)
		if spec.perSwitch != nil {
			*spec.perSwitch = append(*spec.perSwitch, st.Cycles)
		}
	}
	if part != nil {
		m.windows, m.barriers = part.Windows(), part.Barriers()
	}
	for _, l := range net.Links() {
		for dir := 0; dir < 2; dir++ {
			c := l.Counters(dir)
			put(c.Sent, c.Delivered, c.LostAtSend, c.LostInFlight, c.InFlight())
		}
	}
	put(uint64(m.moved))
	put(uplinkBytes...)
	for _, h := range hosts {
		put(h.RxPackets, h.RxBytes)
	}
	m.digest = dig.Sum64()
	return m
}

// planFabricDomains runs a short single-scheduler calibration pass of
// the spec'd fabric, collects each switch's cycle count as its load
// weight, and plans the domain assignment with sim.PlanDomains (the
// ndn-dpdk idiom: allocate cores by measured load, not index
// arithmetic). The plan is deterministic — same spec, same assignment —
// and the assignment never changes simulation output, only wall-clock
// balance.
func planFabricDomains(spec fabricSpec) []int {
	cal := spec
	cal.domains = 1
	cal.classic, cal.loadAware = false, false
	cal.tel = nil
	cal.horizon = spec.horizon / 8
	if min := 2 * sim.Millisecond; cal.horizon < min {
		cal.horizon = min
	}
	if cal.horizon > spec.horizon {
		cal.horizon = spec.horizon
	}
	var weights []uint64
	cal.perSwitch = &weights
	runHULAFabric(cal)
	return sim.PlanDomains(weights, spec.domains)
}
