package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "cmsreset", Paper: "§1 claim: CMS periodic reset overhead, control plane vs timer events", Run: CMSReset})
}

// CMSReset quantifies the paper's §1 motivating overhead: a count-min
// sketch that must be reset every T. On a baseline architecture the
// control plane issues the reset (messages on the control channel,
// software latency and jitter); on the event-driven architecture a timer
// event resets it in the data plane with no control traffic and
// slot-scale jitter. Sweeping T shows the control-plane message rate
// exploding at small periods while the event-driven cost stays zero.
func CMSReset() *Result {
	res := &Result{
		ID:    "cmsreset",
		Title: "Count-min-sketch periodic reset: control plane vs timer events (paper §1)",
		Cols: []string{"reset period", "design", "resets", "ctrl msgs/s",
			"jitter mean", "jitter p99"},
	}
	const horizon = 400 * sim.Millisecond
	for _, period := range []sim.Time{sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond} {
		// Event-driven.
		{
			sched := sim.NewScheduler()
			sw := core.New(core.Config{}, core.EventDriven(), sched)
			app, prog := apps.NewCMSEventDriven(3, 2048, 1)
			sw.MustLoad(prog)
			mustOK(app.Arm(sw, period))
			driveCMSTraffic(sched, sw, horizon)
			sched.Run(horizon)
			mustConserve(sw)
			j := app.ResetJitter()
			res.AddRow(period.String(), "timer event",
				d(len(app.ResetTimes)), "0",
				sim.Time(j.Mean()).String(), sim.Time(j.Percentile(99)).String())
		}
		// Baseline via control plane.
		{
			sched := sim.NewScheduler()
			sw := core.New(core.Config{}, core.Baseline(), sched)
			app, prog := apps.NewCMSBaseline(3, 2048, 1)
			sw.MustLoad(prog)
			agent := controlplane.New(sched, sim.NewRNG(5))
			app.StartBaselineResets(sched, agent, period)
			driveCMSTraffic(sched, sw, horizon)
			sched.Run(horizon)
			mustConserve(sw)
			j := app.ResetJitter()
			msgsPerSec := float64(agent.Messages) / horizon.Seconds()
			res.AddRow(period.String(), "control plane",
				d(len(app.ResetTimes)), fmt.Sprintf("%.0f", msgsPerSec),
				sim.Time(j.Mean()).String(), sim.Time(j.Percentile(99)).String())
		}
	}
	res.Notef("control channel modeled at 100us latency + up to 400us software jitter, 1 message per sketch row")
	res.Notef("timer-event jitter is the gap between timer expiry and the handler's slot (at most a few cycles)")
	return res
}

func driveCMSTraffic(sched *sim.Scheduler, sw *core.Switch, horizon sim.Time) {
	rng := sim.NewRNG(77)
	flows := workload.NewFlowSet(500, 1.0, packet.IP4(10, 0, 0, 0))
	g := workload.NewGen(sched, rng, func(d []byte) { sw.Inject(0, d) })
	g.StartPoisson(workload.PoissonConfig{Flows: flows, MeanGap: 10 * sim.Microsecond, Until: horizon})
}
