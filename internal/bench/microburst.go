package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "microburst", Paper: "§2 claim: event-driven microburst detection with >=4x less state", Run: Microburst})
}

// Microburst compares the paper's §2 running example against a
// Snappy-style baseline on identical traffic: heavy-tailed background
// flows plus injected microbursts from known culprit flows. It reports
// detection precision/recall and the stateful memory each design needs —
// the paper claims the event-driven design "reduce[s] the stateful
// requirements at least four-fold".
func Microburst() *Result {
	const horizon = 40 * sim.Millisecond
	const threshold = 15000

	type outcome struct {
		name           string
		stateBytes     int
		truePositives  int
		falsePositives int
		bursts         int
	}
	var outcomes []outcome

	runOne := func(mode string) outcome {
		sched := sim.NewScheduler()
		arch := core.EventDriven()
		if mode == "snappy" {
			arch = core.Baseline()
		}
		sw := core.New(core.Config{QueueCapBytes: 1 << 20}, arch, sched)

		var detections *[]apps.Detection
		var stateBytes int
		var slots int
		if mode == "event" {
			mb, prog := apps.NewMicroburst(apps.MicroburstConfig{
				Slots: 1024, ThresholdBytes: threshold, EgressPort: 1,
			})
			sw.MustLoad(prog)
			detections = &mb.Detections
			stateBytes = mb.StateBytes()
			slots = 1024
		} else {
			sn, prog := apps.NewSnappy(apps.SnappyConfig{
				Snapshots: 4, Rows: 3, Width: 1024, WindowPkts: 256,
				ThresholdBytes: threshold, EgressPort: 1,
			})
			sw.MustLoad(prog)
			detections = &sn.Detections
			stateBytes = sn.StateBytes()
			slots = 1024
		}

		rng := sim.NewRNG(2024)
		// Background: 200 heavy-tailed flows at moderate aggregate load.
		flows := workload.NewFlowSet(200, 1.1, packet.IP4(10, 0, 0, 0))
		bg := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
		bg.StartPoisson(workload.PoissonConfig{
			Flows: flows, MeanGap: 3 * sim.Microsecond, Until: horizon,
		})
		// Culprits: 4 incast bursts from distinct flows at known times.
		// Each burst is 2x20x1500B arriving at line rate on two ports
		// simultaneously (2x oversubscription of the egress), followed
		// by trailer packets while the queue is deep.
		culpritSlots := map[uint32]bool{}
		burst2 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
		burst3 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(3, d) })
		nBursts := 4
		for b := 0; b < nBursts; b++ {
			fl := packet.Flow{
				Src: packet.IP4(172, 16, byte(b), 1), Dst: packet.IP4(10, 1, 0, 1),
				SrcPort: uint16(7000 + b), DstPort: 80, Proto: packet.ProtoUDP,
			}
			culpritSlots[uint32(fl.Hash()%uint64(slots))] = true
			at := sim.Time(b+1) * 8 * sim.Millisecond
			for _, g := range []*workload.Gen{burst2, burst3} {
				g.ScheduleBurst(workload.BurstConfig{
					Flow: fl, Size: workload.FixedSize(1500), Count: 20,
					Spacing: 1230 * sim.Nanosecond, At: at,
				})
			}
			// Trailers while the burst queue drains.
			for i := 0; i < 12; i++ {
				tAt := at + 26*sim.Microsecond + sim.Time(i)*2*sim.Microsecond
				sched.At(tAt, func() {
					sw.Inject(2, packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1500}))
				})
			}
		}
		sched.Run(horizon + 5*sim.Millisecond)
		mustConserve(sw)

		o := outcome{name: mode, stateBytes: stateBytes, bursts: nBursts}
		seen := map[uint32]bool{}
		for _, det := range *detections {
			if seen[det.FlowSlot] {
				continue
			}
			seen[det.FlowSlot] = true
			if culpritSlots[det.FlowSlot] {
				o.truePositives++
			} else {
				o.falsePositives++
			}
		}
		return o
	}

	outcomes = append(outcomes, runOne("event"))
	outcomes = append(outcomes, runOne("snappy"))

	res := &Result{
		ID:    "microburst",
		Title: "Microburst culprit detection: event-driven (§2) vs Snappy-style baseline",
		Cols:  []string{"design", "state bytes", "culprits found", "false flows flagged", "recall"},
	}
	for _, o := range outcomes {
		res.AddRow(o.name, d(o.stateBytes),
			fmt.Sprintf("%d/%d", o.truePositives, o.bursts),
			d(o.falsePositives),
			pct(float64(o.truePositives), float64(o.bursts)))
	}
	ratio := float64(outcomes[1].stateBytes) / float64(outcomes[0].stateBytes)
	res.Notef("state ratio snappy/event = %.1fx (paper: 'at least four-fold' reduction)", ratio)
	res.Notef("event design state: 1024-entry 32-bit occupancy register + its two aggregation banks")
	res.Notef("snappy design state: 4 rotating CMS snapshots of 3x1024 32-bit counters")
	return res
}
