package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "netchain",
		Paper: "§3 in-network coordination: NetChain-style chain replication riding link events",
		Run:   NetChainBench,
	})
}

// chainSpec is one sweep point: chain length × optional mid-run failure
// of the head's successor link (3-node chains carry a head->tail backup
// so the data-plane failover re-chains around the cut).
type chainSpec struct {
	nodes    int
	writes   int
	interval sim.Time
	fail     bool
}

// NetChainBench measures chain-replicated writes through switch-resident
// key-value replicas (paper §3: link status change events let services
// like NetChain react to failures in the data plane). Each write enters
// at the head, commits at the tail, and the ack walks back up the chain;
// commit RTT therefore grows with chain length. The failure row cuts the
// head's successor mid-stream: the head's LinkStatusChange handler
// re-chains to the backup within one event, and every acknowledged write
// is present at the tail afterwards.
//
// The chain is a line of switches, so it partitions naturally into
// contiguous domains; output is byte-identical for every domain count.
func NetChainBench() *Result {
	res := &Result{
		ID:    "netchain",
		Title: "NetChain chain replication: commit RTT vs chain length, data-plane failover",
		Cols: []string{"chain", "fault", "writes", "acked", "tail commits",
			"failovers", "mean commit RTT", "acked writes durable"},
	}
	specs := []chainSpec{
		{nodes: 3, writes: 64, interval: 50 * sim.Microsecond},
		{nodes: 3, writes: 64, interval: 50 * sim.Microsecond, fail: true},
		{nodes: 5, writes: 64, interval: 50 * sim.Microsecond},
		{nodes: 8, writes: 64, interval: 50 * sim.Microsecond},
	}
	rows := RunParallel(len(specs), func(trial int) []string {
		sp := specs[trial]
		m := runChain(sp, Domains())
		fault := "none"
		if sp.fail {
			fault = "cut head succ"
		}
		durable := "yes"
		if !m.durable {
			durable = "NO"
		}
		return []string{
			d(sp.nodes), fault, d(sp.writes), d(m.acked), d(m.tailCommits),
			d(m.failovers), m.meanRTT.String(), durable,
		}
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("writes stream from one client at the head; the tail commits and acks back up the chain")
	res.Notef("fault row: head's successor link scheduled down mid-stream; the head re-chains to its backup in the data plane")
	res.Notef("'acked writes durable': every acknowledged write present in the tail's store with the acked value")
	return res
}

// chainMetrics is one chain run's measurement.
type chainMetrics struct {
	acked, tailCommits, failovers int
	meanRTT                       sim.Time
	durable                       bool
}

// runChain builds a line of ChainNode switches split into contiguous
// partition domains, streams writes from a client at the head, and
// checks the chain-replication guarantee.
func runChain(sp chainSpec, domains int) chainMetrics {
	const (
		hopLatency = 5 * sim.Microsecond
		firstWrite = sim.Millisecond
	)
	if domains < 1 {
		domains = 1
	}
	if domains > sp.nodes {
		domains = sp.nodes
	}

	var net *netsim.Network
	schedFor := func(i int) *sim.Scheduler { return net.Scheduler() }
	if domains > 1 {
		part := sim.NewPartition(domains)
		net = netsim.NewPartitioned(part)
		// Contiguous blocks keep all but domains-1 hops local.
		schedFor = func(i int) *sim.Scheduler { return part.Sched(i * domains / sp.nodes) }
	} else {
		net = netsim.New(sim.NewScheduler())
	}

	nodes := make([]*apps.ChainNode, sp.nodes)
	sws := make([]*core.Switch, sp.nodes)
	for i := range nodes {
		cfg := apps.ChainNodeConfig{
			SwitchID: uint32(i + 1), ClientPort: 0, SuccessorPort: 1, BackupPort: -1,
		}
		if i == sp.nodes-1 {
			cfg.SuccessorPort = -1
			cfg.Tail = true
		}
		if i == 0 && sp.fail {
			cfg.BackupPort = 2 // head skips straight to the tail
		}
		node, prog := apps.NewChainNode(cfg)
		sw := core.New(core.Config{Name: fmt.Sprintf("chain%d", i)}, core.EventDriven(), schedFor(i))
		sw.MustLoad(prog)
		net.AddSwitch(sw)
		nodes[i], sws[i] = node, sw
	}
	var headSucc *netsim.Link
	for i := 0; i+1 < sp.nodes; i++ {
		l := net.Connect(sws[i], 1, sws[i+1], 0, hopLatency)
		if i == 0 {
			headSucc = l
		}
	}
	if sp.fail {
		net.Connect(sws[0], 2, sws[sp.nodes-1], 2, hopLatency)
	}

	client := net.NewHost("client", packet.IP4(10, 0, 0, 1))
	net.Attach(client, sws[0], 0, 0)

	// Everything below runs on the head's domain: the client's sends,
	// its receive callback, and the latency bookkeeping.
	sched := client.Scheduler()
	sendAt := make([]sim.Time, sp.writes+1)
	ackVal := make(map[uint32]uint64)
	var m chainMetrics
	var rttTotal sim.Time
	client.OnRecv = func(data []byte) {
		op, _, val, seq, ok := apps.ParseChainReply(data)
		if !ok || op != apps.ChainWriteAck {
			return
		}
		if _, dup := ackVal[seq]; dup {
			return
		}
		ackVal[seq] = val
		m.acked++
		rttTotal += sched.Now() - sendAt[seq]
	}

	type wrec struct {
		key, val uint64
	}
	writes := make(map[uint32]wrec)
	for i := 0; i < sp.writes; i++ {
		seq := uint32(i + 1)
		key := uint64(i % 8)
		val := uint64(1000 + i)
		writes[seq] = wrec{key, val}
		at := firstWrite + sim.Time(i)*sp.interval
		sched.At(at, func() {
			sendAt[seq] = sched.Now()
			client.Send(apps.BuildChainRequest(packet.Flow{
				Src: client.IP, Dst: packet.IP4(10, 9, 0, 1), SrcPort: 700,
			}, apps.ChainWrite, key, val, seq))
		})
	}
	if sp.fail {
		// Cut mid-stream and leave it down: writes in flight on the old
		// chain are lost unacked; later writes commit via the backup.
		net.ScheduleLinkChange(headSucc, firstWrite+sim.Time(sp.writes/2)*sp.interval, false)
	}

	horizon := firstWrite + sim.Time(sp.writes)*sp.interval + 10*sim.Millisecond
	net.Run(horizon)
	faults.MustAudit(net)

	tail := nodes[sp.nodes-1]
	m.tailCommits = int(tail.Writes)
	for _, n := range nodes {
		m.failovers += int(n.Failovers)
	}
	if m.acked > 0 {
		m.meanRTT = rttTotal / sim.Time(m.acked)
	}
	m.durable = true
	for seq, v := range ackVal {
		w := writes[seq]
		if v != w.val || tail.Store()[w.key] == 0 {
			m.durable = false
		}
	}
	return m
}
