package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "staleness", Paper: "§4 claim: staleness bounded iff pipeline runs faster than line rate", Run: Staleness})
}

// Staleness runs the full switch (not just the register model) across a
// grid of pipeline overspeeds and offered loads, measuring the
// event-updated occupancy register's staleness: the gap between its
// data-plane-visible value and the true value, sampled periodically. The
// paper's §4: "staleness is bounded if the pipeline runs slightly faster
// than the line rate (as is typical)" — and reducing packet load (e.g.
// not using some external ports) buys accuracy, the bandwidth/accuracy
// trade-off.
func Staleness() *Result {
	res := &Result{
		ID:    "staleness",
		Title: "Occupancy-register staleness vs pipeline overspeed and load (paper §4)",
		Cols: []string{"overspeed", "load", "mean |stale| (B)", "max |stale| (B)",
			"undrained @end (B)", "defer lag max (cyc)", "bounded"},
	}
	const horizon = 10 * sim.Millisecond
	type point struct {
		overspeed, load float64
	}
	var grid []point
	for _, overspeed := range []float64{1.0, 1.05, 1.25, 1.5} {
		for _, load := range []float64{0.7, 1.0} {
			grid = append(grid, point{overspeed, load})
		}
	}
	rows := RunParallel(len(grid), func(trial int) []string {
		pt := grid[trial]
		row := runStaleness(pt.overspeed, pt.load, horizon,
			trialCollector(fmt.Sprintf("staleness/t%02d", trial)))
		return append([]string{
			fmt.Sprintf("%.2fx", pt.overspeed),
			fmt.Sprintf("%.0f%%", pt.load*100),
		}, row...)
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("min-size frames on all 4 ports; staleness sampled every 50us against the register's true value")
	res.Notef("undrained@end = total |pending delta| across aggregation banks: the drain process's debt")
	res.Notef("at overspeed 1.00x and 100%% load there are no idle cycles: the debt grows for the whole run (unbounded)")
	res.Notef("with any slack — overspeed > 1 or load < 100%% (the paper's freed-up ports) — staleness is bounded and shrinks as overspeed grows")
	return res
}

func runStaleness(overspeed, load float64, horizon sim.Time, tel *telemetry.Collector) []string {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{Overspeed: overspeed}, core.EventDriven(), sched)
	if tel != nil {
		sw.EnableTelemetry(tel)
	}

	prog := pisa.NewProgram("staleness")
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
		events.BufferEnqueue, events.BufferDequeue))
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		// A congestion-aware forwarding decision: the packet thread
		// reads the occupancy register every slot, so drains only
		// happen on genuinely idle cycles (the paper's scenario).
		_ = occ.Read(ctx, uint32(ctx.Pkt.InPort^1))
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
	})
	prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
	})
	sw.MustLoad(prog)

	rng := sim.NewRNG(31)
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fl := packet.Flow{
			Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP,
		}
		g.StartSaturate(workload.SaturateConfig{
			Flow: fl, Rate: 10 * sim.Gbps, Load: load, Size: 60, Until: horizon,
		})
	}

	stale := sim.NewStats()
	sched.Every(50*sim.Microsecond, func() {
		for port := uint32(0); port < 4; port++ {
			gap := occ.True(port) - int64(occ.Stale(port))
			if gap < 0 {
				gap = -gap
			}
			stale.Add(float64(gap))
		}
	})
	sched.Run(horizon)
	mustConserve(sw)

	m, _ := occ.Metrics()
	pending := occ.PendingAbs()
	// Bounded: the drain debt at the end is within a small number of
	// per-port updates, not proportional to the whole run.
	bounded := pending < 64*60*4
	return []string{
		fmt.Sprintf("%.0f", stale.Mean()),
		fmt.Sprintf("%.0f", stale.Max()),
		d(pending),
		d(m.MaxLag),
		yn(bounded),
	}
}
