package bench

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// telOpts keeps the test collectors small but with sampling on, so the
// determinism checks cover counters, gauges, histograms, and ring
// overflow (the 1<<12 cap is far below what these runs emit).
var telOpts = telemetry.Options{
	TraceCap:     1 << 12,
	SamplePeriod: 50 * sim.Microsecond,
}

// collectStaleness runs a short staleness sweep through the RunParallel
// harness at the given worker count and returns the encoded metrics and
// JSONL trace bytes.
func collectStaleness(t *testing.T, par int) ([]byte, []byte) {
	t.Helper()
	EnableTelemetry(telOpts)
	defer DisableTelemetry()
	prev := Parallelism()
	SetParallelism(par)
	defer SetParallelism(prev)

	loads := []float64{0.7, 1.0}
	RunParallel(len(loads), func(trial int) []string {
		return runStaleness(1.25, loads[trial], 2*sim.Millisecond,
			trialCollector(fmt.Sprintf("par/t%02d", trial)))
	})
	runs := TelemetryRuns()
	if len(runs) != len(loads) {
		t.Fatalf("collected %d runs, want %d", len(runs), len(loads))
	}
	m, err := telemetry.EncodeMetrics(runs)
	if err != nil {
		t.Fatal(err)
	}
	j, err := telemetry.EncodeJSONL(runs)
	if err != nil {
		t.Fatal(err)
	}
	return m, j
}

// TestTelemetryParallelIdentical is the exporter's acceptance check
// against the worker pool: the same experiment collected serially and on
// 8 workers must export byte-identical metrics and trace files. Trials
// finish in arbitrary order under the pool; only label-sorted export
// makes this hold.
func TestTelemetryParallelIdentical(t *testing.T) {
	m1, j1 := collectStaleness(t, 1)
	m8, j8 := collectStaleness(t, 8)
	if !bytes.Equal(m1, m8) {
		t.Errorf("metrics differ between -parallel 1 (%d bytes) and 8 (%d bytes)", len(m1), len(m8))
	}
	if !bytes.Equal(j1, j8) {
		t.Errorf("trace differs between -parallel 1 (%d bytes) and 8 (%d bytes)", len(j1), len(j8))
	}
	if len(j1) == 0 {
		t.Error("trace export is empty; scenario emitted nothing")
	}
}

// TestTelemetryDomainsIdentical checks the same property against the
// conservative parallel engine: one fabric instrumented at 1 and 2
// partition domains exports byte-identical telemetry. Gauges are sampled
// on sim-time ticks (never at window barriers) and link counters are
// snapshotted after the run, so domain count must not leak into the
// files.
func TestTelemetryDomainsIdentical(t *testing.T) {
	runFabric := func(domains int) []telemetry.RunExport {
		c := telemetry.New(telOpts)
		runHULAFabric(fabricSpec{
			tors: 2, spines: 2,
			probePeriod: 200 * sim.Microsecond,
			horizon:     5 * sim.Millisecond,
			flows:       4,
			flowRate:    660 * sim.Mbps,
			domains:     domains,
			tel:         c,
		})
		return []telemetry.RunExport{{Label: "fab", C: c}}
	}
	r1, r2 := runFabric(1), runFabric(2)
	for _, enc := range []struct {
		name string
		fn   func([]telemetry.RunExport) ([]byte, error)
	}{
		{"metrics", telemetry.EncodeMetrics},
		{"jsonl", telemetry.EncodeJSONL},
		{"chrome", telemetry.EncodeChromeTrace},
	} {
		b1, err := enc.fn(r1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := enc.fn(r2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s export differs between -domains 1 (%d bytes) and 2 (%d bytes)",
				enc.name, len(b1), len(b2))
		}
	}
	d1, err := telemetry.Digest(r1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := telemetry.Digest(r2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("digest %016x at domains=1 != %016x at domains=2", d1, d2)
	}
}

// TestStalenessHistogramBound ties the new staleness histogram to the
// paper's §4 claim: with pipeline overspeed the cycles an aggregation
// delta waits before draining are bounded — a vanishing fraction of the
// run — while the break-even no-slack regime defers far longer.
func TestStalenessHistogramBound(t *testing.T) {
	lagHist := func(overspeed, load float64) *telemetry.Histogram {
		t.Helper()
		c := telemetry.New(telOpts)
		runStaleness(overspeed, load, 2*sim.Millisecond, c)
		h := c.Registry().Histogram("sw.switch.reg.occ.staleness.cycles")
		if h.Count() > 0 {
			if mb := h.MaxBucket(); telemetry.BucketLow(mb) > h.Max() || telemetry.BucketHigh(mb) < h.Max() {
				t.Errorf("max %d outside top bucket %d [%d,%d]",
					h.Max(), mb, telemetry.BucketLow(mb), telemetry.BucketHigh(mb))
			}
		}
		return h
	}

	// Bounded regime (overspeed 1.5, load 70%): drains run on idle
	// cycles and the worst defer lag is a sliver of the run, not
	// proportional to it.
	c := telemetry.New(telOpts)
	runStaleness(1.5, 0.7, 2*sim.Millisecond, c)
	h := c.Registry().Histogram("sw.switch.reg.occ.staleness.cycles")
	cycles := c.Registry().Counter("sw.switch.cycles").Value()
	if h.Count() == 0 {
		t.Fatal("bounded regime recorded no drains")
	}
	if mb := h.MaxBucket(); telemetry.BucketLow(mb) > h.Max() || telemetry.BucketHigh(mb) < h.Max() {
		t.Errorf("max %d outside top bucket %d [%d,%d]",
			h.Max(), mb, telemetry.BucketLow(mb), telemetry.BucketHigh(mb))
	}
	if h.Max()*16 > cycles {
		t.Errorf("bounded regime: max defer lag %d cycles is not small vs %d total cycles", h.Max(), cycles)
	}

	// No-slack regime (overspeed 1.0, load 100%): there is never an idle
	// cycle, so deltas sit in the aggregation banks for the entire run —
	// the histogram records no drains at all, the unbounded-debt
	// signature the §4 experiment reports as "bounded: no".
	if h2 := lagHist(1.0, 1.0); h2.Count() != 0 {
		t.Errorf("no-slack regime drained %d times; expected the drain process to starve", h2.Count())
	}
}
