package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func init() {
	register(Experiment{
		ID:    "scale",
		Paper: "§5 event-driven processing at scale: multi-core conservative parallel execution",
		Run:   ScaleBench,
	})
}

// scaleRunner abstracts one topology for the scale sweep: a label and a
// function that runs it at a given domain count / batching mode /
// partitioning mode. Both the leaf-spine HULA fabrics and the fat trees
// plug in here.
type scaleRunner struct {
	label    string
	switches int
	run      func(domains int, classic, loadAware bool, tel *telemetry.Collector) fabricMetrics
}

// ScaleBench sweeps fabric topology × partition domain count and checks
// the conservative parallel engine's claims at once:
//
//   - byte-identity: every row's digest must equal the 1-domain baseline
//     for the same fabric — across domain counts, adaptive vs classic
//     fixed-width windows ("Nc" rows), load-aware vs structured
//     assignment ("N*" rows), and burst vs per-packet delivery (the
//     -noburst oracle, Perf-only).
//   - wall-clock scaling: recorded in the Perf samples / BENCH_scale.json
//     with per-core efficiency (speedup / min(domains, NumCPU)); the
//     rendered table stays host-independent.
//   - adaptive batching: each fabric's widest sweep runs a classic
//     fixed-width twin and records barrier_reduction = classic barriers /
//     adaptive barriers on the adaptive sample. On the latency-diverse
//     fat trees this is the honest measure of what window batching buys
//     on a host without spare cores.
//
// The fat trees are the paper-scale proof: ft8 is an 80-switch k=8
// fat tree whose rolling shuffle workload pushes millions of packets
// through the fabric per run.
//
// Rows run serially, never through RunParallel: each row should own the
// machine so its wall-clock sample means something.
func ScaleBench() *Result {
	res := &Result{
		ID:    "scale",
		Title: "parallel simulation scaling: fabric size x domain count",
		Cols:  []string{"fabric", "domains", "switches", "cycles", "tx packets", "digest", "identical"},
	}

	type fab struct {
		tors, spines, flows int
		rate                sim.Rate
		horizon             sim.Time
	}
	var runners []scaleRunner
	for _, f := range []fab{
		{tors: 4, spines: 4, flows: 12, rate: 500 * sim.Mbps, horizon: 20 * sim.Millisecond},
		{tors: 8, spines: 8, flows: 28, rate: 400 * sim.Mbps, horizon: 20 * sim.Millisecond},
	} {
		f := f
		label := fmt.Sprintf("%dx%d", f.tors, f.spines)
		runners = append(runners, scaleRunner{
			label: label, switches: f.tors + f.spines,
			run: func(domains int, classic, loadAware bool, tel *telemetry.Collector) fabricMetrics {
				return runHULAFabric(fabricSpec{
					tors: f.tors, spines: f.spines,
					probePeriod: 200 * sim.Microsecond, horizon: f.horizon,
					flows: f.flows, flowRate: f.rate,
					domains: domains, classic: classic, loadAware: loadAware,
					tel: tel,
				})
			},
		})
	}
	for _, ft := range []fatTreeSpec{
		{k: 4, horizon: 24 * sim.Millisecond, slot: 250 * sim.Microsecond,
			hostRate: 1120 * sim.Mbps, interGap: 150 * sim.Microsecond},
		{k: 8, horizon: 96 * sim.Millisecond, slot: 250 * sim.Microsecond,
			hostRate: 1120 * sim.Mbps, interGap: 150 * sim.Microsecond},
	} {
		ft := ft
		runners = append(runners, scaleRunner{
			label: fmt.Sprintf("ft%d", ft.k), switches: ft.switches(),
			run: func(domains int, classic, loadAware bool, tel *telemetry.Collector) fabricMetrics {
				spec := ft
				spec.domains, spec.classic, spec.loadAware, spec.tel = domains, classic, loadAware, tel
				return runFatTree(spec)
			},
		})
	}

	effCores := func(domains int) float64 {
		n := runtime.NumCPU()
		if domains < n {
			n = domains
		}
		if n < 1 {
			n = 1
		}
		return float64(n)
	}

	for _, r := range runners {
		var base fabricMetrics
		var baseWall time.Duration
		sample := func(m fabricMetrics, wall time.Duration, label string, domains int) *PerfSample {
			res.Perf = append(res.Perf, PerfSample{
				Label: label, Domains: domains,
				WallSeconds:  wall.Seconds(),
				Cycles:       m.cycles,
				CyclesPerSec: float64(m.cycles) / wall.Seconds(),
				Speedup:      baseWall.Seconds() / wall.Seconds(),
				Efficiency:   baseWall.Seconds() / wall.Seconds() / effCores(domains),
				Windows:      m.windows,
				Barriers:     m.barriers,
			})
			return &res.Perf[len(res.Perf)-1]
		}
		row := func(m fabricMetrics, domainsCell string, baseline bool) {
			ident := "baseline"
			if !baseline {
				ident = "yes"
				if m.ident() != base.ident() {
					ident = "NO"
				}
			}
			res.AddRow(r.label, domainsCell, d(r.switches),
				d(m.cycles), d(m.txPackets), fmt.Sprintf("%016x", m.digest), ident)
		}
		timed := func(domains int, classic, loadAware bool, tag string) (fabricMetrics, time.Duration) {
			start := time.Now()
			m := r.run(domains, classic, loadAware,
				trialCollector(fmt.Sprintf("scale/%s-%s", r.label, tag)))
			return m, time.Since(start)
		}

		// Adaptive sweep: 1 (baseline), 2, 4 domains.
		var adaptive4 *PerfSample
		for di, domains := range []int{1, 2, 4} {
			m, wall := timed(domains, false, false, fmt.Sprintf("d%d", domains))
			if di == 0 {
				base, baseWall = m, wall
			}
			row(m, d(domains), di == 0)
			s := sample(m, wall, r.label, domains)
			if domains == 4 {
				adaptive4 = s
			}
		}

		// Classic fixed-width twin at 4 domains ("4c"): same simulation,
		// no window batching. Its barrier count against the adaptive run's
		// is the batching payoff, recorded on the adaptive sample.
		mc, wallc := timed(4, true, false, "d4c")
		row(mc, "4c", false)
		sample(mc, wallc, r.label+"-classic", 4)
		if adaptive4 != nil && adaptive4.Barriers > 0 {
			adaptive4.BarrierReduction = float64(mc.barriers) / float64(adaptive4.Barriers)
		}

		// Load-aware twin at 4 domains ("4*"): switches assigned to
		// domains by measured cycle load (calibration pass + PlanDomains)
		// instead of the structured plan. Assignment must never change
		// output.
		ma, walla := timed(4, false, true, "d4auto")
		row(ma, "4*", false)
		sample(ma, walla, r.label+"-auto", 4)

		// Burst-off differential: re-run the serial fabric through the
		// per-packet oracle. The digest must match the burst-on baseline —
		// a divergence is an engine bug, not a measurement, so it panics.
		// The sample lands in the Perf list only (labelled -noburst); the
		// rendered table stays burst-agnostic.
		saved := core.ForceNoBurst
		core.ForceNoBurst = true
		mn, walln := timed(1, false, false, "noburst")
		core.ForceNoBurst = saved
		if mn.ident() != base.ident() {
			panic(fmt.Sprintf("bench: scale %s per-packet oracle diverged from burst baseline (digest %016x vs %016x)",
				r.label, mn.digest, base.digest))
		}
		sample(mn, walln, r.label+"-noburst", 1)
	}

	res.Notef("digest folds every switch/link/host counter; 'identical' checks it against the 1-domain baseline")
	res.Notef("'Nc' rows force classic fixed-width windows, 'N*' rows use load-aware domain assignment; both must stay byte-identical")
	res.Notef("wall-clock, speedup, per-core efficiency, and barrier_reduction are host-dependent and live in the Perf samples (make bench-json)")
	res.Notef("rows run serially so each perf sample owns the machine; speedup tracks available cores")
	return res
}
