package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "scale",
		Paper: "§5 event-driven processing at scale: multi-core conservative parallel execution",
		Run:   ScaleBench,
	})
}

// ScaleBench sweeps fabric size × partition domain count on the HULA
// leaf-spine topology and checks the conservative parallel engine's two
// claims at once: the simulation is byte-identical at every domain count
// (the digest column self-checks against the 1-domain baseline), and
// wall-clock time drops as domains spread across cores (recorded in the
// Perf samples / BENCH_scale.json, not in the table — the table must stay
// host-independent).
//
// Rows run serially, never through RunParallel: each row should own the
// machine so its wall-clock sample means something.
func ScaleBench() *Result {
	res := &Result{
		ID:    "scale",
		Title: "parallel simulation scaling: fabric size x domain count",
		Cols:  []string{"fabric", "domains", "switches", "cycles", "tx packets", "digest", "identical"},
	}
	type fab struct {
		tors, spines, flows int
		rate                sim.Rate
		horizon             sim.Time
	}
	fabrics := []fab{
		{tors: 4, spines: 4, flows: 12, rate: 500 * sim.Mbps, horizon: 20 * sim.Millisecond},
		{tors: 8, spines: 8, flows: 28, rate: 400 * sim.Mbps, horizon: 20 * sim.Millisecond},
	}
	for _, f := range fabrics {
		label := fmt.Sprintf("%dx%d", f.tors, f.spines)
		var base fabricMetrics
		var baseWall time.Duration
		for di, domains := range []int{1, 2, 4} {
			start := time.Now()
			m := runHULAFabric(fabricSpec{
				tors: f.tors, spines: f.spines,
				probePeriod: 200 * sim.Microsecond, horizon: f.horizon,
				flows: f.flows, flowRate: f.rate,
				domains: domains,
				tel:     trialCollector(fmt.Sprintf("scale/%s-d%d", label, domains)),
			})
			wall := time.Since(start)
			ident := "baseline"
			if di == 0 {
				base, baseWall = m, wall
			} else if m == base {
				ident = "yes"
			} else {
				ident = "NO"
			}
			res.AddRow(label, d(domains), d(f.tors+f.spines),
				d(m.cycles), d(m.txPackets), fmt.Sprintf("%016x", m.digest), ident)
			res.Perf = append(res.Perf, PerfSample{
				Label: label, Domains: domains,
				WallSeconds:  wall.Seconds(),
				Cycles:       m.cycles,
				CyclesPerSec: float64(m.cycles) / wall.Seconds(),
				Speedup:      baseWall.Seconds() / wall.Seconds(),
			})
		}
		// Burst-off differential row: re-run the serial fabric through the
		// per-packet oracle. The digest must match the burst-on baseline —
		// a divergence is an engine bug, not a measurement, so it panics.
		// The row lands in the Perf samples only (labelled -noburst); the
		// rendered table stays burst-agnostic.
		saved := core.ForceNoBurst
		core.ForceNoBurst = true
		start := time.Now()
		m := runHULAFabric(fabricSpec{
			tors: f.tors, spines: f.spines,
			probePeriod: 200 * sim.Microsecond, horizon: f.horizon,
			flows: f.flows, flowRate: f.rate,
			domains: 1,
			tel:     trialCollector(fmt.Sprintf("scale/%s-noburst", label)),
		})
		wall := time.Since(start)
		core.ForceNoBurst = saved
		if m != base {
			panic(fmt.Sprintf("bench: scale %s per-packet oracle diverged from burst baseline (digest %016x vs %016x)",
				label, m.digest, base.digest))
		}
		res.Perf = append(res.Perf, PerfSample{
			Label: label + "-noburst", Domains: 1,
			WallSeconds:  wall.Seconds(),
			Cycles:       m.cycles,
			CyclesPerSec: float64(m.cycles) / wall.Seconds(),
			Speedup:      baseWall.Seconds() / wall.Seconds(),
		})
	}
	res.Notef("digest folds every switch/link/host counter; 'identical' checks it against the 1-domain baseline")
	res.Notef("wall-clock, cycles/s, and speedup per row are host-dependent and live in the Perf samples (make bench-json)")
	res.Notef("rows run serially so each perf sample owns the machine; speedup tracks available cores")
	return res
}
