package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "ablations", Paper: "design-choice ablations (DESIGN.md §5)", Run: Ablations})
}

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. Aggregated single-ported registers vs multi-ported memory — the §4
//     trade-off: exactness vs memory port cost.
//  2. Event FIFO depth — queueing loss vs buffering cost.
//  3. Merger event priority — how the drain order affects the queueing
//     delay of timer events under heavy TM-event load.
func Ablations() *Result {
	res := &Result{
		ID:    "ablations",
		Title: "Design-choice ablations",
		Cols:  []string{"ablation", "setting", "metric", "value"},
	}

	// --- 1. Register implementation: aggregated vs multi-ported --------
	regModes := []string{"aggregated-1port", "multiport-3port"}
	for _, rows := range RunParallel(len(regModes), func(trial int) [][]string {
		mode := regModes[trial]
		var reg *pisa.SharedRegister
		if mode == "aggregated-1port" {
			reg = pisa.NewAggregatedRegister("r", 64,
				events.BufferEnqueue, events.BufferDequeue)
		} else {
			reg = pisa.NewMultiPortRegister("r", 64, 3)
		}
		// Drive the register directly: one ingress read + one enq + one
		// deq per cycle at full load for 10k cycles.
		ing := &pisa.Context{}
		enq := &pisa.Context{}
		deq := &pisa.Context{}
		maxErr := int64(0)
		for c := uint64(1); c <= 10_000; c++ {
			ing.Reset(nil, events.Event{Kind: events.IngressPacket}, 0, c)
			enq.Reset(nil, events.Event{Kind: events.BufferEnqueue}, 0, c)
			deq.Reset(nil, events.Event{Kind: events.BufferDequeue}, 0, c)
			reg.Tick(c)
			idx := uint32(c % 64)
			reg.Add(enq, idx, +100)
			reg.Add(deq, idx, -60)
			got := int64(reg.Read(ing, idx))
			want := reg.True(idx)
			if e := want - got; e > maxErr {
				maxErr = e
			}
			reg.EndCycle()
		}
		_, conflicts := reg.Metrics()
		ports := 1
		if mode != "aggregated-1port" {
			ports = 3
		}
		return [][]string{
			{"register impl", mode, "memory ports", d(ports)},
			{"register impl", mode, "max read error (staleness)", d(maxErr)},
			{"register impl", mode, "port conflicts", d(conflicts)},
		}
	}) {
		for _, row := range rows {
			res.AddRow(row...)
		}
	}

	// --- 2. Metadata bus width (events per slot) x FIFO depth -----------
	// With a full-width bus (one event of every kind per slot) nothing
	// is ever lost; narrowing the bus forces queueing and, with shallow
	// FIFOs, loss.
	type fifoPoint struct{ width, depth int }
	var fifoGrid []fifoPoint
	for _, width := range []int{1, 2, 0} {
		for _, depth := range []int{16, 256} {
			fifoGrid = append(fifoGrid, fifoPoint{width, depth})
		}
	}
	for _, row := range RunParallel(len(fifoGrid), func(trial int) []string {
		pt := fifoGrid[trial]
		drops := runFIFODepth(pt.depth, pt.width)
		wname := "full"
		if pt.width > 0 {
			wname = fmt.Sprintf("%d/slot", pt.width)
		}
		return []string{"bus width x FIFO depth",
			fmt.Sprintf("width=%s depth=%d", wname, pt.depth),
			"enq+deq events lost", d(drops)}
	}) {
		res.AddRow(row...)
	}

	// --- 2b. Piggybacking vs dedicated event slots ----------------------
	// The merger's defining trick: event metadata rides packet slots.
	// Without it every event consumes its own slot and competes with
	// packets for the pipeline.
	piggyModes := []bool{true, false}
	for _, rows := range RunParallel(len(piggyModes), func(trial int) [][]string {
		piggy := piggyModes[trial]
		delivered, evLost := runPiggyback(piggy)
		name := "piggyback (paper design)"
		if !piggy {
			name = "dedicated event slots"
		}
		return [][]string{
			{"event transport", name, "data delivered", delivered},
			{"event transport", name, "TM events lost", d(evLost)},
		}
	}) {
		for _, row := range rows {
			res.AddRow(row...)
		}
	}

	// --- 3. Merger priority: timer-first vs timer-last on a narrow bus --
	prioModes := []bool{false, true}
	for _, row := range RunParallel(len(prioModes), func(trial int) []string {
		timerFirst := prioModes[trial]
		delay := runMergerPriority(timerFirst)
		name := "timer last (default)"
		if timerFirst {
			name = "timer first"
		}
		return []string{"merger priority (width=1)", name, "timer event delay p99",
			sim.Time(delay.Percentile(99)).String()}
	}) {
		res.AddRow(row...)
	}

	res.Notef("register ablation: the multi-ported design is exact but needs one physical port per thread;")
	res.Notef("the aggregated design is single-ported with bounded read staleness — the paper's §4 trade-off")
	res.Notef("FIFO-depth and priority ablations run min-size traffic at 98%% load with timers at 1us")
	return res
}

// runFIFODepth measures enqueue/dequeue event losses at a given merger
// FIFO depth under bursty near-saturation load.
func runFIFODepth(depth, width int) uint64 {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{
		EventQueueDepth: depth, Overspeed: 1.05, MaxEventsPerSlot: width,
	}, core.EventDriven(), sched)
	prog := pisa.NewProgram("fifo")
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = ctx.Pkt.InPort ^ 1 })
	prog.HandleFunc(events.BufferEnqueue, func(*pisa.Context) {})
	prog.HandleFunc(events.BufferDequeue, func(*pisa.Context) {})
	sw.MustLoad(prog)
	rng := sim.NewRNG(13)
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fl := packet.Flow{Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP}
		g.StartSaturate(workload.SaturateConfig{
			Flow: fl, Rate: 10 * sim.Gbps, Load: 0.98, Size: 60, Until: 2 * sim.Millisecond,
		})
	}
	sched.Run(3 * sim.Millisecond)
	return sw.EventQueueDrops(events.BufferEnqueue) + sw.EventQueueDrops(events.BufferDequeue)
}

// runPiggyback drives min-size traffic at 95% load with enq/deq handlers
// bound, with or without event piggybacking, and reports the data
// delivery fraction and the TM events lost.
func runPiggyback(piggyback bool) (string, uint64) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{
		Overspeed: 1.1, NoPiggyback: !piggyback, EventQueueDepth: 1024,
	}, core.EventDriven(), sched)
	prog := pisa.NewProgram("piggy")
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = ctx.Pkt.InPort ^ 1 })
	prog.HandleFunc(events.BufferEnqueue, func(*pisa.Context) {})
	prog.HandleFunc(events.BufferDequeue, func(*pisa.Context) {})
	sw.MustLoad(prog)
	rng := sim.NewRNG(19)
	var offered uint64
	var gens []*workload.Gen
	const horizon = 2 * sim.Millisecond
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fl := packet.Flow{Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP}
		g.StartSaturate(workload.SaturateConfig{
			Flow: fl, Rate: 10 * sim.Gbps, Load: 0.95, Size: 60, Until: horizon,
		})
		gens = append(gens, g)
	}
	sched.Run(horizon + sim.Millisecond)
	for _, g := range gens {
		offered += g.SentPackets
	}
	st := sw.Stats()
	lost := sw.EventQueueDrops(events.BufferEnqueue) + sw.EventQueueDrops(events.BufferDequeue)
	return pct(float64(st.TxPackets), float64(offered)), lost
}

// runMergerPriority measures how long timer events wait for a merger slot
// when TM events compete, under the default priority (timer near last)
// vs a timer-first order.
func runMergerPriority(timerFirst bool) *sim.Stats {
	// The priority is per-switch configuration, so concurrently running
	// trials never observe each other's ordering.
	prio := append([]events.Kind(nil), core.MergerPriority...)
	if timerFirst {
		prio = append(prio[:0], events.TimerExpiration)
		for _, k := range core.MergerPriority {
			if k != events.TimerExpiration {
				prio = append(prio, k)
			}
		}
	}

	sched := sim.NewScheduler()
	sw := core.New(core.Config{
		EventQueueDepth: 4096, Overspeed: 1.02, MaxEventsPerSlot: 1,
		MergerPriority: prio,
	}, core.EventDriven(), sched)
	prog := pisa.NewProgram("prio")
	delay := sim.NewStats()
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = ctx.Pkt.InPort ^ 1 })
	prog.HandleFunc(events.BufferEnqueue, func(*pisa.Context) {})
	prog.HandleFunc(events.BufferDequeue, func(*pisa.Context) {})
	prog.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		delay.AddTime(ctx.Now - ctx.Ev.When)
	})
	sw.MustLoad(prog)
	mustOK(sw.ConfigureTimer(0, sim.Microsecond))
	rng := sim.NewRNG(17)
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fl := packet.Flow{Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP}
		g.StartSaturate(workload.SaturateConfig{
			Flow: fl, Rate: 10 * sim.Gbps, Load: 0.98, Size: 60, Until: 2 * sim.Millisecond,
		})
	}
	sched.Run(3 * sim.Millisecond)
	return delay
}
