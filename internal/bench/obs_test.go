package bench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/self"
)

// collectObs runs the same instrumented workload — a staleness sweep on 8
// workers plus a 2-domain HULA fabric — and returns the encoded metrics,
// JSONL trace, and digest. With obsOn it layers the whole observability
// plane on top: self-metrics enabled, live collectors, and a streaming
// sink flushing to disk on a fast wall-clock ticker while trials run.
func collectObs(t *testing.T, obsOn bool) ([]byte, []byte, uint64) {
	t.Helper()
	opts := telOpts
	opts.Live = obsOn
	EnableTelemetry(opts)
	defer DisableTelemetry()
	prev := Parallelism()
	SetParallelism(8)
	defer SetParallelism(prev)

	var sink *telemetry.StreamSink
	var tracePath string
	if obsOn {
		self.Enable()
		defer func() {
			self.Disable()
			self.Reset()
		}()
		dir := t.TempDir()
		tracePath = filepath.Join(dir, "live.jsonl")
		var err error
		sink, err = telemetry.NewStreamSink(telemetry.StreamOptions{
			TracePath:   tracePath,
			MetricsPath: filepath.Join(dir, "live-metrics.jsonl"),
			Interval:    time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		AttachStreamSink(sink)
		defer AttachStreamSink(nil)
	}

	loads := []float64{0.7, 1.0}
	RunParallel(len(loads), func(trial int) []string {
		return runStaleness(1.25, loads[trial], 2*sim.Millisecond,
			trialCollector(fmt.Sprintf("obs/t%02d", trial)))
	})
	runHULAFabric(fabricSpec{
		tors: 2, spines: 2,
		probePeriod: 200 * sim.Microsecond,
		horizon:     2 * sim.Millisecond,
		flows:       4,
		flowRate:    660 * sim.Mbps,
		domains:     2,
		tel:         trialCollector("obs/fabric"),
	})

	if sink != nil {
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		streamed, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed) == 0 {
			t.Error("streaming sink flushed nothing during the run")
		}
	}

	runs := TelemetryRuns()
	m, err := telemetry.EncodeMetrics(runs)
	if err != nil {
		t.Fatal(err)
	}
	j, err := telemetry.EncodeJSONL(runs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := telemetry.Digest(runs)
	if err != nil {
		t.Fatal(err)
	}
	return m, j, d
}

// TestObsStreamingIdentical is the observability plane's read-only
// acceptance check at the harness level: the identical workload run plain
// and run under self-metrics + live collectors + an actively draining
// stream sink must export byte-identical metrics and traces and the same
// digest. The sink drains the trace rings from a wall-clock goroutine
// while 8 workers and 2 partition domains are writing — any perturbation
// of the deterministic state shows up here as a flipped byte.
func TestObsStreamingIdentical(t *testing.T) {
	mPlain, jPlain, dPlain := collectObs(t, false)
	mObs, jObs, dObs := collectObs(t, true)
	if !bytes.Equal(mPlain, mObs) {
		t.Errorf("metrics differ with obs plane on (%d bytes) vs off (%d bytes)", len(mObs), len(mPlain))
	}
	if !bytes.Equal(jPlain, jObs) {
		t.Errorf("trace differs with obs plane on (%d bytes) vs off (%d bytes)", len(jObs), len(jPlain))
	}
	if dPlain != dObs {
		t.Errorf("digest %016x with obs plane off != %016x with it on", dPlain, dObs)
	}
	if len(jPlain) == 0 {
		t.Error("trace export is empty; scenario emitted nothing")
	}
}
