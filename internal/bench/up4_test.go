package bench

import (
	"testing"

	"repro/internal/p4"
)

// TestUP4BackendsInvariant is the acceptance check for the µP4
// compilation backend at the experiment level: the full rendered up4
// table — every cycle count, tx count, and digest — is byte-identical
// whether the programs execute as compiled closures or under the
// interpreter oracle, at parallelism 8 and 2 partition domains. It
// toggles the global ForceInterpret knob (what `evbench -interp` sets)
// so both sweeps run through the exact production path.
func TestUP4BackendsInvariant(t *testing.T) {
	prevPar := Parallelism()
	SetParallelism(8)
	defer SetParallelism(prevPar)
	withDomains(2, func() {
		compiled := UP4Bench().String()
		p4.ForceInterpret = true
		defer func() { p4.ForceInterpret = false }()
		interp := UP4Bench().String()
		if compiled != interp {
			t.Errorf("up4 table diverges between backends:\n--- compiled ---\n%s\n--- interp ---\n%s",
				compiled, interp)
		}
	})
}

// TestUP4DomainsIdentical checks that each program's chain run is
// byte-identical when the three switches are split across 2 partition
// domains, for both backends — the compiled closures introduce no
// scheduler-order dependence.
func TestUP4DomainsIdentical(t *testing.T) {
	for _, prog := range up4Programs {
		for _, interp := range []bool{false, true} {
			m1 := runUP4Chain(prog, interp, 1, "")
			m2 := runUP4Chain(prog, interp, 2, "")
			if m1.digest != m2.digest {
				t.Errorf("%s (interp=%v): domains=2 digest %016x != domains=1 digest %016x",
					prog, interp, m2.digest, m1.digest)
			}
		}
	}
}

// TestUP4RowsSelfCheck runs the experiment once and asserts its built-in
// differential column never reports a divergence, and that every row
// carries a perf sample (plus one extra burst-off oracle sample per
// program — those never get table rows).
func TestUP4RowsSelfCheck(t *testing.T) {
	res := UP4Bench()
	for _, row := range res.Rows {
		if row[len(row)-1] == "NO" {
			t.Errorf("backend digest mismatch in up4 row %v", row)
		}
	}
	if want := len(res.Rows) + len(up4Programs); len(res.Perf) != want {
		t.Errorf("perf samples = %d, want %d (one per row plus one -noburst per program)", len(res.Perf), want)
	}
}
