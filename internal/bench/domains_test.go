package bench

import (
	"testing"

	"repro/internal/sim"
)

// withDomains runs fn with the partition-domain knob pinned to n,
// restoring the previous setting afterwards.
func withDomains(n int, fn func()) {
	prev := Domains()
	SetDomains(n)
	defer SetDomains(prev)
	fn()
}

// TestDomainDeterminism is the parallel engine's acceptance check at the
// experiment level: every domain-aware experiment renders byte-identical
// output at 1, 2, and 4 partition domains. The topologies differ (leaf-
// spine fabric, FRR diamond under a flap storm, replication chain), so
// together they cover cross-domain data traffic, scheduled link changes,
// and multi-hop request/reply paths.
func TestDomainDeterminism(t *testing.T) {
	for _, id := range []string{"hula", "resilience", "netchain"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		var base string
		withDomains(1, func() { base = e.Run().String() })
		for _, n := range []int{2, 4} {
			var got string
			withDomains(n, func() { got = e.Run().String() })
			if got != base {
				t.Errorf("%s: -domains %d diverges from -domains 1:\n--- domains=1 ---\n%s\n--- domains=%d ---\n%s",
					id, n, base, n, got)
			}
		}
	}
}

// TestScaleDigestsMatch runs the scale sweep and checks its built-in
// self-check: every multi-domain row's digest equals the 1-domain
// baseline for the same fabric.
func TestScaleDigestsMatch(t *testing.T) {
	res := ScaleBench()
	for _, row := range res.Rows {
		if row[len(row)-1] == "NO" {
			t.Errorf("digest mismatch in scale row %v", row)
		}
	}
	// One perf sample per row, plus one burst-off oracle sample per
	// fabric (four fabrics: two leaf-spines, two fat trees) that never
	// gets a table row.
	if want := len(res.Rows) + 4; len(res.Perf) != want {
		t.Errorf("perf samples = %d, want %d (one per row plus one -noburst per fabric)", len(res.Perf), want)
	}
	// The latency-diverse fat trees are where adaptive batching must pay:
	// their widest adaptive sample records the classic twin's barrier
	// count against its own.
	for _, label := range []string{"ft4", "ft8"} {
		found := false
		for _, s := range res.Perf {
			if s.Label == label && s.Domains == 4 && s.BarrierReduction > 0 {
				found = true
				if s.BarrierReduction < 2 {
					t.Errorf("%s d4 barrier reduction = %.2fx, want >= 2x over classic fixed-width windows", label, s.BarrierReduction)
				}
			}
		}
		if !found {
			t.Errorf("%s: no adaptive d4 sample with barrier_reduction recorded", label)
		}
	}
	// Perf samples are host-dependent and must not leak into the
	// rendered table: stripping them changes nothing.
	withPerf := res.String()
	res.Perf = nil
	if res.String() != withPerf {
		t.Error("Result.String renders Perf samples")
	}
}

// TestFatTreeScaleSmoke is the reduced fat-tree digest check behind
// `make scale-smoke`: a short k=4 run (4 full epoch rotations) whose
// digest must be identical at 1 and 4 domains, with adaptive batching
// and with the classic fixed-width oracle. Small enough to run under
// the race detector on every `make check`.
func TestFatTreeScaleSmoke(t *testing.T) {
	spec := fatTreeSpec{
		k: 4, horizon: 4 * sim.Millisecond, slot: 250 * sim.Microsecond,
		hostRate: 1120 * sim.Mbps, interGap: 150 * sim.Microsecond,
	}
	spec.domains = 1
	base := runFatTree(spec)
	for _, cfg := range []struct {
		label   string
		domains int
		classic bool
	}{
		{"d4 adaptive", 4, false},
		{"d4 classic", 4, true},
	} {
		s := spec
		s.domains, s.classic = cfg.domains, cfg.classic
		if got := runFatTree(s); got.ident() != base.ident() {
			t.Errorf("%s digest %016x != d1 digest %016x", cfg.label, got.digest, base.digest)
		}
	}
}

// TestSetDomainsClamps verifies values below 1 are clamped.
func TestSetDomainsClamps(t *testing.T) {
	prev := Domains()
	defer SetDomains(prev)
	SetDomains(0)
	if got := Domains(); got != 1 {
		t.Errorf("Domains after SetDomains(0) = %d, want 1", got)
	}
}
