package bench

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// withSlowDrain runs fn with the drain fast-forward globally disabled.
// The flag is written before any trial goroutine starts and restored after
// they all finish, so parallel trial workers never observe a torn value.
func withSlowDrain(slow bool, fn func()) {
	prev := core.ForceSlowDrain
	core.ForceSlowDrain = slow
	defer func() { core.ForceSlowDrain = prev }()
	fn()
}

// collectStalenessMode runs a short staleness sweep with the fast-forward
// forced off (slow=true) or left on, returning the experiment rows plus
// the encoded telemetry (metrics text and JSONL trace — the latter embeds
// every drain commit with its reconstructed timestamp and the staleness
// histograms).
func collectStalenessMode(t *testing.T, slow bool) (rows [][]string, metrics, jsonl []byte) {
	t.Helper()
	withSlowDrain(slow, func() {
		EnableTelemetry(telOpts)
		defer DisableTelemetry()
		grid := []struct{ overspeed, load float64 }{
			{1.25, 0.7}, {1.5, 0.7}, {1.0, 1.0},
		}
		rows = RunParallel(len(grid), func(trial int) []string {
			pt := grid[trial]
			return runStaleness(pt.overspeed, pt.load, 2*sim.Millisecond,
				trialCollector(fmt.Sprintf("ff/t%02d", trial)))
		})
		runs := TelemetryRuns()
		var err error
		if metrics, err = telemetry.EncodeMetrics(runs); err != nil {
			t.Fatal(err)
		}
		if jsonl, err = telemetry.EncodeJSONL(runs); err != nil {
			t.Fatal(err)
		}
	})
	return rows, metrics, jsonl
}

// TestFastForwardStalenessIdentical is the switch-level differential for
// the drain fast-forward on the staleness experiment: disabling the
// fast-forward must not change a single experiment cell, metric line, or
// trace byte — including the staleness histograms and per-drain commit
// timestamps, which the fast-forward reconstructs in virtual time.
func TestFastForwardStalenessIdentical(t *testing.T) {
	slowRows, slowM, slowJ := collectStalenessMode(t, true)
	fastRows, fastM, fastJ := collectStalenessMode(t, false)
	if len(slowRows) != len(fastRows) {
		t.Fatalf("row count differs: slow %d, fast %d", len(slowRows), len(fastRows))
	}
	for i := range slowRows {
		for j := range slowRows[i] {
			if slowRows[i][j] != fastRows[i][j] {
				t.Errorf("row %d col %d differs: slow %q, fast %q", i, j, slowRows[i][j], fastRows[i][j])
			}
		}
	}
	if !bytes.Equal(slowM, fastM) {
		t.Errorf("metrics export differs: slow %d bytes, fast %d bytes", len(slowM), len(fastM))
	}
	if !bytes.Equal(slowJ, fastJ) {
		t.Errorf("trace export differs: slow %d bytes, fast %d bytes", len(slowJ), len(fastJ))
	}
	if len(slowJ) == 0 {
		t.Error("trace export is empty; differential covers nothing")
	}
}

// TestFastForwardFig3Identical runs the fig3 experiment — the direct
// aggregation-register workload — in both modes and compares the rendered
// tables byte for byte. (The state-level DrainN replay itself is pinned by
// TestDrainNMatchesEndCycleLoop in internal/state.)
func TestFastForwardFig3Identical(t *testing.T) {
	var slowTab, fastTab string
	withSlowDrain(true, func() { slowTab = Fig3().String() })
	withSlowDrain(false, func() { fastTab = Fig3().String() })
	if slowTab != fastTab {
		t.Errorf("fig3 table differs with fast-forward disabled:\nslow:\n%s\nfast:\n%s", slowTab, fastTab)
	}
}

// TestFastForwardFabricIdentical covers the partitioned engine: a HULA
// leaf-spine fabric at 1 and 2 domains, each with the fast-forward off and
// on, must agree on the full deterministic digest (switch stats, link
// counters, uplink bytes, host counters) and on the telemetry digest. The
// fast-forward must pause at window barriers exactly where the slow path
// stops its last cycle.
func TestFastForwardFabricIdentical(t *testing.T) {
	run := func(slow bool, domains int) (uint64, uint64) {
		var m fabricMetrics
		var telDig uint64
		withSlowDrain(slow, func() {
			c := telemetry.New(telOpts)
			m = runHULAFabric(fabricSpec{
				tors: 2, spines: 2,
				probePeriod: 200 * sim.Microsecond,
				horizon:     5 * sim.Millisecond,
				flows:       4,
				flowRate:    660 * sim.Mbps,
				domains:     domains,
				tel:         c,
			})
			var err error
			telDig, err = telemetry.Digest([]telemetry.RunExport{{Label: "fab", C: c}})
			if err != nil {
				t.Fatal(err)
			}
		})
		return m.digest, telDig
	}
	refDig, refTel := run(true, 1)
	for _, tc := range []struct {
		slow    bool
		domains int
	}{{false, 1}, {true, 2}, {false, 2}} {
		dig, tel := run(tc.slow, tc.domains)
		if dig != refDig {
			t.Errorf("fabric digest %016x (slow=%v domains=%d) != reference %016x",
				dig, tc.slow, tc.domains, refDig)
		}
		if tel != refTel {
			t.Errorf("telemetry digest %016x (slow=%v domains=%d) != reference %016x",
				tel, tc.slow, tc.domains, refTel)
		}
	}
}
