package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// withNoBurst runs fn with burst processing globally disabled — every
// switch and link built inside fn uses the per-packet/per-frame oracle
// path. The flag is written before any trial goroutine starts and
// restored after they all finish.
func withNoBurst(noBurst bool, fn func()) {
	prev := core.ForceNoBurst
	core.ForceNoBurst = noBurst
	defer func() { core.ForceNoBurst = prev }()
	fn()
}

// TestBurstFabricIdentical is the experiment-level differential for the
// burst datapath on the partitioned engine: a HULA leaf-spine fabric at
// 1 and 2 domains, each with bursting off and on, must agree on the full
// deterministic digest (switch stats, link counters, uplink bytes, host
// counters) and on the telemetry digest. Burst slot loops, vectorized
// frame delivery, bulk TM enqueue, and cross-domain burst mailbox
// handoff all sit on this path; the per-packet oracle at -domains 1 is
// the reference.
func TestBurstFabricIdentical(t *testing.T) {
	run := func(noBurst bool, domains int) (uint64, uint64) {
		var m fabricMetrics
		var telDig uint64
		withNoBurst(noBurst, func() {
			c := telemetry.New(telOpts)
			m = runHULAFabric(fabricSpec{
				tors: 2, spines: 2,
				probePeriod: 200 * sim.Microsecond,
				horizon:     5 * sim.Millisecond,
				flows:       4,
				flowRate:    660 * sim.Mbps,
				domains:     domains,
				tel:         c,
			})
			var err error
			telDig, err = telemetry.Digest([]telemetry.RunExport{{Label: "fab", C: c}})
			if err != nil {
				t.Fatal(err)
			}
		})
		return m.digest, telDig
	}
	refDig, refTel := run(true, 1)
	for _, tc := range []struct {
		noBurst bool
		domains int
	}{{false, 1}, {true, 2}, {false, 2}} {
		dig, tel := run(tc.noBurst, tc.domains)
		if dig != refDig {
			t.Errorf("fabric digest %016x (noburst=%v domains=%d) != reference %016x",
				dig, tc.noBurst, tc.domains, refDig)
		}
		if tel != refTel {
			t.Errorf("telemetry digest %016x (noburst=%v domains=%d) != reference %016x",
				tel, tc.noBurst, tc.domains, refTel)
		}
	}
}
