package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "intfilter", Paper: "§3 Network Monitoring: event-driven reduction of INT report volume", Run: INTFilter})
}

// INTFilter quantifies the paper's §3 monitoring claim: "data-plane
// applications can analyze, pre-process and reduce the amount of data
// reports ... use timer events to aggregate congestion information ...
// and only report anomalous events to the monitoring system".
//
// The baseline INT approach reports per packet (or at best per fixed
// interval regardless of content); the event-driven filter aggregates
// buffer activity per timer interval and reports only anomalies. We run
// steady traffic with a handful of injected surges and drop bursts, and
// compare the report volume each design sends to the monitor against
// the anomalies it conveys.
func INTFilter() *Result {
	const horizon = 200 * sim.Millisecond
	const interval = sim.Millisecond

	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 64 << 10}, core.EventDriven(), sched)
	tl, prog := apps.NewTelemetry(apps.TelemetryConfig{
		SwitchID: 1, EgressPort: 1, ReportPort: 3,
	})
	sw.MustLoad(prog)
	mustOK(tl.Arm(sw, interval))

	var reportsOnWire uint64
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if port == 3 {
			reportsOnWire++
		}
	}

	// Steady background plus 5 surges at known times.
	rng := sim.NewRNG(8)
	base := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	base.StartCBR(workload.CBRConfig{
		Flow: packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
			SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP},
		Size: workload.FixedSize(800), Rate: 100 * sim.Mbps, Until: horizon,
	})
	const surges = 5
	for i := 0; i < surges; i++ {
		at := sim.Time(i+1) * 30 * sim.Millisecond
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
		sched.At(at, func() {
			g.StartCBR(workload.CBRConfig{
				Flow: packet.Flow{Src: packet.IP4(10, 0, 0, 9), Dst: packet.IP4(10, 1, 0, 1),
					SrcPort: 9, DstPort: 2, Proto: packet.ProtoUDP},
				Size: workload.FixedSize(1500), Rate: 2 * sim.Gbps, Until: at + 2*sim.Millisecond,
			})
		})
	}
	sched.Run(horizon + 5*sim.Millisecond)
	mustConserve(sw)

	// The unfiltered alternatives, computed from the same run.
	perPacket := sw.Stats().RxPackets // classic INT: one report per packet
	perInterval := tl.Intervals       // naive periodic export
	filtered := reportsOnWire         // the event-driven filter

	res := &Result{
		ID:    "intfilter",
		Title: "INT report volume: per-packet vs periodic vs event-driven filter (paper §3)",
		Cols:  []string{"design", "reports to monitor", "vs per-packet", "surges detected"},
	}
	res.AddRow("per-packet INT", d(perPacket), "1x", fmt.Sprintf("%d (buried)", surges))
	res.AddRow("periodic export (1ms)", d(perInterval),
		fmt.Sprintf("%.4fx", float64(perInterval)/float64(perPacket)), fmt.Sprintf("%d (buried)", surges))
	res.AddRow("event-driven filter", d(filtered),
		fmt.Sprintf("%.6fx", float64(filtered)/float64(perPacket)), d(tl.Reports))
	res.Notef("workload: 100 Mb/s steady + %d short 2 Gb/s surges over %v; aggregation interval %v", surges, horizon, interval)
	res.Notef("the filter suppressed %d quiet intervals and reported %d anomalous ones (%.0fx reduction over periodic export)",
		tl.Suppressed, tl.Reports, tl.ReductionRatio())
	return res
}
