package bench

import (
	"repro/internal/core"
	"repro/internal/faults"
)

// mustConserve runs the faults conservation audit over standalone
// switches and panics on a violation, so no experiment can render a
// table from books that don't balance. Experiments built on a netsim
// network call faults.MustAudit instead, which also checks link-level
// conservation.
func mustConserve(sws ...*core.Switch) {
	if r := faults.AuditSwitches(sws...); !r.OK() {
		panic("bench: " + r.String())
	}
}
