package bench

import "sync/atomic"

// domainCount is the intra-trial parallelism knob: how many partition
// domains topology experiments split their switches across. 1 = the
// single-scheduler engine. Mirrors the Parallelism knob (which spreads
// whole trials across workers); the two compose.
var domainCount atomic.Int32

func init() { domainCount.Store(1) }

// SetDomains sets the number of partition domains topology experiments
// use (clamped to at least 1). Output is byte-identical for every value;
// only wall-clock time changes.
func SetDomains(n int) {
	if n < 1 {
		n = 1
	}
	domainCount.Store(int32(n))
}

// Domains returns the current domain count.
func Domains() int { return int(domainCount.Load()) }
