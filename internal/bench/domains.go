package bench

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/sim"
)

// domainCount is the intra-trial parallelism knob: how many partition
// domains topology experiments split their switches across. 1 = the
// single-scheduler engine. Mirrors the Parallelism knob (which spreads
// whole trials across workers); the two compose.
var domainCount atomic.Int32

// domainsAuto records that the count came from "-domains auto": topology
// experiments then also assign switches to domains by measured load
// (calibration pass + sim.PlanDomains) instead of index arithmetic.
var domainsAuto atomic.Bool

func init() { domainCount.Store(1) }

// SetDomains sets the number of partition domains topology experiments
// use (clamped to at least 1) and turns load-aware assignment off.
// Output is byte-identical for every value; only wall-clock time changes.
func SetDomains(n int) {
	if n < 1 {
		n = 1
	}
	domainCount.Store(int32(n))
	domainsAuto.Store(false)
}

// ParseDomains resolves a CLI -domains value: a positive integer pins
// the count, "auto" picks one domain per available core and switches the
// topology experiments to load-aware domain assignment.
func ParseDomains(v string) error {
	if v == "auto" {
		SetDomains(sim.AutoDomains(1 << 30))
		domainsAuto.Store(true)
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return fmt.Errorf("bench: -domains must be a positive integer or \"auto\" (got %q)", v)
	}
	SetDomains(n)
	return nil
}

// Domains returns the current domain count.
func Domains() int { return int(domainCount.Load()) }

// DomainsAuto reports whether the domain count came from "auto" (and
// experiments should use load-aware assignment).
func DomainsAuto() bool { return domainsAuto.Load() }

// DomainsLabel renders the effective setting for status output and
// config digests: "auto(N)" or the plain count.
func DomainsLabel() string {
	if DomainsAuto() {
		return fmt.Sprintf("auto(%d)", Domains())
	}
	return strconv.Itoa(Domains())
}
