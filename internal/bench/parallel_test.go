package bench

import (
	"sync/atomic"
	"testing"
)

// withParallelism runs fn with the worker-pool width pinned to n,
// restoring the previous setting afterwards.
func withParallelism(n int, fn func()) {
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

// TestParallelOrdering verifies RunParallel returns results indexed by
// trial regardless of which worker evaluated them.
func TestParallelOrdering(t *testing.T) {
	withParallelism(8, func() {
		out := RunParallel(100, func(trial int) int { return trial * trial })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
			}
		}
	})
}

// TestParallelRunsAllTrials verifies every trial runs exactly once even
// when trials greatly outnumber workers, and that worker counts above
// the trial count are clamped.
func TestParallelRunsAllTrials(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		withParallelism(workers, func() {
			var calls atomic.Int64
			seen := make([]atomic.Int32, 37)
			RunParallel(37, func(trial int) struct{} {
				calls.Add(1)
				seen[trial].Add(1)
				return struct{}{}
			})
			if got := calls.Load(); got != 37 {
				t.Errorf("workers=%d: %d calls, want 37", workers, got)
			}
			for i := range seen {
				if n := seen[i].Load(); n != 1 {
					t.Errorf("workers=%d: trial %d ran %d times", workers, i, n)
				}
			}
		})
	}
}

// TestParallelDeterminism is the tentpole's acceptance check: a
// parallel-converted experiment must render byte-identical output at
// parallelism 1 (fully serial) and 8. Each trial builds its own
// scheduler and RNGs, and RunParallel slots results by trial index, so
// worker interleaving must be invisible in the table.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"table2", "fig3", "resilience"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		var serial, parallel, both string
		withParallelism(1, func() { serial = e.Run().String() })
		withParallelism(8, func() { parallel = e.Run().String() })
		// Both knobs at once: trials spread across 8 workers AND each
		// trial's topology split across 2 partition domains.
		withParallelism(8, func() { withDomains(2, func() { both = e.Run().String() }) })
		if serial != parallel {
			t.Errorf("%s: -parallel 1 and -parallel 8 output differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
		if serial != both {
			t.Errorf("%s: -parallel 8 -domains 2 diverges from serial:\n--- serial ---\n%s\n--- both ---\n%s",
				id, serial, both)
		}
	}
}

// TestTrialSeed verifies per-trial seeds are deterministic and
// decorrelated (distinct across neighbouring trials and bases).
func TestTrialSeed(t *testing.T) {
	if TrialSeed(42, 7) != TrialSeed(42, 7) {
		t.Error("TrialSeed is not deterministic")
	}
	seen := map[uint64]bool{}
	for base := uint64(0); base < 4; base++ {
		for trial := 0; trial < 64; trial++ {
			s := TrialSeed(base, trial)
			if seen[s] {
				t.Fatalf("seed collision at base=%d trial=%d", base, trial)
			}
			seen[s] = true
		}
	}
}

// TestSetParallelismClamps verifies values below 1 are clamped.
func TestSetParallelismClamps(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(-3)
	if got := Parallelism(); got != 1 {
		t.Errorf("Parallelism after SetParallelism(-3) = %d, want 1", got)
	}
}
