package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestResultFormatting(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Cols: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Notef("n=%d", 3)
	s := r.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4",
		"microburst", "cmsreset", "staleness", "projects", "hula", "ablations",
		"tofino", "intfilter", "aqm", "resilience", "netchain", "scale", "up4"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(All()), len(want))
	}
}

// cell returns row r column c of a result.
func cell(res *Result, r, c int) string { return res.Rows[r][c] }

func TestTable1AllEventsFire(t *testing.T) {
	res := Table1()
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		n, err := strconv.Atoi(row[3])
		if err != nil || n == 0 {
			t.Errorf("event %s observed %s times", row[0], row[3])
		}
		if row[2] != "yes" {
			t.Errorf("event %s not exposed by event-driven arch", row[0])
		}
	}
	// Baseline exposes exactly the three packet events.
	exposed := 0
	for _, row := range res.Rows {
		if row[1] == "yes" {
			exposed++
		}
	}
	if exposed != 3 {
		t.Errorf("baseline exposes %d events, want 3", exposed)
	}
}

func TestTable2FiveClasses(t *testing.T) {
	res := Table2()
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 application classes", len(res.Rows))
	}
	for _, row := range res.Rows {
		if strings.Contains(row[3], "FAILED") {
			t.Errorf("class %s failed: %s", row[0], row[3])
		}
	}
}

func TestTable3Envelope(t *testing.T) {
	res := Table3()
	for _, row := range res.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad measured value %q", row[2])
		}
		if v <= 0 || v > 2.5 {
			t.Errorf("%s measured %.2f%%, outside the paper's <=2%% envelope", row[0], v)
		}
	}
}

func TestFig2BaselineWorse(t *testing.T) {
	res := Fig2()
	ev, _ := strconv.ParseFloat(cell(res, 0, 1), 64)
	base, _ := strconv.ParseFloat(cell(res, 1, 1), 64)
	if base < 10*(ev+1) {
		t.Errorf("baseline mean error %.0f not clearly worse than event-driven %.0f", base, ev)
	}
}

func TestFig3BoundedExceptFullLoad(t *testing.T) {
	res := Fig3()
	last := len(res.Rows) - 1
	for i, row := range res.Rows {
		bounded := row[len(row)-1]
		if i < last && bounded != "yes" {
			t.Errorf("load %s should be bounded", row[0])
		}
		if i == last && bounded != "no" {
			t.Errorf("load %s should be unbounded", row[0])
		}
	}
}

func TestFig4LineRateHeld(t *testing.T) {
	res := Fig4()
	for _, row := range res.Rows {
		if row[3] != "100.00%" {
			t.Errorf("%s %s delivered %s, want 100.00%%", row[0], row[1], row[3])
		}
		if row[6] != "0" {
			t.Errorf("%s %s dropped events: %s", row[0], row[1], row[6])
		}
	}
}

func TestMicroburstShape(t *testing.T) {
	res := Microburst()
	// Row 0 = event design: full recall, zero false positives.
	if cell(res, 0, 4) != "100.00%" {
		t.Errorf("event recall = %s", cell(res, 0, 4))
	}
	if cell(res, 0, 3) != "0" {
		t.Errorf("event false positives = %s", cell(res, 0, 3))
	}
	evState, _ := strconv.Atoi(cell(res, 0, 1))
	snState, _ := strconv.Atoi(cell(res, 1, 1))
	if snState < 4*evState {
		t.Errorf("state ratio %d/%d below the paper's four-fold claim", snState, evState)
	}
}

func TestCMSResetShape(t *testing.T) {
	res := CMSReset()
	for i := 0; i < len(res.Rows); i += 2 {
		timer, cp := res.Rows[i], res.Rows[i+1]
		if timer[3] != "0" {
			t.Errorf("timer design used control messages: %s", timer[3])
		}
		if cp[3] == "0" {
			t.Errorf("control-plane design reported zero messages")
		}
	}
}

func TestStalenessShape(t *testing.T) {
	res := Staleness()
	for _, row := range res.Rows {
		over, load, bounded := row[0], row[1], row[len(row)-1]
		slack := !(over == "1.00x" && load == "100%")
		if slack && bounded != "yes" {
			t.Errorf("overspeed %s load %s should be bounded", over, load)
		}
		if !slack && bounded != "no" {
			t.Errorf("overspeed %s load %s should be unbounded", over, load)
		}
	}
}

func TestHULAShape(t *testing.T) {
	res := HULABench()
	// Fastest data-plane probing must balance better than the slowest
	// control-plane probing.
	fast, _ := strconv.ParseFloat(cell(res, 0, 2), 64)
	slow, _ := strconv.ParseFloat(cell(res, len(res.Rows)-1, 2), 64)
	if fast <= slow {
		t.Errorf("fast probing Jain %.3f not better than slow %.3f", fast, slow)
	}
	if fast < 0.99 {
		t.Errorf("50us probing should balance nearly perfectly, got %.3f", fast)
	}
}

func TestProjectsAllSucceed(t *testing.T) {
	res := Projects()
	if len(res.Rows) < 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if strings.Contains(row[1], "FAILED") {
			t.Errorf("project %s failed", row[0])
		}
	}
}

func TestAblationsShape(t *testing.T) {
	res := Ablations()
	var width1Loss, widthFullLoss string
	var timerLast, timerFirst string
	for _, row := range res.Rows {
		switch {
		case row[0] == "bus width x FIFO depth" && row[1] == "width=1/slot depth=256":
			width1Loss = row[3]
		case row[0] == "bus width x FIFO depth" && row[1] == "width=full depth=256":
			widthFullLoss = row[3]
		case row[0] == "merger priority (width=1)" && strings.Contains(row[1], "last"):
			timerLast = row[3]
		case row[0] == "merger priority (width=1)" && strings.Contains(row[1], "first"):
			timerFirst = row[3]
		}
	}
	if width1Loss == "0" {
		t.Error("a 1-event-wide bus should lose TM events at high load")
	}
	if widthFullLoss != "0" {
		t.Errorf("a full-width bus lost events: %s", widthFullLoss)
	}
	if timerLast == timerFirst {
		t.Error("merger priority should change timer event delay on a narrow bus")
	}
	var piggyDelivered, dedicatedDelivered string
	for _, row := range res.Rows {
		if row[0] == "event transport" && row[2] == "data delivered" {
			if strings.Contains(row[1], "piggyback") {
				piggyDelivered = row[3]
			} else {
				dedicatedDelivered = row[3]
			}
		}
	}
	if piggyDelivered != "100.00%" {
		t.Errorf("piggybacking delivered %s, want 100%%", piggyDelivered)
	}
	if dedicatedDelivered == "100.00%" || dedicatedDelivered == "" {
		t.Errorf("dedicated event slots delivered %s, want a clear loss", dedicatedDelivered)
	}
}

func TestTofinoShape(t *testing.T) {
	res := Tofino()
	for _, row := range res.Rows {
		if row[0] == "native-events" {
			if row[2] != "100.00%" || row[3] != "100.00%" {
				t.Errorf("native at %s: delivered=%s applied=%s", row[1], row[2], row[3])
			}
		}
		if row[0] == "recirc-emulation" && row[1] == "90%" {
			if row[3] == "100.00%" {
				t.Error("emulation at 90% load should lose dequeue updates")
			}
		}
	}
}

func TestINTFilterShape(t *testing.T) {
	res := INTFilter()
	perPkt, _ := strconv.Atoi(cell(res, 0, 1))
	periodic, _ := strconv.Atoi(cell(res, 1, 1))
	filtered, _ := strconv.Atoi(cell(res, 2, 1))
	if !(filtered < periodic && periodic < perPkt) {
		t.Errorf("report volumes not ordered: filtered=%d periodic=%d perPacket=%d",
			filtered, periodic, perPkt)
	}
	if filtered == 0 {
		t.Error("filter reported nothing despite injected surges")
	}
	if perPkt < 10*filtered {
		t.Errorf("filter reduction below 10x: %d vs %d", perPkt, filtered)
	}
}

func TestAQMFamilyShape(t *testing.T) {
	res := AQMFamily()
	byPolicy := map[string][]string{}
	for _, row := range res.Rows {
		byPolicy[row[0]] = row
	}
	tail, _ := strconv.ParseFloat(byPolicy["tail-drop"][1], 64)
	for _, aqm := range []string{"RED", "PIE", "AFD", "FRED"} {
		q, _ := strconv.ParseFloat(byPolicy[aqm][1], 64)
		if q >= tail/3 {
			t.Errorf("%s mean queue %.0fKB not clearly below tail-drop's %.0fKB", aqm, q, tail)
		}
	}
	// The fair AQMs must protect the mouse nearly perfectly.
	for _, fair := range []string{"AFD", "FRED"} {
		if byPolicy[fair][2] < "99" { // "99.xx%" string compare is safe here
			t.Errorf("%s mouse delivery = %s, want >=99%%", fair, byPolicy[fair][2])
		}
	}
}
