package bench

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/state"
)

func init() {
	register(Experiment{ID: "fig3", Paper: "Figure 3 (aggregation registers for multi-event state)", Run: Fig3})
}

// Fig3 exercises the paper's Figure 3 mechanism directly: a main
// queue-size register updated by enqueue and dequeue events through
// single-ported aggregation banks, with packet events occupying the main
// port on a fraction of cycles (the load). Deltas to an already-dirty
// index coalesce in the bank, so for any load below 100% the pending
// (undrained) state converges to a bounded steady state; at exactly 100%
// no idle cycle ever drains and the main register's staleness grows for
// the whole run — the paper's overspeed argument.
func Fig3() *Result {
	res := &Result{
		ID:    "fig3",
		Title: "Aggregation-register drain behaviour vs packet load (paper Fig 3)",
		Cols: []string{"pkt load", "deferred", "drained", "backlog@50%", "backlog@end",
			"pending bytes@50%", "pending bytes@end", "mean lag (cyc)", "bounded"},
	}
	const cycles = 600_000
	const size = 256
	loads := []float64{0.50, 0.80, 0.90, 0.95, 1.00}
	rows := RunParallel(len(loads), func(trial int) []string {
		load := loads[trial]
		rng := sim.NewRNG(42)
		ag := state.NewAggregated("qsize", size, 1, "enq", "deq")
		evRate := 0.45 // enqueue and dequeue events each on 45% of cycles

		pendingAbs := func() int64 {
			var total int64
			for i := uint32(0); i < size; i++ {
				total += ag.Lag(i)
			}
			return total
		}
		var backlogHalf int
		var pendingHalf int64
		for c := uint64(1); c <= cycles; c++ {
			ag.Tick(c)
			if rng.Float64() < evRate {
				ag.Defer(0, uint32(rng.Intn(size)), +1000)
			}
			if rng.Float64() < evRate {
				ag.Defer(1, uint32(rng.Intn(size)), -1000)
			}
			if rng.Float64() < load {
				ag.Main().TryRead(uint32(rng.Intn(size)))
			}
			ag.EndCycle()
			if c == cycles/2 {
				backlogHalf = ag.Backlog()
				pendingHalf = pendingAbs()
			}
		}
		m := ag.Metrics()
		pendingEnd := pendingAbs()
		// Bounded: the undrained state did not keep growing through the
		// second half of the run.
		bounded := float64(pendingEnd) < 1.3*float64(pendingHalf)+32_000
		lag := "inf"
		if m.Drained > 0 {
			lag = fmt.Sprintf("%.0f", m.MeanLag)
		}
		return []string{
			fmt.Sprintf("%.0f%%", load*100),
			d(m.Deferred), d(m.Drained),
			d(backlogHalf), d(ag.Backlog()),
			d(pendingHalf), d(pendingEnd),
			lag, yn(bounded),
		}
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("pending bytes = sum over indices of |undrained delta|: the gap between the stale main register and the true value")
	res.Notef("coalescing bounds the dirty-index backlog at any load; at 100%% load value staleness grows all run (no idle cycles)")
	res.Notef("any load < 100%% — pipeline overspeed or larger-than-minimum packets — keeps staleness bounded, as §4 argues")
	return res
}
