package bench

import (
	"testing"

	"repro/internal/sim"
)

// TestResilienceEventDrivenLosesLess pins the experiment's headline
// claim at every swept flap rate: the event-driven re-router loses
// strictly fewer packets than the delayed control-plane baseline, and
// both converge (one failover per flap).
func TestResilienceEventDrivenLosesLess(t *testing.T) {
	for _, p := range []sim.Time{
		200 * sim.Microsecond, 500 * sim.Microsecond,
		sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond,
	} {
		seed := TrialSeed(0xacce97, int(p/sim.Microsecond))
		ed := runResilience(resilienceTrial{eventDriven: true, period: p}, seed)
		cp := runResilience(resilienceTrial{eventDriven: false, period: p}, seed)
		if ed.failovers != ed.flaps || cp.failovers != cp.flaps {
			t.Errorf("period %v: failovers ed=%d/%d cp=%d/%d, want one per flap",
				p, ed.failovers, ed.flaps, cp.failovers, cp.flaps)
		}
		if ed.lost >= cp.lost {
			t.Errorf("period %v: event-driven lost %d, control plane lost %d — want strictly fewer",
				p, ed.lost, cp.lost)
		}
	}
}

// TestResilienceSurvivesTinyEventQueue pins the coalescing guarantee:
// shrinking the LinkStatusChange FIFO to a single entry changes nothing
// about the event-driven outcome under the fastest storm.
func TestResilienceSurvivesTinyEventQueue(t *testing.T) {
	p := 200 * sim.Microsecond
	seed := TrialSeed(0xacce97, 1)
	full := runResilience(resilienceTrial{eventDriven: true, period: p}, seed)
	tiny := runResilience(resilienceTrial{eventDriven: true, period: p, evqDepth: 1}, seed)
	if tiny.lost != full.lost || tiny.failovers != full.failovers || tiny.delivered != full.delivered {
		t.Errorf("evq=1 diverged: full=%+v tiny=%+v", full, tiny)
	}
}
