package bench

import (
	"fmt"
	"hash/fnv"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// fatTreeSpec sizes one k-ary fat-tree run (Al-Fares topology: k pods of
// k/2 edge + k/2 agg switches, (k/2)^2 cores; k=8 is the scale sweep's
// 80-switch fabric). The workload is a rolling shuffle: pods take turns
// running a dense intra-pod all-to-all epoch while a thin layer of
// long-lived inter-pod flows crosses the core plane the whole time. That
// shape is what the adaptive window protocol is for — during pod p's
// epoch the other domains hold only far-future work, so p's windows are
// bounded by its own core-plane round trip instead of the global minimum
// link latency.
type fatTreeSpec struct {
	k       int
	horizon sim.Time
	// slot is one pod's shuffle epoch; pods rotate round-robin so pod p
	// is active during slots i with i%k == p.
	slot sim.Time
	// hostRate is each host's offered CBR rate during its pod's epoch.
	hostRate sim.Rate
	// interGap spaces the background inter-pod flows (one per pod).
	interGap sim.Time

	domains   int
	classic   bool
	loadAware bool
	tel       *telemetry.Collector
	perSwitch *[]uint64
}

func (s fatTreeSpec) switches() int { return s.k*s.k + (s.k/2)*(s.k/2) }

// fatTreeDomainPlan maps switch index -> domain for the structured
// (non-load-aware) assignment: whole pods spread contiguously over
// domains 0..d-2 and every core switch in its own domain d-1. Keeping
// the core plane separate matters for batching, not correctness: a core
// inside a pod domain would give that domain a direct low-latency inbound
// edge from every other pod, pinning its window width at the classic
// lookahead. Switch order is pod-major (pod p holds indices p*k..p*k+k-1,
// edges then aggs), cores last.
func fatTreeDomainPlan(k, domains int) []int {
	n := k*k + (k/2)*(k/2)
	assign := make([]int, n)
	if domains < 2 {
		return assign
	}
	podDomains := domains - 1
	for p := 0; p < k; p++ {
		d := p * podDomains / k
		for i := 0; i < k; i++ {
			assign[p*k+i] = d
		}
	}
	for c := k * k; c < n; c++ {
		assign[c] = domains - 1
	}
	return assign
}

// runFatTree builds and runs one fat-tree, returning the same metrics
// shape as the leaf-spine fabrics so the scale sweep can digest-check it
// across domain counts and batching modes.
func runFatTree(spec fatTreeSpec) fabricMetrics {
	k := spec.k
	half := k / 2
	nsw := spec.switches()
	if spec.domains < 1 {
		spec.domains = 1
	}
	if spec.domains > nsw {
		spec.domains = nsw
	}

	var net *netsim.Network
	var part *sim.Partition
	schedFor := func(i int) *sim.Scheduler { return net.Scheduler() }
	if spec.domains > 1 {
		part = sim.NewPartition(spec.domains)
		net = netsim.NewPartitioned(part)
		part.SetClassicWindows(spec.classic)
		if spec.loadAware {
			assign := planFatTreeDomains(spec)
			schedFor = func(i int) *sim.Scheduler { return part.Sched(assign[i]) }
		} else {
			assign := fatTreeDomainPlan(k, spec.domains)
			schedFor = func(i int) *sim.Scheduler { return part.Sched(assign[i]) }
		}
	} else {
		net = netsim.New(sim.NewScheduler())
	}

	// Switches, pod-major: pod p's edges at p*k+e, aggs at p*k+half+a,
	// cores at k*k+c.
	sws := make([]*core.Switch, 0, nsw)
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			sw := core.New(core.Config{
				Name: fmt.Sprintf("p%de%d", p, e), Ports: k,
			}, core.EventDriven(), schedFor(p*k+e))
			sw.MustLoad(apps.FatTreeRouter(apps.FatTreeConfig{K: k, Role: apps.FatTreeEdge, Pod: p, Idx: e}))
			sws = append(sws, sw)
		}
		for a := 0; a < half; a++ {
			sw := core.New(core.Config{
				Name: fmt.Sprintf("p%da%d", p, a), Ports: k,
			}, core.EventDriven(), schedFor(p*k+half+a))
			sw.MustLoad(apps.FatTreeRouter(apps.FatTreeConfig{K: k, Role: apps.FatTreeAgg, Pod: p, Idx: a}))
			sws = append(sws, sw)
		}
	}
	for c := 0; c < half*half; c++ {
		sw := core.New(core.Config{
			Name: fmt.Sprintf("core%d", c), Ports: k,
		}, core.EventDriven(), schedFor(k*k+c))
		sw.MustLoad(apps.FatTreeRouter(apps.FatTreeConfig{K: k, Role: apps.FatTreeCore, Idx: c}))
		sws = append(sws, sw)
	}
	edgeSW := func(p, e int) *core.Switch { return sws[p*k+e] }
	aggSW := func(p, a int) *core.Switch { return sws[p*k+half+a] }
	coreSW := func(c int) *core.Switch { return sws[k*k+c] }
	for _, sw := range sws {
		net.AddSwitch(sw)
	}

	// Wiring. Intra-pod links are short (1us) and — under the structured
	// plan — intra-domain. The agg-core links carry a per-pod latency
	// (5us + 2.5us per pod index): the fiber diversity that gives each pod
	// domain its own conservative horizon.
	intraPod := sim.Microsecond
	coreLat := func(p int) sim.Time { return 5*sim.Microsecond + sim.Time(p)*2500*sim.Nanosecond }
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				net.Connect(edgeSW(p, e), half+a, aggSW(p, a), e, intraPod)
			}
		}
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				net.Connect(aggSW(p, a), half+j, coreSW(a*half+j), p, coreLat(p))
			}
		}
	}
	if spec.tel != nil {
		net.EnableTelemetry(spec.tel)
	}

	// Hosts: 10.p.e.(2+h) on edge (p,e) port h.
	hosts := make(map[[3]int]*netsim.Host, k*half*half)
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				host := net.NewHost(fmt.Sprintf("h%d.%d.%d", p, e, h), apps.FatTreeHostIP(p, e, h))
				net.Attach(host, edgeSW(p, e), h, 500*sim.Nanosecond)
				hosts[[3]int{p, e, h}] = host
			}
		}
	}

	rng := sim.NewRNG(11)

	// Rolling shuffle epochs: during pod p's slots every host in the pod
	// streams CBR to the same-numbered host one edge over (a 3-switch
	// path through the pod's agg layer, never the core plane).
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				src := hosts[[3]int{p, e, h}]
				fl := packet.Flow{
					Src: src.IP, Dst: apps.FatTreeHostIP(p, (e+1)%half, h),
					SrcPort: uint16(1000 + p*half*half + e*half + h), DstPort: 80,
					Proto: packet.ProtoUDP,
				}
				g := workload.NewGen(src.Scheduler(), rng.Split(), func(d []byte) { src.Send(d) })
				cycle := sim.Time(k) * spec.slot
				var arm func(start sim.Time)
				arm = func(start sim.Time) {
					if start >= spec.horizon {
						return
					}
					src.Scheduler().At(start, func() {
						end := start + spec.slot
						if end > spec.horizon {
							end = spec.horizon
						}
						g.StartCBR(workload.CBRConfig{
							Flow: fl, Size: workload.FixedSize(256),
							Rate: spec.hostRate, Until: end,
						})
					})
					arm(start + cycle)
				}
				arm(sim.Time(p) * spec.slot)
			}
		}
	}

	// Background inter-pod flows: one thin stream per pod crossing the
	// core plane for the whole run. They keep the core domain honest —
	// its transit events genuinely bound every pod's window edges.
	for p := 0; p < k; p++ {
		src := hosts[[3]int{p, 0, 0}]
		fl := packet.Flow{
			Src: src.IP, Dst: apps.FatTreeHostIP((p+1)%k, 0, 1),
			SrcPort: uint16(4000 + p), DstPort: 443, Proto: packet.ProtoUDP,
		}
		g := workload.NewGen(src.Scheduler(), rng.Split(), func(d []byte) { src.Send(d) })
		// Rate chosen so one 256B frame (280B on the wire) leaves every
		// interGap: sparse enough that core-plane transit events stay far
		// apart relative to the agg-core latencies.
		g.StartCBR(workload.CBRConfig{
			Flow: fl, Size: workload.FixedSize(256),
			Rate:  sim.Rate((256 + 24) * 8 * int64(sim.Second) / int64(spec.interGap)),
			Until: spec.horizon,
		})
	}

	net.Run(spec.horizon)
	faults.MustAudit(net)
	if spec.tel != nil {
		net.RecordLinkTelemetry(spec.tel)
	}

	var m fabricMetrics
	dig := fnv.New64a()
	put := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			dig.Write(buf[:])
		}
	}
	for _, sw := range net.Switches() {
		st := sw.Stats()
		m.cycles += st.Cycles
		m.txPackets += st.TxPackets
		put(st.RxPackets, st.TxPackets, st.Cycles, st.Generated, st.PipelineDrops)
		if spec.perSwitch != nil {
			*spec.perSwitch = append(*spec.perSwitch, st.Cycles)
		}
	}
	if part != nil {
		m.windows, m.barriers = part.Windows(), part.Barriers()
	}
	for _, l := range net.Links() {
		for dir := 0; dir < 2; dir++ {
			c := l.Counters(dir)
			put(c.Sent, c.Delivered, c.LostAtSend, c.LostInFlight, c.InFlight())
		}
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				host := hosts[[3]int{p, e, h}]
				put(host.RxPackets, host.RxBytes)
			}
		}
	}
	m.digest = dig.Sum64()
	return m
}

// planFatTreeDomains mirrors planFabricDomains for the fat tree: a short
// single-scheduler calibration pass measures per-switch cycle load, and
// sim.PlanDomains turns it into the assignment. Core switches see far
// fewer cycles than edges, so the plan packs them with light pods —
// byte-identical output either way, it only moves wall-clock load.
func planFatTreeDomains(spec fatTreeSpec) []int {
	cal := spec
	cal.domains = 1
	cal.classic, cal.loadAware = false, false
	cal.tel = nil
	cal.horizon = spec.horizon / 8
	if min := sim.Time(spec.k) * spec.slot; cal.horizon < min {
		cal.horizon = min // at least one full epoch rotation
	}
	if cal.horizon > spec.horizon {
		cal.horizon = spec.horizon
	}
	var weights []uint64
	cal.perSwitch = &weights
	runFatTree(cal)
	return sim.PlanDomains(weights, spec.domains)
}
