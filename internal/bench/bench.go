// Package bench implements the experiment harness: one runnable
// experiment per table and figure of the paper (and per quantified inline
// claim), each returning a formatted result table. The root-level
// benchmarks in bench_test.go and the cmd/evbench tool both drive these
// functions; EXPERIMENTS.md records the paper-vs-measured outcomes.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's output: a titled table plus free-form notes.
type Result struct {
	ID    string // experiment id, e.g. "table3" or "fig3"
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
	// Perf holds wall-clock samples attached by experiments that time
	// real execution. They are host-dependent, so String deliberately
	// omits them — the rendered table stays byte-identical across hosts,
	// parallelism, and domain counts. They flow into -benchjson output.
	Perf []PerfSample
}

// PerfSample is one host wall-clock measurement of a simulation run.
type PerfSample struct {
	Label        string  `json:"label"`
	Domains      int     `json:"domains"`
	WallSeconds  float64 `json:"wall_seconds"`
	Cycles       uint64  `json:"cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Speedup is relative to the same workload's 1-domain sample.
	Speedup float64 `json:"speedup,omitempty"`
	// Efficiency is Speedup divided by the cores the run could actually
	// use: min(Domains, NumCPU). On a multi-core host this is the
	// per-core scaling efficiency; on a single core it degenerates to
	// Speedup (and the barrier metrics below carry the story instead).
	Efficiency float64 `json:"per_core_efficiency,omitempty"`
	// Windows and Barriers count the partition's rounds for this run
	// (zero when single-scheduler).
	Windows  uint64 `json:"windows,omitempty"`
	Barriers uint64 `json:"barriers,omitempty"`
	// BarrierReduction, set on a fabric's widest adaptive sample, is the
	// classic fixed-width twin's barrier count divided by this run's —
	// how many synchronization rounds adaptive window batching removed.
	BarrierReduction float64 `json:"barrier_reduction,omitempty"`
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	// Size widths over header and every row, extending past the header
	// when rows are ragged (wider than Cols) so all columns still align.
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Cols)
	sep := make([]string, len(r.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Paper string // which paper artifact it reproduces
	Run   func() *Result
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment, sorted by id.
func All() []Experiment {
	var out []Experiment
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// pct formats a ratio as a percentage.
func pct(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*num/den)
}

// d formats an integer.
func d[T ~int | ~int64 | ~uint64 | ~uint32 | ~int32 | ~uint](v T) string {
	return fmt.Sprintf("%d", v)
}
