package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "fig4", Paper: "Figure 4 (SUME Event Switch at line rate)", Run: Fig4})
}

// Fig4 demonstrates the paper's §5 feasibility claim on the Figure 4
// datapath model: with every event source active (enqueue/dequeue taps,
// timers, a packet generator, link monitoring) the switch still forwards
// minimum-size packets arriving at 100% of line rate on all four ports,
// because event metadata piggybacks on packet slots and empty packets
// are only injected on idle cycles.
func Fig4() *Result {
	res := &Result{
		ID:    "fig4",
		Title: "Line-rate forwarding with all event sources active (paper Fig 4, §5)",
		Cols: []string{"arch", "frame size", "offered load", "delivered", "empty slots",
			"events merged", "event FIFO drops"},
	}
	const horizon = 4 * sim.Millisecond
	type point struct {
		mode string
		size int
	}
	var grid []point
	for _, mode := range []string{"baseline", "event-driven"} {
		for _, size := range []int{60, 576, 1514} {
			grid = append(grid, point{mode, size})
		}
	}
	rows := RunParallel(len(grid), func(trial int) []string {
		pt := grid[trial]
		st, offered, delivered := runLineRate(pt.mode, pt.size, 1.0, horizon)
		var merged, fifoDrops uint64
		for k := 0; k < events.NumKinds; k++ {
			if !events.Kind(k).IsPacketEvent() {
				merged += st.EventsMerged[k]
			}
			fifoDrops += st.EventsDropped[k]
		}
		return []string{pt.mode, fmt.Sprintf("%dB", pt.size), "100%",
			pct(float64(delivered), float64(offered)),
			d(st.EmptySlots), d(merged), d(fifoDrops)}
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("delivered counts packets out vs packets offered over a %v run (in-flight tail excluded)", horizon)
	res.Notef("event support must not reduce the delivered fraction at any frame size")
	return res
}

// runLineRate drives all 4 ports at the given load with fixed-size
// frames through a forwarding program, with the full event machinery
// active in event-driven mode. It returns the switch stats plus offered
// and delivered packet counts.
func runLineRate(mode string, size int, load float64, horizon sim.Time) (core.Stats, uint64, uint64) {
	sched := sim.NewScheduler()
	arch := core.Baseline()
	if mode == "event-driven" {
		arch = core.EventDriven()
	}
	sw := core.New(core.Config{Overspeed: 1.1}, arch, sched)

	prog := pisa.NewProgram("linerate")
	prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		// Port pairing 0<->1, 2<->3 keeps every egress exactly at its
		// ingress rate.
		ctx.EgressPort = ctx.Pkt.InPort ^ 1
	})
	if mode == "event-driven" {
		occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 64,
			events.BufferEnqueue, events.BufferDequeue))
		prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
		})
		prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
		})
		prog.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {})
		prog.HandleFunc(events.PacketTransmitted, func(ctx *pisa.Context) {})
		prog.HandleFunc(events.GeneratedPacket, func(ctx *pisa.Context) {
			// Generated reports leave on port 0's pair too; they add
			// (tiny) extra load on top of 100%.
			ctx.EgressPort = 0
		})
	}
	sw.MustLoad(prog)
	if mode == "event-driven" {
		mustOK(sw.ConfigureTimer(0, 100*sim.Microsecond))
		mustOK(sw.AddGenerator(sim.Millisecond, func(seq uint64) ([]byte, int) {
			return packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(1),
				&packet.Report{Kind: packet.ReportBufferSample, Seq: uint32(seq)}), -1
		}))
	}

	rng := sim.NewRNG(99)
	var gens []*workload.Gen
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fl := packet.Flow{
			Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP,
		}
		g.StartSaturate(workload.SaturateConfig{
			Flow: fl, Rate: 10 * sim.Gbps, Load: load, Size: size, Until: horizon,
		})
		gens = append(gens, g)
	}
	// Silence the event sources at the horizon, then run on so queued
	// tail packets drain.
	sched.At(horizon, func() {
		sw.StopGenerators()
		sw.StopTimer(0)
	})
	sched.Run(horizon + 2*sim.Millisecond)
	mustConserve(sw)

	st := sw.Stats()
	var offered uint64
	for _, g := range gens {
		offered += g.SentPackets
	}
	return st, offered, st.TxPackets - st.Generated
}
