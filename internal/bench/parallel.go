package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry/self"
)

// parallelism is the worker-pool width used by RunParallel. It defaults
// to the number of usable CPUs; SetParallelism(1) forces fully serial
// execution (useful for A/B-ing determinism and for profiling a single
// trial).
var parallelism atomic.Int32

func init() {
	parallelism.Store(int32(runtime.GOMAXPROCS(0)))
}

// SetParallelism sets the number of workers RunParallel uses. Values
// below 1 are treated as 1.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current worker-pool width.
func Parallelism() int { return int(parallelism.Load()) }

// RunParallel evaluates fn(0..n-1) on a worker pool and returns the
// results indexed by trial, so output ordering is deterministic and
// independent of the worker count and interleaving.
//
// Each trial must be self-contained: build its own sim.Scheduler, its
// own switches, and seed its own RNGs from constants or from the trial
// index — never from shared mutable state. A Scheduler is a single
// logical thread (not concurrency-safe), but distinct sweep points of an
// experiment are independent simulations, which is exactly the
// parallelism this helper exploits. Under this contract the rendered
// experiment tables are byte-identical at every parallelism level.
// Worker panics do not kill the campaign outright: a panicking trial is
// retried from its last checkpoint — the trial boundary, since trials
// are self-contained — up to trialAttempts times with linear backoff. A
// trial that panics on every attempt re-panics with context, and any
// trials already recorded in the active Journal survive for the next
// -resume.
func RunParallel[T any](n int, fn func(trial int) T) []T {
	if self.On() {
		self.TrialsTotal.Add(uint64(n))
	}
	run := fn
	if j := currentJournal(); j != nil {
		call := j.nextCall()
		run = func(trial int) T {
			if v, ok := journalLookup[T](j, call, trial); ok {
				return v
			}
			v := runTrial(fn, trial)
			journalRecord(j, call, trial, v)
			return v
		}
	} else {
		run = func(trial int) T { return runTrial(fn, trial) }
	}
	if self.On() {
		inner := run
		run = func(trial int) T {
			v := inner(trial)
			self.TrialsDone.Inc()
			return v
		}
	}
	out := make([]T, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = run(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = run(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// trialAttempts bounds how many times a panicking trial is retried;
// trialBackoff is the linear backoff base between attempts (a variable
// so the retry tests do not sleep for real).
const trialAttempts = 3

var trialBackoff = 5 * time.Millisecond

// runTrial executes one trial with panic recovery and bounded retry.
func runTrial[T any](fn func(trial int) T, trial int) T {
	var lastPanic any
	for attempt := 1; attempt <= trialAttempts; attempt++ {
		v, panicked := tryTrial(fn, trial)
		if panicked == nil {
			return v
		}
		lastPanic = panicked
		if attempt < trialAttempts {
			time.Sleep(time.Duration(attempt) * trialBackoff)
		}
	}
	panic(fmt.Sprintf("bench: trial %d panicked on all %d attempts, last: %v", trial, trialAttempts, lastPanic))
}

func tryTrial[T any](fn func(trial int) T, trial int) (v T, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	v = fn(trial)
	return v, nil
}

// TrialSeed derives a per-trial RNG seed from an experiment's base seed
// and the trial index using a splitmix64 step, so trials get
// decorrelated deterministic streams no matter which worker runs them.
func TrialSeed(base uint64, trial int) uint64 {
	x := base + uint64(trial)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
