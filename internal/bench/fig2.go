package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "fig2", Paper: "Figures 1-2 (baseline PSA vs event-driven architecture)", Run: Fig2})
}

// Fig2 contrasts the two programming models on the same task: tracking
// per-port buffer occupancy in the ingress pipeline. The event-driven
// program (Figure 2's logical architecture) updates state on enqueue and
// dequeue events and is exact up to bounded staleness; the baseline
// program (Figure 1's PSA) only sees packet arrivals in ingress and must
// approximate occupancy — here with the natural arrival-minus-estimated-
// drain heuristic. We sample the true traffic-manager occupancy and
// report each design's estimation error.
func Fig2() *Result {
	const horizon = 20 * sim.Millisecond
	const egress = 1

	type run struct {
		name string
		err  *sim.Stats
	}
	var runs []run

	// --- Event-driven design -------------------------------------------
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
		prog := pisa.NewProgram("occupancy-events")
		occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 4,
			events.BufferEnqueue, events.BufferDequeue))
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = egress })
		prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
		})
		prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
		})
		sw.MustLoad(prog)
		errs := sim.NewStats()
		driveOccupancyWorkload(sched, sw, horizon)
		sched.Every(100*sim.Microsecond, func() {
			est := float64(occ.Stale(uint32(egress)))
			truth := float64(sw.TM().PortBytes(egress))
			errs.Add(math.Abs(est - truth))
		})
		sched.Run(horizon)
		mustConserve(sw)
		runs = append(runs, run{"event-driven (enq/deq events)", errs})
	}

	// --- Baseline PSA design -------------------------------------------
	{
		sched := sim.NewScheduler()
		sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.Baseline(), sched)
		prog := pisa.NewProgram("occupancy-baseline")
		// Ingress-side estimate: add on arrival, and guess the drain by
		// assuming the port transmits continuously at line rate while
		// the estimate is positive. This is the best an ingress-only
		// view can do without enqueue/dequeue events (cf. Snappy).
		var est float64
		var lastUpdate sim.Time
		lineBytesPerPs := float64(10*sim.Gbps) / 8 / float64(sim.Second)
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
			ctx.EgressPort = egress
			drained := float64(ctx.Now-lastUpdate) * lineBytesPerPs
			lastUpdate = ctx.Now
			est -= drained
			if est < 0 {
				est = 0
			}
			est += float64(ctx.Pkt.Len())
		})
		sw.MustLoad(prog)
		errs := sim.NewStats()
		driveOccupancyWorkload(sched, sw, horizon)
		sched.Every(100*sim.Microsecond, func() {
			drained := float64(sched.Now()-lastUpdate) * lineBytesPerPs
			cur := est - drained
			if cur < 0 {
				cur = 0
			}
			truth := float64(sw.TM().PortBytes(egress))
			errs.Add(math.Abs(cur - truth))
		})
		sched.Run(horizon)
		mustConserve(sw)
		runs = append(runs, run{"baseline PSA (ingress-only estimate)", errs})
	}

	res := &Result{
		ID:    "fig2",
		Title: "Per-port occupancy tracking: event-driven vs baseline PSA (paper Figs 1-2)",
		Cols:  []string{"design", "mean |error| (B)", "p99 |error| (B)", "max |error| (B)"},
	}
	for _, r := range runs {
		res.AddRow(r.name,
			fmt.Sprintf("%.0f", r.err.Mean()),
			fmt.Sprintf("%.0f", r.err.Percentile(99)),
			fmt.Sprintf("%.0f", r.err.Max()))
	}
	if runs[0].err.Mean() > 0 && runs[1].err.Mean() > 0 {
		res.Notef("error ratio baseline/event-driven = %.1fx (mean)", runs[1].err.Mean()/runs[0].err.Mean())
	}
	res.Notef("event-driven error is bounded staleness (aggregation drain lag); baseline error is structural")
	return res
}

// driveOccupancyWorkload offers bursty on/off traffic that repeatedly
// builds and drains the egress queue: 2:1 oversubscription during bursts.
func driveOccupancyWorkload(sched *sim.Scheduler, sw *core.Switch, horizon sim.Time) {
	rng := sim.NewRNG(1234)
	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 1, 0, 1),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	gen0 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	gen2 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
	// Alternating 1ms bursts at full rate from two input ports into one
	// 10G egress, with idle gaps for draining.
	for start := sim.Time(0); start < horizon; start += 2 * sim.Millisecond {
		start := start
		sched.At(start, func() {
			gen0.StartSaturate(workload.SaturateConfig{
				Flow: fl, Rate: 10 * sim.Gbps, Load: 1.0, Size: 1500,
				Until: start + sim.Millisecond,
			})
			fl2 := fl
			fl2.SrcPort = 77
			gen2.StartSaturate(workload.SaturateConfig{
				Flow: fl2, Rate: 10 * sim.Gbps, Load: 1.0, Size: 1500,
				Until: start + sim.Millisecond,
			})
		})
	}
}
