package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "tofino", Paper: "§6: emulating dequeue events by recirculation on today's devices", Run: Tofino})
}

// Tofino quantifies the paper's §6 observation: a Tofino-class baseline
// device can *emulate* dequeue events by recirculating a notification
// from egress back into the ingress pipeline — but the emulation spends
// pipeline slots and recirculation-port bandwidth that native event
// support does not.
//
// Both designs track per-port buffer occupancy. The native design uses
// enqueue/dequeue events. The emulation adds occupancy at ingress
// admission and, in the PSA egress pipeline, emits a 60B
// dequeue-notification frame through a loopback (recirculation) port
// that the ingress pipeline consumes to subtract. We sweep the offered
// load and report data delivery and how many dequeue updates survive the
// recirculation path.
func Tofino() *Result {
	res := &Result{
		ID:    "tofino",
		Title: "Native events vs recirculation emulation of dequeue events (paper §6)",
		Cols: []string{"design", "load", "data delivered", "deq updates applied",
			"occupancy mean |err| (B)"},
	}
	type point struct {
		load float64
		mode string
	}
	var grid []point
	for _, load := range []float64{0.25, 0.50, 0.90} {
		for _, mode := range []string{"native-events", "recirc-emulation"} {
			grid = append(grid, point{load, mode})
		}
	}
	rows := RunParallel(len(grid), func(trial int) []string {
		pt := grid[trial]
		delivered, applied, err := runTofino(pt.mode, pt.load)
		return []string{pt.mode, fmt.Sprintf("%.0f%%", pt.load*100),
			delivered, applied, fmt.Sprintf("%.0f", err)}
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("4 data ports of min-size frames + one dedicated recirculation port (port 4)")
	res.Notef("the emulation's dequeue notifications compete for pipeline slots and for the")
	res.Notef("recirculation port's line rate: beyond ~25%% data load they overflow and occupancy drifts")
	res.Notef("native event metadata rides existing slots: full delivery and every update applied at any load")
	return res
}

func runTofino(mode string, load float64) (delivered, applied string, meanErr float64) {
	const horizon = 3 * sim.Millisecond
	const recircPort = 4
	sched := sim.NewScheduler()

	arch := core.EventDriven()
	if mode == "recirc-emulation" {
		arch = core.Baseline()
	}
	sw := core.New(core.Config{Ports: 5, Overspeed: 1.1, QueueCapBytes: 256 << 10}, arch, sched)

	prog := pisa.NewProgram(mode)
	occ := prog.AddRegister(pisa.NewAggregatedRegister("occ", 8,
		events.BufferEnqueue, events.BufferDequeue))
	var deqApplied, deqExpected uint64

	if mode == "native-events" {
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
			ctx.EgressPort = ctx.Pkt.InPort ^ 1
		})
		prog.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
			occ.Add(ctx, uint32(ctx.Ev.Port), int64(ctx.Ev.PktLen))
		})
		prog.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
			deqApplied++
			occ.Add(ctx, uint32(ctx.Ev.Port), -int64(ctx.Ev.PktLen))
		})
	} else {
		prog.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
			// Recirculated dequeue notification?
			if ctx.Pkt.InPort == recircPort && ctx.Has(packet.LayerReport) {
				rep := ctx.Parsed.Report
				deqApplied++
				occ.Add(ctx, uint32(rep.V1), -int64(rep.V0))
				ctx.Drop()
				return
			}
			// Data packet: account the "enqueue" at ingress admission —
			// the only place the baseline ingress pipeline can.
			out := ctx.Pkt.InPort ^ 1
			occ.Add(ctx, uint32(out), int64(ctx.Pkt.Len()))
			ctx.EgressPort = out
		})
		// PSA egress pipeline: emit the dequeue notification into the
		// recirculation port.
		prog.HandleFunc(events.EgressPacket, func(ctx *pisa.Context) {
			if ctx.Ev.Port == recircPort {
				return // notifications themselves are not re-notified
			}
			rep := &packet.Report{
				Kind: packet.ReportBufferSample,
				V0:   uint64(ctx.Pkt.Len()),
				V1:   uint32(ctx.Ev.Port),
			}
			ctx.Emit(packet.BuildControlFrame(packet.Broadcast,
				packet.MACFromUint64(9), rep), recircPort)
		})
	}
	mustOK(sw.Load(prog))

	// External loopback on the recirculation port; count data
	// deliveries directly.
	var dataTx uint64
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if port == recircPort {
			sw.Inject(recircPort, pkt.Data)
			return
		}
		dataTx++
	}

	// Min-size data on ports 0-3 (paired 0<->1, 2<->3).
	rng := sim.NewRNG(21)
	var gens []*workload.Gen
	for port := 0; port < 4; port++ {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		fl := packet.Flow{
			Src: packet.IP4(10, byte(port), 0, 1), Dst: packet.IP4(10, byte(port^1), 0, 1),
			SrcPort: uint16(1000 + port), DstPort: 80, Proto: packet.ProtoUDP,
		}
		g.StartSaturate(workload.SaturateConfig{
			Flow: fl, Rate: 10 * sim.Gbps, Load: load, Size: 60, Until: horizon,
		})
		gens = append(gens, g)
	}

	// Sample occupancy error against the TM ground truth.
	errStat := sim.NewStats()
	sched.Every(50*sim.Microsecond, func() {
		for port := uint32(0); port < 4; port++ {
			est := float64(int64(occ.Stale(port)))
			truth := float64(sw.TM().PortBytes(int(port)))
			errStat.Add(math.Abs(est - truth))
		}
	})

	sched.Run(horizon + 2*sim.Millisecond)

	var offered uint64
	for _, g := range gens {
		offered += g.SentPackets
	}
	deqExpected = dataTx // one dequeue per delivered data packet

	delivered = pct(float64(dataTx), float64(offered))
	applied = pct(float64(deqApplied), float64(deqExpected))
	return delivered, applied, errStat.Mean()
}
