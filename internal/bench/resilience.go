package bench

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "resilience",
		Paper: "§3/§5 fast re-route: failover convergence under link-flap storms, event-driven vs control plane",
		Run:   ResilienceBench,
	})
}

// resilienceTrial is one sweep point: failover mode × flap rate, plus
// optional event-queue capacity rows that stress the coalescing policy.
type resilienceTrial struct {
	eventDriven bool
	period      sim.Time // flap cadence
	evqDepth    int      // 0 = architecture default
}

// ResilienceBench quantifies the paper's resilience claim (§5: "when a
// link failure is detected, the prototype updates its forwarding
// decisions immediately"): a fast re-router either sees LinkStatusChange
// in the data plane (event-driven architecture) or learns port state a
// control-channel latency late (baseline architecture + agent). A
// deterministic flap storm from internal/faults sweeps the flap rate;
// the measurements are packets lost during recovery and time to the
// first backup-path transmit after each failure.
//
// The tail rows rerun the fastest storm with the LinkStatusChange FIFO
// shrunk to 2 and then 1 entries: per-port coalescing keeps the final
// link state intact, so the re-router stays correct with a queue a
// storm would otherwise overflow.
func ResilienceBench() *Result {
	res := &Result{
		ID:    "resilience",
		Title: "fast re-route under flap storms: event-driven FRR vs delayed control plane",
		Cols: []string{"mode", "flap period", "flaps", "failovers",
			"sent", "delivered", "lost", "lost/flap", "reroute time"},
	}
	var trials []resilienceTrial
	for _, p := range []sim.Time{
		200 * sim.Microsecond, 500 * sim.Microsecond,
		sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond,
	} {
		trials = append(trials,
			resilienceTrial{eventDriven: true, period: p},
			resilienceTrial{eventDriven: false, period: p},
		)
	}
	trials = append(trials,
		resilienceTrial{eventDriven: true, period: 200 * sim.Microsecond, evqDepth: 2},
		resilienceTrial{eventDriven: true, period: 200 * sim.Microsecond, evqDepth: 1},
	)

	rows := RunParallel(len(trials), func(trial int) []string {
		tr := trials[trial]
		m := runResilience(tr, TrialSeed(0x5e511, trial))
		mode := "control plane"
		if tr.eventDriven {
			mode = "event-driven"
			if tr.evqDepth > 0 {
				mode = fmt.Sprintf("event-driven (evq=%d)", tr.evqDepth)
			}
		}
		return []string{
			mode, tr.period.String(), d(m.flaps), d(m.failovers),
			d(m.sent), d(m.delivered), d(m.lost),
			fmt.Sprintf("%.2f", float64(m.lost)/float64(m.flaps)),
			m.reroute.String(),
		}
	})
	for _, row := range rows {
		res.AddRow(row...)
	}
	res.Notef("storm: primary link down 100us per flap over a 25ms window; CBR source at one 200B packet per ~5.6us")
	res.Notef("control plane: baseline architecture, port state applied via a 1.3ms-latency agent (netsim OnLinkChange -> FRR.SetPortState)")
	res.Notef("reroute time: mean gap from each failure to the first backup-path transmit")
	res.Notef("evq rows: LinkStatusChange FIFO shrunk under the same storm; CoalescePort keeps state correct with zero event drops")
	res.Notef("every trial passes faults.Audit packet/event conservation")
	return res
}

// fwdProgram forwards every ingress packet to one port.
func fwdProgram(port int) *pisa.Program {
	p := pisa.NewProgram("fwd")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) { ctx.EgressPort = port })
	return p
}

// resilienceMetrics is one trial's measurement.
type resilienceMetrics struct {
	flaps, failovers      int
	sent, delivered, lost uint64
	reroute               sim.Time
}

// runResilience builds src -- frr =(primary/backup)= sink -- dst, arms
// the flap storm on the primary, and measures loss and re-route latency.
func runResilience(tr resilienceTrial, seed uint64) resilienceMetrics {
	const (
		horizon    = 30 * sim.Millisecond
		stormStart = sim.Millisecond
		stormSpan  = 25 * sim.Millisecond
		downTime   = 100 * sim.Microsecond
	)
	// Two switches, so at most two domains: frr | sink. The storm is
	// bounded, so it unrolls into scheduled per-side link changes that
	// work across the domain boundary; all measurement hooks (link-change
	// observer, transmit tap, control-plane agent) live on frr's domain.
	domains := Domains()
	if domains > 2 {
		domains = 2
	}
	var sched, sinkSched *sim.Scheduler
	var net *netsim.Network
	if domains > 1 {
		part := sim.NewPartition(domains)
		net = netsim.NewPartitioned(part)
		sched, sinkSched = part.Sched(0), part.Sched(1)
	} else {
		sched = sim.NewScheduler()
		sinkSched = sched
		net = netsim.New(sched)
	}

	arch := core.EventDriven()
	if !tr.eventDriven {
		arch = core.Baseline()
	}
	cfg := core.Config{Name: "frr"}
	if tr.evqDepth > 0 {
		cfg.EventQueueDepth = tr.evqDepth
	}
	frrSw := core.New(cfg, arch, sched)
	fl := packet.Flow{
		Src: packet.IP4(10, 0, 0, 2), Dst: packet.IP4(10, 1, 0, 2),
		SrcPort: 4000, DstPort: 80, Proto: packet.ProtoUDP,
	}
	dstIdx := int(uint32(fl.Dst) >> 16)
	r, prog := apps.NewFRR(apps.FRRConfig{
		Primary:      map[int]int{dstIdx: 1},
		Backup:       map[int]int{dstIdx: 2},
		NoLinkEvents: !tr.eventDriven,
	})
	frrSw.MustLoad(prog)

	sink := core.New(core.Config{Name: "sink"}, core.Baseline(), sinkSched)
	sink.MustLoad(fwdProgram(2))
	net.AddSwitch(frrSw)
	net.AddSwitch(sink)
	src := net.NewHost("src", fl.Src)
	dst := net.NewHost("dst", fl.Dst)
	net.Attach(src, frrSw, 0, 0)
	primary := net.Connect(frrSw, 1, sink, 0, 500*sim.Nanosecond)
	net.Connect(frrSw, 2, sink, 1, 500*sim.Nanosecond)
	net.Attach(dst, sink, 2, 0)

	// The baseline's only path to port state: an out-of-band observer
	// feeding a control-plane agent with a fixed 1.3ms apply latency
	// (deliberately not a multiple of any swept flap period, so the
	// stale view never phase-locks with the storm).
	var agent *controlplane.Agent
	if !tr.eventDriven {
		agent = controlplane.New(sched, sim.NewRNG(seed))
		agent.Latency = 1300 * sim.Microsecond
		agent.Jitter = 0
		net.OnLinkChange = func(l *netsim.Link, up bool) {
			if l == primary {
				agent.Do(1, func() { r.SetPortState(1, up) })
			}
		}
	}

	// Re-route latency probes: Fail times from the storm, first
	// backup-path transmit after each.
	var failAt, backupTx []sim.Time
	prevHook := net.OnLinkChange
	net.OnLinkChange = func(l *netsim.Link, up bool) {
		if l == primary && !up {
			failAt = append(failAt, sched.Now())
		}
		if prevHook != nil {
			prevHook(l, up)
		}
	}
	net.TapTransmit(frrSw, func(port int, _ []byte) {
		if port == 2 {
			backupTx = append(backupTx, sched.Now())
		}
	})

	flaps := int(stormSpan / tr.period)
	eng := faults.MustApply(net, &faults.Schedule{Seed: seed, Specs: []faults.Spec{{
		Kind: faults.FlapStorm, Link: 1, Start: stormStart,
		Period: tr.period, Down: downTime, Count: flaps,
	}}}, faults.Options{})

	// 200B frames at 320 Mb/s: one packet per ~5.6us, so a 100us outage
	// holds ~18 packets' worth of traffic hostage.
	gen := workload.NewGen(sched, sim.NewRNG(seed+1), func(d []byte) { src.Send(d) })
	gen.StartCBR(workload.CBRConfig{
		Flow: fl, Size: workload.FixedSize(200),
		Rate: 320 * sim.Mbps, Until: horizon - 2*sim.Millisecond,
	})
	net.Run(horizon)

	if rep := faults.Audit(net); !rep.OK() {
		panic("resilience: " + rep.String())
	}

	m := resilienceMetrics{
		flaps:     eng.Stats(0).Flaps,
		failovers: int(r.Failovers),
		sent:      net.Links()[0].Sent(),
		delivered: dst.RxPackets,
	}
	m.lost = m.sent - m.delivered
	// Mean time from each failure to the first backup-path transmit
	// before the next failure.
	var total sim.Time
	var counted int
	for i, f := range failAt {
		limit := horizon
		if i+1 < len(failAt) {
			limit = failAt[i+1]
		}
		for _, tx := range backupTx {
			if tx >= f && tx < limit {
				total += tx - f
				counted++
				break
			}
		}
	}
	if counted > 0 {
		m.reroute = total / sim.Time(counted)
	}
	return m
}
