package bench

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// withQuickRetry zeroes the retry backoff so panic tests do not sleep.
func withQuickRetry(fn func()) {
	prev := trialBackoff
	trialBackoff = time.Duration(0)
	defer func() { trialBackoff = prev }()
	fn()
}

// TestTrialPanicRetry verifies a worker panic does not kill the
// campaign: the trial is retried at the trial boundary and the final
// results are indistinguishable from a panic-free run.
func TestTrialPanicRetry(t *testing.T) {
	withQuickRetry(func() {
		withParallelism(8, func() {
			var attempts [40]atomic.Int32
			out := RunParallel(40, func(trial int) int {
				if attempts[trial].Add(1) == 1 && trial%3 == 0 {
					panic("transient trial failure")
				}
				return trial * 11
			})
			for i, v := range out {
				if v != i*11 {
					t.Fatalf("out[%d] = %d, want %d", i, v, i*11)
				}
				want := int32(1)
				if i%3 == 0 {
					want = 2
				}
				if got := attempts[i].Load(); got != want {
					t.Errorf("trial %d ran %d times, want %d", i, got, want)
				}
			}
		})
	})
}

// TestTrialPanicExhaustsAttempts verifies a deterministically broken
// trial still fails the campaign after the bounded retries, with the
// panic context preserved.
func TestTrialPanicExhaustsAttempts(t *testing.T) {
	withQuickRetry(func() {
		withParallelism(1, func() {
			var calls atomic.Int32
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("always-panicking trial did not re-panic")
				}
				msg, _ := r.(string)
				if !strings.Contains(msg, "all 3 attempts") || !strings.Contains(msg, "broken forever") {
					t.Errorf("re-panic %q missing attempt count or original payload", msg)
				}
				if got := calls.Load(); got != trialAttempts {
					t.Errorf("trial ran %d times, want %d", got, trialAttempts)
				}
			}()
			RunParallel(1, func(trial int) int {
				calls.Add(1)
				panic("broken forever")
			})
		})
	})
}

// journaledRun executes one experiment with a journal installed and
// returns the rendered table.
func journaledRun(t *testing.T, e Experiment, path string) (string, *Journal) {
	t.Helper()
	j, err := OpenJournal(path, e.ID)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	SetJournal(j)
	defer SetJournal(nil)
	out := e.Run().String()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out, j
}

// TestJournalResumeByteIdentical is the campaign-resumption acceptance
// pin at -parallel 8 -domains 2: a journaled run, a fully resumed run,
// and a resume from a truncated journal (simulating a crash mid-append,
// torn trailing line included) all render byte-identical tables.
func TestJournalResumeByteIdentical(t *testing.T) {
	e, ok := Get("table2")
	if !ok {
		t.Fatal("experiment table2 not registered")
	}
	path := filepath.Join(t.TempDir(), "table2.journal")

	withParallelism(8, func() {
		withDomains(2, func() {
			baseline := e.Run().String()

			first, j1 := journaledRun(t, e, path)
			if first != baseline {
				t.Fatalf("journaled run diverges from plain run:\n--- plain ---\n%s\n--- journaled ---\n%s", baseline, first)
			}
			if j1.Hits() != 0 {
				t.Errorf("fresh journal served %d hits, want 0", j1.Hits())
			}
			if j1.Recorded() == 0 {
				t.Fatal("journaled run recorded no trials")
			}

			// Full resume: every trial comes from the journal.
			second, j2 := journaledRun(t, e, path)
			if second != baseline {
				t.Errorf("resumed run diverges:\n--- plain ---\n%s\n--- resumed ---\n%s", baseline, second)
			}
			if j2.Hits() != j1.Recorded() {
				t.Errorf("full resume served %d hits, want %d", j2.Hits(), j1.Recorded())
			}

			// Crash resume: drop the tail half of the journal and leave a
			// torn partial line, as a SIGKILL mid-append would.
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimRight(string(buf), "\n"), "\n")
			keep := lines[:1+len(lines)/2] // header + half the entries
			torn := strings.Join(keep, "\n") + "\n" + `{"call":0,"tri`
			if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
				t.Fatal(err)
			}
			third, j3 := journaledRun(t, e, path)
			if third != baseline {
				t.Errorf("crash-resumed run diverges:\n--- plain ---\n%s\n--- crash-resumed ---\n%s", baseline, third)
			}
			if j3.Hits() == 0 || j3.Hits() >= j1.Recorded() {
				t.Errorf("crash resume served %d hits, want between 1 and %d", j3.Hits(), j1.Recorded()-1)
			}
		})
	})
}

// TestJournalWrongExperimentRefused pins the header check.
func TestJournalWrongExperimentRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.journal")
	j, err := OpenJournal(path, "table2")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, "fig3"); err == nil {
		t.Fatal("journal for table2 opened as fig3")
	}
}

// TestJournalFidelityGuard verifies an entry that does not survive a
// JSON round trip is ignored rather than trusted.
func TestJournalFidelityGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.journal")
	header := `{"experiment":"e"}`
	// Entry stored with a float tail JSON re-encodes differently than a
	// plain int decode would, so the fidelity check must reject it for
	// an int-typed lookup of a string result.
	entry := `{"call":0,"trial":0,"result":"not an int"}`
	if err := os.WriteFile(path, []byte(header+"\n"+entry+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path, "e")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, ok := journalLookup[int](j, 0, 0); ok {
		t.Error("type-mismatched journal entry accepted")
	}
	if v, ok := journalLookup[string](j, 0, 0); !ok || v != "not an int" {
		t.Errorf("well-typed lookup = %q, %v; want hit", v, ok)
	}
}
