package bench

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "table1", Paper: "Table 1 (the thirteen data-plane events)", Run: Table1})
}

// Table1 demonstrates every event kind of the paper's Table 1 firing on
// the SUME Event Switch model and being handled by a program, with the
// per-kind counts observed during a single scenario.
func Table1() *Result {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 4000}, core.EventDriven(), sched)

	counts := make([]uint64, events.NumKinds)
	prog := pisa.NewProgram("table1")
	for k := 0; k < events.NumKinds; k++ {
		k := events.Kind(k)
		prog.Handle(k, pisa.ControlFunc(func(ctx *pisa.Context) {
			counts[k]++
			switch k {
			case events.IngressPacket:
				// Recirculate the first packet once, then forward to a
				// port; raise a user event for every 5th packet.
				if ctx.Pkt.Recirc == 0 && counts[events.IngressPacket] == 1 {
					ctx.Recirculate = true
					return
				}
				if counts[events.IngressPacket]%5 == 0 {
					ctx.RaiseUser(counts[events.IngressPacket])
				}
				ctx.EgressPort = 1
			case events.RecirculatedPacket, events.GeneratedPacket:
				ctx.EgressPort = 1
			}
		}))
	}
	sw.MustLoad(prog)

	// Sources for the non-packet events.
	mustOK(sw.ConfigureTimer(0, 50*sim.Microsecond))
	mustOK(sw.AddGenerator(120*sim.Microsecond, func(seq uint64) ([]byte, int) {
		return packet.BuildControlFrame(packet.Broadcast, packet.MACFromUint64(1),
			&packet.Probe{TorID: 1, Seq: uint32(seq)}), -1
	}))
	sched.At(200*sim.Microsecond, func() { sw.SetLink(3, false) })
	sched.At(400*sim.Microsecond, func() { sw.SetLink(3, true) })
	sched.At(300*sim.Microsecond, func() { sw.TriggerControlEvent(42) })

	// Traffic: enough to enqueue/dequeue, plus a burst that overflows
	// the 4000-byte queue (BufferOverflow) and then drains to empty
	// (BufferUnderflow).
	fl := packet.Flow{Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
		SrcPort: 1, DstPort: 2, Proto: packet.ProtoUDP}
	for i := 0; i < 30; i++ {
		sw.Inject(0, packet.BuildFrame(packet.FrameSpec{Flow: fl, TotalLen: 1000}))
	}
	sched.Run(2 * sim.Millisecond)
	mustConserve(sw)

	res := &Result{
		ID:    "table1",
		Title: "Data-plane events supported and observed (paper Table 1)",
		Cols:  []string{"event", "baseline exposes", "event-driven exposes", "observed"},
	}
	base := core.Baseline()
	ev := core.EventDriven()
	for k := 0; k < events.NumKinds; k++ {
		kind := events.Kind(k)
		res.AddRow(kind.String(), yn(base.Supports(kind)), yn(ev.Supports(kind)), d(counts[k]))
	}
	for k := 0; k < events.NumKinds; k++ {
		if counts[k] == 0 {
			res.Notef("MISSING: %v never fired", events.Kind(k))
		}
	}
	res.Notef("all %d event kinds fired in one 2ms scenario on the event-driven architecture", events.NumKinds)
	return res
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func mustOK(err error) {
	if err != nil {
		panic(err)
	}
}
