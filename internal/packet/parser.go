package packet

import "fmt"

// Parser decodes a known layer stack into preallocated header storage with
// no per-packet allocation, in the style of gopacket's
// DecodingLayerParser. A Parser is not safe for concurrent use; each
// pipeline owns one.
type Parser struct {
	Eth    Ethernet
	VLAN   VLAN
	ARP    ARP
	IP     IPv4
	UDP    UDP
	TCP    TCP
	Probe  Probe
	Echo   Echo
	Report Report

	// Truncated is set when decoding stopped early because a header did
	// not fit; the layers decoded so far remain valid.
	Truncated bool
}

// Decode parses data starting at the Ethernet layer, appending each
// successfully decoded LayerType to *decoded (which is reset first). When
// an unknown or opaque layer is reached, the remaining bytes are the
// payload and decoding stops without error. A header that fails to parse
// returns an error along with the layers decoded before it.
func (p *Parser) Decode(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	next := LayerEthernet
	for next != LayerPayload && next != LayerNone {
		layer := p.layerFor(next)
		if layer == nil {
			return fmt.Errorf("packet: no decoder for %v", next)
		}
		if err := layer.DecodeFromBytes(data); err != nil {
			p.Truncated = true
			return err
		}
		*decoded = append(*decoded, next)
		data = layer.LayerPayload()
		next = layer.NextLayerType()
		if len(data) == 0 && next != LayerPayload {
			// Nothing left for the next header; stop cleanly.
			return nil
		}
	}
	return nil
}

func (p *Parser) layerFor(t LayerType) DecodingLayer {
	switch t {
	case LayerEthernet:
		return &p.Eth
	case LayerVLAN:
		return &p.VLAN
	case LayerARP:
		return &p.ARP
	case LayerIPv4:
		return &p.IP
	case LayerUDP:
		return &p.UDP
	case LayerTCP:
		return &p.TCP
	case LayerProbe:
		return &p.Probe
	case LayerEcho:
		return &p.Echo
	case LayerReport:
		return &p.Report
	default:
		return nil
	}
}

// FlowOf extracts the IPv4 5-tuple from an Ethernet frame, returning
// ok=false for non-IP frames or frames too short to carry a transport
// header. It is the fast path used by per-flow state updates.
func FlowOf(data []byte) (Flow, bool) {
	if len(data) < EthernetHeaderLen+IPv4HeaderLen {
		return Flow{}, false
	}
	off := EthernetHeaderLen
	et := EtherType(uint16(data[12])<<8 | uint16(data[13]))
	if et == EtherTypeVLAN {
		if len(data) < off+VLANHeaderLen+IPv4HeaderLen {
			return Flow{}, false
		}
		et = EtherType(uint16(data[off+2])<<8 | uint16(data[off+3]))
		off += VLANHeaderLen
	}
	if et != EtherTypeIPv4 {
		return Flow{}, false
	}
	ipb := data[off:]
	ihl := int(ipb[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ipb) < ihl+4 {
		return Flow{}, false
	}
	f := Flow{
		Proto: IPProto(ipb[9]),
		Src:   IPFromBytes(ipb[12:16]),
		Dst:   IPFromBytes(ipb[16:20]),
	}
	if f.Proto == ProtoTCP || f.Proto == ProtoUDP {
		tp := ipb[ihl:]
		f.SrcPort = uint16(tp[0])<<8 | uint16(tp[1])
		f.DstPort = uint16(tp[2])<<8 | uint16(tp[3])
	}
	return f, true
}

// EtherTypeOf returns the EtherType of a frame, or 0 if too short.
func EtherTypeOf(data []byte) EtherType {
	if len(data) < EthernetHeaderLen {
		return 0
	}
	return EtherType(uint16(data[12])<<8 | uint16(data[13]))
}
