package packet

import "repro/internal/checkpoint"

// poolWarmCap is the Data capacity pre-grown into free-list packets
// fabricated by Pool.Restore. A restored free list must behave like the
// original's — handing out buffers that hold a full frame without
// growing — so the steady-state loop stays allocation-free from the
// first post-restore packet.
const poolWarmCap = 2048

// Snapshot serializes the pool's observable state: the free-list depth
// and the lifetime allocation counters. The packets themselves are
// snapshotted by whoever holds them (queues, TM, wire).
func (pl *Pool) Snapshot(e *checkpoint.Encoder) {
	e.Int(len(pl.free))
	e.U64(pl.News)
	e.U64(pl.Reuses)
}

// Restore rebuilds the pool's free list and counters. Call it after
// every live packet has been re-created through GetCopy: restoring the
// free-list depth and counters last makes the pool's future Get/Release
// behavior (and its News/Reuses counters) identical to the uninterrupted
// run's.
func (pl *Pool) Restore(d *checkpoint.Decoder) {
	n := d.Int()
	news := d.U64()
	reuses := d.U64()
	if d.Err() != nil {
		return
	}
	pl.free = pl.free[:0]
	for i := 0; i < n; i++ {
		pl.free = append(pl.free, &Packet{
			pool:  pl,
			freed: true,
			Data:  make([]byte, 0, poolWarmCap),
		})
	}
	pl.News = news
	pl.Reuses = reuses
}
