package packet

import "testing"

func intFrame(t *testing.T) []byte {
	t.Helper()
	data := BuildFrame(FrameSpec{Flow: Flow{
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 9, 0, 1),
		SrcPort: 7000, DstPort: INTPort, Proto: ProtoUDP,
	}, TotalLen: 120})
	out, err := INTInstrument(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestINTInstrumentAndPush(t *testing.T) {
	data := intFrame(t)
	recs, ok := INTRecords(data)
	if !ok || len(recs) != 0 {
		t.Fatalf("fresh shim: recs=%v ok=%v", recs, ok)
	}
	checksumOK(t, data)

	for hop := uint32(1); hop <= 3; hop++ {
		var ok bool
		data, ok = INTPush(data, INTRecord{
			SwitchID: hop, QueueBytes: hop * 1000, LatencyNS: hop * 10, TimestampNS: uint64(hop) * 100,
		})
		if !ok {
			t.Fatalf("push %d failed", hop)
		}
	}
	checksumOK(t, data)
	recs, ok = INTRecords(data)
	if !ok || len(recs) != 3 {
		t.Fatalf("recs = %v", recs)
	}
	for i, r := range recs {
		want := uint32(i + 1)
		if r.SwitchID != want || r.QueueBytes != want*1000 || r.LatencyNS != want*10 ||
			r.TimestampNS != uint64(want)*100 {
			t.Errorf("record %d = %+v", i, r)
		}
	}
	// The flow is still parseable and the UDP length consistent.
	var p Parser
	var dec []LayerType
	if err := p.Decode(data, &dec); err != nil {
		t.Fatal(err)
	}
	if int(p.UDP.Length) != UDPHeaderLen+INTShimLen+3*INTRecordLen+120-
		EthernetHeaderLen-IPv4HeaderLen-UDPHeaderLen {
		t.Errorf("udp length = %d", p.UDP.Length)
	}
	if fl, ok := FlowOf(data); !ok || fl.DstPort != INTPort {
		t.Errorf("flow lost: %v", fl)
	}
}

func TestINTNonINTFrames(t *testing.T) {
	plain := BuildFrame(FrameSpec{Flow: Flow{
		Src: IP4(1, 1, 1, 1), Dst: IP4(2, 2, 2, 2), SrcPort: 1, DstPort: 80, Proto: ProtoUDP,
	}})
	if _, ok := INTPush(plain, INTRecord{}); ok {
		t.Error("pushed onto non-INT frame")
	}
	if _, ok := INTRecords(plain); ok {
		t.Error("parsed records from non-INT frame")
	}
	if _, err := INTInstrument(plain); err == nil {
		t.Error("instrumented a frame not addressed to the INT port")
	}
	tcp := BuildFrame(FrameSpec{Flow: Flow{
		Src: IP4(1, 1, 1, 1), Dst: IP4(2, 2, 2, 2), SrcPort: 1, DstPort: INTPort, Proto: ProtoTCP,
	}})
	if _, err := INTInstrument(tcp); err == nil {
		t.Error("instrumented TCP")
	}
}

func TestINTStackBounded(t *testing.T) {
	data := intFrame(t)
	for i := 0; i < INTMaxHops; i++ {
		var ok bool
		data, ok = INTPush(data, INTRecord{SwitchID: uint32(i)})
		if !ok {
			t.Fatalf("push %d refused below the cap", i)
		}
	}
	if _, ok := INTPush(data, INTRecord{}); ok {
		t.Error("push beyond INTMaxHops accepted")
	}
	recs, _ := INTRecords(data)
	if len(recs) != INTMaxHops {
		t.Errorf("records = %d", len(recs))
	}
}
