package packet

import (
	"bytes"
	"testing"
)

func testFrame(n int) []byte {
	return BuildFrame(FrameSpec{Flow: Flow{
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP,
	}, TotalLen: n})
}

func TestPoolRecycles(t *testing.T) {
	pl := NewPool()
	data := testFrame(200)

	p := pl.GetCopy(data, 3)
	if !bytes.Equal(p.Data, data) {
		t.Fatal("GetCopy did not copy the frame bytes")
	}
	if p.InPort != 3 {
		t.Fatalf("InPort = %d, want 3", p.InPort)
	}
	if !p.Pooled() {
		t.Fatal("pooled packet reports Pooled() == false")
	}
	// The copy must be private: mutating the source can't reach the packet.
	data[0] ^= 0xff
	if p.Data[0] == data[0] {
		t.Fatal("GetCopy aliases the caller's buffer")
	}
	data[0] ^= 0xff

	gen0 := p.Generation()
	p.Release()
	q := pl.GetCopy(data[:60], -1)
	if q != p {
		t.Fatal("pool did not recycle the released packet")
	}
	if q.Generation() == gen0 {
		t.Fatal("generation did not advance across a release")
	}
	if len(q.Data) != 60 || q.InPort != -1 || q.Empty || q.Gen || q.Recirc != 0 {
		t.Fatalf("recycled packet not reset: %+v", q)
	}
	if pl.News != 1 || pl.Reuses != 1 {
		t.Fatalf("News=%d Reuses=%d, want 1/1", pl.News, pl.Reuses)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pl := NewPool()
	p := pl.GetCopy(testFrame(64), 0)
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	p.Release()
}

func TestUnpooledReleaseNoop(t *testing.T) {
	p := &Packet{Data: testFrame(64)}
	p.Release() // must not panic: literals mix freely with pooled packets
	p.Release()
	if p.Pooled() {
		t.Fatal("literal packet reports Pooled() == true")
	}
}

func TestPoolRefStaleness(t *testing.T) {
	pl := NewPool()
	p := pl.GetCopy(testFrame(64), 0)
	ref := p.NewRef()
	if !ref.Valid() {
		t.Fatal("fresh ref reports stale")
	}
	if ref.Packet() != p {
		t.Fatal("ref does not resolve to its packet")
	}
	p.Release()
	if ref.Valid() {
		t.Fatal("ref survives Release: generation check broken")
	}
	if ref.Packet() != nil {
		t.Fatal("stale ref still resolves")
	}
	// Recycling the slot must not revive the old ref.
	q := pl.Get()
	if q != p {
		t.Fatal("expected slot reuse for this test")
	}
	if ref.Valid() {
		t.Fatal("ref revived by slot reuse")
	}
}

func TestPoolCloneIndependent(t *testing.T) {
	pl := NewPool()
	p := pl.GetCopy(testFrame(128), 2)
	p.Gen = true
	c := pl.Clone(p)
	if !bytes.Equal(c.Data, p.Data) || c.InPort != p.InPort || !c.Gen {
		t.Fatal("pooled clone is not a faithful copy")
	}
	c.Data[0] ^= 0xff
	if p.Data[0] == c.Data[0] {
		t.Fatal("pooled clone aliases the source's bytes")
	}
	p.Release()
	c.Release()

	// Packet.Clone of a pooled packet is unpooled and detached.
	p2 := pl.GetCopy(testFrame(64), 1)
	u := p2.Clone()
	if u.Pooled() {
		t.Fatal("Packet.Clone must return an unpooled packet")
	}
	p2.Release()
	u.Release() // no-op
}

// TestAppendFrameMatchesBuild pins the zero-copy serializers to the
// allocating originals byte for byte, including buffer reuse across
// different frame shapes (a stale longer frame must not leak into a
// shorter one).
func TestAppendFrameMatchesBuild(t *testing.T) {
	specs := []FrameSpec{
		{Flow: Flow{Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP}, TotalLen: 1500},
		{Flow: Flow{Src: IP4(10, 9, 0, 1), Dst: IP4(10, 3, 0, 2), SrcPort: 7, DstPort: 8, Proto: ProtoTCP}, TotalLen: 64, TCPFlags: 0x12, Seq: 99},
		{Flow: Flow{Src: IP4(1, 2, 3, 4), Dst: IP4(5, 6, 7, 8), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}, VLAN: 7, PCP: 3},
	}
	var buf []byte
	for i, spec := range specs {
		want := BuildFrame(spec)
		buf = AppendFrame(buf[:0], spec)
		if !bytes.Equal(buf, want) {
			t.Errorf("spec %d: AppendFrame differs from BuildFrame", i)
		}
	}
	probe := &Probe{TorID: 4, Seq: 9, MaxUtil: 100}
	want := BuildControlFrame(Broadcast, MACFromUint64(4), probe)
	buf = AppendControlFrame(buf[:0], Broadcast, MACFromUint64(4), probe)
	if !bytes.Equal(buf, want) {
		t.Error("AppendControlFrame differs from BuildControlFrame")
	}
}

// TestPacketSerializeZeroAlloc asserts the steady-state serialization and
// pool paths allocate nothing once warmed.
func TestPacketSerializeZeroAlloc(t *testing.T) {
	spec := FrameSpec{Flow: Flow{
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP,
	}, TotalLen: 1500}
	buf := AppendFrame(nil, spec)
	if avg := testing.AllocsPerRun(200, func() {
		buf = AppendFrame(buf[:0], spec)
	}); avg != 0 {
		t.Errorf("AppendFrame into warm buffer allocates %v per op, want 0", avg)
	}

	pl := NewPool()
	pl.GetCopy(buf, 0).Release() // warm one slot with capacity
	if avg := testing.AllocsPerRun(200, func() {
		pl.GetCopy(buf, 0).Release()
	}); avg != 0 {
		t.Errorf("pool Get/Release cycle allocates %v per op, want 0", avg)
	}
}

// BenchmarkPacketSerializeInto measures frame serialization into a reused
// buffer — the pooled per-packet generation path (0 allocs/op).
func BenchmarkPacketSerializeInto(b *testing.B) {
	spec := FrameSpec{Flow: Flow{
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP,
	}, TotalLen: 200}
	buf := AppendFrame(nil, spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], spec)
	}
}
