package packet

import "encoding/binary"

// In-place frame mutation helpers used by data-plane programs that
// rewrite headers: multi-bit ECN-style marking (paper §3: "variants of
// ECN marking, with packets carrying multiple bits rather than just one,
// to communicate queue occupancy along the path") and NDP-style packet
// trimming. All helpers keep the IPv4 header checksum correct.

// ipOffset returns the byte offset of the IPv4 header in the frame, or
// -1 for non-IP frames. It skips a single 802.1Q tag.
func ipOffset(data []byte) int {
	if len(data) < EthernetHeaderLen+IPv4HeaderLen {
		return -1
	}
	off := EthernetHeaderLen
	et := EtherType(uint16(data[12])<<8 | uint16(data[13]))
	if et == EtherTypeVLAN {
		if len(data) < off+VLANHeaderLen+IPv4HeaderLen {
			return -1
		}
		et = EtherType(uint16(data[off+2])<<8 | uint16(data[off+3]))
		off += VLANHeaderLen
	}
	if et != EtherTypeIPv4 {
		return -1
	}
	return off
}

// fixChecksum16 incrementally updates an IPv4 header checksum after a
// 16-bit word at the given header offset changed from old to new
// (RFC 1624 method).
func fixChecksum16(hdr []byte, old, new uint16) {
	sum := uint32(^binary.BigEndian.Uint16(hdr[10:12])) & 0xffff
	sum += uint32(^old) & 0xffff
	sum += uint32(new)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	binary.BigEndian.PutUint16(hdr[10:12], ^uint16(sum))
}

// SetTOS rewrites the IPv4 TOS byte in place (fixing the header
// checksum) and returns true, or returns false for non-IP frames. The
// full 8-bit field is writable, so programs can carry multi-bit
// congestion values, not just the single ECN-CE bit.
func SetTOS(data []byte, tos uint8) bool {
	off := ipOffset(data)
	if off < 0 {
		return false
	}
	hdr := data[off:]
	oldWord := binary.BigEndian.Uint16(hdr[0:2]) // version/ihl + tos
	hdr[1] = tos
	newWord := binary.BigEndian.Uint16(hdr[0:2])
	fixChecksum16(hdr, oldWord, newWord)
	return true
}

// TOSOf reads the IPv4 TOS byte, or 0 for non-IP frames.
func TOSOf(data []byte) uint8 {
	off := ipOffset(data)
	if off < 0 {
		return 0
	}
	return data[off+1]
}

// Trim truncates an IPv4 frame to its headers only (Ethernet [+VLAN] +
// IP + transport header), the NDP-style "cut payload" operation, and
// updates the IP total length and checksum. It returns the trimmed frame
// (a prefix of the input slice) and true, or the input unchanged and
// false when the frame is non-IP or already header-only.
func Trim(data []byte) ([]byte, bool) {
	off := ipOffset(data)
	if off < 0 {
		return data, false
	}
	hdr := data[off:]
	ihl := int(hdr[0]&0x0f) * 4
	if len(hdr) < ihl+4 {
		return data, false
	}
	transport := 0
	switch IPProto(hdr[9]) {
	case ProtoUDP:
		transport = UDPHeaderLen
	case ProtoTCP:
		if len(hdr) < ihl+13 {
			return data, false
		}
		transport = int(hdr[ihl+12]>>4) * 4
	default:
		transport = 0
	}
	keep := off + ihl + transport
	if keep >= len(data) {
		return data, false
	}
	oldLen := binary.BigEndian.Uint16(hdr[2:4])
	newLen := uint16(ihl + transport)
	binary.BigEndian.PutUint16(hdr[2:4], newLen)
	fixChecksum16(hdr, oldLen, newLen)
	return data[:keep], true
}
