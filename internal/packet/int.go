package packet

import (
	"encoding/binary"
	"fmt"
)

// In-band Network Telemetry (INT) support (paper §3 Network Monitoring:
// "extremely fine-grain measurements made possible by In-band Network
// Telemetry"). The wire format is a compact INT-over-UDP shim: packets
// whose UDP destination port is INTPort carry an INT header immediately
// after the UDP header, followed by a stack of per-hop records that each
// transit switch pushes.
//
//	shim:   magic(2) hopCount(1) reserved(1)
//	record: switchID(4) queueBytes(4) latencyNS(4) timestampNS(8)

// INTPort is the UDP destination port carrying INT-instrumented traffic.
const INTPort = 5405

// intMagic marks a valid INT shim.
const intMagic = 0x1E7A

// INTShimLen and INTRecordLen are wire sizes in bytes.
const (
	INTShimLen   = 4
	INTRecordLen = 20
)

// INTMaxHops bounds the record stack a packet may carry.
const INTMaxHops = 16

// INTRecord is one switch's telemetry pushed onto a transiting packet.
type INTRecord struct {
	SwitchID    uint32
	QueueBytes  uint32
	LatencyNS   uint32
	TimestampNS uint64
}

// intShimOffset locates the INT shim in the frame, or -1 when the frame
// is not INT traffic.
func intShimOffset(data []byte) int {
	off := ipOffset(data)
	if off < 0 {
		return -1
	}
	hdr := data[off:]
	if IPProto(hdr[9]) != ProtoUDP {
		return -1
	}
	ihl := int(hdr[0]&0x0f) * 4
	udp := off + ihl
	if len(data) < udp+UDPHeaderLen+INTShimLen {
		return -1
	}
	if binary.BigEndian.Uint16(data[udp+2:udp+4]) != INTPort {
		return -1
	}
	shim := udp + UDPHeaderLen
	if binary.BigEndian.Uint16(data[shim:shim+2]) != intMagic {
		return -1
	}
	return shim
}

// INTInstrument prepares an IPv4/UDP frame for telemetry collection by
// inserting an empty INT shim after the UDP header (senders call this;
// the UDP destination port must be INTPort). It returns the new frame.
func INTInstrument(data []byte) ([]byte, error) {
	off := ipOffset(data)
	if off < 0 {
		return nil, fmt.Errorf("packet: INTInstrument on non-IP frame")
	}
	hdr := data[off:]
	if IPProto(hdr[9]) != ProtoUDP {
		return nil, fmt.Errorf("packet: INTInstrument needs UDP")
	}
	ihl := int(hdr[0]&0x0f) * 4
	udp := off + ihl
	if binary.BigEndian.Uint16(data[udp+2:udp+4]) != INTPort {
		return nil, fmt.Errorf("packet: INT traffic must use UDP port %d", INTPort)
	}
	shim := udp + UDPHeaderLen
	out := make([]byte, 0, len(data)+INTShimLen)
	out = append(out, data[:shim]...)
	var sh [INTShimLen]byte
	binary.BigEndian.PutUint16(sh[0:2], intMagic)
	out = append(out, sh[:]...)
	out = append(out, data[shim:]...)
	fixLengths(out, off, udp, INTShimLen)
	return out, nil
}

// INTPush appends a hop record to an instrumented frame in place when
// capacity allows, reallocating otherwise. It returns the (possibly new)
// frame and true, or the input and false for non-INT frames or a full
// stack.
func INTPush(data []byte, rec INTRecord) ([]byte, bool) {
	shim := intShimOffset(data)
	if shim < 0 {
		return data, false
	}
	hops := int(data[shim+2])
	if hops >= INTMaxHops {
		return data, false
	}
	insert := shim + INTShimLen + hops*INTRecordLen
	if insert > len(data) {
		return data, false
	}
	var rb [INTRecordLen]byte
	binary.BigEndian.PutUint32(rb[0:4], rec.SwitchID)
	binary.BigEndian.PutUint32(rb[4:8], rec.QueueBytes)
	binary.BigEndian.PutUint32(rb[8:12], rec.LatencyNS)
	binary.BigEndian.PutUint64(rb[12:20], rec.TimestampNS)

	out := make([]byte, 0, len(data)+INTRecordLen)
	out = append(out, data[:insert]...)
	out = append(out, rb[:]...)
	out = append(out, data[insert:]...)
	out[shim+2] = byte(hops + 1)

	off := ipOffset(out)
	ihl := int(out[off]&0x0f) * 4
	fixLengths(out, off, off+ihl, INTRecordLen)
	return out, true
}

// INTRecords parses the hop-record stack from an instrumented frame.
func INTRecords(data []byte) ([]INTRecord, bool) {
	shim := intShimOffset(data)
	if shim < 0 {
		return nil, false
	}
	hops := int(data[shim+2])
	need := shim + INTShimLen + hops*INTRecordLen
	if need > len(data) {
		return nil, false
	}
	recs := make([]INTRecord, hops)
	for i := 0; i < hops; i++ {
		b := data[shim+INTShimLen+i*INTRecordLen:]
		recs[i] = INTRecord{
			SwitchID:    binary.BigEndian.Uint32(b[0:4]),
			QueueBytes:  binary.BigEndian.Uint32(b[4:8]),
			LatencyNS:   binary.BigEndian.Uint32(b[8:12]),
			TimestampNS: binary.BigEndian.Uint64(b[12:20]),
		}
	}
	return recs, true
}

// fixLengths grows the IP total length and UDP length fields by delta
// bytes and repairs the IP checksum.
func fixLengths(data []byte, ipOff, udpOff, delta int) {
	hdr := data[ipOff:]
	oldLen := binary.BigEndian.Uint16(hdr[2:4])
	newLen := oldLen + uint16(delta)
	binary.BigEndian.PutUint16(hdr[2:4], newLen)
	fixChecksum16(hdr, oldLen, newLen)
	ub := data[udpOff:]
	binary.BigEndian.PutUint16(ub[4:6], binary.BigEndian.Uint16(ub[4:6])+uint16(delta))
}
