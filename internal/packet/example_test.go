package packet_test

import (
	"fmt"

	"repro/internal/packet"
)

// Building a frame and decoding it back with the zero-allocation parser.
func ExampleParser_Decode() {
	flow := packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2),
		SrcPort: 5000, DstPort: 80, Proto: packet.ProtoUDP,
	}
	data := packet.BuildFrame(packet.FrameSpec{Flow: flow, TotalLen: 128})

	var p packet.Parser
	var decoded []packet.LayerType
	if err := p.Decode(data, &decoded); err != nil {
		panic(err)
	}
	fmt.Println(decoded)
	fmt.Println(p.IP.Src, "->", p.IP.Dst, "dport", p.UDP.DstPort)
	// Output:
	// [Ethernet IPv4 UDP]
	// 10.0.0.1 -> 10.0.0.2 dport 80
}

// Flow keys are comparable, hashable, and symmetric under FastHash.
func ExampleFlow_FastHash() {
	f := packet.Flow{
		Src: packet.IP4(1, 1, 1, 1), Dst: packet.IP4(2, 2, 2, 2),
		SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP,
	}
	fmt.Println(f.FastHash() == f.Reverse().FastHash())
	fmt.Println(f.Hash() == f.Reverse().Hash())
	// Output:
	// true
	// false
}

// SetTOS performs the paper's multi-bit ECN-style marking in place,
// keeping the IPv4 checksum valid.
func ExampleSetTOS() {
	data := packet.BuildFrame(packet.FrameSpec{Flow: packet.Flow{
		Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 0, 0, 2), Proto: packet.ProtoUDP,
	}})
	packet.SetTOS(data, 17) // congestion level 17
	fmt.Println(packet.TOSOf(data))
	// Output:
	// 17
}
