package packet

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMACRoundTrip(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := MACFromUint64(m.Uint64()); got != m {
		t.Errorf("round trip = %v, want %v", got, m)
	}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Errorf("String = %q", m.String())
	}
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast.IsBroadcast() = false")
	}
	if m.IsBroadcast() {
		t.Error("unicast reported as broadcast")
	}
}

func TestIPRoundTrip(t *testing.T) {
	ip := IP4(10, 1, 2, 3)
	var b [4]byte
	ip.Put(b[:])
	if got := IPFromBytes(b[:]); got != ip {
		t.Errorf("round trip = %v, want %v", got, ip)
	}
	if ip.String() != "10.1.2.3" {
		t.Errorf("String = %q", ip.String())
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example header from RFC 1071 discussions.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	sum := Checksum(hdr, 0)
	if sum != 0xb861 {
		t.Errorf("checksum = %#04x, want 0xb861", sum)
	}
	hdr[10] = byte(sum >> 8)
	hdr[11] = byte(sum)
	if got := Checksum(hdr, 0); got != 0 {
		t.Errorf("checksum over checksummed header = %#04x, want 0", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: MACFromUint64(1), Src: MACFromUint64(2), Type: EtherTypeIPv4}
	buf := make([]byte, EthernetHeaderLen+4)
	n := e.SerializeTo(buf)
	if n != EthernetHeaderLen {
		t.Fatalf("SerializeTo wrote %d", n)
	}
	var d Ethernet
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.Dst != e.Dst || d.Src != e.Src || d.Type != e.Type {
		t.Errorf("decoded %+v, want %+v", d, e)
	}
	if len(d.LayerPayload()) != 4 {
		t.Errorf("payload len = %d, want 4", len(d.LayerPayload()))
	}
}

func TestEthernetTruncated(t *testing.T) {
	var d Ethernet
	err := d.DecodeFromBytes(make([]byte, 5))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4Hdr()
	buf := make([]byte, 64)
	ip.SerializeTo(buf)
	var d IPv4
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != ip.Protocol ||
		d.TTL != ip.TTL || d.TotalLen != ip.TotalLen {
		t.Errorf("decoded %+v, want %+v", d, ip)
	}
	if !d.VerifyChecksum(buf) {
		t.Error("checksum did not verify")
	}
	buf[9] ^= 0xff // corrupt protocol
	if d.VerifyChecksum(buf) {
		t.Error("corrupted header verified")
	}
}

// IPv4Hdr returns a representative IPv4 header for tests.
func IPv4Hdr() IPv4 {
	return IPv4{
		TOS: 0, TotalLen: 50, ID: 7, TTL: 63,
		Protocol: ProtoUDP,
		Src:      IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2),
	}
}

func TestIPv4BadVersion(t *testing.T) {
	buf := make([]byte, IPv4HeaderLen)
	buf[0] = 0x65 // version 6
	var d IPv4
	if err := d.DecodeFromBytes(buf); !errors.Is(err, ErrBadField) {
		t.Errorf("err = %v, want ErrBadField", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 1234, DstPort: 53, Length: 20}
	buf := make([]byte, 20)
	u.SerializeTo(buf)
	var d UDP
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 1234 || d.DstPort != 53 || d.Length != 20 {
		t.Errorf("decoded %+v", d)
	}
	if len(d.LayerPayload()) != 12 {
		t.Errorf("payload = %d bytes, want 12", len(d.LayerPayload()))
	}
}

func TestTCPRoundTrip(t *testing.T) {
	c := TCP{SrcPort: 80, DstPort: 4321, Seq: 99, Ack: 100, Flags: TCPSyn | TCPAck, Window: 1024}
	buf := make([]byte, TCPHeaderLen)
	c.SerializeTo(buf)
	var d TCP
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 80 || d.DstPort != 4321 || d.Seq != 99 || d.Ack != 100 ||
		d.Flags != TCPSyn|TCPAck || d.Window != 1024 {
		t.Errorf("decoded %+v", d)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:        ARPRequest,
		SenderMAC: MACFromUint64(10),
		SenderIP:  IP4(10, 0, 0, 1),
		TargetIP:  IP4(10, 0, 0, 2),
	}
	buf := make([]byte, ARPLen)
	a.SerializeTo(buf)
	var d ARP
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.Op != a.Op || d.SenderMAC != a.SenderMAC || d.SenderIP != a.SenderIP || d.TargetIP != a.TargetIP {
		t.Errorf("decoded %+v, want %+v", d, a)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	p := Probe{TorID: 3, PathID: 9, MaxUtil: 123456, Hops: 2, Seq: 77}
	buf := make([]byte, ProbeLen)
	p.SerializeTo(buf)
	var d Probe
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.TorID != 3 || d.PathID != 9 || d.MaxUtil != 123456 || d.Hops != 2 || d.Seq != 77 {
		t.Errorf("decoded %+v", d)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	e := Echo{Op: EchoReply, Port: 2, Seq: 1000, Origin: 42}
	buf := make([]byte, EchoLen)
	e.SerializeTo(buf)
	var d Echo
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Errorf("decoded %+v, want %+v", d, e)
	}
	buf[0] = 99
	if err := d.DecodeFromBytes(buf); !errors.Is(err, ErrBadField) {
		t.Errorf("bad op err = %v", err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := Report{Kind: ReportMicroburst, Switch: 5, Seq: 8, V0: 1 << 40, V1: 9, V2: 3}
	buf := make([]byte, ReportHdrLen)
	r.SerializeTo(buf)
	var d Report
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.Kind != r.Kind || d.Switch != r.Switch || d.Seq != r.Seq ||
		d.V0 != r.V0 || d.V1 != r.V1 || d.V2 != r.V2 {
		t.Errorf("decoded %+v, want %+v", d, r)
	}
}

func TestBuildFrameUDPParses(t *testing.T) {
	f := Flow{Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5000, DstPort: 6000, Proto: ProtoUDP}
	data := BuildFrame(FrameSpec{
		DstMAC: MACFromUint64(2), SrcMAC: MACFromUint64(1),
		Flow: f, TotalLen: 200,
	})
	if len(data) != 200 {
		t.Fatalf("frame len = %d, want 200", len(data))
	}
	var p Parser
	var decoded []LayerType
	if err := p.Decode(data, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerEthernet, LayerIPv4, LayerUDP}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}
	if p.IP.Src != f.Src || p.UDP.DstPort != 6000 {
		t.Errorf("fields wrong: %+v %+v", p.IP, p.UDP)
	}
	got, ok := FlowOf(data)
	if !ok || got != f {
		t.Errorf("FlowOf = %v ok=%v, want %v", got, ok, f)
	}
}

func TestBuildFrameTCP(t *testing.T) {
	f := Flow{Src: IP4(1, 1, 1, 1), Dst: IP4(2, 2, 2, 2), SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	data := BuildFrame(FrameSpec{Flow: f, TCPFlags: TCPSyn, Seq: 42})
	if len(data) != MinFrameLen {
		t.Fatalf("frame len = %d, want %d (min padding)", len(data), MinFrameLen)
	}
	var p Parser
	var decoded []LayerType
	if err := p.Decode(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if p.TCP.Flags != TCPSyn || p.TCP.Seq != 42 {
		t.Errorf("tcp = %+v", p.TCP)
	}
	got, ok := FlowOf(data)
	if !ok || got != f {
		t.Errorf("FlowOf = %v, want %v", got, f)
	}
}

func TestBuildControlFrames(t *testing.T) {
	cases := []SerializableLayer{
		&Probe{TorID: 1, MaxUtil: 5},
		&Echo{Op: EchoRequest, Seq: 3, Origin: 7},
		&Report{Kind: ReportBufferSample, V0: 11},
		&ARP{Op: ARPReply, SenderIP: IP4(1, 0, 0, 1)},
	}
	wantNext := []LayerType{LayerProbe, LayerEcho, LayerReport, LayerARP}
	for i, layer := range cases {
		data := BuildControlFrame(MACFromUint64(9), MACFromUint64(8), layer)
		if len(data) < MinFrameLen {
			t.Errorf("case %d: frame too short: %d", i, len(data))
		}
		var p Parser
		var decoded []LayerType
		if err := p.Decode(data, &decoded); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(decoded) != 2 || decoded[1] != wantNext[i] {
			t.Errorf("case %d: decoded %v, want [Ethernet %v]", i, decoded, wantNext[i])
		}
		if _, ok := FlowOf(data); ok {
			t.Errorf("case %d: FlowOf claimed non-IP frame is a flow", i)
		}
	}
}

func TestParserTruncatedMidStack(t *testing.T) {
	f := Flow{Src: IP4(1, 1, 1, 1), Dst: IP4(2, 2, 2, 2), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	data := BuildFrame(FrameSpec{Flow: f})
	var p Parser
	var decoded []LayerType
	if err := p.Decode(data[:EthernetHeaderLen+10], &decoded); err == nil {
		t.Fatal("expected truncation error")
	}
	if !p.Truncated {
		t.Error("Truncated flag not set")
	}
	if len(decoded) != 1 || decoded[0] != LayerEthernet {
		t.Errorf("decoded %v, want [Ethernet]", decoded)
	}
}

func TestPacketCloneIndependent(t *testing.T) {
	p := &Packet{Data: []byte{1, 2, 3}, InPort: 2}
	q := p.Clone()
	q.Data[0] = 9
	if p.Data[0] != 1 {
		t.Error("Clone shares data")
	}
	if q.InPort != 2 {
		t.Error("Clone lost metadata")
	}
}

func TestPacketLen(t *testing.T) {
	if (&Packet{Empty: true, Data: []byte{1}}).Len() != 0 {
		t.Error("empty packet should have zero length")
	}
	var nilPkt *Packet
	if nilPkt.Len() != 0 {
		t.Error("nil packet length")
	}
}

func TestFlowHashSymmetry(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16) bool {
		fl := Flow{Src: IP(a), Dst: IP(b), SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowHashDirectionSensitive(t *testing.T) {
	fl := Flow{Src: IP4(1, 0, 0, 1), Dst: IP4(1, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP}
	if fl.Hash() == fl.Reverse().Hash() {
		t.Error("directional Hash matched for reversed flow (unlikely collision)")
	}
}

func TestFlowIndexInRange(t *testing.T) {
	f := func(a, b uint32, sp uint16, n uint16) bool {
		size := int(n%1024) + 1
		fl := Flow{Src: IP(a), Dst: IP(b), SrcPort: sp, Proto: ProtoUDP}
		return int(fl.Index(size)) < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEndpointPairSymmetricHash(t *testing.T) {
	p := EndpointPair{Src: IPEndpoint(IP4(9, 9, 9, 9)), Dst: PortEndpoint(80)}
	if p.FastHash() != p.Reverse().FastHash() {
		t.Error("EndpointPair FastHash not symmetric")
	}
}

func TestEndpointStrings(t *testing.T) {
	if s := IPEndpoint(IP4(1, 2, 3, 4)).String(); s != "1.2.3.4" {
		t.Errorf("IP endpoint = %q", s)
	}
	if s := PortEndpoint(443).String(); s != "port 443" {
		t.Errorf("port endpoint = %q", s)
	}
	if s := MACEndpoint(MACFromUint64(0x10)).String(); s != "00:00:00:00:00:10" {
		t.Errorf("mac endpoint = %q", s)
	}
}

func TestFlowHashDistribution(t *testing.T) {
	// Flow hashes over a register array should spread: no bucket of 64
	// should take more than 5% of 4096 sequential flows.
	const buckets = 64
	counts := make([]int, buckets)
	for i := 0; i < 4096; i++ {
		fl := Flow{
			Src: IP4(10, 0, byte(i>>8), byte(i)), Dst: IP4(10, 1, 0, 1),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: ProtoTCP,
		}
		counts[fl.Index(buckets)]++
	}
	for i, c := range counts {
		if c > 4096/20 {
			t.Errorf("bucket %d has %d of 4096 flows", i, c)
		}
	}
}

func TestEtherTypeOf(t *testing.T) {
	data := BuildFrame(FrameSpec{Flow: Flow{Src: 1, Dst: 2, Proto: ProtoUDP}})
	if got := EtherTypeOf(data); got != EtherTypeIPv4 {
		t.Errorf("EtherTypeOf = %v", got)
	}
	if got := EtherTypeOf(nil); got != 0 {
		t.Errorf("EtherTypeOf(nil) = %v, want 0", got)
	}
}

func TestLayerTypeStrings(t *testing.T) {
	for lt := LayerEthernet; lt <= LayerPayload; lt++ {
		if lt.String() == "" {
			t.Errorf("LayerType(%d) has empty name", lt)
		}
	}
}

func TestVLANRoundTrip(t *testing.T) {
	v := VLAN{PCP: 5, VID: 100, Type: EtherTypeIPv4}
	buf := make([]byte, VLANHeaderLen)
	v.SerializeTo(buf)
	var d VLAN
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.PCP != 5 || d.VID != 100 || d.Type != EtherTypeIPv4 {
		t.Errorf("decoded %+v", d)
	}
	if err := d.DecodeFromBytes(buf[:2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated tag: err = %v, want ErrTruncated", err)
	}
}

func TestVLANFrameParsesAndFlows(t *testing.T) {
	f := Flow{Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP}
	data := BuildFrame(FrameSpec{Flow: f, VLAN: 42, PCP: 3, TotalLen: 200})
	var p Parser
	var dec []LayerType
	if err := p.Decode(data, &dec); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerEthernet, LayerVLAN, LayerIPv4, LayerUDP}
	if len(dec) != len(want) {
		t.Fatalf("decoded %v, want %v", dec, want)
	}
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("decoded %v, want %v", dec, want)
		}
	}
	if p.VLAN.VID != 42 || p.VLAN.PCP != 3 {
		t.Errorf("vlan = %+v", p.VLAN)
	}
	if p.UDP.DstPort != 6 {
		t.Errorf("inner udp = %+v", p.UDP)
	}
	got, ok := FlowOf(data)
	if !ok || got != f {
		t.Errorf("FlowOf through VLAN = %v ok=%v, want %v", got, ok, f)
	}
}

func TestVLANUntaggedUnaffected(t *testing.T) {
	f := Flow{Src: IP4(1, 1, 1, 1), Dst: IP4(2, 2, 2, 2), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	data := BuildFrame(FrameSpec{Flow: f, TotalLen: 100})
	if got, ok := FlowOf(data); !ok || got != f {
		t.Errorf("untagged FlowOf = %v ok=%v", got, ok)
	}
}
