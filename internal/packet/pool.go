package packet

import "repro/internal/telemetry/self"

// Pool is a DPDK-mempool-style recycling arena for Packets and their frame
// buffers. A Get/GetCopy hands out a packet whose Data slice reuses the
// capacity left behind by an earlier Release, so a steady-state
// rx→pipeline→tx loop performs zero heap allocations once the free list
// and the per-packet buffers have warmed up.
//
// Ownership rules (documented in DESIGN.md §11):
//
//   - A packet obtained from a Pool is owned by exactly one holder at a
//     time. Whoever drops the last reference calls Release; releasing
//     twice panics (the freed flag catches the first offender rather than
//     silently corrupting a later holder).
//   - Release bumps the packet's generation counter, so a Ref captured
//     before the release observes Valid() == false afterwards even though
//     the *Packet itself is recycled. Refs are a debugging/assertion aid:
//     the hot path never needs them.
//   - Data buffers keep their capacity across recycling (they only grow),
//     which is what makes the steady state allocation-free.
//
// A Pool is deliberately not safe for concurrent use: the simulator gives
// each switch its own pool and each partition domain runs single-threaded,
// so no locks are needed and determinism is preserved.
type Pool struct {
	free []*Packet

	// News counts packets allocated fresh; Reuses counts free-list hits.
	News, Reuses uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zero-valued packet owned by the caller. Data is empty but
// retains any recycled capacity.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		p.Data = p.Data[:0]
		p.InPort = 0
		p.Empty = false
		p.Gen = false
		p.Recirc = 0
		p.freed = false
		pl.Reuses++
		if self.On() {
			self.PoolInUse.Add(1)
		}
		return p
	}
	pl.News++
	if self.On() {
		self.PoolInUse.Add(1)
	}
	return &Packet{pool: pl}
}

// GetCopy returns a pooled packet carrying a private copy of data, arrived
// on inPort. The caller's slice is not retained.
func (pl *Pool) GetCopy(data []byte, inPort int) *Packet {
	p := pl.Get()
	p.Data = append(p.Data, data...)
	p.InPort = inPort
	return p
}

// Clone returns a pooled deep copy of src (which may itself be pooled or
// not).
func (pl *Pool) Clone(src *Packet) *Packet {
	p := pl.Get()
	p.Data = append(p.Data, src.Data...)
	p.InPort = src.InPort
	p.Empty = src.Empty
	p.Gen = src.Gen
	p.Recirc = src.Recirc
	return p
}

// Release returns the packet to its pool. It is a no-op for unpooled
// packets (pool == nil), so callers can release unconditionally. Releasing
// a pooled packet twice panics.
func (p *Packet) Release() {
	pl := p.pool
	if pl == nil {
		return
	}
	if p.freed {
		panic("packet: double Release")
	}
	p.freed = true
	p.gen++
	pl.free = append(pl.free, p)
	if self.On() {
		self.PoolInUse.Add(-1)
	}
}

// Pooled reports whether the packet came from a Pool.
func (p *Packet) Pooled() bool { return p.pool != nil }

// Generation returns the packet's recycling generation (0 for unpooled
// packets; bumped on every Release).
func (p *Packet) Generation() uint32 { return p.gen }

// Ref is a generation-checked weak reference to a pooled packet. It stays
// Valid only until the packet is released; after recycling, the generation
// mismatch exposes the stale reference instead of silently aliasing the
// next tenant's bytes.
type Ref struct {
	p   *Packet
	gen uint32
}

// NewRef captures a reference to p at its current generation.
func (p *Packet) NewRef() Ref { return Ref{p: p, gen: p.gen} }

// Valid reports whether the referenced packet is still live in the same
// generation as when the Ref was taken.
func (r Ref) Valid() bool { return r.p != nil && !r.p.freed && r.p.gen == r.gen }

// Packet returns the referenced packet, or nil if the reference is stale.
func (r Ref) Packet() *Packet {
	if !r.Valid() {
		return nil
	}
	return r.p
}
