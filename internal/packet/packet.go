package packet

import "fmt"

// Packet is a frame travelling through the simulator. The wire bytes are
// authoritative; parsed views are produced on demand by a Parser. A Packet
// also carries the simulator-level annotations that a real switch would
// hold in per-packet metadata outside the P4-visible headers.
type Packet struct {
	// Data holds the full frame bytes (without FCS).
	Data []byte

	// InPort is the switch port the frame arrived on (-1 for packets
	// created by the data plane's packet generator).
	InPort int

	// Empty marks a zero-length placeholder "packet" injected by the
	// Event Merger purely to carry event metadata through the pipeline
	// when no real packet is available (paper §5). Empty packets consume
	// a pipeline slot but are never transmitted.
	Empty bool

	// Gen marks a packet created by the data-plane packet generator.
	Gen bool

	// Recirc counts how many times the packet has been recirculated.
	Recirc int

	// pool, gen and freed implement the recycling arena (pool.go). A
	// packet built with a plain literal has pool == nil and Release is a
	// no-op, so pooled and unpooled packets mix freely.
	pool  *Pool
	gen   uint32
	freed bool
}

// Len returns the frame length in bytes (0 for empty metadata carriers).
func (p *Packet) Len() int {
	if p == nil || p.Empty {
		return 0
	}
	return len(p.Data)
}

// Clone returns an unpooled deep copy of the packet. For a recycled copy
// use Pool.Clone.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Data = append([]byte(nil), p.Data...)
	q.pool, q.gen, q.freed = nil, 0, false
	return &q
}

// String summarizes the packet for traces.
func (p *Packet) String() string {
	if p.Empty {
		return "pkt(empty)"
	}
	kind := ""
	if p.Gen {
		kind = " gen"
	}
	return fmt.Sprintf("pkt(len=%d in=%d%s)", len(p.Data), p.InPort, kind)
}

// FrameSpec describes a frame to build. Zero values choose sensible
// defaults; TotalLen pads the frame (minimum MinFrameLen enforced).
type FrameSpec struct {
	DstMAC, SrcMAC MAC
	Flow           Flow
	TotalLen       int
	TTL            uint8
	TCPFlags       uint8 // only for ProtoTCP
	Seq            uint32
	// VLAN, when non-zero, inserts an 802.1Q tag with this VID.
	VLAN uint16
	// PCP is the 802.1Q priority (used only when VLAN is set).
	PCP uint8
}

// BuildFrame serializes a full Ethernet/IPv4/UDP-or-TCP frame according to
// spec. Payload bytes are zero. The result length is max(TotalLen,
// minimum needed, MinFrameLen).
func BuildFrame(spec FrameSpec) []byte {
	return AppendFrame(nil, spec)
}

// grow extends buf by n zeroed bytes, reusing its capacity when possible,
// and returns the extended slice plus the offset of the new region.
func grow(buf []byte, n int) ([]byte, int) {
	off := len(buf)
	need := off + n
	if cap(buf) >= need {
		buf = buf[:need]
		clear(buf[off:])
	} else {
		nb := make([]byte, need)
		copy(nb, buf)
		buf = nb
	}
	return buf, off
}

// AppendFrame serializes the frame described by spec onto buf (reusing
// buf's spare capacity when it suffices) and returns the extended slice.
// Callers that recycle a scratch buffer get allocation-free frame
// generation: AppendFrame(scratch[:0], spec). Identical bytes to
// BuildFrame.
func AppendFrame(dst []byte, spec FrameSpec) []byte {
	proto := spec.Flow.Proto
	if proto == 0 {
		proto = ProtoUDP
	}
	transportLen := UDPHeaderLen
	if proto == ProtoTCP {
		transportLen = TCPHeaderLen
	}
	vlanLen := 0
	if spec.VLAN != 0 {
		vlanLen = VLANHeaderLen
	}
	minLen := EthernetHeaderLen + vlanLen + IPv4HeaderLen + transportLen
	total := spec.TotalLen
	if total < minLen {
		total = minLen
	}
	if total < MinFrameLen {
		total = MinFrameLen
	}
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	dst, base := grow(dst, total)
	buf := dst[base:]

	ethType := EtherTypeIPv4
	if spec.VLAN != 0 {
		ethType = EtherTypeVLAN
	}
	eth := Ethernet{Dst: spec.DstMAC, Src: spec.SrcMAC, Type: ethType}
	off := eth.SerializeTo(buf)
	if spec.VLAN != 0 {
		tag := VLAN{PCP: spec.PCP, VID: spec.VLAN, Type: EtherTypeIPv4}
		off += tag.SerializeTo(buf[off:])
	}

	ip := IPv4{
		TotalLen: uint16(total - EthernetHeaderLen - vlanLen),
		TTL:      ttl,
		Protocol: proto,
		Src:      spec.Flow.Src,
		Dst:      spec.Flow.Dst,
	}
	off += ip.SerializeTo(buf[off:])

	switch proto {
	case ProtoTCP:
		t := TCP{
			SrcPort: spec.Flow.SrcPort,
			DstPort: spec.Flow.DstPort,
			Seq:     spec.Seq,
			Flags:   spec.TCPFlags,
			Window:  65535,
		}
		t.SerializeTo(buf[off:])
	default:
		u := UDP{
			SrcPort: spec.Flow.SrcPort,
			DstPort: spec.Flow.DstPort,
			Length:  uint16(total - EthernetHeaderLen - IPv4HeaderLen),
		}
		u.SerializeTo(buf[off:])
	}
	return dst
}

// BuildControlFrame serializes an Ethernet frame whose payload is one of
// the custom event-protocol layers (Probe, Echo, Report) or an ARP packet.
// The EtherType is chosen from the layer's type.
func BuildControlFrame(dst, src MAC, layer SerializableLayer) []byte {
	return AppendControlFrame(nil, dst, src, layer)
}

// AppendControlFrame is BuildControlFrame onto a caller-supplied buffer:
// it serializes the control frame into buf's spare capacity when it
// suffices and returns the extended slice. Identical bytes to
// BuildControlFrame.
func AppendControlFrame(dstBuf []byte, dst, src MAC, layer SerializableLayer) []byte {
	var et EtherType
	switch layer.(type) {
	case *Probe:
		et = EtherTypeProbe
	case *Echo:
		et = EtherTypeEcho
	case *Report:
		et = EtherTypeReport
	case *ARP:
		et = EtherTypeARP
	default:
		panic(fmt.Sprintf("packet: BuildControlFrame of unsupported layer %T", layer))
	}
	total := EthernetHeaderLen + layer.SerializedLen()
	if total < MinFrameLen {
		total = MinFrameLen
	}
	dstBuf, base := grow(dstBuf, total)
	buf := dstBuf[base:]
	eth := Ethernet{Dst: dst, Src: src, Type: et}
	off := eth.SerializeTo(buf)
	layer.SerializeTo(buf[off:])
	return dstBuf
}
