package packet

import "testing"

// FuzzDecode checks that the parser never panics on arbitrary frame
// bytes and that a clean decode is internally consistent. Run with
// `go test -fuzz=FuzzDecode ./internal/packet` for continuous fuzzing.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, EthernetHeaderLen))
	f.Add(BuildFrame(FrameSpec{Flow: Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}}))
	f.Add(BuildFrame(FrameSpec{Flow: Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}, TotalLen: 200}))
	f.Add(BuildControlFrame(Broadcast, MACFromUint64(1), &Probe{TorID: 1}))
	f.Add(BuildControlFrame(Broadcast, MACFromUint64(1), &Echo{Op: EchoRequest}))
	f.Add(BuildControlFrame(Broadcast, MACFromUint64(1), &Report{Kind: 1}))
	f.Add(BuildControlFrame(Broadcast, MACFromUint64(1), &ARP{Op: ARPRequest}))
	// Corrupt IHL / data offset variants.
	bad := BuildFrame(FrameSpec{Flow: Flow{Src: 1, Dst: 2, Proto: ProtoUDP}})
	bad[14] = 0x4f // ihl = 15
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		var decoded []LayerType
		err := p.Decode(data, &decoded)
		if err == nil {
			// A clean decode must report at least the Ethernet layer
			// when the frame was long enough for one.
			if len(data) >= EthernetHeaderLen && len(decoded) == 0 {
				t.Fatal("no layers decoded without error")
			}
		}
		// FlowOf must agree with the parser on IP-ness and never panic.
		fl, ok := FlowOf(data)
		if ok {
			if fl.Proto == ProtoUDP || fl.Proto == ProtoTCP {
				if fl.SrcPort == 0 && fl.DstPort == 0 && fl.Src == 0 && fl.Dst == 0 {
					// Possible all-zero frame; fine.
					_ = fl
				}
			}
			// Index must stay in range for any size.
			if fl.Index(7) >= 7 {
				t.Fatal("Index out of range")
			}
		}
		_ = EtherTypeOf(data)
	})
}
