package packet

import "fmt"

// EndpointType says what kind of address an Endpoint holds.
type EndpointType uint8

// Endpoint kinds.
const (
	EndpointMAC EndpointType = iota + 1
	EndpointIPv4
	EndpointPort
)

// Endpoint is a hashable representation of one side of a conversation at
// some layer (gopacket's Endpoint, specialized to the protocols modeled
// here). Endpoints are comparable and usable as map keys.
type Endpoint struct {
	Type EndpointType
	A    uint64 // MAC in low 48 bits, or IPv4 in low 32, or port in low 16
}

// String formats the endpoint according to its type.
func (e Endpoint) String() string {
	switch e.Type {
	case EndpointMAC:
		return MACFromUint64(e.A).String()
	case EndpointIPv4:
		return IP(e.A).String()
	case EndpointPort:
		return fmt.Sprintf("port %d", e.A)
	default:
		return fmt.Sprintf("endpoint(%d,%d)", e.Type, e.A)
	}
}

// IPEndpoint builds an IPv4 endpoint.
func IPEndpoint(ip IP) Endpoint { return Endpoint{Type: EndpointIPv4, A: uint64(ip)} }

// PortEndpoint builds a transport-port endpoint.
func PortEndpoint(p uint16) Endpoint { return Endpoint{Type: EndpointPort, A: uint64(p)} }

// MACEndpoint builds a link-layer endpoint.
func MACEndpoint(m MAC) Endpoint { return Endpoint{Type: EndpointMAC, A: m.Uint64()} }

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// FastHash returns a quick non-cryptographic hash of the endpoint.
func (e Endpoint) FastHash() uint64 {
	return mix64(e.A ^ uint64(e.Type)<<56)
}

// EndpointPair is a directed (src, dst) pair of endpoints at one layer.
type EndpointPair struct {
	Src, Dst Endpoint
}

// FastHash returns a symmetric hash: the A→B pair hashes identically to
// B→A, so both directions of a conversation land in the same bucket (the
// gopacket Flow.FastHash property).
func (p EndpointPair) FastHash() uint64 {
	return p.Src.FastHash() + p.Dst.FastHash() // commutative combine
}

// Reverse returns the pair with src and dst swapped.
func (p EndpointPair) Reverse() EndpointPair { return EndpointPair{Src: p.Dst, Dst: p.Src} }

// Flow is an IPv4 5-tuple. It is comparable and usable as a map key, and
// is the unit at which the example applications keep per-flow state.
type Flow struct {
	Src, Dst         IP
	SrcPort, DstPort uint16
	Proto            IPProto
}

// String formats the flow as "proto src:sport>dst:dport".
func (f Flow) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", f.Proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow {
	return Flow{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// FastHash returns a symmetric (direction-independent) hash of the flow.
func (f Flow) FastHash() uint64 {
	a := mix64(uint64(f.Src)<<16 | uint64(f.SrcPort))
	b := mix64(uint64(f.Dst)<<16 | uint64(f.DstPort))
	return a + b + mix64(uint64(f.Proto))
}

// Hash returns a direction-sensitive hash of the flow, as computed by the
// hash extern in data-plane programs (paper §2's `hash(hdr.ip.src ++
// hdr.ip.dst, flowID)`).
func (f Flow) Hash() uint64 {
	h := mix64(uint64(f.Src))
	h = mix64(h ^ uint64(f.Dst))
	h = mix64(h ^ uint64(f.SrcPort)<<32 ^ uint64(f.DstPort)<<16 ^ uint64(f.Proto))
	return h
}

// Index reduces the flow hash onto a register array of size n, as the
// data-plane programs do when indexing per-flow state.
func (f Flow) Index(n int) uint32 {
	if n <= 0 {
		panic("packet: Flow.Index with non-positive size")
	}
	return uint32(f.Hash() % uint64(n))
}

// NetworkPair returns the network-layer endpoint pair of the flow.
func (f Flow) NetworkPair() EndpointPair {
	return EndpointPair{Src: IPEndpoint(f.Src), Dst: IPEndpoint(f.Dst)}
}
