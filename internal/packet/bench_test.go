package packet

import "testing"

// Micro-benchmarks for the per-packet hot paths.

func BenchmarkParserDecode(b *testing.B) {
	data := BuildFrame(FrameSpec{Flow: Flow{
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP,
	}, TotalLen: 200})
	var p Parser
	var decoded []LayerType
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Decode(data, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowOf(b *testing.B) {
	data := BuildFrame(FrameSpec{Flow: Flow{
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP,
	}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FlowOf(data); !ok {
			b.Fatal("not a flow")
		}
	}
}

func BenchmarkFlowHash(b *testing.B) {
	f := Flow{Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.Hash()
	}
	_ = sink
}

func BenchmarkBuildFrame(b *testing.B) {
	spec := FrameSpec{Flow: Flow{
		Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2), SrcPort: 5, DstPort: 6, Proto: ProtoUDP,
	}, TotalLen: 200}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildFrame(spec)
	}
}
