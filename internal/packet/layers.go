package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by layer decoding.
var (
	ErrTruncated = errors.New("packet: truncated header")
	ErrBadField  = errors.New("packet: invalid header field")
)

// LayerType identifies a protocol layer understood by the Parser.
type LayerType uint8

// Layer types for the protocols modeled here.
const (
	LayerNone LayerType = iota
	LayerEthernet
	LayerVLAN
	LayerARP
	LayerIPv4
	LayerUDP
	LayerTCP
	LayerProbe
	LayerEcho
	LayerReport
	LayerPayload
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerEthernet:
		return "Ethernet"
	case LayerVLAN:
		return "VLAN"
	case LayerARP:
		return "ARP"
	case LayerIPv4:
		return "IPv4"
	case LayerUDP:
		return "UDP"
	case LayerTCP:
		return "TCP"
	case LayerProbe:
		return "Probe"
	case LayerEcho:
		return "Echo"
	case LayerReport:
		return "Report"
	case LayerPayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", uint8(t))
	}
}

// DecodingLayer is implemented by header types that can parse themselves
// from the front of a byte slice into preallocated storage, following the
// gopacket DecodingLayerParser convention. DecodeFromBytes must not retain
// data.
type DecodingLayer interface {
	// DecodeFromBytes parses the layer's header from the front of data.
	DecodeFromBytes(data []byte) error
	// LayerType reports which protocol this layer decodes.
	LayerType() LayerType
	// NextLayerType reports the type of the layer following this one,
	// based on the decoded header, or LayerPayload if opaque.
	NextLayerType() LayerType
	// LayerPayload returns the bytes following this layer's header within
	// the data passed to DecodeFromBytes.
	LayerPayload() []byte
}

// SerializableLayer is implemented by header types that can write their
// wire format.
type SerializableLayer interface {
	// SerializedLen returns the number of bytes SerializeTo will write.
	SerializedLen() int
	// SerializeTo writes the header into b, which must be at least
	// SerializedLen() bytes, and returns the bytes written.
	SerializeTo(b []byte) int
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType

	payload []byte
}

// DecodeFromBytes implements DecodingLayer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return fmt.Errorf("%w: ethernet needs %d bytes, have %d", ErrTruncated, EthernetHeaderLen, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.payload = data[EthernetHeaderLen:]
	return nil
}

// LayerType implements DecodingLayer.
func (e *Ethernet) LayerType() LayerType { return LayerEthernet }

// NextLayerType implements DecodingLayer.
func (e *Ethernet) NextLayerType() LayerType {
	switch e.Type {
	case EtherTypeIPv4:
		return LayerIPv4
	case EtherTypeVLAN:
		return LayerVLAN
	case EtherTypeARP:
		return LayerARP
	case EtherTypeProbe:
		return LayerProbe
	case EtherTypeEcho:
		return LayerEcho
	case EtherTypeReport:
		return LayerReport
	default:
		return LayerPayload
	}
}

// LayerPayload implements DecodingLayer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// SerializedLen implements SerializableLayer.
func (e *Ethernet) SerializedLen() int { return EthernetHeaderLen }

// SerializeTo implements SerializableLayer.
func (e *Ethernet) SerializeTo(b []byte) int {
	_ = b[EthernetHeaderLen-1]
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], uint16(e.Type))
	return EthernetHeaderLen
}

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Checksum uint16
	Src      IP
	Dst      IP

	payload []byte
}

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return fmt.Errorf("%w: ipv4 needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("%w: ip version %d", ErrBadField, v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return fmt.Errorf("%w: ihl %d", ErrBadField, ihl)
	}
	if len(data) < ihl {
		return fmt.Errorf("%w: ipv4 options", ErrTruncated)
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProto(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = IPFromBytes(data[12:16])
	ip.Dst = IPFromBytes(data[16:20])
	end := int(ip.TotalLen)
	if end > len(data) || end < ihl {
		end = len(data)
	}
	ip.payload = data[ihl:end]
	return nil
}

// LayerType implements DecodingLayer.
func (ip *IPv4) LayerType() LayerType { return LayerIPv4 }

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case ProtoUDP:
		return LayerUDP
	case ProtoTCP:
		return LayerTCP
	default:
		return LayerPayload
	}
}

// LayerPayload implements DecodingLayer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// SerializedLen implements SerializableLayer.
func (ip *IPv4) SerializedLen() int { return IPv4HeaderLen }

// SerializeTo implements SerializableLayer. It computes and stores the
// header checksum.
func (ip *IPv4) SerializeTo(b []byte) int {
	_ = b[IPv4HeaderLen-1]
	b[0] = 4<<4 | IPv4HeaderLen/4
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = uint8(ip.Protocol)
	b[10], b[11] = 0, 0
	ip.Src.Put(b[12:16])
	ip.Dst.Put(b[16:20])
	ip.Checksum = Checksum(b[:IPv4HeaderLen], 0)
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return IPv4HeaderLen
}

// VerifyChecksum reports whether the stored header checksum is consistent
// with the rest of the decoded header fields.
func (ip *IPv4) VerifyChecksum(raw []byte) bool {
	if len(raw) < IPv4HeaderLen {
		return false
	}
	return Checksum(raw[:IPv4HeaderLen], 0) == 0
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16

	payload []byte
}

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("%w: udp needs %d bytes, have %d", ErrTruncated, UDPHeaderLen, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(u.Length)
	if end > len(data) || end < UDPHeaderLen {
		end = len(data)
	}
	u.payload = data[UDPHeaderLen:end]
	return nil
}

// LayerType implements DecodingLayer.
func (u *UDP) LayerType() LayerType { return LayerUDP }

// NextLayerType implements DecodingLayer.
func (u *UDP) NextLayerType() LayerType { return LayerPayload }

// LayerPayload implements DecodingLayer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// SerializedLen implements SerializableLayer.
func (u *UDP) SerializedLen() int { return UDPHeaderLen }

// SerializeTo implements SerializableLayer. The checksum is left as stored
// (zero means "no checksum", which IPv4 permits).
func (u *UDP) SerializeTo(b []byte) int {
	_ = b[UDPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return UDPHeaderLen
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a TCP header without options.
type TCP struct {
	SrcPort  uint16
	DstPort  uint16
	Seq      uint32
	Ack      uint32
	DataOff  uint8 // header length in 32-bit words
	Flags    uint8
	Window   uint16
	Checksum uint16
	Urgent   uint16

	payload []byte
}

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return fmt.Errorf("%w: tcp needs %d bytes, have %d", ErrTruncated, TCPHeaderLen, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOff = data[12] >> 4
	hl := int(t.DataOff) * 4
	if hl < TCPHeaderLen {
		return fmt.Errorf("%w: tcp data offset %d", ErrBadField, t.DataOff)
	}
	if len(data) < hl {
		return fmt.Errorf("%w: tcp options", ErrTruncated)
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.payload = data[hl:]
	return nil
}

// LayerType implements DecodingLayer.
func (t *TCP) LayerType() LayerType { return LayerTCP }

// NextLayerType implements DecodingLayer.
func (t *TCP) NextLayerType() LayerType { return LayerPayload }

// LayerPayload implements DecodingLayer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// SerializedLen implements SerializableLayer.
func (t *TCP) SerializedLen() int { return TCPHeaderLen }

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b []byte) int {
	_ = b[TCPHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = (TCPHeaderLen / 4) << 4
	b[13] = t.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	return TCPHeaderLen
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an IPv4-over-Ethernet ARP packet.
type ARP struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IP
	TargetMAC MAC
	TargetIP  IP
}

// DecodeFromBytes implements DecodingLayer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < ARPLen {
		return fmt.Errorf("%w: arp needs %d bytes, have %d", ErrTruncated, ARPLen, len(data))
	}
	if htype := binary.BigEndian.Uint16(data[0:2]); htype != 1 {
		return fmt.Errorf("%w: arp hardware type %d", ErrBadField, htype)
	}
	if ptype := binary.BigEndian.Uint16(data[2:4]); EtherType(ptype) != EtherTypeIPv4 {
		return fmt.Errorf("%w: arp protocol type %#x", ErrBadField, ptype)
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = IPFromBytes(data[14:18])
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = IPFromBytes(data[24:28])
	return nil
}

// LayerType implements DecodingLayer.
func (a *ARP) LayerType() LayerType { return LayerARP }

// NextLayerType implements DecodingLayer.
func (a *ARP) NextLayerType() LayerType { return LayerPayload }

// LayerPayload implements DecodingLayer.
func (a *ARP) LayerPayload() []byte { return nil }

// SerializedLen implements SerializableLayer.
func (a *ARP) SerializedLen() int { return ARPLen }

// SerializeTo implements SerializableLayer.
func (a *ARP) SerializeTo(b []byte) int {
	_ = b[ARPLen-1]
	binary.BigEndian.PutUint16(b[0:2], 1) // Ethernet
	binary.BigEndian.PutUint16(b[2:4], uint16(EtherTypeIPv4))
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	a.SenderIP.Put(b[14:18])
	copy(b[18:24], a.TargetMAC[:])
	a.TargetIP.Put(b[24:28])
	return ARPLen
}

// VLANHeaderLen is the length of an 802.1Q tag (after the Ethernet
// header's TPID).
const VLANHeaderLen = 4

// VLAN is an IEEE 802.1Q tag: priority, VLAN id, and the encapsulated
// EtherType.
type VLAN struct {
	PCP  uint8  // priority code point (3 bits)
	VID  uint16 // VLAN identifier (12 bits)
	Type EtherType

	payload []byte
}

// DecodeFromBytes implements DecodingLayer.
func (v *VLAN) DecodeFromBytes(data []byte) error {
	if len(data) < VLANHeaderLen {
		return fmt.Errorf("%w: vlan needs %d bytes, have %d", ErrTruncated, VLANHeaderLen, len(data))
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.PCP = uint8(tci >> 13)
	v.VID = tci & 0x0fff
	v.Type = EtherType(binary.BigEndian.Uint16(data[2:4]))
	v.payload = data[VLANHeaderLen:]
	return nil
}

// LayerType implements DecodingLayer.
func (v *VLAN) LayerType() LayerType { return LayerVLAN }

// NextLayerType implements DecodingLayer.
func (v *VLAN) NextLayerType() LayerType {
	switch v.Type {
	case EtherTypeIPv4:
		return LayerIPv4
	case EtherTypeARP:
		return LayerARP
	case EtherTypeProbe:
		return LayerProbe
	case EtherTypeEcho:
		return LayerEcho
	case EtherTypeReport:
		return LayerReport
	default:
		return LayerPayload
	}
}

// LayerPayload implements DecodingLayer.
func (v *VLAN) LayerPayload() []byte { return v.payload }

// SerializedLen implements SerializableLayer.
func (v *VLAN) SerializedLen() int { return VLANHeaderLen }

// SerializeTo implements SerializableLayer.
func (v *VLAN) SerializeTo(b []byte) int {
	_ = b[VLANHeaderLen-1]
	binary.BigEndian.PutUint16(b[0:2], uint16(v.PCP)<<13|v.VID&0x0fff)
	binary.BigEndian.PutUint16(b[2:4], uint16(v.Type))
	return VLANHeaderLen
}
