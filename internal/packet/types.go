// Package packet implements the packet substrate for the simulator:
// wire-format encoding and decoding of Ethernet, ARP, IPv4, UDP and TCP
// headers plus the custom experiment protocols used by the event-driven
// applications (HULA probes, liveness echoes, telemetry reports).
//
// The design follows the gopacket conventions: each header type is a
// DecodingLayer that parses itself from a byte slice into preallocated
// storage without heap allocation, and a Parser walks a known layer stack
// the way gopacket's DecodingLayerParser does. Flow and Endpoint values are
// compact, hashable flow identifiers with a symmetric FastHash.
package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// String formats the address in canonical colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the all-ones broadcast address.
func (m MAC) IsBroadcast() bool {
	return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
}

// Broadcast is the Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// MACFromUint64 builds a MAC from the low 48 bits of v; handy for giving
// simulated hosts dense, readable addresses.
func MACFromUint64(v uint64) MAC {
	var m MAC
	m[0] = byte(v >> 40)
	m[1] = byte(v >> 32)
	m[2] = byte(v >> 24)
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// Uint64 returns the address as an integer in the low 48 bits.
func (m MAC) Uint64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// IP is an IPv4 address held as a big-endian uint32. The simulator is an
// IPv4-only world; a fixed-size integer representation keeps flow keys
// comparable and allocation-free.
type IP uint32

// IPFromBytes builds an IP from 4 bytes in network order.
func IPFromBytes(b []byte) IP {
	_ = b[3]
	return IP(binary.BigEndian.Uint32(b))
}

// IP4 builds an address from its dotted-quad components.
func IP4(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Put writes the address into b in network order.
func (ip IP) Put(b []byte) {
	binary.BigEndian.PutUint32(b, uint32(ip))
}

// String formats the address as a dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EtherType identifies the protocol carried in an Ethernet frame.
type EtherType uint16

// EtherTypes used by the simulator. The Probe/Echo/Report types sit in the
// IEEE local-experimental range and carry the custom event-protocol
// headers used by the example applications.
const (
	EtherTypeIPv4   EtherType = 0x0800
	EtherTypeARP    EtherType = 0x0806
	EtherTypeVLAN   EtherType = 0x8100
	EtherTypeProbe  EtherType = 0x88b5
	EtherTypeEcho   EtherType = 0x88b6
	EtherTypeReport EtherType = 0x88b7
)

// String names well-known EtherTypes.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeVLAN:
		return "VLAN"
	case EtherTypeProbe:
		return "Probe"
	case EtherTypeEcho:
		return "Echo"
	case EtherTypeReport:
		return "Report"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// IPProto identifies the transport protocol in an IPv4 header.
type IPProto uint8

// Transport protocol numbers used by the simulator.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// String names well-known IP protocols.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("IPProto(%d)", uint8(p))
	}
}

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options
	ARPLen            = 28
)

// MinFrameLen is the minimum Ethernet frame length (without FCS) enforced
// by the workload generators, matching the 64-byte wire minimum less the
// 4-byte FCS that the simulator does not model.
const MinFrameLen = 60

// MaxFrameLen is the maximum standard Ethernet frame length modeled.
const MaxFrameLen = 1514

// Checksum computes the RFC 1071 ones-complement checksum over b, with an
// optional initial partial sum (pass 0 normally).
func Checksum(b []byte, initial uint32) uint16 {
	sum := initial
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
