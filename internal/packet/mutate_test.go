package packet

import (
	"testing"
	"testing/quick"
)

func mutFrame(vlan uint16, size int, proto IPProto) []byte {
	return BuildFrame(FrameSpec{
		Flow: Flow{Src: IP4(10, 0, 0, 1), Dst: IP4(10, 0, 0, 2),
			SrcPort: 5, DstPort: 6, Proto: proto},
		TotalLen: size, VLAN: vlan,
	})
}

func checksumOK(t *testing.T, data []byte) {
	t.Helper()
	off := ipOffset(data)
	if off < 0 {
		t.Fatal("not IP")
	}
	if Checksum(data[off:off+IPv4HeaderLen], 0) != 0 {
		t.Fatal("IP checksum invalid after mutation")
	}
}

func TestSetTOS(t *testing.T) {
	data := mutFrame(0, 200, ProtoUDP)
	if !SetTOS(data, 0xa7) {
		t.Fatal("SetTOS failed on IP frame")
	}
	if TOSOf(data) != 0xa7 {
		t.Errorf("TOS = %#x", TOSOf(data))
	}
	checksumOK(t, data)
	// Still parses and still the same flow.
	var p Parser
	var dec []LayerType
	if err := p.Decode(data, &dec); err != nil {
		t.Fatal(err)
	}
	if p.IP.TOS != 0xa7 {
		t.Errorf("parsed TOS = %#x", p.IP.TOS)
	}
	if _, ok := FlowOf(data); !ok {
		t.Error("flow lost")
	}
}

func TestSetTOSThroughVLAN(t *testing.T) {
	data := mutFrame(7, 200, ProtoUDP)
	if !SetTOS(data, 0x55) {
		t.Fatal("SetTOS failed through VLAN tag")
	}
	if TOSOf(data) != 0x55 {
		t.Errorf("TOS = %#x", TOSOf(data))
	}
	checksumOK(t, data)
}

func TestSetTOSNonIP(t *testing.T) {
	data := BuildControlFrame(Broadcast, MACFromUint64(1), &Echo{Op: EchoRequest})
	if SetTOS(data, 1) {
		t.Error("SetTOS succeeded on non-IP frame")
	}
	if TOSOf(data) != 0 {
		t.Error("TOSOf non-IP should be 0")
	}
}

func TestSetTOSChecksumProperty(t *testing.T) {
	// Property: any TOS value keeps the checksum valid.
	f := func(tos uint8, size uint16) bool {
		n := 60 + int(size%1400)
		data := mutFrame(0, n, ProtoUDP)
		SetTOS(data, tos)
		off := ipOffset(data)
		return Checksum(data[off:off+IPv4HeaderLen], 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrimUDP(t *testing.T) {
	data := mutFrame(0, 1500, ProtoUDP)
	trimmed, ok := Trim(data)
	if !ok {
		t.Fatal("Trim failed")
	}
	want := EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen
	if len(trimmed) != want {
		t.Errorf("trimmed to %d, want %d", len(trimmed), want)
	}
	checksumOK(t, trimmed)
	// Headers still parse and the flow survives.
	fl, ok := FlowOf(trimmed)
	if !ok || fl.DstPort != 6 {
		t.Errorf("flow after trim = %v ok=%v", fl, ok)
	}
	var p Parser
	var dec []LayerType
	if err := p.Decode(trimmed, &dec); err != nil {
		t.Fatal(err)
	}
	if int(p.IP.TotalLen) != IPv4HeaderLen+UDPHeaderLen {
		t.Errorf("IP total len = %d", p.IP.TotalLen)
	}
}

func TestTrimTCPAndIdempotent(t *testing.T) {
	data := mutFrame(0, 1000, ProtoTCP)
	trimmed, ok := Trim(data)
	if !ok {
		t.Fatal("Trim failed on TCP")
	}
	if len(trimmed) != EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen {
		t.Errorf("trimmed to %d", len(trimmed))
	}
	// Trimming an already header-only frame is a no-op.
	again, ok := Trim(trimmed)
	if ok {
		t.Error("second trim claimed to trim")
	}
	if len(again) != len(trimmed) {
		t.Error("second trim changed length")
	}
}

func TestTrimNonIP(t *testing.T) {
	data := BuildControlFrame(Broadcast, MACFromUint64(1), &Probe{})
	if _, ok := Trim(data); ok {
		t.Error("Trim succeeded on non-IP frame")
	}
}
