package pisa

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/sim"
	"repro/internal/state"
)

// SharedRegister is the paper's new extern type: a register array that
// event-processing threads share with the packet-processing threads
// (paper §2, "shared_register").
//
// Two implementations mirror the paper's §4 design space:
//
//   - Aggregated (high line rate): packet-event threads own the main
//     array's single port — all their accesses within one slot form one
//     stateful-ALU transaction. Each deferred event kind (enqueue,
//     dequeue, ...) accumulates deltas in its own single-ported
//     aggregation bank, drained into the main array on idle cycles
//     (Figure 3). Reads see the bounded-stale main value.
//
//   - MultiPort (low line rate, e.g. a WiFi AP): one port per thread on a
//     multi-ported memory; every access is direct and reads are exact.
type SharedRegister struct {
	name string
	size int

	agg *state.Aggregated // aggregated mode
	arr *state.Array      // multiport mode

	// classOf maps a deferred event kind to its aggregation bank, or -1
	// for direct (packet-thread) access.
	classOf [events.NumKinds]int

	// heldCycle[k] is the last cycle on which kind k held a direct
	// port; further direct accesses by the same kind in the same cycle
	// ride the same memory transaction.
	heldCycle [events.NumKinds]uint64

	conflicts uint64 // direct accesses denied a port (over-subscription)
	staleRead uint64 // reads served from the stale main value
}

// NewAggregatedRegister builds a shared register in aggregated mode. The
// deferred kinds each get an aggregation bank (in the order given);
// every other kind accesses the main array directly.
func NewAggregatedRegister(name string, size int, deferred ...events.Kind) *SharedRegister {
	r := &SharedRegister{name: name, size: size}
	for i := range r.classOf {
		r.classOf[i] = -1
	}
	classes := make([]string, len(deferred))
	for i, k := range deferred {
		classes[i] = k.String()
		r.classOf[k] = i
	}
	if len(classes) == 0 {
		classes = []string{"none"} // state.NewAggregated requires one bank
	}
	r.agg = state.NewAggregated(name, size, 1, classes...)
	for i := range r.heldCycle {
		r.heldCycle[i] = ^uint64(0)
	}
	return r
}

// NewMultiPortRegister builds a shared register in multi-ported mode with
// the given number of ports (one per concurrent thread).
func NewMultiPortRegister(name string, size, ports int) *SharedRegister {
	r := &SharedRegister{name: name, size: size, arr: state.NewArray(name, size, ports)}
	for i := range r.classOf {
		r.classOf[i] = -1
	}
	for i := range r.heldCycle {
		r.heldCycle[i] = ^uint64(0)
	}
	return r
}

// Name returns the register's name.
func (r *SharedRegister) Name() string { return r.name }

// Size returns the number of entries.
func (r *SharedRegister) Size() int { return r.size }

// Aggregated reports whether the register runs in aggregated mode.
func (r *SharedRegister) Aggregated() bool { return r.agg != nil }

func (r *SharedRegister) mainArr() *state.Array {
	if r.agg != nil {
		return r.agg.Main()
	}
	return r.arr
}

// acquire obtains the calling kind's memory transaction for this cycle,
// consuming a port on first use. It returns false when the memory is
// over-subscribed this cycle.
func (r *SharedRegister) acquire(ctx *Context) bool {
	k := ctx.Ev.Kind
	if r.heldCycle[k] == ctx.Cycle {
		return true
	}
	a := r.mainArr()
	a.Tick(ctx.Cycle)
	if !a.TryAcquire() {
		r.conflicts++
		return false
	}
	r.heldCycle[k] = ctx.Cycle
	return true
}

// Read returns the register value visible to the calling thread. Packet
// threads (and all threads in multiport mode) read through their memory
// transaction; deferred event threads see the stale main value without a
// port (they own only their aggregation bank).
func (r *SharedRegister) Read(ctx *Context, idx uint32) uint64 {
	if r.agg != nil && r.classOf[ctx.Ev.Kind] >= 0 {
		r.staleRead++
		return r.mainArr().Peek(idx % uint32(r.size))
	}
	if !r.acquire(ctx) {
		r.staleRead++
	}
	return r.mainArr().Peek(idx % uint32(r.size))
}

// Add applies a delta to entry idx. Deferred kinds aggregate the delta in
// their bank; direct kinds fold it into their transaction.
func (r *SharedRegister) Add(ctx *Context, idx uint32, delta int64) {
	if r.agg != nil {
		if c := r.classOf[ctx.Ev.Kind]; c >= 0 {
			r.agg.Tick(ctx.Cycle)
			if !r.agg.Defer(c, idx, delta) {
				// Bank port exhausted: the update is lost, which is what
				// the hardware would do; it is counted in the metrics.
				return
			}
			return
		}
	}
	if !r.acquire(ctx) {
		return
	}
	a := r.mainArr()
	i := idx % uint32(r.size)
	a.Poke(i, uint64(int64(a.Peek(i))+delta))
}

// Write stores an absolute value. Only direct threads may write
// absolutely; a deferred thread's absolute write is meaningless against
// pending deltas and panics to catch program bugs.
func (r *SharedRegister) Write(ctx *Context, idx uint32, v uint64) {
	if r.agg != nil && r.classOf[ctx.Ev.Kind] >= 0 {
		panic(fmt.Sprintf("pisa: deferred event kind %v may not Write register %s; use Add",
			ctx.Ev.Kind, r.name))
	}
	if !r.acquire(ctx) {
		return
	}
	r.mainArr().Poke(idx%uint32(r.size), v)
}

// True returns the exact logical value (main plus pending deltas): what a
// multi-ported memory would hold. Monitors and experiments use it to
// quantify staleness; data-plane programs cannot call it.
func (r *SharedRegister) True(idx uint32) int64 {
	if r.agg != nil {
		return r.agg.True(idx)
	}
	return int64(r.arr.Peek(idx % uint32(r.size)))
}

// Stale returns the data-plane-visible value without any port accounting
// (for monitors).
func (r *SharedRegister) Stale(idx uint32) uint64 {
	return r.mainArr().Peek(idx % uint32(r.size))
}

// SetDrainHook installs an observer called for each aggregated delta as
// it drains into the main array, with the entry index and the cycles it
// waited (the paper's per-drain staleness). A multi-ported register never
// defers, so the hook is a no-op there.
func (r *SharedRegister) SetDrainHook(fn func(idx uint32, lag uint64)) {
	if r.agg != nil {
		r.agg.SetDrainHook(fn)
	}
}

// Reset zeroes the register from the control plane, discarding any
// pending aggregated deltas (the logical value becomes zero everywhere).
func (r *SharedRegister) Reset() {
	if r.agg != nil {
		r.agg.ResetAll()
		return
	}
	r.arr.Reset()
}

// Tick advances the register's memories to the given cycle. The switch
// core calls this once per pipeline cycle before executing the slot.
func (r *SharedRegister) Tick(cycle uint64) {
	if r.agg != nil {
		r.agg.Tick(cycle)
	} else {
		r.arr.Tick(cycle)
	}
}

// EndCycle drains pending aggregated deltas using idle bandwidth. The
// switch core calls this once per pipeline cycle after the slot.
func (r *SharedRegister) EndCycle() {
	if r.agg != nil {
		r.agg.EndCycle()
	}
}

// Cycle returns the pipeline cycle the register's memories were last
// ticked to. During a drain fast-forward the register's cycle runs ahead
// of the scheduler clock; telemetry uses the difference to reconstruct
// virtual drain timestamps.
func (r *SharedRegister) Cycle() uint64 { return r.mainArr().Cycle() }

// DrainN fast-forwards the register through up to max drain-only cycles
// (see state.Aggregated.DrainN) and returns how many it consumed. A
// multi-ported register never defers, so it consumes none.
func (r *SharedRegister) DrainN(max uint64) uint64 {
	if r.agg != nil {
		return r.agg.DrainN(max)
	}
	return 0
}

// Backlog returns the number of register entries with pending undrained
// deltas (always zero in multiport mode).
func (r *SharedRegister) Backlog() int {
	if r.agg != nil {
		return r.agg.Backlog()
	}
	return 0
}

// PendingAbs returns the undrained aggregation magnitude (zero in
// multiport mode): the drain process's total debt in value units.
func (r *SharedRegister) PendingAbs() int64 {
	if r.agg != nil {
		return r.agg.PendingAbs()
	}
	return 0
}

// Metrics returns aggregation metrics (zero value in multiport mode) and
// the direct-access conflict count.
func (r *SharedRegister) Metrics() (state.AggMetrics, uint64) {
	if r.agg != nil {
		return r.agg.Metrics(), r.conflicts
	}
	return state.AggMetrics{}, r.conflicts
}

// Counter is a statistics extern: per-index packet and byte counts. Real
// targets keep counters in dedicated statistics memory, so no port
// accounting applies.
type Counter struct {
	name    string
	packets []uint64
	bytes   []uint64
}

// NewCounter builds a counter array.
func NewCounter(name string, size int) *Counter {
	return &Counter{name: name, packets: make([]uint64, size), bytes: make([]uint64, size)}
}

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Size returns the number of entries.
func (c *Counter) Size() int { return len(c.packets) }

// Count records one packet of n bytes against entry idx.
func (c *Counter) Count(idx uint32, n int) {
	i := idx % uint32(len(c.packets))
	c.packets[i]++
	c.bytes[i] += uint64(n)
}

// Value returns the packet and byte counts of entry idx.
func (c *Counter) Value(idx uint32) (pkts, bytes uint64) {
	i := idx % uint32(len(c.packets))
	return c.packets[i], c.bytes[i]
}

// Reset zeroes all entries.
func (c *Counter) Reset() {
	for i := range c.packets {
		c.packets[i], c.bytes[i] = 0, 0
	}
}

// MeterColor is the result of a meter execution.
type MeterColor uint8

// Meter colors (single-rate, two-color-with-burst semantics).
const (
	ColorGreen MeterColor = iota
	ColorYellow
	ColorRed
)

// String names the color.
func (c MeterColor) String() string {
	switch c {
	case ColorGreen:
		return "green"
	case ColorYellow:
		return "yellow"
	case ColorRed:
		return "red"
	default:
		return fmt.Sprintf("color(%d)", uint8(c))
	}
}

// Meter is a fixed-function token-bucket meter extern, as baseline PISA
// targets expose for policing (paper §3 Traffic Management). Each index
// is an independent bucket: tokens accrue at Rate bytes/s up to
// CommittedBurst (+ExcessBurst for yellow).
type Meter struct {
	name           string
	rate           sim.Rate // token fill rate, in bits/s
	committedBurst int64    // bytes
	excessBurst    int64    // bytes

	tokens []int64
	last   []sim.Time
}

// NewMeter builds a meter array. excessBurst of zero disables yellow.
func NewMeter(name string, size int, rate sim.Rate, committedBurst, excessBurst int) *Meter {
	m := &Meter{
		name: name, rate: rate,
		committedBurst: int64(committedBurst), excessBurst: int64(excessBurst),
		tokens: make([]int64, size), last: make([]sim.Time, size),
	}
	for i := range m.tokens {
		m.tokens[i] = m.committedBurst + m.excessBurst
	}
	return m
}

// Name returns the meter's name.
func (m *Meter) Name() string { return m.name }

// Execute charges n bytes against bucket idx at the given time and
// returns the color.
func (m *Meter) Execute(idx uint32, n int, now sim.Time) MeterColor {
	i := idx % uint32(len(m.tokens))
	elapsed := now - m.last[i]
	if elapsed > 0 {
		fill := int64(elapsed) * int64(m.rate) / (8 * int64(sim.Second)) // bytes
		m.tokens[i] += fill
		if max := m.committedBurst + m.excessBurst; m.tokens[i] > max {
			m.tokens[i] = max
		}
		m.last[i] = now
	}
	m.tokens[i] -= int64(n)
	switch {
	case m.tokens[i] >= m.excessBurst:
		return ColorGreen
	case m.tokens[i] >= 0:
		return ColorYellow
	default:
		// Red packets do not consume tokens.
		m.tokens[i] += int64(n)
		return ColorRed
	}
}

// Hash is the hash extern: a keyed mixing hash over field values, used by
// programs to compute flow indices (the paper's `hash(hdr.ip.src ++
// hdr.ip.dst, flowID)`).
func Hash(seed uint64, fields ...uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, f := range fields {
		h ^= f
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}
