package pisa

import (
	"fmt"
	"sort"
)

// MatchKind is how one key field of a table matches.
type MatchKind uint8

// Match kinds supported by PISA tables.
const (
	// Exact requires equality.
	Exact MatchKind = iota
	// LPM matches the longest prefix (contiguous high-bit mask).
	LPM
	// Ternary matches under an arbitrary mask with explicit priority.
	Ternary
)

// String names the match kind.
func (k MatchKind) String() string {
	switch k {
	case Exact:
		return "exact"
	case LPM:
		return "lpm"
	case Ternary:
		return "ternary"
	default:
		return fmt.Sprintf("matchkind(%d)", uint8(k))
	}
}

// ActionFunc is a table action: it runs with the entry's compile-time
// parameter list.
type ActionFunc func(ctx *Context, params []uint64)

// KeyFunc extracts the table's key fields from the context into dst,
// which has one slot per key field. It returns false when the key is not
// derivable (e.g. a non-IP packet for an IP table), in which case the
// default action runs.
type KeyFunc func(ctx *Context, dst []uint64) bool

// Entry is one table entry.
type Entry struct {
	// Values are the match values, one per key field.
	Values []uint64
	// Masks are per-field bit masks: ^0 for exact fields; for LPM fields
	// the contiguous prefix mask; arbitrary for ternary. A nil Masks
	// means all fields exact.
	Masks []uint64
	// Priority orders overlapping entries (higher wins). AddEntry
	// assigns LPM priorities automatically from prefix length.
	Priority int
	// Action and Params bind the entry's action.
	Action ActionFunc
	Params []uint64

	hits uint64
}

// Hits returns how many lookups selected this entry.
func (e *Entry) Hits() uint64 { return e.hits }

// Table is a match-action table: key definition, entry list, and default
// action. Lookup order is by descending priority, then insertion order.
type Table struct {
	name    string
	kinds   []MatchKind
	keyFn   KeyFunc
	entries []*Entry

	defaultAction ActionFunc
	defaultParams []uint64

	scratch    []uint64
	keyBuf     []byte // reused lookup key encoding; never retained
	lookups    uint64
	misses     uint64
	exactIndex map[string]*Entry // fast path when all fields Exact
	allExact   bool
}

// NewTable builds a table with the given per-field match kinds and key
// extractor. The default action is a no-op until SetDefault.
func NewTable(name string, kinds []MatchKind, keyFn KeyFunc) *Table {
	allExact := true
	for _, k := range kinds {
		if k != Exact {
			allExact = false
		}
	}
	t := &Table{
		name:     name,
		kinds:    kinds,
		keyFn:    keyFn,
		scratch:  make([]uint64, len(kinds)),
		allExact: allExact,
	}
	if allExact {
		t.exactIndex = make(map[string]*Entry)
		t.keyBuf = make([]byte, 0, len(kinds)*8)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// SetDefault installs the default (miss) action.
func (t *Table) SetDefault(a ActionFunc, params ...uint64) {
	t.defaultAction = a
	t.defaultParams = params
}

// appendExactKey encodes the key values big-endian into dst. Apply
// reuses the table's keyBuf and indexes the map with a direct
// string(...) conversion, which Go compiles to an allocation-free
// lookup; only entry installation materializes a real string.
func appendExactKey(dst []byte, values []uint64) []byte {
	for _, v := range values {
		for s := 56; s >= 0; s -= 8 {
			dst = append(dst, byte(v>>uint(s)))
		}
	}
	return dst
}

func exactKey(values []uint64) string {
	return string(appendExactKey(make([]byte, 0, len(values)*8), values))
}

// AddEntry installs an entry. For tables whose fields are all Exact, a
// duplicate key replaces the previous entry. For LPM fields the entry's
// Masks must hold the prefix masks, and priority defaults to the total
// number of mask bits when zero.
func (t *Table) AddEntry(e *Entry) error {
	if len(e.Values) != len(t.kinds) {
		return fmt.Errorf("pisa: table %s: entry has %d values, key has %d fields",
			t.name, len(e.Values), len(t.kinds))
	}
	if e.Masks != nil && len(e.Masks) != len(t.kinds) {
		return fmt.Errorf("pisa: table %s: entry has %d masks, key has %d fields",
			t.name, len(e.Masks), len(t.kinds))
	}
	if e.Action == nil {
		return fmt.Errorf("pisa: table %s: entry without action", t.name)
	}
	if e.Priority == 0 && e.Masks != nil {
		for _, m := range e.Masks {
			for b := m; b != 0; b >>= 1 {
				if b&1 == 1 {
					e.Priority++
				}
			}
		}
	}
	if t.allExact {
		k := exactKey(e.Values)
		if old, ok := t.exactIndex[k]; ok {
			*old = *e
			return nil
		}
		t.exactIndex[k] = e
	}
	t.entries = append(t.entries, e)
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Priority > t.entries[j].Priority
	})
	return nil
}

// DeleteExact removes the exact-match entry with the given values.
func (t *Table) DeleteExact(values ...uint64) bool {
	if !t.allExact {
		return false
	}
	k := exactKey(values)
	e, ok := t.exactIndex[k]
	if !ok {
		return false
	}
	delete(t.exactIndex, k)
	for i, x := range t.entries {
		if x == e {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			break
		}
	}
	return true
}

// Clear removes all entries.
func (t *Table) Clear() {
	t.entries = t.entries[:0]
	if t.exactIndex != nil {
		t.exactIndex = make(map[string]*Entry)
	}
}

// Apply looks up the key and runs the matching entry's action (or the
// default action on miss). It reports whether an entry hit.
func (t *Table) Apply(ctx *Context) bool {
	t.lookups++
	if t.keyFn == nil || !t.keyFn(ctx, t.scratch) {
		return t.miss(ctx)
	}
	if t.allExact {
		t.keyBuf = appendExactKey(t.keyBuf[:0], t.scratch)
		if e, ok := t.exactIndex[string(t.keyBuf)]; ok {
			e.hits++
			e.Action(ctx, e.Params)
			return true
		}
		return t.miss(ctx)
	}
	for _, e := range t.entries {
		if t.matches(e) {
			e.hits++
			e.Action(ctx, e.Params)
			return true
		}
	}
	return t.miss(ctx)
}

func (t *Table) miss(ctx *Context) bool {
	t.misses++
	if t.defaultAction != nil {
		t.defaultAction(ctx, t.defaultParams)
	}
	return false
}

func (t *Table) matches(e *Entry) bool {
	for i, k := range t.kinds {
		switch k {
		case Exact:
			if t.scratch[i] != e.Values[i] {
				return false
			}
		default: // LPM, Ternary
			var m uint64 = ^uint64(0)
			if e.Masks != nil {
				m = e.Masks[i]
			}
			if t.scratch[i]&m != e.Values[i]&m {
				return false
			}
		}
	}
	return true
}

// Stats returns lookup and miss counts.
func (t *Table) Stats() (lookups, misses uint64) { return t.lookups, t.misses }

// PrefixMask returns the mask for an IPv4-style prefix of the given
// length over a w-bit field.
func PrefixMask(prefixLen, w int) uint64 {
	if prefixLen <= 0 {
		return 0
	}
	if prefixLen >= w {
		if w >= 64 {
			return ^uint64(0)
		}
		return (1<<uint(w) - 1)
	}
	return ((1<<uint(prefixLen) - 1) << uint(w-prefixLen))
}
