package pisa

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// Snapshot serializes the register: the backing memories (main array and
// aggregation banks, or the multi-ported array), per-kind transaction
// cycles, and the conflict counters.
func (r *SharedRegister) Snapshot(e *checkpoint.Encoder) {
	e.Bool(r.agg != nil)
	if r.agg != nil {
		r.agg.Snapshot(e)
	} else {
		r.arr.Snapshot(e)
	}
	for _, c := range r.heldCycle {
		e.U64(c)
	}
	e.U64(r.conflicts)
	e.U64(r.staleRead)
}

// Restore loads a snapshot into an identically constructed register.
func (r *SharedRegister) Restore(d *checkpoint.Decoder) {
	wasAgg := d.Bool()
	if d.Err() != nil {
		return
	}
	if wasAgg != (r.agg != nil) {
		d.Fail(fmt.Errorf("pisa: register %s: snapshot mode (aggregated=%v) differs from register", r.name, wasAgg))
		return
	}
	if r.agg != nil {
		r.agg.Restore(d)
	} else {
		r.arr.Restore(d)
	}
	for i := range r.heldCycle {
		r.heldCycle[i] = d.U64()
	}
	r.conflicts = d.U64()
	r.staleRead = d.U64()
}

// Snapshot serializes the counter array.
func (c *Counter) Snapshot(e *checkpoint.Encoder) {
	e.U32(uint32(len(c.packets)))
	for i := range c.packets {
		e.U64(c.packets[i])
		e.U64(c.bytes[i])
	}
}

// Restore loads a counter snapshot.
func (c *Counter) Restore(d *checkpoint.Decoder) {
	n := int(d.U32())
	if d.Err() != nil {
		return
	}
	if n != len(c.packets) {
		d.Fail(fmt.Errorf("pisa: counter %s: snapshot has %d entries, counter has %d", c.name, n, len(c.packets)))
		return
	}
	for i := range c.packets {
		c.packets[i] = d.U64()
		c.bytes[i] = d.U64()
	}
}

// Snapshot serializes the meter's bucket levels and refill timestamps.
func (m *Meter) Snapshot(e *checkpoint.Encoder) {
	e.U32(uint32(len(m.tokens)))
	for i := range m.tokens {
		e.I64(m.tokens[i])
		e.I64(int64(m.last[i]))
	}
}

// Restore loads a meter snapshot.
func (m *Meter) Restore(d *checkpoint.Decoder) {
	n := int(d.U32())
	if d.Err() != nil {
		return
	}
	if n != len(m.tokens) {
		d.Fail(fmt.Errorf("pisa: meter %s: snapshot has %d buckets, meter has %d", m.name, n, len(m.tokens)))
		return
	}
	for i := range m.tokens {
		m.tokens[i] = d.I64()
		m.last[i] = sim.Time(d.I64())
	}
}

// Snapshot serializes the table's mutable state: lookup counters and,
// per entry, the match key tuple with its hit count and parameters.
// Action functions cannot be serialized; Restore matches entries by
// (values, masks, priority) against the rebuilt table, so a table whose
// entry set was mutated at runtime after construction cannot be restored
// (documented limitation, DESIGN.md §13).
func (t *Table) Snapshot(e *checkpoint.Encoder) {
	e.U64(t.lookups)
	e.U64(t.misses)
	e.U32(uint32(len(t.entries)))
	for _, en := range t.entries {
		e.U32(uint32(len(en.Values)))
		for _, v := range en.Values {
			e.U64(v)
		}
		e.Bool(en.Masks != nil)
		for _, m := range en.Masks {
			e.U64(m)
		}
		e.Int(en.Priority)
		e.U32(uint32(len(en.Params)))
		for _, p := range en.Params {
			e.U64(p)
		}
		e.U64(en.hits)
	}
}

// Restore loads a table snapshot into an identically populated table.
// Entries must appear in the same order with the same keys; parameters
// and hit counts are restored, actions stay as constructed.
func (t *Table) Restore(d *checkpoint.Decoder) {
	t.lookups = d.U64()
	t.misses = d.U64()
	n := int(d.U32())
	if d.Err() != nil {
		return
	}
	if n != len(t.entries) {
		d.Fail(fmt.Errorf("pisa: table %s: snapshot has %d entries, table has %d (runtime entry mutation is not checkpointable)",
			t.name, n, len(t.entries)))
		return
	}
	for _, en := range t.entries {
		nv := int(d.U32())
		if d.Err() != nil {
			return
		}
		if nv != len(en.Values) {
			d.Fail(fmt.Errorf("pisa: table %s: entry key width mismatch", t.name))
			return
		}
		for i, v := range en.Values {
			if got := d.U64(); got != v {
				d.Fail(fmt.Errorf("pisa: table %s: entry value %d mismatch (snapshot %#x, table %#x)", t.name, i, got, v))
				return
			}
		}
		hadMasks := d.Bool()
		if d.Err() != nil {
			return
		}
		if hadMasks != (en.Masks != nil) {
			d.Fail(fmt.Errorf("pisa: table %s: entry mask presence mismatch", t.name))
			return
		}
		for i, m := range en.Masks {
			if got := d.U64(); got != m {
				d.Fail(fmt.Errorf("pisa: table %s: entry mask %d mismatch", t.name, i))
				return
			}
		}
		if pr := d.Int(); pr != en.Priority {
			d.Fail(fmt.Errorf("pisa: table %s: entry priority mismatch (snapshot %d, table %d)", t.name, pr, en.Priority))
			return
		}
		np := int(d.U32())
		if d.Err() != nil {
			return
		}
		if np != len(en.Params) {
			d.Fail(fmt.Errorf("pisa: table %s: entry param count mismatch", t.name))
			return
		}
		for i := range en.Params {
			en.Params[i] = d.U64()
		}
		en.hits = d.U64()
	}
}

// Snapshot serializes every stateful extern of the program: shared
// registers (insertion order), then tables, counters, and meters (sorted
// by name). Handlers are code, not state — the restore path rebuilds
// them by re-running the program's construction.
func (p *Program) Snapshot(e *checkpoint.Encoder) {
	e.String(p.name)
	e.U32(uint32(len(p.regList)))
	for _, r := range p.regList {
		e.String(r.Name())
		r.Snapshot(e)
	}
	tnames := p.TableNames()
	e.U32(uint32(len(tnames)))
	for _, n := range tnames {
		e.String(n)
		p.tables[n].Snapshot(e)
	}
	cnames := sortedKeys(p.counters)
	e.U32(uint32(len(cnames)))
	for _, n := range cnames {
		e.String(n)
		p.counters[n].Snapshot(e)
	}
	mnames := sortedKeys(p.meters)
	e.U32(uint32(len(mnames)))
	for _, n := range mnames {
		e.String(n)
		p.meters[n].Snapshot(e)
	}
}

// Restore loads a program snapshot into an identically constructed
// program (same externs under the same names).
func (p *Program) Restore(d *checkpoint.Decoder) {
	name := d.String()
	if d.Err() != nil {
		return
	}
	if name != p.name {
		d.Fail(fmt.Errorf("pisa: snapshot is of program %q, loaded program is %q", name, p.name))
		return
	}
	nr := int(d.U32())
	if d.Err() != nil {
		return
	}
	if nr != len(p.regList) {
		d.Fail(fmt.Errorf("pisa: program %s: snapshot has %d registers, program has %d", p.name, nr, len(p.regList)))
		return
	}
	for _, r := range p.regList {
		rn := d.String()
		if d.Err() != nil {
			return
		}
		if rn != r.Name() {
			d.Fail(fmt.Errorf("pisa: program %s: register order mismatch (snapshot %q, program %q)", p.name, rn, r.Name()))
			return
		}
		r.Restore(d)
	}
	restoreNamed(d, p.name, "table", p.TableNames(), func(n string) interface{ Restore(*checkpoint.Decoder) } { return p.tables[n] })
	restoreNamed(d, p.name, "counter", sortedKeys(p.counters), func(n string) interface{ Restore(*checkpoint.Decoder) } { return p.counters[n] })
	restoreNamed(d, p.name, "meter", sortedKeys(p.meters), func(n string) interface{ Restore(*checkpoint.Decoder) } { return p.meters[n] })
}

func restoreNamed(d *checkpoint.Decoder, prog, kind string, names []string, get func(string) interface{ Restore(*checkpoint.Decoder) }) {
	n := int(d.U32())
	if d.Err() != nil {
		return
	}
	if n != len(names) {
		d.Fail(fmt.Errorf("pisa: program %s: snapshot has %d %ss, program has %d", prog, n, kind, len(names)))
		return
	}
	for _, want := range names {
		got := d.String()
		if d.Err() != nil {
			return
		}
		if got != want {
			d.Fail(fmt.Errorf("pisa: program %s: %s name mismatch (snapshot %q, program %q)", prog, kind, got, want))
			return
		}
		get(want).Restore(d)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
