package pisa

import (
	"testing"
	"testing/quick"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/sim"
)

func newCtx(kind events.Kind, cycle uint64) *Context {
	ctx := &Context{}
	ctx.Reset(nil, events.Event{Kind: kind}, 0, cycle)
	return ctx
}

func TestContextReset(t *testing.T) {
	ctx := &Context{}
	ctx.Reset(nil, events.Event{Kind: events.IngressPacket}, 5, 9)
	ctx.SetMeta("x", 7)
	ctx.Emit([]byte{1}, 2)
	ctx.RaiseUser(3)
	ctx.EgressPort = 4
	ctx.Reset(nil, events.Event{Kind: events.BufferEnqueue}, 6, 10)
	if ctx.GetMeta("x") != 0 {
		t.Error("meta survived reset")
	}
	if len(ctx.Generated) != 0 || len(ctx.Raised) != 0 {
		t.Error("generated/raised survived reset")
	}
	if ctx.EgressPort != PortDrop {
		t.Error("egress port not reset to drop")
	}
	if ctx.Ev.Kind != events.BufferEnqueue || ctx.Cycle != 10 {
		t.Error("event not installed")
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := newCtx(events.IngressPacket, 0)
	ctx.Decoded = append(ctx.Decoded, packet.LayerEthernet, packet.LayerIPv4)
	if !ctx.Has(packet.LayerIPv4) || ctx.Has(packet.LayerTCP) {
		t.Error("Has wrong")
	}
	ctx.RaiseUser(42)
	if len(ctx.Raised) != 1 || ctx.Raised[0].Kind != events.UserEvent || ctx.Raised[0].Data != 42 {
		t.Errorf("raised = %+v", ctx.Raised)
	}
	ctx.Drop()
	if ctx.EgressPort != PortDrop {
		t.Error("Drop did not set PortDrop")
	}
}

func TestTableExactMatch(t *testing.T) {
	var hit uint64
	tbl := NewTable("fwd", []MatchKind{Exact}, func(ctx *Context, dst []uint64) bool {
		dst[0] = ctx.GetMeta("dst")
		return true
	})
	tbl.SetDefault(func(ctx *Context, _ []uint64) { ctx.Drop() })
	err := tbl.AddEntry(&Entry{
		Values: []uint64{10},
		Action: func(ctx *Context, params []uint64) { hit = params[0]; ctx.EgressPort = int(params[0]) },
		Params: []uint64{3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(events.IngressPacket, 0)
	ctx.SetMeta("dst", 10)
	if !tbl.Apply(ctx) {
		t.Fatal("expected hit")
	}
	if hit != 3 || ctx.EgressPort != 3 {
		t.Errorf("action not applied: hit=%d port=%d", hit, ctx.EgressPort)
	}
	ctx.SetMeta("dst", 11)
	if tbl.Apply(ctx) {
		t.Fatal("expected miss")
	}
	if ctx.EgressPort != PortDrop {
		t.Error("default action not applied")
	}
	lookups, misses := tbl.Stats()
	if lookups != 2 || misses != 1 {
		t.Errorf("stats = %d/%d", lookups, misses)
	}
}

func TestTableExactApplyZeroAlloc(t *testing.T) {
	tbl := NewTable("fwd", []MatchKind{Exact, Exact}, func(ctx *Context, dst []uint64) bool {
		dst[0] = ctx.GetMeta("a")
		dst[1] = ctx.GetMeta("b")
		return true
	})
	tbl.SetDefault(func(ctx *Context, _ []uint64) { ctx.Drop() })
	for i := uint64(0); i < 8; i++ {
		if err := tbl.AddEntry(&Entry{
			Values: []uint64{i, i * 3},
			Action: func(ctx *Context, params []uint64) { ctx.EgressPort = int(params[0]) },
			Params: []uint64{i},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := newCtx(events.IngressPacket, 0)
	ctx.SetMeta("a", 5)
	ctx.SetMeta("b", 15)
	allocs := testing.AllocsPerRun(1000, func() {
		if !tbl.Apply(ctx) {
			t.Fatal("expected hit")
		}
	})
	if allocs != 0 {
		t.Errorf("exact Apply allocates %v/op, want 0", allocs)
	}
	// Misses through the default action must not allocate either.
	ctx.SetMeta("b", 999)
	allocs = testing.AllocsPerRun(1000, func() {
		if tbl.Apply(ctx) {
			t.Fatal("expected miss")
		}
	})
	if allocs != 0 {
		t.Errorf("exact Apply miss allocates %v/op, want 0", allocs)
	}
}

func TestTableExactReplaceAndDelete(t *testing.T) {
	tbl := NewTable("t", []MatchKind{Exact}, func(ctx *Context, dst []uint64) bool {
		dst[0] = ctx.GetMeta("k")
		return true
	})
	out := 0
	mk := func(v int) ActionFunc { return func(*Context, []uint64) { out = v } }
	tbl.AddEntry(&Entry{Values: []uint64{1}, Action: mk(1)})
	tbl.AddEntry(&Entry{Values: []uint64{1}, Action: mk(2)}) // replace
	if tbl.Len() != 1 {
		t.Fatalf("len = %d after replace", tbl.Len())
	}
	ctx := newCtx(events.IngressPacket, 0)
	ctx.SetMeta("k", 1)
	tbl.Apply(ctx)
	if out != 2 {
		t.Errorf("replaced entry not used: out=%d", out)
	}
	if !tbl.DeleteExact(1) {
		t.Fatal("delete failed")
	}
	if tbl.Len() != 0 {
		t.Errorf("len = %d after delete", tbl.Len())
	}
	if tbl.DeleteExact(1) {
		t.Error("double delete succeeded")
	}
}

func TestTableLPM(t *testing.T) {
	tbl := NewTable("route", []MatchKind{LPM}, func(ctx *Context, dst []uint64) bool {
		dst[0] = ctx.GetMeta("ip")
		return true
	})
	var chosen int
	mk := func(v int) ActionFunc { return func(*Context, []uint64) { chosen = v } }
	// 10.0.0.0/8 -> 1 ; 10.1.0.0/16 -> 2 ; default -> 0
	tbl.AddEntry(&Entry{
		Values: []uint64{uint64(packet.IP4(10, 0, 0, 0))},
		Masks:  []uint64{PrefixMask(8, 32)},
		Action: mk(1),
	})
	tbl.AddEntry(&Entry{
		Values: []uint64{uint64(packet.IP4(10, 1, 0, 0))},
		Masks:  []uint64{PrefixMask(16, 32)},
		Action: mk(2),
	})
	tbl.SetDefault(func(*Context, []uint64) { chosen = 0 })

	cases := []struct {
		ip   packet.IP
		want int
	}{
		{packet.IP4(10, 2, 3, 4), 1},
		{packet.IP4(10, 1, 3, 4), 2}, // longer prefix wins
		{packet.IP4(11, 0, 0, 1), 0},
	}
	for _, c := range cases {
		ctx := newCtx(events.IngressPacket, 0)
		ctx.SetMeta("ip", uint64(c.ip))
		chosen = -1
		tbl.Apply(ctx)
		if chosen != c.want {
			t.Errorf("lookup %v chose %d, want %d", c.ip, chosen, c.want)
		}
	}
}

func TestTableTernaryPriority(t *testing.T) {
	tbl := NewTable("acl", []MatchKind{Ternary, Ternary}, func(ctx *Context, dst []uint64) bool {
		dst[0] = ctx.GetMeta("a")
		dst[1] = ctx.GetMeta("b")
		return true
	})
	var chosen int
	mk := func(v int) ActionFunc { return func(*Context, []uint64) { chosen = v } }
	tbl.AddEntry(&Entry{Values: []uint64{1, 0}, Masks: []uint64{0xff, 0}, Priority: 10, Action: mk(1)})
	tbl.AddEntry(&Entry{Values: []uint64{1, 2}, Masks: []uint64{0xff, 0xff}, Priority: 20, Action: mk(2)})
	ctx := newCtx(events.IngressPacket, 0)
	ctx.SetMeta("a", 1)
	ctx.SetMeta("b", 2)
	tbl.Apply(ctx)
	if chosen != 2 {
		t.Errorf("chose %d, want higher-priority 2", chosen)
	}
	ctx.SetMeta("b", 3)
	tbl.Apply(ctx)
	if chosen != 1 {
		t.Errorf("chose %d, want wildcard entry 1", chosen)
	}
}

func TestTableKeyNotDerivable(t *testing.T) {
	tbl := NewTable("t", []MatchKind{Exact}, func(ctx *Context, dst []uint64) bool {
		return false // e.g. non-IP packet
	})
	missed := false
	tbl.SetDefault(func(*Context, []uint64) { missed = true })
	if tbl.Apply(newCtx(events.IngressPacket, 0)) {
		t.Fatal("hit without derivable key")
	}
	if !missed {
		t.Error("default action skipped")
	}
}

func TestTableAddEntryValidation(t *testing.T) {
	tbl := NewTable("t", []MatchKind{Exact}, nil)
	if err := tbl.AddEntry(&Entry{Values: []uint64{1, 2}, Action: func(*Context, []uint64) {}}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.AddEntry(&Entry{Values: []uint64{1}}); err == nil {
		t.Error("entry without action accepted")
	}
}

func TestPrefixMask(t *testing.T) {
	if PrefixMask(8, 32) != 0xff000000 {
		t.Errorf("PrefixMask(8,32) = %#x", PrefixMask(8, 32))
	}
	if PrefixMask(0, 32) != 0 {
		t.Errorf("PrefixMask(0,32) = %#x", PrefixMask(0, 32))
	}
	if PrefixMask(32, 32) != 0xffffffff {
		t.Errorf("PrefixMask(32,32) = %#x", PrefixMask(32, 32))
	}
	if PrefixMask(64, 64) != ^uint64(0) {
		t.Errorf("PrefixMask(64,64) = %#x", PrefixMask(64, 64))
	}
}

func TestSharedRegisterDirectAccess(t *testing.T) {
	r := NewAggregatedRegister("qsize", 8, events.BufferEnqueue, events.BufferDequeue)
	ctx := newCtx(events.IngressPacket, 1)
	r.Tick(1)
	r.Write(ctx, 2, 100)
	if got := r.Read(ctx, 2); got != 100 {
		t.Errorf("read = %d, want 100", got)
	}
	r.Add(ctx, 2, -30)
	if got := r.True(2); got != 70 {
		t.Errorf("true = %d, want 70", got)
	}
	_, conflicts := r.Metrics()
	if conflicts != 0 {
		t.Errorf("conflicts = %d (same-kind accesses share the transaction)", conflicts)
	}
}

func TestSharedRegisterDeferredUpdate(t *testing.T) {
	r := NewAggregatedRegister("qsize", 8, events.BufferEnqueue, events.BufferDequeue)
	enq := newCtx(events.BufferEnqueue, 1)
	ing := newCtx(events.IngressPacket, 1)
	r.Tick(1)
	// A packet thread holds the main port this cycle, so the deferred
	// update cannot drain yet.
	_ = r.Read(ing, 3)
	r.Add(enq, 3, +200)
	r.EndCycle()
	// Value not yet in main; True sees it.
	if got := r.Stale(3); got != 0 {
		t.Errorf("stale = %d, want 0 before drain", got)
	}
	if got := r.True(3); got != 200 {
		t.Errorf("true = %d, want 200", got)
	}
	// Idle cycle drains.
	r.Tick(2)
	r.EndCycle()
	if got := r.Stale(3); got != 200 {
		t.Errorf("stale = %d, want 200 after drain", got)
	}
	// Deferred reads see the (possibly stale) main value without error.
	r.Tick(3)
	if got := r.Read(enq, 3); got != 200 {
		t.Errorf("deferred read = %d", got)
	}
}

func TestSharedRegisterDeferredWritePanics(t *testing.T) {
	r := NewAggregatedRegister("x", 4, events.BufferEnqueue)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on deferred absolute write")
		}
	}()
	r.Write(newCtx(events.BufferEnqueue, 1), 0, 5)
}

func TestSharedRegisterMultiPortExact(t *testing.T) {
	r := NewMultiPortRegister("x", 4, 3)
	r.Tick(1)
	ing := newCtx(events.IngressPacket, 1)
	enq := newCtx(events.BufferEnqueue, 1)
	deq := newCtx(events.BufferDequeue, 1)
	r.Add(enq, 0, +100)
	r.Add(deq, 0, -40)
	if got := r.Read(ing, 0); got != 60 {
		t.Errorf("multiport read = %d, want exact 60", got)
	}
	_, conflicts := r.Metrics()
	if conflicts != 0 {
		t.Errorf("conflicts = %d with 3 ports and 3 threads", conflicts)
	}
}

func TestSharedRegisterConflictWhenOverSubscribed(t *testing.T) {
	// Multiport with 1 port: two different kinds in the same cycle
	// conflict.
	r := NewMultiPortRegister("x", 4, 1)
	r.Tick(1)
	a := newCtx(events.IngressPacket, 1)
	b := newCtx(events.EgressPacket, 1)
	r.Write(a, 0, 5)
	r.Write(b, 0, 9) // denied: port taken
	_, conflicts := r.Metrics()
	if conflicts == 0 {
		t.Error("expected a conflict")
	}
	if got := r.Stale(0); got != 5 {
		t.Errorf("value = %d, want 5 (second write denied)", got)
	}
}

func TestSharedRegisterReset(t *testing.T) {
	r := NewAggregatedRegister("x", 4, events.BufferEnqueue)
	ctx := newCtx(events.BufferEnqueue, 1)
	r.Tick(1)
	r.Add(ctx, 1, 50)
	r.Reset()
	if r.True(1) != 0 || r.Stale(1) != 0 {
		t.Errorf("after reset: true=%d stale=%d", r.True(1), r.Stale(1))
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("pkts", 4)
	c.Count(1, 100)
	c.Count(1, 50)
	c.Count(5, 60) // wraps to 1
	pk, by := c.Value(1)
	if pk != 3 || by != 210 {
		t.Errorf("counter = %d pkts %d bytes", pk, by)
	}
	c.Reset()
	if pk, by = c.Value(1); pk != 0 || by != 0 {
		t.Error("reset failed")
	}
	if c.Size() != 4 || c.Name() != "pkts" {
		t.Error("metadata wrong")
	}
}

func TestMeterColors(t *testing.T) {
	// 8 Mb/s = 1 MB/s; committed burst 1000B, excess 1000B.
	m := NewMeter("m", 1, 8_000_000, 1000, 1000)
	now := sim.Time(0)
	// Full buckets: first 1000 bytes green.
	if c := m.Execute(0, 1000, now); c != ColorGreen {
		t.Errorf("first = %v, want green", c)
	}
	// Next 1000 dips into excess: yellow.
	if c := m.Execute(0, 1000, now); c != ColorYellow {
		t.Errorf("second = %v, want yellow", c)
	}
	// Bucket empty: red, and red must not consume tokens.
	if c := m.Execute(0, 1000, now); c != ColorRed {
		t.Errorf("third = %v, want red", c)
	}
	// After 1 ms, 1000 bytes refill: yellow zone again.
	later := now + sim.Millisecond
	if c := m.Execute(0, 1000, later); c == ColorRed {
		t.Errorf("after refill = %v, want non-red", c)
	}
}

func TestMeterSustainedRate(t *testing.T) {
	// Offered 2x the meter rate: ~half the bytes should be red.
	m := NewMeter("m", 1, 8_000_000, 1500, 0) // 1 MB/s
	red, total := 0, 0
	for i := 0; i < 2000; i++ {
		now := sim.Millisecond * sim.Time(i) / 2 // one 1000B packet every 0.5 ms = 2 MB/s
		if m.Execute(0, 1000, now) == ColorRed {
			red++
		}
		total++
	}
	frac := float64(red) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("red fraction = %.2f, want ~0.5", frac)
	}
}

func TestHashDeterministicAndSpreads(t *testing.T) {
	a := Hash(1, 10, 20)
	if a != Hash(1, 10, 20) {
		t.Error("hash not deterministic")
	}
	if a == Hash(2, 10, 20) {
		t.Error("seed ignored")
	}
	if a == Hash(1, 20, 10) {
		t.Error("field order ignored")
	}
	buckets := make(map[uint64]int)
	for i := uint64(0); i < 1000; i++ {
		buckets[Hash(0, i)%16]++
	}
	for b, n := range buckets {
		if n > 150 {
			t.Errorf("bucket %d has %d of 1000", b, n)
		}
	}
}

func TestProgramBindingAndApply(t *testing.T) {
	p := NewProgram("test")
	var seen []events.Kind
	p.HandleFunc(events.IngressPacket, func(ctx *Context) { seen = append(seen, ctx.Ev.Kind) })
	p.HandleFunc(events.BufferEnqueue, func(ctx *Context) { seen = append(seen, ctx.Ev.Kind) })
	if !p.Handles(events.IngressPacket) || p.Handles(events.TimerExpiration) {
		t.Error("Handles wrong")
	}
	ks := p.HandledKinds()
	if len(ks) != 2 || ks[0] != events.IngressPacket || ks[1] != events.BufferEnqueue {
		t.Errorf("HandledKinds = %v", ks)
	}
	p.Apply(newCtx(events.BufferEnqueue, 0))
	p.Apply(newCtx(events.TimerExpiration, 0)) // unbound: no-op
	if len(seen) != 1 || seen[0] != events.BufferEnqueue {
		t.Errorf("seen = %v", seen)
	}
}

func TestProgramNamedObjects(t *testing.T) {
	p := NewProgram("test")
	p.AddRegister(NewAggregatedRegister("r1", 4, events.BufferEnqueue))
	p.AddTable(NewTable("t1", []MatchKind{Exact}, nil))
	p.AddCounter(NewCounter("c1", 4))
	p.AddMeter(NewMeter("m1", 1, 1_000_000, 100, 0))
	if p.Register("r1") == nil || p.Table("t1") == nil || p.Counter("c1") == nil || p.Meter("m1") == nil {
		t.Error("lookup failed")
	}
	if p.Register("nope") != nil {
		t.Error("phantom register")
	}
	if names := p.RegisterNames(); len(names) != 1 || names[0] != "r1" {
		t.Errorf("RegisterNames = %v", names)
	}
	if names := p.TableNames(); len(names) != 1 || names[0] != "t1" {
		t.Errorf("TableNames = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register accepted")
		}
	}()
	p.AddRegister(NewAggregatedRegister("r1", 4))
}

func TestProgramTickEndCycleDrain(t *testing.T) {
	p := NewProgram("test")
	r := p.AddRegister(NewAggregatedRegister("r", 4, events.BufferEnqueue))
	ctx := newCtx(events.BufferEnqueue, 1)
	p.Tick(1)
	r.Add(ctx, 0, 7)
	p.EndCycle()
	p.Tick(2)
	p.EndCycle()
	if r.Stale(0) != 7 {
		t.Errorf("drain via Program failed: %d", r.Stale(0))
	}
}

func TestSharedRegisterPendingAbsAndBacklog(t *testing.T) {
	r := NewAggregatedRegister("x", 8, events.BufferEnqueue)
	ing := newCtx(events.IngressPacket, 1)
	enq := newCtx(events.BufferEnqueue, 1)
	r.Tick(1)
	_ = r.Read(ing, 0) // hold the main port so nothing drains
	r.Add(enq, 3, +500)
	r.EndCycle()
	if r.Backlog() != 1 || r.PendingAbs() != 500 {
		t.Errorf("backlog=%d pending=%d, want 1/500", r.Backlog(), r.PendingAbs())
	}
	// Multiport registers report zero.
	mp := NewMultiPortRegister("y", 8, 2)
	if mp.Backlog() != 0 || mp.PendingAbs() != 0 {
		t.Error("multiport register claims aggregation state")
	}
}

func TestTableExactProperty(t *testing.T) {
	// Property: after installing entries for arbitrary keys, every
	// installed key hits its own action and uninstalled keys miss.
	f := func(keys []uint16) bool {
		tbl := NewTable("t", []MatchKind{Exact}, func(ctx *Context, dst []uint64) bool {
			dst[0] = ctx.GetMeta("k")
			return true
		})
		installed := map[uint64]uint64{}
		for i, k := range keys {
			key, val := uint64(k), uint64(i)+1
			installed[key] = val // duplicates replace, matching AddEntry
			if err := tbl.AddEntry(&Entry{
				Values: []uint64{key},
				Action: func(ctx *Context, params []uint64) { ctx.SetMeta("out", params[0]) },
				Params: []uint64{val},
			}); err != nil {
				return false
			}
		}
		ctx := newCtx(events.IngressPacket, 0)
		for key, want := range installed {
			ctx.SetMeta("k", key)
			ctx.SetMeta("out", 0)
			if !tbl.Apply(ctx) || ctx.GetMeta("out") != want {
				return false
			}
		}
		// A key outside uint16 space can never be installed.
		ctx.SetMeta("k", 1<<32)
		return !tbl.Apply(ctx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashAvalancheProperty(t *testing.T) {
	// Property: flipping one input bit changes the hash (no trivial
	// collisions between adjacent keys).
	f := func(x uint64, bit uint8) bool {
		y := x ^ (1 << (bit % 64))
		return Hash(0, x) != Hash(0, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
