// Package pisa provides the programmable parts of a PISA-style data
// plane: the per-slot execution context, match-action tables, actions,
// and externs (registers, counters, meters, hash units). P4-visible
// behaviour — whether written directly in Go or produced by the µP4
// compiler in internal/p4 — executes against these objects. The physical
// datapath that drives them (ports, clock cycles, traffic manager, event
// merger) lives in internal/core.
package pisa

import (
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/sim"
)

// PortDrop is the sentinel egress port meaning "drop the packet".
const PortDrop = -1

// Context is the execution context for one pipeline slot: the packet (if
// any), the data-plane event being handled, the parsed headers, and the
// forwarding decision under construction. A Context is reused across
// slots; Reset prepares it for the next one.
type Context struct {
	// Pkt is the packet occupying the slot; nil or Empty for pure event
	// metadata slots injected by the Event Merger.
	Pkt *packet.Packet

	// Ev is the data-plane event that triggered this execution.
	Ev events.Event

	// Now is the virtual time of the slot.
	Now sim.Time

	// Cycle is the pipeline clock cycle of the slot.
	Cycle uint64

	// Parsed holds the decoded headers (valid layers listed in Decoded).
	Parsed  packet.Parser
	Decoded []packet.LayerType

	// Flow is the packet's 5-tuple when FlowOK.
	Flow   packet.Flow
	FlowOK bool

	// Forwarding decision, owned by the ingress packet handler:
	// EgressPort (PortDrop to drop), Queue, and the PIFO Rank.
	EgressPort int
	Queue      int
	Rank       uint64

	// Recirculate requests the packet re-enter the pipeline after this
	// pass (raising a RecirculatedPacket event).
	Recirculate bool

	// Generated collects packets the handler asks the data plane to
	// emit (reports, probe replies, ...). Each is routed independently
	// on a later pass as a GeneratedPacket event.
	Generated []GenRequest

	// Raised collects user events raised by the handler.
	Raised []events.Event

	// Meta is scratch metadata shared between the handlers that run in
	// the same slot, keyed by field name. Allocated lazily.
	Meta map[string]uint64
}

// GenRequest asks the data plane to emit a packet on a port.
type GenRequest struct {
	Data []byte
	Port int // output port; PortDrop means "route by pipeline" is not supported for generated packets
}

// Reset clears the context for the next slot, retaining allocated storage.
func (c *Context) Reset(pkt *packet.Packet, ev events.Event, now sim.Time, cycle uint64) {
	c.Pkt = pkt
	c.Ev = ev
	c.Now = now
	c.Cycle = cycle
	c.Decoded = c.Decoded[:0]
	c.Flow = packet.Flow{}
	c.FlowOK = false
	c.EgressPort = PortDrop
	c.Queue = 0
	c.Rank = 0
	c.Recirculate = false
	c.Generated = c.Generated[:0]
	c.Raised = c.Raised[:0]
	for k := range c.Meta {
		delete(c.Meta, k)
	}
}

// Has reports whether the given layer was decoded for this slot's packet.
func (c *Context) Has(t packet.LayerType) bool {
	for _, lt := range c.Decoded {
		if lt == t {
			return true
		}
	}
	return false
}

// SetMeta stores a named metadata field.
func (c *Context) SetMeta(name string, v uint64) {
	if c.Meta == nil {
		c.Meta = make(map[string]uint64, 8)
	}
	c.Meta[name] = v
}

// GetMeta loads a named metadata field (zero when unset, like P4
// metadata initialized to zero).
func (c *Context) GetMeta(name string) uint64 { return c.Meta[name] }

// Emit queues a generated packet for transmission on the given port.
func (c *Context) Emit(data []byte, port int) {
	c.Generated = append(c.Generated, GenRequest{Data: data, Port: port})
}

// RaiseUser raises a user event with the given payload, to be handled by
// the UserEvent control on a later slot.
func (c *Context) RaiseUser(data uint64) {
	c.Raised = append(c.Raised, events.Event{
		Kind: events.UserEvent, When: c.Now, Data: data, Port: c.Ev.Port,
	})
}

// Drop marks the packet to be dropped.
func (c *Context) Drop() { c.EgressPort = PortDrop }

// SetTOS rewrites the packet's IPv4 TOS byte in place — the multi-bit
// ECN-style marking of paper §3 ("packets carrying multiple bits rather
// than just one, to communicate queue occupancy along the path"). It
// returns false for non-IP or empty packets.
func (c *Context) SetTOS(tos uint8) bool {
	if c.Pkt == nil || c.Pkt.Empty {
		return false
	}
	return packet.SetTOS(c.Pkt.Data, tos)
}

// TOS reads the packet's IPv4 TOS byte (0 for non-IP).
func (c *Context) TOS() uint8 {
	if c.Pkt == nil || c.Pkt.Empty {
		return 0
	}
	return packet.TOSOf(c.Pkt.Data)
}

// Trim truncates the packet to its headers (the NDP-style cut-payload
// operation), returning false when there is nothing to trim.
func (c *Context) Trim() bool {
	if c.Pkt == nil || c.Pkt.Empty {
		return false
	}
	trimmed, ok := packet.Trim(c.Pkt.Data)
	if ok {
		c.Pkt.Data = trimmed
	}
	return ok
}

// Control is a P4 control block bound to one or more event kinds: the
// unit of event-handling logic in the paper's programming model.
type Control interface {
	// Apply executes the control's logic for the current slot.
	Apply(ctx *Context)
}

// ControlFunc adapts a function to the Control interface.
type ControlFunc func(ctx *Context)

// Apply implements Control.
func (f ControlFunc) Apply(ctx *Context) { f(ctx) }
