package pisa

import (
	"fmt"
	"sort"

	"repro/internal/events"
)

// Program is a complete data-plane program: one Control per handled event
// kind plus the named tables and externs they use. It is the unit loaded
// into a switch (internal/core) and manipulated by the control plane
// (internal/controlplane).
//
// A program for a baseline PISA architecture binds only packet events;
// the architecture a program is loaded onto validates that it supports
// every bound event kind.
type Program struct {
	name      string
	handlers  [events.NumKinds]Control
	tables    map[string]*Table
	registers map[string]*SharedRegister
	regList   []*SharedRegister // insertion order, for deterministic iteration
	counters  map[string]*Counter
	meters    map[string]*Meter
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		name:      name,
		tables:    make(map[string]*Table),
		registers: make(map[string]*SharedRegister),
		counters:  make(map[string]*Counter),
		meters:    make(map[string]*Meter),
	}
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Handle binds a control to an event kind. Binding twice replaces the
// previous control.
func (p *Program) Handle(k events.Kind, c Control) *Program {
	p.handlers[k] = c
	return p
}

// HandleFunc binds a function to an event kind.
func (p *Program) HandleFunc(k events.Kind, f func(*Context)) *Program {
	return p.Handle(k, ControlFunc(f))
}

// Handler returns the control bound to kind k, or nil.
func (p *Program) Handler(k events.Kind) Control { return p.handlers[k] }

// Handles reports whether the program handles event kind k.
func (p *Program) Handles(k events.Kind) bool { return p.handlers[k] != nil }

// HandledKinds lists the event kinds the program binds, in kind order.
func (p *Program) HandledKinds() []events.Kind {
	var ks []events.Kind
	for k := 0; k < events.NumKinds; k++ {
		if p.handlers[k] != nil {
			ks = append(ks, events.Kind(k))
		}
	}
	return ks
}

// AddTable registers a named table. Duplicate names panic: they are
// program bugs.
func (p *Program) AddTable(t *Table) *Table {
	if _, dup := p.tables[t.Name()]; dup {
		panic(fmt.Sprintf("pisa: duplicate table %q in program %q", t.Name(), p.name))
	}
	p.tables[t.Name()] = t
	return t
}

// Table looks up a table by name (nil if absent).
func (p *Program) Table(name string) *Table { return p.tables[name] }

// AddRegister registers a named shared register.
func (p *Program) AddRegister(r *SharedRegister) *SharedRegister {
	if _, dup := p.registers[r.Name()]; dup {
		panic(fmt.Sprintf("pisa: duplicate register %q in program %q", r.Name(), p.name))
	}
	p.registers[r.Name()] = r
	p.regList = append(p.regList, r)
	return r
}

// Register looks up a shared register by name (nil if absent).
func (p *Program) Register(name string) *SharedRegister { return p.registers[name] }

// Registers lists the shared registers in insertion order.
func (p *Program) Registers() []*SharedRegister { return p.regList }

// AddCounter registers a named counter.
func (p *Program) AddCounter(c *Counter) *Counter {
	if _, dup := p.counters[c.Name()]; dup {
		panic(fmt.Sprintf("pisa: duplicate counter %q in program %q", c.Name(), p.name))
	}
	p.counters[c.Name()] = c
	return c
}

// Counter looks up a counter by name (nil if absent).
func (p *Program) Counter(name string) *Counter { return p.counters[name] }

// AddMeter registers a named meter.
func (p *Program) AddMeter(m *Meter) *Meter {
	if _, dup := p.meters[m.Name()]; dup {
		panic(fmt.Sprintf("pisa: duplicate meter %q in program %q", m.Name(), p.name))
	}
	p.meters[m.Name()] = m
	return m
}

// Meter looks up a meter by name (nil if absent).
func (p *Program) Meter(name string) *Meter { return p.meters[name] }

// RegisterNames lists registered shared registers, sorted.
func (p *Program) RegisterNames() []string {
	var names []string
	for n := range p.registers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableNames lists registered tables, sorted.
func (p *Program) TableNames() []string {
	var names []string
	for n := range p.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tick advances every shared register to the given pipeline cycle. The
// switch core calls it once per cycle before executing the slot.
func (p *Program) Tick(cycle uint64) {
	for _, r := range p.regList {
		r.Tick(cycle)
	}
}

// EndCycle lets every shared register drain aggregated updates with the
// cycle's leftover bandwidth. The switch core calls it after the slot.
func (p *Program) EndCycle() {
	for _, r := range p.regList {
		r.EndCycle()
	}
}

// Apply runs the handler for the context's event kind, if bound.
func (p *Program) Apply(ctx *Context) {
	if h := p.handlers[ctx.Ev.Kind]; h != nil {
		h.Apply(ctx)
	}
}
