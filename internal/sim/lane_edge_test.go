package sim

import (
	"fmt"
	"testing"
)

// TestLaneDisarmThenArmSameCycle covers Disarm immediately followed by
// ArmAt from inside an event callback at the same instant: the re-arm
// must take a fresh sequence number, so the lane orders after work
// scheduled between the disarm and the re-arm.
func TestLaneDisarmThenArmSameCycle(t *testing.T) {
	s := NewScheduler()
	var order []string
	l := s.NewLane(func() { order = append(order, "lane") })
	l.ArmAt(Microsecond)
	s.At(Microsecond, func() { order = append(order, "first") })
	s.At(0, func() {
		// Same cycle: cancel the pending firing, schedule a heap event,
		// re-arm for the same instant as before.
		l.Disarm()
		if l.Armed() {
			t.Error("lane still armed after Disarm")
		}
		s.At(Microsecond, func() { order = append(order, "second") })
		l.ArmAt(Microsecond)
	})
	s.RunAll()
	want := "[first second lane]"
	if got := fmt.Sprint(order); got != want {
		t.Errorf("order = %v, want %v (re-arm must draw a fresh seq)", got, want)
	}
}

// TestLaneRearmAtCurrentTimeFromCallback covers a lane callback
// re-arming its own lane at the *current* instant: the lane must fire
// again in the same cycle, after heap events the callback scheduled
// first (the re-arm's seq is newer), and the scheduler must not lose or
// duplicate the firing.
func TestLaneRearmAtCurrentTimeFromCallback(t *testing.T) {
	s := NewScheduler()
	var order []string
	fires := 0
	var l *Lane
	l = s.NewLane(func() {
		fires++
		order = append(order, fmt.Sprintf("lane%d", fires))
		if fires == 1 {
			s.At(s.Now(), func() { order = append(order, "heap") })
			l.ArmAt(s.Now()) // re-arm at the current instant
		}
	})
	l.ArmAt(Microsecond)
	s.RunAll()
	want := "[lane1 heap lane2]"
	if got := fmt.Sprint(order); got != want {
		t.Errorf("order = %v, want %v", got, want)
	}
	if now := s.Now(); now != Microsecond {
		t.Errorf("clock = %v, want 1us (same-instant re-arm must not advance time)", now)
	}
}

// TestLaneHeapInterleaveEqualTimestamps pins the full interleave at one
// instant: heap events and lane arms strictly by shared seq order, with
// a second lane competing. This is the ordering the switch pipeline
// relies on when a cycle lane, txDone events, and pipeline jobs all land
// on the same picosecond.
func TestLaneHeapInterleaveEqualTimestamps(t *testing.T) {
	s := NewScheduler()
	var order []string
	la := s.NewLane(func() { order = append(order, "laneA") })
	lb := s.NewLane(func() { order = append(order, "laneB") })
	s.At(Microsecond, func() { order = append(order, "heap1") }) // seq 0
	la.ArmAt(Microsecond)                                        // seq 1
	s.At(Microsecond, func() { order = append(order, "heap2") }) // seq 2
	lb.ArmAt(Microsecond)                                        // seq 3
	s.At(Microsecond, func() { order = append(order, "heap3") }) // seq 4
	s.RunAll()
	want := "[heap1 laneA heap2 laneB heap3]"
	if got := fmt.Sprint(order); got != want {
		t.Errorf("order = %v, want %v", got, want)
	}
}
