package sim

import "fmt"

// This file holds the scheduler-side half of the checkpoint/restore
// protocol (DESIGN.md §13). Closures in the event heap cannot be
// serialized, so a checkpoint never captures the heap itself. Instead,
// each component records the (at, seq) coordinates of its own pending
// events alongside its data state; on restore the simulation is rebuilt
// through the normal construction path, each component re-creates its
// pending events with RestoreAt/RestoreAtRunner (which replay the exact
// sequence numbers), and finally RestoreClock pins now/seq/fired.
// Because restore runs with the clock still at zero, re-created events
// can never trip the scheduled-in-the-past panic.

// When returns the (at, seq) coordinates of the pending event behind h,
// for checkpointing. ok is false once the event has fired or been
// cancelled.
func (h Handle) When() (at Time, seq uint64, ok bool) {
	if !h.Pending() {
		return 0, 0, false
	}
	return h.ev.at, h.ev.seq, true
}

// ClockState is the scheduler's restart-critical counters.
type ClockState struct {
	Now   Time
	Seq   uint64
	Fired uint64
}

// Clock returns the scheduler's counters for checkpointing.
func (s *Scheduler) Clock() ClockState {
	return ClockState{Now: s.now, Seq: s.seq, Fired: s.fired}
}

// RestoreClock pins the scheduler's counters from a checkpoint. Call it
// after every component has re-created its pending events: RestoreAt
// bypasses the shared seq counter, so the counter must be forced past
// every replayed sequence number in one final step.
func (s *Scheduler) RestoreClock(c ClockState) {
	s.now = c.Now
	s.seq = c.Seq
	s.fired = c.Fired
}

// RestoreAt re-creates a checkpointed pending event with its original
// (at, seq) coordinates. Unlike At it does not draw from (or advance)
// the scheduler's seq counter; the caller restores the counter with
// RestoreClock once all events are back.
func (s *Scheduler) RestoreAt(at Time, seq uint64, fn Action) Handle {
	ev := s.restoreEvent(at, seq)
	ev.fn = fn
	return Handle{ev: ev, gen: ev.gen}
}

// RestoreAtRunner is RestoreAt for pooled callback objects.
func (s *Scheduler) RestoreAtRunner(at Time, seq uint64, r Runner) Handle {
	ev := s.restoreEvent(at, seq)
	ev.runner = r
	return Handle{ev: ev, gen: ev.gen}
}

func (s *Scheduler) restoreEvent(at Time, seq uint64) *schedEvent {
	ev := s.alloc()
	ev.at = at
	ev.seq = seq
	s.heapPush(ev)
	return ev
}

// DropFired removes every pending ordinary event strictly ordered before
// (at, seq): the coordinates of the checkpoint event whose callback took
// the snapshot. A restored run re-executes the original construction
// path, which re-schedules setup events (link transitions, pause
// windows, unrolled fault storms) with the same deterministic (at, seq)
// coordinates they had originally; the ones ordered before the
// checkpoint had already fired and must not fire again. Call it after
// construction and component restores, before RestoreClock. It returns
// the number of events discarded.
func (s *Scheduler) DropFired(at Time, seq uint64) int {
	var dropped []*schedEvent
	kept := s.queue[:0]
	for _, ev := range s.queue {
		if ev.at < at || (ev.at == at && ev.seq < seq) {
			dropped = append(dropped, ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
	for i := range s.queue {
		s.queue[i].index = i
	}
	for i := len(s.queue)/2 - 1; i >= 0; i-- {
		s.heapSiftDown(i)
	}
	for _, ev := range dropped {
		s.release(ev)
	}
	return len(dropped)
}

// RestoreWire re-creates a checkpointed wire-band event. Wire events are
// keyed engine-independently, so replaying (at, k1, k2) reproduces the
// original firing order exactly.
func (s *Scheduler) RestoreWire(at Time, k1, k2 uint64, fn Action) {
	s.wire.push(wireEvent{at: at, k1: k1, k2: k2, fn: fn})
}

// RestoreWireRunner is RestoreWire for pooled callback objects.
func (s *Scheduler) RestoreWireRunner(at Time, k1, k2 uint64, r Runner) {
	s.wire.push(wireEvent{at: at, k1: k1, k2: k2, runner: r})
}

// EachWire visits every pending wire-band event, for checkpointing. The
// visit order is the heap's internal layout, not firing order; callers
// that need determinism across encode/restore get it anyway because the
// band is rebuilt as a heap on restore.
func (s *Scheduler) EachWire(visit func(at Time, k1, k2 uint64, fn Action, r Runner)) {
	for i := range s.wire {
		w := &s.wire[i]
		visit(w.at, w.k1, w.k2, w.fn, w.runner)
	}
}

// RestoreArm arms the lane with explicit (at, seq) coordinates from a
// checkpoint, without drawing from the scheduler's seq counter.
func (l *Lane) RestoreArm(at Time, seq uint64) {
	l.ArmExact(at, seq)
}

// ArmedAt returns the lane's pending (at, seq), for checkpointing.
func (l *Lane) ArmedAt() (at Time, seq uint64, ok bool) {
	if !l.armed {
		return 0, 0, false
	}
	return l.at, l.seq, true
}

// TickerState is a Ticker's checkpointable state: whether it is stopped
// and, if a firing is pending, its coordinates.
type TickerState struct {
	Stopped bool
	Pending bool
	At      Time
	Seq     uint64
}

// State returns the ticker's checkpointable state.
func (t *Ticker) State() TickerState {
	st := TickerState{Stopped: t.stopped}
	if at, seq, ok := t.h.When(); ok {
		st.Pending, st.At, st.Seq = true, at, seq
	}
	return st
}

// RestoreState re-arms the ticker from a checkpointed state. The ticker
// must have been rebuilt by the same Every call that originally created
// it (so its period and callback match); RestoreState cancels the
// freshly armed firing and replays the checkpointed one.
func (t *Ticker) RestoreState(st TickerState) {
	t.h.Cancel()
	t.stopped = st.Stopped
	if st.Pending {
		t.h = t.s.RestoreAt(st.At, st.Seq, t.tick)
	}
}

// PartitionState is a partition's checkpointable state: one clock per
// domain (captured at a barrier, when no domain goroutine is running)
// plus the window counter. The sim package stays serialization-free;
// internal/checkpoint callers encode the struct themselves.
type PartitionState struct {
	Domains int
	Clocks  []ClockState
	Windows uint64
}

// State captures the partition's clocks. Call it only at a barrier (or
// before/after Run): reading domain clocks mid-window races with the
// domain goroutines.
func (p *Partition) State() PartitionState {
	st := PartitionState{Domains: len(p.scheds), Windows: p.windows.Load()}
	for _, s := range p.scheds {
		st.Clocks = append(st.Clocks, s.Clock())
	}
	return st
}

// RestoreState pins every domain clock from a checkpoint. A snapshot is
// only meaningful for the domain decomposition it was taken under — the
// per-domain event sequence numbers are domain-local — so restoring into
// a partition with a different domain count is refused.
func (p *Partition) RestoreState(st PartitionState) error {
	if st.Domains != len(p.scheds) {
		return fmt.Errorf("sim: checkpoint was taken with %d partition domains, this run has %d; "+
			"restore requires the same -domains value", st.Domains, len(p.scheds))
	}
	if len(st.Clocks) != len(p.scheds) {
		return fmt.Errorf("sim: partition checkpoint has %d clocks for %d domains", len(st.Clocks), st.Domains)
	}
	for i, s := range p.scheds {
		s.RestoreClock(st.Clocks[i])
	}
	p.windows.Store(st.Windows)
	return nil
}

// SlimPartitionState is the partition state an observer firing inside a
// window can capture without racing the domain workers: the immutable
// domain count and the atomic window counter. evsim's single-switch
// partition uses it — all simulation events live in domain 0, whose
// clock already travels with the scheduler checkpoint section, and the
// other domains never hold events, so their clocks carry no behaviour.
type SlimPartitionState struct {
	Domains int
	Windows uint64
}

// SlimState captures the slim partition state; safe to call mid-window.
func (p *Partition) SlimState() SlimPartitionState {
	return SlimPartitionState{Domains: len(p.scheds), Windows: p.windows.Load()}
}

// RestoreSlimState restores the window counter, refusing a checkpoint
// taken under a different domain decomposition (the same refusal as
// RestoreState: per-domain sequence numbers are domain-local).
func (p *Partition) RestoreSlimState(st SlimPartitionState) error {
	if st.Domains != len(p.scheds) {
		return fmt.Errorf("sim: checkpoint was taken with %d partition domains, this run has %d; "+
			"restore requires the same -domains value", st.Domains, len(p.scheds))
	}
	p.windows.Store(st.Windows)
	return nil
}

// State returns the RNG's internal xoshiro256** state, for
// checkpointing mid-stream positions.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores an RNG to a previously captured stream position.
func (r *RNG) SetState(s [4]uint64) { r.s = s }
