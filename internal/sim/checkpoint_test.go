package sim

import (
	"strings"
	"testing"
)

// TestHandleWhen pins the checkpoint coordinate accessor: pending events
// expose (at, seq), fired and cancelled ones do not.
func TestHandleWhen(t *testing.T) {
	s := NewScheduler()
	h := s.At(3*Microsecond, func() {})
	at, seq, ok := h.When()
	if !ok || at != 3*Microsecond || seq != 0 {
		t.Fatalf("When() = (%v, %d, %v), want (3us, 0, true)", at, seq, ok)
	}
	h2 := s.At(4*Microsecond, func() {})
	h2.Cancel()
	if _, _, ok := h2.When(); ok {
		t.Error("cancelled handle still reports pending coordinates")
	}
	s.Run(5 * Microsecond)
	if _, _, ok := h.When(); ok {
		t.Error("fired handle still reports pending coordinates")
	}
}

// TestRestoreAtOrdering verifies events re-created out of order via
// RestoreAt fire in (at, seq) order with the original coordinates, and
// that RestoreClock pins the counters so new events order after them.
func TestRestoreAtOrdering(t *testing.T) {
	// Original run: three events drawn from the counter.
	src := NewScheduler()
	var coords [][2]uint64
	for i := 0; i < 3; i++ {
		h := src.At(Time(3-i)*Microsecond, func() {}) // at 3us,2us,1us -> seqs 0,1,2
		at, seq, _ := h.When()
		coords = append(coords, [2]uint64{uint64(at), seq})
	}

	// Restored run: re-create them shuffled, then pin the clock.
	dst := NewScheduler()
	var order []uint64
	for _, i := range []int{1, 0, 2} {
		seq := coords[i][1]
		dst.RestoreAt(Time(coords[i][0]), seq, func() { order = append(order, seq) })
	}
	dst.RestoreClock(src.Clock())
	dst.At(4*Microsecond, func() { order = append(order, 99) })
	dst.Run(5 * Microsecond)
	want := []uint64{2, 1, 0, 99} // 1us(seq2), 2us(seq1), 3us(seq0), then the new event
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order %v, want %v", order, want)
		}
	}
}

// TestDropFired verifies the restore-side cut: every pending event
// strictly ordered before the checkpoint event's (at, seq) is discarded,
// everything at or after it survives.
func TestDropFired(t *testing.T) {
	s := NewScheduler()
	var fired []int
	for i := 1; i <= 5; i++ {
		i := i
		s.At(Time(i)*Microsecond, func() { fired = append(fired, i) })
	}
	// Cut at the coordinates of the 3us event (seq 2): 1us and 2us were
	// "already executed" by the checkpointed run.
	if n := s.DropFired(3*Microsecond, 2); n != 2 {
		t.Fatalf("DropFired removed %d events, want 2", n)
	}
	s.Run(10 * Microsecond)
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 4 || fired[2] != 5 {
		t.Fatalf("fired %v, want [3 4 5]", fired)
	}
}

// TestDropFiredSameInstant verifies the seq tie-break: at the checkpoint
// instant, only events with a smaller sequence number are dropped.
func TestDropFiredSameInstant(t *testing.T) {
	s := NewScheduler()
	var fired []uint64
	for i := 0; i < 4; i++ {
		h := s.At(Microsecond, nil)
		_, seq, _ := h.When()
		h.ev.fn = func() { fired = append(fired, seq) }
	}
	if n := s.DropFired(Microsecond, 2); n != 2 {
		t.Fatalf("DropFired removed %d events, want 2", n)
	}
	s.Run(2 * Microsecond)
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("fired seqs %v, want [2 3]", fired)
	}
}

// TestTickerRestoreState verifies a restored ticker continues the
// original cadence: same firing times, same count.
func TestTickerRestoreState(t *testing.T) {
	fireTimes := func(pause bool) []Time {
		s := NewScheduler()
		var times []Time
		tk := s.Every(3*Microsecond, func() { times = append(times, s.Now()) })
		if !pause {
			s.Run(20 * Microsecond)
			return times
		}
		s.Run(10 * Microsecond)
		st := tk.State()
		clk := s.Clock()

		// Rebuild: same construction path (Every draws the same seq),
		// then restore ticker and clock.
		s2 := NewScheduler()
		times2 := append([]Time(nil), times...)
		tk2 := s2.Every(3*Microsecond, func() { times2 = append(times2, s2.Now()) })
		tk2.RestoreState(st)
		s2.RestoreClock(clk)
		s2.Run(20 * Microsecond)
		return times2
	}
	want := fireTimes(false)
	got := fireTimes(true)
	if len(want) != len(got) {
		t.Fatalf("restored ticker fired %d times, uninterrupted %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("firing %d at %v, uninterrupted at %v", i, got[i], want[i])
		}
	}
}

// TestRNGStateRoundTrip verifies State/SetState resumes the stream
// mid-position.
func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	var want [5]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	r2 := NewRNG(7)
	r2.SetState(st)
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("draw %d after SetState = %d, want %d", i, got, want[i])
		}
	}
}

// TestPartitionStateRoundTrip verifies domain clocks and the window
// counter survive a State/RestoreState cycle.
func TestPartitionStateRoundTrip(t *testing.T) {
	p := NewPartition(2)
	p.SetLookahead(Microsecond)
	p.Sched(0).At(2*Microsecond, func() {})
	p.Sched(1).At(3*Microsecond, func() {})
	p.Run(5 * Microsecond)
	st := p.State()

	q := NewPartition(2)
	if err := q.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if q.Windows() != p.Windows() {
		t.Errorf("windows = %d, want %d", q.Windows(), p.Windows())
	}
	for i := 0; i < 2; i++ {
		if q.Sched(i).Now() != p.Sched(i).Now() {
			t.Errorf("domain %d clock = %v, want %v", i, q.Sched(i).Now(), p.Sched(i).Now())
		}
		if q.Sched(i).Clock() != p.Sched(i).Clock() {
			t.Errorf("domain %d counters = %+v, want %+v", i, q.Sched(i).Clock(), p.Sched(i).Clock())
		}
	}
}

// TestPartitionRestoreDomainCountRefused pins the satellite requirement:
// a checkpoint taken under one domain decomposition must refuse to load
// into another (per-domain sequence numbers are domain-local).
func TestPartitionRestoreDomainCountRefused(t *testing.T) {
	p := NewPartition(2)
	st := p.State()
	q := NewPartition(3)
	err := q.RestoreState(st)
	if err == nil {
		t.Fatal("RestoreState accepted a 2-domain snapshot into a 3-domain partition")
	}
	if !strings.Contains(err.Error(), "-domains") {
		t.Errorf("error %q does not tell the operator to match -domains", err)
	}
}

// TestPartitionUnboundedLookahead covers the zero-cross-domain-links
// case: with no cross-domain latency to respect the lookahead is
// unbounded (Forever), and the whole run executes in a single
// conservative window plus the final inclusive pass.
func TestPartitionUnboundedLookahead(t *testing.T) {
	p := NewPartition(2)
	p.SetLookahead(Forever) // what netsim computes when no link crosses domains
	var fired [2]int
	for d := 0; d < 2; d++ {
		d := d
		for i := 1; i <= 3; i++ {
			p.Sched(d).At(Time(i)*Microsecond, func() { fired[d]++ })
		}
	}
	p.Run(10 * Microsecond)
	if fired[0] != 3 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [3 3]", fired)
	}
	if p.Windows() != 2 {
		t.Errorf("windows = %d, want 2 (one unbounded window + the inclusive pass)", p.Windows())
	}
}
