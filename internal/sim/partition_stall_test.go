package sim

import (
	"testing"
	"time"

	"repro/internal/telemetry/self"
)

// TestPartitionBarrierAccounting pins the partition's self-metric
// accounting against a hand-computed window schedule. Two domains,
// lookahead 25, domain 0 holding events at t = 0, 10, ..., 90, Run(100):
// the adaptive protocol sees domain 1 idle at the first barrier, so
// domain 0 is bounded only by its own round trip (2×lookahead = 50) and
// batches events 0..40 into one window, then 50..90 into a second —
// where the fixed-width protocol needed four rounds — followed by the
// final inclusive pass. That is 3 windows (counted once in
// Partition.Windows and once per domain in the self-metric counters), 4
// barriers (before the first window, between windows, at the loop's
// exit scan, after the final pass), and two windows whose edge beat the
// classic min(next)+lookahead bound. Domain 1 finishes its windows
// instantly while domain 0 grinds through its (deliberately slowed)
// events, so its stall counter must come back non-zero — wall-clock
// time that never touches simulation state. Run under -race this also
// proves the accounting in the worker goroutines is clean.
func TestPartitionBarrierAccounting(t *testing.T) {
	self.Reset()
	self.Enable()
	defer func() {
		self.Disable()
		self.Reset()
	}()

	p := NewPartition(2)
	p.SetLookahead(25)
	fired := 0
	for i := 0; i < 10; i++ {
		p.Sched(0).At(Time(i*10), func() {
			fired++
			time.Sleep(time.Millisecond) // magnify domain 1's barrier stall
		})
	}
	n := p.Run(100)

	if n != 10 || fired != 10 {
		t.Fatalf("ran %d events (callback saw %d), want 10", n, fired)
	}
	const wantWindows = 3
	if got := p.Windows(); got != wantWindows {
		t.Errorf("Partition.Windows() = %d, want %d", got, wantWindows)
	}
	if got := self.PartBarriers.Value(); got != 4 {
		t.Errorf("self.PartBarriers = %d, want 4", got)
	}
	if got := self.PartBatchedWindows.Value(); got != 2 {
		t.Errorf("self.PartBatchedWindows = %d, want 2 (domain 0's edge should batch to its round trip)", got)
	}
	if got := self.Domains(); got != 2 {
		t.Errorf("self.Domains() = %d, want 2", got)
	}
	for d := 0; d < 2; d++ {
		if got := self.DomainWindows(d).Value(); got != wantWindows {
			t.Errorf("domain %d window count = %d, want %d", d, got, wantWindows)
		}
	}
	// Domain 1 finishes each window instantly and waits ~10ms for domain
	// 0 before the final pass; anything non-zero proves the stall clock
	// ran, the 1ms floor proves it measured real waiting.
	if got := self.DomainStallNS(1).Value(); got < uint64(time.Millisecond.Nanoseconds()) {
		t.Errorf("domain 1 barrier stall = %dns, want >= 1ms of accumulated waiting", got)
	}
	if got := self.SimNowPS.Value(); got != 100 {
		t.Errorf("self.SimNowPS = %d, want 100", got)
	}
}

// TestPartitionBatchingBounded pins the other side of the adaptive
// protocol: when every domain holds nearby work, edges collapse to the
// classic conservative width and batching must NOT engage. Two domains,
// lookahead 10, both holding events every 10 units: each round's edge is
// exactly min(next)+lookahead, so the window count matches the
// fixed-width protocol's.
func TestPartitionBatchingBounded(t *testing.T) {
	self.Reset()
	self.Enable()
	defer func() {
		self.Disable()
		self.Reset()
	}()

	p := NewPartition(2)
	p.SetLookahead(10)
	var fired [2]int // one slot per domain: no cross-goroutine writes
	for i := 0; i < 10; i++ {
		at := Time(i * 10)
		p.Sched(0).At(at, func() { fired[0]++ })
		p.Sched(1).At(at, func() { fired[1]++ })
	}
	p.Run(100)
	if fired[0] != 10 || fired[1] != 10 {
		t.Fatalf("fired = %v, want 10 per domain", fired)
	}
	// Rounds: edges advance by exactly one lookahead per barrier —
	// windows at edges 10, 20, ..., 100 (exclusive) plus the final
	// inclusive pass = 11, exactly the fixed-width schedule.
	if got := p.Windows(); got != 11 {
		t.Errorf("Partition.Windows() = %d, want 11 (no batching when both domains stay busy)", got)
	}
	if got := self.PartBatchedWindows.Value(); got != 0 {
		t.Errorf("self.PartBatchedWindows = %d, want 0", got)
	}
}
