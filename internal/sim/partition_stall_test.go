package sim

import (
	"testing"
	"time"

	"repro/internal/telemetry/self"
)

// TestPartitionBarrierAccounting pins the partition's self-metric
// accounting against a hand-computed window schedule. Two domains,
// lookahead 25, domain 0 holding events at t = 0, 10, ..., 90, Run(100):
// the window protocol opens exclusive windows at edges 25 (events 0, 10,
// 20), 55 (30, 40, 50), 85 (60, 70, 80), 100 (90 — lookahead reaches
// past the horizon so the edge clamps to until), then the final inclusive
// window at 100. That is 5 windows, counted once in Partition.Windows
// and once per domain in the self-metric counters. Domain 1 is empty, so
// while domain 0 grinds through its (deliberately slowed) events, domain
// 1 sits at the barrier — its stall counter must come back non-zero,
// wall-clock time that never touches simulation state. Run under -race
// this also proves the accounting in the worker goroutines is clean.
func TestPartitionBarrierAccounting(t *testing.T) {
	self.Reset()
	self.Enable()
	defer func() {
		self.Disable()
		self.Reset()
	}()

	p := NewPartition(2)
	p.SetLookahead(25)
	fired := 0
	for i := 0; i < 10; i++ {
		p.Sched(0).At(Time(i*10), func() {
			fired++
			time.Sleep(time.Millisecond) // magnify domain 1's barrier stall
		})
	}
	n := p.Run(100)

	if n != 10 || fired != 10 {
		t.Fatalf("ran %d events (callback saw %d), want 10", n, fired)
	}
	const wantWindows = 5
	if got := p.Windows(); got != wantWindows {
		t.Errorf("Partition.Windows() = %d, want %d", got, wantWindows)
	}
	if got := self.Domains(); got != 2 {
		t.Errorf("self.Domains() = %d, want 2", got)
	}
	for d := 0; d < 2; d++ {
		if got := self.DomainWindows(d).Value(); got != wantWindows {
			t.Errorf("domain %d window count = %d, want %d", d, got, wantWindows)
		}
	}
	// Domain 1 finishes each window instantly and waits ~1ms+ for domain
	// 0 at every barrier after the first; anything non-zero proves the
	// stall clock ran, the 1ms floor proves it measured real waiting.
	if got := self.DomainStallNS(1).Value(); got < uint64(time.Millisecond.Nanoseconds()) {
		t.Errorf("domain 1 barrier stall = %dns, want >= 1ms of accumulated waiting", got)
	}
	if got := self.SimNowPS.Value(); got != 100 {
		t.Errorf("self.SimNowPS = %d, want 100", got)
	}
}
