package sim

import "container/heap"

// Action is a callback executed when a scheduled event fires.
type Action func()

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid.
type Handle struct {
	ev *schedEvent
}

// Pending reports whether the event behind h is still waiting to fire
// (not yet fired and not cancelled).
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.done && !h.ev.cancelled }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

type schedEvent struct {
	at        Time
	seq       uint64 // insertion order; breaks ties deterministically
	fn        Action
	index     int // heap index
	cancelled bool
	done      bool
}

type eventHeap []*schedEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*schedEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in the order they were scheduled. Scheduler is
// not safe for concurrent use; a simulation is a single logical thread.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// NewScheduler returns a Scheduler with the clock at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events waiting to fire (including
// cancelled events not yet discarded).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at the absolute time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (s *Scheduler) At(at Time, fn Action) Handle {
	if at < s.now {
		panic("sim: event scheduled in the past")
	}
	ev := &schedEvent{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn Action) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// Every schedules fn to run periodically with the given period, starting
// one period from now. The returned Ticker can be stopped. fn observes the
// scheduler time via Now.
func (s *Scheduler) Every(period Time, fn Action) *Ticker {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker repeatedly fires an action at a fixed period until stopped.
type Ticker struct {
	s       *Scheduler
	period  Time
	fn      Action
	h       Handle
	stopped bool
}

func (t *Ticker) arm() {
	t.h = t.s.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// Period returns the ticker's firing period.
func (t *Ticker) Period() Time { return t.period }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*schedEvent)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.done = true
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or the clock would pass
// until. The clock is left at the later of its current value and until
// (unless the queue drained earlier, in which case it rests at the last
// fired event). It returns the number of events executed.
func (s *Scheduler) Run(until Time) uint64 {
	start := s.fired
	s.halted = false
	for !s.halted {
		if len(s.queue) == 0 {
			break
		}
		// Peek.
		next := s.queue[0]
		if next.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
	return s.fired - start
}

// RunAll executes events until none remain. It returns the number of
// events executed. Use with care: self-rescheduling processes (tickers)
// never drain; prefer Run with a horizon.
func (s *Scheduler) RunAll() uint64 {
	start := s.fired
	s.halted = false
	for !s.halted && s.Step() {
	}
	return s.fired - start
}

// Halt stops Run/RunAll after the currently executing event returns.
// It is intended to be called from inside event callbacks.
func (s *Scheduler) Halt() { s.halted = true }
