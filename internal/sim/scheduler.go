package sim

import "repro/internal/telemetry/self"

// Action is a callback executed when a scheduled event fires.
type Action func()

// Runner is implemented by pooled callback objects. AtRunner/AfterRunner
// accept a Runner instead of a closure so hot paths that would otherwise
// allocate a capturing closure per call can schedule a long-lived object
// (typically drawn from a free list) with no per-call allocation.
type Runner interface {
	Run()
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid. Handles stay safe after the event fires: the
// scheduler recycles event records through a free list, and each reuse
// bumps a generation counter that stale handles fail to match.
type Handle struct {
	ev  *schedEvent
	gen uint64
}

// Pending reports whether the event behind h is still waiting to fire
// (not yet fired and not cancelled).
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.cancelled
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.cancelled = true
	}
}

type schedEvent struct {
	at        Time
	seq       uint64 // insertion order; breaks ties deterministically
	gen       uint64 // bumped on every free-list recycle; validates Handles
	fn        Action
	runner    Runner
	index     int // heap index
	cancelled bool
}

// wireEvent is an entry in the scheduler's wire band: an externally-keyed
// event (a frame arriving off a link) ordered by (at, k1, k2) rather than
// by insertion sequence. The key is engine-independent — it is derived
// from the link and the sender's per-direction frame counter, not from
// when this scheduler happened to learn about the frame — which is what
// lets a partitioned run schedule arrivals at barrier-drain time and
// still fire them in exactly the order the single-scheduler run would.
type wireEvent struct {
	at     Time
	k1, k2 uint64
	fn     Action
	runner Runner
}

// wireHeap is a binary min-heap of wireEvents ordered by (at, k1, k2),
// sifted manually: container/heap would box every push through an
// interface and the wire band sits on the per-frame hot path.
type wireHeap []wireEvent

func (h wireHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].k1 != h[j].k1 {
		return h[i].k1 < h[j].k1
	}
	return h[i].k2 < h[j].k2
}

func (h *wireHeap) push(w wireEvent) {
	*h = append(*h, w)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *wireHeap) pop() wireEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = wireEvent{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// eventHeap is a binary min-heap of ordinary events ordered by (at, seq),
// sifted manually like wireHeap: container/heap dispatches Less/Swap
// through an interface on every comparison, and the event heap is the
// single hottest structure in the engine. Each event's index field is
// kept current on every move — Handle cancellation and checkpoint
// restore (internal/sim/checkpoint.go) rely on it.
type eventHeap []*schedEvent

// heapLess orders events by (at, seq).
func heapLess(a, b *schedEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapSiftUp restores the heap property upward from index i, holding the
// moving event in a register and shifting parents down (one store per
// level instead of a full swap).
func (s *Scheduler) heapSiftUp(i int) {
	q := s.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !heapLess(ev, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

// heapSiftDown restores the heap property downward from index i.
func (s *Scheduler) heapSiftDown(i int) {
	q := s.queue
	n := len(q)
	ev := q[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && heapLess(q[r], q[l]) {
			min = r
		}
		if !heapLess(q[min], ev) {
			break
		}
		q[i] = q[min]
		q[i].index = i
		i = min
	}
	q[i] = ev
	ev.index = i
}

// heapPush appends ev and sifts it into place.
func (s *Scheduler) heapPush(ev *schedEvent) {
	ev.index = len(s.queue)
	s.queue = append(s.queue, ev)
	s.heapSiftUp(ev.index)
}

// heapPopHead removes and returns the heap head.
func (s *Scheduler) heapPopHead() *schedEvent {
	q := s.queue
	ev := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		s.heapSiftDown(0)
	}
	return ev
}

// Scheduler is a deterministic discrete-event scheduler. Events scheduled
// for the same instant fire in the order they were scheduled. Scheduler is
// not safe for concurrent use; a simulation is a single logical thread.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	wire   wireHeap
	lanes  []*Lane
	free   []*schedEvent
	fired  uint64
	halted bool

	// laneArms/auxArms count ArmAt and ArmExact calls; together with
	// fired they feed the wall-clock self-metrics plane. They are plain
	// fields bumped on the single-threaded hot path and published as
	// deltas only at Run/RunBefore/RunAll exit (publishSelf), so the
	// per-event cost of observability is zero — not even an atomic.
	laneArms, auxArms uint64
	// pub* are the values already published to the self plane; the next
	// publishSelf adds only the difference.
	pubFired, pubLaneArms, pubAuxArms uint64

	// runLimit/runStrict record the horizon of the Run/RunBefore call in
	// progress (Forever/false outside any run). Event callbacks that can
	// batch future work — the switch's drain fast-forward — consult
	// RunBound so they never compute past the instant the current run
	// would have stopped at, which keeps partitioned windowed execution
	// byte-identical to single-threaded runs.
	runLimit  Time
	runStrict bool

	// laneBest caches the earliest armed lane so the per-step candidate
	// scan is O(1) instead of a linear walk over every lane. laneScan
	// marks the cache stale: arming, disarming, firing, or restoring a
	// lane that could change the minimum sets it, and the next nextLane
	// call rescans. When laneScan is false, laneBest is the earliest
	// armed lane (nil = none armed).
	laneBest *Lane
	laneScan bool
}

// NewScheduler returns a Scheduler with the clock at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{runLimit: Forever}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events waiting to fire (including
// cancelled events not yet discarded and armed lanes).
func (s *Scheduler) Pending() int {
	n := len(s.queue) + len(s.wire)
	for _, l := range s.lanes {
		if l.armed {
			n++
		}
	}
	return n
}

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// alloc draws an event record from the free list, or allocates one.
func (s *Scheduler) alloc() *schedEvent {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free = s.free[:n-1]
		return ev
	}
	return &schedEvent{}
}

// release returns a fired or cancelled event record to the free list,
// invalidating outstanding Handles via the generation counter.
func (s *Scheduler) release(ev *schedEvent) {
	ev.gen++
	ev.fn = nil
	ev.runner = nil
	ev.cancelled = false
	s.free = append(s.free, ev)
}

// At schedules fn to run at the absolute time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (s *Scheduler) At(at Time, fn Action) Handle {
	ev := s.schedule(at)
	ev.fn = fn
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn Action) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// AtRunner schedules r.Run to execute at the absolute time at. It is the
// allocation-free variant of At for pooled callback objects.
func (s *Scheduler) AtRunner(at Time, r Runner) Handle {
	ev := s.schedule(at)
	ev.runner = r
	return Handle{ev: ev, gen: ev.gen}
}

// AfterRunner schedules r.Run to execute d after the current time.
func (s *Scheduler) AfterRunner(d Time, r Runner) Handle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.AtRunner(s.now+d, r)
}

func (s *Scheduler) schedule(at Time) *schedEvent {
	if at < s.now {
		panic("sim: event scheduled in the past")
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.seq
	s.seq++
	s.heapPush(ev)
	return ev
}

// AtWire schedules fn on the wire band: at equal timestamps wire events
// fire before ordinary events and lanes, ordered among themselves by the
// caller-supplied key (k1, then k2). The key must be engine-independent
// (netsim uses k1 = directed-link id and k2 = the sender's frame counter
// on that direction) so that every partitioning of a topology fires the
// same arrivals in the same order. Wire events cannot be cancelled.
func (s *Scheduler) AtWire(at Time, k1, k2 uint64, fn Action) {
	if at < s.now {
		panic("sim: wire event scheduled in the past")
	}
	s.wire.push(wireEvent{at: at, k1: k1, k2: k2, fn: fn})
}

// AtWireRunner is the allocation-free variant of AtWire for pooled
// callback objects, mirroring AtRunner/At. Ordering semantics are
// identical.
func (s *Scheduler) AtWireRunner(at Time, k1, k2 uint64, r Runner) {
	if at < s.now {
		panic("sim: wire event scheduled in the past")
	}
	s.wire.push(wireEvent{at: at, k1: k1, k2: k2, runner: r})
}

// Every schedules fn to run periodically with the given period, starting
// one period from now. The returned Ticker can be stopped. fn observes the
// scheduler time via Now.
func (s *Scheduler) Every(period Time, fn Action) *Ticker {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.h = t.s.After(t.period, t.tick)
		}
	}
	t.h = s.After(period, t.tick)
	return t
}

// Ticker repeatedly fires an action at a fixed period until stopped.
type Ticker struct {
	s       *Scheduler
	period  Time
	fn      Action
	tick    Action // created once; re-arming does not allocate
	h       Handle
	stopped bool
}

// Stop cancels future firings. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// Period returns the ticker's firing period.
func (t *Ticker) Period() Time { return t.period }

// Lane is a pre-registered periodic-work fast path: one pending
// occurrence of a fixed callback, re-armed by the callback itself. A
// self-rearming driver (the switch's pipeline cycle) that went through
// At would pay a heap push, a heap pop, and a closure allocation per
// firing; a Lane is re-armed with two field writes and fires from a
// direct comparison against the heap head.
//
// Arming draws a sequence number from the same counter as At, so a lane
// firing orders against heap events exactly as the equivalent At call
// would: earlier-armed work fires first at the same instant.
type Lane struct {
	s     *Scheduler
	fn    Action
	at    Time
	seq   uint64
	armed bool
}

// NewLane registers fn as a lane on the scheduler. The callback is fixed
// for the lane's lifetime; a scheduler supports a small number of lanes
// (one per simulated pipeline), scanned linearly when picking the next
// event.
func (s *Scheduler) NewLane(fn Action) *Lane {
	l := &Lane{s: s, fn: fn}
	s.lanes = append(s.lanes, l)
	return l
}

// ArmAt schedules the lane's next firing at the absolute time at.
// Re-arming an armed lane moves its firing time. Arming in the past
// panics, like At.
func (l *Lane) ArmAt(at Time) {
	s := l.s
	if at < s.now {
		panic("sim: lane armed in the past")
	}
	if !s.laneScan {
		// Keep the earliest-lane cache coherent: a fresh arm always draws
		// the highest seq so far, so at equal times the cached best keeps
		// winning; re-arming the cached best to a later instant is the
		// only case that forces a rescan.
		switch b := s.laneBest; {
		case b == nil:
			s.laneBest = l
		case b == l:
			if at > l.at {
				s.laneScan = true
			}
		case at < b.at:
			s.laneBest = l
		}
	}
	l.at = at
	l.seq = s.seq
	s.seq++
	l.armed = true
	s.laneArms++
}

// ArmExact arms the lane at explicit (at, seq) coordinates instead of
// drawing a fresh sequence number. The caller owns work that already has
// a position in the global event order — a checkpointed arm being
// restored, or a conveyor entry that drew its seq (NextSeq) when it was
// scheduled — and the lane must fire in exactly that position. No
// past-check is applied: checkpoint restore arms lanes before the clock
// is restored.
func (l *Lane) ArmExact(at Time, seq uint64) {
	s := l.s
	if !s.laneScan {
		// Same cache-coherence cases as ArmAt, but the explicit seq can be
		// older than other arms', so ties compare the full (at, seq) pair.
		switch b := s.laneBest; {
		case b == nil:
			s.laneBest = l
		case b == l:
			if at > l.at || (at == l.at && seq > l.seq) {
				s.laneScan = true
			}
		case at < b.at || (at == b.at && seq < b.seq):
			s.laneBest = l
		}
	}
	l.at = at
	l.seq = seq
	l.armed = true
	s.auxArms++
}

// Armed reports whether the lane has a pending firing.
func (l *Lane) Armed() bool { return l.armed }

// Disarm cancels the pending firing, if any.
func (l *Lane) Disarm() {
	if l.armed && l.s.laneBest == l {
		l.s.laneScan = true
	}
	l.armed = false
}

// nextLane returns the earliest armed lane, or nil.
func (s *Scheduler) nextLane() *Lane {
	if !s.laneScan {
		return s.laneBest
	}
	var best *Lane
	for _, l := range s.lanes {
		if !l.armed {
			continue
		}
		if best == nil || l.at < best.at || (l.at == best.at && l.seq < best.seq) {
			best = l
		}
	}
	s.laneBest = best
	s.laneScan = false
	return best
}

// peekHeap discards cancelled events from the heap head and returns the
// next live event without removing it, or nil.
func (s *Scheduler) peekHeap() *schedEvent {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if !ev.cancelled {
			return ev
		}
		s.heapPopHead()
		s.release(ev)
	}
	return nil
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. At equal timestamps the wire band fires first; ordinary
// events and lanes then interleave by shared sequence number. It returns
// false when no events remain.
func (s *Scheduler) Step() bool { return s.stepBounded(Forever, false) }

// stepBounded is the fused core of Step/Run/RunBefore: one candidate scan
// (heap head, earliest lane, wire head) picks the winner, checks it
// against the bound, and fires it. Run's old loop scanned every candidate
// twice per event — once in NextAt to test the horizon, once in Step to
// fire — and the scan is the engine's hottest code. It returns false
// without firing when nothing is pending or the earliest event lies past
// the bound (at > limit, or at == limit when strict).
func (s *Scheduler) stepBounded(limit Time, strict bool) bool {
	ev := s.peekHeap()
	lane := s.nextLane()
	// Earliest ordinary candidate (heap event vs lane), resolved by the
	// shared seq counter at equal times.
	evWins := ev != nil && (lane == nil || ev.at < lane.at || (ev.at == lane.at && ev.seq < lane.seq))
	ordinaryAt := Forever
	if evWins {
		ordinaryAt = ev.at
	} else if lane != nil {
		ordinaryAt = lane.at
	}
	if len(s.wire) > 0 && s.wire[0].at <= ordinaryAt {
		at := s.wire[0].at
		if at > limit || (strict && at == limit) {
			return false
		}
		w := s.wire.pop()
		s.now = at
		s.fired++
		if w.runner != nil {
			w.runner.Run()
		} else {
			w.fn()
		}
		return true
	}
	switch {
	case ev == nil && lane == nil:
		return false
	case evWins:
		if ev.at > limit || (strict && ev.at == limit) {
			return false
		}
		s.heapPopHead()
		s.now = ev.at
		fn, runner := ev.fn, ev.runner
		s.release(ev)
		s.fired++
		if runner != nil {
			runner.Run()
		} else {
			fn()
		}
	default:
		if lane.at > limit || (strict && lane.at == limit) {
			return false
		}
		lane.armed = false
		s.laneScan = true
		s.now = lane.at
		s.fired++
		lane.fn()
	}
	return true
}

// AdvanceTo moves the clock forward to at without firing anything. It is
// the batching primitive for in-callback burst loops (the switch's burst
// slot loop): a callback that has proven — via NextAt and RunBound — that
// nothing is pending in (Now, at] may advance the clock itself and do the
// work that a chain of self-scheduled events would have done one wakeup
// at a time, with Now() correct at every step. Advancing past a pending
// event would reorder causality, exactly like scheduling in the past, so
// the same discipline applies: callers check NextAt first. Advancing
// backwards panics.
func (s *Scheduler) AdvanceTo(at Time) {
	if at < s.now {
		panic("sim: AdvanceTo into the past")
	}
	s.now = at
}

// NextSeq draws and consumes the next sequence number from the shared
// insertion counter without scheduling anything. It is the conveyor
// primitive: a component that manages its own future-work FIFO (the
// switch's pipeline conveyor) stamps each entry with the seq the
// equivalent After call would have drawn, so the entry keeps an exact
// position in the global event order without ever touching the heap.
func (s *Scheduler) NextSeq() uint64 {
	n := s.seq
	s.seq++
	return n
}

// NextBefore reports whether any pending event — wire band, heap, or
// armed lane — precedes the coordinate (at, seq): wire events by time
// alone (the wire band fires before ordinary work at equal instants),
// ordinary events and lanes by exact (at, seq). A conveyor owner calls
// it to prove its next entry is precisely what the scheduler would fire
// next, and may then run the entry inline. A lane armed exactly at
// (at, seq) — the conveyor's own — does not precede it.
func (s *Scheduler) NextBefore(at Time, seq uint64) bool {
	if len(s.wire) > 0 && s.wire[0].at <= at {
		return true
	}
	if ev := s.peekHeap(); ev != nil && (ev.at < at || (ev.at == at && ev.seq < seq)) {
		return true
	}
	l := s.nextLane()
	return l != nil && (l.at < at || (l.at == at && l.seq < seq))
}

// NextAt returns the time of the earliest pending event and whether one
// exists.
func (s *Scheduler) NextAt() (Time, bool) {
	at := Forever
	ok := false
	if ev := s.peekHeap(); ev != nil {
		at, ok = ev.at, true
	}
	if lane := s.nextLane(); lane != nil && lane.at < at {
		at, ok = lane.at, true
	}
	if len(s.wire) > 0 && s.wire[0].at < at {
		at, ok = s.wire[0].at, true
	}
	return at, ok
}

// publishSelf pushes the delta of fired/arm counts accumulated since the
// last publish into the wall-clock self-metrics plane. Called at run
// exits only; a no-op when the plane is off. Checkpoint restore can move
// fired backwards — a shrunken counter resets the baseline rather than
// publishing a wrapped delta.
func (s *Scheduler) publishSelf() {
	if !self.On() {
		s.pubFired, s.pubLaneArms, s.pubAuxArms = s.fired, s.laneArms, s.auxArms
		return
	}
	if s.fired > s.pubFired {
		self.SchedDispatch.Add(s.fired - s.pubFired)
	}
	if s.laneArms > s.pubLaneArms {
		self.SchedLaneArms.Add(s.laneArms - s.pubLaneArms)
	}
	if s.auxArms > s.pubAuxArms {
		self.SchedAuxArms.Add(s.auxArms - s.pubAuxArms)
	}
	s.pubFired, s.pubLaneArms, s.pubAuxArms = s.fired, s.laneArms, s.auxArms
}

// Run executes events until the queue drains or the clock would pass
// until. The clock is left at the later of its current value and until
// (unless the queue drained earlier, in which case it rests at the last
// fired event). It returns the number of events executed.
func (s *Scheduler) Run(until Time) uint64 {
	start := s.fired
	s.halted = false
	s.runLimit, s.runStrict = until, false
	for !s.halted && s.stepBounded(until, false) {
	}
	s.runLimit, s.runStrict = Forever, false
	if s.now < until {
		s.now = until
	}
	s.publishSelf()
	return s.fired - start
}

// RunBefore executes events strictly before limit and returns the number
// executed. Unlike Run it leaves the clock at the last fired event (or
// untouched when nothing fired): it is the windowed-execution primitive
// for Partition, where a domain must not observe — or claim to have
// reached — any instant at or past the window edge, because a frame from
// another domain may still arrive exactly at limit.
func (s *Scheduler) RunBefore(limit Time) uint64 {
	start := s.fired
	s.halted = false
	s.runLimit, s.runStrict = limit, true
	for !s.halted && s.stepBounded(limit, true) {
	}
	s.runLimit, s.runStrict = Forever, false
	s.publishSelf()
	return s.fired - start
}

// RunBound returns the horizon of the run in progress: the limit time and
// whether it is strict (RunBefore — events at the limit must not fire) or
// inclusive (Run). Outside any run it returns (Forever, false).
func (s *Scheduler) RunBound() (limit Time, strict bool) {
	return s.runLimit, s.runStrict
}

// RunAll executes events until none remain. It returns the number of
// events executed. Use with care: self-rescheduling processes (tickers)
// never drain; prefer Run with a horizon.
func (s *Scheduler) RunAll() uint64 {
	start := s.fired
	s.halted = false
	for !s.halted && s.Step() {
	}
	s.publishSelf()
	return s.fired - start
}

// Halt stops Run/RunAll after the currently executing event returns.
// It is intended to be called from inside event callbacks.
func (s *Scheduler) Halt() { s.halted = true }
