package sim

import "testing"

// TestAdvanceToMovesClock pins the burst-batching primitive: AdvanceTo
// moves Now forward without firing anything, and events scheduled after
// the advanced-to instant still fire in order with the clock correct.
func TestAdvanceToMovesClock(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.At(100, func() { fired = append(fired, s.Now()) })

	s.AdvanceTo(40)
	if s.Now() != 40 {
		t.Fatalf("Now = %d after AdvanceTo(40), want 40", s.Now())
	}
	if len(fired) != 0 {
		t.Fatalf("AdvanceTo fired %d events, want 0", len(fired))
	}
	s.AdvanceTo(40) // advancing to the current instant is a no-op
	s.Run(200)
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("fired = %v, want [100]", fired)
	}

	// Scheduling relative to an advanced clock uses the new origin.
	s.AdvanceTo(300)
	var at Time
	s.After(10, func() { at = s.Now() })
	s.Run(400)
	if at != 310 {
		t.Fatalf("After(10) from advanced clock fired at %d, want 310", at)
	}
}

// TestAdvanceToPastPanics pins the causality guard: moving the clock
// backwards is the same class of bug as scheduling in the past.
func TestAdvanceToPastPanics(t *testing.T) {
	s := NewScheduler()
	s.AdvanceTo(50)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	s.AdvanceTo(49)
}

// TestAdvanceToLaneInterleave pins that a callback advancing the clock
// between lane firings leaves lane/heap interleaving untouched: work
// armed before the advance still fires at its armed instant.
func TestAdvanceToLaneInterleave(t *testing.T) {
	s := NewScheduler()
	var order []string
	lane := s.NewLane(func() { order = append(order, "lane") })
	s.At(10, func() {
		lane.ArmAt(30)
		s.AdvanceTo(20) // burst-style in-callback advance, short of the lane
		order = append(order, "event")
	})
	s.At(30, func() { order = append(order, "heap30") })
	s.Run(100)
	// The lane at 30 was armed before the heap event at 30 was scheduled…
	// but the heap event drew its seq first (At ran at construction), so
	// heap30 precedes the lane.
	if len(order) != 3 || order[0] != "event" || order[1] != "heap30" || order[2] != "lane" {
		t.Fatalf("order = %v, want [event heap30 lane]", order)
	}
}
