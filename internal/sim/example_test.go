package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A scheduler runs callbacks in virtual time: nothing here sleeps, and
// runs are exactly reproducible.
func ExampleScheduler() {
	sched := sim.NewScheduler()
	sched.At(10*sim.Microsecond, func() {
		fmt.Println("first at", sched.Now())
	})
	ticker := sched.Every(20*sim.Microsecond, func() {
		fmt.Println("tick at", sched.Now())
	})
	sched.Run(50 * sim.Microsecond)
	ticker.Stop()
	// Output:
	// first at 10us
	// tick at 20us
	// tick at 40us
}

// Rates convert directly to wire timings.
func ExampleRate_ByteTime() {
	fmt.Println((10 * sim.Gbps).ByteTime(1500))
	fmt.Println((10 * sim.Gbps).BitTime())
	// Output:
	// 1.2us
	// 100ps
}

// The RNG is seeded and deterministic: the same seed yields the same
// stream on every run and platform.
func ExampleRNG() {
	rng := sim.NewRNG(42)
	fmt.Println(rng.Intn(100), rng.Intn(100), rng.Intn(100))
	rng.Seed(42)
	fmt.Println(rng.Intn(100), rng.Intn(100), rng.Intn(100))
	// Output:
	// 42 2 9
	// 42 2 9
}
