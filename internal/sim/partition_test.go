package sim

import (
	"fmt"
	"testing"
)

// ring is a token-passing model over N domains, the partition analogue
// of netsim's link topology: a token arriving at domain d at time t is
// traced, spawns same-instant local work (a heap event and a lane, so
// band ordering is exercised), and is forwarded to domain (d+1)%N with
// one link latency of delay. Cross-domain forwarding goes through
// mailboxes drained at barriers via AtWire with engine-independent keys
// (source id, per-source frame counter), exactly like netsim.
type ring struct {
	p       *Partition
	domains int
	latency Time
	per     [][]string // per-domain trace; single writer each
	mail    [][]ringFrame
	seq     []uint64
	lane    []*Lane
}

type ringFrame struct {
	at     Time
	k1, k2 uint64
	dst    int
	token  int
}

func newRing(domains int) *ring {
	m := &ring{
		p:       NewPartition(domains),
		domains: domains,
		latency: 5 * Microsecond,
		per:     make([][]string, domains),
		mail:    make([][]ringFrame, domains),
		seq:     make([]uint64, domains),
		lane:    make([]*Lane, domains),
	}
	m.p.SetLookahead(m.latency)
	m.p.OnBarrier(m.drain)
	for d := 0; d < domains; d++ {
		d := d
		m.lane[d] = m.p.Sched(d).NewLane(func() {
			m.trace(d, "lane", m.p.Sched(d).Now())
		})
	}
	return m
}

func (m *ring) trace(d int, what string, now Time) {
	m.per[d] = append(m.per[d], fmt.Sprintf("%d %s d%d", now, what, d))
}

func (m *ring) drain() {
	for d := range m.mail {
		for _, f := range m.mail[d] {
			f := f
			m.p.Sched(f.dst).AtWire(f.at, f.k1, f.k2, func() { m.arrive(f.dst, f.token) })
		}
		m.mail[d] = m.mail[d][:0]
	}
}

func (m *ring) send(src, dst, token int, sendAt Time) {
	f := ringFrame{
		at:    sendAt + m.latency,
		k1:    uint64(src),
		k2:    m.seq[src],
		dst:   dst,
		token: token,
	}
	m.seq[src]++
	m.mail[dst] = append(m.mail[dst], f)
}

func (m *ring) arrive(d, token int) {
	s := m.p.Sched(d)
	now := s.Now()
	m.trace(d, fmt.Sprintf("tok%d", token), now)
	s.At(now, func() { m.trace(d, "local", now) })
	m.lane[d].ArmAt(now)
	if token < 40 {
		m.send(d, (d+1)%m.domains, token+1, now)
	}
}

func (m *ring) seed() {
	for i := 0; i < 3; i++ {
		m.send(0, i%m.domains, 1, Time(i)*Microsecond)
	}
}

func (m *ring) collect() []string {
	var out []string
	for d := 0; d < m.domains; d++ {
		out = append(out, fmt.Sprintf("-- domain %d --", d))
		out = append(out, m.per[d]...)
	}
	return out
}

// runRingParallel drives the ring through Partition.Run (domain
// goroutines + barrier windows).
func runRingParallel(domains int, until Time) []string {
	m := newRing(domains)
	m.seed()
	m.p.Run(until)
	return m.collect()
}

// runRingSerial drives the identical ring with a hand-rolled serial
// window loop on the calling goroutine — the reference executor. Any
// divergence from runRingParallel is a determinism bug in Partition.
func runRingSerial(domains int, until Time) []string {
	m := newRing(domains)
	m.seed()
	for {
		m.drain()
		s := Forever
		for _, d := range m.p.scheds {
			if at, ok := d.NextAt(); ok && at < s {
				s = at
			}
		}
		if s >= until {
			break
		}
		edge := until
		if m.latency < until-s {
			edge = s + m.latency
		}
		for _, d := range m.p.scheds {
			d.RunBefore(edge)
		}
	}
	for _, d := range m.p.scheds {
		d.Run(until)
	}
	m.drain()
	return m.collect()
}

func diffTraces(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: traces diverge at line %d:\nwant %q\ngot  %q", label, i, want[i], got[i])
		}
	}
}

// TestPartitionMatchesSerial verifies Partition.Run's concurrent window
// execution produces exactly the per-domain event sequences of a serial
// reference executor, for several domain counts. Run under -race this is
// also the partition's concurrency-safety check.
func TestPartitionMatchesSerial(t *testing.T) {
	for _, domains := range []int{2, 3, 4, 7} {
		want := runRingSerial(domains, 600*Microsecond)
		got := runRingParallel(domains, 600*Microsecond)
		diffTraces(t, fmt.Sprintf("domains=%d", domains), want, got)
	}
}

// TestPartitionRepeatable verifies back-to-back parallel runs agree
// line-for-line (no scheduling nondeterminism leaks into the model).
func TestPartitionRepeatable(t *testing.T) {
	first := runRingParallel(4, 600*Microsecond)
	for i := 0; i < 3; i++ {
		diffTraces(t, "repeat", first, runRingParallel(4, 600*Microsecond))
	}
}

// TestPartitionClocksSettle verifies every domain clock rests exactly at
// the horizon after Run, like Scheduler.Run.
func TestPartitionClocksSettle(t *testing.T) {
	p := NewPartition(3)
	p.SetLookahead(Microsecond)
	fired := 0
	p.Sched(1).At(2*Microsecond, func() { fired++ })
	p.Run(10 * Microsecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	for i := 0; i < 3; i++ {
		if now := p.Sched(i).Now(); now != 10*Microsecond {
			t.Errorf("domain %d clock = %v, want 10us", i, now)
		}
	}
}

// TestPartitionSingleDomain verifies a 1-domain partition needs no
// lookahead and still runs its barrier hooks (before and after).
func TestPartitionSingleDomain(t *testing.T) {
	p := NewPartition(1)
	barriers := 0
	p.OnBarrier(func() { barriers++ })
	ran := false
	p.Sched(0).At(Microsecond, func() { ran = true })
	p.Run(2 * Microsecond)
	if !ran {
		t.Error("event did not run")
	}
	if barriers != 2 {
		t.Errorf("barrier hooks ran %d times, want 2", barriers)
	}
}

// TestPartitionZeroLookaheadPanics verifies the multi-domain guard.
func TestPartitionZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero lookahead")
		}
	}()
	NewPartition(2).Run(Microsecond)
}

// TestPartitionEventAtHorizon verifies events at exactly the horizon
// execute (the final inclusive pass), matching Scheduler.Run semantics.
func TestPartitionEventAtHorizon(t *testing.T) {
	p := NewPartition(2)
	p.SetLookahead(Microsecond)
	var fired [2]bool // one slot per domain: no cross-goroutine writes
	p.Sched(0).At(5*Microsecond, func() { fired[0] = true })
	p.Sched(1).At(5*Microsecond, func() { fired[1] = true })
	p.Run(5 * Microsecond)
	if !fired[0] || !fired[1] {
		t.Fatalf("fired = %v, want both", fired)
	}
}

// TestAtWireOrdering pins the wire band's contract: at one instant, wire
// events fire before heap events and lanes regardless of scheduling
// order, and among themselves by (k1, k2).
func TestAtWireOrdering(t *testing.T) {
	s := NewScheduler()
	var got []string
	s.At(Microsecond, func() { got = append(got, "heap") })
	lane := s.NewLane(func() { got = append(got, "lane") })
	s.At(0, func() { lane.ArmAt(Microsecond) })
	s.AtWire(Microsecond, 2, 0, func() { got = append(got, "wire-k1=2") })
	s.AtWire(Microsecond, 1, 1, func() { got = append(got, "wire-k2=1") })
	s.AtWire(Microsecond, 1, 0, func() { got = append(got, "wire-k2=0") })
	s.Run(Microsecond)
	want := []string{"wire-k2=0", "wire-k2=1", "wire-k1=2", "heap", "lane"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestAtWirePastPanics mirrors the At contract for the wire band.
func TestAtWirePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(Microsecond, func() {})
	s.Run(Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling wire event in the past")
		}
	}()
	s.AtWire(0, 0, 0, func() {})
}

// wireRunner records its firing order for TestAtWireRunnerOrdering.
type wireRunner struct {
	tag string
	got *[]string
}

func (r *wireRunner) Run() { *r.got = append(*r.got, r.tag) }

// TestAtWireRunnerOrdering pins the pooled wire variant to the same
// contract as AtWire, including interleaving between Runner-backed and
// closure-backed wire events at one instant.
func TestAtWireRunnerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []string
	s.At(Microsecond, func() { got = append(got, "heap") })
	s.AtWireRunner(Microsecond, 2, 0, &wireRunner{"runner-k1=2", &got})
	s.AtWire(Microsecond, 1, 1, func() { got = append(got, "fn-k2=1") })
	s.AtWireRunner(Microsecond, 1, 0, &wireRunner{"runner-k2=0", &got})
	s.Run(Microsecond)
	want := []string{"runner-k2=0", "fn-k2=1", "runner-k1=2", "heap"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestRunBound verifies the active run horizon is visible to callbacks —
// inclusive under Run, strict under RunBefore — and resets to Forever
// outside any run. The drain fast-forward uses this to stop batching at
// exactly the cycle the slow path's lane would have stopped re-arming.
func TestRunBound(t *testing.T) {
	s := NewScheduler()
	if limit, strict := s.RunBound(); limit != Forever || strict {
		t.Fatalf("idle RunBound = (%v, %v), want (Forever, false)", limit, strict)
	}
	var checked int
	s.At(Microsecond, func() {
		if limit, strict := s.RunBound(); limit != 3*Microsecond || strict {
			t.Errorf("inside Run: RunBound = (%v, %v), want (3us, false)", limit, strict)
		}
		checked++
	})
	s.Run(3 * Microsecond)
	s.At(4*Microsecond, func() {
		if limit, strict := s.RunBound(); limit != 5*Microsecond || !strict {
			t.Errorf("inside RunBefore: RunBound = (%v, %v), want (5us, true)", limit, strict)
		}
		checked++
	})
	s.RunBefore(5 * Microsecond)
	if limit, strict := s.RunBound(); limit != Forever || strict {
		t.Errorf("after runs: RunBound = (%v, %v), want (Forever, false)", limit, strict)
	}
	if checked != 2 {
		t.Fatalf("checked %d callbacks, want 2", checked)
	}
}

// TestRunBeforeStrict verifies RunBefore excludes the limit and leaves
// the clock at the last fired event rather than advancing it.
func TestRunBeforeStrict(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.At(Microsecond, func() { got = append(got, s.Now()) })
	s.At(2*Microsecond, func() { got = append(got, s.Now()) })
	n := s.RunBefore(2 * Microsecond)
	if n != 1 || len(got) != 1 || got[0] != Microsecond {
		t.Fatalf("RunBefore fired %d events (%v), want just t=1us", n, got)
	}
	if s.Now() != Microsecond {
		t.Errorf("clock = %v, want 1us (not advanced to limit)", s.Now())
	}
	s.Run(2 * Microsecond)
	if len(got) != 2 {
		t.Errorf("follow-up Run fired %d events total, want 2", len(got))
	}
}
