package sim

import (
	"fmt"
	"math"
	"sort"
)

// Stats accumulates scalar samples and reports summary statistics.
// It keeps all samples, so percentiles are exact; simulations here record
// at most a few million samples per metric.
type Stats struct {
	samples []float64
	sum     float64
	min     float64
	max     float64
	sorted  bool
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one sample.
func (s *Stats) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.sorted = false
}

// AddTime records a Time sample in picoseconds.
func (s *Stats) AddTime(t Time) { s.Add(float64(t)) }

// N returns the number of samples recorded.
func (s *Stats) N() int { return len(s.samples) }

// Sum returns the sum of all samples.
func (s *Stats) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Stats) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample, or 0 when empty.
func (s *Stats) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 when empty.
func (s *Stats) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.max
}

// Stddev returns the population standard deviation, or 0 when empty.
func (s *Stats) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank, or 0 when empty.
func (s *Stats) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return s.samples[rank]
}

// String summarizes the distribution for logs and experiment tables.
func (s *Stats) String() string {
	if s.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}
