package sim

import (
	"fmt"
	"math"
	"sort"
)

// Stats accumulates scalar samples and reports summary statistics.
// It keeps all samples, so percentiles are exact; simulations here record
// at most a few million samples per metric. Samples stay in insertion
// order — Percentile sorts a cached copy, so readers iterating Samples
// mid-measurement never observe a reordering.
type Stats struct {
	samples []float64
	sorted  []float64 // cached sorted copy, valid while len == len(samples)
	sum     float64
	min     float64
	max     float64
}

// NewStats returns an empty accumulator.
func NewStats() *Stats {
	return &Stats{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one sample.
func (s *Stats) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// Reset empties the accumulator, keeping its capacity.
func (s *Stats) Reset() {
	s.samples = s.samples[:0]
	s.sorted = s.sorted[:0]
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// AddAll merges every sample of o into s (o is unchanged). Histogram and
// percentile export paths use it to fold per-trial accumulators into one
// distribution.
func (s *Stats) AddAll(o *Stats) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	s.samples = append(s.samples, o.samples...)
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Samples returns the recorded samples in insertion order. The slice is
// the accumulator's own storage: read-only, valid until the next Add.
func (s *Stats) Samples() []float64 { return s.samples }

// AddTime records a Time sample in picoseconds.
func (s *Stats) AddTime(t Time) { s.Add(float64(t)) }

// N returns the number of samples recorded.
func (s *Stats) N() int { return len(s.samples) }

// Sum returns the sum of all samples.
func (s *Stats) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Stats) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample, or 0 when empty.
func (s *Stats) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample, or 0 when empty.
func (s *Stats) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.max
}

// Stddev returns the population standard deviation, or 0 when empty.
func (s *Stats) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank, or 0 when empty. It sorts a cached copy of the samples,
// leaving the insertion-order view (Samples) untouched; the copy is
// rebuilt only after new samples arrive.
func (s *Stats) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if len(s.sorted) != n {
		s.sorted = append(s.sorted[:0], s.samples...)
		sort.Float64s(s.sorted)
	}
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 100 {
		return s.sorted[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return s.sorted[rank]
}

// String summarizes the distribution for logs and experiment tables.
func (s *Stats) String() string {
	if s.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}
