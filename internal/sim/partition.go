package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry/self"
)

// Partition is a conservative (Chandy–Misra style) parallel driver for a
// set of Schedulers. Each member scheduler is a domain: a group of
// simulated components that interact with the other domains only through
// messages carrying at least Lookahead of virtual latency. Run advances
// every domain in bounded windows — each domain executes on its own
// goroutine up to the window edge, then all domains synchronize at a
// barrier where cross-domain messages are exchanged (the OnBarrier
// hooks; netsim drains its link mailboxes there).
//
// The window edge is min(nextEvent)+Lookahead: no event a domain executes
// inside the window can cause an effect in another domain before the
// edge, so every domain sees all of its inputs for the window before the
// window starts. Combined with the scheduler wire band (arrivals ordered
// by engine-independent keys, before same-time local events), a
// partitioned run executes exactly the event sequence the single-
// scheduler run would — byte-identical output at any domain count.
type Partition struct {
	scheds    []*Scheduler
	lookahead Time
	barriers  []func()
	windows   uint64 // conservative windows executed (telemetry)
}

// NewPartition builds a partition of n fresh schedulers (n >= 1).
func NewPartition(n int) *Partition {
	if n < 1 {
		panic("sim: partition needs at least one domain")
	}
	p := &Partition{scheds: make([]*Scheduler, n)}
	for i := range p.scheds {
		p.scheds[i] = NewScheduler()
	}
	return p
}

// Domains returns the number of domains.
func (p *Partition) Domains() int { return len(p.scheds) }

// Sched returns domain i's scheduler.
func (p *Partition) Sched(i int) *Scheduler { return p.scheds[i] }

// Index returns the domain owning s, or -1.
func (p *Partition) Index(s *Scheduler) int {
	for i, d := range p.scheds {
		if d == s {
			return i
		}
	}
	return -1
}

// SetLookahead sets the window width: the minimum virtual latency of any
// cross-domain interaction. With more than one domain it must be
// positive before Run (netsim computes it as the minimum cross-domain
// link latency).
func (p *Partition) SetLookahead(d Time) { p.lookahead = d }

// Lookahead returns the configured window width.
func (p *Partition) Lookahead() Time { return p.lookahead }

// OnBarrier registers fn to run single-threaded at every synchronization
// point (before the first window, between windows, and after the last),
// while no domain goroutine is executing. Exchange hooks deliver
// cross-domain messages here by scheduling them on the destination
// domain, typically via AtWire.
func (p *Partition) OnBarrier(fn func()) { p.barriers = append(p.barriers, fn) }

func (p *Partition) barrier() {
	for _, fn := range p.barriers {
		fn()
	}
}

// windowCmd tells a domain worker to advance to edge: strictly before it
// when incl is false, through it (clock settling at edge) when true.
type windowCmd struct {
	edge Time
	incl bool
}

// workers spawns one persistent goroutine per domain for the duration of a
// Run call. A run executes thousands of conservative windows; spawning a
// goroutine per domain per window (the previous scheme) allocated a stack
// and scheduler slot each time, dominating the malloc profile of
// partitioned runs. The workers block on their command channel between
// windows and exit when it closes.
func (p *Partition) workers(fired *atomic.Uint64, winWG *sync.WaitGroup) []chan windowCmd {
	cmds := make([]chan windowCmd, len(p.scheds))
	for i, s := range p.scheds {
		ch := make(chan windowCmd, 1)
		cmds[i] = ch
		go func(domain int, s *Scheduler, ch chan windowCmd) {
			// Barrier-stall accounting: a domain that finishes its window
			// early sits blocked on ch until every other domain reaches the
			// barrier and the coordinator issues the next window. The time
			// between winWG.Done and the next command arriving is this
			// domain's stall — the load-imbalance number the ROADMAP's
			// -domains scaling item needs. Wall-clock only; never observed
			// by simulation code.
			var idleSince time.Time
			for c := range ch {
				if obs := self.On(); obs && !idleSince.IsZero() {
					self.DomainStallNS(domain).Add(uint64(time.Since(idleSince).Nanoseconds()))
				}
				if c.incl {
					fired.Add(s.Run(c.edge))
				} else {
					fired.Add(s.RunBefore(c.edge))
				}
				if self.On() {
					self.DomainWindows(domain).Inc()
					idleSince = time.Now()
				} else {
					idleSince = time.Time{}
				}
				winWG.Done()
			}
		}(i, s, ch)
	}
	return cmds
}

// Run advances all domains to until, leaving every domain clock at until
// (mirroring Scheduler.Run). It returns the number of events executed
// across all domains.
//
// Window protocol: at each iteration the barrier hooks run (delivering
// any cross-domain messages produced by the previous window), then
// S = min over domains of the next pending event time. The window edge
// is E = min(S+lookahead, until): events executed in [S, E) can only
// affect other domains at or after S+lookahead >= E, so the window is
// causally closed. The loop ends when S >= until; a final inclusive pass
// executes events at exactly until (their cross-domain effects land at
// or after until+lookahead and stay mailboxed for a later Run, exactly
// as the single-scheduler run would leave them pending).
func (p *Partition) Run(until Time) uint64 {
	if len(p.scheds) == 1 {
		p.barrier()
		p.windows++
		n := p.scheds[0].Run(until)
		p.barrier()
		if self.On() {
			self.SetDomains(1)
			self.DomainWindows(0).Inc()
			self.SimNowPS.Set(int64(until))
		}
		return n
	}
	if p.lookahead <= 0 {
		panic("sim: partition with multiple domains needs a positive lookahead")
	}
	if self.On() {
		self.SetDomains(len(p.scheds))
	}
	var fired atomic.Uint64
	var winWG sync.WaitGroup
	cmds := p.workers(&fired, &winWG)
	defer func() {
		for _, ch := range cmds {
			close(ch)
		}
	}()
	// runWindow broadcasts one window to every worker and waits for all of
	// them; the WaitGroup is re-armed only after Wait returns, so reuse
	// across windows is race-free.
	runWindow := func(edge Time, incl bool) {
		winWG.Add(len(cmds))
		for _, ch := range cmds {
			ch <- windowCmd{edge, incl}
		}
		winWG.Wait()
	}
	for {
		p.barrier()
		s := Forever
		for _, d := range p.scheds {
			if at, ok := d.NextAt(); ok && at < s {
				s = at
			}
		}
		if s >= until {
			break
		}
		edge := until
		if p.lookahead < until-s {
			edge = s + p.lookahead
		}
		p.windows++
		runWindow(edge, false)
		if self.On() {
			self.SimNowPS.Set(int64(edge))
		}
	}
	p.windows++
	runWindow(until, true)
	p.barrier()
	if self.On() {
		self.SimNowPS.Set(int64(until))
	}
	return fired.Load()
}

// Windows returns the number of conservative windows executed across all
// Run calls (1 per Run in the single-domain fast path). With per-domain
// Fired() counts it describes the parallel run's shape for telemetry;
// window counts depend on the domain count and lookahead, so they belong
// in run metadata, not in exports compared across domain counts.
func (p *Partition) Windows() uint64 { return p.windows }
