package sim

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/telemetry/self"
)

// Partition is a conservative (Chandy–Misra style) parallel driver for a
// set of Schedulers. Each member scheduler is a domain: a group of
// simulated components that interact with the other domains only through
// messages carrying at least Lookahead of virtual latency. Run advances
// every domain in bounded windows — each domain executes on its own
// goroutine up to its window edge, then all domains synchronize at a
// barrier where cross-domain messages are exchanged (the OnBarrier
// hooks; netsim drains its link mailboxes there).
//
// Window edges are adaptive (DESIGN.md §16). A domain's edge is the
// earliest instant any pending work anywhere could deliver an effect to
// it: min over domains o of next(o) + dist(o→d), where next(o) is o's
// earliest pending event at the barrier and dist is the all-pairs
// shortest path over minimum cross-domain latencies (the per-pair matrix
// installed with SetCrossLatency, or the global Lookahead for every pair
// when no matrix is installed). The closure is what makes the bound
// sound: an effect may chain through intermediate domains — o wakes q,
// q's reply reaches d — and each crossing costs at least the pair's
// matrix entry, while intra-domain processing is conservatively free.
// The o = d term uses the shortest cycle through d: a domain's own sends
// can come back to it as replies, so a busy domain surrounded by idle
// ones may run ahead exactly one round trip, not to the horizon. When
// the other domains are idle or far away, one window batches what the
// fixed-width protocol would have split across many barrier rounds;
// when they are close, the edge degenerates to the classic
// min(next)+Lookahead, never below it (every path crosses at least one
// link, so dist ≥ Lookahead everywhere). Combined with the scheduler
// wire band (arrivals ordered by engine-independent keys, before
// same-time local events), a partitioned run executes exactly the event
// sequence the single-scheduler run would — byte-identical output at
// any domain count.
type Partition struct {
	scheds    []*Scheduler
	lookahead Time
	// cross[o][d] is the minimum latency of a direct o→d cross-domain
	// interaction; Forever = the pair cannot interact directly. nil means
	// no matrix was installed and every pair is assumed reachable at
	// lookahead (the conservative default for callers that exchange
	// messages through their own OnBarrier hooks).
	cross [][]Time
	// dist is the shortest-path closure of cross (recomputed when the
	// matrix changes); cyc[d] is the shortest cycle through d — the
	// minimum round trip a domain's own sends need to come back to it.
	dist      [][]Time
	cyc       []Time
	distDirty bool
	// classic forces fixed-width conservative windows (min(next)+lookahead
	// for every domain) instead of adaptive per-domain edges. The batched
	// and classic protocols execute the identical event sequence — classic
	// mode exists as the differential oracle for that claim and as the
	// baseline for barrier-reduction measurements.
	classic  bool
	barriers []func()
	// barrierCount counts synchronization points across Run calls
	// (coordinator-only writes; read between Runs).
	barrierCount uint64
	// windows counts coordinator window rounds. Atomic so mid-run
	// observers (an evsim checkpoint event firing inside a window) can
	// read it while the coordinator loops.
	windows atomic.Uint64

	next  []Time // scratch: per-domain earliest pending event at a barrier
	edges []Time // scratch: per-domain window edge
}

// NewPartition builds a partition of n fresh schedulers (n >= 1).
func NewPartition(n int) *Partition {
	if n < 1 {
		panic("sim: partition needs at least one domain")
	}
	p := &Partition{scheds: make([]*Scheduler, n)}
	for i := range p.scheds {
		p.scheds[i] = NewScheduler()
	}
	return p
}

// Domains returns the number of domains.
func (p *Partition) Domains() int { return len(p.scheds) }

// Sched returns domain i's scheduler.
func (p *Partition) Sched(i int) *Scheduler { return p.scheds[i] }

// Index returns the domain owning s, or -1.
func (p *Partition) Index(s *Scheduler) int {
	for i, d := range p.scheds {
		if d == s {
			return i
		}
	}
	return -1
}

// SetLookahead sets the conservative window width: the minimum virtual
// latency of any cross-domain interaction. With more than one domain it
// must be positive before Run (netsim computes it as the minimum
// cross-domain link latency). It bounds every domain pair when no
// per-pair matrix is installed, and remains the floor of every edge when
// one is.
func (p *Partition) SetLookahead(d Time) { p.lookahead = d }

// Lookahead returns the configured window width.
func (p *Partition) Lookahead() Time { return p.lookahead }

// SetCrossLatency records the minimum virtual latency of a direct
// src→dst cross-domain interaction, tightening (never loosening) any
// previously recorded value. Installing the matrix upgrades the window
// protocol from one global conservative width to per-domain adaptive
// edges: a domain is bounded only by the domains that can actually send
// to it, at their actual minimum latencies, and pairs never recorded
// cannot interact at all. netsim installs the matrix from its
// cross-domain link latencies; SetLookahead is still required.
func (p *Partition) SetCrossLatency(src, dst int, lat Time) {
	if lat <= 0 {
		panic("sim: cross-domain latency must be positive")
	}
	if src == dst {
		return
	}
	if p.cross == nil {
		p.cross = make([][]Time, len(p.scheds))
		for i := range p.cross {
			row := make([]Time, len(p.scheds))
			for j := range row {
				row[j] = Forever
			}
			p.cross[i] = row
		}
	}
	if lat < p.cross[src][dst] {
		p.cross[src][dst] = lat
		p.distDirty = true
	}
}

// closure (re)computes the all-pairs shortest-path matrix over the
// recorded cross latencies (Floyd–Warshall; domain counts are small) and
// each domain's shortest cycle. Runs at Run start when the matrix
// changed, never mid-window.
func (p *Partition) closure() {
	n := len(p.scheds)
	if p.dist == nil {
		p.dist = make([][]Time, n)
		for i := range p.dist {
			p.dist[i] = make([]Time, n)
		}
		p.cyc = make([]Time, n)
	}
	for i := range p.dist {
		copy(p.dist[i], p.cross[i])
		p.dist[i][i] = Forever // self-distance tracked separately as cyc
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if p.dist[i][k] == Forever {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if d := satAdd(p.dist[i][k], p.dist[k][j]); d < p.dist[i][j] {
					p.dist[i][j] = d
				}
			}
		}
	}
	for d := 0; d < n; d++ {
		c := Forever
		for o := 0; o < n; o++ {
			if o == d {
				continue
			}
			if r := satAdd(p.dist[d][o], p.dist[o][d]); r < c {
				c = r
			}
		}
		p.cyc[d] = c
	}
	p.distDirty = false
}

// OnBarrier registers fn to run single-threaded at every synchronization
// point (before the first window, between windows, and after the last),
// while no domain goroutine is executing. Exchange hooks deliver
// cross-domain messages here by scheduling them on the destination
// domain, typically via AtWire.
func (p *Partition) OnBarrier(fn func()) { p.barriers = append(p.barriers, fn) }

func (p *Partition) barrier() {
	p.barrierCount++
	for _, fn := range p.barriers {
		fn()
	}
	if self.On() {
		self.PartBarriers.Inc()
	}
}

// SetClassicWindows(true) disables adaptive window batching: every
// window uses the fixed conservative width min(next)+Lookahead, the
// protocol the adaptive edges strictly improve on. Both modes execute
// the identical event sequence; classic mode is the differential oracle
// for that claim and the baseline for barrier-reduction measurements.
func (p *Partition) SetClassicWindows(on bool) { p.classic = on }

// Barriers returns the number of synchronization points executed across
// all Run calls: the direct measure of the cross-domain coordination the
// adaptive protocol removes. Like Windows it depends on the domain
// count, lookahead, and batching mode, so it belongs in run metadata,
// never in exports compared across domain counts.
func (p *Partition) Barriers() uint64 { return p.barrierCount }

// scanNext records every domain's earliest pending instant (Forever when
// idle) and returns the minimum. Runs at a barrier, after the exchange
// hooks, so mailboxed frames already delivered onto a domain's wire band
// are part of its next.
func (p *Partition) scanNext() Time {
	s := Forever
	for i, d := range p.scheds {
		at, ok := d.NextAt()
		if !ok {
			at = Forever
		}
		p.next[i] = at
		if at < s {
			s = at
		}
	}
	return s
}

// satAdd adds a non-negative delta to a time, saturating at Forever.
func satAdd(a, b Time) Time {
	if c := a + b; c >= a {
		return c
	}
	return Forever
}

// computeEdges fills p.edges with each domain's window edge, clamped to
// until: the earliest instant any pending work anywhere could deliver a
// cross-domain effect to it, via any chain of crossings (the dist
// closure; the global lookahead single-hop / double-hop bound when no
// matrix is installed). A domain bounds itself only through the shortest
// cycle back to it — its own events are sequential on its own
// goroutine, but their replies are not.
func (p *Partition) computeEdges(until Time) {
	n := len(p.scheds)
	for d := 0; d < n; d++ {
		edge := Forever
		for o := 0; o < n; o++ {
			if p.next[o] == Forever {
				continue
			}
			var lat Time
			switch {
			case o == d && p.dist != nil:
				lat = p.cyc[d]
			case o == d:
				lat = satAdd(p.lookahead, p.lookahead)
			case p.dist != nil:
				lat = p.dist[o][d]
			default:
				lat = p.lookahead
			}
			if lat == Forever {
				continue
			}
			if a := satAdd(p.next[o], lat); a < edge {
				edge = a
			}
		}
		if edge > until {
			edge = until
		}
		p.edges[d] = edge
	}
}

// gateWorker is one domain's slot in the epoch gate. The coordinator
// writes edge/incl/stop before bumping the gate epoch (the atomic bump
// publishes them); parked and wake implement the park/wake protocol in
// epochGate.
type gateWorker struct {
	edge   Time
	incl   bool
	stop   bool
	parked atomic.Bool
	wake   chan struct{}
}

// epochGate synchronizes the coordinator with the persistent domain
// workers without a per-window channel broadcast: releasing a window is
// one atomic add (plus a wake for any worker that parked), and workers
// that finish early spin briefly before parking, so back-to-back windows
// on a multi-core host cost a fence, not a scheduler round-trip.
//
// Protocol: the coordinator writes every worker's command, stores the
// outstanding count in done, bumps epoch, then wakes parked workers.
// Workers wait for epoch to reach their round number, run their window,
// and decrement done; the last one wakes the coordinator if it parked.
// Both waits use the eventcount discipline — publish the parked flag,
// re-check the condition, only then block — so a wake can never be lost;
// tokens are buffered and sends non-blocking, so a stale token at worst
// causes one spurious wake, which the re-check loop absorbs.
type epochGate struct {
	epoch   atomic.Uint64
	done    atomic.Int64
	parked  atomic.Bool // coordinator parked
	wake    chan struct{}
	workers []*gateWorker
	spin    bool // busy-wait briefly before parking (multi-core only)
}

// spinBudget bounds the busy-wait before a waiter parks. Spinning only
// pays when another core can be making progress toward the condition.
const spinBudget = 3000

func newEpochGate(n int) *epochGate {
	g := &epochGate{
		wake:    make(chan struct{}, 1),
		workers: make([]*gateWorker, n),
		spin:    runtime.GOMAXPROCS(0) > 1,
	}
	for i := range g.workers {
		g.workers[i] = &gateWorker{wake: make(chan struct{}, 1)}
	}
	return g
}

// release publishes the commands already written into the workers and
// opens the next window round.
func (g *epochGate) release() {
	g.done.Store(int64(len(g.workers)))
	g.epoch.Add(1)
	for _, w := range g.workers {
		if w.parked.Load() {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
}

// awaitEpoch blocks worker w until the gate epoch reaches target.
func (g *epochGate) awaitEpoch(w *gateWorker, target uint64) {
	if g.spin {
		for i := 0; i < spinBudget; i++ {
			if g.epoch.Load() >= target {
				return
			}
		}
	}
	for {
		if g.epoch.Load() >= target {
			return
		}
		w.parked.Store(true)
		if g.epoch.Load() >= target {
			w.parked.Store(false)
			select { // drop the token a racing release may have sent
			case <-w.wake:
			default:
			}
			return
		}
		<-w.wake
		w.parked.Store(false)
	}
}

// awaitDone blocks the coordinator until every worker finished its
// window.
func (g *epochGate) awaitDone() {
	if g.spin {
		for i := 0; i < spinBudget; i++ {
			if g.done.Load() == 0 {
				return
			}
		}
	}
	for {
		if g.done.Load() == 0 {
			return
		}
		g.parked.Store(true)
		if g.done.Load() == 0 {
			g.parked.Store(false)
			select {
			case <-g.wake:
			default:
			}
			return
		}
		<-g.wake
		g.parked.Store(false)
	}
}

// finish is a worker's window-complete notification.
func (g *epochGate) finish() {
	if g.done.Add(-1) == 0 && g.parked.Load() {
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
}

// shutdown releases the workers one last time with stop set; they exit
// without reporting back.
func (g *epochGate) shutdown() {
	for _, w := range g.workers {
		w.stop = true
	}
	g.release()
}

// startWorkers spawns one persistent goroutine per domain for the
// duration of a Run call. The workers live across every window of the
// run, blocked on the epoch gate between windows, and exit on shutdown.
func (p *Partition) startWorkers(g *epochGate, fired *atomic.Uint64) {
	for i, s := range p.scheds {
		go func(domain int, s *Scheduler, w *gateWorker) {
			// Barrier-stall accounting: the time between finishing a
			// window and receiving the next epoch is this domain's stall —
			// the load-imbalance number the -domains scaling work needs.
			// Wall-clock only; never observed by simulation code.
			var idleSince time.Time
			for round := uint64(1); ; round++ {
				g.awaitEpoch(w, round)
				if w.stop {
					return
				}
				if obs := self.On(); obs && !idleSince.IsZero() {
					self.DomainStallNS(domain).Add(uint64(time.Since(idleSince).Nanoseconds()))
				}
				if w.incl {
					fired.Add(s.Run(w.edge))
				} else {
					fired.Add(s.RunBefore(w.edge))
				}
				if self.On() {
					self.DomainWindows(domain).Inc()
					idleSince = time.Now()
				} else {
					idleSince = time.Time{}
				}
				g.finish()
			}
		}(i, s, g.workers[i])
	}
}

// Run advances all domains to until, leaving every domain clock at until
// (mirroring Scheduler.Run). It returns the number of events executed
// across all domains.
//
// Window protocol: at each round the barrier hooks run (delivering any
// cross-domain messages produced by the previous window — a message's
// arrival never precedes its receiver's edge, so delivery is always in
// the receiver's future), then every domain's earliest pending instant
// is scanned and per-domain edges are computed (computeEdges). The loop
// ends when no domain holds an event before until; a final inclusive
// pass executes events at exactly until (their cross-domain effects land
// at or after until plus the pair latency and stay mailboxed for a later
// Run, exactly as the single-scheduler run would leave them pending).
func (p *Partition) Run(until Time) uint64 {
	if len(p.scheds) == 1 {
		p.barrier()
		p.windows.Add(1)
		n := p.scheds[0].Run(until)
		p.barrier()
		if self.On() {
			self.SetDomains(1)
			self.DomainWindows(0).Inc()
			self.SimNowPS.Set(int64(until))
		}
		return n
	}
	if p.lookahead <= 0 {
		panic("sim: partition with multiple domains needs a positive lookahead")
	}
	if self.On() {
		self.SetDomains(len(p.scheds))
	}
	if len(p.next) != len(p.scheds) {
		p.next = make([]Time, len(p.scheds))
		p.edges = make([]Time, len(p.scheds))
	}
	if p.distDirty {
		p.closure()
	}
	var fired atomic.Uint64
	g := newEpochGate(len(p.scheds))
	p.startWorkers(g, &fired)
	defer g.shutdown()
	for {
		p.barrier()
		s := p.scanNext()
		if s >= until {
			break
		}
		p.windows.Add(1)
		classic := until
		if p.lookahead < until-s {
			classic = s + p.lookahead
		}
		if p.classic {
			for i := range p.edges {
				p.edges[i] = classic
			}
		} else {
			p.computeEdges(until)
		}
		minEdge, batched := Forever, false
		for i, w := range g.workers {
			w.edge, w.incl = p.edges[i], false
			if p.edges[i] < minEdge {
				minEdge = p.edges[i]
			}
			if p.edges[i] > classic {
				batched = true
			}
		}
		g.release()
		g.awaitDone()
		if self.On() {
			self.SimNowPS.Set(int64(minEdge))
			if batched {
				self.PartBatchedWindows.Inc()
			}
		}
	}
	p.windows.Add(1)
	for _, w := range g.workers {
		w.edge, w.incl = until, true
	}
	g.release()
	g.awaitDone()
	p.barrier()
	if self.On() {
		self.SimNowPS.Set(int64(until))
	}
	return fired.Load()
}

// Windows returns the number of window rounds executed across all Run
// calls (1 per Run in the single-domain fast path). With per-domain
// Fired() counts it describes the parallel run's shape for telemetry;
// window counts depend on the domain count, lookahead, and batching, so
// they belong in run metadata, not in exports compared across domain
// counts.
func (p *Partition) Windows() uint64 { return p.windows.Load() }
