package sim

import "testing"

// BenchmarkScheduler measures the steady-state schedule+fire round trip
// through the heap with the event free list warm: the cost the switch
// paid per cycle before the Lane fast path existed.
func BenchmarkScheduler(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		s.After(Nanosecond, fn)
	}
	for s.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(Nanosecond, fn)
		s.Step()
	}
}

// BenchmarkSchedulerLane measures the lane fast path: re-arm plus fire,
// no heap traffic.
func BenchmarkSchedulerLane(b *testing.B) {
	s := NewScheduler()
	var l *Lane
	l = s.NewLane(func() { l.ArmAt(s.Now() + Nanosecond) })
	l.ArmAt(Nanosecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// TestSchedulerSteadyStateZeroAlloc pins the scheduler's hot paths at
// zero allocations per event once the free list is warm: both the
// heap path (After/Step) and the lane path must recycle, not allocate.
func TestSchedulerSteadyStateZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(Nanosecond, fn)
	}
	for s.Step() {
	}

	if avg := testing.AllocsPerRun(1000, func() {
		s.After(Nanosecond, fn)
		s.Step()
	}); avg != 0 {
		t.Errorf("heap path: %v allocs per schedule+fire, want 0", avg)
	}

	var l *Lane
	l = s.NewLane(func() { l.ArmAt(s.Now() + Nanosecond) })
	l.ArmAt(s.Now() + Nanosecond)
	if avg := testing.AllocsPerRun(1000, func() {
		s.Step()
	}); avg != 0 {
		t.Errorf("lane path: %v allocs per fire, want 0", avg)
	}
}

// TestHandleGenerationSafety verifies that a Handle held across its
// event's firing cannot observe — or cancel — the recycled record's next
// occupant.
func TestHandleGenerationSafety(t *testing.T) {
	s := NewScheduler()
	stale := s.After(Nanosecond, func() {})
	if !stale.Pending() {
		t.Fatal("fresh handle should be pending")
	}
	s.Step()
	if stale.Pending() {
		t.Error("handle still pending after its event fired")
	}

	// The freed record is recycled for the next event; the stale handle
	// must not alias it.
	ran := false
	fresh := s.After(Nanosecond, func() { ran = true })
	stale.Cancel() // must be a no-op against the recycled record
	if !fresh.Pending() {
		t.Fatal("stale Cancel hit the recycled event")
	}
	s.Step()
	if !ran {
		t.Error("recycled event did not fire")
	}
}

// TestCancelReleasesToPool verifies cancelled events are recycled (via
// the head-discard in peek) rather than leaked, and that cancellation
// before firing sticks.
func TestCancelReleasesToPool(t *testing.T) {
	s := NewScheduler()
	ran := false
	h := s.After(Nanosecond, func() { ran = true })
	h.Cancel()
	if h.Pending() {
		t.Error("cancelled handle reports pending")
	}
	s.RunAll()
	if ran {
		t.Error("cancelled event fired")
	}
	if len(s.free) == 0 {
		t.Error("cancelled event was not returned to the free list")
	}
}

// TestLaneOrderingMatchesAt verifies the documented contract: a lane
// firing orders against heap events exactly as the equivalent At call
// would, because arming draws from the same sequence counter.
func TestLaneOrderingMatchesAt(t *testing.T) {
	var order []string

	// Heap event scheduled first, lane armed second: heap fires first.
	s := NewScheduler()
	l := s.NewLane(func() { order = append(order, "lane") })
	s.At(Microsecond, func() { order = append(order, "at") })
	l.ArmAt(Microsecond)
	s.RunAll()
	if len(order) != 2 || order[0] != "at" || order[1] != "lane" {
		t.Errorf("at-then-arm order = %v, want [at lane]", order)
	}

	// Lane armed first, heap event scheduled second: lane fires first.
	order = nil
	s = NewScheduler()
	l = s.NewLane(func() { order = append(order, "lane") })
	l.ArmAt(Microsecond)
	s.At(Microsecond, func() { order = append(order, "at") })
	s.RunAll()
	if len(order) != 2 || order[0] != "lane" || order[1] != "at" {
		t.Errorf("arm-then-at order = %v, want [lane at]", order)
	}
}

// TestLaneDisarmRearm exercises the lane's state transitions.
func TestLaneDisarmRearm(t *testing.T) {
	s := NewScheduler()
	fired := 0
	l := s.NewLane(func() { fired++ })
	if l.Armed() {
		t.Error("new lane reports armed")
	}
	l.ArmAt(Microsecond)
	if !l.Armed() {
		t.Error("armed lane reports disarmed")
	}
	l.Disarm()
	s.RunAll()
	if fired != 0 {
		t.Error("disarmed lane fired")
	}

	l.ArmAt(2 * Microsecond)
	l.ArmAt(3 * Microsecond) // re-arm moves the firing time
	s.RunAll()
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	if got := s.Now(); got != 3*Microsecond {
		t.Errorf("fired at %v, want 3us (re-arm should move the time)", got)
	}
	if l.Armed() {
		t.Error("lane still armed after firing")
	}
}

// TestLanePastPanics mirrors TestSchedulerPastPanics for the lane path.
func TestLanePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(Microsecond, func() {})
	s.RunAll()
	l := s.NewLane(func() {})
	defer func() {
		if recover() == nil {
			t.Error("arming a lane in the past did not panic")
		}
	}()
	l.ArmAt(Nanosecond)
}

// TestPendingCountsLanes verifies Pending sees armed lanes.
func TestPendingCountsLanes(t *testing.T) {
	s := NewScheduler()
	l := s.NewLane(func() {})
	s.At(Microsecond, func() {})
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
	l.ArmAt(Microsecond)
	if got := s.Pending(); got != 2 {
		t.Errorf("Pending with armed lane = %d, want 2", got)
	}
}

// TestRunnerScheduling covers the AtRunner/AfterRunner pooled-callback
// variants.
type countRunner struct{ n int }

func (r *countRunner) Run() { r.n++ }

func TestRunnerScheduling(t *testing.T) {
	s := NewScheduler()
	r := &countRunner{}
	s.AfterRunner(Microsecond, r)
	h := s.AtRunner(2*Microsecond, r)
	if !h.Pending() {
		t.Error("runner handle should be pending")
	}
	s.RunAll()
	if r.n != 2 {
		t.Errorf("runner ran %d times, want 2", r.n)
	}
}
