package sim

import (
	"fmt"
	"testing"
)

// edgeModel is a 2-domain model built so cross-domain frames arrive at
// exactly the adaptive window edges computeEdges produces. Domain 0 runs
// a dense local chain (events every busyStep); every fourth event sends
// a frame to domain 1 carrying exactly crossLat of latency. At the first
// barrier domain 1's adaptive edge is next_0 + dist(0→1) = 0 + crossLat,
// and the frame sent by domain 0's t=0 event arrives at precisely that
// instant — the boundary RunBefore must exclude. Arrivals echo a reply
// back to domain 0, also landing exactly on later edges, so the boundary
// is exercised in both directions and across chained windows.
type edgeModel struct {
	p        *Partition
	crossLat Time
	per      [][]string  // per-domain trace; single writer each
	mail     [][]edgeMsg // mail[dst], drained at barriers
	seq      []uint64
}

type edgeMsg struct {
	at     Time
	k1, k2 uint64
	dst    int
	hop    int
}

const (
	edgeBusyStep = 10 * Microsecond
	edgeCrossLat = 40 * Microsecond
)

func newEdgeModel(classic bool) *edgeModel {
	m := &edgeModel{
		p:        NewPartition(2),
		crossLat: edgeCrossLat,
		per:      make([][]string, 2),
		mail:     make([][]edgeMsg, 2),
		seq:      make([]uint64, 2),
	}
	m.p.SetLookahead(edgeBusyStep) // deliberately < crossLat: adaptive edges must win
	m.p.SetCrossLatency(0, 1, m.crossLat)
	m.p.SetCrossLatency(1, 0, m.crossLat)
	m.p.SetClassicWindows(classic)
	m.p.OnBarrier(m.drain)
	return m
}

func (m *edgeModel) trace(d int, what string) {
	m.per[d] = append(m.per[d], fmt.Sprintf("%d %s", m.p.Sched(d).Now(), what))
}

func (m *edgeModel) drain() {
	for dst := range m.mail {
		for _, f := range m.mail[dst] {
			f := f
			m.p.Sched(f.dst).AtWire(f.at, f.k1, f.k2, func() { m.arrive(f.dst, f.hop) })
		}
		m.mail[dst] = m.mail[dst][:0]
	}
}

func (m *edgeModel) send(src, dst, hop int) {
	m.mail[dst] = append(m.mail[dst], edgeMsg{
		at: m.p.Sched(src).Now() + m.crossLat,
		k1: uint64(src), k2: m.seq[src], dst: dst, hop: hop,
	})
	m.seq[src]++
}

func (m *edgeModel) arrive(d, hop int) {
	m.trace(d, fmt.Sprintf("arrive hop%d", hop))
	if hop < 6 {
		m.send(d, 1-d, hop+1)
	}
}

func (m *edgeModel) run(until Time) {
	// Domain 0's local chain: 20 events, every fourth one a sender.
	for k := 0; k < 20; k++ {
		k := k
		m.p.Sched(0).At(Time(k)*edgeBusyStep, func() {
			m.trace(0, "busy")
			if k%4 == 0 {
				m.send(0, 1, 1)
			}
		})
	}
	m.p.Run(until)
}

func (m *edgeModel) collect() []string {
	var out []string
	for d := range m.per {
		out = append(out, fmt.Sprintf("-- domain %d --", d))
		out = append(out, m.per[d]...)
	}
	return out
}

// TestBatchedWindowEdgeArrival pins the window-boundary semantics of
// adaptive batching: a cross-domain frame whose arrival instant equals a
// batched window's edge is excluded from that window (RunBefore is
// strict) and executes in a later one, producing exactly the event
// sequence of the classic fixed-width protocol. The adaptive run must
// also genuinely batch — strictly fewer barriers than classic — or the
// boundary was never exercised.
func TestBatchedWindowEdgeArrival(t *testing.T) {
	until := 500 * Microsecond
	classic := newEdgeModel(true)
	classic.run(until)
	adaptive := newEdgeModel(false)
	adaptive.run(until)

	diffTraces(t, "adaptive vs classic", classic.collect(), adaptive.collect())

	// The construction guarantees the first frame lands at exactly
	// crossLat (= domain 1's first adaptive edge); if the model drifts,
	// the test is no longer testing the boundary.
	found := false
	for _, ln := range adaptive.per[1] {
		if ln == fmt.Sprintf("%d arrive hop1", edgeCrossLat) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no arrival at exactly t=%v in domain 1: %v", edgeCrossLat, adaptive.per[1])
	}
	if ab, cb := adaptive.p.Barriers(), classic.p.Barriers(); ab >= cb {
		t.Errorf("adaptive run did not batch: %d barriers vs classic %d", ab, cb)
	}
}

// TestSlimStateMidWindow pins the mid-window observer contract behind
// evsim's partition checkpoint section: SlimState is readable from an
// event firing inside a domain's window, round-trips through
// RestoreSlimState on a same-shaped partition, and is refused on a
// different domain count.
func TestSlimStateMidWindow(t *testing.T) {
	p := NewPartition(3)
	p.SetLookahead(Microsecond)
	var snap SlimPartitionState
	p.Sched(0).At(5*Microsecond, func() { snap = p.SlimState() })
	p.Sched(1).At(3*Microsecond, func() {})
	p.Run(10 * Microsecond)
	if snap.Domains != 3 || snap.Windows == 0 {
		t.Fatalf("mid-window SlimState = %+v, want 3 domains and a nonzero window count", snap)
	}

	q := NewPartition(3)
	if err := q.RestoreSlimState(snap); err != nil {
		t.Fatalf("RestoreSlimState on same shape: %v", err)
	}
	if q.Windows() != snap.Windows {
		t.Errorf("restored windows = %d, want %d", q.Windows(), snap.Windows)
	}
	if err := NewPartition(2).RestoreSlimState(snap); err == nil {
		t.Error("RestoreSlimState accepted a different domain count")
	}
}
