// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event scheduler, and a seeded random number
// generator. All simulated components in this repository are driven from a
// sim.Scheduler and never read the wall clock, so runs are exactly
// reproducible for a given seed and configuration.
package sim

import "fmt"

// Time is a point in virtual time measured in integer picoseconds.
//
// Picoseconds are used (rather than nanoseconds) so that the bit times of
// common line rates are exact integers: one bit at 10 Gb/s is 100 ps, at
// 25 Gb/s 40 ps, at 100 Gb/s 10 ps. A signed 64-bit count of picoseconds
// spans about 106 days, far beyond any simulation horizon used here.
type Time int64

// Common durations expressed in Time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a sentinel Time later than any reachable simulation instant.
const Forever Time = 1<<63 - 1

// Picoseconds returns t as a raw picosecond count.
func (t Time) Picoseconds() int64 { return int64(t) }

// Nanoseconds returns t converted to nanoseconds, truncating toward zero.
func (t Time) Nanoseconds() int64 { return int64(t) / int64(Nanosecond) }

// Microseconds returns t converted to microseconds, truncating toward zero.
func (t Time) Microseconds() int64 { return int64(t) / int64(Microsecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders t with an adaptive unit, e.g. "1.5us" or "250ns".
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return trimUnit(float64(t)/float64(Nanosecond), "ns")
	case t < Millisecond:
		return trimUnit(float64(t)/float64(Microsecond), "us")
	case t < Second:
		return trimUnit(float64(t)/float64(Millisecond), "ms")
	default:
		return trimUnit(float64(t)/float64(Second), "s")
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// Rate is a transmission rate in bits per second.
type Rate int64

// Common line rates.
const (
	Kbps Rate = 1e3
	Mbps Rate = 1e6
	Gbps Rate = 1e9
)

// BitTime returns the duration of a single bit at rate r.
// It panics if r is not positive.
func (r Rate) BitTime() Time {
	if r <= 0 {
		panic("sim: BitTime of non-positive rate")
	}
	// 1 second / r bits, in picoseconds.
	return Time(int64(Second) / int64(r))
}

// ByteTime returns the duration of transmitting n bytes at rate r.
func (r Rate) ByteTime(n int) Time {
	return Time(int64(n) * 8 * int64(r.BitTime()))
}

// String renders the rate with an adaptive unit, e.g. "10Gb/s".
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGb/s", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMb/s", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKb/s", r/Kbps)
	default:
		return fmt.Sprintf("%db/s", int64(r))
	}
}
