package sim

import (
	"runtime"
	"sort"
)

// PlanDomains assigns weighted tasks (switches, in netsim's case) to
// domains by measured load instead of round-robin index arithmetic: the
// longest-processing-time greedy — heaviest task first onto the
// currently lightest domain — which is within 4/3 of the optimal
// makespan and, more to the point, deterministic. Ties break toward the
// lower task index and the lower domain index, so the same weights
// always produce the same plan. The returned slice maps task index to
// domain index; every domain receives at least one task when there are
// enough tasks (a zero-weight task still occupies its assignment).
//
// Which domain a task lands in never changes simulation output (the
// partition is byte-identical at any decomposition); the plan only moves
// wall-clock load. Callers feed it per-task cost measurements — netsim
// benches use per-switch pipeline cycle counts from a short calibration
// pass, the ndn-dpdk core-allocation idiom.
func PlanDomains(weights []uint64, domains int) []int {
	if domains < 1 {
		domains = 1
	}
	assign := make([]int, len(weights))
	if domains == 1 {
		return assign
	}
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	load := make([]uint64, domains)
	filled := 0
	for n, i := range order {
		// Seed every domain with one of the heaviest tasks first, then
		// greedily top up the lightest. The seeding keeps a domain from
		// ending up empty when many weights are zero or equal.
		d := 0
		if n < domains {
			d = filled
			filled++
		} else {
			for j := 1; j < domains; j++ {
				if load[j] < load[d] {
					d = j
				}
			}
		}
		assign[i] = d
		load[d] += weights[i]
	}
	return assign
}

// AutoDomains picks a domain count for tasks weighted work items: one
// domain per available core, never more domains than tasks, never fewer
// than one. This is the resolution of the CLIs' "-domains auto".
func AutoDomains(tasks int) int {
	n := runtime.GOMAXPROCS(0)
	if n > tasks {
		n = tasks
	}
	if n < 1 {
		n = 1
	}
	return n
}
