package sim

import "testing"

func TestStatsPercentileKeepsInsertionOrder(t *testing.T) {
	s := NewStats()
	in := []float64{5, 1, 4, 2, 3}
	for _, v := range in {
		s.Add(v)
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	for i, v := range s.Samples() {
		if v != in[i] {
			t.Fatalf("Percentile reordered samples: got %v", s.Samples())
		}
	}
	// Adding after a Percentile must invalidate the cached sort.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Errorf("p0 after Add = %v, want 0", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
}

func TestStatsResetAndAddAll(t *testing.T) {
	a := NewStats()
	for _, v := range []float64{1, 2, 3} {
		a.Add(v)
	}
	b := NewStats()
	for _, v := range []float64{10, 20} {
		b.Add(v)
	}
	a.AddAll(b)
	if a.N() != 5 || a.Sum() != 36 || a.Min() != 1 || a.Max() != 20 {
		t.Errorf("after AddAll: n=%d sum=%v min=%v max=%v, want 5/36/1/20", a.N(), a.Sum(), a.Min(), a.Max())
	}
	if b.N() != 2 || b.Sum() != 30 {
		t.Errorf("AddAll mutated source: n=%d sum=%v", b.N(), b.Sum())
	}
	if got := a.Percentile(100); got != 20 {
		t.Errorf("merged p100 = %v, want 20", got)
	}

	a.Reset()
	if a.N() != 0 || a.Sum() != 0 || a.Min() != 0 || a.Max() != 0 || a.Percentile(50) != 0 {
		t.Errorf("Reset left residue: %v", a)
	}
	a.Add(7)
	if a.Mean() != 7 || a.Min() != 7 || a.Max() != 7 || a.Percentile(50) != 7 {
		t.Errorf("post-Reset accumulator broken: %v", a)
	}
	// AddAll with nil and empty sources is a no-op.
	a.AddAll(nil)
	a.AddAll(NewStats())
	if a.N() != 1 {
		t.Errorf("no-op AddAll changed n to %d", a.N())
	}
}
