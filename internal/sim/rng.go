package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64-seeded xoshiro256**). Every stochastic choice in the
// simulator flows through an RNG so that runs are reproducible; the
// standard library's global rand is never used.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded from the given value. Distinct seeds yield
// independent-looking streams; the zero seed is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator state from seed using splitmix64, which
// guarantees a non-degenerate (non-zero) internal state.
func (r *RNG) Seed(seed uint64) {
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpTime returns an exponentially distributed duration with the given
// mean, rounded to the nearest picosecond and never less than 1 ps.
func (r *RNG) ExpTime(mean Time) Time {
	d := Time(math.Round(r.Exp(float64(mean))))
	if d < 1 {
		d = 1
	}
	return d
}

// Pareto returns a bounded Pareto-ish heavy-tailed value with shape alpha
// and minimum xm. Used for flow-size distributions.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the supplied
// swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new RNG seeded from this one, for giving independent
// streams to sub-components without correlating their draws.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
