package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{500, "500ps"},
		{Nanosecond, "1ns"},
		{1500 * Picosecond, "1.5ns"},
		{Microsecond, "1us"},
		{250 * Nanosecond, "250ns"},
		{Millisecond, "1ms"},
		{Second, "1s"},
		{-Nanosecond, "-1ns"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateBitTime(t *testing.T) {
	if got := (10 * Gbps).BitTime(); got != 100*Picosecond {
		t.Errorf("10G bit time = %v, want 100ps", got)
	}
	if got := (100 * Gbps).BitTime(); got != 10*Picosecond {
		t.Errorf("100G bit time = %v, want 10ps", got)
	}
	if got := (10 * Gbps).ByteTime(64); got != 51200*Picosecond {
		t.Errorf("64B at 10G = %v, want 51.2ns", got)
	}
}

func TestRateBitTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive rate")
		}
	}()
	Rate(0).BitTime()
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.At(10, func() { order = append(order, 11) }) // same instant: FIFO
	s.RunAll()
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestSchedulerRunHorizon(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	n := s.Run(25)
	if n != 2 || fired != 2 {
		t.Errorf("Run(25) executed %d (fired=%d), want 2", n, fired)
	}
	if s.Now() != 25 {
		t.Errorf("Now = %v, want 25 (clock advances to horizon)", s.Now())
	}
	s.Run(100)
	if fired != 3 {
		t.Errorf("after Run(100) fired=%d, want 3", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	h := s.At(10, func() { fired = true })
	if !h.Pending() {
		t.Error("handle should be pending before firing")
	}
	h.Cancel()
	s.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
	if h.Pending() {
		t.Error("cancelled handle still pending")
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(5, func() {})
}

func TestSchedulerReentrant(t *testing.T) {
	s := NewScheduler()
	var times []Time
	s.At(10, func() {
		times = append(times, s.Now())
		s.After(5, func() { times = append(times, s.Now()) })
	})
	s.RunAll()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v, want [10 15]", times)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := s.Every(10, func() {
		ticks = append(ticks, s.Now())
	})
	s.Run(35)
	tk.Stop()
	s.Run(100)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks %v, want 3", len(ticks), ticks)
	}
	for i, at := range []Time{10, 20, 30} {
		if ticks[i] != at {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], at)
		}
	}
	if tk.Period() != 10 {
		t.Errorf("Period = %v, want 10", tk.Period())
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = s.Every(10, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.Run(1000)
	if n != 2 {
		t.Errorf("ticker fired %d times after self-stop, want 2", n)
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, func() { fired++; s.Halt() })
	s.At(20, func() { fired++ })
	s.Run(100)
	if fired != 1 {
		t.Errorf("fired=%d after Halt, want 1", fired)
	}
	// A subsequent Run resumes.
	s.Run(100)
	if fired != 2 {
		t.Errorf("fired=%d after resume, want 2", fired)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a.Seed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d has %d, want ~%d", i, c, n/10)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(50)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Errorf("Exp mean = %v, want ~50", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/1000 draws", same)
	}
}

func TestStatsBasics(t *testing.T) {
	s := NewStats()
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty stats should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 || s.Sum() != 15 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Errorf("stats wrong: n=%d sum=%v mean=%v min=%v max=%v",
			s.N(), s.Sum(), s.Mean(), s.Min(), s.Max())
	}
	if p := s.Percentile(50); p != 3 {
		t.Errorf("p50 = %v, want 3", p)
	}
	if p := s.Percentile(100); p != 5 {
		t.Errorf("p100 = %v, want 5", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
}

func TestStatsPercentileMonotone(t *testing.T) {
	r := NewRNG(11)
	s := NewStats()
	for i := 0; i < 1000; i++ {
		s.Add(r.Float64() * 100)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 5 {
		v := s.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestStatsAddAfterPercentile(t *testing.T) {
	s := NewStats()
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1) // must re-sort lazily
	if p := s.Percentile(0); p != 1 {
		t.Errorf("p0 after re-add = %v, want 1", p)
	}
}

func TestStatsStddev(t *testing.T) {
	s := NewStats()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", got)
	}
}
