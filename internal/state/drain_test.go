package state

import (
	"testing"

	"repro/internal/sim"
)

// drainRec captures one drain-hook observation.
type drainRec struct {
	idx uint32
	lag uint64
}

// fig3Workload replays the fig3-style random update phase against ag:
// enqueue/dequeue deltas plus packet reads on a fraction of cycles, driven
// cycle by cycle. It leaves ag with a drain backlog.
func fig3Workload(ag *Aggregated, rng *sim.RNG, cycles uint64, size int) {
	for c := uint64(1); c <= cycles; c++ {
		ag.Tick(c)
		if rng.Float64() < 0.45 {
			ag.Defer(0, uint32(rng.Intn(size)), +1000)
		}
		if rng.Float64() < 0.45 {
			ag.Defer(1, uint32(rng.Intn(size)), -1000)
		}
		// Packets occupy the main port every cycle of this phase, so no
		// drains happen: the backlog is entirely pending when it ends.
		ag.Main().TryRead(uint32(rng.Intn(size)))
		ag.EndCycle()
	}
}

// TestDrainNMatchesEndCycleLoop is the state-level differential for the
// drain fast-forward: after an identical fig3-style loaded phase, draining
// the backlog via DrainN (in uneven batches, exercising partial-batch
// resume) must replay exactly what per-cycle Tick+EndCycle does — same
// drain order, same per-delta lags, same metrics, same final register
// contents, same cycle counter.
func TestDrainNMatchesEndCycleLoop(t *testing.T) {
	const size = 64
	const loaded = 5000

	run := func(fast bool) (recs []drainRec, ag *Aggregated, cyclesUsed uint64) {
		ag = NewAggregated("q", size, 1, "enq", "deq")
		ag.SetDrainHook(func(idx uint32, lag uint64) {
			recs = append(recs, drainRec{idx, lag})
		})
		fig3Workload(ag, sim.NewRNG(42), loaded, size)
		if ag.Backlog() == 0 {
			t.Fatal("loaded phase left no backlog; test exercises nothing")
		}
		if fast {
			// Uneven batch sizes: a full drain rarely lands on a batch
			// boundary, so this also covers DrainN stopping early.
			for _, batch := range []uint64{1, 7, 3, 1 << 60} {
				cyclesUsed += ag.DrainN(batch)
			}
		} else {
			for ag.Backlog() > 0 {
				ag.Tick(ag.Main().Cycle() + 1)
				ag.EndCycle()
				cyclesUsed++
			}
		}
		return recs, ag, cyclesUsed
	}

	slowRecs, slowAg, slowCycles := run(false)
	fastRecs, fastAg, fastCycles := run(true)

	if len(slowRecs) != len(fastRecs) {
		t.Fatalf("drain count differs: slow %d, fast %d", len(slowRecs), len(fastRecs))
	}
	for i := range slowRecs {
		if slowRecs[i] != fastRecs[i] {
			t.Fatalf("drain %d differs: slow %+v, fast %+v", i, slowRecs[i], fastRecs[i])
		}
	}
	if slowCycles != fastCycles {
		t.Errorf("cycles consumed differ: slow %d, fast %d", slowCycles, fastCycles)
	}
	if slowAg.Main().Cycle() != fastAg.Main().Cycle() {
		t.Errorf("final cycle differs: slow %d, fast %d", slowAg.Main().Cycle(), fastAg.Main().Cycle())
	}
	if sm, fm := slowAg.Metrics(), fastAg.Metrics(); sm != fm {
		t.Errorf("metrics differ:\nslow %v\nfast %v", sm, fm)
	}
	for i := uint32(0); i < size; i++ {
		if s, f := slowAg.Main().Peek(i), fastAg.Main().Peek(i); s != f {
			t.Errorf("main[%d] differs: slow %d, fast %d", i, s, f)
		}
		if s, f := slowAg.True(i), fastAg.True(i); s != f {
			t.Errorf("true[%d] differs: slow %d, fast %d", i, s, f)
		}
	}
	if fastAg.Backlog() != 0 {
		t.Errorf("fast path left backlog %d", fastAg.Backlog())
	}
}

// TestDrainNStopsWhenEmpty pins the early-exit contract: cycles beyond the
// backlog are not consumed (the switch must not advance its cycle counter
// past the real drain work).
func TestDrainNStopsWhenEmpty(t *testing.T) {
	ag := NewAggregated("q", 8, 1, "e")
	ag.Tick(1)
	ag.Defer(0, 3, 10)
	ag.Defer(0, 5, -4) // second defer same cycle: bank port exhausted? no — size-8 bank, 1 port
	ag.EndCycle()      // main port free: drains one (only one per bank per cycle)
	used := ag.DrainN(100)
	if want := uint64(ag.Backlog()); want != 0 {
		t.Fatalf("backlog %d after DrainN", want)
	}
	if used > 2 {
		t.Errorf("DrainN used %d cycles for at most 2 pending deltas", used)
	}
	if ag.DrainN(100) != 0 {
		t.Error("DrainN consumed cycles with an empty backlog")
	}
}

// TestBankCompactionShrinksCapacity is the satellite fix's regression
// test: after a storm fills a bank's dirty FIFO far beyond its steady
// state, draining it must also release the storm-sized backing slice, not
// just compact the head in place.
func TestBankCompactionShrinksCapacity(t *testing.T) {
	const size = 1 << 14
	ag := NewAggregated("q", size, 1, "e")
	// Storm: one defer per cycle (the bank's port budget) to distinct
	// indices, growing the dirty FIFO to `size` entries.
	c := uint64(0)
	for i := 0; i < size; i++ {
		c++
		ag.Tick(c)
		ag.Defer(0, uint32(i), 1)
		ag.Main().TryRead(0) // keep the main port busy: no drains yet
		ag.EndCycle()
	}
	b := ag.banks[0]
	if got := cap(b.dirty); got < size {
		t.Fatalf("storm did not grow the FIFO: cap %d < %d", got, size)
	}
	peak := cap(b.dirty)
	if used := ag.DrainN(1 << 62); used == 0 {
		t.Fatal("nothing drained")
	}
	if ag.Backlog() != 0 {
		t.Fatalf("backlog %d after full drain", ag.Backlog())
	}
	if got := cap(b.dirty); got >= peak/2 {
		t.Errorf("dirty FIFO capacity %d retained after drain (peak %d); compaction must shrink it", got, peak)
	}
}
