package state

import (
	"testing"
	"testing/quick"
)

func TestArrayBasics(t *testing.T) {
	a := NewArray("r", 8, 1)
	if a.Name() != "r" || a.Size() != 8 || a.Ports() != 1 {
		t.Fatalf("metadata wrong: %s %d %d", a.Name(), a.Size(), a.Ports())
	}
	a.Tick(1)
	if ok := a.TryWrite(3, 42); !ok {
		t.Fatal("first write denied")
	}
	// Port budget exhausted within the same cycle.
	if _, ok := a.TryRead(3); ok {
		t.Fatal("second access in cycle should be denied on single-ported array")
	}
	a.Tick(2)
	v, ok := a.TryRead(3)
	if !ok || v != 42 {
		t.Fatalf("read = %d ok=%v, want 42", v, ok)
	}
	reads, writes, denied := a.Stats()
	if reads != 1 || writes != 1 || denied != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", reads, writes, denied)
	}
}

func TestArrayMultiPort(t *testing.T) {
	a := NewArray("r", 4, 3)
	a.Tick(1)
	for i := 0; i < 3; i++ {
		if _, ok := a.TryRead(0); !ok {
			t.Fatalf("access %d denied with 3 ports", i)
		}
	}
	if _, ok := a.TryRead(0); ok {
		t.Fatal("4th access allowed with 3 ports")
	}
	if a.Free() != 0 {
		t.Errorf("Free = %d, want 0", a.Free())
	}
}

func TestArrayRMW(t *testing.T) {
	a := NewArray("r", 4, 2)
	a.Tick(1)
	v, ok := a.TryRMW(2, func(v uint64) uint64 { return v + 10 })
	if !ok || v != 10 {
		t.Fatalf("rmw = %d ok=%v", v, ok)
	}
	v, ok = a.TryRMW(2, func(v uint64) uint64 { return v * 3 })
	if !ok || v != 30 {
		t.Fatalf("second rmw = %d ok=%v", v, ok)
	}
	if a.Peek(2) != 30 {
		t.Errorf("Peek = %d, want 30", a.Peek(2))
	}
}

func TestArrayIndexWraps(t *testing.T) {
	a := NewArray("r", 4, 4)
	a.Tick(1)
	a.TryWrite(5, 7) // wraps to 1
	if a.Peek(1) != 7 {
		t.Errorf("index should wrap modulo size")
	}
}

func TestArrayTickBackwardsPanics(t *testing.T) {
	a := NewArray("r", 1, 1)
	a.Tick(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards tick")
		}
	}()
	a.Tick(4)
}

func TestArrayResetAndPoke(t *testing.T) {
	a := NewArray("r", 4, 1)
	a.Poke(0, 1)
	a.Poke(3, 9)
	a.Reset()
	for i := uint32(0); i < 4; i++ {
		if a.Peek(i) != 0 {
			t.Errorf("entry %d = %d after reset", i, a.Peek(i))
		}
	}
}

func TestAggregatedExactWhenDrained(t *testing.T) {
	// Enqueue +len, dequeue -len; after enough idle cycles the main
	// register equals the true value.
	ag := NewAggregated("qsize", 8, 1, "enq", "deq")
	cycle := uint64(0)
	add := func(class int, idx uint32, d int64) {
		cycle++
		ag.Tick(cycle)
		if !ag.Defer(class, idx, d) {
			t.Fatalf("defer refused at cycle %d", cycle)
		}
		ag.EndCycle()
	}
	add(0, 1, +200)
	add(0, 1, +100)
	add(1, 1, -50)
	if got := ag.True(1); got != 250 {
		t.Fatalf("True = %d, want 250", got)
	}
	// Idle cycles drain everything.
	for i := 0; i < 10; i++ {
		cycle++
		ag.Tick(cycle)
		ag.EndCycle()
	}
	if got := ag.Main().Peek(1); got != 250 {
		t.Errorf("main after drain = %d, want 250", got)
	}
	if ag.Backlog() != 0 {
		t.Errorf("backlog = %d, want 0", ag.Backlog())
	}
	if got := ag.Lag(1); got != 0 {
		t.Errorf("lag = %d, want 0", got)
	}
}

func TestAggregatedPacketPriority(t *testing.T) {
	// A packet-event RMW in a cycle uses the main port, so no drain
	// happens that cycle; the main value stays stale.
	ag := NewAggregated("qsize", 4, 1, "enq")
	ag.Tick(1)
	ag.Defer(0, 0, +100)
	ag.EndCycle() // bank port was used by the defer; nothing drains yet
	ag.Tick(2)
	ag.EndCycle() // idle cycle: drains
	if ag.Main().Peek(0) != 100 {
		t.Fatalf("expected drain on idle cycle")
	}
	ag.Tick(3)
	ag.Defer(0, 0, +50)
	// Packet thread reads (and consumes the main port).
	if v, ok := ag.Main().TryRead(0); !ok || v != 100 {
		t.Fatalf("packet read = %d ok=%v, want stale 100", v, ok)
	}
	ag.EndCycle()
	if ag.Main().Peek(0) != 100 {
		t.Errorf("main updated despite busy port")
	}
	if ag.True(0) != 150 {
		t.Errorf("True = %d, want 150", ag.True(0))
	}
	ag.Tick(4)
	ag.EndCycle()
	if ag.Main().Peek(0) != 150 {
		t.Errorf("main after idle = %d, want 150", ag.Main().Peek(0))
	}
}

func TestAggregatedDeltaCancellation(t *testing.T) {
	ag := NewAggregated("qsize", 4, 1, "enq", "deq")
	ag.Tick(1)
	ag.Defer(0, 2, +64)
	ag.EndCycle()
	ag.Tick(2)
	ag.Defer(1, 2, -64)
	// Main holds +64 now; the -64 drains later and cancels.
	for c := uint64(3); c < 6; c++ {
		ag.Tick(c)
		ag.EndCycle()
	}
	if got := ag.Main().Peek(2); got != 0 {
		t.Errorf("main = %d, want 0", got)
	}
	if ag.True(2) != 0 {
		t.Errorf("True = %d, want 0", ag.True(2))
	}
}

func TestAggregatedStalenessBounded(t *testing.T) {
	// Load 0.5: one event every other cycle, main port free on event
	// cycles. Staleness must stay small and bounded.
	ag := NewAggregated("qsize", 16, 1, "enq")
	for c := uint64(1); c <= 10000; c++ {
		ag.Tick(c)
		if c%2 == 0 {
			ag.Defer(0, uint32(c%16), +1)
		}
		ag.EndCycle()
	}
	m := ag.Metrics()
	if m.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", m.Dropped)
	}
	if m.MaxLag > 4 {
		t.Errorf("max lag = %d cycles, want small bound", m.MaxLag)
	}
	if m.MaxBacklog > 2 {
		t.Errorf("max backlog = %d, want <= 2", m.MaxBacklog)
	}
}

func TestAggregatedBacklogGrowsWhenSaturated(t *testing.T) {
	// Every cycle the packet thread occupies the main port AND an event
	// arrives: nothing can drain, so backlog grows with distinct indices.
	ag := NewAggregated("qsize", 1024, 1, "enq")
	for c := uint64(1); c <= 512; c++ {
		ag.Tick(c)
		ag.Main().TryRead(0)       // packet thread, consumes main port
		ag.Defer(0, uint32(c), +1) // distinct index each cycle
		ag.EndCycle()
	}
	if got := ag.Backlog(); got != 512 {
		t.Errorf("backlog = %d, want 512 (no drain bandwidth)", got)
	}
	// Give it idle cycles: backlog must fully drain at one per cycle.
	for c := uint64(513); c <= 1200; c++ {
		ag.Tick(c)
		ag.EndCycle()
	}
	if got := ag.Backlog(); got != 0 {
		t.Errorf("backlog after idle = %d, want 0", got)
	}
}

func TestAggregatedTrueInvariant(t *testing.T) {
	// Property: regardless of the interleaving of defers and idle
	// cycles, True(i) always equals the running sum of applied deltas.
	f := func(ops []int8) bool {
		ag := NewAggregated("x", 8, 1, "enq", "deq")
		want := make([]int64, 8)
		cycle := uint64(0)
		for _, op := range ops {
			cycle++
			ag.Tick(cycle)
			idx := uint32(op) % 8
			d := int64(op % 5)
			class := 0
			if op%2 == 0 {
				class = 1
			}
			if ag.Defer(class, idx, d) {
				want[idx%8] += d
			}
			ag.EndCycle()
		}
		for i := uint32(0); i < 8; i++ {
			if ag.True(i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregatedClassIndex(t *testing.T) {
	ag := NewAggregated("x", 4, 1, "enq", "deq")
	if ag.ClassIndex("enq") != 0 || ag.ClassIndex("deq") != 1 {
		t.Errorf("class indices wrong: %d %d", ag.ClassIndex("enq"), ag.ClassIndex("deq"))
	}
	if ag.ClassIndex("nope") != -1 {
		t.Error("unknown class should be -1")
	}
	if ag.Classes() != 2 {
		t.Errorf("Classes = %d", ag.Classes())
	}
}

func TestAggregatedMetricsString(t *testing.T) {
	ag := NewAggregated("x", 4, 1, "enq")
	ag.Tick(1)
	ag.Defer(0, 0, 1)
	ag.EndCycle()
	if s := ag.Metrics().String(); s == "" {
		t.Error("empty metrics string")
	}
}

func TestAggregatedBankPortContention(t *testing.T) {
	// Two defers of the same class in one cycle: the second must be
	// refused (one port per aggregation bank).
	ag := NewAggregated("x", 4, 1, "enq")
	ag.Tick(1)
	if !ag.Defer(0, 0, 1) {
		t.Fatal("first defer refused")
	}
	if ag.Defer(0, 1, 1) {
		t.Fatal("second defer in same cycle should be refused")
	}
	if ag.Metrics().Dropped != 1 {
		t.Errorf("dropped = %d, want 1", ag.Metrics().Dropped)
	}
}

func TestAggregatedPendingAbs(t *testing.T) {
	ag := NewAggregated("x", 8, 1, "enq", "deq")
	ag.Tick(1)
	ag.Main().TryRead(0) // block drains this cycle
	ag.Defer(0, 1, +100)
	ag.Defer(1, 2, -40)
	if got := ag.PendingAbs(); got != 140 {
		t.Errorf("PendingAbs = %d, want 140 (magnitudes, not sum)", got)
	}
	// Drain everything on idle cycles.
	for c := uint64(2); c < 8; c++ {
		ag.Tick(c)
		ag.EndCycle()
	}
	if got := ag.PendingAbs(); got != 0 {
		t.Errorf("PendingAbs after drain = %d", got)
	}
}

func TestAggregatedResetAll(t *testing.T) {
	ag := NewAggregated("x", 4, 1, "enq")
	ag.Tick(1)
	ag.Main().TryRead(0)
	ag.Defer(0, 2, 50)
	ag.ResetAll()
	if ag.True(2) != 0 || ag.Backlog() != 0 || ag.PendingAbs() != 0 {
		t.Errorf("ResetAll incomplete: true=%d backlog=%d pending=%d",
			ag.True(2), ag.Backlog(), ag.PendingAbs())
	}
	// The structure keeps working after reset.
	ag.Tick(2)
	ag.Defer(0, 2, 7)
	ag.Tick(3)
	ag.EndCycle()
	if ag.True(2) != 7 {
		t.Errorf("post-reset defer lost: %d", ag.True(2))
	}
}

func TestAggregatedDrainRoundRobinFair(t *testing.T) {
	// Two banks saturated with deltas to distinct indices; with the main
	// port free every cycle, drains must alternate so neither bank
	// starves.
	ag := NewAggregated("x", 64, 1, "a", "b")
	for c := uint64(1); c <= 32; c++ {
		ag.Tick(c)
		ag.Defer(0, uint32(c), +1)
		ag.Defer(1, uint32(32+c), -1)
		ag.EndCycle()
	}
	// After the fill phase both banks have backlog; run idle cycles and
	// confirm both drain to zero (starvation would leave one full).
	for c := uint64(33); c <= 200; c++ {
		ag.Tick(c)
		ag.EndCycle()
	}
	if got := ag.Backlog(); got != 0 {
		t.Errorf("backlog = %d after ample idle cycles", got)
	}
}
