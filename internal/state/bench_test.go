package state

import "testing"

// Micro-benchmarks for the Figure 3 register machinery.

func BenchmarkAggregatedDeferDrain(b *testing.B) {
	ag := NewAggregated("r", 1024, 1, "enq", "deq")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := uint64(i + 1)
		ag.Tick(c)
		ag.Defer(i&1, uint32(i&1023), int64(i&0xff))
		ag.EndCycle()
	}
}

func BenchmarkArrayRMW(b *testing.B) {
	a := NewArray("r", 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Tick(uint64(i + 1))
		a.TryRMW(uint32(i&1023), func(v uint64) uint64 { return v + 1 })
	}
}
