package state

import "fmt"

// Aggregated implements the paper's Figure 3 state-update mechanism.
//
// The main register array holds the algorithmic state (e.g. per-queue or
// per-flow occupancy). Packet-event threads read and read-modify-write the
// main array directly — they have priority because a forwarding decision
// cannot wait. Lower-priority event threads (enqueue, dequeue, ...) do not
// touch the main array; each event class owns a separate single-ported
// aggregation bank in which its deltas accumulate. Whenever the main array
// has spare port bandwidth in a cycle (an idle cycle — the workload has
// larger-than-minimum packets, or the pipeline is clocked faster than line
// rate), pending aggregated deltas are drained into the main array.
//
// The main array's value can therefore be *stale*: it lags the true value
// by whatever is sitting in the aggregation banks. Staleness is bounded
// when drain bandwidth exceeds the event update rate (paper §4); the
// simulator measures it directly.
type Aggregated struct {
	main  *Array
	banks []*bank

	// drainBudget limits how many pending deltas may drain per idle main
	// port per cycle; 1 models one extra RMW per spare port.
	drained       uint64
	deferred      uint64
	dropped       uint64
	maxBacklog    int
	stalenessSum  uint64 // cycles of delay accumulated over drained deltas
	stalenessMax  uint64
	drainPriority []int // bank indices in drain order
	rrNext        int   // round-robin pointer over drainPriority

	// onDrain, when non-nil, observes each drained delta with its index
	// and the cycles it waited in its bank. Telemetry attaches here
	// without this package importing it.
	onDrain func(idx uint32, lag uint64)
}

// SetDrainHook installs the per-drain observer (nil removes it).
func (ag *Aggregated) SetDrainHook(fn func(idx uint32, lag uint64)) { ag.onDrain = fn }

// bank is one event class's aggregation register array. The physical
// memory is a 1R1W dual-ported SRAM: the event thread's read-modify-write
// uses the write side (tracked by arr's single port), and the drain logic
// uses the read side, limited to one drain per cycle (lastDrain).
type bank struct {
	name      string
	arr       *Array  // event-side port accounting
	delta     []int64 // accumulated pending delta per index
	since     []uint64
	dirty     []uint32 // FIFO of indices with non-zero pending delta
	head      int
	inq       []bool
	lastDrain uint64
}

func newBank(name string, size int) *bank {
	return &bank{
		name:      name,
		arr:       NewArray(name, size, 1),
		delta:     make([]int64, size),
		since:     make([]uint64, size),
		inq:       make([]bool, size),
		lastDrain: ^uint64(0),
	}
}

func (b *bank) backlog() int { return len(b.dirty) - b.head }

func (b *bank) pop() (uint32, bool) {
	if b.head >= len(b.dirty) {
		return 0, false
	}
	i := b.dirty[b.head]
	b.head++
	// Compact occasionally so the slice doesn't grow without bound. When a
	// past burst left the backing array far larger than the live tail,
	// reallocate at the live size instead of shifting in place — otherwise
	// a single storm pins its peak-sized slice for the rest of the run.
	if b.head > 1024 && b.head*2 > len(b.dirty) {
		live := b.dirty[b.head:]
		if cap(b.dirty) > 4096 && cap(b.dirty) > 4*len(live) {
			b.dirty = append(make([]uint32, 0, 2*len(live)), live...)
		} else {
			b.dirty = append(b.dirty[:0], live...)
		}
		b.head = 0
	}
	return i, true
}

// NewAggregated builds the Figure 3 arrangement: a main array of the given
// size with mainPorts access ports, plus one single-ported aggregation
// bank per named event class. Classes are drained in the order given
// (earlier classes have higher drain priority).
func NewAggregated(name string, size, mainPorts int, classes ...string) *Aggregated {
	if len(classes) == 0 {
		panic("state: NewAggregated needs at least one event class")
	}
	ag := &Aggregated{main: NewArray(name, size, mainPorts)}
	for i, c := range classes {
		ag.banks = append(ag.banks, newBank(name+"."+c, size))
		ag.drainPriority = append(ag.drainPriority, i)
	}
	return ag
}

// Main exposes the main array for packet-event access (reads and RMWs of
// the algorithmic state) and for monitor inspection via Peek.
func (ag *Aggregated) Main() *Array { return ag.main }

// Classes returns the number of aggregation banks.
func (ag *Aggregated) Classes() int { return len(ag.banks) }

// ClassIndex returns the bank index for a class name, or -1.
func (ag *Aggregated) ClassIndex(name string) int {
	for i, b := range ag.banks {
		want := ag.main.Name() + "." + name
		if b.name == want {
			return i
		}
	}
	return -1
}

// Defer records a delta from event class c against entry i. It consumes
// one port on the class's aggregation bank; if that bank's port budget for
// this cycle is exhausted the delta is rejected (the caller sees the event
// dropped) — with one bank per event class and at most one event of each
// class per cycle, rejection never happens, which is exactly the paper's
// provisioning argument.
func (ag *Aggregated) Defer(c int, i uint32, delta int64) bool {
	b := ag.banks[c]
	idx := i % uint32(len(b.delta))
	if _, ok := b.arr.TryRMW(idx, func(v uint64) uint64 { return v + 1 }); !ok {
		ag.dropped++
		return false
	}
	ag.deferred++
	b.delta[idx] += delta
	if !b.inq[idx] && b.delta[idx] != 0 {
		b.inq[idx] = true
		b.since[idx] = ag.mainCycle()
		b.dirty = append(b.dirty, idx)
	}
	if bl := ag.Backlog(); bl > ag.maxBacklog {
		ag.maxBacklog = bl
	}
	return true
}

func (ag *Aggregated) mainCycle() uint64 { return ag.main.cycle }

// Tick advances all memories to the given cycle. Call it at the *start* of
// each pipeline cycle, before any accesses. Drain of pending deltas into
// the main array happens inside EndCycle, which uses the ports left over
// after this cycle's packet-event accesses.
func (ag *Aggregated) Tick(cycle uint64) {
	ag.main.Tick(cycle)
	for _, b := range ag.banks {
		b.arr.Tick(cycle)
	}
}

// EndCycle applies pending aggregated deltas to the main array using any
// port bandwidth left unused this cycle. Call it at the end of each
// pipeline cycle. It returns the number of deltas drained.
func (ag *Aggregated) EndCycle() int {
	n := 0
	for ag.main.Free() > 0 {
		if !ag.drainOne() {
			break
		}
		n++
	}
	return n
}

// DrainN fast-forwards the aggregation machinery through up to max
// drain-only pipeline cycles in one call, returning how many cycles it
// consumed. Each consumed cycle replays exactly what a real cycle with no
// packet or event work would do — Tick main+banks to the next cycle, then
// the EndCycle drain loop — so the round-robin drain order, per-delta lag
// values, drain-hook callbacks, and all metrics are identical to running
// the cycles one by one. It stops early when the backlog empties (further
// idle cycles would be pure no-ops), which mirrors the switch ceasing to
// re-arm its cycle lane once no drain work remains.
func (ag *Aggregated) DrainN(max uint64) uint64 {
	var used uint64
	for used < max && ag.Backlog() > 0 {
		c := ag.main.cycle + 1
		ag.main.Tick(c)
		for _, b := range ag.banks {
			b.arr.Tick(c)
		}
		for ag.main.Free() > 0 {
			if !ag.drainOne() {
				break
			}
		}
		used++
	}
	return used
}

// drainOne pops one bank's oldest dirty index and folds its pending delta
// into the main array. Applying a delta costs one main-array port and the
// bank's drain-side read port (one drain per bank per cycle); banks are
// served round-robin so no event class starves another — the §4
// memory-access-scheduling choice this prototype makes.
func (ag *Aggregated) drainOne() bool {
	n := len(ag.drainPriority)
	for k := 0; k < n; k++ {
		ci := ag.drainPriority[(ag.rrNext+k)%n]
		b := ag.banks[ci]
		if b.backlog() == 0 || b.lastDrain == ag.mainCycle() {
			continue
		}
		idx, ok := b.pop()
		if !ok {
			continue
		}
		b.inq[idx] = false
		d := b.delta[idx]
		b.delta[idx] = 0
		b.lastDrain = ag.mainCycle()
		ag.rrNext = (ag.rrNext + k + 1) % n
		if d == 0 {
			continue // cancelled out before draining
		}
		ag.main.TryRMW(idx, func(v uint64) uint64 {
			return uint64(int64(v) + d)
		})
		lag := ag.mainCycle() - b.since[idx]
		ag.stalenessSum += lag
		if lag > ag.stalenessMax {
			ag.stalenessMax = lag
		}
		ag.drained++
		if ag.onDrain != nil {
			ag.onDrain(idx, lag)
		}
		return true
	}
	return false
}

// True returns the exact logical value of entry i: the main register plus
// every pending aggregated delta. This is what a multi-ported
// implementation would hold; the gap between True and Main().Peek is the
// staleness the paper discusses.
func (ag *Aggregated) True(i uint32) int64 {
	idx := i % uint32(ag.main.Size())
	v := int64(ag.main.Peek(idx))
	for _, b := range ag.banks {
		v += b.delta[idx]
	}
	return v
}

// Lag returns the absolute difference between the stale main value and
// the true value of entry i, in value units.
func (ag *Aggregated) Lag(i uint32) int64 {
	idx := i % uint32(ag.main.Size())
	var d int64
	for _, b := range ag.banks {
		d += b.delta[idx]
	}
	if d < 0 {
		return -d
	}
	return d
}

// ResetAll zeroes the main array and discards all pending aggregated
// deltas (a control-plane reset: the logical value becomes zero
// everywhere).
func (ag *Aggregated) ResetAll() {
	ag.main.Reset()
	for _, b := range ag.banks {
		for i := range b.delta {
			b.delta[i] = 0
			b.inq[i] = false
		}
		b.dirty = b.dirty[:0]
		b.head = 0
	}
}

// PendingAbs returns the total undrained magnitude across all banks:
// the sum over banks and indices of |pending delta|. Unlike Lag, opposite
// pending deltas in different banks do not cancel, so this is the measure
// of how far behind the drain process is.
func (ag *Aggregated) PendingAbs() int64 {
	var total int64
	for _, b := range ag.banks {
		for _, d := range b.delta {
			if d < 0 {
				total -= d
			} else {
				total += d
			}
		}
	}
	return total
}

// Backlog returns the total number of dirty (undrained) entries across all
// aggregation banks.
func (ag *Aggregated) Backlog() int {
	n := 0
	for _, b := range ag.banks {
		n += b.backlog()
	}
	return n
}

// Metrics reports drain statistics: deltas deferred, drained, and dropped
// (bank port exhausted), peak backlog, and the mean and max cycles a delta
// waited before reaching the main register.
func (ag *Aggregated) Metrics() AggMetrics {
	m := AggMetrics{
		Deferred:   ag.deferred,
		Drained:    ag.drained,
		Dropped:    ag.dropped,
		MaxBacklog: ag.maxBacklog,
		MaxLag:     ag.stalenessMax,
	}
	if ag.drained > 0 {
		m.MeanLag = float64(ag.stalenessSum) / float64(ag.drained)
	}
	return m
}

// AggMetrics summarizes an Aggregated array's behaviour over a run.
type AggMetrics struct {
	Deferred   uint64  // deltas accepted into aggregation banks
	Drained    uint64  // deltas folded into the main array
	Dropped    uint64  // deltas refused (bank port budget exhausted)
	MaxBacklog int     // peak dirty-entry count
	MeanLag    float64 // mean cycles from defer to drain
	MaxLag     uint64  // max cycles from defer to drain
}

// String formats the metrics compactly for experiment tables.
func (m AggMetrics) String() string {
	return fmt.Sprintf("deferred=%d drained=%d dropped=%d maxBacklog=%d meanLag=%.1f maxLag=%d",
		m.Deferred, m.Drained, m.Dropped, m.MaxBacklog, m.MeanLag, m.MaxLag)
}
