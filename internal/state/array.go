// Package state models the stateful memories of a PISA pipeline: register
// arrays with per-clock-cycle port budgets, and the paper's §4 mechanism
// for sharing state between event-processing threads at high line rate —
// aggregation registers that buffer low-priority event updates in
// single-ported memories and drain them into the main algorithmic state
// during idle clock cycles (Figure 3 of the paper).
//
// Memory here is cycle-accurate in the one dimension that matters for the
// paper's claims: how many accesses each physical memory can serve per
// clock cycle. A single-ported array serves one read-modify-write per
// cycle; requests beyond the budget are refused and the caller must
// arbitrate (stall, drop, or defer).
package state

import "fmt"

// Array is a register array backed by a physical memory with a fixed
// number of access ports. Each read, write, or read-modify-write consumes
// one port for the current cycle. The pipeline advances the cycle with
// Tick; accesses beyond the port budget in a cycle fail.
type Array struct {
	name   string
	vals   []uint64
	ports  int
	used   int
	cycle  uint64
	reads  uint64
	writes uint64
	denied uint64
}

// NewArray returns a register array with the given number of entries and
// access ports per cycle. ports is typically 1 (single-ported SRAM); the
// multi-ported configuration models low-line-rate devices (paper §4).
func NewArray(name string, size, ports int) *Array {
	if size <= 0 {
		panic("state: array size must be positive")
	}
	if ports <= 0 {
		panic("state: array must have at least one port")
	}
	return &Array{name: name, vals: make([]uint64, size), ports: ports}
}

// Name returns the array's configured name.
func (a *Array) Name() string { return a.name }

// Size returns the number of entries.
func (a *Array) Size() int { return len(a.vals) }

// Ports returns the per-cycle access budget.
func (a *Array) Ports() int { return a.ports }

// Tick advances the array to the given clock cycle, resetting the port
// budget. Cycles must be non-decreasing.
func (a *Array) Tick(cycle uint64) {
	if cycle < a.cycle {
		panic(fmt.Sprintf("state: %s ticked backwards (%d -> %d)", a.name, a.cycle, cycle))
	}
	if cycle != a.cycle {
		a.cycle = cycle
		a.used = 0
	}
}

// Free returns the number of unused ports remaining this cycle.
func (a *Array) Free() int { return a.ports - a.used }

// Cycle returns the clock cycle the array was last ticked to.
func (a *Array) Cycle() uint64 { return a.cycle }

// TryRead reads entry i, consuming one port. ok is false (and the value
// zero) when the port budget for this cycle is exhausted.
func (a *Array) TryRead(i uint32) (v uint64, ok bool) {
	if a.used >= a.ports {
		a.denied++
		return 0, false
	}
	a.used++
	a.reads++
	return a.vals[i%uint32(len(a.vals))], true
}

// TryWrite writes entry i, consuming one port; false when over budget.
func (a *Array) TryWrite(i uint32, v uint64) bool {
	if a.used >= a.ports {
		a.denied++
		return false
	}
	a.used++
	a.writes++
	a.vals[i%uint32(len(a.vals))] = v
	return true
}

// TryRMW atomically applies f to entry i, consuming one port (a stateful
// ALU performs read-modify-write as a single memory transaction).
func (a *Array) TryRMW(i uint32, f func(uint64) uint64) (uint64, bool) {
	if a.used >= a.ports {
		a.denied++
		return 0, false
	}
	a.used++
	a.reads++
	a.writes++
	idx := i % uint32(len(a.vals))
	a.vals[idx] = f(a.vals[idx])
	return a.vals[idx], true
}

// TryAcquire consumes one port without performing an access, opening a
// memory transaction whose reads and writes the caller performs via Peek
// and Poke. It returns false when the budget is exhausted.
func (a *Array) TryAcquire() bool {
	if a.used >= a.ports {
		a.denied++
		return false
	}
	a.used++
	return true
}

// Peek reads entry i without consuming a port. It models debug/monitor
// visibility (and the control plane's out-of-band access), not a
// data-plane read.
func (a *Array) Peek(i uint32) uint64 { return a.vals[i%uint32(len(a.vals))] }

// Poke writes entry i without consuming a port, for control-plane
// initialization and test setup.
func (a *Array) Poke(i uint32, v uint64) { a.vals[i%uint32(len(a.vals))] = v }

// Reset zeroes every entry without consuming ports (control-plane reset).
func (a *Array) Reset() {
	for i := range a.vals {
		a.vals[i] = 0
	}
}

// Stats reports lifetime access counts.
func (a *Array) Stats() (reads, writes, denied uint64) { return a.reads, a.writes, a.denied }
