package state

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Snapshot serializes the array: values, cycle, per-cycle port usage,
// and lifetime access counters.
func (a *Array) Snapshot(e *checkpoint.Encoder) {
	e.U32(uint32(len(a.vals)))
	for _, v := range a.vals {
		e.U64(v)
	}
	e.Int(a.used)
	e.U64(a.cycle)
	e.U64(a.reads)
	e.U64(a.writes)
	e.U64(a.denied)
}

// Restore loads a snapshot taken from an identically sized array. The
// cycle is set directly (Tick would refuse to move backwards from a
// partially run constructor state, and must not reset the restored port
// usage).
func (a *Array) Restore(d *checkpoint.Decoder) {
	n := int(d.U32())
	if d.Err() != nil {
		return
	}
	if n != len(a.vals) {
		d.Fail(fmt.Errorf("state: array %s: snapshot has %d entries, array has %d", a.name, n, len(a.vals)))
		return
	}
	for i := range a.vals {
		a.vals[i] = d.U64()
	}
	a.used = d.Int()
	a.cycle = d.U64()
	a.reads = d.U64()
	a.writes = d.U64()
	a.denied = d.U64()
}

// Snapshot serializes the aggregation machinery: the main array, every
// bank (deltas, dirty FIFO live region, per-index enqueue cycles), and
// the drain statistics. The dirty FIFO is written live-region-only and
// restored with head 0, which preserves pop order exactly.
func (ag *Aggregated) Snapshot(e *checkpoint.Encoder) {
	ag.main.Snapshot(e)
	e.U32(uint32(len(ag.banks)))
	for _, b := range ag.banks {
		b.arr.Snapshot(e)
		e.U32(uint32(len(b.delta)))
		for i := range b.delta {
			e.I64(b.delta[i])
			e.U64(b.since[i])
			e.Bool(b.inq[i])
		}
		live := b.dirty[b.head:]
		e.U32(uint32(len(live)))
		for _, idx := range live {
			e.U32(idx)
		}
		e.U64(b.lastDrain)
	}
	e.U64(ag.drained)
	e.U64(ag.deferred)
	e.U64(ag.dropped)
	e.Int(ag.maxBacklog)
	e.U64(ag.stalenessSum)
	e.U64(ag.stalenessMax)
	e.Int(ag.rrNext)
}

// Restore loads a snapshot taken from an identically shaped Aggregated.
func (ag *Aggregated) Restore(d *checkpoint.Decoder) {
	ag.main.Restore(d)
	nb := int(d.U32())
	if d.Err() != nil {
		return
	}
	if nb != len(ag.banks) {
		d.Fail(fmt.Errorf("state: %s: snapshot has %d banks, register has %d", ag.main.Name(), nb, len(ag.banks)))
		return
	}
	for _, b := range ag.banks {
		b.arr.Restore(d)
		n := int(d.U32())
		if d.Err() != nil {
			return
		}
		if n != len(b.delta) {
			d.Fail(fmt.Errorf("state: bank %s: snapshot has %d entries, bank has %d", b.name, n, len(b.delta)))
			return
		}
		for i := range b.delta {
			b.delta[i] = d.I64()
			b.since[i] = d.U64()
			b.inq[i] = d.Bool()
		}
		nd := int(d.U32())
		if d.Err() != nil {
			return
		}
		b.dirty = b.dirty[:0]
		for i := 0; i < nd; i++ {
			b.dirty = append(b.dirty, d.U32())
		}
		b.head = 0
		b.lastDrain = d.U64()
	}
	ag.drained = d.U64()
	ag.deferred = d.U64()
	ag.dropped = d.U64()
	ag.maxBacklog = d.Int()
	ag.stalenessSum = d.U64()
	ag.stalenessMax = d.U64()
	ag.rrNext = d.Int()
}
