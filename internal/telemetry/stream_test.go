package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry/self"
)

// emitFixture drives an identical deterministic workload into a
// collector: a few counters/gauges/histograms and two trace streams.
func emitFixture(c *Collector) {
	reg := c.Registry()
	evs := reg.Counter("sw0.events")
	occ := reg.Gauge("sw0.fifo_occupancy")
	lag := reg.Histogram("r0.commit_lag")
	a := c.Stream("sw0")
	b := c.Stream("r0")
	for i := 0; i < 500; i++ {
		evs.Add(3)
		occ.Set(int64(i % 7))
		lag.Observe(uint64(i % 33))
		if a != nil {
			a.Emit(sim.Time(i*1000), StageGen, 2, OutNone, uint64(i), uint64(i%4))
			a.Emit(sim.Time(i*1000+10), StageEnqueue, 2, OutStored, uint64(i), 0)
		}
		if b != nil {
			b.Emit(sim.Time(i*1000+20), StageCommit, KindRegister, OutNone, uint64(i), 5)
		}
	}
}

// TestLiveExportIdentical: the same workload through a live collector and
// a plain one exports byte-identical metrics, traces, and digests — the
// observability plane's core read-only guarantee at the collector layer.
func TestLiveExportIdentical(t *testing.T) {
	plain := New(Options{TraceCap: 256})
	live := New(Options{TraceCap: 256, Live: true})
	emitFixture(plain)
	emitFixture(live)
	pr := []RunExport{{Label: "fix", C: plain}}
	lr := []RunExport{{Label: "fix", C: live}}
	pm, err := EncodeMetrics(pr)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := EncodeMetrics(lr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pm, lm) {
		t.Error("metrics documents differ between live and plain collectors")
	}
	pj, _ := EncodeJSONL(pr)
	lj, _ := EncodeJSONL(lr)
	if !bytes.Equal(pj, lj) {
		t.Error("JSONL traces differ between live and plain collectors")
	}
	pc, _ := EncodeChromeTrace(pr)
	lc, _ := EncodeChromeTrace(lr)
	if !bytes.Equal(pc, lc) {
		t.Error("Chrome traces differ between live and plain collectors")
	}
	pd, _ := Digest(pr)
	ld, _ := Digest(lr)
	if pd != ld {
		t.Errorf("digests differ: %016x vs %016x", pd, ld)
	}
}

// TestLiveHotPathZeroAlloc pins the live-mode instrument hot path at zero
// allocations, mirroring TestHotPathZeroAlloc for plain mode.
func TestLiveHotPathZeroAlloc(t *testing.T) {
	c := New(Options{TraceCap: 64, Live: true})
	ctr := c.Registry().Counter("c")
	g := c.Registry().Gauge("g")
	h := c.Registry().Histogram("h")
	s := c.Stream("s")
	allocs := testing.AllocsPerRun(1000, func() {
		ctr.Add(2)
		g.Set(41)
		h.Observe(17)
		s.Emit(1234, StageGen, 1, OutNone, 7, 0)
	})
	if allocs != 0 {
		t.Errorf("live hot path allocates %v allocs/op, want 0", allocs)
	}
}

// TestStreamDrainNew checks incremental drain bookkeeping including loss
// on ring wrap between drains.
func TestStreamDrainNew(t *testing.T) {
	tr := NewTracer(4)
	tr.SetLive()
	s := tr.Stream("x")
	for i := 0; i < 3; i++ {
		s.Emit(sim.Time(i), StageGen, 1, OutNone, uint64(i), 0)
	}
	recs, lost := s.DrainNew(nil)
	if len(recs) != 3 || lost != 0 {
		t.Fatalf("first drain: %d recs, %d lost; want 3, 0", len(recs), lost)
	}
	// Emit 6 more into a 4-slot ring: 2 of them are overwritten before
	// the next drain sees them.
	for i := 3; i < 9; i++ {
		s.Emit(sim.Time(i), StageGen, 1, OutNone, uint64(i), 0)
	}
	recs, lost = s.DrainNew(nil)
	if len(recs) != 4 || lost != 2 {
		t.Fatalf("second drain: %d recs, %d lost; want 4, 2", len(recs), lost)
	}
	if recs[0].Seq != 5 || recs[3].Seq != 8 {
		t.Errorf("drained window [%d,%d], want [5,8]", recs[0].Seq, recs[3].Seq)
	}
	if recs, lost = s.DrainNew(nil); len(recs) != 0 || lost != 0 {
		t.Errorf("idle drain returned %d recs, %d lost", len(recs), lost)
	}
}

// TestStreamSinkJSONL: records and metric snapshots land on disk
// mid-run, lines parse under the EncodeJSONL / evbench-metrics/v1
// schemas, and the final trace export is unaffected by draining.
func TestStreamSinkJSONL(t *testing.T) {
	self.Reset()
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "stream.jsonl")
	metricsPath := filepath.Join(dir, "metrics.jsonl")
	sk, err := NewStreamSink(StreamOptions{TracePath: tracePath, MetricsPath: metricsPath})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{TraceCap: 1 << 12, Live: true})
	sk.Attach("trial0", c)
	emitFixture(c)
	if err := sk.Flush(); err != nil {
		t.Fatal(err)
	}
	// More records after the first flush: the next flush drains only the
	// increment.
	emitFixture(c)
	if err := sk.Close(); err != nil {
		t.Fatal(err)
	}

	// Every line in the streamed trace parses with the JSONL schema, and
	// the total matches what was emitted (ring large enough: no loss).
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scan := bufio.NewScanner(f)
	var lines int
	for scan.Scan() {
		var rec jsonlRec
		if err := json.Unmarshal(scan.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if rec.Run != "trial0" || rec.Stream == "" || rec.Stage == "" {
			t.Fatalf("line %d: incomplete record %+v", lines+1, rec)
		}
		lines++
	}
	want := int(c.Tracer().Emitted())
	if lines != want {
		t.Errorf("streamed %d trace lines, want %d", lines, want)
	}

	// Metrics lines: one evbench-metrics/v1 document per flush (first
	// flush + close's final flush).
	mf, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	mlines := bytes.Split(bytes.TrimSpace(mf), []byte("\n"))
	if len(mlines) != 2 {
		t.Fatalf("got %d metrics lines, want 2", len(mlines))
	}
	for i, ln := range mlines {
		var doc metricsDoc
		if err := json.Unmarshal(ln, &doc); err != nil {
			t.Fatalf("metrics line %d: %v", i+1, err)
		}
		if doc.Schema != MetricsSchema || len(doc.Runs) != 1 || doc.Runs[0].Label != "trial0" {
			t.Fatalf("metrics line %d: unexpected doc %+v", i+1, doc)
		}
	}

	// Draining did not disturb the rings: the post-run export matches an
	// undrained collector fed the same workload.
	ref := New(Options{TraceCap: 1 << 12, Live: true})
	emitFixture(ref)
	emitFixture(ref)
	got, _ := Digest([]RunExport{{Label: "trial0", C: c}})
	wantD, _ := Digest([]RunExport{{Label: "trial0", C: ref}})
	if got != wantD {
		t.Error("post-run digest changed by stream draining")
	}

	if self.StreamFlushes.Value() != 2 {
		t.Errorf("StreamFlushes = %d, want 2", self.StreamFlushes.Value())
	}
	if self.StreamRecords.Value() != uint64(want) {
		t.Errorf("StreamRecords = %d, want %d", self.StreamRecords.Value(), want)
	}
}

// TestStreamSinkChrome: the ".trace" path produces a valid Chrome
// trace-event array once closed.
func TestStreamSinkChrome(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.trace")
	sk, err := NewStreamSink(StreamOptions{TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{TraceCap: 256, Live: true})
	sk.Attach("t", c)
	emitFixture(c)
	if err := sk.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(b, &evs); err != nil {
		t.Fatalf("closed chrome stream is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("no events streamed")
	}
	for _, ev := range evs {
		if ev["ph"] != "i" {
			t.Fatalf("unexpected event phase %v", ev["ph"])
		}
	}
}
