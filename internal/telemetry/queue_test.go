package telemetry

import (
	"testing"

	"repro/internal/events"
)

// TestQueueAccountingIdentities drives small queues of every overflow
// policy through a deterministic mixed offer/pop schedule and checks the
// two conservation identities the events package documents — through the
// telemetry counters, which must agree with the queue's own accounting:
//
//	offered = Pushed + Coalesced + Drops   (every offer lands once)
//	Pushed  = popped + Shed + Len          (every stored event leaves once)
func TestQueueAccountingIdentities(t *testing.T) {
	policies := []struct {
		name string
		pol  events.OverflowPolicy
	}{
		{"DropNewest", events.DropNewest},
		{"DropOldest", events.DropOldest},
		{"CoalescePort", events.CoalescePort},
	}
	for _, pc := range policies {
		t.Run(pc.name, func(t *testing.T) {
			c := New(Options{})
			q := events.NewQueue(events.LinkStatusChange, 4)
			q.SetPolicy(pc.pol)
			qc := InstrumentQueue(c, "q", q)

			// xorshift keeps the schedule deterministic yet mixed: bursts
			// of offers over a small port space (to exercise coalescing)
			// interleaved with pops.
			rng := uint64(0x9e3779b97f4a7c15)
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			offered := uint64(0)
			popped := uint64(0)
			for i := 0; i < 10000; i++ {
				r := next()
				if r%3 == 0 {
					if _, ok := q.Pop(); ok {
						popped++
					}
					continue
				}
				offered++
				q.Offer(events.Event{
					Kind: events.LinkStatusChange,
					Port: int(r>>8) % 6,
					Up:   r&1 == 0,
				})
			}

			if got := qc.Offered(); got != offered {
				t.Errorf("telemetry offered = %d, want %d", got, offered)
			}
			// Telemetry counters must mirror the queue's own accounting
			// outcome for outcome.
			if qc.Stored.Value()+qc.Shed.Value() != q.Pushed() {
				t.Errorf("stored+shed = %d, queue Pushed = %d",
					qc.Stored.Value()+qc.Shed.Value(), q.Pushed())
			}
			if qc.Coalesced.Value() != q.Coalesced() {
				t.Errorf("coalesced = %d, queue Coalesced = %d", qc.Coalesced.Value(), q.Coalesced())
			}
			if qc.Dropped.Value() != q.Drops() {
				t.Errorf("dropped = %d, queue Drops = %d", qc.Dropped.Value(), q.Drops())
			}
			if qc.Shed.Value() != q.Shed() {
				t.Errorf("shed = %d, queue Shed = %d", qc.Shed.Value(), q.Shed())
			}
			// Identity 1: offered partitions exactly.
			if offered != q.Pushed()+q.Coalesced()+q.Drops() {
				t.Errorf("offered %d != Pushed %d + Coalesced %d + Drops %d",
					offered, q.Pushed(), q.Coalesced(), q.Drops())
			}
			// Identity 2: every pushed event was popped, evicted, or remains.
			if q.Pushed() != popped+q.Shed()+uint64(q.Len()) {
				t.Errorf("Pushed %d != popped %d + Shed %d + Len %d",
					q.Pushed(), popped, q.Shed(), q.Len())
			}
			// Policy-shape sanity: the schedule overflows every policy.
			switch pc.pol {
			case events.DropNewest:
				if qc.Dropped.Value() == 0 || qc.Shed.Value() != 0 || qc.Coalesced.Value() != 0 {
					t.Errorf("DropNewest shape off: %+v", qc)
				}
			case events.DropOldest:
				if qc.Shed.Value() == 0 || qc.Dropped.Value() != 0 || qc.Coalesced.Value() != 0 {
					t.Errorf("DropOldest shape off: %+v", qc)
				}
			case events.CoalescePort:
				if qc.Coalesced.Value() == 0 {
					t.Errorf("CoalescePort never coalesced: %+v", qc)
				}
			}
		})
	}
}
