package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/events"
	"repro/internal/sim"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {^uint64(0), 64},
	}
	for _, c := range cases {
		before := h.Bucket(c.bucket)
		h.Observe(c.v)
		if h.Bucket(c.bucket) != before+1 {
			t.Errorf("Observe(%d): bucket %d not incremented", c.v, c.bucket)
		}
		if c.v < BucketLow(c.bucket) || c.v > BucketHigh(c.bucket) {
			t.Errorf("value %d outside [BucketLow,BucketHigh]=[%d,%d] of bucket %d",
				c.v, BucketLow(c.bucket), BucketHigh(c.bucket), c.bucket)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
	if h.Max() != ^uint64(0) {
		t.Errorf("Max = %d, want max uint64", h.Max())
	}
	if h.MaxBucket() != 64 {
		t.Errorf("MaxBucket = %d, want 64", h.MaxBucket())
	}
	if (&Histogram{}).MaxBucket() != -1 {
		t.Error("empty histogram MaxBucket should be -1")
	}
}

func TestRegistrySnapshotOrdered(t *testing.T) {
	r := NewRegistry()
	// Create in scrambled order; snapshot must come out sorted by name.
	r.Counter("z.last").Add(3)
	r.Histogram("m.mid").Observe(5)
	r.Counter("a.first").Inc()
	r.Gauge("m.gauge").Set(-7)
	if r.Counter("a.first") != r.Counter("a.first") {
		t.Fatal("Counter not idempotent")
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot unsorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	if snap[0].Name != "a.first" || snap[0].Value != 1 {
		t.Errorf("snap[0] = %+v, want a.first counter 1", snap[0])
	}
	if snap[1].Name != "m.gauge" || snap[1].Value != -7 {
		t.Errorf("snap[1] = %+v, want m.gauge -7", snap[1])
	}
	hist := snap[2]
	if hist.Name != "m.mid" || hist.Count != 1 || hist.Sum != 5 || hist.Max != 5 {
		t.Errorf("snap[2] = %+v, want m.mid histogram count=1 sum=5 max=5", hist)
	}
	if len(hist.Buckets) != 1 || hist.Buckets[0].Low != 4 || hist.Buckets[0].High != 7 {
		t.Errorf("hist buckets = %+v, want one bucket [4,7]", hist.Buckets)
	}
}

func TestStreamRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Stream("s")
	for i := 0; i < 10; i++ {
		s.Emit(sim.Time(i), StageGen, 0, OutNone, uint64(i), 0)
	}
	if s.Emitted() != 10 {
		t.Errorf("Emitted = %d, want 10", s.Emitted())
	}
	if s.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped())
	}
	recs := s.records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	// Flight-recorder semantics: the newest 4 survive, oldest-first.
	for i, r := range recs {
		if want := uint64(6 + i); r.Seq != want {
			t.Errorf("recs[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
}

func TestTracerMergeStable(t *testing.T) {
	tr := NewTracer(8)
	a := tr.Stream("a")
	b := tr.Stream("b")
	// Same timestamp on both streams: stream creation order breaks the tie.
	b.Emit(5, StageGen, 0, OutNone, 100, 0)
	a.Emit(5, StageGen, 0, OutNone, 200, 0)
	a.Emit(1, StageGen, 0, OutNone, 300, 0)
	m := tr.merged()
	if len(m) != 3 {
		t.Fatalf("merged %d records, want 3", len(m))
	}
	if m[0].Seq != 300 {
		t.Errorf("m[0].Seq = %d, want 300 (earliest timestamp)", m[0].Seq)
	}
	if m[1].Seq != 200 || m[2].Seq != 100 {
		t.Errorf("tie at t=5 broke wrong: got %d,%d want 200 (stream a) then 100 (stream b)",
			m[1].Seq, m[2].Seq)
	}
}

// collectSample builds two identical collectors by running the same
// deterministic emission script against each.
func collectSample() *Collector {
	c := New(Options{TraceCap: 16})
	p := c.NewSwitchProbe("s0")
	rp := c.NewRegisterProbe("s0", "occ")
	e := events.Event{Kind: events.TimerExpiration, Seq: 1, Port: -1}
	p.ObserveOffer(10, e, events.Stored)
	p.ObserveSlotStart(20, 1, events.IngressPacket, true)
	p.ObserveMerge(20, 1, e, true)
	p.ObserveSlotStart(30, 2, events.IngressPacket, false)
	p.ObserveMerge(30, 2, e, false)
	rp.ObserveDrain(40, 3, 17)
	c.Registry().Gauge("sw.s0.tm.port0.bytes").Set(1500)
	return c
}

func TestExportDeterministicAndValidJSON(t *testing.T) {
	runs1 := []RunExport{{Label: "t01", C: collectSample()}, {Label: "t00", C: collectSample()}}
	// Reversed insertion order must not change any export byte.
	runs2 := []RunExport{{Label: "t00", C: collectSample()}, {Label: "t01", C: collectSample()}}

	for name, enc := range map[string]func([]RunExport) ([]byte, error){
		"metrics": EncodeMetrics, "chrome": EncodeChromeTrace, "jsonl": EncodeJSONL,
	} {
		b1, err := enc(runs1)
		if err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		b2, err := enc(runs2)
		if err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s export differs across run insertion order", name)
		}
	}

	// Chrome export must be a JSON array of objects with ph/pid/tid.
	cb, err := EncodeChromeTrace(runs1)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(cb, &evs); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("chrome trace empty")
	}
	instants := 0
	for _, ev := range evs {
		switch ev["ph"] {
		case "i":
			instants++
		case "M":
		default:
			t.Errorf("unexpected ph %v", ev["ph"])
		}
	}
	// 6 lifecycle records per run (gen, enqueue, 2 slots, 2 merges) plus
	// one commit on the register stream.
	if want := 2 * 7; instants != want {
		t.Errorf("chrome instants = %d, want %d", instants, want)
	}

	// Metrics export must round-trip and carry the schema marker.
	mb, err := EncodeMetrics(runs1)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(mb, &doc); err != nil {
		t.Fatalf("metrics doc is not valid JSON: %v", err)
	}
	if doc["schema"] != MetricsSchema {
		t.Errorf("schema = %v, want %q", doc["schema"], MetricsSchema)
	}

	// JSONL: every line a JSON object.
	jb, err := EncodeJSONL(runs1)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(jb, "\n"), []byte("\n"))
	if len(lines) != 14 {
		t.Errorf("jsonl lines = %d, want 14", len(lines))
	}
	for i, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal(ln, &obj); err != nil {
			t.Fatalf("jsonl line %d invalid: %v", i, err)
		}
	}

	d1, err := Digest(runs1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Digest(runs2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("digest differs across run insertion order")
	}

	sum, err := Summarize(runs1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 2 || sum.TraceRecords != 14 || sum.TraceDropped != 0 {
		t.Errorf("summary = %+v, want 2 runs / 14 records / 0 dropped", sum)
	}
}

func TestQueueCountersViaHook(t *testing.T) {
	c := New(Options{})
	q := events.NewQueue(events.LinkStatusChange, 2)
	q.SetPolicy(events.CoalescePort)
	qc := InstrumentQueue(c, "q.link", q)
	q.Offer(events.Event{Kind: events.LinkStatusChange, Port: 1})
	q.Offer(events.Event{Kind: events.LinkStatusChange, Port: 1}) // coalesces
	q.Offer(events.Event{Kind: events.LinkStatusChange, Port: 2})
	q.Offer(events.Event{Kind: events.LinkStatusChange, Port: 3}) // full -> drop
	if qc.Stored.Value() != 2 || qc.Coalesced.Value() != 1 || qc.Dropped.Value() != 1 {
		t.Errorf("counters stored=%d coalesced=%d dropped=%d, want 2/1/1",
			qc.Stored.Value(), qc.Coalesced.Value(), qc.Dropped.Value())
	}
	if qc.Offered() != q.Pushed()+q.Coalesced()+q.Drops() {
		t.Errorf("telemetry offered %d != queue identity %d",
			qc.Offered(), q.Pushed()+q.Coalesced()+q.Drops())
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	c := New(Options{TraceCap: 8})
	ctr := c.Registry().Counter("c")
	g := c.Registry().Gauge("g")
	h := c.Registry().Histogram("h")
	s := c.Stream("s")
	p := c.NewSwitchProbe("z")
	e := events.Event{Kind: events.TimerExpiration, Seq: 9, Port: -1}
	allocs := testing.AllocsPerRun(1000, func() {
		ctr.Add(2)
		g.Set(5)
		h.Observe(123)
		s.Emit(1, StageGen, 0, OutNone, 1, 2)
		p.ObserveOffer(10, e, events.Stored)
		p.ObserveSlotStart(20, 1, events.IngressPacket, true)
		p.ObserveMerge(20, 1, e, true)
	})
	if allocs != 0 {
		t.Errorf("hot-path telemetry allocates %v allocs/op, want 0", allocs)
	}
}
