// Package telemetry is the simulator's observability subsystem: a
// metrics registry (named counters, gauges, and fixed-boundary log2
// histograms), an event-lifecycle tracer recording bounded per-stream
// ring buffers, and deterministic exporters (Chrome/Perfetto trace-event
// JSON, JSONL, and a metrics JSON document).
//
// Everything is driven by simulated time, never the wall clock, and every
// instrument is single-writer: a counter, gauge, histogram, or trace
// stream is owned by exactly one simulation domain (the switch or
// register it instruments), so a partitioned run (sim.Partition) updates
// telemetry concurrently without locks and still exports byte-identical
// output at any domain count. The hot-path operations — Counter.Add,
// Gauge.Set, Histogram.Observe, Stream.Emit — allocate nothing; rings and
// bucket arrays are sized at construction.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Live mode: a collector built with Options.Live switches every
// instrument from plain single-writer fields to atomic operations and
// guards registry/stream bookkeeping with mutexes, so a wall-clock
// observer (the streaming sink, the HTTP introspection endpoint) can
// read mid-run without racing the simulation domains. The branch costs
// one predictable bool test per operation and the atomic path performs
// the same arithmetic, so final exports are byte-identical with live
// mode on or off — the observability plane observes, never perturbs.
// The hot path stays allocation-free in both modes.

// Counter is a monotonically increasing metric. It is owned by a single
// simulation domain; Add is a plain field increment (an atomic add in
// live mode).
type Counter struct {
	v    uint64
	live bool
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c.live {
		atomic.AddUint64(&c.v, n)
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c.live {
		return atomic.LoadUint64(&c.v)
	}
	return c.v
}

// Gauge is a point-in-time value (an occupancy, a depth). Set overwrites;
// the exported value is the last one set.
type Gauge struct {
	v    int64
	live bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g.live {
		atomic.StoreInt64(&g.v, v)
		return
	}
	g.v = v
}

// Value returns the last value set.
func (g *Gauge) Value() int64 {
	if g.live {
		return atomic.LoadInt64(&g.v)
	}
	return g.v
}

// HistBuckets is the number of fixed log2 histogram buckets: bucket 0
// holds the value 0 and bucket i (1..64) holds values v with
// 2^(i-1) <= v < 2^i, i.e. bits.Len64(v) == i.
const HistBuckets = 65

// Histogram is a fixed-boundary log2 histogram over uint64 samples.
// Observe is an array increment — no allocation, no search.
type Histogram struct {
	buckets [HistBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
	live    bool
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h.live {
		atomic.AddUint64(&h.buckets[bits.Len64(v)], 1)
		atomic.AddUint64(&h.count, 1)
		atomic.AddUint64(&h.sum, v)
		for {
			cur := atomic.LoadUint64(&h.max)
			if v <= cur || atomic.CompareAndSwapUint64(&h.max, cur, v) {
				return
			}
		}
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h.live {
		return atomic.LoadUint64(&h.count)
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h.live {
		return atomic.LoadUint64(&h.sum)
	}
	return h.sum
}

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() uint64 {
	if h.live {
		return atomic.LoadUint64(&h.max)
	}
	return h.max
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if h.live {
		return atomic.LoadUint64(&h.buckets[i])
	}
	return h.buckets[i]
}

// MaxBucket returns the index of the highest non-empty bucket, or -1 when
// the histogram is empty.
func (h *Histogram) MaxBucket() int {
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.Bucket(i) != 0 {
			return i
		}
	}
	return -1
}

// BucketLow returns the smallest value that falls in bucket i.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the largest value that falls in bucket i.
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<i - 1
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// Metric is one instrument's exported state.
type Metric struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter" | "gauge" | "histogram"
	// Value is the counter or gauge value (absent for histograms).
	Value int64 `json:"value,omitempty"`
	// Histogram fields (absent for counters and gauges).
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Max     uint64   `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry holds named instruments. Create every instrument during
// single-threaded setup; during a run the registry is read-only (probes
// hold direct pointers) so concurrent domains never touch the maps.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// live guards the maps with mu and marks every instrument live, so
	// wall-clock observers can create/read instruments concurrently with
	// the run. Set via SetLive before the run starts.
	live bool
	mu   sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetLive switches the registry (and every instrument it already holds
// or will create) to live mode. Call during single-threaded setup.
func (r *Registry) SetLive() {
	r.live = true
	for _, c := range r.counters {
		c.live = true
	}
	for _, g := range r.gauges {
		g.live = true
	}
	for _, h := range r.hists {
		h.live = true
	}
}

// Live reports whether the registry is in live mode.
func (r *Registry) Live() bool { return r.live }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r.live {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{live: r.live}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r.live {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{live: r.live}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r.live {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{live: r.live}
	r.hists[name] = h
	return h
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	if r.live {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return len(r.counters) + len(r.gauges) + len(r.hists)
}

// Snapshot returns every instrument's state sorted by name (type breaks
// the tie), so two registries built by the same run always export
// byte-identical metric lists regardless of map iteration order.
//
// In live mode a snapshot may be taken mid-run: each field is read
// atomically, and a histogram's Count is derived as the sum of its
// bucket reads so the count-equals-bucket-sum invariant holds even when
// the snapshot lands between an Observe's bucket and count increments.
// At quiescence (final export) the derived count equals the stored one,
// so live mode never changes exported bytes.
func (r *Registry) Snapshot() []Metric {
	if r.live {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Value: int64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Type: "histogram", Sum: h.Sum(), Max: h.Max()}
		for i := 0; i < HistBuckets; i++ {
			if n := h.Bucket(i); n != 0 {
				m.Buckets = append(m.Buckets, Bucket{
					Low: BucketLow(i), High: BucketHigh(i), Count: n,
				})
				m.Count += n
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}
