// Package telemetry is the simulator's observability subsystem: a
// metrics registry (named counters, gauges, and fixed-boundary log2
// histograms), an event-lifecycle tracer recording bounded per-stream
// ring buffers, and deterministic exporters (Chrome/Perfetto trace-event
// JSON, JSONL, and a metrics JSON document).
//
// Everything is driven by simulated time, never the wall clock, and every
// instrument is single-writer: a counter, gauge, histogram, or trace
// stream is owned by exactly one simulation domain (the switch or
// register it instruments), so a partitioned run (sim.Partition) updates
// telemetry concurrently without locks and still exports byte-identical
// output at any domain count. The hot-path operations — Counter.Add,
// Gauge.Set, Histogram.Observe, Stream.Emit — allocate nothing; rings and
// bucket arrays are sized at construction.
package telemetry

import (
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing metric. It is owned by a single
// simulation domain; Add is a plain field increment.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value (an occupancy, a depth). Set overwrites;
// the exported value is the last one set.
type Gauge struct{ v int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) { g.v = v }

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v }

// HistBuckets is the number of fixed log2 histogram buckets: bucket 0
// holds the value 0 and bucket i (1..64) holds values v with
// 2^(i-1) <= v < 2^i, i.e. bits.Len64(v) == i.
const HistBuckets = 65

// Histogram is a fixed-boundary log2 histogram over uint64 samples.
// Observe is an array increment — no allocation, no search.
type Histogram struct {
	buckets [HistBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// MaxBucket returns the index of the highest non-empty bucket, or -1 when
// the histogram is empty.
func (h *Histogram) MaxBucket() int {
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.buckets[i] != 0 {
			return i
		}
	}
	return -1
}

// BucketLow returns the smallest value that falls in bucket i.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the largest value that falls in bucket i.
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<i - 1
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// Metric is one instrument's exported state.
type Metric struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter" | "gauge" | "histogram"
	// Value is the counter or gauge value (absent for histograms).
	Value int64 `json:"value,omitempty"`
	// Histogram fields (absent for counters and gauges).
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Max     uint64   `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry holds named instruments. Create every instrument during
// single-threaded setup; during a run the registry is read-only (probes
// hold direct pointers) so concurrent domains never touch the maps.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	return len(r.counters) + len(r.gauges) + len(r.hists)
}

// Snapshot returns every instrument's state sorted by name (type breaks
// the tie), so two registries built by the same run always export
// byte-identical metric lists regardless of map iteration order.
func (r *Registry) Snapshot() []Metric {
	out := make([]Metric, 0, r.Len())
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Value: int64(c.v)})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Value: g.v})
	}
	for name, h := range r.hists {
		m := Metric{Name: name, Type: "histogram", Count: h.count, Sum: h.sum, Max: h.max}
		for i := 0; i < HistBuckets; i++ {
			if h.buckets[i] != 0 {
				m.Buckets = append(m.Buckets, Bucket{
					Low: BucketLow(i), High: BucketHigh(i), Count: h.buckets[i],
				})
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}
