package telemetry

import (
	"repro/internal/events"
	"repro/internal/sim"
)

// QueueCounters mirror one event FIFO's overflow accounting: every
// offered event lands in exactly one of the four counters, so
//
//	offered = Stored + Coalesced + Shed + Dropped
//
// matches the queue's own identity offered = Pushed + Coalesced + Drops
// with Pushed = Stored + Shed (a shed eviction still stores the newcomer).
type QueueCounters struct {
	Stored, Coalesced, Shed, Dropped *Counter
}

// Observe counts one Offer outcome.
func (qc QueueCounters) Observe(out events.Outcome) {
	switch out {
	case events.Stored:
		qc.Stored.Inc()
	case events.Coalesced:
		qc.Coalesced.Inc()
	case events.StoredShed:
		qc.Shed.Inc()
	case events.Dropped:
		qc.Dropped.Inc()
	}
}

// Offered sums the four outcome counters.
func (qc QueueCounters) Offered() uint64 {
	return qc.Stored.Value() + qc.Coalesced.Value() + qc.Shed.Value() + qc.Dropped.Value()
}

// NewQueueCounters creates the four outcome counters under prefix
// (prefix + ".stored", ".coalesced", ".shed", ".dropped").
func (c *Collector) NewQueueCounters(prefix string) QueueCounters {
	r := c.reg
	return QueueCounters{
		Stored:    r.Counter(prefix + ".stored"),
		Coalesced: r.Counter(prefix + ".coalesced"),
		Shed:      r.Counter(prefix + ".shed"),
		Dropped:   r.Counter(prefix + ".dropped"),
	}
}

// InstrumentQueue attaches outcome counters to a standalone event queue
// via its OnOutcome hook and returns them. (core.Switch does not use the
// hook — its probe observes outcomes directly in pushEvent, which also
// stamps trace records with the event's sequence number.)
func InstrumentQueue(c *Collector, prefix string, q *events.Queue) QueueCounters {
	qc := c.NewQueueCounters(prefix)
	q.OnOutcome = func(_ events.Event, out events.Outcome) { qc.Observe(out) }
	return qc
}

// eventKindName names a Table 1 event kind byte for export.
func eventKindName(k uint8) string {
	return events.Kind(k).String()
}

// outcomeOf maps a queue outcome to a trace outcome.
func outcomeOf(out events.Outcome) Outcome {
	switch out {
	case events.Stored:
		return OutStored
	case events.Coalesced:
		return OutCoalesced
	case events.StoredShed:
		return OutShed
	case events.Dropped:
		return OutDropped
	}
	return OutNone
}

// SwitchProbe bundles the pre-resolved instruments for one switch so the
// switch's hot path updates telemetry with field increments — no name
// lookups, no allocation. Built by Collector.NewSwitchProbe during setup;
// written only by the switch's own simulation domain.
type SwitchProbe struct {
	// Stream is the switch's trace stream (nil when tracing is off).
	Stream *Stream

	Cycles      *Counter // pipeline cycles executed
	PacketSlots *Counter // slots carrying a real packet
	EmptySlots  *Counter // injected empty metadata carriers
	DrainSlots  *Counter // pure aggregation-drain cycles

	// Piggybacked/Injected split the merger's per-event decision: the
	// event rode a packet slot, or forced an empty-packet slot.
	Piggybacked *Counter
	Injected    *Counter

	// Merged counts events delivered to the program, per kind.
	Merged [events.NumKinds]*Counter
	// Enq counts each kind's FIFO offer outcomes.
	Enq [events.NumKinds]QueueCounters
}

// NewSwitchProbe creates a switch's instruments under "sw.<name>.".
func (c *Collector) NewSwitchProbe(name string) *SwitchProbe {
	r := c.reg
	pre := "sw." + name + "."
	p := &SwitchProbe{
		Stream:      c.Stream("sw." + name),
		Cycles:      r.Counter(pre + "cycles"),
		PacketSlots: r.Counter(pre + "slots.packet"),
		EmptySlots:  r.Counter(pre + "slots.empty"),
		DrainSlots:  r.Counter(pre + "slots.drain"),
		Piggybacked: r.Counter(pre + "merger.piggybacked"),
		Injected:    r.Counter(pre + "merger.injected"),
	}
	for k := 0; k < events.NumKinds; k++ {
		kn := events.Kind(k).String()
		p.Merged[k] = r.Counter(pre + "ev." + kn + ".merged")
		p.Enq[k] = c.NewQueueCounters(pre + "ev." + kn)
	}
	return p
}

// ObserveOffer records one event's generation and FIFO outcome: the
// StageGen and StageEnqueue lifecycle stamps plus the outcome counter.
func (p *SwitchProbe) ObserveOffer(at sim.Time, e events.Event, out events.Outcome) {
	p.Enq[e.Kind].Observe(out)
	if p.Stream != nil {
		p.Stream.Emit(at, StageGen, uint8(e.Kind), OutNone, e.Seq, uint64(int64(e.Port)))
		p.Stream.Emit(at, StageEnqueue, uint8(e.Kind), outcomeOf(out), e.Seq, 0)
	}
}

// ObserveSlotStart records a slot entering the pipeline: a packet slot
// (StageSlot stamped with the packet kind and cycle) or an injected
// empty carrier.
func (p *SwitchProbe) ObserveSlotStart(at sim.Time, cycle uint64, pktKind events.Kind, havePkt bool) {
	if havePkt {
		p.PacketSlots.Inc()
		if p.Stream != nil {
			p.Stream.Emit(at, StageSlot, uint8(pktKind), OutPiggyback, cycle, 0)
		}
		return
	}
	p.EmptySlots.Inc()
	if p.Stream != nil {
		p.Stream.Emit(at, StageSlot, uint8(pktKind), OutInjected, cycle, 0)
	}
}

// ObserveMerge records the merger attaching one queued event to the
// current slot: piggybacked onto a packet, or carried by an injected
// empty packet.
func (p *SwitchProbe) ObserveMerge(at sim.Time, cycle uint64, e events.Event, havePkt bool) {
	out := OutPiggyback
	ctr := p.Piggybacked
	if !havePkt {
		out = OutInjected
		ctr = p.Injected
	}
	ctr.Inc()
	if p.Stream != nil {
		p.Stream.Emit(at, StageMerge, uint8(e.Kind), out, e.Seq, cycle)
	}
}

// RegisterProbe instruments one aggregated shared register: the
// staleness histogram (cycles a delta waited in its aggregation bank
// before draining into the main array, the paper's §4 bounded-staleness
// figure) and the commit trace stream.
type RegisterProbe struct {
	Stream  *Stream
	Lag     *Histogram // cycles buffered before drain
	Drained *Counter
}

// NewRegisterProbe creates a register's instruments under
// "sw.<sw>.reg.<reg>.".
func (c *Collector) NewRegisterProbe(sw, reg string) *RegisterProbe {
	pre := "sw." + sw + ".reg." + reg + "."
	return &RegisterProbe{
		Stream:  c.Stream("sw." + sw + ".reg." + reg),
		Lag:     c.reg.Histogram(pre + "staleness.cycles"),
		Drained: c.reg.Counter(pre + "drained"),
	}
}

// ObserveDrain records one delta draining into the main array after
// waiting lag cycles.
func (p *RegisterProbe) ObserveDrain(at sim.Time, idx uint32, lag uint64) {
	p.Drained.Inc()
	p.Lag.Observe(lag)
	if p.Stream != nil {
		p.Stream.Emit(at, StageCommit, KindRegister, OutNone, uint64(idx), lag)
	}
}
