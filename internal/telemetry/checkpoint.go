package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/sim"
)

// SnapshotTo serializes every instrument by name (sorted, so the section
// is deterministic) plus, when tracing is on, every stream's ring
// content. Restore pours the values back into instruments re-created by
// the rebuilt simulation's construction path, so names must match.
func (c *Collector) SnapshotTo(e *checkpoint.Encoder) {
	r := c.reg
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.String(n)
		e.U64(r.counters[n].v)
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.String(n)
		e.I64(r.gauges[n].v)
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.String(n)
		h := r.hists[n]
		for i := range h.buckets {
			e.U64(h.buckets[i])
		}
		e.U64(h.count)
		e.U64(h.sum)
		e.U64(h.max)
	}
	if c.tracer == nil {
		e.U32(0)
		return
	}
	e.U32(uint32(len(c.tracer.streams)))
	for _, s := range c.tracer.streams {
		e.String(s.name)
		e.U64(s.n)
		n := s.n
		if n > uint64(len(s.ring)) {
			n = uint64(len(s.ring))
		}
		e.U32(uint32(n))
		for _, rec := range s.records() {
			e.I64(int64(rec.At))
			e.U64(rec.Seq)
			e.U64(rec.Arg)
			e.U8(rec.Kind)
			e.U8(uint8(rec.Stg))
			e.U8(uint8(rec.Out))
		}
	}
}

// RestoreFrom loads a snapshot into this collector. Every snapshotted
// instrument and stream must already exist (created by the rebuilt
// simulation during construction); an unknown name means the restored
// run was built differently from the checkpointed one.
func (c *Collector) RestoreFrom(d *checkpoint.Decoder) {
	r := c.reg
	nc := int(d.U32())
	for i := 0; i < nc && d.Err() == nil; i++ {
		n := d.String()
		v := d.U64()
		ctr, ok := r.counters[n]
		if !ok {
			d.Fail(fmt.Errorf("telemetry: snapshot counter %q not present in rebuilt run", n))
			return
		}
		ctr.v = v
	}
	ng := int(d.U32())
	for i := 0; i < ng && d.Err() == nil; i++ {
		n := d.String()
		v := d.I64()
		g, ok := r.gauges[n]
		if !ok {
			d.Fail(fmt.Errorf("telemetry: snapshot gauge %q not present in rebuilt run", n))
			return
		}
		g.v = v
	}
	nh := int(d.U32())
	for i := 0; i < nh && d.Err() == nil; i++ {
		n := d.String()
		h, ok := r.hists[n]
		if !ok {
			d.Fail(fmt.Errorf("telemetry: snapshot histogram %q not present in rebuilt run", n))
			return
		}
		for bi := range h.buckets {
			h.buckets[bi] = d.U64()
		}
		h.count = d.U64()
		h.sum = d.U64()
		h.max = d.U64()
	}
	ns := int(d.U32())
	if d.Err() != nil {
		return
	}
	if ns > 0 && c.tracer == nil {
		d.Fail(fmt.Errorf("telemetry: snapshot has %d trace streams but tracing is disabled in rebuilt run", ns))
		return
	}
	for i := 0; i < ns && d.Err() == nil; i++ {
		name := d.String()
		total := d.U64()
		kept := int(d.U32())
		if d.Err() != nil {
			return
		}
		s := c.tracer.Stream(name)
		if kept > len(s.ring) {
			d.Fail(fmt.Errorf("telemetry: stream %q: snapshot keeps %d records, ring holds %d", name, kept, len(s.ring)))
			return
		}
		// Replay the retained records oldest-first through Emit-equivalent
		// writes, then pin the emitted total so Dropped() matches.
		for j := 0; j < kept; j++ {
			s.ring[j] = Rec{
				At:   sim.Time(d.I64()),
				Seq:  d.U64(),
				Arg:  d.U64(),
				Kind: d.U8(),
				Stg:  Stage(d.U8()),
				Out:  Outcome(d.U8()),
			}
		}
		// Lay the ring out so the next Emit lands where the original run's
		// would: records occupy [0, kept) and n ≡ position of next write.
		// For an unwrapped ring n == kept and the layout is identical; for
		// a wrapped ring the original layout is a rotation, which records()
		// normalizes on export, so exports stay byte-identical.
		if total <= uint64(len(s.ring)) {
			s.n = total
		} else {
			// Rotate so that physical slot (n % len) is the oldest record,
			// matching where the original ring's next write would land.
			rot := int(total % uint64(len(s.ring)))
			rotated := make([]Rec, len(s.ring))
			for j := 0; j < kept; j++ {
				rotated[(rot+j)%len(s.ring)] = s.ring[j]
			}
			copy(s.ring, rotated)
			s.n = total
		}
	}
}
