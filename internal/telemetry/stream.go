package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry/self"
)

// StreamSink incrementally flushes trace records and metric snapshots to
// disk while the run executes, so long campaigns leave observable output
// before they finish (the ROADMAP's evsimd item: stream telemetry
// incrementally instead of post-run). A sink drains each attached
// collector's trace rings on a wall-clock ticker (or whenever the host
// calls Flush, e.g. from a sim-time Every callback), writing:
//
//   - trace records as JSONL lines with exactly the EncodeJSONL schema
//     (run/stream/ts_ps/stage/kind/outcome/seq/arg), or as an
//     incrementally-grown Chrome trace-event array when the path ends in
//     ".json" / ".trace";
//   - one compact "evbench-metrics/v1" document per flush as a JSONL
//     line in the metrics file.
//
// Both outputs are append-only, so a crash mid-flush leaves at most one
// torn final record — the same tolerance contract as bench.Journal, and
// what cmd/tracecheck's truncated-file mode accepts. Collectors attached
// to a sink must be built with Options.Live; draining never disturbs the
// rings, so the run's post-run exports are byte-identical with a sink
// attached or not.
type StreamSink struct {
	mu      sync.Mutex
	entries []sinkEntry

	traceW   *bufio.Writer
	traceF   *os.File
	chrome   bool
	wroteAny bool // chrome: whether a first event needs no leading comma
	metricsW *bufio.Writer
	metricsF *os.File

	buf    []Rec
	ticker *time.Ticker
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
	err    error
}

type sinkEntry struct {
	label string
	c     *Collector
	pid   int // Chrome "process" id: distinguishes same-id streams across collectors
}

// StreamOptions configures a StreamSink.
type StreamOptions struct {
	// TracePath receives trace records; empty disables trace streaming.
	// A ".json" or ".trace" suffix selects the incremental Chrome array
	// format, anything else JSONL.
	TracePath string
	// MetricsPath receives one metrics-document line per flush; empty
	// disables metric streaming.
	MetricsPath string
	// Interval is the wall-clock flush period for Start; 0 means the
	// host drives flushes itself via Flush.
	Interval time.Duration
}

// chromePath reports whether path selects the Chrome array format.
func chromePath(path string) bool {
	return strings.HasSuffix(path, ".json") || strings.HasSuffix(path, ".trace")
}

// NewStreamSink opens the output files. At least one path must be set.
func NewStreamSink(opts StreamOptions) (*StreamSink, error) {
	if opts.TracePath == "" && opts.MetricsPath == "" {
		return nil, fmt.Errorf("telemetry: stream sink needs a trace or metrics path")
	}
	sk := &StreamSink{done: make(chan struct{})}
	if opts.TracePath != "" {
		f, err := os.Create(opts.TracePath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		sk.traceF = f
		sk.traceW = bufio.NewWriter(f)
		sk.chrome = chromePath(opts.TracePath)
		if sk.chrome {
			sk.traceW.WriteString("[\n")
		}
	}
	if opts.MetricsPath != "" {
		f, err := os.Create(opts.MetricsPath)
		if err != nil {
			if sk.traceF != nil {
				sk.traceF.Close()
			}
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		sk.metricsF = f
		sk.metricsW = bufio.NewWriter(f)
	}
	if opts.Interval > 0 {
		sk.ticker = time.NewTicker(opts.Interval)
		sk.wg.Add(1)
		go func() {
			defer sk.wg.Done()
			for {
				select {
				case <-sk.done:
					return
				case <-sk.ticker.C:
					sk.Flush()
				}
			}
		}()
	}
	return sk, nil
}

// Attach registers a labelled collector with the sink. The collector
// must be in live mode (Options.Live). Safe to call while the sink is
// flushing — trials attach as they start.
func (sk *StreamSink) Attach(label string, c *Collector) {
	if !c.Registry().Live() {
		panic("telemetry: StreamSink.Attach needs a live collector (Options.Live)")
	}
	sk.mu.Lock()
	sk.entries = append(sk.entries, sinkEntry{label, c, len(sk.entries)})
	sk.mu.Unlock()
}

// Flush drains every attached collector's streams and writes one metrics
// snapshot line. Serialized internally; safe from any goroutine.
func (sk *StreamSink) Flush() error {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return sk.flushLocked()
}

func (sk *StreamSink) flushLocked() error {
	if sk.err != nil {
		return sk.err
	}
	// Stable order: label, then stream creation order within a collector.
	entries := append([]sinkEntry(nil), sk.entries...)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].label < entries[j].label })
	var wrote uint64
	for _, e := range entries {
		t := e.c.Tracer()
		if t == nil || sk.traceW == nil {
			continue
		}
		streams := t.Streams()
		for _, s := range streams {
			var lost uint64
			sk.buf, lost = s.DrainNew(sk.buf[:0])
			if lost > 0 {
				self.StreamLost.Add(lost)
			}
			for _, rec := range sk.buf {
				if err := sk.writeRec(e, s, rec); err != nil {
					sk.err = err
					return err
				}
				wrote++
			}
		}
	}
	if sk.metricsW != nil {
		if err := sk.writeMetricsLine(entries); err != nil {
			sk.err = err
			return err
		}
	}
	if sk.traceW != nil {
		if err := sk.traceW.Flush(); err != nil {
			sk.err = err
			return err
		}
	}
	if sk.metricsW != nil {
		if err := sk.metricsW.Flush(); err != nil {
			sk.err = err
			return err
		}
	}
	self.StreamFlushes.Inc()
	self.StreamRecords.Add(wrote)
	return nil
}

// jsonlRec mirrors EncodeJSONL's per-line schema exactly, so streamed
// and post-run JSONL traces are line-compatible.
type jsonlRec struct {
	Run     string `json:"run"`
	Stream  string `json:"stream"`
	TsPs    int64  `json:"ts_ps"`
	Stage   string `json:"stage"`
	Kind    string `json:"kind"`
	Outcome string `json:"outcome,omitempty"`
	Seq     uint64 `json:"seq"`
	Arg     uint64 `json:"arg"`
}

func (sk *StreamSink) writeRec(e sinkEntry, s *Stream, rec Rec) error {
	if sk.chrome {
		ev := chromeEvent{
			Name: recName(flatRec{Rec: rec}), Ph: "i", S: "t",
			Ts:  float64(rec.At) / 1e6,
			Pid: e.pid, Tid: int(s.id),
			Args: recArgs(flatRec{Rec: rec}),
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if sk.wroteAny {
			sk.traceW.WriteString(",\n")
		}
		sk.wroteAny = true
		_, err = sk.traceW.Write(b)
		return err
	}
	b, err := json.Marshal(jsonlRec{
		Run: e.label, Stream: s.Name(),
		TsPs: int64(rec.At), Stage: rec.Stg.String(),
		Kind: kindName(rec.Kind), Outcome: rec.Out.String(),
		Seq: rec.Seq, Arg: rec.Arg,
	})
	if err != nil {
		return err
	}
	sk.traceW.Write(b)
	return sk.traceW.WriteByte('\n')
}

// writeMetricsLine appends one compact metrics document line covering
// every attached collector's current snapshot.
func (sk *StreamSink) writeMetricsLine(entries []sinkEntry) error {
	doc := metricsDoc{Schema: MetricsSchema, Runs: []metricsRun{}}
	for _, e := range entries {
		mr := metricsRun{Label: e.label, Metrics: e.c.Registry().Snapshot()}
		if t := e.c.Tracer(); t != nil {
			mr.TraceRecords = t.Emitted()
			mr.TraceDropped = t.Dropped()
		}
		doc.Runs = append(doc.Runs, mr)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	sk.metricsW.Write(b)
	return sk.metricsW.WriteByte('\n')
}

// Close performs a final flush, terminates the Chrome array cleanly, and
// closes the files. Call after the run quiesces and before post-run
// exports, so every emitted record lands in the streamed files.
func (sk *StreamSink) Close() error {
	sk.mu.Lock()
	if sk.closed {
		sk.mu.Unlock()
		return sk.err
	}
	sk.closed = true
	close(sk.done)
	if sk.ticker != nil {
		sk.ticker.Stop()
	}
	sk.mu.Unlock()
	sk.wg.Wait()

	sk.mu.Lock()
	defer sk.mu.Unlock()
	sk.flushLocked()
	if sk.traceW != nil {
		if sk.chrome {
			sk.traceW.WriteString("\n]\n")
		}
		if err := sk.traceW.Flush(); err != nil && sk.err == nil {
			sk.err = err
		}
		if err := sk.traceF.Close(); err != nil && sk.err == nil {
			sk.err = err
		}
	}
	if sk.metricsW != nil {
		if err := sk.metricsW.Flush(); err != nil && sk.err == nil {
			sk.err = err
		}
		if err := sk.metricsF.Close(); err != nil && sk.err == nil {
			sk.err = err
		}
	}
	return sk.err
}
