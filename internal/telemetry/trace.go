package telemetry

import (
	"sort"
	"sync"

	"repro/internal/sim"
)

// Stage identifies where in an event's lifecycle a trace record was
// stamped. The five stages follow one data-plane event from its hardware
// source to its effect on state:
//
//	StageGen     — the source generated the event
//	StageEnqueue — the merger FIFO's overflow policy decided its fate
//	StageMerge   — the Event Merger attached it to a pipeline slot
//	StageSlot    — a slot (packet or injected empty carrier) entered the
//	               pipeline; stamped once per slot for the slot's packet
//	StageCommit  — an aggregated register delta drained into the main
//	               array (stamped on the register's stream)
type Stage uint8

// The lifecycle stages, in pipeline order.
const (
	StageGen Stage = iota
	StageEnqueue
	StageMerge
	StageSlot
	StageCommit

	numStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageGen:
		return "gen"
	case StageEnqueue:
		return "enqueue"
	case StageMerge:
		return "merge"
	case StageSlot:
		return "slot"
	case StageCommit:
		return "commit"
	default:
		return "stage?"
	}
}

// Outcome qualifies a stage: what the queue did with the event, or how
// the merger carried it.
type Outcome uint8

// Stage outcomes.
const (
	OutNone      Outcome = iota
	OutStored            // enqueue: appended to the FIFO
	OutCoalesced         // enqueue: merged into a pending same-port event
	OutShed              // enqueue: stored after evicting the oldest
	OutDropped           // enqueue: FIFO full, event lost
	OutPiggyback         // merge: rode a real packet's slot
	OutInjected          // merge: carried by an injected empty packet
)

// String names the outcome ("" for OutNone).
func (o Outcome) String() string {
	switch o {
	case OutStored:
		return "stored"
	case OutCoalesced:
		return "coalesced"
	case OutShed:
		return "shed"
	case OutDropped:
		return "dropped"
	case OutPiggyback:
		return "piggyback"
	case OutInjected:
		return "injected"
	default:
		return ""
	}
}

// Rec is one trace record: a lifecycle stage stamp. Records are plain
// values (no pointers) so a ring of them costs one allocation for its
// whole lifetime.
type Rec struct {
	At   sim.Time // simulated instant of the stamp
	Seq  uint64   // the event's per-switch sequence number (or cycle for StageSlot, index for StageCommit)
	Arg  uint64   // stage-specific: port for gen, cycle for merge, lag for commit
	Kind uint8    // events.Kind, or KindRegister for register streams
	Stg  Stage
	Out  Outcome
}

// KindRegister marks records on register streams (StageCommit), which
// describe state drains rather than a Table 1 event kind.
const KindRegister = 0xff

// Stream is one component's bounded trace ring (flight-recorder
// semantics: when full, the oldest records are overwritten). A stream has
// exactly one writing domain.
type Stream struct {
	id   int32
	name string
	ring []Rec
	n    uint64 // total records emitted (>= len(ring) once wrapped)

	// live mode (streaming sink or HTTP observer attached): mu guards
	// ring/n/flushed so a wall-clock drainer can read concurrently with
	// the owning domain's Emits. flushed counts records already handed
	// to DrainNew.
	live    bool
	mu      sync.Mutex
	flushed uint64
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Emit appends one record, overwriting the oldest when the ring is full.
func (s *Stream) Emit(at sim.Time, stg Stage, kind uint8, out Outcome, seq, arg uint64) {
	if s.live {
		s.mu.Lock()
		s.ring[s.n%uint64(len(s.ring))] = Rec{At: at, Seq: seq, Arg: arg, Kind: kind, Stg: stg, Out: out}
		s.n++
		s.mu.Unlock()
		return
	}
	s.ring[s.n%uint64(len(s.ring))] = Rec{At: at, Seq: seq, Arg: arg, Kind: kind, Stg: stg, Out: out}
	s.n++
}

// Emitted returns the total number of records emitted.
func (s *Stream) Emitted() uint64 {
	if s.live {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.n
}

// Dropped returns how many records were overwritten by ring wrap-around.
func (s *Stream) Dropped() uint64 {
	if s.live {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.droppedLocked()
}

func (s *Stream) droppedLocked() uint64 {
	if s.n <= uint64(len(s.ring)) {
		return 0
	}
	return s.n - uint64(len(s.ring))
}

// DrainNew appends to dst every record emitted since the previous drain
// that is still retained, oldest-first, and returns the extended slice
// plus the number of records lost — emitted and already overwritten
// before this drain could see them. It is the streaming sink's read
// primitive; safe to call concurrently with Emit only in live mode.
// Draining never disturbs the ring, so post-run exports are unaffected.
func (s *Stream) DrainNew(dst []Rec) ([]Rec, uint64) {
	if s.live {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	start := s.flushed
	var lost uint64
	if over := s.droppedLocked(); over > start {
		lost = over - start
		start = over
	}
	for i := start; i < s.n; i++ {
		dst = append(dst, s.ring[i%uint64(len(s.ring))])
	}
	s.flushed = s.n
	return dst, lost
}

// records returns the retained records oldest-first.
func (s *Stream) records() []Rec {
	if s.live {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if s.n <= uint64(len(s.ring)) {
		return s.ring[:s.n]
	}
	out := make([]Rec, 0, len(s.ring))
	head := int(s.n % uint64(len(s.ring)))
	out = append(out, s.ring[head:]...)
	out = append(out, s.ring[:head]...)
	return out
}

// Tracer owns the trace streams of one collector. Streams are created
// during single-threaded setup (creation order must be deterministic —
// it is part of the exported identity) and written each by its own
// domain during the run.
type Tracer struct {
	perStream int
	streams   []*Stream

	// live guards stream creation/listing with mu and marks new streams
	// live; see Registry.SetLive.
	live bool
	mu   sync.Mutex
}

// NewTracer builds a tracer whose streams each retain up to perStream
// records.
func NewTracer(perStream int) *Tracer {
	if perStream <= 0 {
		perStream = 1 << 12
	}
	return &Tracer{perStream: perStream}
}

// SetLive switches the tracer and its streams (existing and future) to
// live mode. Call during single-threaded setup.
func (t *Tracer) SetLive() {
	t.live = true
	for _, s := range t.streams {
		s.live = true
	}
}

// Stream creates (or returns) the named stream. Stream ids are assigned
// in creation order.
func (t *Tracer) Stream(name string) *Stream {
	if t.live {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	for _, s := range t.streams {
		if s.name == name {
			return s
		}
	}
	s := &Stream{id: int32(len(t.streams)), name: name, ring: make([]Rec, t.perStream), live: t.live}
	t.streams = append(t.streams, s)
	return s
}

// Streams lists the streams in creation order (a copy in live mode, so
// callers can iterate while another goroutine creates streams).
func (t *Tracer) Streams() []*Stream {
	if t.live {
		t.mu.Lock()
		defer t.mu.Unlock()
		return append([]*Stream(nil), t.streams...)
	}
	return t.streams
}

// Emitted returns the total records emitted across all streams.
func (t *Tracer) Emitted() uint64 {
	var n uint64
	for _, s := range t.Streams() {
		n += s.Emitted()
	}
	return n
}

// Dropped returns the total records lost to ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for _, s := range t.Streams() {
		n += s.Dropped()
	}
	return n
}

// flatRec is a record tagged with its stream for merged export.
type flatRec struct {
	Rec
	stream int32
}

// merged returns every retained record across streams, ordered by
// timestamp with ties broken by (stream creation order, emission order) —
// a stable merge, so the result is a pure function of each stream's
// deterministic content and the deterministic stream creation order. No
// goroutine interleaving can affect it.
func (t *Tracer) merged() []flatRec {
	streams := t.Streams()
	var total int
	for _, s := range streams {
		n := s.Emitted()
		if n > uint64(len(s.ring)) {
			n = uint64(len(s.ring))
		}
		total += int(n)
	}
	out := make([]flatRec, 0, total)
	for _, s := range streams {
		for _, r := range s.records() {
			out = append(out, flatRec{Rec: r, stream: s.id})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
