package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
)

// RunExport is one labelled collector in a multi-run export (one per
// experiment trial). Exporters sort runs by label, so output is
// independent of the order trials finished in.
type RunExport struct {
	Label string
	C     *Collector
}

// sortRuns returns runs ordered by label without mutating the input.
func sortRuns(runs []RunExport) []RunExport {
	out := append([]RunExport(nil), runs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// metricsDoc is the on-disk metrics schema ("evbench-metrics/v1").
type metricsDoc struct {
	Schema string       `json:"schema"`
	Runs   []metricsRun `json:"runs"`
}

type metricsRun struct {
	Label        string   `json:"label"`
	Metrics      []Metric `json:"metrics"`
	TraceRecords uint64   `json:"trace_records"`
	TraceDropped uint64   `json:"trace_dropped"`
}

// MetricsSchema names the metrics document schema version.
const MetricsSchema = "evbench-metrics/v1"

// EncodeMetrics renders the labelled collectors' registries as an
// indented "evbench-metrics/v1" JSON document. Output is a pure function
// of each collector's deterministic state and its label.
func EncodeMetrics(runs []RunExport) ([]byte, error) {
	doc := metricsDoc{Schema: MetricsSchema, Runs: []metricsRun{}}
	for _, r := range sortRuns(runs) {
		mr := metricsRun{Label: r.Label, Metrics: r.C.Registry().Snapshot()}
		if t := r.C.Tracer(); t != nil {
			mr.TraceRecords = t.Emitted()
			mr.TraceDropped = t.Dropped()
		}
		doc.Runs = append(doc.Runs, mr)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteMetrics writes the metrics document to path.
func WriteMetrics(path string, runs []RunExport) error {
	b, err := EncodeMetrics(runs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// chromeEvent is one Chrome/Perfetto trace-event object. Instant events
// ("ph":"i") carry the lifecycle stamp; metadata events ("ph":"M") name
// the per-run processes and per-stream threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds of simulated time
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args map[string]any `json:"args,omitempty"`
}

// recArgs renders one record's stage-specific fields. Keys are fixed per
// stage so encoding/json's sorted-key output is stable.
func recArgs(r flatRec) map[string]any {
	a := map[string]any{}
	switch r.Stg {
	case StageGen:
		a["kind"] = kindName(r.Kind)
		a["seq"] = r.Seq
		a["port"] = int64(r.Arg)
	case StageEnqueue:
		a["kind"] = kindName(r.Kind)
		a["seq"] = r.Seq
		a["outcome"] = r.Out.String()
	case StageMerge:
		a["kind"] = kindName(r.Kind)
		a["seq"] = r.Seq
		a["cycle"] = r.Arg
		a["outcome"] = r.Out.String()
	case StageSlot:
		a["kind"] = kindName(r.Kind)
		a["cycle"] = r.Seq
		a["outcome"] = r.Out.String()
	case StageCommit:
		a["index"] = r.Seq
		a["lag_cycles"] = r.Arg
	}
	return a
}

// kindName names a record's kind field, including the register marker.
func kindName(k uint8) string {
	if k == KindRegister {
		return "register"
	}
	return eventKindName(k)
}

// recName is the instant event's display name, e.g. "enqueue:dropped".
func recName(r flatRec) string {
	if s := r.Out.String(); s != "" {
		return r.Stg.String() + ":" + s
	}
	return r.Stg.String()
}

// EncodeChromeTrace renders every retained trace record across the
// labelled collectors as a Chrome trace-event JSON array (the format
// ui.perfetto.dev and chrome://tracing open directly). Each run is a
// process (pid = its index in label order) and each stream a thread
// (tid = stream creation index); timestamps are simulated microseconds.
func EncodeChromeTrace(runs []RunExport) ([]byte, error) {
	evs := []chromeEvent{}
	for pid, r := range sortRuns(runs) {
		t := r.C.Tracer()
		if t == nil {
			continue
		}
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": r.Label},
		})
		for _, s := range t.Streams() {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: int(s.id),
				Args: map[string]any{"name": s.name},
			})
		}
		for _, rec := range t.merged() {
			evs = append(evs, chromeEvent{
				Name: recName(rec), Ph: "i", S: "t",
				Ts:  float64(rec.At) / 1e6, // ps -> µs
				Pid: pid, Tid: int(rec.stream),
				Args: recArgs(rec),
			})
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(evs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteChromeTrace writes the Chrome trace-event JSON to path.
func WriteChromeTrace(path string, runs []RunExport) error {
	b, err := EncodeChromeTrace(runs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// EncodeJSONL renders the trace as one JSON object per line — friendlier
// to grep/jq pipelines than the Chrome array. Fields: run, stream, ts_ps,
// stage, kind, outcome, seq, arg.
func EncodeJSONL(runs []RunExport) ([]byte, error) {
	var buf bytes.Buffer
	for _, r := range sortRuns(runs) {
		t := r.C.Tracer()
		if t == nil {
			continue
		}
		streams := t.Streams()
		for _, rec := range t.merged() {
			line := struct {
				Run     string `json:"run"`
				Stream  string `json:"stream"`
				TsPs    int64  `json:"ts_ps"`
				Stage   string `json:"stage"`
				Kind    string `json:"kind"`
				Outcome string `json:"outcome,omitempty"`
				Seq     uint64 `json:"seq"`
				Arg     uint64 `json:"arg"`
			}{
				Run: r.Label, Stream: streams[rec.stream].name,
				TsPs: int64(rec.At), Stage: rec.Stg.String(),
				Kind: kindName(rec.Kind), Outcome: rec.Out.String(),
				Seq: rec.Seq, Arg: rec.Arg,
			}
			b, err := json.Marshal(line)
			if err != nil {
				return nil, err
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes(), nil
}

// WriteJSONL writes the JSONL trace to path.
func WriteJSONL(path string, runs []RunExport) error {
	b, err := EncodeJSONL(runs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Digest returns an FNV-1a hash over the full metrics + trace export of
// the labelled collectors — a compact determinism witness two runs can
// compare without diffing files.
func Digest(runs []RunExport) (uint64, error) {
	h := fnv.New64a()
	m, err := EncodeMetrics(runs)
	if err != nil {
		return 0, err
	}
	h.Write(m)
	j, err := EncodeJSONL(runs)
	if err != nil {
		return 0, err
	}
	h.Write(j)
	return h.Sum64(), nil
}

// Summary is the compact telemetry block embedded in BENCH_<id>.json.
type Summary struct {
	Runs         int    `json:"runs"`
	Metrics      int    `json:"metrics"`
	TraceRecords uint64 `json:"trace_records"`
	TraceDropped uint64 `json:"trace_dropped"`
	Digest       string `json:"digest"`
}

// Summarize reduces the labelled collectors to a Summary.
func Summarize(runs []RunExport) (Summary, error) {
	s := Summary{Runs: len(runs)}
	for _, r := range runs {
		s.Metrics += r.C.Registry().Len()
		if t := r.C.Tracer(); t != nil {
			s.TraceRecords += t.Emitted()
			s.TraceDropped += t.Dropped()
		}
	}
	d, err := Digest(runs)
	if err != nil {
		return Summary{}, err
	}
	s.Digest = fmt.Sprintf("%016x", d)
	return s, nil
}
