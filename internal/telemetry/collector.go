package telemetry

import "repro/internal/sim"

// Options configures a Collector.
type Options struct {
	// TraceCap is the per-stream trace ring capacity in records; 0
	// disables lifecycle tracing entirely (metrics stay on).
	TraceCap int
	// SamplePeriod is the occupancy-sampling period instrumented
	// components use for their periodic gauges (simulated time). 0
	// disables periodic sampling.
	SamplePeriod sim.Time
	// Live makes every instrument and stream safe to read from a
	// wall-clock goroutine (streaming sink, HTTP endpoint) while the run
	// writes: instruments switch to atomic operations and streams take a
	// per-stream mutex. Arithmetic is unchanged, so exports are
	// byte-identical with Live on or off.
	Live bool
}

// DefaultTraceCap is the per-stream ring capacity CLIs use when tracing
// is requested without an explicit capacity.
const DefaultTraceCap = 1 << 14

// DefaultSamplePeriod is the occupancy sampling period CLIs use.
const DefaultSamplePeriod = 50 * sim.Microsecond

// Collector bundles one run's registry and tracer. Build one collector
// per independent simulation (per experiment trial); exporters merge
// collectors deterministically by caller-supplied labels.
type Collector struct {
	opts   Options
	reg    *Registry
	tracer *Tracer // nil when tracing is disabled
}

// New builds a collector.
func New(opts Options) *Collector {
	c := &Collector{opts: opts, reg: NewRegistry()}
	if opts.TraceCap > 0 {
		c.tracer = NewTracer(opts.TraceCap)
	}
	if opts.Live {
		c.reg.SetLive()
		if c.tracer != nil {
			c.tracer.SetLive()
		}
	}
	return c
}

// Options returns the collector's configuration.
func (c *Collector) Options() Options { return c.opts }

// Registry returns the metrics registry.
func (c *Collector) Registry() *Registry { return c.reg }

// Tracer returns the lifecycle tracer, or nil when tracing is disabled.
func (c *Collector) Tracer() *Tracer { return c.tracer }

// Stream creates (or returns) a named trace stream, or nil when tracing
// is disabled. Instrumented components keep the nil and skip their Emit
// calls.
func (c *Collector) Stream(name string) *Stream {
	if c.tracer == nil {
		return nil
	}
	return c.tracer.Stream(name)
}
