// Package self is the engine's own observability: wall-clock-domain
// self-metrics measuring how the simulator runs, never what it simulates.
// It is the second metric domain next to the deterministic sim-time
// registry in internal/telemetry, and the two never mix: deterministic
// metrics are single-writer, driven by simulated time, and part of the
// exported identity of a run; self-metrics are atomic, driven by the wall
// clock and the host scheduler, and explicitly excluded from every
// deterministic export and digest. Enabling or disabling them must not
// change a single byte of simulation output (DESIGN.md §15).
//
// The package is a leaf (stdlib only) so every layer of the engine —
// internal/sim, internal/core, internal/packet, internal/checkpoint,
// internal/netsim — can record into it without import cycles. All
// instruments are fixed package-level variables updated with atomic
// operations; the hot path allocates nothing (TestSelfHotPathZeroAlloc)
// and is gated behind one atomic load (On), so a run without the
// observability plane pays a predictable branch and nothing else.
//
// Writers follow two disciplines to keep the overhead honest:
//
//   - Per-event costs are batched: the scheduler counts dispatches and
//     lane arms in plain local fields and publishes deltas at run exit
//     (Scheduler.Run/RunBefore return), not per event.
//   - Per-occurrence costs stay on naturally coarse paths: a burst
//     occupancy observation per cycle-lane dispatch, a stall sample per
//     partition window, a latency sample per checkpoint write.
package self

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// on gates every hot-path record. Off by default; the observability plane
// (evbench/evsim -http, streaming export) switches it on at startup.
var on atomic.Bool

// Enable turns self-metric recording on.
func Enable() { on.Store(true) }

// Disable turns self-metric recording off. Instruments keep their values.
func Disable() { on.Store(false) }

// On reports whether self-metrics are being recorded. Hot paths check it
// before touching any instrument.
func On() bool { return on.Load() }

// Counter is a monotonically increasing atomic counter. Safe for any
// number of concurrent writers and readers.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HighWater tracks a current level and its maximum. Add moves the level;
// the high-water mark ratchets up under a CAS loop, so concurrent writers
// never lose a peak.
type HighWater struct {
	cur atomic.Int64
	hi  atomic.Int64
}

// Add moves the current level by d (negative to release) and updates the
// high-water mark.
func (w *HighWater) Add(d int64) {
	cur := w.cur.Add(d)
	for {
		hi := w.hi.Load()
		if cur <= hi || w.hi.CompareAndSwap(hi, cur) {
			return
		}
	}
}

// Cur returns the current level.
func (w *HighWater) Cur() int64 { return w.cur.Load() }

// High returns the high-water mark.
func (w *HighWater) High() int64 { return w.hi.Load() }

// HistBuckets mirrors the deterministic registry's log2 bucket layout:
// bucket 0 holds the value 0 and bucket i holds values with
// bits.Len64(v) == i.
const HistBuckets = 65

// Hist is an atomic fixed-boundary log2 histogram. Observe performs four
// atomic adds plus a CAS loop for the max — no allocation, no lock.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Hist) Sum() uint64 { return h.sum.Load() }

// Max returns the largest sample observed.
func (h *Hist) Max() uint64 { return h.max.Load() }

// Bucket returns the count in bucket i.
func (h *Hist) Bucket(i int) uint64 { return h.buckets[i].Load() }

// BucketLow returns the smallest value falling in bucket i.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the largest value falling in bucket i.
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<i - 1
}

// MaxDomains bounds the per-domain instrument arrays. Domains beyond it
// fold into a shared overflow slot rather than being dropped.
const MaxDomains = 64

// The engine's self-metric set. Fixed at compile time: every instrument
// is a package-level variable so hot paths hold no pointers and pay no
// lookups.
var (
	// SchedDispatch counts events executed across all schedulers
	// (published as batched deltas at Run/RunBefore/RunAll exit).
	SchedDispatch Counter
	// SchedLaneArms counts cycle-lane arms (Lane.ArmAt) and SchedAuxArms
	// counts exact-coordinate arms (Lane.ArmExact — the burst conveyor's
	// aux lane), both published at run exit with SchedDispatch.
	SchedLaneArms Counter
	SchedAuxArms  Counter

	// BurstOcc is the burst-slot occupancy histogram: pipeline slots
	// executed per cycle-lane dispatch. A healthy burst datapath shows
	// mass well above 1.
	BurstOcc Hist

	// PoolInUse tracks outstanding packets across every packet.Pool:
	// current level and process-wide high-water mark.
	PoolInUse HighWater

	// CheckpointWriteNS is the wall-clock latency of checkpoint file
	// writes; CheckpointBytes the bytes written; CheckpointLastUnixNS the
	// wall instant of the most recent successful write.
	CheckpointWriteNS    Hist
	CheckpointBytes      Counter
	CheckpointLastUnixNS Gauge

	// MailFrames counts cross-domain frames handed over at partition
	// barriers.
	MailFrames Counter

	// PartBarriers counts partition synchronization barriers (one per
	// coordinator round); PartBatchedWindows counts the windows whose
	// span exceeded one conservative lookahead — the adaptive batching
	// actually engaging. Together with the per-domain window counters
	// they measure barrier pressure: barriers / simulated time is the
	// number the batching work exists to push down.
	PartBarriers       Counter
	PartBatchedWindows Counter

	// TrialsTotal/TrialsDone track experiment campaign progress
	// (bench.RunParallel).
	TrialsTotal Counter
	TrialsDone  Counter

	// StreamFlushes/StreamRecords/StreamLost describe the incremental
	// telemetry exporter: flush passes, trace records flushed, and
	// records lost to ring wrap between flushes.
	StreamFlushes Counter
	StreamRecords Counter
	StreamLost    Counter

	// Scrapes counts /metrics HTTP scrapes served.
	Scrapes Counter

	// SimNowPS is the most recently published simulated instant
	// (picoseconds): updated at partition windows, run exits, and
	// checkpoint writes — a progress indicator, not a live clock.
	SimNowPS Gauge

	// domains is the domain count of the most recent partitioned run.
	domains Gauge

	domainWindows [MaxDomains + 1]Counter // [MaxDomains] = overflow slot
	domainStallNS [MaxDomains + 1]Counter
)

// SetDomains records the domain count of the run in progress.
func SetDomains(n int) { domains.Set(int64(n)) }

// Domains returns the recorded domain count.
func Domains() int { return int(domains.Value()) }

// domainSlot clamps a domain index into the instrument arrays.
func domainSlot(d int) int {
	if d < 0 || d >= MaxDomains {
		return MaxDomains
	}
	return d
}

// DomainWindows returns domain d's conservative-window counter.
func DomainWindows(d int) *Counter { return &domainWindows[domainSlot(d)] }

// DomainStallNS returns domain d's barrier-stall counter: wall-clock
// nanoseconds the domain's worker spent finished-and-waiting between one
// window and the next.
func DomainStallNS(d int) *Counter { return &domainStallNS[domainSlot(d)] }

// Reset zeroes every instrument (tests and fresh campaigns). It does not
// change the enabled state.
func Reset() {
	for _, c := range []*Counter{
		&SchedDispatch, &SchedLaneArms, &SchedAuxArms,
		&CheckpointBytes, &MailFrames,
		&PartBarriers, &PartBatchedWindows,
		&TrialsTotal, &TrialsDone,
		&StreamFlushes, &StreamRecords, &StreamLost, &Scrapes,
	} {
		c.v.Store(0)
	}
	for _, h := range []*Hist{&BurstOcc, &CheckpointWriteNS} {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
	}
	PoolInUse.cur.Store(0)
	PoolInUse.hi.Store(0)
	CheckpointLastUnixNS.Set(0)
	SimNowPS.Set(0)
	domains.Set(0)
	for i := range domainWindows {
		domainWindows[i].v.Store(0)
		domainStallNS[i].v.Store(0)
	}
}

// Sample is one instrument's state in a Snapshot.
type Sample struct {
	Name string
	Kind string // "counter" | "gauge" | "hist"
	// Value carries the counter total or gauge value.
	Value int64
	// Histogram fields.
	Count, Sum, Max uint64
	Buckets         []HistBucket // non-empty buckets, ascending
}

// HistBucket is one non-empty histogram bucket: High is the bucket's
// inclusive upper bound, Count the raw (non-cumulative) count.
type HistBucket struct {
	Low, High, Count uint64
}

// Snapshot returns every instrument's state in a fixed, deterministic
// order. Per-domain instruments appear for domains < SetDomains' last
// value plus any slot with a non-zero count, so idle slots stay out of
// scrapes. Reads are atomic; values observed mid-update are each
// individually consistent but the set is not a single atomic cut — this
// is observability, not accounting.
func Snapshot() []Sample {
	counter := func(name string, c *Counter) Sample {
		return Sample{Name: name, Kind: "counter", Value: int64(c.Value())}
	}
	gauge := func(name string, g *Gauge) Sample {
		return Sample{Name: name, Kind: "gauge", Value: g.Value()}
	}
	hist := func(name string, h *Hist) Sample {
		s := Sample{Name: name, Kind: "hist", Max: h.Max()}
		var total, sum uint64
		for i := 0; i < HistBuckets; i++ {
			if n := h.Bucket(i); n != 0 {
				s.Buckets = append(s.Buckets, HistBucket{Low: BucketLow(i), High: BucketHigh(i), Count: n})
				total += n
			}
		}
		// Count is derived from the buckets read, so every snapshot keeps
		// the bucket-sum == count invariant even while writers race ahead.
		sum = h.Sum()
		s.Count, s.Sum = total, sum
		return s
	}
	out := []Sample{
		hist("self.burst.slots_per_dispatch", &BurstOcc),
		counter("self.checkpoint.bytes", &CheckpointBytes),
		gauge("self.checkpoint.last_unix_ns", &CheckpointLastUnixNS),
		hist("self.checkpoint.write_ns", &CheckpointWriteNS),
		gauge("self.domains", &domains),
		counter("self.http.scrapes", &Scrapes),
		counter("self.mail.frames", &MailFrames),
		counter("self.part.barriers", &PartBarriers),
		counter("self.part.batched_windows", &PartBatchedWindows),
		{Name: "self.pool.high_water", Kind: "gauge", Value: PoolInUse.High()},
		{Name: "self.pool.in_use", Kind: "gauge", Value: PoolInUse.Cur()},
		counter("self.sched.aux_arms", &SchedAuxArms),
		counter("self.sched.dispatch", &SchedDispatch),
		counter("self.sched.lane_arms", &SchedLaneArms),
		gauge("self.sim.now_ps", &SimNowPS),
		counter("self.stream.flushes", &StreamFlushes),
		counter("self.stream.lost", &StreamLost),
		counter("self.stream.records", &StreamRecords),
		counter("self.trials.done", &TrialsDone),
		counter("self.trials.total", &TrialsTotal),
	}
	nd := int(domains.Value())
	if nd > MaxDomains {
		nd = MaxDomains + 1
	}
	for d := 0; d <= MaxDomains; d++ {
		w, st := domainWindows[d].Value(), domainStallNS[d].Value()
		if d >= nd && w == 0 && st == 0 {
			continue
		}
		name := fmt.Sprintf("self.domain%d", d)
		if d == MaxDomains {
			name = "self.domain_overflow"
		}
		out = append(out,
			Sample{Name: name + ".barrier_stall_ns", Kind: "counter", Value: int64(st)},
			Sample{Name: name + ".windows", Kind: "counter", Value: int64(w)},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
