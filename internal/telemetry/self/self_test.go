package self

import (
	"sync"
	"testing"
)

// TestSelfHotPathZeroAlloc pins the self-metrics hot path at zero
// allocations, the same contract TestHotPathZeroAlloc pins for the
// deterministic registry: enabling the observability plane must never
// put an allocation on a per-event engine path.
func TestSelfHotPathZeroAlloc(t *testing.T) {
	Reset()
	Enable()
	defer Disable()
	w := DomainWindows(1)
	st := DomainStallNS(1)
	allocs := testing.AllocsPerRun(1000, func() {
		if !On() {
			t.Fatal("self disabled mid-run")
		}
		SchedDispatch.Add(17)
		SchedLaneArms.Inc()
		SchedAuxArms.Inc()
		BurstOcc.Observe(42)
		PoolInUse.Add(1)
		PoolInUse.Add(-1)
		CheckpointWriteNS.Observe(123456)
		w.Inc()
		st.Add(250)
		SimNowPS.Set(99)
	})
	if allocs != 0 {
		t.Errorf("self-metrics hot path allocates %v allocs/op, want 0", allocs)
	}
}

func TestHighWater(t *testing.T) {
	Reset()
	var w HighWater
	w.Add(3)
	w.Add(2)
	w.Add(-4)
	if got := w.Cur(); got != 1 {
		t.Errorf("Cur = %d, want 1", got)
	}
	if got := w.High(); got != 5 {
		t.Errorf("High = %d, want 5", got)
	}
	w.Add(10)
	if got := w.High(); got != 11 {
		t.Errorf("High after refill = %d, want 11", got)
	}
}

func TestHistBuckets(t *testing.T) {
	Reset()
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 1010 {
		t.Errorf("Sum = %d, want 1010", h.Sum())
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d, want 1000", h.Max())
	}
	// 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4 -> bucket 3;
	// 1000 -> bucket 10 (512..1023).
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
	for i := 0; i < HistBuckets; i++ {
		if h.Bucket(i) != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), want[i])
		}
	}
	if lo, hi := BucketLow(10), BucketHigh(10); lo != 512 || hi != 1023 {
		t.Errorf("bucket 10 bounds [%d,%d], want [512,1023]", lo, hi)
	}
}

// TestConcurrentSnapshot hammers every instrument from several goroutines
// while snapshots are taken concurrently — the race detector's view of
// the wall-clock plane's core guarantee. It also checks the snapshot's
// internal invariant: histogram counts always equal the bucket sum, even
// mid-update.
func TestConcurrentSnapshot(t *testing.T) {
	Reset()
	Enable()
	defer Disable()
	SetDomains(2)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				SchedDispatch.Add(1)
				BurstOcc.Observe(uint64(i % 70))
				PoolInUse.Add(1)
				PoolInUse.Add(-1)
				DomainWindows(g % 2).Inc()
				DomainStallNS(g % 2).Add(10)
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range Snapshot() {
				if s.Kind != "hist" {
					continue
				}
				var total uint64
				for _, b := range s.Buckets {
					total += b.Count
				}
				if total != s.Count {
					t.Errorf("snapshot %s: bucket sum %d != count %d", s.Name, total, s.Count)
				}
			}
		}
	}()
	// Writers finish first so reads genuinely overlap writes; only then
	// is the snapshot goroutine told to stop.
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := SchedDispatch.Value(); got != 4*5000 {
		t.Errorf("SchedDispatch = %d, want %d", got, 4*5000)
	}
	if got := DomainWindows(0).Value() + DomainWindows(1).Value(); got != 4*5000 {
		t.Errorf("domain windows total = %d, want %d", got, 4*5000)
	}
}

func TestDomainOverflowSlot(t *testing.T) {
	Reset()
	DomainWindows(MaxDomains + 7).Inc()
	DomainWindows(-1).Inc()
	if got := DomainWindows(MaxDomains).Value(); got != 2 {
		t.Errorf("overflow slot = %d, want 2", got)
	}
	found := false
	for _, s := range Snapshot() {
		if s.Name == "self.domain_overflow.windows" {
			found = true
			if s.Value != 2 {
				t.Errorf("overflow sample = %d, want 2", s.Value)
			}
		}
	}
	if !found {
		t.Error("overflow slot missing from snapshot")
	}
}

// TestSnapshotDeterministicOrder: two snapshots of quiescent instruments
// list the same names in the same order — scrape output must be diffable.
func TestSnapshotDeterministicOrder(t *testing.T) {
	Reset()
	SetDomains(3)
	a, b := Snapshot(), Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Errorf("entry %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
		if i > 0 && a[i].Name <= a[i-1].Name {
			t.Errorf("snapshot not strictly sorted at %q after %q", a[i].Name, a[i-1].Name)
		}
	}
}
