package apps

import (
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/sketch"
)

// CMSApp is a count-min-sketch heavy-hitter monitor with periodic reset,
// in both designs of paper §1:
//
//   - Event-driven: a timer event resets the sketch in the data plane.
//     Zero control messages; jitter bounded by one pipeline slot.
//   - Baseline: the control plane must issue the reset over its channel,
//     costing messages and suffering software latency and jitter.
type CMSApp struct {
	CMS *sketch.CMS

	// ResetTimes records when each reset actually took effect.
	ResetTimes []sim.Time
	// Intended records when each reset was supposed to happen.
	Intended []sim.Time
}

// NewCMSEventDriven builds the timer-driven variant: load the program,
// then call Arm to configure the switch timer.
func NewCMSEventDriven(rows, width, egress int) (*CMSApp, *pisa.Program) {
	app := &CMSApp{CMS: sketch.NewCMS(rows, width)}
	p := pisa.NewProgram("cms-timer")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = egress
		if ctx.FlowOK {
			app.CMS.Update(ctx.Ev.FlowHash, uint64(ctx.Pkt.Len()))
		}
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		app.CMS.Reset()
		app.ResetTimes = append(app.ResetTimes, ctx.Now)
		app.Intended = append(app.Intended, ctx.Ev.When)
	})
	return app, p
}

// Arm configures timer 0 on the switch with the reset period.
func (app *CMSApp) Arm(sw *core.Switch, period sim.Time) error {
	return sw.ConfigureTimer(0, period)
}

// NewCMSBaseline builds the baseline variant: the sketch updates from
// packet events, and resets arrive through the control plane. Call
// StartBaselineResets to begin the periodic resets.
func NewCMSBaseline(rows, width, egress int) (*CMSApp, *pisa.Program) {
	app := &CMSApp{CMS: sketch.NewCMS(rows, width)}
	p := pisa.NewProgram("cms-controlplane")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = egress
		if ctx.FlowOK {
			app.CMS.Update(ctx.Ev.FlowHash, uint64(ctx.Pkt.Len()))
		}
	})
	return app, p
}

// StartBaselineResets drives periodic resets through the control plane
// and records the intended vs actual reset instants.
func (app *CMSApp) StartBaselineResets(sched *sim.Scheduler, agent *controlplane.Agent, period sim.Time) *sim.Ticker {
	return sched.Every(period, func() {
		intended := sched.Now()
		agent.Do(app.CMS.ResetCost(), func() {
			app.CMS.Reset()
			app.ResetTimes = append(app.ResetTimes, sched.Now())
			app.Intended = append(app.Intended, intended)
		})
	})
}

// ResetJitter summarizes |actual - intended| over all recorded resets.
func (app *CMSApp) ResetJitter() *sim.Stats {
	st := sim.NewStats()
	for i := range app.ResetTimes {
		d := app.ResetTimes[i] - app.Intended[i]
		if d < 0 {
			d = -d
		}
		st.AddTime(d)
	}
	return st
}

// FlowRateConfig parameterizes the time-windowed flow-rate monitor
// (paper §5: "one student group demonstrated how to use timer events in
// conjunction with a simple shift register to accurately measure flow
// rates in the data plane").
type FlowRateConfig struct {
	Slots      int // per-flow slots
	Buckets    int // shift-register depth
	EgressPort int
}

// FlowRate measures per-flow byte rates over a sliding window: packet
// events accumulate into the head bucket of the flow's shift register and
// a timer event shifts all registers.
type FlowRate struct {
	cfg     FlowRateConfig
	windows []*sketch.WindowRate
	period  sim.Time
	Shifts  uint64
}

// NewFlowRate builds the monitor.
func NewFlowRate(cfg FlowRateConfig) (*FlowRate, *pisa.Program) {
	if cfg.Slots <= 0 {
		cfg.Slots = 256
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 8
	}
	fr := &FlowRate{cfg: cfg}
	for i := 0; i < cfg.Slots; i++ {
		fr.windows = append(fr.windows, sketch.NewWindowRate(cfg.Buckets))
	}
	p := pisa.NewProgram("flowrate")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if ctx.FlowOK {
			fr.windows[ctx.Ev.FlowHash%uint64(cfg.Slots)].Add(uint64(ctx.Pkt.Len()))
		}
	})
	p.HandleFunc(events.TimerExpiration, func(ctx *pisa.Context) {
		fr.Shifts++
		for _, w := range fr.windows {
			w.Shift()
		}
	})
	return fr, p
}

// Arm configures the shift timer.
func (fr *FlowRate) Arm(sw *core.Switch, period sim.Time) error {
	fr.period = period
	return sw.ConfigureTimer(0, period)
}

// Rate reports a flow slot's measured rate in bytes/second over the
// filled window.
func (fr *FlowRate) Rate(slot uint32) float64 {
	w := fr.windows[int(slot)%fr.cfg.Slots]
	filled := w.Filled()
	if filled == 0 || fr.period == 0 {
		return 0
	}
	window := fr.period * sim.Time(filled)
	return float64(w.Sum()) / window.Seconds()
}

// SlotOf maps a flow hash to its window slot.
func (fr *FlowRate) SlotOf(h uint64) uint32 { return uint32(h % uint64(fr.cfg.Slots)) }
