package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// chainHarness wires client -- head -- mid -- tail with a backup link
// head--tail, and returns everything the tests need.
type chainHarness struct {
	sched            *sim.Scheduler
	net              *netsim.Network
	client           *netsim.Host
	head, mid, tail  *ChainNode
	headMid, midTail *netsim.Link
	acks, replies    map[uint32]uint64 // seq -> value
}

func newChainHarness(t *testing.T) *chainHarness {
	t.Helper()
	h := &chainHarness{
		sched:   sim.NewScheduler(),
		acks:    make(map[uint32]uint64),
		replies: make(map[uint32]uint64),
	}
	h.net = netsim.New(h.sched)

	mk := func(name string, cfg ChainNodeConfig) (*ChainNode, *core.Switch) {
		node, prog := NewChainNode(cfg)
		sw := core.New(core.Config{Name: name}, core.EventDriven(), h.sched)
		sw.MustLoad(prog)
		h.net.AddSwitch(sw)
		return node, sw
	}
	// Ports — head: 0 client, 1 succ(mid), 2 backup(tail).
	// mid: 0 toward head (its "client side"), 1 succ(tail).
	// tail: 0 toward mid, 2 toward head (backup), tail node.
	var headSw, midSw, tailSw *core.Switch
	h.head, headSw = mk("head", ChainNodeConfig{SwitchID: 1, ClientPort: 0, SuccessorPort: 1, BackupPort: 2})
	h.mid, midSw = mk("mid", ChainNodeConfig{SwitchID: 2, ClientPort: 0, SuccessorPort: 1, BackupPort: -1})
	h.tail, tailSw = mk("tail", ChainNodeConfig{SwitchID: 3, ClientPort: 0, SuccessorPort: -1, Tail: true})

	h.client = h.net.NewHost("client", packet.IP4(10, 0, 0, 1))
	h.net.Attach(h.client, headSw, 0, 0)
	h.headMid = h.net.Connect(headSw, 1, midSw, 0, 10*sim.Microsecond)
	h.midTail = h.net.Connect(midSw, 1, tailSw, 0, 10*sim.Microsecond)
	h.net.Connect(headSw, 2, tailSw, 2, 10*sim.Microsecond) // backup

	h.client.OnRecv = func(data []byte) {
		op, _, val, seq, ok := ParseChainReply(data)
		if !ok {
			return
		}
		switch op {
		case ChainWriteAck:
			h.acks[seq] = val
		case ChainReply:
			h.replies[seq] = val
		}
	}
	return h
}

func (h *chainHarness) write(at sim.Time, key, val uint64, seq uint32) {
	h.sched.At(at, func() {
		h.client.Send(BuildChainRequest(packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 1), SrcPort: 700,
		}, ChainWrite, key, val, seq))
	})
}

func (h *chainHarness) read(at sim.Time, key uint64, seq uint32) {
	h.sched.At(at, func() {
		h.client.Send(BuildChainRequest(packet.Flow{
			Src: packet.IP4(10, 0, 0, 1), Dst: packet.IP4(10, 9, 0, 1), SrcPort: 700,
		}, ChainRead, key, 0, seq))
	})
}

func TestNetChainReplicationAndReads(t *testing.T) {
	h := newChainHarness(t)
	h.write(sim.Millisecond, 42, 1000, 1)
	h.write(2*sim.Millisecond, 43, 2000, 2)
	h.read(3*sim.Millisecond, 42, 3)
	h.sched.Run(10 * sim.Millisecond)

	// Writes replicated on all three nodes.
	for name, node := range map[string]*ChainNode{"head": h.head, "mid": h.mid, "tail": h.tail} {
		if node.Store()[42] != 1000 || node.Store()[43] != 2000 {
			t.Errorf("%s store = %v", name, node.Store())
		}
	}
	if h.acks[1] != 1000 || h.acks[2] != 2000 {
		t.Errorf("acks = %v", h.acks)
	}
	if h.replies[3] != 1000 {
		t.Errorf("read reply = %v", h.replies)
	}
	if h.tail.Reads != 1 {
		t.Errorf("tail reads = %d", h.tail.Reads)
	}
}

func TestNetChainFailoverOnLinkEvent(t *testing.T) {
	h := newChainHarness(t)
	h.write(sim.Millisecond, 1, 100, 1)
	// Kill the head-mid link at 2ms: the head's LinkStatusChange handler
	// re-chains to the backup (head -> tail) immediately.
	h.sched.At(2*sim.Millisecond, func() { h.net.Fail(h.headMid) })
	h.write(3*sim.Millisecond, 2, 200, 2)
	h.read(4*sim.Millisecond, 2, 3)
	h.sched.Run(10 * sim.Millisecond)

	if h.head.Failovers != 1 {
		t.Fatalf("failovers = %d", h.head.Failovers)
	}
	// The second write committed at the tail via the backup path and
	// was acknowledged; the mid (cut off) never saw it.
	if h.acks[2] != 200 {
		t.Errorf("write after failover not acked: %v", h.acks)
	}
	if h.tail.Store()[2] != 200 || h.head.Store()[2] != 200 {
		t.Error("write after failover not replicated on the surviving chain")
	}
	if _, saw := h.mid.Store()[2]; saw {
		t.Error("cut-off mid node saw the post-failover write")
	}
	if h.replies[3] != 200 {
		t.Errorf("read after failover = %v", h.replies)
	}
	// Pre-failure write still served.
	if h.tail.Store()[1] != 100 {
		t.Error("pre-failure write lost")
	}
}

func TestNetChainAckedWritesDurableProperty(t *testing.T) {
	// Property: across random failover instants and write schedules,
	// every acknowledged write is present in the tail's store with the
	// acknowledged value (chain replication's guarantee), and reads
	// after the last write return it.
	rng := sim.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		h := newChainHarness(t)
		nWrites := 3 + rng.Intn(8)
		failAt := sim.Time(1+rng.Intn(20)) * sim.Millisecond
		h.sched.At(failAt, func() { h.net.Fail(h.headMid) })
		type w struct {
			key, val uint64
			seq      uint32
		}
		var writes []w
		for i := 0; i < nWrites; i++ {
			wr := w{key: uint64(rng.Intn(5)), val: rng.Uint64() % 1000, seq: uint32(i + 1)}
			writes = append(writes, wr)
			at := sim.Time(1+rng.Intn(25)) * sim.Millisecond
			h.write(at, wr.key, wr.val, wr.seq)
		}
		h.sched.Run(40 * sim.Millisecond)
		for _, wr := range writes {
			ackVal, acked := h.acks[wr.seq]
			if !acked {
				continue // unacked writes carry no guarantee
			}
			if ackVal != wr.val {
				t.Fatalf("trial %d: ack for seq %d carried %d, want %d", trial, wr.seq, ackVal, wr.val)
			}
			if _, inTail := h.tail.Store()[wr.key]; !inTail {
				t.Fatalf("trial %d: acked key %d missing at tail", trial, wr.key)
			}
		}
	}
}
