// Package apps implements the paper's application classes (Table 2) and
// the §5 student projects as programs over the public pisa/core API:
//
//   - Microburst culprit detection (§2 running example) in two designs:
//     event-driven (enqueue/dequeue events, one register) and a
//     Snappy-style baseline (packet events only, multiple sketch
//     snapshots) for the ≥4x state comparison.
//   - HULA-style probing (Congestion Aware Forwarding).
//   - CMS with periodic reset, timer-driven vs control-plane-driven
//     (Network Monitoring; the §1 overhead argument).
//   - Token-bucket policing from timer events (Traffic Management).
//   - FRED-like fair AQM from enqueue/dequeue events (§5 project).
//   - Fast re-route from link-status events (Network Management, §5).
//   - Liveness monitoring echoes (§5 project).
//   - Time-windowed flow-rate measurement (§5 project).
//   - NetCache-style LRU cache with timer-aged statistics
//     (In-Network Computing).
package apps

import (
	"repro/internal/events"
	"repro/internal/pisa"
	"repro/internal/sketch"
)

// MicroburstConfig parameterizes microburst detection.
type MicroburstConfig struct {
	// Slots is the per-flow state size (register entries).
	Slots int
	// ThresholdBytes flags a flow whose buffered bytes exceed this.
	ThresholdBytes int
	// EgressPort is where detected traffic is forwarded.
	EgressPort int
}

// Microburst is the event-driven detector of the paper's §2: one
// shared_register of per-flow buffer occupancy, updated by enqueue and
// dequeue events and read by the ingress pipeline before the packet is
// buffered.
type Microburst struct {
	cfg MicroburstConfig
	reg *pisa.SharedRegister

	// Detections records flagged (flow slot, occupancy) pairs.
	Detections []Detection
}

// Detection is one flagged microburst culprit.
type Detection struct {
	FlowSlot  uint32
	Occupancy uint64
}

// NewMicroburst builds the detector and its program.
func NewMicroburst(cfg MicroburstConfig) (*Microburst, *pisa.Program) {
	if cfg.Slots <= 0 {
		cfg.Slots = 1024
	}
	if cfg.ThresholdBytes <= 0 {
		cfg.ThresholdBytes = 30000
	}
	m := &Microburst{cfg: cfg}
	p := pisa.NewProgram("microburst-event")
	m.reg = p.AddRegister(pisa.NewAggregatedRegister("flowBufSize", cfg.Slots,
		events.BufferEnqueue, events.BufferDequeue))

	slotOf := func(h uint64) uint32 { return uint32(h % uint64(cfg.Slots)) }

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.FlowOK {
			return
		}
		slot := slotOf(ctx.Ev.FlowHash)
		occ := m.reg.Read(ctx, slot)
		if occ > uint64(cfg.ThresholdBytes) {
			m.Detections = append(m.Detections, Detection{FlowSlot: slot, Occupancy: occ})
		}
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		m.reg.Add(ctx, slotOf(ctx.Ev.FlowHash), int64(ctx.Ev.PktLen))
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		m.reg.Add(ctx, slotOf(ctx.Ev.FlowHash), -int64(ctx.Ev.PktLen))
	})
	return m, p
}

// StateBytes reports the detector's stateful memory: one 32-bit register
// per slot plus its two aggregation banks (the Figure 3 hardware), as the
// paper's accounting counts register state.
func (m *Microburst) StateBytes() int {
	// Main register: 4 bytes per slot. Each aggregation bank holds a
	// 4-byte pending delta per slot.
	return m.cfg.Slots * 4 * 3
}

// Register exposes the occupancy register for monitoring.
func (m *Microburst) Register() *pisa.SharedRegister { return m.reg }

// SnappyConfig parameterizes the baseline detector.
type SnappyConfig struct {
	// Snapshots is the number of rotating sketch snapshots (Snappy used
	// multiple register-array snapshots to approximate occupancy).
	Snapshots int
	// Rows and Width size each snapshot's count-min sketch.
	Rows, Width int
	// WindowPkts is how many packets a snapshot covers before rotation.
	WindowPkts int
	// ThresholdBytes flags a flow whose estimated buffered bytes exceed
	// this.
	ThresholdBytes int
	// EgressPort is where traffic is forwarded.
	EgressPort int
}

// Snappy is the baseline-PISA detector modeled on "Catching the
// Microburst Culprits with Snappy" (paper's reference [3]): without
// enqueue/dequeue events it can only *approximate* queue occupancy from
// packet arrivals, keeping multiple rotating sketch snapshots whose sum
// estimates bytes likely still in the buffer. It needs several times the
// state of the event-driven design and is approximate where the
// event-driven design is exact.
type Snappy struct {
	cfg    SnappyConfig
	snaps  []*sketch.CMS
	active int
	pkts   int

	Detections []Detection
}

// NewSnappy builds the baseline detector and its (packet-events-only)
// program.
func NewSnappy(cfg SnappyConfig) (*Snappy, *pisa.Program) {
	if cfg.Snapshots <= 0 {
		cfg.Snapshots = 4
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 3
	}
	if cfg.Width <= 0 {
		cfg.Width = 1024
	}
	if cfg.WindowPkts <= 0 {
		cfg.WindowPkts = 64
	}
	if cfg.ThresholdBytes <= 0 {
		cfg.ThresholdBytes = 30000
	}
	s := &Snappy{cfg: cfg}
	for i := 0; i < cfg.Snapshots; i++ {
		s.snaps = append(s.snaps, sketch.NewCMS(cfg.Rows, cfg.Width))
	}
	p := pisa.NewProgram("microburst-snappy")
	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.FlowOK {
			return
		}
		key := ctx.Ev.FlowHash
		// Rotate snapshots by packet count — the only clock a baseline
		// data plane has.
		s.pkts++
		if s.pkts%cfg.WindowPkts == 0 {
			s.active = (s.active + 1) % cfg.Snapshots
			s.snaps[s.active].Reset()
		}
		s.snaps[s.active].Update(key, uint64(ctx.Pkt.Len()))
		var est uint64
		for _, sn := range s.snaps {
			est += sn.Estimate(key)
		}
		if est > uint64(cfg.ThresholdBytes) {
			s.Detections = append(s.Detections, Detection{
				FlowSlot: uint32(key % uint64(cfg.Width)), Occupancy: est,
			})
		}
	})
	return s, p
}

// StateBytes reports the baseline's stateful memory: all snapshots'
// counters.
func (s *Snappy) StateBytes() int {
	total := 0
	for _, sn := range s.snaps {
		total += sn.MemoryBytes()
	}
	return total
}
