package apps

import (
	"repro/internal/events"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/sketch"
)

// REDConfig parameterizes the RED AQM (paper §3 Traffic Management lists
// RED among the algorithms event-driven programming enables: it "need[s]
// access to several congestion signals in the ingress pipeline",
// here the smoothed queue occupancy from enqueue/dequeue events).
type REDConfig struct {
	// MinThresh and MaxThresh bound the drop ramp (bytes of smoothed
	// occupancy).
	MinThresh, MaxThresh int64
	// MaxP is the drop probability at MaxThresh, in 1/256 units (the
	// integer arithmetic a data plane uses).
	MaxP256 uint64
	// EWMAShift smooths the instantaneous occupancy.
	EWMAShift  uint
	EgressPort int
}

// RED implements Random Early Detection with congestion signals derived
// from buffer events: the instantaneous occupancy comes from
// enqueue/dequeue events, the average from an EWMA updated on each
// enqueue, and the drop decision happens in the ingress pipeline before
// the packet is buffered.
type RED struct {
	cfg REDConfig
	occ *pisa.SharedRegister
	avg *sketch.EWMA
	rng *sim.RNG

	Dropped, Passed uint64
	// MarkedAvgPeak tracks the highest smoothed occupancy observed.
	MarkedAvgPeak uint64
}

// NewRED builds the AQM and its program.
func NewRED(cfg REDConfig, rng *sim.RNG) (*RED, *pisa.Program) {
	if cfg.MinThresh <= 0 {
		cfg.MinThresh = 15000
	}
	if cfg.MaxThresh <= cfg.MinThresh {
		cfg.MaxThresh = 3 * cfg.MinThresh
	}
	if cfg.MaxP256 == 0 {
		cfg.MaxP256 = 64 // 25% at MaxThresh
	}
	if cfg.EWMAShift == 0 {
		cfg.EWMAShift = 4
	}
	r := &RED{cfg: cfg, avg: sketch.NewEWMA(cfg.EWMAShift), rng: rng}
	p := pisa.NewProgram("red")
	r.occ = p.AddRegister(pisa.NewAggregatedRegister("redOcc", 1,
		events.BufferEnqueue, events.BufferDequeue))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		ctx.EgressPort = cfg.EgressPort
		if !ctx.FlowOK {
			return
		}
		avg := int64(r.avg.Value())
		switch {
		case avg <= cfg.MinThresh:
			r.Passed++
		case avg >= cfg.MaxThresh:
			r.Dropped++
			ctx.Drop()
		default:
			// Linear ramp: p = MaxP * (avg-min)/(max-min), in /256.
			p256 := cfg.MaxP256 * uint64(avg-cfg.MinThresh) /
				uint64(cfg.MaxThresh-cfg.MinThresh)
			if uint64(r.rng.Intn(256)) < p256 {
				r.Dropped++
				ctx.Drop()
				return
			}
			r.Passed++
		}
	})
	p.HandleFunc(events.BufferEnqueue, func(ctx *pisa.Context) {
		r.occ.Add(ctx, 0, int64(ctx.Ev.PktLen))
		// Smooth on the stale visible value: the data-plane-faithful
		// signal path.
		v := r.avg.Observe(r.occ.Read(ctx, 0))
		if v > r.MarkedAvgPeak {
			r.MarkedAvgPeak = v
		}
	})
	p.HandleFunc(events.BufferDequeue, func(ctx *pisa.Context) {
		r.occ.Add(ctx, 0, -int64(ctx.Ev.PktLen))
		r.avg.Observe(r.occ.Read(ctx, 0))
	})
	return r, p
}

// AvgOccupancy returns the current smoothed occupancy signal.
func (r *RED) AvgOccupancy() uint64 { return r.avg.Value() }
