package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tm"
	"repro/internal/workload"
)

func TestECNMarkCarriesMaxAlongPath(t *testing.T) {
	// Two switches in series; the second is the bottleneck. Packets
	// arriving at the sink must carry the bottleneck's occupancy level,
	// not the first (uncongested) switch's.
	sched := sim.NewScheduler()
	net := netsim.New(sched)
	m1, p1 := NewECNMark(ECNMarkConfig{EgressPort: 1, QuantumBytes: 4096})
	s1 := core.New(core.Config{Name: "s1"}, core.EventDriven(), sched)
	s1.MustLoad(p1)
	m2, p2 := NewECNMark(ECNMarkConfig{EgressPort: 1, QuantumBytes: 4096})
	s2 := core.New(core.Config{Name: "s2", QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
	s2.MustLoad(p2)
	net.AddSwitch(s1)
	net.AddSwitch(s2)
	src := net.NewHost("src", packet.IP4(10, 0, 0, 1))
	sink := net.NewHost("sink", packet.IP4(10, 1, 0, 1))
	net.Attach(src, s1, 0, 0)
	net.Connect(s1, 1, s2, 0, sim.Microsecond)
	net.Attach(sink, s2, 1, 0)

	// Congest s2's egress: a second source pours traffic into it.
	cross := net.NewHost("cross", packet.IP4(10, 0, 0, 2))
	net.Attach(cross, s2, 2, 0)

	marks := sim.NewStats()
	sink.OnRecv = func(data []byte) {
		marks.Add(float64(packet.TOSOf(data)))
	}

	fl := flowN(1)
	g := workload.NewGen(sched, sim.NewRNG(1), func(d []byte) { src.Send(d) })
	g.StartCBR(workload.CBRConfig{Flow: fl, Size: workload.FixedSize(1000),
		Rate: sim.Gbps, Until: 20 * sim.Millisecond})
	gx := workload.NewGen(sched, sim.NewRNG(2), func(d []byte) { cross.Send(d) })
	gx.StartCBR(workload.CBRConfig{Flow: flowN(2), Size: workload.FixedSize(1500),
		Rate: 9500 * sim.Mbps, Until: 20 * sim.Millisecond})

	sched.Run(25 * sim.Millisecond)

	if marks.N() == 0 {
		t.Fatal("sink received nothing")
	}
	// s1 is uncongested, so marks must come from s2's deep queue: at
	// ~0.5 Gb/s of excess on a 1MB queue we expect levels well above 2.
	if marks.Max() < 3 {
		t.Errorf("max mark = %.0f, want bottleneck occupancy levels", marks.Max())
	}
	if m2.Marked == 0 {
		t.Error("bottleneck switch never marked")
	}
	_ = m1
}

func TestNDPTrimsUnderCongestionAndPrioritizesHeaders(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{
		QueuesPerPort: 2, Discipline: tm.StrictPriority, QueueCapBytes: 1 << 20,
	}, core.EventDriven(), sched)
	n, prog := NewNDP(NDPConfig{EgressPort: 1, TrimAboveBytes: 20000})
	sw.MustLoad(prog)

	var headerOnly, full uint64
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if pkt.Len() <= packet.EthernetHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen {
			headerOnly++
		} else {
			full++
		}
	}
	// 2x overload into the egress: queue builds past the trim threshold.
	rng := sim.NewRNG(3)
	for _, port := range []int{0, 2} {
		port := port
		g := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(port, d) })
		g.StartCBR(workload.CBRConfig{Flow: flowN(port + 1), Size: workload.FixedSize(1500),
			Rate: 10 * sim.Gbps, Until: 10 * sim.Millisecond})
	}
	sched.Run(15 * sim.Millisecond)

	if n.Trimmed == 0 {
		t.Fatal("nothing trimmed under 2x overload")
	}
	if n.FullSized == 0 {
		t.Fatal("everything trimmed")
	}
	if headerOnly == 0 {
		t.Fatal("no header-only packets delivered")
	}
	// NDP's point: headers are not dropped. All trimmed packets either
	// delivered or still queued — none lost to the AQM.
	if sw.Stats().PipelineDrops != 0 {
		t.Errorf("pipeline drops = %d; NDP trims instead of dropping", sw.Stats().PipelineDrops)
	}
}
