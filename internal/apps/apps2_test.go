package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestTelemetrySuppressesQuietIntervals(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{}, core.EventDriven(), sched)
	tl, prog := NewTelemetry(TelemetryConfig{
		SwitchID: 7, EgressPort: 1, ReportPort: 3,
	})
	sw.MustLoad(prog)
	if err := tl.Arm(sw, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	var reports []packet.Report
	sw.OnTransmit = func(port int, pkt *packet.Packet) {
		if port != 3 {
			return
		}
		var p packet.Parser
		var dec []packet.LayerType
		if p.Decode(pkt.Data, &dec) == nil && len(dec) == 2 && dec[1] == packet.LayerReport {
			reports = append(reports, p.Report)
		}
	}
	// Steady light traffic for 40ms, with one 10x surge at 20-22ms.
	rng := sim.NewRNG(1)
	fl := flowN(1)
	base := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	base.StartCBR(workload.CBRConfig{Flow: fl, Size: workload.FixedSize(1000),
		Rate: 80 * sim.Mbps, Until: 40 * sim.Millisecond})
	surge := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
	sched.At(20*sim.Millisecond, func() {
		surge.StartCBR(workload.CBRConfig{Flow: flowN(2), Size: workload.FixedSize(1000),
			Rate: 800 * sim.Mbps, Until: 22 * sim.Millisecond})
	})
	sched.Run(42 * sim.Millisecond)

	if tl.Reports == 0 {
		t.Fatal("surge not reported")
	}
	if tl.Suppressed < 30 {
		t.Errorf("suppressed = %d of %d intervals; the filter is not reducing",
			tl.Suppressed, tl.Intervals)
	}
	if tl.ReductionRatio() < 5 {
		t.Errorf("reduction ratio = %.1f, want >= 5x", tl.ReductionRatio())
	}
	// Reports must coincide with the surge window.
	for _, r := range reports {
		if r.Kind != packet.ReportAnomaly {
			t.Errorf("report kind = %d", r.Kind)
		}
	}
}

func TestREDDropRampUnderCongestion(t *testing.T) {
	sched := sim.NewScheduler()
	sw := core.New(core.Config{QueueCapBytes: 1 << 20}, core.EventDriven(), sched)
	red, prog := NewRED(REDConfig{
		MinThresh: 15000, MaxThresh: 45000, MaxP256: 128, EgressPort: 1,
	}, sim.NewRNG(5))
	sw.MustLoad(prog)
	// Uncongested phase: 2 Gb/s into 10G — no drops.
	rng := sim.NewRNG(2)
	g1 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	g1.StartCBR(workload.CBRConfig{Flow: flowN(1), Size: workload.FixedSize(1500),
		Rate: 2 * sim.Gbps, Until: 10 * sim.Millisecond})
	sched.Run(11 * sim.Millisecond)
	if red.Dropped != 0 {
		t.Fatalf("dropped %d packets without congestion", red.Dropped)
	}
	passedBefore := red.Passed

	// Congested phase: 14 Gb/s from two ports into 10G.
	g2 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(0, d) })
	g2.StartCBR(workload.CBRConfig{Flow: flowN(1), Size: workload.FixedSize(1500),
		Rate: 7 * sim.Gbps, Until: 31 * sim.Millisecond})
	g3 := workload.NewGen(sched, rng.Split(), func(d []byte) { sw.Inject(2, d) })
	g3.StartCBR(workload.CBRConfig{Flow: flowN(2), Size: workload.FixedSize(1500),
		Rate: 7 * sim.Gbps, Until: 31 * sim.Millisecond})
	sched.Run(35 * sim.Millisecond)

	if red.Dropped == 0 {
		t.Fatal("no RED drops under sustained 1.4x overload")
	}
	if red.Passed == passedBefore {
		t.Fatal("RED dropped everything")
	}
	if red.AvgOccupancy() == 0 && red.MarkedAvgPeak < 15000 {
		t.Errorf("avg occupancy signal never crossed min threshold: peak=%d", red.MarkedAvgPeak)
	}
}

func TestStateMigrationOnFailover(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched)

	// src host -> m (migrator) -> primary: s2(port0) / backup: s3(port0)
	// -> both forward to their port 3 sinks; s3 is the migrate target.
	m, mprog := NewMigrator(MigratorConfig{SwitchID: 1, Slots: 256, Primary: 1, Backup: 2})
	msw := core.New(core.Config{Name: "m"}, core.EventDriven(), sched)
	msw.MustLoad(mprog)
	tgt, tprog := NewMigrateTarget(MigrateTargetConfig{SwitchID: 3, Slots: 256, EgressPort: 3})
	tsw := core.New(core.Config{Name: "tgt"}, core.EventDriven(), sched)
	tsw.MustLoad(tprog)
	psw := core.New(core.Config{Name: "prim"}, core.EventDriven(), sched)
	psw.MustLoad(EchoResponder(2, 3)) // simple forwarder to its sink

	net.AddSwitch(msw)
	net.AddSwitch(tsw)
	net.AddSwitch(psw)
	src := net.NewHost("src", packet.IP4(10, 0, 0, 1))
	net.Attach(src, msw, 0, 0)
	primary := net.Connect(msw, 1, psw, 0, 10*sim.Microsecond)
	net.Connect(msw, 2, tsw, 0, 10*sim.Microsecond)
	sinkP := net.NewHost("sinkP", packet.IP4(10, 1, 0, 1))
	net.Attach(sinkP, psw, 3, 0)
	sinkB := net.NewHost("sinkB", packet.IP4(10, 1, 0, 1))
	net.Attach(sinkB, tsw, 3, 0)

	// Two flows send through the primary path for 10ms.
	fl1, fl2 := flowN(1), flowN(2)
	g := workload.NewGen(sched, sim.NewRNG(3), func(d []byte) { src.Send(d) })
	g.StartCBR(workload.CBRConfig{Flow: fl1, Size: workload.FixedSize(1000),
		Rate: 800 * sim.Mbps, Until: 20 * sim.Millisecond})
	g2 := workload.NewGen(sched, sim.NewRNG(4), func(d []byte) { src.Send(d) })
	g2.StartCBR(workload.CBRConfig{Flow: fl2, Size: workload.FixedSize(500),
		Rate: 400 * sim.Mbps, Until: 20 * sim.Millisecond})

	sched.At(10*sim.Millisecond, func() { net.Fail(primary) })
	sched.Run(25 * sim.Millisecond)

	if m.Failovers != 1 {
		t.Fatalf("failovers = %d", m.Failovers)
	}
	if m.Migrated == 0 || tgt.Installed != m.Migrated {
		t.Fatalf("migrated=%d installed=%d", m.Migrated, tgt.Installed)
	}
	// The target's per-flow counters must equal the migrator's full
	// count (pre-failure state transferred + post-failure bytes counted
	// locally).
	for _, fl := range []packet.Flow{fl1, fl2} {
		slot := uint32(fl.Hash() % 256)
		mv := m.State().True(slot)
		tv := tgt.State().True(slot)
		if tv != mv {
			t.Errorf("flow slot %d: target state %d != migrator state %d", slot, tv, mv)
		}
		if tv == 0 {
			t.Errorf("flow slot %d: no state at target", slot)
		}
	}
	// Traffic kept flowing to the backup sink after failover.
	if sinkB.RxPackets == 0 {
		t.Error("no packets delivered via backup after failover")
	}
}
