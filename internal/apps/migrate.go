package apps

import (
	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// Swing-state-style data-plane state migration (paper §3 Network
// Management, citing Luo et al.'s swing state: "the data plane can
// immediately respond to link failures, autonomously re-route affected
// flows and migrate data-plane state from a flow's old path to its new
// one").
//
// A Migrator owns per-flow state (here: per-flow byte counters kept by
// the ingress pipeline). When the primary link toward a destination
// fails, the LinkStatusChange handler re-routes — and simultaneously
// streams the affected flows' state to the backup-path switch as
// generated state-transfer packets, which the receiving switch's data
// plane installs into its own register. No control plane touches either
// switch.
//
// Wire format: state-transfer frames ride the Report protocol with
// Kind=ReportStateXfer, V0=state value, V1=flow slot.

// ReportStateXfer is the report kind carrying a state-transfer record.
const ReportStateXfer uint8 = 99

// MigratorConfig parameterizes the migrating switch.
type MigratorConfig struct {
	SwitchID uint32
	// Slots sizes the per-flow state register.
	Slots int
	// Primary and Backup are output ports toward the destination.
	Primary, Backup int
}

// Migrator is the source side: it counts per-flow bytes, fails over on
// link events, and streams state to the backup path.
type Migrator struct {
	cfg     MigratorConfig
	state   *pisa.SharedRegister
	primUp  bool
	touched map[uint32]bool // flow slots with nonzero state

	// Migrated counts state records streamed to the backup switch.
	Migrated  uint64
	Failovers uint64
}

// NewMigrator builds the source-side program.
func NewMigrator(cfg MigratorConfig) (*Migrator, *pisa.Program) {
	if cfg.Slots <= 0 {
		cfg.Slots = 256
	}
	m := &Migrator{cfg: cfg, primUp: true, touched: make(map[uint32]bool)}
	p := pisa.NewProgram("migrator")
	m.state = p.AddRegister(pisa.NewAggregatedRegister("flowBytes", cfg.Slots))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if !ctx.FlowOK {
			ctx.Drop()
			return
		}
		slot := uint32(ctx.Ev.FlowHash % uint64(cfg.Slots))
		m.state.Add(ctx, slot, int64(ctx.Pkt.Len()))
		m.touched[slot] = true
		if m.primUp {
			ctx.EgressPort = cfg.Primary
		} else {
			ctx.EgressPort = cfg.Backup
		}
	})
	p.HandleFunc(events.LinkStatusChange, func(ctx *pisa.Context) {
		if ctx.Ev.Port != cfg.Primary {
			return
		}
		wasUp := m.primUp
		m.primUp = ctx.Ev.Up
		if wasUp && !ctx.Ev.Up {
			m.Failovers++
			// Stream every touched flow's state down the backup path.
			for slot := range m.touched {
				v := m.state.Read(ctx, slot)
				if v == 0 {
					continue
				}
				m.Migrated++
				rep := &packet.Report{
					Kind:   ReportStateXfer,
					Switch: cfg.SwitchID,
					V0:     v,
					V1:     slot,
				}
				ctx.Emit(packet.BuildControlFrame(packet.Broadcast,
					packet.MACFromUint64(uint64(cfg.SwitchID)), rep), cfg.Backup)
			}
		}
	})
	return m, p
}

// State exposes the per-flow register.
func (m *Migrator) State() *pisa.SharedRegister { return m.state }

// MigrateTargetConfig parameterizes the backup-path switch.
type MigrateTargetConfig struct {
	SwitchID uint32
	Slots    int
	// EgressPort forwards data traffic onward.
	EgressPort int
}

// MigrateTarget is the backup-path switch: it installs received state
// records into its own register and keeps counting arriving flows'
// bytes, so the combined count is seamless across the migration.
type MigrateTarget struct {
	cfg   MigrateTargetConfig
	state *pisa.SharedRegister

	// Installed counts state records absorbed.
	Installed uint64
}

// NewMigrateTarget builds the target-side program.
func NewMigrateTarget(cfg MigrateTargetConfig) (*MigrateTarget, *pisa.Program) {
	if cfg.Slots <= 0 {
		cfg.Slots = 256
	}
	tgt := &MigrateTarget{cfg: cfg}
	p := pisa.NewProgram("migrate-target")
	tgt.state = p.AddRegister(pisa.NewAggregatedRegister("flowBytes", cfg.Slots))

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		if packet.EtherTypeOf(ctx.Pkt.Data) == packet.EtherTypeReport &&
			ctx.Has(packet.LayerReport) && ctx.Parsed.Report.Kind == ReportStateXfer {
			rep := ctx.Parsed.Report
			tgt.Installed++
			tgt.state.Add(ctx, rep.V1%uint32(cfg.Slots), int64(rep.V0))
			ctx.Drop()
			return
		}
		if !ctx.FlowOK {
			ctx.Drop()
			return
		}
		slot := uint32(ctx.Ev.FlowHash % uint64(cfg.Slots))
		tgt.state.Add(ctx, slot, int64(ctx.Pkt.Len()))
		ctx.EgressPort = cfg.EgressPort
	})
	return tgt, p
}

// State exposes the target's per-flow register.
func (t *MigrateTarget) State() *pisa.SharedRegister { return t.state }
