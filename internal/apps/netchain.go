package apps

import (
	"encoding/binary"

	"repro/internal/events"
	"repro/internal/packet"
	"repro/internal/pisa"
)

// NetChain-style in-network coordination (Table 2 In-Network Computing
// cites NetChain; paper §3: "Link status change events enable
// coordination services, such as NetChain, to quickly react to network
// failures.").
//
// A chain of switches replicates a key-value store: writes enter at the
// head, propagate down the chain, and are acknowledged by the tail;
// reads are answered by the tail. Each node knows its successor's port.
// When a node's successor link dies, the LinkStatusChange handler
// immediately re-chains to the backup successor (skipping the dead node)
// — failover happens in the data plane within one event, no coordinator.
//
// Wire format: chain ops ride UDP on ChainPort with payload
// "op(1) key(8) value(8) seq(4)": op 1=WRITE, 2=READ, 3=READ-REPLY,
// 4=WRITE-ACK.

// Chain protocol constants.
const (
	ChainPort     = 9100
	ChainWrite    = 1
	ChainRead     = 2
	ChainReply    = 3
	ChainWriteAck = 4
	chainPayload  = 21
)

// ChainNodeConfig parameterizes one chain replica.
type ChainNodeConfig struct {
	SwitchID uint32
	// ClientPort faces the clients (head receives writes, tail answers
	// reads and emits acks).
	ClientPort int
	// SuccessorPort is the port toward the next node (-1 for the tail).
	SuccessorPort int
	// BackupPort is used when the successor link dies (-1: none; the
	// head's backup skips the middle node straight to the tail).
	BackupPort int
	// Tail marks the last node in the chain.
	Tail bool
}

// ChainNode is one replica.
type ChainNode struct {
	cfg   ChainNodeConfig
	store map[uint64]uint64
	// succUp tracks the successor link's status.
	succUp bool

	Writes, Reads uint64
	Failovers     uint64
}

// Store exposes the replica's key-value state (for consistency checks).
func (n *ChainNode) Store() map[uint64]uint64 { return n.store }

// NewChainNode builds one replica's program.
func NewChainNode(cfg ChainNodeConfig) (*ChainNode, *pisa.Program) {
	n := &ChainNode{cfg: cfg, store: make(map[uint64]uint64), succUp: true}
	p := pisa.NewProgram("netchain-node")

	p.HandleFunc(events.IngressPacket, func(ctx *pisa.Context) {
		op, key, val, seq, ok := parseChain(ctx)
		if !ok {
			ctx.Drop()
			return
		}
		switch op {
		case ChainWrite:
			n.store[key] = val
			n.Writes++
			if n.cfg.Tail {
				// Tail commits: ack back along the arrival path, which
				// stays correct across re-chaining.
				ctx.Emit(buildChain(ctx.Flow.Reverse(), ChainWriteAck, key, val, seq), ctx.Pkt.InPort)
				ctx.Drop()
				return
			}
			// Propagate down the (possibly re-chained) successor.
			ctx.EgressPort = n.successor()
		case ChainRead:
			if n.cfg.Tail {
				n.Reads++
				ctx.Emit(buildChain(ctx.Flow.Reverse(), ChainReply, key, n.store[key], seq), ctx.Pkt.InPort)
				ctx.Drop()
				return
			}
			// Interior nodes forward reads toward the tail.
			ctx.EgressPort = n.successor()
		default:
			// Replies/acks traveling back toward clients.
			ctx.EgressPort = n.cfg.ClientPort
		}
	})
	p.HandleFunc(events.LinkStatusChange, func(ctx *pisa.Context) {
		if ctx.Ev.Port != n.cfg.SuccessorPort {
			return
		}
		wasUp := n.succUp
		n.succUp = ctx.Ev.Up
		if wasUp && !ctx.Ev.Up && n.cfg.BackupPort >= 0 {
			n.Failovers++
		}
	})
	return n, p
}

func (n *ChainNode) successor() int {
	if n.succUp || n.cfg.BackupPort < 0 {
		return n.cfg.SuccessorPort
	}
	return n.cfg.BackupPort
}

func parseChain(ctx *pisa.Context) (op int, key, val uint64, seq uint32, ok bool) {
	if !ctx.Has(packet.LayerUDP) {
		return 0, 0, 0, 0, false
	}
	u := &ctx.Parsed.UDP
	if u.DstPort != ChainPort && u.SrcPort != ChainPort {
		return 0, 0, 0, 0, false
	}
	pay := u.LayerPayload()
	if len(pay) < chainPayload {
		return 0, 0, 0, 0, false
	}
	return int(pay[0]),
		binary.BigEndian.Uint64(pay[1:9]),
		binary.BigEndian.Uint64(pay[9:17]),
		binary.BigEndian.Uint32(pay[17:21]), true
}

func buildChain(flow packet.Flow, op int, key, val uint64, seq uint32) []byte {
	flow.SrcPort = ChainPort
	flow.Proto = packet.ProtoUDP
	total := packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen + chainPayload
	data := packet.BuildFrame(packet.FrameSpec{Flow: flow, TotalLen: total})
	pay := data[packet.EthernetHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen:]
	pay[0] = byte(op)
	binary.BigEndian.PutUint64(pay[1:9], key)
	binary.BigEndian.PutUint64(pay[9:17], val)
	binary.BigEndian.PutUint32(pay[17:21], seq)
	return data
}

// BuildChainRequest builds a client WRITE or READ frame.
func BuildChainRequest(flow packet.Flow, op int, key, val uint64, seq uint32) []byte {
	flow.DstPort = ChainPort
	flow.Proto = packet.ProtoUDP
	total := packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen + chainPayload
	data := packet.BuildFrame(packet.FrameSpec{Flow: flow, TotalLen: total})
	pay := data[packet.EthernetHeaderLen+packet.IPv4HeaderLen+packet.UDPHeaderLen:]
	pay[0] = byte(op)
	binary.BigEndian.PutUint64(pay[1:9], key)
	binary.BigEndian.PutUint64(pay[9:17], val)
	binary.BigEndian.PutUint32(pay[17:21], seq)
	return data
}

// ParseChainReply decodes a reply/ack frame at a client host, returning
// ok=false for other traffic.
func ParseChainReply(data []byte) (op int, key, val uint64, seq uint32, ok bool) {
	var p packet.Parser
	var dec []packet.LayerType
	if err := p.Decode(data, &dec); err != nil {
		return 0, 0, 0, 0, false
	}
	hasUDP := false
	for _, l := range dec {
		if l == packet.LayerUDP {
			hasUDP = true
		}
	}
	if !hasUDP || (p.UDP.SrcPort != ChainPort && p.UDP.DstPort != ChainPort) {
		return 0, 0, 0, 0, false
	}
	pay := p.UDP.LayerPayload()
	if len(pay) < chainPayload {
		return 0, 0, 0, 0, false
	}
	return int(pay[0]),
		binary.BigEndian.Uint64(pay[1:9]),
		binary.BigEndian.Uint64(pay[9:17]),
		binary.BigEndian.Uint32(pay[17:21]), true
}
